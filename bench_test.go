// Package repro's benchmarks regenerate every figure and evaluation number
// of the paper and report them as benchmark metrics, plus ablation and
// micro-benchmarks of the core algorithms.
//
//	go test -bench=. -benchmem
//
// Experiment index (see DESIGN.md):
//
//	BenchmarkFigure1*            -> Figure 1 (battery vs interface/interval)
//	BenchmarkFigure2*            -> Figure 2 (application characterization)
//	BenchmarkStudyPlaceDiscovery -> Section 4 place-discovery numbers
//	BenchmarkStudyPlaceADs       -> Section 4 like:dislike ratio
//	BenchmarkAblation*           -> design-choice ablations
package repro

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/geo"
	"repro/internal/gpsplace"
	"repro/internal/gsm"
	"repro/internal/mobility"
	"repro/internal/route"
	"repro/internal/simclock"
	"repro/internal/study"
	"repro/internal/trace"
	"repro/internal/wifi"
	"repro/internal/world"
)

// --- Figure 1: power consumption of location interfaces -------------------

func BenchmarkFigure1BatteryLife(b *testing.B) {
	m := energy.DefaultModel()
	for _, iface := range energy.Figure1Interfaces() {
		for _, interval := range energy.Figure1Intervals() {
			name := fmt.Sprintf("%s/%s", iface, interval)
			b.Run(name, func(b *testing.B) {
				var hours float64
				for i := 0; i < b.N; i++ {
					hours = m.BatteryLifeHours(iface, interval)
				}
				b.ReportMetric(hours, "battery-hours")
				b.ReportMetric(m.AveragePowerW(iface, interval)*1000, "mW")
			})
		}
	}
}

func BenchmarkFigure1HeadlineRatio(b *testing.B) {
	m := energy.DefaultModel()
	var ratio float64
	for i := 0; i < b.N; i++ {
		ratio = energy.GSMToGPSRatioAtMinute(m)
	}
	// Paper: "battery duration is almost 11x".
	b.ReportMetric(ratio, "gsm-over-gps-x")
}

// --- Figure 2: characterization of place-aware applications ---------------

func BenchmarkFigure2Characterization(b *testing.B) {
	m := energy.DefaultModel()
	cfg := core.DefaultConfig("bench")
	for _, row := range core.Figure2(m, cfg) {
		b.Run(row.Class.Name, func(b *testing.B) {
			var hours float64
			for i := 0; i < b.N; i++ {
				loads := core.SensingPlan(row.Class.Granularity, row.Class.Routes, cfg)
				hours = core.PlanBatteryHours(m, loads)
			}
			b.ReportMetric(hours, "battery-hours")
		})
	}
}

// --- Section 4: deployment study -------------------------------------------

// studyResult caches one small-study run for the study benchmarks; the
// heavyweight full-size run is exercised by cmd/pmware-sim.
var (
	studyOnce sync.Once
	studyRes  *study.Result
	studyErr  error
)

func benchStudy(b *testing.B) *study.Result {
	b.Helper()
	studyOnce.Do(func() {
		cfg := study.DefaultConfig()
		cfg.Participants = 8
		cfg.Days = 7
		studyRes, studyErr = study.Run(cfg)
	})
	if studyErr != nil {
		b.Fatal(studyErr)
	}
	return studyRes
}

func BenchmarkStudyPlaceDiscovery(b *testing.B) {
	var res *study.Result
	for i := 0; i < b.N; i++ {
		res = benchStudy(b)
	}
	c, m, d := res.Fused.Rates()
	// Paper: 79.03 / 14.52 / 6.45 over 62 evaluable places.
	b.ReportMetric(c*100, "correct-%")
	b.ReportMetric(m*100, "merged-%")
	b.ReportMetric(d*100, "divided-%")
	b.ReportMetric(float64(res.TotalDiscovered), "places")
	b.ReportMetric(float64(res.TotalTagged), "tagged")
}

func BenchmarkStudyPlaceADs(b *testing.B) {
	var res *study.Result
	for i := 0; i < b.N; i++ {
		res = benchStudy(b)
	}
	l, d := res.LikeRatio()
	// Paper: 17:3.
	b.ReportMetric(l, "likes-of-20")
	b.ReportMetric(d, "dislikes-of-20")
}

// --- Ablations --------------------------------------------------------------

func BenchmarkAblationTriggeredSensing(b *testing.B) {
	m := energy.DefaultModel()
	cfg := core.DefaultConfig("bench")
	plans := map[string][]energy.Load{
		"triggered":      core.SensingPlan(core.GranularityBuilding, core.RouteNone, cfg),
		"always-wifi-1m": {{Interface: energy.GSM, Interval: cfg.GSMInterval}, {Interface: energy.WiFi, Interval: time.Minute}},
		"always-gps-1m":  {{Interface: energy.GSM, Interval: cfg.GSMInterval}, {Interface: energy.GPS, Interval: time.Minute}},
	}
	for name, loads := range plans {
		loads := loads
		b.Run(name, func(b *testing.B) {
			var hours float64
			for i := 0; i < b.N; i++ {
				hours = core.PlanBatteryHours(m, loads)
			}
			b.ReportMetric(hours, "battery-hours")
		})
	}
}

func BenchmarkAblationSharedSensing(b *testing.B) {
	m := energy.DefaultModel()
	cfg := core.DefaultConfig("bench")
	for _, n := range []int{1, 2, 4, 8} {
		n := n
		b.Run(fmt.Sprintf("isolated-apps-%d", n), func(b *testing.B) {
			var hours float64
			for i := 0; i < b.N; i++ {
				hours = core.PlanBatteryHours(m, core.IsolatedAppsPlan(n, core.GranularityBuilding, core.RouteNone, cfg))
			}
			b.ReportMetric(hours, "battery-hours")
		})
	}
	b.Run("shared-pms", func(b *testing.B) {
		var hours float64
		for i := 0; i < b.N; i++ {
			hours = core.PlanBatteryHours(m, core.SensingPlan(core.GranularityBuilding, core.RouteNone, cfg))
		}
		b.ReportMetric(hours, "battery-hours")
	})
}

func BenchmarkAblationInterfaceMergeRate(b *testing.B) {
	var res *study.Result
	for i := 0; i < b.N; i++ {
		res = benchStudy(b)
	}
	_, mGSM, _ := res.GSMOnly.Rates()
	_, mFused, _ := res.Fused.Rates()
	_, mWiFi, _ := res.WiFiOnly.Rates()
	b.ReportMetric(mGSM*100, "gsm-merged-%")
	b.ReportMetric(mFused*100, "fused-merged-%")
	b.ReportMetric(mWiFi*100, "wifi-merged-%")
	b.ReportMetric(float64(res.WiFiOnly.Missed), "wifi-missed")
}

// --- Algorithm micro-benchmarks ---------------------------------------------

// benchTrace builds a week-long GSM trace once.
var (
	traceOnce sync.Once
	gsmWeek   []trace.GSMObservation
	wifiDay   []trace.WiFiScan
	gpsDay    []trace.GPSFix
)

func benchTraces(b *testing.B) {
	b.Helper()
	traceOnce.Do(func() {
		cfg := world.DefaultConfig()
		cfg.TowerGridMeters = 500
		cfg.TowerRangeMeters = 800
		r := rand.New(rand.NewSource(99))
		w := world.Generate(cfg, r)
		home := w.AddVenue("home", "Home", world.KindHome, geo.Offset(cfg.Origin, 210, 2300), true, cfg, r)
		work := w.AddVenue("work", "Office", world.KindWorkplace, geo.Offset(cfg.Origin, 30, 2400), true, cfg, r)
		agent := &mobility.Agent{ID: "bench", Home: home, Work: work, SpeedMPS: 7}
		for _, v := range w.Venues {
			if v.Kind != world.KindHome && v.Kind != world.KindWorkplace {
				agent.Haunts = append(agent.Haunts, v)
			}
		}
		it, err := mobility.BuildItinerary(agent, w, simclock.Epoch, 7, mobility.DefaultScheduleConfig(), rand.New(rand.NewSource(100)))
		if err != nil {
			panic(err)
		}
		s := trace.NewSensors(w, it, trace.DefaultConfig(), rand.New(rand.NewSource(101)))
		gsmWeek = s.CollectGSM(it.Start, it.End, time.Minute)
		wifiDay = s.CollectWiFi(it.Start, it.Start.Add(24*time.Hour), time.Minute)
		gpsDay = s.CollectGPS(it.Start, it.Start.Add(24*time.Hour), time.Minute)
	})
}

func BenchmarkGCADiscoverWeek(b *testing.B) {
	benchTraces(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := gsm.Discover(gsmWeek, gsm.DefaultParams())
		if len(res.Places) == 0 {
			b.Fatal("no places")
		}
	}
	b.ReportMetric(float64(len(gsmWeek)), "observations")
}

func BenchmarkGCATrackerObserve(b *testing.B) {
	benchTraces(b)
	res := gsm.Discover(gsmWeek, gsm.DefaultParams())
	tr := gsm.NewTracker(res.Places)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Observe(gsmWeek[i%len(gsmWeek)])
	}
}

func BenchmarkSensLocDiscoverDay(b *testing.B) {
	benchTraces(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wifi.Discover(wifiDay, wifi.DefaultParams())
	}
	b.ReportMetric(float64(len(wifiDay)), "scans")
}

func BenchmarkTanimoto(b *testing.B) {
	a := wifi.Signature{"a": 40, "b": 30, "c": 20, "d": 10}
	c := wifi.Signature{"a": 35, "b": 25, "e": 15, "f": 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wifi.Tanimoto(a, c)
	}
}

func BenchmarkKangClusteringDay(b *testing.B) {
	benchTraces(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gpsplace.Discover(gpsDay, gpsplace.DefaultParams())
	}
	b.ReportMetric(float64(len(gpsDay)), "fixes")
}

func BenchmarkRouteExtractGSM(b *testing.B) {
	benchTraces(b)
	res := gsm.Discover(gsmWeek, gsm.DefaultParams())
	var intervals []route.Interval
	for _, p := range res.Places {
		for _, v := range p.Visits {
			intervals = append(intervals, route.Interval{Start: v.Arrive, End: v.Depart})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		route.ExtractGSM(gsmWeek, intervals, route.DefaultParams())
	}
}

func BenchmarkHaversine(b *testing.B) {
	p := geo.LatLng{Lat: 28.6139, Lng: 77.2090}
	q := geo.LatLng{Lat: 28.7041, Lng: 77.1025}
	for i := 0; i < b.N; i++ {
		geo.Distance(p, q)
	}
}

// BenchmarkAblationGCAMergeThreshold sweeps the segment-merge similarity
// threshold — the design choice DESIGN.md calls out (cosine over
// oscillation-expanded dwell vectors). Low thresholds over-merge, high ones
// over-divide; 0.5 is the calibrated operating point.
func BenchmarkAblationGCAMergeThreshold(b *testing.B) {
	benchTraces(b)
	for _, th := range []float64{0.3, 0.4, 0.5, 0.6, 0.7} {
		th := th
		b.Run(fmt.Sprintf("threshold-%.1f", th), func(b *testing.B) {
			p := gsm.DefaultParams()
			p.MergeOverlap = th
			var places int
			for i := 0; i < b.N; i++ {
				places = len(gsm.Discover(gsmWeek, p).Places)
			}
			b.ReportMetric(float64(places), "places")
		})
	}
}

// BenchmarkAblationWiFiCoverage reproduces the paper's geographic
// customization observation (Section 1.4): a user is under WiFi coverage
// ~60% of the time in India vs ~90% in a developed country like
// Switzerland. Higher venue WiFi coverage lets the fusion split more merged
// GSM places.
func BenchmarkAblationWiFiCoverage(b *testing.B) {
	for _, tc := range []struct {
		name     string
		fraction float64
	}{
		{"india-60pct", 0.60},
		{"switzerland-90pct", 0.90},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			var res *study.Result
			for i := 0; i < b.N; i++ {
				cfg := study.DefaultConfig()
				cfg.Participants = 8
				cfg.Days = 7
				cfg.World.WiFiVenueFraction = tc.fraction
				var err error
				res, err = study.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			_, mFused, _ := res.Fused.Rates()
			_, mGSM, _ := res.GSMOnly.Rates()
			b.ReportMetric(mFused*100, "fused-merged-%")
			b.ReportMetric(mGSM*100, "gsm-merged-%")
			b.ReportMetric(float64(res.WiFiOnly.Missed), "wifi-missed")
		})
	}
}
