package social

import (
	"testing"
	"time"

	"repro/internal/simclock"
)

func sighting(minute int, place string, peers ...string) Sighting {
	return Sighting{
		At:      simclock.Epoch.Add(time.Duration(minute) * time.Minute),
		PeerIDs: peers,
		PlaceID: place,
	}
}

func TestBasicEncounter(t *testing.T) {
	var sightings []Sighting
	for i := 0; i < 30; i++ {
		sightings = append(sightings, sighting(i, "work", "bob"))
	}
	encs := Coalesce(sightings, DefaultParams())
	if len(encs) != 1 {
		t.Fatalf("encounters = %d, want 1", len(encs))
	}
	e := encs[0]
	if e.PeerID != "bob" || e.PlaceID != "work" {
		t.Errorf("encounter = %+v", e)
	}
	if e.Duration() != 29*time.Minute {
		t.Errorf("duration = %v, want 29m", e.Duration())
	}
}

func TestGapToleranceMerges(t *testing.T) {
	var sightings []Sighting
	for i := 0; i < 30; i++ {
		if i >= 10 && i < 14 {
			// Bluetooth missed bob for 4 minutes (< 5m tolerance).
			sightings = append(sightings, sighting(i, "work"))
			continue
		}
		sightings = append(sightings, sighting(i, "work", "bob"))
	}
	encs := Coalesce(sightings, DefaultParams())
	if len(encs) != 1 {
		t.Fatalf("encounters = %d, want 1 (gap should merge)", len(encs))
	}
}

func TestLongGapSplits(t *testing.T) {
	var sightings []Sighting
	for i := 0; i < 10; i++ {
		sightings = append(sightings, sighting(i, "work", "bob"))
	}
	for i := 10; i < 30; i++ {
		sightings = append(sightings, sighting(i, "work"))
	}
	for i := 30; i < 40; i++ {
		sightings = append(sightings, sighting(i, "work", "bob"))
	}
	encs := Coalesce(sightings, DefaultParams())
	if len(encs) != 2 {
		t.Fatalf("encounters = %d, want 2 (20-min gap must split)", len(encs))
	}
}

func TestMinDurationFilter(t *testing.T) {
	var sightings []Sighting
	// 2-minute brush past someone.
	for i := 0; i < 3; i++ {
		sightings = append(sightings, sighting(i, "market", "stranger"))
	}
	for i := 3; i < 30; i++ {
		sightings = append(sightings, sighting(i, "market"))
	}
	if encs := Coalesce(sightings, DefaultParams()); len(encs) != 0 {
		t.Errorf("fleeting contact recorded: %v", encs)
	}
}

func TestTransitIgnored(t *testing.T) {
	var sightings []Sighting
	for i := 0; i < 30; i++ {
		sightings = append(sightings, sighting(i, "", "fellow-commuter"))
	}
	if encs := Coalesce(sightings, DefaultParams()); len(encs) != 0 {
		t.Errorf("transit contact recorded: %v", encs)
	}
}

func TestTargetedSensing(t *testing.T) {
	p := DefaultParams()
	p.TargetPlaces = map[string]bool{"work": true}
	var sightings []Sighting
	for i := 0; i < 20; i++ {
		sightings = append(sightings, sighting(i, "home", "alice"))
	}
	for i := 20; i < 40; i++ {
		sightings = append(sightings, sighting(i, "work", "bob"))
	}
	encs := Coalesce(sightings, p)
	if len(encs) != 1 || encs[0].PeerID != "bob" {
		t.Fatalf("targeted sensing failed: %v", encs)
	}
}

func TestMultiplePeers(t *testing.T) {
	var sightings []Sighting
	for i := 0; i < 30; i++ {
		sightings = append(sightings, sighting(i, "work", "alice", "bob"))
	}
	encs := Coalesce(sightings, DefaultParams())
	if len(encs) != 2 {
		t.Fatalf("encounters = %d, want 2", len(encs))
	}
	// Sorted by start then peer.
	if encs[0].PeerID != "alice" || encs[1].PeerID != "bob" {
		t.Errorf("ordering: %v, %v", encs[0].PeerID, encs[1].PeerID)
	}
}

func TestPeerFollowsAcrossPlaces(t *testing.T) {
	var sightings []Sighting
	for i := 0; i < 20; i++ {
		sightings = append(sightings, sighting(i, "work", "bob"))
	}
	for i := 20; i < 40; i++ {
		sightings = append(sightings, sighting(i, "cafe", "bob"))
	}
	encs := Coalesce(sightings, DefaultParams())
	if len(encs) != 2 {
		t.Fatalf("encounters = %d, want 2 (split by place)", len(encs))
	}
	places := map[string]bool{}
	for _, e := range encs {
		places[e.PlaceID] = true
	}
	if !places["work"] || !places["cafe"] {
		t.Errorf("places = %v", places)
	}
}

func TestFlushClosesOpen(t *testing.T) {
	d := NewDetector(DefaultParams())
	for i := 0; i < 15; i++ {
		d.Observe(sighting(i, "work", "bob"))
	}
	encs := d.Flush()
	if len(encs) != 1 {
		t.Fatalf("flush encounters = %d, want 1", len(encs))
	}
	if again := d.Flush(); len(again) != 0 {
		t.Error("second flush returned encounters")
	}
}

func TestEmptyTrace(t *testing.T) {
	if encs := Coalesce(nil, DefaultParams()); len(encs) != 0 {
		t.Errorf("empty trace encounters = %v", encs)
	}
}
