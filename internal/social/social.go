// Package social implements PMWare's social discovery module (paper Section
// 2.2.2): detecting physical proximity amongst users via their Bluetooth or
// WiFi radios, coalescing repeated sightings into encounters with start and
// end times, and supporting targeted sensing ("monitoring contacts only at
// the user's workplace").
package social

import (
	"sort"
	"time"
)

// Sighting is one proximity scan result: the peers discoverable at an
// instant, plus the place the user was at (empty while in transit).
type Sighting struct {
	At      time.Time
	PeerIDs []string
	PlaceID string
}

// Encounter is one (H, s, e) social-contact record of the mobility profile.
type Encounter struct {
	PeerID  string
	PlaceID string
	Start   time.Time
	End     time.Time
}

// Duration returns the encounter length.
func (e Encounter) Duration() time.Duration { return e.End.Sub(e.Start) }

// Params tunes encounter detection.
type Params struct {
	// GapTolerance merges sightings of the same peer separated by at most
	// this much (Bluetooth inquiry is lossy).
	GapTolerance time.Duration
	// MinDuration drops fleeting contacts (passing someone on the street).
	MinDuration time.Duration
	// TargetPlaces, when non-empty, restricts detection to these places —
	// PMWare's targeted sensing of social contacts. Nil/empty means all
	// places (but never transit).
	TargetPlaces map[string]bool
}

// DefaultParams returns the parameters used by the deployment study.
func DefaultParams() Params {
	return Params{
		GapTolerance: 5 * time.Minute,
		MinDuration:  5 * time.Minute,
	}
}

// open tracks an in-progress encounter.
type open struct {
	placeID  string
	start    time.Time
	lastSeen time.Time
}

// Detector coalesces sightings into encounters online. Not safe for
// concurrent use.
type Detector struct {
	params Params
	opens  map[string]*open // peer -> open encounter
}

// NewDetector returns an empty detector.
func NewDetector(p Params) *Detector {
	return &Detector{params: p, opens: make(map[string]*open)}
}

// wanted reports whether encounters at the place should be recorded.
func (d *Detector) wanted(placeID string) bool {
	if placeID == "" {
		return false // transit: place-specific contacts only (Section 2.1.3)
	}
	if len(d.params.TargetPlaces) == 0 {
		return true
	}
	return d.params.TargetPlaces[placeID]
}

// Observe consumes one sighting and returns encounters that closed (a peer
// unseen past GapTolerance, or the user moved to an untracked place).
func (d *Detector) Observe(s Sighting) []Encounter {
	now := s.At
	seen := map[string]bool{}
	if d.wanted(s.PlaceID) {
		for _, peer := range s.PeerIDs {
			seen[peer] = true
			if o, ok := d.opens[peer]; ok && o.placeID == s.PlaceID {
				o.lastSeen = now
				continue
			}
			// New encounter (or the peer followed the user to a different
			// place: close the old one below, open a new one here).
			if o, ok := d.opens[peer]; ok && o.placeID != s.PlaceID {
				// keep o for closing in the sweep; mark unseen
				seen[peer] = false
				continue
			}
			d.opens[peer] = &open{placeID: s.PlaceID, start: now, lastSeen: now}
		}
	}

	var closed []Encounter
	for peer, o := range d.opens {
		if seen[peer] {
			continue
		}
		if now.Sub(o.lastSeen) > d.params.GapTolerance || (d.wanted(s.PlaceID) && containsPeer(s.PeerIDs, peer) && o.placeID != s.PlaceID) {
			if enc, ok := d.finish(peer, o); ok {
				closed = append(closed, enc)
			} else {
				delete(d.opens, peer)
			}
		}
	}
	sortEncounters(closed)
	return closed
}

func containsPeer(peers []string, p string) bool {
	for _, x := range peers {
		if x == p {
			return true
		}
	}
	return false
}

// finish closes the open encounter, applying the minimum-duration filter.
func (d *Detector) finish(peer string, o *open) (Encounter, bool) {
	delete(d.opens, peer)
	enc := Encounter{PeerID: peer, PlaceID: o.placeID, Start: o.start, End: o.lastSeen}
	if enc.Duration() < d.params.MinDuration {
		return Encounter{}, false
	}
	return enc, true
}

// Flush closes all open encounters at trace end.
func (d *Detector) Flush() []Encounter {
	var out []Encounter
	for peer, o := range d.opens {
		if enc, ok := d.finish(peer, o); ok {
			out = append(out, enc)
		}
	}
	sortEncounters(out)
	return out
}

func sortEncounters(encs []Encounter) {
	sort.Slice(encs, func(i, j int) bool {
		if !encs[i].Start.Equal(encs[j].Start) {
			return encs[i].Start.Before(encs[j].Start)
		}
		return encs[i].PeerID < encs[j].PeerID
	})
}

// Coalesce runs the detector over a complete sighting trace.
func Coalesce(sightings []Sighting, p Params) []Encounter {
	d := NewDetector(p)
	var out []Encounter
	for _, s := range sightings {
		out = append(out, d.Observe(s)...)
	}
	out = append(out, d.Flush()...)
	sortEncounters(out)
	return out
}
