package viz

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/geo"
	"repro/internal/world"
)

func testBounds() geo.Bounds {
	return geo.Bounds{MinLat: 28.0, MaxLat: 29.0, MinLng: 77.0, MaxLng: 78.0}
}

func TestNewMapClampsDimensions(t *testing.T) {
	m := NewMap(testBounds(), 1, 1)
	out := m.String()
	if !strings.Contains(out, strings.Repeat("-", 10)) {
		t.Error("width not clamped to minimum")
	}
	if strings.Count(out, "|") < 10 { // 5 rows x 2 borders
		t.Error("height not clamped to minimum")
	}
}

func TestDrawCorners(t *testing.T) {
	b := testBounds()
	m := NewMap(b, 20, 10)
	m.Draw(Marker{Pos: geo.LatLng{Lat: b.MaxLat, Lng: b.MinLng}, Rune: 'N'}) // NW
	m.Draw(Marker{Pos: geo.LatLng{Lat: b.MinLat, Lng: b.MaxLng}, Rune: 'S'}) // SE

	lines := strings.Split(m.String(), "\n")
	// lines[0] is the top border; lines[1] is the north row.
	if !strings.Contains(lines[1], "N") {
		t.Errorf("north marker not on top row: %q", lines[1])
	}
	if !strings.Contains(lines[10], "S") {
		t.Errorf("south marker not on bottom row: %q", lines[10])
	}
	// N is on the west edge (col 1 after border), S on the east edge.
	// Index by rune: the map fill character is multi-byte.
	north := []rune(lines[1])
	south := []rune(lines[10])
	if north[1] != 'N' {
		t.Errorf("NW marker not in west column: %q", lines[1])
	}
	if south[20] != 'S' {
		t.Errorf("SE marker not in east column: %q", lines[10])
	}
}

func TestDrawOutsideBoundsIgnored(t *testing.T) {
	m := NewMap(testBounds(), 20, 10)
	m.Draw(Marker{Pos: geo.LatLng{Lat: 50, Lng: 50}, Rune: 'X', Label: "ghost"})
	out := m.String()
	if strings.Contains(out, "X") || strings.Contains(out, "ghost") {
		t.Error("out-of-bounds marker drawn")
	}
}

func TestLegendDeduplicated(t *testing.T) {
	m := NewMap(testBounds(), 20, 10)
	for i := 0; i < 5; i++ {
		m.Draw(Marker{Pos: geo.LatLng{Lat: 28.5, Lng: 77.0 + float64(i)*0.1}, Rune: '*', Label: "place"})
	}
	out := m.String()
	if strings.Count(out, "* place") != 1 {
		t.Errorf("legend not deduplicated:\n%s", out)
	}
	if strings.Count(out, "*") < 5+1 { // 5 markers + 1 legend
		t.Errorf("markers missing:\n%s", out)
	}
}

func TestWorldMap(t *testing.T) {
	w := world.Generate(world.DefaultConfig(), rand.New(rand.NewSource(1)))
	m := WorldMap(w, 60, 24)
	out := m.String()
	// At least a few venue letters must appear.
	found := 0
	for _, r := range []string{"M", "R", "C", "L", "A"} {
		if strings.Contains(out, r) {
			found++
		}
	}
	if found < 3 {
		t.Errorf("world map shows too few venue kinds:\n%s", out)
	}
	if !strings.Contains(out, "market") {
		t.Error("legend missing venue kinds")
	}
}

func TestPlacesMap(t *testing.T) {
	w := world.Generate(world.DefaultConfig(), rand.New(rand.NewSource(2)))
	centers := []geo.LatLng{
		w.Venues[0].Center,
		{}, // not geolocated
		w.Venues[1].Center,
	}
	m, skipped := PlacesMap(w, centers, 60, 24)
	if skipped != 1 {
		t.Errorf("skipped = %d, want 1", skipped)
	}
	out := m.String()
	if !strings.Contains(out, "*") || !strings.Contains(out, "discovered place") {
		t.Error("discovered places not drawn")
	}
}

func TestSummary(t *testing.T) {
	m := NewMap(testBounds(), 40, 20)
	s := m.Summary()
	if !strings.Contains(s, "km") || !strings.Contains(s, "40x20") {
		t.Errorf("summary = %q", s)
	}
}
