// Package viz renders text-mode maps of the synthetic world and of
// discovered places — the reproduction's stand-in for the paper's map
// interfaces: the life-logging app's place map (Figure 4.a) and the
// study-wide visualization of all places visited by the participants
// (Figure 5.b).
package viz

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/geo"
	"repro/internal/world"
)

// Marker is a point to draw on the map.
type Marker struct {
	Pos   geo.LatLng
	Rune  rune
	Label string // used in the legend
}

// Map is a character-grid renderer over a geographic bounding box.
type Map struct {
	bounds        geo.Bounds
	width, height int
	grid          [][]rune
	legend        []string
	legendSeen    map[string]bool
}

// NewMap creates a renderer over the bounds with the given character
// dimensions. Width/height are clamped to sane minimums.
func NewMap(bounds geo.Bounds, width, height int) *Map {
	if width < 10 {
		width = 10
	}
	if height < 5 {
		height = 5
	}
	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = make([]rune, width)
		for j := range grid[i] {
			grid[i][j] = '·'
		}
	}
	return &Map{
		bounds:     bounds,
		width:      width,
		height:     height,
		grid:       grid,
		legendSeen: map[string]bool{},
	}
}

// cell maps a position to grid coordinates; ok is false outside the bounds.
func (m *Map) cell(p geo.LatLng) (row, col int, ok bool) {
	if !m.bounds.Contains(p) {
		return 0, 0, false
	}
	latSpan := m.bounds.MaxLat - m.bounds.MinLat
	lngSpan := m.bounds.MaxLng - m.bounds.MinLng
	if latSpan <= 0 || lngSpan <= 0 {
		return 0, 0, false
	}
	// Row 0 is the north edge.
	row = int((m.bounds.MaxLat - p.Lat) / latSpan * float64(m.height))
	col = int((p.Lng - m.bounds.MinLng) / lngSpan * float64(m.width))
	if row >= m.height {
		row = m.height - 1
	}
	if col >= m.width {
		col = m.width - 1
	}
	return row, col, true
}

// Draw places a marker. Markers outside the bounds are ignored. Later
// markers overwrite earlier ones in the same cell.
func (m *Map) Draw(mk Marker) {
	row, col, ok := m.cell(mk.Pos)
	if !ok {
		return
	}
	m.grid[row][col] = mk.Rune
	if mk.Label != "" {
		key := string(mk.Rune) + " " + mk.Label
		if !m.legendSeen[key] {
			m.legendSeen[key] = true
			m.legend = append(m.legend, key)
		}
	}
}

// DrawAll places many markers.
func (m *Map) DrawAll(mks []Marker) {
	for _, mk := range mks {
		m.Draw(mk)
	}
}

// Render writes the map and legend.
func (m *Map) Render(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString("+" + strings.Repeat("-", m.width) + "+\n")
	for _, row := range m.grid {
		sb.WriteString("|")
		sb.WriteString(string(row))
		sb.WriteString("|\n")
	}
	sb.WriteString("+" + strings.Repeat("-", m.width) + "+\n")
	for _, l := range m.legend {
		sb.WriteString("  " + l + "\n")
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// String renders to a string.
func (m *Map) String() string {
	var sb strings.Builder
	_ = m.Render(&sb)
	return sb.String()
}

// venueRunes letter-codes venue kinds on the base map.
var venueRunes = map[world.VenueKind]rune{
	world.KindHome:       'h',
	world.KindWorkplace:  'w',
	world.KindMarket:     'M',
	world.KindRestaurant: 'R',
	world.KindCafe:       'C',
	world.KindGym:        'G',
	world.KindLibrary:    'L',
	world.KindAcademic:   'A',
	world.KindMall:       'S',
	world.KindPark:       'P',
	world.KindCinema:     'F',
	world.KindClinic:     '+',
}

// WorldMap renders the synthetic city: every venue as a letter keyed by
// kind.
func WorldMap(w *world.World, width, height int) *Map {
	m := NewMap(w.Bounds, width, height)
	for _, v := range w.Venues {
		r, ok := venueRunes[v.Kind]
		if !ok {
			r = '?'
		}
		m.Draw(Marker{Pos: v.Center, Rune: r, Label: v.Kind.String()})
	}
	return m
}

// PlacesMap overlays discovered places (as '*') on the world map — the
// Figure 5.b view of all places discovered during the study. Places without
// coordinates (not geolocated) are skipped and counted.
func PlacesMap(w *world.World, centers []geo.LatLng, width, height int) (*Map, int) {
	m := WorldMap(w, width, height)
	skipped := 0
	for _, c := range centers {
		if c.IsZero() {
			skipped++
			continue
		}
		m.Draw(Marker{Pos: c, Rune: '*', Label: "discovered place"})
	}
	return m, skipped
}

// Summary returns a one-line description of a map's extent.
func (m *Map) Summary() string {
	return fmt.Sprintf("%.1f km x %.1f km at %dx%d",
		geo.Distance(
			geo.LatLng{Lat: m.bounds.MinLat, Lng: m.bounds.MinLng},
			geo.LatLng{Lat: m.bounds.MinLat, Lng: m.bounds.MaxLng})/1000,
		geo.Distance(
			geo.LatLng{Lat: m.bounds.MinLat, Lng: m.bounds.MinLng},
			geo.LatLng{Lat: m.bounds.MaxLat, Lng: m.bounds.MinLng})/1000,
		m.width, m.height)
}
