package profile_test

import (
	"fmt"
	"time"

	"repro/internal/profile"
	"repro/internal/simclock"
)

func ExampleBuilder() {
	b := profile.NewBuilder("alice")
	day := simclock.Epoch
	// An overnight stay splits at midnight into two day profiles.
	b.AddVisit("home", "Home", day.Add(20*time.Hour), day.Add(32*time.Hour))
	for _, d := range b.Days() {
		fmt.Printf("%s: %d visit(s), dwell %s\n", d.Date, len(d.Places), d.TotalDwell())
	}
	// Output:
	// 2014-09-01: 1 visit(s), dwell 4h0m0s
	// 2014-09-02: 1 visit(s), dwell 8h0m0s
}
