package profile

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simclock"
)

// TestSplitPreservesDuration: splitting any interval at midnight never
// gains or loses time, and every produced day validates.
func TestSplitPreservesDuration(t *testing.T) {
	f := func(startMin uint16, durMin uint16) bool {
		start := simclock.Epoch.Add(time.Duration(startMin) * time.Minute)
		dur := time.Duration(durMin%(5*24*60)) * time.Minute
		end := start.Add(dur)

		b := NewBuilder("u")
		b.AddVisit("p", "", start, end)
		var total time.Duration
		for _, d := range b.Days() {
			if err := d.Validate(); err != nil {
				return false
			}
			total += d.TotalDwell()
		}
		return total == dur
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSplitPiecesAreContiguous: the split pieces chain exactly: each piece
// ends where the next begins, first begins at start, last ends at end.
func TestSplitPiecesAreContiguous(t *testing.T) {
	f := func(startMin uint16, durMin uint16) bool {
		start := simclock.Epoch.Add(time.Duration(startMin) * time.Minute)
		dur := time.Duration(1+durMin%(4*24*60)) * time.Minute
		end := start.Add(dur)

		b := NewBuilder("u")
		b.AddVisit("p", "", start, end)
		days := b.Days()
		if len(days) == 0 {
			return false
		}
		var pieces []PlaceVisit
		for _, d := range days {
			pieces = append(pieces, d.Places...)
		}
		if !pieces[0].Arrive.Equal(start) || !pieces[len(pieces)-1].Depart.Equal(end) {
			return false
		}
		for i := 1; i < len(pieces); i++ {
			if !pieces[i].Arrive.Equal(pieces[i-1].Depart) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestRouteSplitPreservesDuration does the same for route uses.
func TestRouteSplitPreservesDuration(t *testing.T) {
	f := func(startMin uint16, durMin uint16) bool {
		start := simclock.Epoch.Add(time.Duration(startMin) * time.Minute)
		dur := time.Duration(durMin%(48*60)) * time.Minute
		b := NewBuilder("u")
		b.AddRoute("r", start, start.Add(dur))
		var total time.Duration
		for _, d := range b.Days() {
			for _, r := range d.Routes {
				total += r.End.Sub(r.Start)
			}
		}
		return total == dur
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestActivityMinutesConserved: every AddActivity call lands in exactly one
// day bucket.
func TestActivityMinutesConserved(t *testing.T) {
	f := func(offsets []uint16) bool {
		b := NewBuilder("u")
		for _, off := range offsets {
			at := simclock.Epoch.Add(time.Duration(off%(7*24*60)) * time.Minute)
			b.AddActivity(at, off%2 == 0)
		}
		total := 0
		for _, d := range b.Days() {
			if d.Activity != nil {
				total += d.Activity.Total()
			}
		}
		return total == len(offsets)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
