package profile

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/simclock"
)

func at(h, m int) time.Time {
	return simclock.Epoch.Add(time.Duration(h)*time.Hour + time.Duration(m)*time.Minute)
}

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder("u1")
	b.AddVisit("p1", "home", at(0, 0), at(8, 30))
	b.AddRoute("r1", at(8, 30), at(9, 0))
	b.AddVisit("p2", "work", at(9, 0), at(18, 0))
	b.AddEncounter("u2", "p2", at(10, 0), at(11, 0))

	days := b.Days()
	if len(days) != 1 {
		t.Fatalf("days = %d, want 1", len(days))
	}
	d := days[0]
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(d.Places) != 2 || len(d.Routes) != 1 || len(d.Contacts) != 1 {
		t.Errorf("counts: %d places, %d routes, %d contacts", len(d.Places), len(d.Routes), len(d.Contacts))
	}
	if d.TotalDwell() != 17*time.Hour+30*time.Minute {
		t.Errorf("TotalDwell = %v", d.TotalDwell())
	}
	if got := d.DistinctPlaces(); len(got) != 2 || got[0] != "p1" {
		t.Errorf("DistinctPlaces = %v", got)
	}
}

func TestMidnightSplit(t *testing.T) {
	b := NewBuilder("u1")
	// Overnight stay: 20:00 day0 to 08:00 day1.
	b.AddVisit("home", "home", at(20, 0), at(32, 0))
	days := b.Days()
	if len(days) != 2 {
		t.Fatalf("days = %d, want 2", len(days))
	}
	d0, d1 := days[0], days[1]
	if len(d0.Places) != 1 || len(d1.Places) != 1 {
		t.Fatal("visit not split across days")
	}
	if d0.Places[0].Duration() != 4*time.Hour {
		t.Errorf("day0 portion = %v, want 4h", d0.Places[0].Duration())
	}
	if d1.Places[0].Duration() != 8*time.Hour {
		t.Errorf("day1 portion = %v, want 8h", d1.Places[0].Duration())
	}
	if !d1.Places[0].Arrive.Equal(simclock.Epoch.AddDate(0, 0, 1)) {
		t.Errorf("day1 arrive = %v, want midnight", d1.Places[0].Arrive)
	}
	for _, d := range days {
		if err := d.Validate(); err != nil {
			t.Errorf("split day invalid: %v", err)
		}
	}
}

func TestMultiDaySpan(t *testing.T) {
	b := NewBuilder("u1")
	// A 3-day stay splits into 3 day entries.
	b.AddVisit("home", "", at(12, 0), at(60, 0))
	if days := b.Days(); len(days) != 3 {
		t.Fatalf("days = %d, want 3", len(days))
	}
}

func TestDaysSortedAndEntriesOrdered(t *testing.T) {
	b := NewBuilder("u1")
	b.AddVisit("p2", "", at(30, 0), at(31, 0)) // day 1
	b.AddVisit("p1", "", at(5, 0), at(6, 0))   // day 0
	b.AddVisit("p0", "", at(1, 0), at(2, 0))   // day 0, earlier
	days := b.Days()
	if len(days) != 2 {
		t.Fatalf("days = %d", len(days))
	}
	if days[0].Date >= days[1].Date {
		t.Error("days unsorted")
	}
	if days[0].Places[0].PlaceID != "p0" {
		t.Error("places within day unsorted")
	}
}

func TestValidateRejects(t *testing.T) {
	good := func() *DayProfile {
		return &DayProfile{
			UserID: "u1",
			Date:   "2014-09-01",
			Places: []PlaceVisit{{PlaceID: "p", Arrive: at(1, 0), Depart: at(2, 0)}},
			Routes: []RouteUse{{RouteID: "r", Start: at(2, 0), End: at(3, 0)}},
		}
	}
	tests := []struct {
		name   string
		mutate func(*DayProfile)
	}{
		{"bad date", func(p *DayProfile) { p.Date = "nope" }},
		{"empty user", func(p *DayProfile) { p.UserID = "" }},
		{"empty place id", func(p *DayProfile) { p.Places[0].PlaceID = "" }},
		{"negative stay", func(p *DayProfile) { p.Places[0].Depart = p.Places[0].Arrive }},
		{"outside day", func(p *DayProfile) { p.Places[0].Depart = at(30, 0) }},
		{"unordered places", func(p *DayProfile) {
			p.Places = append(p.Places, PlaceVisit{PlaceID: "q", Arrive: at(0, 30), Depart: at(0, 45)})
		}},
		{"empty route id", func(p *DayProfile) { p.Routes[0].RouteID = "" }},
		{"negative route", func(p *DayProfile) { p.Routes[0].End = p.Routes[0].Start }},
		{"bad contact", func(p *DayProfile) {
			p.Contacts = []Encounter{{ContactID: "", Start: at(1, 0), End: at(2, 0)}}
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := good()
			if err := p.Validate(); err != nil {
				t.Fatalf("baseline invalid: %v", err)
			}
			tt.mutate(p)
			if err := p.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestJSONRoundTrip(t *testing.T) {
	b := NewBuilder("u7")
	b.AddVisit("p1", "home", at(0, 0), at(8, 0))
	b.AddRoute("r1", at(8, 0), at(8, 30))
	b.AddEncounter("u9", "p1", at(7, 0), at(7, 30))
	orig := b.Days()[0]

	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var got DayProfile
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.UserID != orig.UserID || got.Date != orig.Date {
		t.Error("identity fields lost")
	}
	if len(got.Places) != 1 || !got.Places[0].Arrive.Equal(orig.Places[0].Arrive) {
		t.Error("places lost in round trip")
	}
	if len(got.Routes) != 1 || len(got.Contacts) != 1 {
		t.Error("routes/contacts lost")
	}
	if err := got.Validate(); err != nil {
		t.Errorf("round-tripped profile invalid: %v", err)
	}
}

func TestZeroLengthIntervalIgnored(t *testing.T) {
	b := NewBuilder("u1")
	b.AddVisit("p", "", at(5, 0), at(5, 0)) // zero length
	if days := b.Days(); len(days) != 0 {
		t.Errorf("zero-length visit created %d days", len(days))
	}
}

func TestExactMidnightBoundary(t *testing.T) {
	b := NewBuilder("u1")
	// Ends exactly at midnight: single day entry.
	b.AddVisit("p", "", at(22, 0), at(24, 0))
	days := b.Days()
	if len(days) != 1 {
		t.Fatalf("days = %d, want 1", len(days))
	}
	if days[0].Places[0].Duration() != 2*time.Hour {
		t.Error("boundary visit truncated")
	}
}

func TestActivitySummary(t *testing.T) {
	b := NewBuilder("u1")
	// 30 moving minutes, 60 still minutes on day 0; 10 moving on day 1.
	for i := 0; i < 30; i++ {
		b.AddActivity(at(8, i), true)
	}
	for i := 0; i < 60; i++ {
		b.AddActivity(at(10, i), false)
	}
	for i := 0; i < 10; i++ {
		b.AddActivity(at(25, i), true)
	}
	days := b.Days()
	if len(days) != 2 {
		t.Fatalf("days = %d", len(days))
	}
	a0 := days[0].Activity
	if a0 == nil || a0.MovingMinutes != 30 || a0.StillMinutes != 60 {
		t.Errorf("day0 activity = %+v", a0)
	}
	if a0.Total() != 90 {
		t.Errorf("total = %d", a0.Total())
	}
	if days[1].Activity == nil || days[1].Activity.MovingMinutes != 10 {
		t.Errorf("day1 activity = %+v", days[1].Activity)
	}
}

func TestValidateActivity(t *testing.T) {
	day := "2014-09-01"
	p := &DayProfile{UserID: "u", Date: day, Activity: &ActivitySummary{MovingMinutes: -1}}
	if err := p.Validate(); err == nil {
		t.Error("negative activity accepted")
	}
	p.Activity = &ActivitySummary{MovingMinutes: 1000, StillMinutes: 1000}
	if err := p.Validate(); err == nil {
		t.Error("super-day activity accepted")
	}
	p.Activity = &ActivitySummary{MovingMinutes: 100, StillMinutes: 500}
	if err := p.Validate(); err != nil {
		t.Errorf("valid activity rejected: %v", err)
	}
}

func TestActivityJSONRoundTrip(t *testing.T) {
	b := NewBuilder("u1")
	b.AddVisit("p", "", at(1, 0), at(2, 0))
	b.AddActivity(at(1, 30), true)
	orig := b.Days()[0]
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var got DayProfile
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Activity == nil || got.Activity.MovingMinutes != 1 {
		t.Errorf("activity lost: %+v", got.Activity)
	}
}
