// Package profile implements PMWare's mobility-profile representation
// (paper Section 2.1.3): a day-specific spatio-temporal record
//
//	M_X = (P_1,a_1,d_1)...(P_n,a_n,d_n)  place visits with arrival/departure
//	    ∪ (R_1,s_1,e_1)...(R_m,s_m,e_m)  route uses with start/end
//	    ∪ (H_1,s_1,e_1)...(H_k,s_k,e_k)  social encounters with start/end
//
// The mobile service builds one profile per day and syncs it to the cloud
// instance, where long-term patterns feed the analytics and prediction
// engine.
package profile

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"
)

// DateFormat is the canonical day key, e.g. "2014-09-01".
const DateFormat = "2006-01-02"

// PlaceVisit is one (P, a, d) entry.
type PlaceVisit struct {
	PlaceID string    `json:"place_id"`
	Label   string    `json:"label,omitempty"`
	Arrive  time.Time `json:"arrive"`
	Depart  time.Time `json:"depart"`
}

// Duration returns the stay length.
func (v PlaceVisit) Duration() time.Duration { return v.Depart.Sub(v.Arrive) }

// RouteUse is one (R, s, e) entry.
type RouteUse struct {
	RouteID string    `json:"route_id"`
	Start   time.Time `json:"start"`
	End     time.Time `json:"end"`
}

// Encounter is one (H, s, e) entry: a social contact met at a place.
type Encounter struct {
	ContactID string    `json:"contact_id"`
	PlaceID   string    `json:"place_id,omitempty"`
	Start     time.Time `json:"start"`
	End       time.Time `json:"end"`
}

// ActivitySummary aggregates the day's accelerometer-derived activity — the
// paper's future-work integration of "other contextual information such as
// activity tracking" into the mobility profile.
type ActivitySummary struct {
	MovingMinutes int `json:"moving_minutes"`
	StillMinutes  int `json:"still_minutes"`
}

// Total returns the classified minutes.
func (a ActivitySummary) Total() int { return a.MovingMinutes + a.StillMinutes }

// DayProfile is the mobility profile of one user for one day.
type DayProfile struct {
	UserID   string           `json:"user_id"`
	Date     string           `json:"date"`
	Places   []PlaceVisit     `json:"places,omitempty"`
	Routes   []RouteUse       `json:"routes,omitempty"`
	Contacts []Encounter      `json:"contacts,omitempty"`
	Activity *ActivitySummary `json:"activity,omitempty"`
}

// Validate checks structural invariants: day key well-formed, entries inside
// the day, intervals positive, entries time-ordered, IDs non-empty.
func (p *DayProfile) Validate() error {
	day, err := time.Parse(DateFormat, p.Date)
	if err != nil {
		return fmt.Errorf("profile: bad date %q: %w", p.Date, err)
	}
	dayEnd := day.AddDate(0, 0, 1)
	if p.UserID == "" {
		return fmt.Errorf("profile: empty user id")
	}
	for i, v := range p.Places {
		if v.PlaceID == "" {
			return fmt.Errorf("profile: place %d has empty id", i)
		}
		if !v.Depart.After(v.Arrive) {
			return fmt.Errorf("profile: place %d has non-positive stay", i)
		}
		if v.Arrive.Before(day) || v.Depart.After(dayEnd) {
			return fmt.Errorf("profile: place %d outside day %s", i, p.Date)
		}
		if i > 0 && v.Arrive.Before(p.Places[i-1].Arrive) {
			return fmt.Errorf("profile: places not time-ordered at %d", i)
		}
	}
	for i, r := range p.Routes {
		if r.RouteID == "" {
			return fmt.Errorf("profile: route %d has empty id", i)
		}
		if !r.End.After(r.Start) {
			return fmt.Errorf("profile: route %d has non-positive duration", i)
		}
		if i > 0 && r.Start.Before(p.Routes[i-1].Start) {
			return fmt.Errorf("profile: routes not time-ordered at %d", i)
		}
	}
	for i, e := range p.Contacts {
		if e.ContactID == "" {
			return fmt.Errorf("profile: contact %d has empty id", i)
		}
		if !e.End.After(e.Start) {
			return fmt.Errorf("profile: contact %d has non-positive duration", i)
		}
	}
	if a := p.Activity; a != nil {
		if a.MovingMinutes < 0 || a.StillMinutes < 0 {
			return fmt.Errorf("profile: negative activity minutes")
		}
		if a.Total() > 24*60 {
			return fmt.Errorf("profile: activity exceeds the day (%d min)", a.Total())
		}
	}
	return nil
}

// TotalDwell sums the place-visit durations.
func (p *DayProfile) TotalDwell() time.Duration {
	var d time.Duration
	for _, v := range p.Places {
		d += v.Duration()
	}
	return d
}

// DistinctPlaces returns the distinct place IDs visited, in first-visit
// order.
func (p *DayProfile) DistinctPlaces() []string {
	seen := map[string]bool{}
	var out []string
	for _, v := range p.Places {
		if !seen[v.PlaceID] {
			seen[v.PlaceID] = true
			out = append(out, v.PlaceID)
		}
	}
	return out
}

// MarshalJSON is the wire form used by the cloud sync API.
func (p *DayProfile) MarshalJSON() ([]byte, error) {
	type alias DayProfile
	return json.Marshal((*alias)(p))
}

// Builder accumulates visits, routes and encounters and splits them into
// day-specific profiles (entries spanning midnight are divided at the day
// boundary, so every profile is self-contained).
type Builder struct {
	userID string
	days   map[string]*DayProfile
}

// NewBuilder returns a builder for the user.
func NewBuilder(userID string) *Builder {
	return &Builder{userID: userID, days: make(map[string]*DayProfile)}
}

func (b *Builder) day(t time.Time) *DayProfile {
	key := t.Format(DateFormat)
	d, ok := b.days[key]
	if !ok {
		d = &DayProfile{UserID: b.userID, Date: key}
		b.days[key] = d
	}
	return d
}

// splitByDay invokes fn once per (start, end) sub-interval per day touched.
func splitByDay(start, end time.Time, fn func(s, e time.Time)) {
	for start.Before(end) {
		dayEnd := time.Date(start.Year(), start.Month(), start.Day(), 0, 0, 0, 0, start.Location()).AddDate(0, 0, 1)
		e := end
		if dayEnd.Before(e) {
			e = dayEnd
		}
		if e.After(start) {
			fn(start, e)
		}
		start = e
	}
}

// AddVisit records a place visit, splitting at midnight.
func (b *Builder) AddVisit(placeID, label string, arrive, depart time.Time) {
	splitByDay(arrive, depart, func(s, e time.Time) {
		d := b.day(s)
		d.Places = append(d.Places, PlaceVisit{PlaceID: placeID, Label: label, Arrive: s, Depart: e})
	})
}

// AddRoute records a route traversal, splitting at midnight.
func (b *Builder) AddRoute(routeID string, start, end time.Time) {
	splitByDay(start, end, func(s, e time.Time) {
		d := b.day(s)
		d.Routes = append(d.Routes, RouteUse{RouteID: routeID, Start: s, End: e})
	})
}

// AddActivity accumulates one classified accelerometer minute into the
// day's activity summary.
func (b *Builder) AddActivity(at time.Time, moving bool) {
	d := b.day(at)
	if d.Activity == nil {
		d.Activity = &ActivitySummary{}
	}
	if moving {
		d.Activity.MovingMinutes++
	} else {
		d.Activity.StillMinutes++
	}
}

// AddEncounter records a social encounter, splitting at midnight.
func (b *Builder) AddEncounter(contactID, placeID string, start, end time.Time) {
	splitByDay(start, end, func(s, e time.Time) {
		d := b.day(s)
		d.Contacts = append(d.Contacts, Encounter{ContactID: contactID, PlaceID: placeID, Start: s, End: e})
	})
}

// Days returns the accumulated day profiles in date order, with entries
// sorted by time.
func (b *Builder) Days() []*DayProfile {
	keys := make([]string, 0, len(b.days))
	for k := range b.days {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*DayProfile, 0, len(keys))
	for _, k := range keys {
		d := b.days[k]
		sort.Slice(d.Places, func(i, j int) bool { return d.Places[i].Arrive.Before(d.Places[j].Arrive) })
		sort.Slice(d.Routes, func(i, j int) bool { return d.Routes[i].Start.Before(d.Routes[j].Start) })
		sort.Slice(d.Contacts, func(i, j int) bool { return d.Contacts[i].Start.Before(d.Contacts[j].Start) })
		out = append(out, d)
	}
	return out
}
