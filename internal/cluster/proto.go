package cluster

// The replication wire protocol. Three endpoints, mounted by the cloud
// server on every cluster node:
//
//	POST PathReplBatch  — ship a contiguous run of WAL records
//	POST PathReplSync   — full resync: a per-user wholesale state stream
//	GET  PathReplCursor — where is this follower in my stream?
//	GET  PathRing       — current ring (clients bootstrap/refresh here)
//	POST PathRing       — coordinator pushes a newer ring version
//
// Record payloads travel verbatim: the bytes a primary's engine journaled
// are the bytes the follower's engine journals. The envelope is JSON — the
// replication plane is low-rate node-to-node traffic batched hundreds of
// records at a time, so envelope overhead is noise next to fsync cost.

const (
	PathReplBatch  = "/cluster/v1/repl/batch"
	PathReplSync   = "/cluster/v1/repl/sync"
	PathReplCursor = "/cluster/v1/repl/cursor"
	PathRing       = "/cluster/v1/ring"
	PathHandoff    = "/cluster/v1/handoff"
)

// Routing headers. A cluster-aware client stamps every request with its
// locally computed routing key; nodes use it to gate ownership before the
// request touches any state. Proxied marks a request already forwarded once
// (single hop — a proxied request is always served locally). Owner carries
// the owning node's URL on a 421 Misdirected Request so the client can
// re-target without refetching the ring.
const (
	HeaderKey     = "X-PMWare-Key"
	HeaderProxied = "X-PMWare-Proxied"
	HeaderOwner   = "X-PMWare-Owner"
)

// Engine identifiers for ShipRecord.Engine: a PCI node journals through two
// storage engines (the meta+data engine and the trace engine); a shipped
// record must land in the same engine and shard index on the follower.
const (
	EngineMain  = 0
	EngineTrace = 1
)

// ShipRecord is one replicated WAL record: which engine and shard it was
// journaled on, and the verbatim record bytes.
type ShipRecord struct {
	Engine uint8  `json:"e"`
	Shard  int    `json:"s"`
	Rec    []byte `json:"r"`
}

// BatchRequest ships records Start..Start+len(Records)-1 of the primary's
// stream. Epoch identifies the primary's process lifetime: a primary that
// restarted cannot know which tail of its stream reached the follower, so
// it bumps its epoch and the mismatch forces a full resync. RingVersion is
// the ring the sender holds: a receiver with a newer ring rejects the
// stream (the sender's view of who owns what — and of who its follower is —
// is stale), which is what keeps a restarted pre-failover primary from
// overwriting its promoted heir.
type BatchRequest struct {
	From        string       `json:"from"`
	Epoch       uint64       `json:"epoch"`
	Start       uint64       `json:"start"`
	RingVersion uint64       `json:"ring_version"`
	DataShards  int          `json:"data_shards"`
	TraceShards int          `json:"trace_shards"`
	Records     []ShipRecord `json:"records"`
}

// BatchResponse acknowledges the follower's durable replication cursor.
// Resync means the stream cannot continue (epoch change, gap, or an unclean
// follower restart) and the primary must run a full resync first.
type BatchResponse struct {
	Acked  uint64 `json:"acked"`
	Resync bool   `json:"resync,omitempty"`
	Error  string `json:"error,omitempty"`
}

// CursorResponse reports a follower's position in one primary's stream.
type CursorResponse struct {
	Epoch  uint64 `json:"epoch"`
	Seq    uint64 `json:"seq"`
	Resync bool   `json:"resync,omitempty"`
}

// SyncRequest replaces the follower's copy of every user the primary owns:
// Records is a stream of wholesale per-user records (sync_user, register,
// trace replace) journaled on the follower like any shipped record.
// Baseline is the primary's stream position the snapshot was cut at — under
// the primary's write gate, so records > Baseline are exactly the
// mutations not covered by the snapshot.
type SyncRequest struct {
	From        string       `json:"from"`
	Epoch       uint64       `json:"epoch"`
	Baseline    uint64       `json:"baseline"`
	RingVersion uint64       `json:"ring_version"`
	DataShards  int          `json:"data_shards"`
	TraceShards int          `json:"trace_shards"`
	Records     []ShipRecord `json:"records"`
}

// SyncResponse acknowledges a completed resync.
type SyncResponse struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
}

// RingPush is the coordinator's version push; nodes apply it only when
// Ring.Version exceeds the version they hold.
type RingPush struct {
	Ring *Ring `json:"ring"`
}

// HandoffRequest transfers users to their new owner after a ring change:
// the same wholesale per-user records a resync ships, but the receiver
// applies them as primary writes (journaled AND shipped onward to its own
// follower), because ownership — not a replica copy — is what moves.
type HandoffRequest struct {
	From    string       `json:"from"`
	Records []ShipRecord `json:"records"`
}

// HandoffResponse acknowledges a completed handoff; the sender drops its
// local copy of the transferred users only after OK.
type HandoffResponse struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
}
