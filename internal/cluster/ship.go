package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// Shipper is the primary side of WAL-shipping replication: a bounded
// in-order buffer of journaled records and a single goroutine that ships
// them to the node's follower in batches.
//
// Semi-synchronous contract: the engine calls Enqueue under the shard lock
// (freezing per-shard ship order to WAL order) and Wait after the record is
// locally durable. Wait returns once the follower has acknowledged the
// record's sequence number — so every client-acknowledged write exists on
// two nodes — unless the shipper is degraded (follower unreachable or
// resyncing), in which case writes proceed locally and the follower catches
// up with a stream resume or a full resync.
//
// Stream identity is (node, epoch). The epoch bumps on every process start:
// a restarted primary cannot know which suffix of its in-memory queue
// reached the follower, so it never resumes a cursor — it re-baselines with
// a full resync. Within one epoch the cursor is exact.
type Shipper struct {
	cfg   ShipperConfig
	epoch uint64

	mu      sync.Mutex
	cond    *sync.Cond // wakes the ship loop
	ackCond *sync.Cond // wakes semi-sync waiters
	seq     uint64     // last sequence number issued
	acked   uint64     // follower's durable cursor
	buf     []bufRec   // contiguous run acked+1..seq (unless dropped for resync)
	target  *Node      // current follower; nil = unreplicated
	resync  bool       // next action is a full resync
	degrade bool       // Wait must not block (follower down / resyncing)
	closing bool

	failures int
	done     chan struct{}
	encBuf   []byte // batch encode buffer, reused by the ship loop goroutine
	m        shipMetrics
}

type bufRec struct {
	seq uint64
	rec ShipRecord
}

// ShipperConfig configures a node's shipper.
type ShipperConfig struct {
	// Self is this node's ID (the stream name followers key cursors on).
	Self string
	// Epoch is this process lifetime's stream epoch (see NextEpoch).
	Epoch uint64
	// HTTP issues the replication POSTs.
	HTTP *http.Client
	// DataShards/TraceShards are carried on every request so a misconfigured
	// follower (different shard count = different key placement) rejects the
	// stream instead of silently corrupting it.
	DataShards  int
	TraceShards int
	// Export cuts a consistent wholesale snapshot of every user this node
	// owns, returning the stream baseline the snapshot corresponds to. It
	// must block writes for the duration (the cloud store's write gate).
	Export func() (recs []ShipRecord, baseline uint64, err error)
	// RingVersion reports the ring version this node currently holds; it is
	// stamped on every batch and sync so the follower can refuse a stream
	// from a sender whose topology view is stale (nil = unversioned, only
	// acceptable against a receiver with no VerifyStream check).
	RingVersion func() uint64
	// MaxBatch caps records per batch POST (default 256).
	MaxBatch int
	// MaxQueue caps records buffered while the follower is unreachable;
	// beyond it the buffer is dropped and the stream re-baselines with a
	// full resync on reconnect (default 1 << 16).
	MaxQueue int
	// DegradeAfter is how many consecutive batch failures switch Wait to
	// non-blocking (default 2).
	DegradeAfter int
	// Linger, when positive, delays each partial batch by this long so
	// concurrent writers coalesce into one POST instead of paying a full
	// inter-node round trip per record or two. It adds at most Linger to
	// the semi-sync ack latency; full batches ship immediately.
	Linger time.Duration
	// Metrics receives the pci_repl_* shipper families (nil = obs.Default).
	Metrics *obs.Registry
	Logf    func(format string, args ...any)
}

type shipMetrics struct {
	shipped  *obs.Counter
	batches  *obs.Counter
	errors   *obs.Counter
	resyncs  *obs.Counter
	lag      *obs.Gauge
	degraded *obs.Gauge
}

// NewShipper starts a shipper; Close releases it.
func NewShipper(cfg ShipperConfig) *Shipper {
	if cfg.HTTP == nil {
		cfg.HTTP = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 256
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 1 << 16
	}
	if cfg.DegradeAfter <= 0 {
		cfg.DegradeAfter = 2
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.Default()
	}
	s := &Shipper{
		cfg:   cfg,
		epoch: cfg.Epoch,
		done:  make(chan struct{}),
		m: shipMetrics{
			shipped:  reg.Counter("pci_repl_shipped_records_total"),
			batches:  reg.Counter("pci_repl_ship_batches_total"),
			errors:   reg.Counter("pci_repl_ship_errors_total"),
			resyncs:  reg.Counter("pci_repl_resyncs_total"),
			lag:      reg.Gauge("pci_repl_lag_records"),
			degraded: reg.Gauge("pci_repl_degraded"),
		},
	}
	s.cond = sync.NewCond(&s.mu)
	s.ackCond = sync.NewCond(&s.mu)
	go s.run()
	return s
}

func (s *Shipper) ringVersion() uint64 {
	if s.cfg.RingVersion == nil {
		return 0
	}
	return s.cfg.RingVersion()
}

func (s *Shipper) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Seq reports the last issued sequence number. Export callbacks read it
// under the store's write gate to compute the resync baseline.
func (s *Shipper) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Lag reports how many records the follower is behind.
func (s *Shipper) Lag() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq - s.acked
}

// Enqueue registers one record for shipment (storage.ReplSink, via an
// engineSink adapter that fixes the engine index). Called under a shard
// lock: constant-time append only.
func (s *Shipper) enqueue(engine uint8, shard int, rec []byte) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	if s.target != nil {
		if len(s.buf) >= s.cfg.MaxQueue {
			// The follower is too far behind to stream to; drop the buffer
			// and re-baseline with a full resync when it answers again.
			s.buf = s.buf[:0]
			s.resync = true
			s.setDegraded(true)
		} else {
			s.buf = append(s.buf, bufRec{seq: s.seq, rec: ShipRecord{Engine: engine, Shard: shard, Rec: rec}})
		}
	}
	s.m.lag.Set(int64(s.seq - s.acked))
	s.cond.Signal()
	return s.seq
}

// wait blocks until the follower acked the token (storage.ReplSink).
func (s *Shipper) wait(tok uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.target != nil && !s.degrade && !s.closing && s.acked < tok {
		s.ackCond.Wait()
	}
}

// EngineSink adapts the shipper to one engine's storage.ReplSink.
type EngineSink struct {
	S      *Shipper
	Engine uint8
}

func (es EngineSink) Enqueue(shard int, rec []byte) uint64 {
	return es.S.enqueue(es.Engine, shard, rec)
}
func (es EngineSink) Wait(tok uint64) { es.S.wait(tok) }

// SetTarget points the stream at a (possibly new) follower. A changed
// target always re-baselines with a full resync: the new follower's state
// is unknown.
func (s *Shipper) SetTarget(n *Node) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n == nil {
		s.target = nil
		s.buf = s.buf[:0]
		s.resync = false
		s.setDegraded(false) // no follower: writes are local-only by design
		s.acked = s.seq
		s.ackCond.Broadcast()
		s.cond.Signal()
		return
	}
	if s.target != nil && s.target.ID == n.ID && s.target.URL == n.URL {
		return
	}
	s.target = &Node{ID: n.ID, URL: n.URL}
	s.buf = s.buf[:0]
	s.resync = true
	s.setDegraded(true)
	s.ackCond.Broadcast()
	s.cond.Signal()
}

// ForceResync re-baselines the current stream (used when this node's owned
// range set changed, e.g. it inherited a dead peer's ranges: the follower
// is missing the inherited history).
func (s *Shipper) ForceResync() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.target == nil {
		return
	}
	s.buf = s.buf[:0]
	s.resync = true
	s.setDegraded(true)
	s.ackCond.Broadcast()
	s.cond.Signal()
}

// setDegraded must run under mu.
func (s *Shipper) setDegraded(d bool) {
	s.degrade = d
	if d {
		s.m.degraded.Set(1)
		s.ackCond.Broadcast()
	} else {
		s.m.degraded.Set(0)
	}
}

// Close flushes what it can (bounded) and stops the ship loop.
func (s *Shipper) Close() {
	s.mu.Lock()
	s.closing = true
	s.ackCond.Broadcast()
	s.cond.Signal()
	s.mu.Unlock()
	select {
	case <-s.done:
	case <-time.After(3 * time.Second):
	}
}

// run is the ship loop: one in-flight batch (or resync) at a time.
func (s *Shipper) run() {
	defer close(s.done)
	backoff := 50 * time.Millisecond
	for {
		s.mu.Lock()
		for !s.closing && (s.target == nil || (!s.resync && len(s.buf) == 0)) {
			s.cond.Wait()
		}
		if s.closing && (s.target == nil || (!s.resync && len(s.buf) == 0) || s.degrade) {
			s.mu.Unlock()
			return
		}
		target := *s.target
		doResync := s.resync
		if !doResync && s.cfg.Linger > 0 && len(s.buf) < s.cfg.MaxBatch {
			// Partial batch: hold briefly so writers landing now ride the
			// same POST. State may change while unlocked — re-evaluate from
			// the top if it did (the loop top also handles a close).
			s.mu.Unlock()
			time.Sleep(s.cfg.Linger)
			s.mu.Lock()
			if s.target == nil || s.resync || len(s.buf) == 0 {
				s.mu.Unlock()
				continue
			}
			target = *s.target
		}
		var batch []bufRec
		if !doResync {
			n := len(s.buf)
			if n > s.cfg.MaxBatch {
				n = s.cfg.MaxBatch
			}
			batch = make([]bufRec, n)
			copy(batch, s.buf[:n])
		}
		s.mu.Unlock()

		var err error
		if doResync {
			err = s.doResync(target)
		} else {
			err = s.shipBatch(target, batch)
		}

		s.mu.Lock()
		if err != nil {
			s.failures++
			s.m.errors.Inc()
			if s.failures >= s.cfg.DegradeAfter && !s.degrade {
				s.logf("cluster: shipper to %s degraded after %d failures: %v", target.ID, s.failures, err)
				s.setDegraded(true)
			}
			if s.closing {
				s.mu.Unlock()
				return
			}
			s.mu.Unlock()
			time.Sleep(backoff)
			if backoff < time.Second {
				backoff *= 2
			}
			continue
		}
		s.failures = 0
		backoff = 50 * time.Millisecond
		if !s.resync && len(s.buf) == 0 && s.degrade {
			s.logf("cluster: shipper to %s caught up, back to semi-sync", target.ID)
			s.setDegraded(false)
		}
		s.mu.Unlock()
	}
}

// shipBatch POSTs one contiguous batch (binary framing, see codec.go) and
// advances the cursor.
func (s *Shipper) shipBatch(target Node, batch []bufRec) error {
	req := BatchRequest{
		From:        s.cfg.Self,
		Epoch:       s.epoch,
		Start:       batch[0].seq,
		RingVersion: s.ringVersion(),
		DataShards:  s.cfg.DataShards,
		TraceShards: s.cfg.TraceShards,
		Records:     make([]ShipRecord, len(batch)),
	}
	for i, b := range batch {
		req.Records[i] = b.rec
	}
	var resp BatchResponse
	if err := s.postBatch(target.URL+PathReplBatch, &req, &resp); err != nil {
		return err
	}
	s.m.batches.Inc()
	s.mu.Lock()
	defer s.mu.Unlock()
	if resp.Resync {
		// Follower cannot continue this stream (unclean restart, epoch or
		// gap mismatch): re-baseline.
		s.logf("cluster: follower %s demands resync (acked %d)", target.ID, resp.Acked)
		s.buf = s.buf[:0]
		s.resync = true
		s.setDegraded(true)
		return nil
	}
	if resp.Error != "" {
		return fmt.Errorf("cluster: follower %s: %s", target.ID, resp.Error)
	}
	if resp.Acked > s.acked {
		shipped := resp.Acked - s.acked
		s.m.shipped.Add(shipped)
		// Trim everything the follower now has.
		cut := 0
		for cut < len(s.buf) && s.buf[cut].seq <= resp.Acked {
			cut++
		}
		s.buf = s.buf[cut:]
		s.acked = resp.Acked
		s.m.lag.Set(int64(s.seq - s.acked))
		s.ackCond.Broadcast()
	}
	return nil
}

// doResync cuts a wholesale snapshot under the store's write gate and
// replaces the follower's copy of this node's ranges.
func (s *Shipper) doResync(target Node) error {
	recs, baseline, err := s.cfg.Export()
	if err != nil {
		return fmt.Errorf("cluster: export for resync: %w", err)
	}
	req := SyncRequest{
		From:        s.cfg.Self,
		Epoch:       s.epoch,
		Baseline:    baseline,
		RingVersion: s.ringVersion(),
		DataShards:  s.cfg.DataShards,
		TraceShards: s.cfg.TraceShards,
		Records:     recs,
	}
	var resp SyncResponse
	if err := s.post(target.URL+PathReplSync, req, &resp); err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("cluster: resync rejected by %s: %s", target.ID, resp.Error)
	}
	s.m.resyncs.Inc()
	s.logf("cluster: resynced %d users' records to %s at baseline %d", len(recs), target.ID, baseline)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.resync = false
	if baseline > s.acked {
		s.acked = baseline
	}
	cut := 0
	for cut < len(s.buf) && s.buf[cut].seq <= baseline {
		cut++
	}
	s.buf = s.buf[cut:]
	s.m.lag.Set(int64(s.seq - s.acked))
	s.ackCond.Broadcast()
	return nil
}

// postBatch sends one batch in the binary replication framing, reusing one
// encode buffer across the shipper's (single-goroutine) ship loop.
func (s *Shipper) postBatch(url string, req *BatchRequest, into *BatchResponse) error {
	s.encBuf = EncodeBatchBinary(s.encBuf[:0], req)
	resp, err := s.cfg.HTTP.Post(url, ContentTypeReplBinary, bytes.NewReader(s.encBuf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: %s returned %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

func (s *Shipper) post(url string, body, into any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := s.cfg.HTTP.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: %s returned %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

// NextEpoch persists and returns the node's stream epoch: a counter in the
// node's data directory bumped once per process start. An empty dir yields
// a wall-clock-free ephemeral epoch of 1 (memory-only test nodes).
func NextEpoch(dir string) (uint64, error) {
	if dir == "" {
		return 1, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	path := filepath.Join(dir, "REPL_EPOCH")
	var epoch uint64
	if b, err := os.ReadFile(path); err == nil {
		if v, perr := strconv.ParseUint(string(bytes.TrimSpace(b)), 10, 64); perr == nil {
			epoch = v
		}
	}
	epoch++
	if err := writeFileAtomic(path, []byte(strconv.FormatUint(epoch, 10))); err != nil {
		return 0, err
	}
	return epoch, nil
}

// writeFileAtomic writes via temp file + rename so a crash never leaves a
// half-written file.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
