package cluster

import (
	"encoding/binary"
	"fmt"
)

// Binary framing for the replication batch plane. The JSON envelope spends
// most of its bytes (and decode CPU) on field names and base64 — a tax paid
// per shipped record on both ends of every batch POST. Batches instead
// travel as a version byte followed by uvarint-framed fields, the same
// idiom as the cloud wire codec (DESIGN.md §14) and the storage WAL. The
// receiver negotiates by Content-Type: ContentTypeReplBinary selects this
// codec, anything else is the JSON path, so mixed-version nodes
// interoperate. Resync and cursor traffic is rare and stays JSON.
//
// Layout:
//
//	version byte
//	uvarint len(From), From bytes
//	uvarint Epoch
//	uvarint Start
//	uvarint RingVersion
//	uvarint DataShards
//	uvarint TraceShards
//	uvarint len(Records)
//	per record: engine byte, uvarint Shard, uvarint len(Rec), Rec bytes

// ContentTypeReplBinary is the negotiated binary replication media type.
const ContentTypeReplBinary = "application/x-pmware-repl"

// replWireVersion is the first byte of every binary batch. v2 added the
// sender's ring version to the stream header (stream admission control); a
// v1 peer's batches fail the version check and fall back through its JSON
// retry like any mixed-version pair.
const replWireVersion = 2

// EncodeBatchBinary appends the batch's binary encoding to buf (reusing its
// capacity) and returns the filled slice.
func EncodeBatchBinary(buf []byte, req *BatchRequest) []byte {
	buf = append(buf, replWireVersion)
	buf = binary.AppendUvarint(buf, uint64(len(req.From)))
	buf = append(buf, req.From...)
	buf = binary.AppendUvarint(buf, req.Epoch)
	buf = binary.AppendUvarint(buf, req.Start)
	buf = binary.AppendUvarint(buf, req.RingVersion)
	buf = binary.AppendUvarint(buf, uint64(req.DataShards))
	buf = binary.AppendUvarint(buf, uint64(req.TraceShards))
	buf = binary.AppendUvarint(buf, uint64(len(req.Records)))
	for _, r := range req.Records {
		buf = append(buf, r.Engine)
		buf = binary.AppendUvarint(buf, uint64(r.Shard))
		buf = binary.AppendUvarint(buf, uint64(len(r.Rec)))
		buf = append(buf, r.Rec...)
	}
	return buf
}

// DecodeBatchBinary parses a binary batch. Record byte slices alias data —
// callers that retain them past the request must copy.
func DecodeBatchBinary(data []byte) (*BatchRequest, error) {
	r := binReader{b: data}
	if v, err := r.byte(); err != nil {
		return nil, err
	} else if v != replWireVersion {
		return nil, fmt.Errorf("cluster: batch wire version %d, want %d", v, replWireVersion)
	}
	var req BatchRequest
	from, err := r.lenBytes()
	if err != nil {
		return nil, err
	}
	req.From = string(from)
	if req.Epoch, err = r.uvarint(); err != nil {
		return nil, err
	}
	if req.Start, err = r.uvarint(); err != nil {
		return nil, err
	}
	if req.RingVersion, err = r.uvarint(); err != nil {
		return nil, err
	}
	if req.DataShards, err = r.uvarintInt(); err != nil {
		return nil, err
	}
	if req.TraceShards, err = r.uvarintInt(); err != nil {
		return nil, err
	}
	n, err := r.uvarintInt()
	if err != nil {
		return nil, err
	}
	if n < 0 || n > len(data) { // each record costs >= 1 byte: a larger claim is corruption
		return nil, fmt.Errorf("cluster: batch claims %d records in %d bytes", n, len(data))
	}
	req.Records = make([]ShipRecord, n)
	for i := range req.Records {
		eng, err := r.byte()
		if err != nil {
			return nil, err
		}
		shard, err := r.uvarintInt()
		if err != nil {
			return nil, err
		}
		rec, err := r.lenBytes()
		if err != nil {
			return nil, err
		}
		req.Records[i] = ShipRecord{Engine: eng, Shard: shard, Rec: rec}
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("cluster: %d trailing bytes after batch", len(data)-r.off)
	}
	return &req, nil
}

type binReader struct {
	b   []byte
	off int
}

func (r *binReader) byte() (byte, error) {
	if r.off >= len(r.b) {
		return 0, fmt.Errorf("cluster: truncated batch at offset %d", r.off)
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

func (r *binReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("cluster: bad uvarint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *binReader) uvarintInt() (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(len(r.b)) && v > 1<<31 {
		return 0, fmt.Errorf("cluster: uvarint %d out of range", v)
	}
	return int(v), nil
}

func (r *binReader) lenBytes() ([]byte, error) {
	n, err := r.uvarintInt()
	if err != nil {
		return nil, err
	}
	if n < 0 || r.off+n > len(r.b) {
		return nil, fmt.Errorf("cluster: truncated batch: %d-byte field at offset %d of %d", n, r.off, len(r.b))
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v, nil
}
