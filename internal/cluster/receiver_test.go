package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"

	"repro/internal/obs"
)

// Receiver stream admission: a sender whose stamped ring version is stale —
// or who the verify callback says is no longer a legitimate primary — must
// be refused before a single record is applied, on both the batch and the
// resync endpoint. The resync path is the dangerous one: it is exactly the
// request a restarted pre-failover primary uses to wholesale-replace its
// promoted heir's data.

// recApplier records every applied record; failAfter poisons applies past
// the given count (-1 = never fail).
type recApplier struct {
	recs    []ShipRecord
	batches int
}

func (a *recApplier) ApplyShipped(engine uint8, shard int, rec []byte) error {
	a.recs = append(a.recs, ShipRecord{Engine: engine, Shard: shard, Rec: rec})
	return nil
}

// batchApplier additionally implements the BatchApplier fast path.
type batchApplier struct{ recApplier }

func (a *batchApplier) ApplyShippedBatch(recs []ShipRecord) error {
	a.recs = append(a.recs, recs...)
	a.batches++
	return nil
}

func openTestReceiver(t *testing.T, applier Applier, verify func(string, uint64) error) (*Receiver, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	r, err := OpenReceiver(ReceiverConfig{
		Applier:      applier,
		DataShards:   2,
		TraceShards:  1,
		VerifyStream: verify,
		Metrics:      reg,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r, reg
}

func postBatch(t *testing.T, r *Receiver, b BatchRequest) BatchResponse {
	t.Helper()
	body, _ := json.Marshal(b)
	req := httptest.NewRequest("POST", PathReplBatch, bytes.NewReader(body))
	w := httptest.NewRecorder()
	r.HandleBatch(w, req)
	var resp BatchResponse
	if err := json.NewDecoder(w.Body).Decode(&resp); err != nil {
		t.Fatalf("decode batch response: %v", err)
	}
	return resp
}

func postSync(t *testing.T, r *Receiver, b SyncRequest) SyncResponse {
	t.Helper()
	body, _ := json.Marshal(b)
	req := httptest.NewRequest("POST", PathReplSync, bytes.NewReader(body))
	w := httptest.NewRecorder()
	r.HandleSync(w, req)
	var resp SyncResponse
	if err := json.NewDecoder(w.Body).Decode(&resp); err != nil {
		t.Fatalf("decode sync response: %v", err)
	}
	return resp
}

func testRecords(n int) []ShipRecord {
	out := make([]ShipRecord, n)
	for i := range out {
		out[i] = ShipRecord{Engine: EngineMain, Shard: i % 2, Rec: []byte(fmt.Sprintf("rec-%d", i))}
	}
	return out
}

// TestReceiverAdmissionRejectsStaleRing pins the zombie-primary guard: a
// resync or batch stamped with an older ring version than the receiver
// holds is refused with zero records applied and an unmoved cursor.
func TestReceiverAdmissionRejectsStaleRing(t *testing.T) {
	const localRing = 3
	applier := &recApplier{}
	verify := func(from string, rv uint64) error {
		if rv < localRing {
			return fmt.Errorf("stale ring v%d (this node holds v%d)", rv, localRing)
		}
		return nil
	}
	r, reg := openTestReceiver(t, applier, verify)

	// The zombie's resync: ring v1 from its boot flags.
	sresp := postSync(t, r, SyncRequest{
		From: "zombie", Epoch: 2, Baseline: 0, RingVersion: 1,
		DataShards: 2, TraceShards: 1, Records: testRecords(4),
	})
	if sresp.OK || sresp.Error == "" {
		t.Fatalf("stale resync accepted: %+v", sresp)
	}
	if len(applier.recs) != 0 {
		t.Fatalf("stale resync applied %d records", len(applier.recs))
	}
	if e, s := r.Cursor("zombie"); e != 0 || s != 0 {
		t.Fatalf("stale resync moved cursor to %d/%d", e, s)
	}

	// Same for a batch.
	bresp := postBatch(t, r, BatchRequest{
		From: "zombie", Epoch: 2, Start: 1, RingVersion: 1,
		DataShards: 2, TraceShards: 1, Records: testRecords(2),
	})
	if bresp.Error == "" {
		t.Fatalf("stale batch accepted: %+v", bresp)
	}
	if len(applier.recs) != 0 {
		t.Fatalf("stale batch applied %d records", len(applier.recs))
	}
	if got := reg.Counter("pci_repl_batches_rejected_total").Value(); got != 2 {
		t.Fatalf("rejected counter = %d, want 2", got)
	}

	// A current-ring sender is admitted: resync re-baselines, batch resumes.
	sresp = postSync(t, r, SyncRequest{
		From: "live", Epoch: 1, Baseline: 0, RingVersion: localRing,
		DataShards: 2, TraceShards: 1, Records: testRecords(3),
	})
	if !sresp.OK {
		t.Fatalf("live resync refused: %+v", sresp)
	}
	bresp = postBatch(t, r, BatchRequest{
		From: "live", Epoch: 1, Start: 1, RingVersion: localRing,
		DataShards: 2, TraceShards: 1, Records: testRecords(2),
	})
	if bresp.Error != "" || bresp.Acked != 2 {
		t.Fatalf("live batch: %+v", bresp)
	}
	if len(applier.recs) != 5 {
		t.Fatalf("applied %d records, want 5", len(applier.recs))
	}
}

// TestReceiverAdmissionRejectsTakenOverSender pins the same-version case: a
// sender the verify callback reports as failed over (its heir answers for
// its ranges) is refused even when its ring version is current.
func TestReceiverAdmissionRejectsTakenOverSender(t *testing.T) {
	applier := &recApplier{}
	verify := func(from string, rv uint64) error {
		if from == "dead" {
			return fmt.Errorf("sender %s is failed over", from)
		}
		return nil
	}
	r, _ := openTestReceiver(t, applier, verify)

	sresp := postSync(t, r, SyncRequest{
		From: "dead", Epoch: 3, Baseline: 0, RingVersion: 2,
		DataShards: 2, TraceShards: 1, Records: testRecords(2),
	})
	if sresp.OK || sresp.Error == "" {
		t.Fatalf("taken-over resync accepted: %+v", sresp)
	}
	if len(applier.recs) != 0 {
		t.Fatalf("taken-over resync applied %d records", len(applier.recs))
	}
}

// TestReceiverBatchApplierPath pins the batch fast path: an Applier that
// implements BatchApplier gets one ApplyShippedBatch call per admitted run
// (not one apply per record), and the cursor advances by the full run.
func TestReceiverBatchApplierPath(t *testing.T) {
	applier := &batchApplier{}
	r, _ := openTestReceiver(t, applier, nil)

	if resp := postSync(t, r, SyncRequest{
		From: "A", Epoch: 1, Baseline: 0,
		DataShards: 2, TraceShards: 1, Records: testRecords(3),
	}); !resp.OK {
		t.Fatalf("resync: %+v", resp)
	}
	resp := postBatch(t, r, BatchRequest{
		From: "A", Epoch: 1, Start: 1,
		DataShards: 2, TraceShards: 1, Records: testRecords(5),
	})
	if resp.Error != "" || resp.Acked != 5 {
		t.Fatalf("batch: %+v", resp)
	}
	if applier.batches != 2 {
		t.Fatalf("ApplyShippedBatch called %d times, want 2 (one per run)", applier.batches)
	}
	if len(applier.recs) != 8 {
		t.Fatalf("applied %d records, want 8", len(applier.recs))
	}
}
