package cluster

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func randBatch(rng *rand.Rand) *BatchRequest {
	n := rng.Intn(20)
	recs := make([]ShipRecord, n)
	for i := range recs {
		rec := make([]byte, rng.Intn(200))
		rng.Read(rec)
		recs[i] = ShipRecord{
			Engine: uint8(rng.Intn(2)),
			Shard:  rng.Intn(16),
			Rec:    rec,
		}
	}
	return &BatchRequest{
		From:        fmt.Sprintf("node-%d", rng.Intn(100)),
		Epoch:       rng.Uint64() >> rng.Intn(60),
		Start:       rng.Uint64() >> rng.Intn(60),
		RingVersion: rng.Uint64() >> rng.Intn(60),
		DataShards:  1 + rng.Intn(8),
		TraceShards: 1 + rng.Intn(8),
		Records:     recs,
	}
}

// Every batch must round-trip the binary framing exactly.
func TestBatchBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		want := randBatch(rng)
		enc := EncodeBatchBinary(nil, want)
		got, err := DecodeBatchBinary(enc)
		if err != nil {
			t.Fatalf("iteration %d: decode: %v", i, err)
		}
		if got.Records == nil {
			got.Records = []ShipRecord{}
		}
		if want.Records == nil {
			want.Records = []ShipRecord{}
		}
		for j := range got.Records {
			if got.Records[j].Rec == nil {
				got.Records[j].Rec = []byte{}
			}
			if want.Records[j].Rec == nil {
				want.Records[j].Rec = []byte{}
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("iteration %d: round-trip mismatch:\ngot  %+v\nwant %+v", i, got, want)
		}
	}
}

// Encoding into a reused buffer must not leak the previous batch.
func TestBatchBinaryBufferReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var buf []byte
	a, b := randBatch(rng), randBatch(rng)
	buf = EncodeBatchBinary(buf[:0], a)
	first := append([]byte(nil), buf...)
	buf = EncodeBatchBinary(buf[:0], b)
	buf = EncodeBatchBinary(buf[:0], a)
	if !bytes.Equal(buf, first) {
		t.Fatal("re-encoding the same batch into a reused buffer changed the bytes")
	}
}

// Truncation at any byte boundary must error, never misparse.
func TestBatchBinaryTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	enc := EncodeBatchBinary(nil, randBatch(rng))
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeBatchBinary(enc[:cut]); err == nil {
			t.Fatalf("decode of %d/%d-byte prefix succeeded", cut, len(enc))
		}
	}
	if _, err := DecodeBatchBinary(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Fatal("decode with a trailing byte succeeded")
	}
	bad := append([]byte(nil), enc...)
	bad[0] = 99
	if _, err := DecodeBatchBinary(bad); err == nil {
		t.Fatal("decode with a wrong version byte succeeded")
	}
}
