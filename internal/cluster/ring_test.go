package cluster

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteForcePrimary is the O(nodes*vnodes) oracle: enumerate every vnode
// point, find the smallest point hash >= key hash (wrapping to the global
// minimum), resolve takeover. The ring's binary search must agree on every
// key.
func bruteForcePrimary(r *Ring, key string) string {
	h := hash64(key)
	bestAny, bestGE := -1, -1
	var bestAnyH, bestGEH uint64
	better := func(cur int, curH, candH uint64, cand int) bool {
		if cur == -1 || candH < curH {
			return true
		}
		// Tie-break identically to the ring: lower node index wins.
		return candH == curH && cand < cur
	}
	for ni, n := range r.Nodes {
		for v := 0; v < r.VNodes; v++ {
			ph := hash64(fmt.Sprintf("%s#%d", n.ID, v))
			if better(bestAny, bestAnyH, ph, ni) {
				bestAny, bestAnyH = ni, ph
			}
			if ph >= h && better(bestGE, bestGEH, ph, ni) {
				bestGE, bestGEH = ni, ph
			}
		}
	}
	pick := bestGE
	if pick == -1 {
		pick = bestAny
	}
	return r.ownerID(pick)
}

func testNodes(n int) []Node {
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{ID: fmt.Sprintf("node-%c", 'a'+i), URL: fmt.Sprintf("http://10.0.0.%d:8080", i+1)}
	}
	return nodes
}

// TestRingMatchesBruteForceOracle pins the binary-searched lookup to the
// exhaustive oracle over random member counts and random keys.
func TestRingMatchesBruteForceOracle(t *testing.T) {
	prop := func(seed int64, nNodes uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nNodes)%5
		ring := NewRing(1, testNodes(n), 64)
		if rng.Intn(2) == 1 { // half the cases run with a takeover in place
			dead := ring.Nodes[rng.Intn(n)].ID
			if heir, ok := ring.FollowerID(dead); ok {
				ring = ring.WithTakeover(dead, heir)
			}
		}
		for i := 0; i < 64; i++ {
			key := fmt.Sprintf("user-%016x", rng.Uint64())
			if ring.PrimaryID(key) != bruteForcePrimary(ring, key) {
				t.Logf("key %s: ring=%s oracle=%s", key, ring.PrimaryID(key), bruteForcePrimary(ring, key))
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestRingDeterministicPlacement: same members (in any order) and vnode
// count build the same assignment for every key; decode(encode(ring)) also
// agrees.
func TestRingDeterministicPlacement(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nodes := testNodes(2 + rng.Intn(5))
		a := NewRing(7, nodes, 128)
		shuffled := make([]Node, len(nodes))
		copy(shuffled, nodes)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		b := NewRing(7, shuffled, 128)
		c, err := DecodeRing(a.Encode())
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		for i := 0; i < 128; i++ {
			key := fmt.Sprintf("user-%016x", rng.Uint64())
			if a.PrimaryID(key) != b.PrimaryID(key) || a.PrimaryID(key) != c.PrimaryID(key) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestRingBalance: at 128 vnodes, every node's share of a large random
// keyset stays within ±20% of the fair share.
func TestRingBalance(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 8} {
		ring := NewRing(1, testNodes(n), 128)
		rng := rand.New(rand.NewSource(int64(n)))
		const keys = 20000
		counts := map[string]int{}
		for i := 0; i < keys; i++ {
			counts[ring.PrimaryID(fmt.Sprintf("user-%016x", rng.Uint64()))]++
		}
		fair := float64(keys) / float64(n)
		for id, c := range counts {
			dev := float64(c)/fair - 1
			if dev > 0.20 || dev < -0.20 {
				t.Errorf("%d nodes: %s holds %d keys (%.1f%% off fair share %0.f)", n, id, c, dev*100, fair)
			}
		}
		if len(counts) != n {
			t.Errorf("%d nodes: only %d received keys", n, len(counts))
		}
	}
}

// TestRingMinimalDisruption: a join moves keys only TO the new node; a leave
// moves only the leaver's keys; everything else stays put.
func TestRingMinimalDisruption(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(rng.Intn(4))
		before := NewRing(1, testNodes(n), 128)
		joined := Node{ID: "node-z", URL: "http://10.0.0.99:8080"}
		after := before.WithJoin(joined)
		if after.Version != before.Version+1 {
			return false
		}
		left := before.Nodes[rng.Intn(n)].ID
		shrunk := before.WithLeave(left)
		for i := 0; i < 256; i++ {
			key := fmt.Sprintf("user-%016x", rng.Uint64())
			ob, oa := before.PrimaryID(key), after.PrimaryID(key)
			if ob != oa && oa != joined.ID {
				t.Logf("join moved %s from %s to %s (not the joiner)", key, ob, oa)
				return false
			}
			os := shrunk.PrimaryID(key)
			if ob != left && os != ob {
				t.Logf("leave of %s moved %s from %s to %s", left, key, ob, os)
				return false
			}
			if ob == left && os == left {
				return false // leaver must not keep keys
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestRingTakeoverAndFollower: promotion routes a dead node's keys to its
// follower; follower selection skips dead nodes; a rejoin restores the
// original owner.
func TestRingTakeoverAndFollower(t *testing.T) {
	ring := NewRing(1, testNodes(3), 128) // node-a, node-b, node-c
	if f, _ := ring.FollowerID("node-a"); f != "node-b" {
		t.Fatalf("follower(a)=%s, want node-b", f)
	}
	if f, _ := ring.FollowerID("node-c"); f != "node-a" {
		t.Fatalf("follower(c)=%s, want node-a (wrap)", f)
	}
	dead := "node-a"
	heir, _ := ring.FollowerID(dead)
	v2 := ring.WithTakeover(dead, heir)
	moved := 0
	for i := 0; i < 4096; i++ {
		key := fmt.Sprintf("user-%d", i)
		was, now := ring.PrimaryID(key), v2.PrimaryID(key)
		if was == dead {
			moved++
			if now != heir {
				t.Fatalf("key %s owned by dead %s went to %s, want heir %s", key, dead, now, heir)
			}
		} else if was != now {
			t.Fatalf("takeover moved unrelated key %s from %s to %s", key, was, now)
		}
	}
	if moved == 0 {
		t.Fatal("takeover test exercised no keys of the dead node")
	}
	// Dead nodes are skipped as followers: node-c's follower was node-a.
	if f, _ := v2.FollowerID("node-c"); f != "node-b" {
		t.Fatalf("follower(c) with node-a dead = %s, want node-b", f)
	}
	// Rejoin clears the takeover.
	v3 := v2.WithJoin(Node{ID: dead, URL: "http://10.0.0.1:8080"})
	for i := 0; i < 1024; i++ {
		key := fmt.Sprintf("user-%d", i)
		if v3.PrimaryID(key) != ring.PrimaryID(key) {
			t.Fatalf("rejoin did not restore placement for %s", key)
		}
	}
}
