package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/obs"
)

// Applier is what the receiver needs from the node's store: journal one
// shipped record verbatim into the named engine and shard.
type Applier interface {
	ApplyShipped(engine uint8, shard int, rec []byte) error
}

// Receiver is the follower side of WAL-shipping replication: it applies
// shipped batches in order, tracks one durable cursor per source stream,
// and demands a full resync whenever it cannot prove the stream is
// contiguous with what it already holds.
//
// Cursor rules (DESIGN.md §15): the cursor file is written at clean
// shutdown and when a resync re-baselines the stream — not per batch,
// because a dirty marker created at open and removed at clean close
// detects crashes, and after an unclean restart every persisted cursor is
// discarded anyway. The acknowledged cursor can therefore never run ahead
// of the follower's durable state — at worst it under-reports and the
// stream re-baselines with a full resync.
type Receiver struct {
	cfg ReceiverConfig

	mu  sync.Mutex
	cur map[string]streamCursor // source node -> position

	applied     *obs.Counter
	syncRecords *obs.Counter
	rejected    *obs.Counter
}

type streamCursor struct {
	Epoch uint64 `json:"epoch"`
	Seq   uint64 `json:"seq"`
}

// ReceiverConfig configures a node's receiver.
type ReceiverConfig struct {
	// Applier journals shipped records (the cloud store).
	Applier Applier
	// Dir persists cursors and the dirty marker ("" = memory-only: every
	// restart resyncs).
	Dir string
	// DataShards/TraceShards validate stream compatibility.
	DataShards  int
	TraceShards int
	// Metrics receives the pci_repl_* receiver families (nil = obs.Default).
	Metrics *obs.Registry
	Logf    func(format string, args ...any)
}

const (
	dirtyMarker  = "REPL_DIRTY"
	cursorPrefix = "repl-cursor-"
)

// OpenReceiver loads persisted cursors (discarding them after an unclean
// shutdown) and arms the dirty marker.
func OpenReceiver(cfg ReceiverConfig) (*Receiver, error) {
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.Default()
	}
	r := &Receiver{
		cfg:         cfg,
		cur:         map[string]streamCursor{},
		applied:     reg.Counter("pci_repl_applied_records_total"),
		syncRecords: reg.Counter("pci_repl_resync_records_total"),
		rejected:    reg.Counter("pci_repl_batches_rejected_total"),
	}
	if cfg.Dir == "" {
		return r, nil
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	marker := filepath.Join(cfg.Dir, dirtyMarker)
	if _, err := os.Stat(marker); err == nil {
		// Unclean shutdown: cursors may under-report what was applied, and
		// resuming would double-apply the gap. Discard them; the streams
		// re-baseline with full resyncs.
		r.logf("cluster: unclean shutdown detected, discarding replication cursors")
		ents, _ := os.ReadDir(cfg.Dir)
		for _, e := range ents {
			if strings.HasPrefix(e.Name(), cursorPrefix) {
				os.Remove(filepath.Join(cfg.Dir, e.Name()))
			}
		}
	} else {
		ents, _ := os.ReadDir(cfg.Dir)
		for _, e := range ents {
			name := e.Name()
			if !strings.HasPrefix(name, cursorPrefix) || !strings.HasSuffix(name, ".json") {
				continue
			}
			b, err := os.ReadFile(filepath.Join(cfg.Dir, name))
			if err != nil {
				continue
			}
			var c streamCursor
			if json.Unmarshal(b, &c) == nil {
				from := strings.TrimSuffix(strings.TrimPrefix(name, cursorPrefix), ".json")
				r.cur[from] = c
			}
		}
	}
	if err := os.WriteFile(marker, []byte("1"), 0o644); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *Receiver) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// Close persists exact cursors and disarms the dirty marker.
func (r *Receiver) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cfg.Dir == "" {
		return nil
	}
	for from, c := range r.cur {
		if err := r.persistLocked(from, c); err != nil {
			return err
		}
	}
	return os.Remove(filepath.Join(r.cfg.Dir, dirtyMarker))
}

func (r *Receiver) persistLocked(from string, c streamCursor) error {
	if r.cfg.Dir == "" {
		return nil
	}
	b, _ := json.Marshal(c)
	return writeFileAtomic(filepath.Join(r.cfg.Dir, cursorPrefix+from+".json"), b)
}

// Cursor reports the follower's position in one source's stream.
func (r *Receiver) Cursor(from string) (epoch, seq uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.cur[from]
	return c.Epoch, c.Seq
}

func (r *Receiver) validShards(data, trace int) error {
	if data != r.cfg.DataShards || trace != r.cfg.TraceShards {
		return fmt.Errorf("shard layout mismatch: stream %d/%d vs local %d/%d (key placement would differ)",
			data, trace, r.cfg.DataShards, r.cfg.TraceShards)
	}
	return nil
}

// HandleBatch is the PathReplBatch endpoint. The batch body is negotiated
// by Content-Type: the binary framing (codec.go) on the hot path, JSON from
// older peers.
func (r *Receiver) HandleBatch(w http.ResponseWriter, req *http.Request) {
	var b BatchRequest
	if req.Header.Get("Content-Type") == ContentTypeReplBinary {
		body, err := io.ReadAll(req.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		// Decoded records alias body, which stays reachable for as long as
		// the engine parks them — no per-record copy.
		dec, err := DecodeBatchBinary(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		b = *dec
	} else if err := json.NewDecoder(req.Body).Decode(&b); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	resp := BatchResponse{}
	c := r.cur[b.From]
	switch {
	case r.validShards(b.DataShards, b.TraceShards) != nil:
		resp.Error = r.validShards(b.DataShards, b.TraceShards).Error()
		r.rejected.Inc()
	case b.Epoch != c.Epoch || b.Start != c.Seq+1:
		// A stream this follower cannot prove contiguous: wrong epoch
		// (primary restarted, or follower never met this primary) or a gap.
		resp.Resync = true
		resp.Acked = c.Seq
		r.rejected.Inc()
	default:
		applied := 0
		for _, rec := range b.Records {
			if err := r.cfg.Applier.ApplyShipped(rec.Engine, rec.Shard, rec.Rec); err != nil {
				resp.Error = fmt.Sprintf("apply record %d: %v", c.Seq+uint64(applied)+1, err)
				break
			}
			applied++
		}
		c.Seq += uint64(applied)
		r.cur[b.From] = c
		r.applied.Add(uint64(applied))
		resp.Acked = c.Seq
		// No cursor persist here: a crash discards cursors via the dirty
		// marker regardless, so only clean close and resync re-baselines
		// write the file.
	}
	writeJSON(w, resp)
}

// HandleSync is the PathReplSync endpoint: wholesale replacement of the
// source's ranges, then the cursor re-baselines.
func (r *Receiver) HandleSync(w http.ResponseWriter, req *http.Request) {
	var b SyncRequest
	if err := json.NewDecoder(req.Body).Decode(&b); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	resp := SyncResponse{}
	if err := r.validShards(b.DataShards, b.TraceShards); err != nil {
		resp.Error = err.Error()
		r.rejected.Inc()
		writeJSON(w, resp)
		return
	}
	for i, rec := range b.Records {
		if err := r.cfg.Applier.ApplyShipped(rec.Engine, rec.Shard, rec.Rec); err != nil {
			resp.Error = fmt.Sprintf("apply sync record %d: %v", i, err)
			writeJSON(w, resp)
			return
		}
	}
	c := streamCursor{Epoch: b.Epoch, Seq: b.Baseline}
	r.cur[b.From] = c
	r.syncRecords.Add(uint64(len(b.Records)))
	if err := r.persistLocked(b.From, c); err != nil {
		resp.Error = fmt.Sprintf("persist cursor: %v", err)
		writeJSON(w, resp)
		return
	}
	r.logf("cluster: resynced %d records from %s, cursor re-baselined at %d", len(b.Records), b.From, b.Baseline)
	resp.OK = true
	writeJSON(w, resp)
}

// HandleCursor is the PathReplCursor endpoint (?from=<node>).
func (r *Receiver) HandleCursor(w http.ResponseWriter, req *http.Request) {
	from := req.URL.Query().Get("from")
	epoch, seq := r.Cursor(from)
	writeJSON(w, CursorResponse{Epoch: epoch, Seq: seq, Resync: epoch == 0})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
