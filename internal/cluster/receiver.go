package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/obs"
)

// Applier is what the receiver needs from the node's store: journal one
// shipped record verbatim into the named engine and shard.
type Applier interface {
	ApplyShipped(engine uint8, shard int, rec []byte) error
}

// BatchApplier is an optional Applier fast path: journal one contiguous run
// of shipped records, grouped so each engine shard pays roughly one
// group-commit wait for the whole run instead of one per record (with a
// non-zero commit linger, the per-record path costs a full linger each).
// An error reports the whole run as unapplied even though some shards'
// groups may already be durable; that is safe because batch-apply errors
// are terminal — a poisoned shard or a corrupt record — and the stream
// cannot continue past them anyway (the primary degrades and the follower
// is healed by resync or replacement).
type BatchApplier interface {
	ApplyShippedBatch(recs []ShipRecord) error
}

// Receiver is the follower side of WAL-shipping replication: it applies
// shipped batches in order, tracks one durable cursor per source stream,
// and demands a full resync whenever it cannot prove the stream is
// contiguous with what it already holds.
//
// Cursor rules (DESIGN.md §15): the cursor file is written at clean
// shutdown and when a resync re-baselines the stream — not per batch,
// because a dirty marker created at open and removed at clean close
// detects crashes, and after an unclean restart every persisted cursor is
// discarded anyway. The acknowledged cursor can therefore never run ahead
// of the follower's durable state — at worst it under-reports and the
// stream re-baselines with a full resync.
//
// Locking: Receiver.mu guards only the stream map and cursor values, so
// the cursor endpoint and other sources' streams never block behind an
// apply; each stream's validate→apply→advance sequence is serialized by
// its own sourceStream.apply mutex.
type Receiver struct {
	cfg ReceiverConfig

	mu  sync.Mutex
	src map[string]*sourceStream // source node -> stream state

	applied     *obs.Counter
	syncRecords *obs.Counter
	rejected    *obs.Counter
}

// sourceStream is one primary's stream state.
type sourceStream struct {
	apply sync.Mutex   // serializes application (batch and sync) for this stream
	c     streamCursor // guarded by Receiver.mu
}

type streamCursor struct {
	Epoch uint64 `json:"epoch"`
	Seq   uint64 `json:"seq"`
}

// ReceiverConfig configures a node's receiver.
type ReceiverConfig struct {
	// Applier journals shipped records (the cloud store). If it also
	// implements BatchApplier, runs are applied through the batch path.
	Applier Applier
	// Dir persists cursors and the dirty marker ("" = memory-only: every
	// restart resyncs).
	Dir string
	// DataShards/TraceShards validate stream compatibility.
	DataShards  int
	TraceShards int
	// VerifyStream admits or rejects a stream before any record is applied:
	// from is the sending node, ringVersion the ring version it stamped on
	// the request. The cluster node wires this to its ring view, so a
	// sender with a stale topology — e.g. a restarted primary that was
	// failed over while it was down — is refused instead of wholesale-
	// replacing this node's (possibly promoted-primary) state. nil accepts
	// every stream.
	VerifyStream func(from string, ringVersion uint64) error
	// Metrics receives the pci_repl_* receiver families (nil = obs.Default).
	Metrics *obs.Registry
	Logf    func(format string, args ...any)
}

const (
	dirtyMarker  = "REPL_DIRTY"
	cursorPrefix = "repl-cursor-"
)

// OpenReceiver loads persisted cursors (discarding them after an unclean
// shutdown) and arms the dirty marker.
func OpenReceiver(cfg ReceiverConfig) (*Receiver, error) {
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.Default()
	}
	r := &Receiver{
		cfg:         cfg,
		src:         map[string]*sourceStream{},
		applied:     reg.Counter("pci_repl_applied_records_total"),
		syncRecords: reg.Counter("pci_repl_resync_records_total"),
		rejected:    reg.Counter("pci_repl_batches_rejected_total"),
	}
	if cfg.Dir == "" {
		return r, nil
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	marker := filepath.Join(cfg.Dir, dirtyMarker)
	if _, err := os.Stat(marker); err == nil {
		// Unclean shutdown: cursors may under-report what was applied, and
		// resuming would double-apply the gap. Discard them; the streams
		// re-baseline with full resyncs.
		r.logf("cluster: unclean shutdown detected, discarding replication cursors")
		ents, _ := os.ReadDir(cfg.Dir)
		for _, e := range ents {
			if strings.HasPrefix(e.Name(), cursorPrefix) {
				os.Remove(filepath.Join(cfg.Dir, e.Name()))
			}
		}
	} else {
		ents, _ := os.ReadDir(cfg.Dir)
		for _, e := range ents {
			name := e.Name()
			if !strings.HasPrefix(name, cursorPrefix) || !strings.HasSuffix(name, ".json") {
				continue
			}
			b, err := os.ReadFile(filepath.Join(cfg.Dir, name))
			if err != nil {
				continue
			}
			var c streamCursor
			if json.Unmarshal(b, &c) == nil {
				from := strings.TrimSuffix(strings.TrimPrefix(name, cursorPrefix), ".json")
				r.src[from] = &sourceStream{c: c}
			}
		}
	}
	if err := os.WriteFile(marker, []byte("1"), 0o644); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *Receiver) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// source returns (creating if needed) the stream state for one sender.
func (r *Receiver) source(from string) *sourceStream {
	r.mu.Lock()
	defer r.mu.Unlock()
	ss := r.src[from]
	if ss == nil {
		ss = &sourceStream{}
		r.src[from] = ss
	}
	return ss
}

// Close persists exact cursors and disarms the dirty marker.
func (r *Receiver) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cfg.Dir == "" {
		return nil
	}
	for from, ss := range r.src {
		if err := r.persist(from, ss.c); err != nil {
			return err
		}
	}
	return os.Remove(filepath.Join(r.cfg.Dir, dirtyMarker))
}

// persist writes one stream's cursor file. Callers serialize per stream
// (the stream's apply mutex, or Receiver.mu at close).
func (r *Receiver) persist(from string, c streamCursor) error {
	if r.cfg.Dir == "" {
		return nil
	}
	b, _ := json.Marshal(c)
	return writeFileAtomic(filepath.Join(r.cfg.Dir, cursorPrefix+from+".json"), b)
}

// Cursor reports the follower's position in one source's stream.
func (r *Receiver) Cursor(from string) (epoch, seq uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ss := r.src[from]
	if ss == nil {
		return 0, 0
	}
	return ss.c.Epoch, ss.c.Seq
}

func (r *Receiver) validShards(data, trace int) error {
	if data != r.cfg.DataShards || trace != r.cfg.TraceShards {
		return fmt.Errorf("shard layout mismatch: stream %d/%d vs local %d/%d (key placement would differ)",
			data, trace, r.cfg.DataShards, r.cfg.TraceShards)
	}
	return nil
}

func (r *Receiver) verifyStream(from string, ringVersion uint64) error {
	if r.cfg.VerifyStream == nil {
		return nil
	}
	return r.cfg.VerifyStream(from, ringVersion)
}

// applyRun journals one contiguous run of records, preferring the batch
// path (one commit wait per engine shard) over per-record applies. The
// serial fallback reports the applied prefix on error; the batch path
// reports zero (see BatchApplier for why that is safe).
func (r *Receiver) applyRun(recs []ShipRecord) (applied int, errStr string) {
	if ba, ok := r.cfg.Applier.(BatchApplier); ok {
		if err := ba.ApplyShippedBatch(recs); err != nil {
			return 0, fmt.Sprintf("apply batch: %v", err)
		}
		return len(recs), ""
	}
	for i, rec := range recs {
		if err := r.cfg.Applier.ApplyShipped(rec.Engine, rec.Shard, rec.Rec); err != nil {
			return i, fmt.Sprintf("apply record %d: %v", i, err)
		}
	}
	return len(recs), ""
}

// HandleBatch is the PathReplBatch endpoint. The batch body is negotiated
// by Content-Type: the binary framing (codec.go) on the hot path, JSON from
// older peers.
func (r *Receiver) HandleBatch(w http.ResponseWriter, req *http.Request) {
	var b BatchRequest
	if req.Header.Get("Content-Type") == ContentTypeReplBinary {
		body, err := io.ReadAll(req.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		// Decoded records alias body, which stays reachable for as long as
		// the engine parks them — no per-record copy.
		dec, err := DecodeBatchBinary(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		b = *dec
	} else if err := json.NewDecoder(req.Body).Decode(&b); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ss := r.source(b.From)
	ss.apply.Lock()
	defer ss.apply.Unlock()
	r.mu.Lock()
	c := ss.c
	r.mu.Unlock()
	resp := BatchResponse{Acked: c.Seq}
	switch {
	case r.validShards(b.DataShards, b.TraceShards) != nil:
		resp.Error = r.validShards(b.DataShards, b.TraceShards).Error()
		r.rejected.Inc()
	case r.verifyStream(b.From, b.RingVersion) != nil:
		resp.Error = r.verifyStream(b.From, b.RingVersion).Error()
		r.rejected.Inc()
	case b.Epoch != c.Epoch || b.Start != c.Seq+1:
		// A stream this follower cannot prove contiguous: wrong epoch
		// (primary restarted, or follower never met this primary) or a gap.
		resp.Resync = true
		r.rejected.Inc()
	default:
		applied, errStr := r.applyRun(b.Records)
		r.mu.Lock()
		ss.c.Seq += uint64(applied)
		resp.Acked = ss.c.Seq
		r.mu.Unlock()
		r.applied.Add(uint64(applied))
		if errStr != "" {
			resp.Error = errStr
		}
		// No cursor persist here: a crash discards cursors via the dirty
		// marker regardless, so only clean close and resync re-baselines
		// write the file.
	}
	writeJSON(w, resp)
}

// HandleSync is the PathReplSync endpoint: wholesale replacement of the
// source's ranges, then the cursor re-baselines. Admission runs the same
// VerifyStream check as batches — a resync is precisely the request a
// zombie primary uses to overwrite its heir, so it must not bypass it.
func (r *Receiver) HandleSync(w http.ResponseWriter, req *http.Request) {
	var b SyncRequest
	if err := json.NewDecoder(req.Body).Decode(&b); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ss := r.source(b.From)
	ss.apply.Lock()
	defer ss.apply.Unlock()
	resp := SyncResponse{}
	if err := r.validShards(b.DataShards, b.TraceShards); err != nil {
		resp.Error = err.Error()
		r.rejected.Inc()
		writeJSON(w, resp)
		return
	}
	if err := r.verifyStream(b.From, b.RingVersion); err != nil {
		resp.Error = err.Error()
		r.rejected.Inc()
		r.logf("cluster: refused resync from %s: %v", b.From, err)
		writeJSON(w, resp)
		return
	}
	applied, errStr := r.applyRun(b.Records)
	if errStr != "" {
		resp.Error = fmt.Sprintf("apply sync: %s", errStr)
		writeJSON(w, resp)
		return
	}
	c := streamCursor{Epoch: b.Epoch, Seq: b.Baseline}
	r.mu.Lock()
	ss.c = c
	r.mu.Unlock()
	r.syncRecords.Add(uint64(applied))
	if err := r.persist(b.From, c); err != nil {
		resp.Error = fmt.Sprintf("persist cursor: %v", err)
		writeJSON(w, resp)
		return
	}
	r.logf("cluster: resynced %d records from %s, cursor re-baselined at %d", len(b.Records), b.From, b.Baseline)
	resp.OK = true
	writeJSON(w, resp)
}

// HandleCursor is the PathReplCursor endpoint (?from=<node>).
func (r *Receiver) HandleCursor(w http.ResponseWriter, req *http.Request) {
	from := req.URL.Query().Get("from")
	epoch, seq := r.Cursor(from)
	writeJSON(w, CursorResponse{Epoch: epoch, Seq: seq, Resync: epoch == 0})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
