package cluster

import (
	"bytes"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// Coordinator owns ring membership: it builds new ring versions on node
// join/leave/failure and pushes them to every member. Nodes and clients
// never invent rings — they only adopt higher versions — so there is one
// writer of topology and a total order on its decisions.
//
// It is deliberately small: membership state lives in memory (a restarted
// coordinator is re-seeded from flags and re-pushes; nodes ignore pushes
// that do not exceed their version). Leases/fencing for partitioned
// primaries are out of scope and called out in DESIGN.md §15.
type Coordinator struct {
	mu    sync.Mutex
	ring  *Ring
	http  *http.Client
	logf  func(format string, args ...any)
	fails map[string]int

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewCoordinator seeds ring version 1 over the given members.
func NewCoordinator(nodes []Node, vnodes int, httpc *http.Client, logf func(string, ...any)) *Coordinator {
	if httpc == nil {
		httpc = &http.Client{Timeout: 10 * time.Second}
	}
	return &Coordinator{
		ring:  NewRing(1, nodes, vnodes),
		http:  httpc,
		logf:  logf,
		fails: map[string]int{},
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
}

func (c *Coordinator) log(format string, args ...any) {
	if c.logf != nil {
		c.logf(format, args...)
	}
}

// Ring returns the current ring.
func (c *Coordinator) Ring() *Ring {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring
}

// PushAll sends the current ring to every member (best effort; a node that
// misses a push catches up on the next one, or redirects clients until it
// does).
func (c *Coordinator) PushAll() {
	c.mu.Lock()
	ring := c.ring
	c.mu.Unlock()
	for _, n := range ring.Nodes {
		c.push(n, ring)
	}
}

// push delivers one ring version to one node, reporting whether the node
// acknowledged it (an already-newer ring counts: the node is current).
func (c *Coordinator) push(n Node, ring *Ring) bool {
	resp, err := c.http.Post(n.URL+PathRing, "application/json", bytes.NewReader(ring.Encode()))
	if err != nil {
		c.log("cluster: ring v%d push to %s failed: %v", ring.Version, n.ID, err)
		return false
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusConflict {
		c.log("cluster: ring v%d push to %s returned %d", ring.Version, n.ID, resp.StatusCode)
		return false
	}
	return true
}

// Fail promotes the failed node's follower over its ranges and pushes the
// new ring. The follower is safe to serve immediately: semi-synchronous
// replication means every acknowledged write is already in its store.
func (c *Coordinator) Fail(id string) error {
	c.mu.Lock()
	if !c.ring.alive(id) {
		c.mu.Unlock()
		return nil // already failed over
	}
	heir, ok := c.ring.FollowerID(id)
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("cluster: no follower to promote for %s", id)
	}
	c.ring = c.ring.WithTakeover(id, heir)
	ring := c.ring
	c.mu.Unlock()
	c.log("cluster: node %s failed, promoting %s (ring v%d)", id, heir, ring.Version)
	c.PushAll()
	return nil
}

// Join adds (or revives) a member and pushes the new ring. Nodes that lose
// ranges to the joiner hand the affected users off when they adopt the new
// version.
//
// Push order matters: donors (every existing member) get the ring before
// the joiner. A node's AdoptRing hands users off synchronously, so by the
// time a donor acknowledges the push the joiner has imported them — and
// only then does the joiner itself adopt the version that makes it serve.
// Pushed the other way round, the joiner would accept (and acknowledge)
// writes for an inherited user before the donor's handoff import arrived,
// and the import — a whole-user snapshot — would silently replace them.
func (c *Coordinator) Join(n Node) error {
	c.mu.Lock()
	c.ring = c.ring.WithJoin(n)
	ring := c.ring
	c.fails[n.ID] = 0
	c.mu.Unlock()
	c.log("cluster: node %s joined (ring v%d, %d members)", n.ID, ring.Version, len(ring.Nodes))
	for _, m := range ring.Nodes {
		if m.ID != n.ID {
			c.push(m, ring)
		}
	}
	c.push(n, ring)
	return nil
}

// Leave removes a member gracefully: the departing node sees the new ring,
// hands every user it owned to the new owners, and only then shuts down.
//
// The leaver — the donor of every moved user — is pushed FIRST, the
// survivors after. AdoptRing hands users off synchronously, so when the
// leaver's push returns, every new owner already holds the imported data,
// and only then do the survivors adopt the version under which they serve
// those users. Pushed survivors-first, a gainer would acknowledge writes
// for a moved user in the window before the leaver's handoff import, and
// the import — a whole-user snapshot of the leaver's older state — would
// silently replace them: an acknowledged write lost with no failure
// anywhere. (Writes during the donor-first window just bounce between the
// v-old owner's 421 and not-yet-adopted survivors until a push lands;
// unacknowledged, so the client retries them — slower, never lost.)
func (c *Coordinator) Leave(id string) error {
	c.mu.Lock()
	old := c.ring
	if _, ok := old.NodeByID(id); !ok {
		c.mu.Unlock()
		return fmt.Errorf("cluster: unknown node %s", id)
	}
	if len(old.Nodes) < 2 {
		c.mu.Unlock()
		return fmt.Errorf("cluster: cannot remove the last node")
	}
	c.ring = old.WithLeave(id)
	ring := c.ring
	c.mu.Unlock()
	c.log("cluster: node %s leaving (ring v%d, %d members)", id, ring.Version, len(ring.Nodes))
	// The leaver is not a member of the new ring, so PushAll would skip it.
	if n, ok := old.NodeByID(id); ok {
		if !c.push(n, ring) {
			c.log("cluster: leaver %s missed ring v%d; its users move on the next resync, not by handoff", id, ring.Version)
		}
	}
	c.PushAll()
	return nil
}

// StartHealth runs the failure detector: probe every alive member's
// /healthz each interval, and after `threshold` consecutive failures
// promote its follower. Transient blips under the threshold only cost the
// probe; a false positive past it is still safe for data (the heir holds
// every acknowledged write) at the price of a resync when the node rejoins.
func (c *Coordinator) StartHealth(interval time.Duration, threshold int) {
	if threshold <= 0 {
		threshold = 3
	}
	go func() {
		defer close(c.done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-tick.C:
				c.probeAll(threshold)
			}
		}
	}()
}

func (c *Coordinator) probeAll(threshold int) {
	c.mu.Lock()
	ring := c.ring
	c.mu.Unlock()
	for _, n := range ring.Nodes {
		if !ring.alive(n.ID) {
			// Taken-over members keep getting probed: a failed node that
			// restarts must be driven back in through Join — the push clears
			// its takeover entry and makes its heir hand the ranges (with
			// every write accepted during the failover) back to it. Without
			// this rejoin trigger no corrective ring would ever reach the
			// restarted node.
			if c.probe(n) {
				c.log("cluster: failed node %s answers again, rejoining it", n.ID)
				if err := c.Join(n); err != nil {
					c.log("cluster: rejoin of %s failed: %v", n.ID, err)
				}
			}
			continue
		}
		ok := c.probe(n)
		c.mu.Lock()
		if ok {
			c.fails[n.ID] = 0
			c.mu.Unlock()
			continue
		}
		c.fails[n.ID]++
		trip := c.fails[n.ID] >= threshold
		c.mu.Unlock()
		if trip {
			if err := c.Fail(n.ID); err != nil {
				c.log("cluster: failover of %s blocked: %v", n.ID, err)
			}
		}
	}
}

func (c *Coordinator) probe(n Node) bool {
	resp, err := c.http.Get(n.URL + "/healthz")
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// Stop halts the health detector (if started).
func (c *Coordinator) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
}
