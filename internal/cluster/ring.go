// Package cluster is the horizontal-scaling layer of the PCI: a
// consistent-hash ring that partitions the user keyspace across N nodes,
// and WAL-shipping replication that keeps one follower per primary in
// byte-identical sync (see ship.go). The package is deliberately below
// internal/cloud in the import graph — it moves opaque record bytes and
// node metadata, never decoded store state.
package cluster

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
)

// Node is one PCI process in the ring.
type Node struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// Ring is a versioned consistent-hash ring with virtual nodes. Placement is
// deterministic in (Nodes, VNodes): every participant — client, server,
// coordinator — that holds the same ring computes the same owner for every
// key, with no coordination. Version totally orders ring generations; nodes
// and clients accept only pushes with a higher version than they hold.
//
// Takeover maps a failed node's ID to its heir: the heir answers for every
// vnode the failed node owned. It is how promotion works without moving the
// failed node's ranges to arbitrary survivors (only the heir has the
// replicated data).
type Ring struct {
	Version  uint64            `json:"version"`
	VNodes   int               `json:"vnodes"`
	Nodes    []Node            `json:"nodes"`
	Takeover map[string]string `json:"takeover,omitempty"`

	points []point // lazily built, sorted by hash
}

type point struct {
	hash uint64
	node int // index into Nodes
}

// DefaultVNodes is the virtual-node count per physical node. 128 keeps the
// ±20% balance bound of the property tests with room to spare.
const DefaultVNodes = 128

// NewRing builds a ring over the given nodes. Nodes are sorted by ID so the
// same member set always yields the same ring regardless of argument order.
func NewRing(version uint64, nodes []Node, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	ns := make([]Node, len(nodes))
	copy(ns, nodes)
	sort.Slice(ns, func(i, j int) bool { return ns[i].ID < ns[j].ID })
	r := &Ring{Version: version, VNodes: vnodes, Nodes: ns}
	r.build()
	return r
}

// mix64 is the splitmix64 finalizer. FNV alone distributes short labels with
// shared prefixes ("a#0", "a#1", ...) unevenly; the finalizer's avalanche
// restores uniformity without giving up determinism.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// KeyHash is the position of a user key on the ring.
func KeyHash(key string) uint64 { return hash64(key) }

func (r *Ring) build() {
	r.points = make([]point, 0, len(r.Nodes)*r.VNodes)
	for ni, n := range r.Nodes {
		for v := 0; v < r.VNodes; v++ {
			r.points = append(r.points, point{hash: hash64(fmt.Sprintf("%s#%d", n.ID, v)), node: ni})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by node index so placement
		// stays deterministic.
		return r.points[i].node < r.points[j].node
	})
}

// ensure rebuilds the point table after JSON decoding.
func (r *Ring) ensure() {
	if len(r.points) != len(r.Nodes)*r.VNodes {
		r.build()
	}
}

// ownerID resolves a node index through the takeover table.
func (r *Ring) ownerID(ni int) string {
	id := r.Nodes[ni].ID
	for i := 0; i < len(r.Takeover); i++ { // follow (compressed) chains defensively
		heir, ok := r.Takeover[id]
		if !ok {
			return id
		}
		id = heir
	}
	return id
}

// PrimaryID reports which node ID owns the key. Placement: hash the key,
// binary-search the first vnode point at or after it (wrapping), resolve the
// point's node through the takeover table.
func (r *Ring) PrimaryID(key string) string {
	r.ensure()
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.ownerID(r.points[i].node)
}

// Primary reports the node that owns the key.
func (r *Ring) Primary(key string) (Node, bool) {
	return r.NodeByID(r.PrimaryID(key))
}

// NodeByID looks a member up by ID.
func (r *Ring) NodeByID(id string) (Node, bool) {
	for _, n := range r.Nodes {
		if n.ID == id {
			return n, true
		}
	}
	return Node{}, false
}

// alive reports whether a node currently answers for its own ranges (it has
// not been taken over).
func (r *Ring) alive(id string) bool {
	_, dead := r.Takeover[id]
	return !dead
}

// Alive reports whether a node answers for its own ranges under this ring —
// false for a member that has been failed over to its heir. Receivers use
// it for stream admission: a taken-over node is not a legitimate primary
// for anything, so nothing it ships may replace data.
func (r *Ring) Alive(id string) bool { return r.alive(id) }

// FollowerID reports the designated follower for a primary: the next alive
// node in sorted-ID order. Follower assignment is per NODE, not per range —
// a primary ships its entire WAL to exactly one follower, which is what
// makes the follower's store a byte-identical replica of the stream.
func (r *Ring) FollowerID(primaryID string) (string, bool) {
	r.ensure()
	n := len(r.Nodes)
	start := -1
	for i, node := range r.Nodes {
		if node.ID == primaryID {
			start = i
			break
		}
	}
	if start < 0 || n < 2 {
		return "", false
	}
	for d := 1; d < n; d++ {
		cand := r.Nodes[(start+d)%n]
		if cand.ID != primaryID && r.alive(cand.ID) {
			return cand.ID, true
		}
	}
	return "", false
}

// Follower reports the follower node for a primary.
func (r *Ring) Follower(primaryID string) (Node, bool) {
	id, ok := r.FollowerID(primaryID)
	if !ok {
		return Node{}, false
	}
	return r.NodeByID(id)
}

// WithTakeover returns a version+1 copy where heir answers for dead's
// ranges. Existing chains pointing at dead are re-pointed at heir so lookup
// never walks more than one hop.
func (r *Ring) WithTakeover(dead, heir string) *Ring {
	next := NewRing(r.Version+1, r.Nodes, r.VNodes)
	next.Takeover = map[string]string{}
	for d, h := range r.Takeover {
		if h == dead {
			h = heir
		}
		next.Takeover[d] = h
	}
	next.Takeover[dead] = heir
	return next
}

// WithJoin returns a version+1 copy with the node added (or its URL
// updated). A rejoining node clears its own takeover entry: it owns its
// ranges again once the coordinator has completed handoff.
func (r *Ring) WithJoin(n Node) *Ring {
	nodes := make([]Node, 0, len(r.Nodes)+1)
	for _, m := range r.Nodes {
		if m.ID != n.ID {
			nodes = append(nodes, m)
		}
	}
	nodes = append(nodes, n)
	next := NewRing(r.Version+1, nodes, r.VNodes)
	if len(r.Takeover) > 0 {
		next.Takeover = map[string]string{}
		for d, h := range r.Takeover {
			if d != n.ID {
				next.Takeover[d] = h
			}
		}
		if len(next.Takeover) == 0 {
			next.Takeover = nil
		}
	}
	return next
}

// WithLeave returns a version+1 copy with the node removed. Its vnodes
// disappear from the ring, so its ranges redistribute to the survivors —
// the caller must have handed the data off first.
func (r *Ring) WithLeave(id string) *Ring {
	nodes := make([]Node, 0, len(r.Nodes))
	for _, m := range r.Nodes {
		if m.ID != id {
			nodes = append(nodes, m)
		}
	}
	next := NewRing(r.Version+1, nodes, r.VNodes)
	if len(r.Takeover) > 0 {
		next.Takeover = map[string]string{}
		for d, h := range r.Takeover {
			if d != id && h != id {
				next.Takeover[d] = h
			}
		}
		if len(next.Takeover) == 0 {
			next.Takeover = nil
		}
	}
	return next
}

// Encode serializes the ring for a version push or a client fetch.
func (r *Ring) Encode() []byte {
	b, _ := json.Marshal(r)
	return b
}

// DecodeRing parses a ring and rebuilds its point table.
func DecodeRing(b []byte) (*Ring, error) {
	var r Ring
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("cluster: decode ring: %w", err)
	}
	if r.VNodes <= 0 || len(r.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring missing vnodes or nodes")
	}
	r.build()
	return &r, nil
}
