// Package simclock provides a deterministic virtual clock and event queue.
//
// Every time-dependent component of the PMWare reproduction (sensor sampling,
// duty cycling, token expiry, agent movement) is driven from a *Clock rather
// than the wall clock, which makes simulations reproducible and lets a
// two-week deployment study run in milliseconds.
package simclock

import (
	"container/heap"
	"fmt"
	"time"
)

// Epoch is the instant at which every simulation starts: a Monday at
// midnight, so weekday-based schedules line up across runs.
var Epoch = time.Date(2014, time.September, 1, 0, 0, 0, 0, time.UTC)

// Clock is a virtual clock with an ordered event queue. The zero value is not
// usable; construct with New. Clock is not safe for concurrent use: the
// simulation is single-threaded by design (determinism).
type Clock struct {
	now    time.Time
	queue  eventQueue
	nextID int64
}

// New returns a clock set to Epoch.
func New() *Clock { return NewAt(Epoch) }

// NewAt returns a clock set to the given start time.
func NewAt(start time.Time) *Clock {
	return &Clock{now: start}
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Time { return c.now }

// Since returns the elapsed virtual time since t.
func (c *Clock) Since(t time.Time) time.Duration { return c.now.Sub(t) }

// Event is a scheduled callback. The callback receives the clock so it can
// schedule follow-up events.
type Event struct {
	At   time.Time
	Run  func(c *Clock)
	id   int64 // tie-break for deterministic ordering
	idx  int   // heap index
	dead bool
}

// Cancel marks the event so it will be skipped when its time comes. Safe to
// call multiple times.
func (e *Event) Cancel() { e.dead = true }

// Schedule enqueues fn to run at time at. Events scheduled in the past run
// immediately on the next Step/RunUntil. Returns a handle for cancellation.
func (c *Clock) Schedule(at time.Time, fn func(*Clock)) *Event {
	c.nextID++
	ev := &Event{At: at, Run: fn, id: c.nextID}
	heap.Push(&c.queue, ev)
	return ev
}

// After enqueues fn to run d after the current time.
func (c *Clock) After(d time.Duration, fn func(*Clock)) *Event {
	return c.Schedule(c.now.Add(d), fn)
}

// Every schedules fn to run at the given period, first firing one period from
// now, until the returned event is cancelled. fn runs once per tick.
func (c *Clock) Every(period time.Duration, fn func(*Clock)) *Event {
	if period <= 0 {
		panic(fmt.Sprintf("simclock: non-positive period %v", period))
	}
	// The handle we return proxies cancellation to the currently scheduled
	// occurrence.
	handle := &Event{}
	var tick func(*Clock)
	var current *Event
	tick = func(cl *Clock) {
		if handle.dead {
			return
		}
		fn(cl)
		if handle.dead { // fn may cancel its own ticker
			return
		}
		current = cl.After(period, tick)
		handle.At = current.At
	}
	current = c.After(period, tick)
	handle.At = current.At
	return handle
}

// Pending returns the number of undelivered events (including cancelled ones
// that have not yet been drained).
func (c *Clock) Pending() int { return c.queue.Len() }

// Step runs the next scheduled event, advancing the clock to its time.
// It returns false if the queue is empty.
func (c *Clock) Step() bool {
	for c.queue.Len() > 0 {
		ev := heap.Pop(&c.queue).(*Event)
		if ev.dead {
			continue
		}
		if ev.At.After(c.now) {
			c.now = ev.At
		}
		ev.Run(c)
		return true
	}
	return false
}

// RunUntil processes events in order until the queue is exhausted or the next
// event is after deadline. The clock finishes exactly at deadline.
func (c *Clock) RunUntil(deadline time.Time) {
	for c.queue.Len() > 0 {
		ev := c.queue[0]
		if ev.dead {
			heap.Pop(&c.queue)
			continue
		}
		if ev.At.After(deadline) {
			break
		}
		heap.Pop(&c.queue)
		if ev.At.After(c.now) {
			c.now = ev.At
		}
		ev.Run(c)
	}
	if deadline.After(c.now) {
		c.now = deadline
	}
}

// RunFor processes events for the given duration from the current time.
func (c *Clock) RunFor(d time.Duration) { c.RunUntil(c.now.Add(d)) }

// eventQueue is a min-heap ordered by (At, id).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if !q[i].At.Equal(q[j].At) {
		return q[i].At.Before(q[j].At)
	}
	return q[i].id < q[j].id
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.idx = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
