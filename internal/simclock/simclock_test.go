package simclock

import (
	"testing"
	"time"
)

func TestNowAndSince(t *testing.T) {
	c := New()
	if !c.Now().Equal(Epoch) {
		t.Fatalf("Now = %v, want Epoch", c.Now())
	}
	start := c.Now()
	c.RunFor(90 * time.Minute)
	if got := c.Since(start); got != 90*time.Minute {
		t.Errorf("Since = %v, want 90m", got)
	}
}

func TestScheduleOrdering(t *testing.T) {
	c := New()
	var order []int
	c.After(3*time.Minute, func(*Clock) { order = append(order, 3) })
	c.After(1*time.Minute, func(*Clock) { order = append(order, 1) })
	c.After(2*time.Minute, func(*Clock) { order = append(order, 2) })
	c.RunFor(time.Hour)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	c := New()
	var order []int
	at := c.Now().Add(time.Minute)
	for i := 0; i < 10; i++ {
		i := i
		c.Schedule(at, func(*Clock) { order = append(order, i) })
	}
	c.RunFor(time.Hour)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestRunUntilAdvancesToDeadline(t *testing.T) {
	c := New()
	deadline := c.Now().Add(2 * time.Hour)
	c.After(30*time.Minute, func(*Clock) {})
	c.RunUntil(deadline)
	if !c.Now().Equal(deadline) {
		t.Errorf("clock at %v, want %v", c.Now(), deadline)
	}
}

func TestRunUntilDoesNotOvershoot(t *testing.T) {
	c := New()
	fired := false
	c.After(3*time.Hour, func(*Clock) { fired = true })
	c.RunFor(time.Hour)
	if fired {
		t.Error("event beyond deadline fired")
	}
	if c.Pending() != 1 {
		t.Errorf("pending = %d, want 1", c.Pending())
	}
	c.RunFor(3 * time.Hour)
	if !fired {
		t.Error("event not fired after extending run")
	}
}

func TestStep(t *testing.T) {
	c := New()
	n := 0
	c.After(time.Minute, func(*Clock) { n++ })
	c.After(2*time.Minute, func(*Clock) { n++ })
	if !c.Step() {
		t.Fatal("Step returned false with pending events")
	}
	if n != 1 {
		t.Fatalf("n = %d after one step", n)
	}
	if !c.Now().Equal(Epoch.Add(time.Minute)) {
		t.Errorf("clock did not advance to event time: %v", c.Now())
	}
	c.Step()
	if c.Step() {
		t.Error("Step returned true on empty queue")
	}
}

func TestCancel(t *testing.T) {
	c := New()
	fired := false
	ev := c.After(time.Minute, func(*Clock) { fired = true })
	ev.Cancel()
	ev.Cancel() // idempotent
	c.RunFor(time.Hour)
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestEvery(t *testing.T) {
	c := New()
	count := 0
	handle := c.Every(10*time.Minute, func(*Clock) { count++ })
	c.RunFor(time.Hour)
	if count != 6 {
		t.Errorf("ticks = %d, want 6", count)
	}
	handle.Cancel()
	c.RunFor(time.Hour)
	if count != 6 {
		t.Errorf("ticker fired after cancel: %d", count)
	}
}

func TestEverySelfCancel(t *testing.T) {
	c := New()
	count := 0
	var handle *Event
	handle = c.Every(time.Minute, func(*Clock) {
		count++
		if count == 3 {
			handle.Cancel()
		}
	})
	c.RunFor(time.Hour)
	if count != 3 {
		t.Errorf("self-cancelling ticker fired %d times, want 3", count)
	}
}

func TestEveryPanicsOnNonPositivePeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero period")
		}
	}()
	New().Every(0, func(*Clock) {})
}

func TestNestedScheduling(t *testing.T) {
	c := New()
	var times []time.Duration
	c.After(time.Minute, func(cl *Clock) {
		times = append(times, cl.Since(Epoch))
		cl.After(time.Minute, func(cl2 *Clock) {
			times = append(times, cl2.Since(Epoch))
		})
	})
	c.RunFor(time.Hour)
	if len(times) != 2 || times[0] != time.Minute || times[1] != 2*time.Minute {
		t.Errorf("nested times = %v", times)
	}
}

func TestSchedulePastEventRunsImmediately(t *testing.T) {
	c := New()
	c.RunFor(time.Hour)
	fired := false
	c.Schedule(Epoch, func(*Clock) { fired = true }) // in the past
	before := c.Now()
	c.RunFor(time.Minute)
	if !fired {
		t.Error("past event did not fire")
	}
	if c.Now().Before(before) {
		t.Error("clock moved backwards")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []time.Duration {
		c := New()
		var out []time.Duration
		c.Every(7*time.Minute, func(cl *Clock) { out = append(out, cl.Since(Epoch)) })
		c.Every(13*time.Minute, func(cl *Clock) { out = append(out, cl.Since(Epoch)) })
		c.RunFor(6 * time.Hour)
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
