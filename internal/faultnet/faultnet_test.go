package faultnet

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// okTransport is a stub backend returning a fixed JSON body.
type okTransport struct{ body string }

func (o okTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	return &http.Response{
		Status:        "200 OK",
		StatusCode:    200,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"application/json"}},
		Body:          io.NopCloser(strings.NewReader(o.body)),
		ContentLength: int64(len(o.body)),
		Request:       req,
	}, nil
}

func mustReq(t *testing.T, path string) *http.Request {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, "http://cloud.test"+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	return req
}

// outcome classifies one round trip for schedule comparison.
func outcome(t *testing.T, tr *Transport, req *http.Request) string {
	t.Helper()
	resp, err := tr.RoundTrip(req)
	if err != nil {
		if !errors.Is(err, ErrInjectedConn) {
			t.Fatalf("unexpected error type: %v", err)
		}
		return "conn"
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 500 {
		return "5xx"
	}
	if _, err := io.ReadAll(resp.Body); err != nil {
		return "trunc"
	}
	return "ok"
}

func chaosConfig(seed int64) Config {
	return Config{
		Seed:            seed,
		ConnErrorRate:   0.15,
		ServerErrorRate: 0.1,
		BurstLen:        2,
		TruncateRate:    0.1,
	}
}

// TestScheduleDeterministicForSeed: two transports with the same seed
// produce the same fault sequence for the same request order; a different
// seed produces a different one.
func TestScheduleDeterministicForSeed(t *testing.T) {
	run := func(seed int64) []string {
		tr := Wrap(okTransport{body: `{"v":1}`}, chaosConfig(seed))
		var out []string
		for i := 0; i < 300; i++ {
			out = append(out, outcome(t, tr, mustReq(t, "/api/v1/places")))
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d: %s vs %s", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical 300-request schedules")
	}
}

// TestFaultRatesRoughlyHonored: over many requests each configured fault
// actually occurs, and the overall fault fraction lands near the configured
// mass.
func TestFaultRatesRoughlyHonored(t *testing.T) {
	tr := Wrap(okTransport{body: `{"v":1}`}, chaosConfig(7))
	const n = 2000
	for i := 0; i < n; i++ {
		outcome(t, tr, mustReq(t, "/x"))
	}
	st := tr.Stats()
	if st.Requests != n {
		t.Fatalf("requests = %d, want %d", st.Requests, n)
	}
	if st.ConnErrors == 0 || st.ServerError == 0 || st.Truncations == 0 {
		t.Fatalf("some fault mode never fired: %+v", st)
	}
	frac := float64(st.Faults()) / float64(n)
	// conn 0.15 + 5xx ~0.085*2 + trunc ~0.07 ≈ 0.39; accept a wide band.
	if frac < 0.2 || frac > 0.6 {
		t.Errorf("fault fraction %.3f outside sanity band [0.2, 0.6]: %+v", frac, st)
	}
}

// TestServerErrorBursts: once a 5xx fires, the next BurstLen-1 requests are
// also 5xx — every maximal run of 5xx outcomes is at least BurstLen long.
func TestServerErrorBursts(t *testing.T) {
	tr := Wrap(okTransport{body: `{}`}, Config{Seed: 5, ServerErrorRate: 0.1, BurstLen: 3})
	var outcomes []string
	for i := 0; i < 1000; i++ {
		outcomes = append(outcomes, outcome(t, tr, mustReq(t, "/x")))
	}
	run := 0
	sawBurst := false
	check := func() {
		if run > 0 {
			sawBurst = true
			if run < 3 {
				t.Fatalf("5xx run of length %d, want >= BurstLen (3)", run)
			}
		}
		run = 0
	}
	for _, o := range outcomes {
		if o == "5xx" {
			run++
		} else {
			check()
		}
	}
	check()
	if !sawBurst {
		t.Error("no 5xx burst fired in 1000 requests at rate 0.1")
	}
}

// TestTruncationBreaksDecode: a truncated body fails mid-read with
// ErrUnexpectedEOF, exactly what a dropped connection looks like to a JSON
// decoder.
func TestTruncationBreaksDecode(t *testing.T) {
	tr := Wrap(okTransport{body: `{"key":"` + strings.Repeat("v", 100) + `"}`}, Config{Seed: 1, TruncateRate: 1})
	resp, err := tr.RoundTrip(mustReq(t, "/x"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var into map[string]string
	decErr := json.NewDecoder(resp.Body).Decode(&into)
	if decErr == nil {
		t.Fatal("decode succeeded on a truncated body")
	}
}

// TestLatencyInjection: the injected sleep is called with the configured
// delay.
func TestLatencyInjection(t *testing.T) {
	var slept []time.Duration
	tr := Wrap(okTransport{body: `{}`}, Config{
		Seed:        2,
		LatencyRate: 1,
		Latency:     250 * time.Millisecond,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	})
	outcome(t, tr, mustReq(t, "/x"))
	if len(slept) != 1 || slept[0] != 250*time.Millisecond {
		t.Fatalf("slept = %v, want one 250ms delay", slept)
	}
	if tr.Stats().Latencies != 1 {
		t.Errorf("latency counter = %d, want 1", tr.Stats().Latencies)
	}
}

// TestSetEnabledStopsInjection: disabling the transport models recovered
// connectivity — everything passes through untouched.
func TestSetEnabledStopsInjection(t *testing.T) {
	tr := Wrap(okTransport{body: `{}`}, Config{Seed: 3, ConnErrorRate: 1})
	if outcome(t, tr, mustReq(t, "/x")) != "conn" {
		t.Fatal("expected a connection fault while enabled")
	}
	tr.SetEnabled(false)
	for i := 0; i < 20; i++ {
		if o := outcome(t, tr, mustReq(t, "/x")); o != "ok" {
			t.Fatalf("request %d: outcome %s after disable, want ok", i, o)
		}
	}
}

// TestExemptBypassesFaults: exempted requests never see injection.
func TestExemptBypassesFaults(t *testing.T) {
	tr := Wrap(okTransport{body: `{}`}, Config{
		Seed:          4,
		ConnErrorRate: 1,
		Exempt:        func(r *http.Request) bool { return strings.HasSuffix(r.URL.Path, "/register") },
	})
	if o := outcome(t, tr, mustReq(t, "/api/v1/register")); o != "ok" {
		t.Fatalf("exempt request got %s, want ok", o)
	}
	if o := outcome(t, tr, mustReq(t, "/api/v1/places")); o != "conn" {
		t.Fatalf("non-exempt request got %s, want conn", o)
	}
}

// TestConcurrentRoundTrips hammers the transport from many goroutines over a
// live server; run with -race to validate the locking discipline.
func TestConcurrentRoundTrips(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"ok":true}`))
	}))
	t.Cleanup(srv.Close)
	tr := Wrap(srv.Client().Transport, chaosConfig(9))
	client := &http.Client{Transport: tr}

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				resp, err := client.Get(srv.URL + "/x")
				if err != nil {
					continue // injected conn fault
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	st := tr.Stats()
	if st.Requests != workers*50 {
		t.Errorf("requests = %d, want %d", st.Requests, workers*50)
	}
	if st.Faults() == 0 {
		t.Error("no faults injected across 400 concurrent requests")
	}
}
