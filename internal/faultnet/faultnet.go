// Package faultnet provides a seeded fault-injecting http.RoundTripper: the
// test-side counterpart of the client's retry/backoff layer. It simulates
// the intermittent cellular link the PMS↔PCI split assumes (MOSDEN-style
// mobile middleware connectivity): dropped connections, added latency, 5xx
// bursts, and truncated response bodies, all drawn from a reproducible
// schedule so chaos runs are deterministic for a given seed.
//
// The transport is safe for concurrent use; every random draw happens under
// a mutex so the fault schedule is a pure function of the seed and the
// request order.
package faultnet

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"
)

// ErrInjectedConn is the error returned for an injected connection fault.
// The http.Client wraps it in *url.Error, which the cloud client classifies
// as a retryable network failure.
var ErrInjectedConn = errors.New("faultnet: injected connection failure")

// Config tunes the fault schedule. All rates are probabilities in [0,1]
// evaluated independently per request, in the order: connection fault, 5xx
// burst, latency, truncation.
type Config struct {
	// Seed makes the schedule reproducible.
	Seed int64
	// ConnErrorRate drops the request before it reaches the server.
	ConnErrorRate float64
	// ServerErrorRate starts a burst of synthesized 5xx responses (the
	// request does not reach the server while the burst lasts).
	ServerErrorRate float64
	// BurstLen is how many consecutive requests a 5xx burst consumes
	// (values < 1 behave as 1).
	BurstLen int
	// StatusCode is the synthesized error status (0 means 503).
	StatusCode int
	// LatencyRate adds Latency to a request before forwarding it.
	LatencyRate float64
	// Latency is the added delay per injected-latency request.
	Latency time.Duration
	// TruncateRate cuts the (successful) response body in half, leaving
	// the headers intact — the client sees an unexpected EOF mid-decode.
	TruncateRate float64
	// Exempt, when set, bypasses injection for matching requests (e.g. to
	// keep registration reliable while the data path burns).
	Exempt func(*http.Request) bool
	// Sleep implements latency injection (nil means time.Sleep). Tests
	// that must stay fast inject a recording no-op.
	Sleep func(time.Duration)
}

// Stats counts injected faults and forwarded requests.
type Stats struct {
	Requests    int // total requests seen
	ConnErrors  int // injected connection failures
	ServerError int // synthesized 5xx responses
	Latencies   int // requests delayed
	Truncations int // responses truncated
	Forwarded   int // requests that reached the underlying transport
}

// Faults returns the total number of injected faults (latency excluded:
// a slow response is not a failed one).
func (s Stats) Faults() int { return s.ConnErrors + s.ServerError + s.Truncations }

// Transport is the fault-injecting RoundTripper.
type Transport struct {
	next http.RoundTripper

	mu        sync.Mutex
	cfg       Config
	rng       *rand.Rand
	burstLeft int
	enabled   bool
	stats     Stats
}

// Wrap builds a Transport over next (nil means http.DefaultTransport).
// Injection starts enabled.
func Wrap(next http.RoundTripper, cfg Config) *Transport {
	if next == nil {
		next = http.DefaultTransport
	}
	return &Transport{
		next:    next,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		enabled: true,
	}
}

// SetEnabled turns injection on or off (off models "connectivity
// recovered"; the schedule position is preserved).
func (t *Transport) SetEnabled(on bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.enabled = on
	if !on {
		t.burstLeft = 0
	}
}

// Stats returns a snapshot of the fault counters.
func (t *Transport) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// decision is the fault drawn for one request.
type decision struct {
	connError bool
	serverErr bool
	status    int
	latency   time.Duration
	truncate  bool
}

// decide draws the next scheduled fault under the lock.
func (t *Transport) decide(req *http.Request) decision {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats.Requests++
	if !t.enabled || (t.cfg.Exempt != nil && t.cfg.Exempt(req)) {
		return decision{}
	}
	var d decision
	if t.burstLeft > 0 {
		t.burstLeft--
		d.serverErr = true
	} else if t.rng.Float64() < t.cfg.ConnErrorRate {
		d.connError = true
	} else if t.rng.Float64() < t.cfg.ServerErrorRate {
		d.serverErr = true
		burst := t.cfg.BurstLen
		if burst < 1 {
			burst = 1
		}
		t.burstLeft = burst - 1
	}
	if d.serverErr {
		d.status = t.cfg.StatusCode
		if d.status == 0 {
			d.status = http.StatusServiceUnavailable
		}
		t.stats.ServerError++
		return d
	}
	if d.connError {
		t.stats.ConnErrors++
		return d
	}
	if t.cfg.Latency > 0 && t.rng.Float64() < t.cfg.LatencyRate {
		d.latency = t.cfg.Latency
		t.stats.Latencies++
	}
	if t.rng.Float64() < t.cfg.TruncateRate {
		d.truncate = true
		t.stats.Truncations++
	}
	return d
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	d := t.decide(req)
	switch {
	case d.connError:
		return nil, ErrInjectedConn
	case d.serverErr:
		return synthesized(req, d.status), nil
	}
	if d.latency > 0 {
		sleep := t.cfg.Sleep
		if sleep == nil {
			sleep = time.Sleep
		}
		sleep(d.latency)
	}
	resp, err := t.next.RoundTrip(req)
	t.mu.Lock()
	t.stats.Forwarded++
	t.mu.Unlock()
	if err != nil || !d.truncate {
		return resp, err
	}
	return truncateBody(resp), nil
}

// synthesized fabricates a 5xx response that never reached the server.
func synthesized(req *http.Request, status int) *http.Response {
	body := fmt.Sprintf(`{"error":"faultnet: injected http %d"}`, status)
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", status, http.StatusText(status)),
		StatusCode:    status,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"application/json"}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// truncatedBody yields the first half of the payload then fails with
// io.ErrUnexpectedEOF, modelling a connection cut mid-response.
type truncatedBody struct {
	r io.Reader
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	n, err := b.r.Read(p)
	if err == io.EOF {
		return n, io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *truncatedBody) Close() error { return nil }

// truncateBody replaces resp's body with its first half, erroring at the
// cut. Headers (including Content-Length) are left as delivered.
func truncateBody(resp *http.Response) *http.Response {
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		// The real link already failed; pass the partial data through.
		resp.Body = io.NopCloser(bytes.NewReader(data))
		return resp
	}
	half := data[:len(data)/2]
	resp.Body = &truncatedBody{r: bytes.NewReader(half)}
	return resp
}
