// Package mobility simulates human movement through the synthetic world:
// per-agent daily schedules, trips along the street network, and the
// resulting ground-truth itineraries (place visits and routes).
//
// The itinerary is the oracle that the deployment study (paper Section 4)
// scores discovered places against — it plays the role of the participants'
// diary logging.
package mobility

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/world"
)

// Agent is one simulated participant.
type Agent struct {
	ID     string
	Home   *world.Venue
	Work   *world.Venue
	Haunts []*world.Venue // venues the agent frequents besides home and work

	// SpeedMPS is travel speed between venues (auto-rickshaw pace).
	SpeedMPS float64
	// BluetoothOn mirrors the fraction of users with discoverable Bluetooth.
	BluetoothOn bool
}

// Visit is a ground-truth stay at a venue.
type Visit struct {
	VenueID string
	Arrive  time.Time
	Depart  time.Time
}

// Duration returns the stay length.
func (v Visit) Duration() time.Duration { return v.Depart.Sub(v.Arrive) }

// Trip is a ground-truth journey between two venues.
type Trip struct {
	FromVenueID string
	ToVenueID   string
	Start       time.Time
	End         time.Time
	Path        geo.Polyline
}

// Duration returns the travel time.
func (t Trip) Duration() time.Duration { return t.End.Sub(t.Start) }

// segment is one entry of the agent's continuous timeline.
type segment struct {
	start, end time.Time
	venue      *world.Venue // non-nil => dwelling
	path       geo.Polyline // non-nil => moving
	pathLen    float64
}

// Itinerary is an agent's complete ground-truth movement record over the
// simulated period.
type Itinerary struct {
	AgentID string
	Start   time.Time
	End     time.Time
	Visits  []Visit
	Trips   []Trip

	segments []segment
}

// PositionAt returns the agent's location at time t. Inside a dwell the agent
// wanders deterministically within the venue footprint (so GPS fixes and
// WiFi scans vary realistically); during a trip the position advances along
// the path at constant speed. Times outside the itinerary clamp to its ends.
func (it *Itinerary) PositionAt(t time.Time) geo.LatLng {
	seg := it.segmentAt(t)
	if seg == nil {
		return geo.LatLng{}
	}
	if seg.venue != nil {
		return dwellJitter(seg.venue, it.AgentID, t)
	}
	total := seg.end.Sub(seg.start)
	if total <= 0 {
		return seg.path[0]
	}
	frac := float64(t.Sub(seg.start)) / float64(total)
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return seg.path.PointAt(frac * seg.pathLen)
}

// Moving reports whether the agent is in transit at time t. This is what the
// simulated accelerometer observes.
func (it *Itinerary) Moving(t time.Time) bool {
	seg := it.segmentAt(t)
	return seg != nil && seg.path != nil
}

// VenueAt returns the venue the agent is dwelling at during t, or nil while
// in transit.
func (it *Itinerary) VenueAt(t time.Time) *world.Venue {
	seg := it.segmentAt(t)
	if seg == nil {
		return nil
	}
	return seg.venue
}

func (it *Itinerary) segmentAt(t time.Time) *segment {
	n := len(it.segments)
	if n == 0 {
		return nil
	}
	if t.Before(it.segments[0].start) {
		return &it.segments[0]
	}
	if !t.Before(it.segments[n-1].end) {
		return &it.segments[n-1]
	}
	i := sort.Search(n, func(i int) bool { return it.segments[i].end.After(t) })
	if i == n {
		i = n - 1
	}
	return &it.segments[i]
}

// SignificantVisits returns visits of at least minStay, the paper's
// definition of a place visit (≥10 minutes per [19]).
func (it *Itinerary) SignificantVisits(minStay time.Duration) []Visit {
	var out []Visit
	for _, v := range it.Visits {
		if v.Duration() >= minStay {
			out = append(out, v)
		}
	}
	return out
}

// VisitedVenueIDs returns the distinct venues with at least one significant
// visit, in first-visit order.
func (it *Itinerary) VisitedVenueIDs(minStay time.Duration) []string {
	seen := map[string]bool{}
	var out []string
	for _, v := range it.SignificantVisits(minStay) {
		if !seen[v.VenueID] {
			seen[v.VenueID] = true
			out = append(out, v.VenueID)
		}
	}
	return out
}

// dwellJitter returns a deterministic pseudo-random position inside the venue
// footprint that changes slowly (~every 5 minutes) as the agent moves around
// the building.
func dwellJitter(v *world.Venue, agentID string, t time.Time) geo.LatLng {
	bucket := t.Unix() / 300
	h := fnv.New64a()
	_, _ = fmt.Fprintf(h, "%s|%s|%d", v.ID, agentID, bucket)
	r := rand.New(rand.NewSource(int64(h.Sum64())))
	// Stay within 60% of the footprint radius so the agent is unambiguously
	// "at" the venue.
	dist := r.Float64() * v.RadiusMeters * 0.6
	return geo.Offset(v.Center, r.Float64()*360, dist)
}
