package mobility

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/world"
)

// ScheduleConfig tunes the daily-routine generator. Zero value is not useful;
// start from DefaultScheduleConfig.
type ScheduleConfig struct {
	// WorkStartHour / WorkEndHour bound the nominal office day; actual times
	// jitter around them.
	WorkStartHour float64
	WorkEndHour   float64
	// LunchOutProb is the chance of a lunch trip to a nearby restaurant/cafe
	// on a workday.
	LunchOutProb float64
	// EveningErrandProb is the chance of a stop (market/gym/…) on the way
	// home.
	EveningErrandProb float64
	// WeekendOutings is the maximum number of weekend outings per day
	// (uniform 1..WeekendOutings).
	WeekendOutings int
	// ShortStopProb is the chance a trip includes a brief (<10 min) stop
	// that should NOT count as a place.
	ShortStopProb float64
	// SpeedMPS is the agent's travel speed.
	SpeedMPS float64
}

// DefaultScheduleConfig returns the routine used by the deployment study.
func DefaultScheduleConfig() ScheduleConfig {
	return ScheduleConfig{
		WorkStartHour:     9.0,
		WorkEndHour:       18.0,
		LunchOutProb:      0.35,
		EveningErrandProb: 0.45,
		WeekendOutings:    3,
		ShortStopProb:     0.15,
		SpeedMPS:          7.0, // ~25 km/h urban traffic
	}
}

// BuildItinerary simulates the agent's life for `days` days starting at
// `start` (which should be midnight) and returns the ground-truth itinerary.
// Determinism: same agent, world, start, days, config, and RNG state produce
// the identical itinerary.
func BuildItinerary(a *Agent, w *world.World, start time.Time, days int, cfg ScheduleConfig, r *rand.Rand) (*Itinerary, error) {
	if a.Home == nil {
		return nil, fmt.Errorf("mobility: agent %s has no home venue", a.ID)
	}
	if a.SpeedMPS <= 0 {
		a.SpeedMPS = cfg.SpeedMPS
	}
	b := &builder{
		it:    &Itinerary{AgentID: a.ID, Start: start, End: start.AddDate(0, 0, days)},
		agent: a,
		world: w,
		cfg:   cfg,
		r:     r,
		now:   start,
		at:    a.Home,
	}

	for d := 0; d < days; d++ {
		day := start.AddDate(0, 0, d)
		if isWeekend(day) {
			b.weekend(day)
		} else {
			b.workday(day)
		}
	}
	b.closeDwell(b.it.End)
	return b.it, nil
}

func isWeekend(t time.Time) bool {
	wd := t.Weekday()
	return wd == time.Saturday || wd == time.Sunday
}

// builder walks forward in time emitting dwell and move segments.
type builder struct {
	it    *Itinerary
	agent *Agent
	world *world.World
	cfg   ScheduleConfig
	r     *rand.Rand

	now       time.Time
	at        *world.Venue // current dwell venue
	dwellFrom time.Time    // when the current dwell began
}

// hourOf returns the absolute time for a fractional hour of the given day.
func hourOf(day time.Time, h float64) time.Time {
	return day.Add(time.Duration(h * float64(time.Hour)))
}

// jitterH returns h +/- spread hours.
func (b *builder) jitterH(h, spread float64) float64 {
	return h + (b.r.Float64()*2-1)*spread
}

func (b *builder) workday(day time.Time) {
	if b.agent.Work == nil {
		b.weekend(day) // agents without a workplace treat every day as free
		return
	}
	leaveHome := hourOf(day, b.jitterH(b.cfg.WorkStartHour-0.75, 0.4))
	b.travelTo(b.agent.Work, leaveHome)

	// Lunch outing.
	if b.r.Float64() < b.cfg.LunchOutProb {
		if spot := b.pickHaunt(world.KindRestaurant, world.KindCafe); spot != nil {
			lunchAt := hourOf(day, b.jitterH(13.0, 0.5))
			if lunchAt.After(b.now) {
				b.travelTo(spot, lunchAt)
				b.stayFor(time.Duration(30+b.r.Intn(30)) * time.Minute)
				b.travelTo(b.agent.Work, b.now)
			}
		}
	}

	leaveWork := hourOf(day, b.jitterH(b.cfg.WorkEndHour, 0.75))
	if leaveWork.Before(b.now.Add(30 * time.Minute)) {
		leaveWork = b.now.Add(30 * time.Minute)
	}

	// Evening errand on the way home.
	if b.r.Float64() < b.cfg.EveningErrandProb {
		if stop := b.pickHaunt(world.KindMarket, world.KindGym, world.KindClinic, world.KindMall); stop != nil {
			b.travelTo(stop, leaveWork)
			b.stayFor(time.Duration(20+b.r.Intn(60)) * time.Minute)
			b.travelTo(b.agent.Home, b.now)
			return
		}
	}
	b.travelTo(b.agent.Home, leaveWork)
}

func (b *builder) weekend(day time.Time) {
	outings := 1 + b.r.Intn(maxInt(1, b.cfg.WeekendOutings))
	depart := hourOf(day, b.jitterH(10.5, 1.0))
	for i := 0; i < outings; i++ {
		dest := b.pickHaunt(
			world.KindMall, world.KindPark, world.KindCinema,
			world.KindRestaurant, world.KindMarket, world.KindCafe,
			world.KindLibrary, world.KindAcademic,
		)
		if dest == nil || dest == b.at {
			continue
		}
		if depart.Before(b.now) {
			depart = b.now.Add(time.Duration(15+b.r.Intn(45)) * time.Minute)
		}
		b.travelTo(dest, depart)
		b.stayFor(time.Duration(40+b.r.Intn(100)) * time.Minute)
		depart = b.now.Add(time.Duration(10+b.r.Intn(30)) * time.Minute)
	}
	// Home by evening.
	home := hourOf(day, b.jitterH(19.5, 1.0))
	if home.Before(b.now) {
		home = b.now
	}
	if b.at != b.agent.Home {
		b.travelTo(b.agent.Home, home)
	}
}

// pickHaunt returns a random haunt matching one of the kinds, or nil.
func (b *builder) pickHaunt(kinds ...world.VenueKind) *world.Venue {
	var matches []*world.Venue
	for _, v := range b.agent.Haunts {
		for _, k := range kinds {
			if v.Kind == k {
				matches = append(matches, v)
				break
			}
		}
	}
	if len(matches) == 0 {
		return nil
	}
	return matches[b.r.Intn(len(matches))]
}

// travelTo closes the current dwell at departAt (clamped to now) and moves
// the agent to dest, possibly inserting a short non-place stop en route.
func (b *builder) travelTo(dest *world.Venue, departAt time.Time) {
	if dest == b.at {
		return
	}
	if departAt.Before(b.now) {
		departAt = b.now
	}
	b.closeDwell(departAt)

	from := b.at
	// Optional short stop that must NOT become a place (exercises min-stay
	// thresholds in the discovery algorithms).
	if b.r.Float64() < b.cfg.ShortStopProb {
		if mid := b.pickHaunt(world.KindCafe, world.KindMarket); mid != nil && mid != from && mid != dest {
			b.moveSegment(from, mid)
			stop := time.Duration(2+b.r.Intn(6)) * time.Minute
			b.dwellSegment(mid, b.now.Add(stop))
			from = mid
		}
	}
	b.moveSegment(from, dest)
	b.at = dest
	b.dwellFrom = b.now
}

// stayFor extends the current dwell by d (the dwell is closed by the next
// travelTo).
func (b *builder) stayFor(d time.Duration) { b.now = b.now.Add(d) }

// closeDwell ends the open dwell segment at `until` and records the visit.
func (b *builder) closeDwell(until time.Time) {
	if until.Before(b.now) {
		until = b.now
	}
	start := b.dwellFrom
	if start.IsZero() {
		start = b.it.Start
	}
	if !until.After(start) {
		b.now = until
		return
	}
	b.it.segments = append(b.it.segments, segment{
		start: start, end: until, venue: b.at,
	})
	b.it.Visits = append(b.it.Visits, Visit{VenueID: b.at.ID, Arrive: start, Depart: until})
	b.now = until
}

// dwellSegment records a stay at v from b.now until `until`.
func (b *builder) dwellSegment(v *world.Venue, until time.Time) {
	if !until.After(b.now) {
		return
	}
	b.it.segments = append(b.it.segments, segment{start: b.now, end: until, venue: v})
	b.it.Visits = append(b.it.Visits, Visit{VenueID: v.ID, Arrive: b.now, Depart: until})
	b.now = until
	b.dwellFrom = until
}

// moveSegment emits a trip from a to bVenue starting at b.now.
func (b *builder) moveSegment(a, dest *world.Venue) {
	path := b.world.Path(a.Center, dest.Center)
	dur := time.Duration(path.Length() / b.agent.SpeedMPS * float64(time.Second))
	if dur < time.Minute {
		dur = time.Minute
	}
	end := b.now.Add(dur)
	b.it.segments = append(b.it.segments, segment{
		start: b.now, end: end, path: path, pathLen: path.Length(),
	})
	b.it.Trips = append(b.it.Trips, Trip{
		FromVenueID: a.ID, ToVenueID: dest.ID,
		Start: b.now, End: end, Path: path,
	})
	b.now = end
	b.dwellFrom = end
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
