package mobility

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/simclock"
	"repro/internal/world"
)

// fixture builds a world with one agent having a home, work, and a set of
// haunts of every weekend/errand kind.
func fixture(t *testing.T, seed int64) (*world.World, *Agent) {
	t.Helper()
	cfg := world.DefaultConfig()
	r := rand.New(rand.NewSource(seed))
	w := world.Generate(cfg, r)

	home := w.AddVenue("home-a", "Home", world.KindHome,
		geo.Offset(cfg.Origin, 200, 2000), true, cfg, r)
	work := w.AddVenue("work-a", "Office", world.KindWorkplace,
		geo.Offset(cfg.Origin, 40, 2500), true, cfg, r)

	a := &Agent{ID: "agent-a", Home: home, Work: work, SpeedMPS: 7}
	for _, v := range w.Venues {
		switch v.Kind {
		case world.KindHome, world.KindWorkplace:
		default:
			a.Haunts = append(a.Haunts, v)
		}
	}
	return w, a
}

func buildIt(t *testing.T, seed int64, days int) (*world.World, *Agent, *Itinerary) {
	t.Helper()
	w, a := fixture(t, seed)
	it, err := BuildItinerary(a, w, simclock.Epoch, days, DefaultScheduleConfig(), rand.New(rand.NewSource(seed+1000)))
	if err != nil {
		t.Fatalf("BuildItinerary: %v", err)
	}
	return w, a, it
}

func TestBuildItineraryRequiresHome(t *testing.T) {
	w, _ := fixture(t, 1)
	_, err := BuildItinerary(&Agent{ID: "x"}, w, simclock.Epoch, 1, DefaultScheduleConfig(), rand.New(rand.NewSource(1)))
	if err == nil {
		t.Fatal("expected error for agent without home")
	}
}

func TestItineraryContinuity(t *testing.T) {
	_, _, it := buildIt(t, 2, 14)
	if len(it.segments) == 0 {
		t.Fatal("no segments")
	}
	if !it.segments[0].start.Equal(it.Start) {
		t.Errorf("first segment starts at %v, want %v", it.segments[0].start, it.Start)
	}
	for i := 1; i < len(it.segments); i++ {
		if !it.segments[i].start.Equal(it.segments[i-1].end) {
			t.Fatalf("segment %d gap: prev ends %v, next starts %v",
				i, it.segments[i-1].end, it.segments[i].start)
		}
	}
	last := it.segments[len(it.segments)-1]
	if !last.end.Equal(it.End) {
		t.Errorf("last segment ends at %v, want %v", last.end, it.End)
	}
}

func TestSegmentsWellFormed(t *testing.T) {
	_, _, it := buildIt(t, 3, 14)
	for i, s := range it.segments {
		if !s.end.After(s.start) {
			t.Fatalf("segment %d has non-positive duration", i)
		}
		if (s.venue == nil) == (s.path == nil) {
			t.Fatalf("segment %d must be exactly one of dwell or move", i)
		}
	}
}

func TestWorkdayRoutine(t *testing.T) {
	_, a, it := buildIt(t, 4, 5) // Mon-Fri
	// The agent must visit work every weekday.
	workDays := map[string]bool{}
	for _, v := range it.Visits {
		if v.VenueID == a.Work.ID && v.Duration() > 2*time.Hour {
			workDays[v.Arrive.Format("2006-01-02")] = true
		}
	}
	if len(workDays) != 5 {
		t.Errorf("agent worked %d days, want 5", len(workDays))
	}
	// Overnight at home: position at 3 AM each day is home.
	for d := 0; d < 5; d++ {
		at3am := simclock.Epoch.AddDate(0, 0, d).Add(3 * time.Hour)
		if v := it.VenueAt(at3am); v == nil || v.ID != a.Home.ID {
			t.Errorf("day %d 3AM: agent not at home (at %v)", d, v)
		}
	}
}

func TestWeekendDiffersFromWorkday(t *testing.T) {
	_, a, it := buildIt(t, 5, 14)
	for _, v := range it.Visits {
		if v.VenueID == a.Work.ID && isWeekend(v.Arrive) && v.Duration() > time.Hour {
			t.Errorf("long work visit on weekend at %v", v.Arrive)
		}
	}
	// Weekends must include at least one non-home outing across two weeks.
	outings := 0
	for _, v := range it.Visits {
		if isWeekend(v.Arrive) && v.VenueID != a.Home.ID && v.Duration() >= 30*time.Minute {
			outings++
		}
	}
	if outings == 0 {
		t.Error("no weekend outings in two weeks")
	}
}

func TestPositionDuringDwellInsideVenue(t *testing.T) {
	w, _, it := buildIt(t, 6, 3)
	probe := simclock.Epoch
	for probe.Before(it.End) {
		if v := it.VenueAt(probe); v != nil {
			p := it.PositionAt(probe)
			if d := geo.Distance(v.Center, p); d > v.RadiusMeters {
				t.Fatalf("at %v agent is %.1f m from %s center (radius %.1f)", probe, d, v.ID, v.RadiusMeters)
			}
			if got := w.VenueAt(p); got == nil {
				t.Fatalf("dwelling position %v resolves to no venue", p)
			}
		}
		probe = probe.Add(17 * time.Minute)
	}
}

func TestPositionDuringTripOnPath(t *testing.T) {
	_, _, it := buildIt(t, 7, 3)
	if len(it.Trips) == 0 {
		t.Fatal("no trips")
	}
	tr := it.Trips[0]
	mid := tr.Start.Add(tr.Duration() / 2)
	p := it.PositionAt(mid)
	if d := tr.Path.DistanceToPoint(p); d > 50 {
		t.Errorf("mid-trip position %.1f m off path", d)
	}
	if !it.Moving(mid) {
		t.Error("Moving false mid-trip")
	}
	if it.Moving(tr.Start.Add(-time.Minute)) && it.VenueAt(tr.Start.Add(-time.Minute)) == nil {
		t.Error("expected dwell just before trip")
	}
}

func TestPositionClampsOutsideItinerary(t *testing.T) {
	_, a, it := buildIt(t, 8, 2)
	before := it.PositionAt(it.Start.Add(-time.Hour))
	after := it.PositionAt(it.End.Add(time.Hour))
	if d := geo.Distance(before, a.Home.Center); d > a.Home.RadiusMeters {
		t.Errorf("pre-start position %.1f m from home", d)
	}
	if d := geo.Distance(after, a.Home.Center); d > a.Home.RadiusMeters {
		t.Errorf("post-end position %.1f m from home", d)
	}
}

func TestDeterminism(t *testing.T) {
	_, _, it1 := buildIt(t, 9, 7)
	_, _, it2 := buildIt(t, 9, 7)
	if len(it1.Visits) != len(it2.Visits) {
		t.Fatalf("visit counts differ: %d vs %d", len(it1.Visits), len(it2.Visits))
	}
	for i := range it1.Visits {
		if it1.Visits[i] != it2.Visits[i] {
			t.Fatalf("visit %d differs", i)
		}
	}
	probe := simclock.Epoch.Add(13 * time.Hour)
	if it1.PositionAt(probe) != it2.PositionAt(probe) {
		t.Error("positions differ between identical builds")
	}
}

func TestSignificantVisitsFilter(t *testing.T) {
	_, _, it := buildIt(t, 10, 14)
	all := len(it.Visits)
	sig := len(it.SignificantVisits(10 * time.Minute))
	if sig == 0 {
		t.Fatal("no significant visits in two weeks")
	}
	if sig > all {
		t.Fatal("filter grew the set")
	}
	for _, v := range it.SignificantVisits(10 * time.Minute) {
		if v.Duration() < 10*time.Minute {
			t.Fatalf("visit %v shorter than threshold", v)
		}
	}
}

func TestVisitedVenueIDsDistinct(t *testing.T) {
	_, _, it := buildIt(t, 11, 14)
	ids := it.VisitedVenueIDs(10 * time.Minute)
	if len(ids) < 3 {
		t.Errorf("agent visited only %d distinct venues in 2 weeks", len(ids))
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %s", id)
		}
		seen[id] = true
	}
}

func TestTripsConnectVisits(t *testing.T) {
	_, _, it := buildIt(t, 12, 7)
	for i, tr := range it.Trips {
		if tr.Path.Length() == 0 {
			t.Fatalf("trip %d has empty path", i)
		}
		if !tr.End.After(tr.Start) {
			t.Fatalf("trip %d non-positive duration", i)
		}
		if tr.FromVenueID == tr.ToVenueID {
			t.Fatalf("trip %d is a self-loop (%s)", i, tr.FromVenueID)
		}
	}
}

func TestDwellJitterIsDeterministicAndSlow(t *testing.T) {
	w, _ := fixture(t, 13)
	v := w.Venues[0]
	t0 := simclock.Epoch.Add(10 * time.Hour)
	p1 := dwellJitter(v, "x", t0)
	p2 := dwellJitter(v, "x", t0)
	if p1 != p2 {
		t.Error("dwell jitter not deterministic")
	}
	// Within the same 5-minute bucket the position is stable.
	p3 := dwellJitter(v, "x", t0.Add(time.Minute))
	if p1 != p3 {
		t.Error("dwell position changed within a 5-minute bucket")
	}
	// Different agents occupy different spots.
	if dwellJitter(v, "y", t0) == p1 {
		t.Error("different agents share identical jitter")
	}
}

func TestNoWorkAgent(t *testing.T) {
	w, a := fixture(t, 14)
	a.Work = nil
	it, err := BuildItinerary(a, w, simclock.Epoch, 7, DefaultScheduleConfig(), rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatalf("BuildItinerary: %v", err)
	}
	// Still continuous and ends at home.
	if v := it.VenueAt(it.End.Add(-time.Minute)); v == nil || v.ID != a.Home.ID {
		t.Error("workless agent should still sleep at home")
	}
}
