// Package wifi implements the SensLoc place discovery algorithm (Kim et al.,
// SenSys 2010) that PMWare uses for WiFi-based place sensing (paper Section
// 2.2.2): Tanimoto-coefficient similarity between WiFi scans establishes
// unique place signatures and detects subsequent arrivals and departures.
package wifi

import (
	"slices"
	"time"

	"repro/internal/trace"
)

// Params tunes SensLoc. Zero value is not useful; start from DefaultParams.
type Params struct {
	// EnterSim is the pairwise scan similarity above which consecutive scans
	// indicate the user has settled at a place.
	EnterSim float64
	// ExitSim is the similarity to the place signature below which a scan
	// counts as evidence of departure.
	ExitSim float64
	// MatchSim is the signature-to-signature similarity above which a newly
	// entered place is recognized as an already-known one.
	MatchSim float64
	// ConsecutiveScans is the run length required to confirm entrance and
	// departure.
	ConsecutiveScans int
	// MinStay filters out sub-place stops during offline discovery.
	MinStay time.Duration
	// SignatureAlpha is the exponential moving-average factor for signature
	// refresh while dwelling.
	SignatureAlpha float64
}

// DefaultParams returns the SensLoc parameters used by the deployment study.
func DefaultParams() Params {
	return Params{
		EnterSim:         0.45,
		ExitSim:          0.30,
		MatchSim:         0.40,
		ConsecutiveScans: 3,
		MinStay:          10 * time.Minute,
		SignatureAlpha:   0.1,
	}
}

// Signature is a WiFi place fingerprint: BSSID -> mean signal weight. It is
// the P_i = {w1..w4} form of paper Section 2.1.1.
type Signature map[string]float64

// weight converts dBm RSSI to a non-negative linear-ish weight so that the
// Tanimoto coefficient favours strong, consistently heard APs.
func weight(rssiDBM float64) float64 {
	w := rssiDBM + 95
	if w < 0 {
		return 0
	}
	return w
}

// scanSignature converts a scan into a signature.
func scanSignature(s trace.WiFiScan) Signature {
	sig := make(Signature, len(s.APs))
	for _, ap := range s.APs {
		sig[ap.BSSID] = weight(ap.RSSIDBM)
	}
	return sig
}

// Tanimoto returns the Tanimoto coefficient between two signatures:
// A·B / (|A|² + |B|² − A·B), in [0, 1]. Empty signatures yield 0.
func Tanimoto(a, b Signature) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	var dot, na, nb float64
	for _, w := range a {
		na += w * w
	}
	for _, w := range b {
		nb += w * w
	}
	for bssid, wa := range a {
		if wb, ok := b[bssid]; ok {
			dot += wa * wb
		}
	}
	denom := na + nb - dot
	if denom <= 0 {
		return 0
	}
	return dot / denom
}

// merge folds scan sig into the place signature with EMA factor alpha;
// previously unseen BSSIDs enter at a discounted weight.
func (s Signature) merge(scan Signature, alpha float64) {
	for bssid, w := range scan {
		if old, ok := s[bssid]; ok {
			s[bssid] = old*(1-alpha) + w*alpha
		} else {
			s[bssid] = w * alpha
		}
	}
	for bssid, old := range s {
		if _, ok := scan[bssid]; !ok {
			s[bssid] = old * (1 - alpha)
		}
	}
}

// clone returns a deep copy.
func (s Signature) clone() Signature {
	out := make(Signature, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// Visit is one stay interval at a WiFi place.
type Visit struct {
	Arrive time.Time
	Depart time.Time
}

// Duration returns the visit length.
func (v Visit) Duration() time.Duration { return v.Depart.Sub(v.Arrive) }

// Place is a discovered WiFi place.
type Place struct {
	ID     int
	Sig    Signature
	Visits []Visit
}

// TotalDwell sums visit durations.
func (p *Place) TotalDwell() time.Duration {
	var d time.Duration
	for _, v := range p.Visits {
		d += v.Duration()
	}
	return d
}

// EventKind distinguishes detector events.
type EventKind int

// Detector event kinds.
const (
	Arrival EventKind = iota + 1
	Departure
)

// Event is an online arrival/departure detection.
type Event struct {
	Kind    EventKind
	PlaceID int
	At      time.Time
}

// Detector is the online SensLoc state machine. Feed it scans in time order;
// it discovers new places, recognizes known ones, and emits arrival and
// departure events. Not safe for concurrent use.
type Detector struct {
	params Params
	places []*Place

	// pending holds recent not-at-place scans for entrance detection.
	pending []trace.WiFiScan

	atPlace    *Place
	arriveAt   time.Time
	lastGoodAt time.Time
	missStreak int
}

// NewDetector returns a detector with no known places.
func NewDetector(p Params) *Detector {
	return &Detector{params: p}
}

// NewDetectorWithPlaces returns a detector seeded with known places (e.g.
// loaded from the cloud instance).
func NewDetectorWithPlaces(p Params, places []*Place) *Detector {
	return &Detector{params: p, places: places}
}

// Places returns the discovered places so far.
func (d *Detector) Places() []*Place { return d.places }

// Current returns the place currently occupied, or nil.
func (d *Detector) Current() *Place { return d.atPlace }

// Observe consumes one scan and returns any events triggered.
func (d *Detector) Observe(scan trace.WiFiScan) []Event {
	if d.atPlace != nil {
		return d.observeDwelling(scan)
	}
	return d.observeRoaming(scan)
}

func (d *Detector) observeDwelling(scan trace.WiFiScan) []Event {
	sig := scanSignature(scan)
	sim := Tanimoto(d.atPlace.Sig, sig)
	if sim >= d.params.ExitSim {
		d.atPlace.Sig.merge(sig, d.params.SignatureAlpha)
		d.missStreak = 0
		d.lastGoodAt = scan.At
		return nil
	}
	d.missStreak++
	if d.missStreak < d.params.ConsecutiveScans {
		return nil
	}
	// Departure confirmed; departure time is the last scan that still
	// matched.
	ev := Event{Kind: Departure, PlaceID: d.atPlace.ID, At: d.lastGoodAt}
	d.atPlace.Visits = append(d.atPlace.Visits, Visit{Arrive: d.arriveAt, Depart: d.lastGoodAt})
	d.atPlace = nil
	d.missStreak = 0
	d.pending = nil
	return []Event{ev}
}

func (d *Detector) observeRoaming(scan trace.WiFiScan) []Event {
	if len(scan.APs) == 0 {
		d.pending = nil
		return nil
	}
	d.pending = append(d.pending, scan)
	if len(d.pending) > d.params.ConsecutiveScans {
		d.pending = d.pending[1:]
	}
	if len(d.pending) < d.params.ConsecutiveScans {
		return nil
	}
	// All consecutive pending pairs must be mutually similar.
	for i := 1; i < len(d.pending); i++ {
		if Tanimoto(scanSignature(d.pending[i-1]), scanSignature(d.pending[i])) < d.params.EnterSim {
			return nil
		}
	}
	// Entrance confirmed: build the signature from the pending run.
	sig := scanSignature(d.pending[0]).clone()
	for _, s := range d.pending[1:] {
		sig.merge(scanSignature(s), 0.5)
	}
	arrive := d.pending[0].At

	place := d.matchPlace(sig)
	if place == nil {
		place = &Place{ID: len(d.places), Sig: sig}
		d.places = append(d.places, place)
	} else {
		place.Sig.merge(sig, d.params.SignatureAlpha)
	}
	d.atPlace = place
	d.arriveAt = arrive
	d.lastGoodAt = scan.At
	d.missStreak = 0
	d.pending = nil
	return []Event{{Kind: Arrival, PlaceID: place.ID, At: arrive}}
}

// matchPlace returns the best known place whose signature similarity meets
// MatchSim, or nil.
func (d *Detector) matchPlace(sig Signature) *Place {
	var best *Place
	bestSim := d.params.MatchSim
	for _, p := range d.places {
		if sim := Tanimoto(p.Sig, sig); sim >= bestSim {
			best, bestSim = p, sim
		}
	}
	return best
}

// Flush closes any open visit at the given end time (call at trace end).
func (d *Detector) Flush(end time.Time) {
	if d.atPlace != nil {
		d.atPlace.Visits = append(d.atPlace.Visits, Visit{Arrive: d.arriveAt, Depart: end})
		d.atPlace = nil
	}
}

// Consolidate merges places whose signatures are mutually similar
// (Tanimoto >= matchSim, transitively). The online detector matches a new
// entrance against known signatures using a handful of scans, which is
// noisier than comparing the converged signatures — so one physical venue
// can accumulate duplicate place records over days. Consolidation is the
// batch cleanup pass run before fusing WiFi evidence with GSM places.
// Returned places keep the smallest ID of their group and time-sorted
// visits; inputs are not mutated.
func Consolidate(places []*Place, matchSim float64) []*Place {
	n := len(places)
	if n <= 1 {
		out := make([]*Place, n)
		copy(out, places)
		return out
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if find(i) == find(j) {
				continue
			}
			if Tanimoto(places[i].Sig, places[j].Sig) >= matchSim {
				parent[find(i)] = find(j)
			}
		}
	}
	groups := map[int][]*Place{}
	for i, p := range places {
		groups[find(i)] = append(groups[find(i)], p)
	}
	var out []*Place
	for _, members := range groups {
		merged := &Place{ID: members[0].ID, Sig: members[0].Sig.clone()}
		for _, m := range members {
			if m.ID < merged.ID {
				merged.ID = m.ID
			}
			merged.Visits = append(merged.Visits, m.Visits...)
		}
		for _, m := range members[1:] {
			merged.Sig.merge(m.Sig, 0.5)
		}
		sortVisits(merged.Visits)
		out = append(out, merged)
	}
	// Deterministic order by ID.
	slices.SortStableFunc(out, func(a, b *Place) int { return a.ID - b.ID })
	return out
}

func sortVisits(vs []Visit) {
	slices.SortStableFunc(vs, func(a, b Visit) int { return a.Arrive.Compare(b.Arrive) })
}

// Result is the output of offline discovery.
type Result struct {
	Places []*Place
	Events []Event
}

// Discover runs the detector over a full scan trace and filters visits below
// MinStay (places left with no significant visits are dropped).
func Discover(scans []trace.WiFiScan, p Params) *Result {
	d := NewDetector(p)
	var events []Event
	for _, s := range scans {
		events = append(events, d.Observe(s)...)
	}
	if len(scans) > 0 {
		d.Flush(scans[len(scans)-1].At)
	}

	var places []*Place
	id := 0
	for _, pl := range d.places {
		var kept []Visit
		for _, v := range pl.Visits {
			if v.Duration() >= p.MinStay {
				kept = append(kept, v)
			}
		}
		if len(kept) == 0 {
			continue
		}
		places = append(places, &Place{ID: id, Sig: pl.Sig, Visits: kept})
		id++
	}
	return &Result{Places: places, Events: events}
}
