package wifi

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/simclock"
	"repro/internal/trace"
	"repro/internal/world"
)

func scanAt(minute int, readings ...trace.WiFiReading) trace.WiFiScan {
	return trace.WiFiScan{
		At:  simclock.Epoch.Add(time.Duration(minute) * time.Minute),
		APs: readings,
	}
}

func rd(bssid string, rssi float64) trace.WiFiReading {
	return trace.WiFiReading{BSSID: bssid, RSSIDBM: rssi}
}

func TestTanimotoIdentical(t *testing.T) {
	s := Signature{"a": 50, "b": 30}
	if got := Tanimoto(s, s); math.Abs(got-1) > 1e-12 {
		t.Errorf("self similarity = %v, want 1", got)
	}
}

func TestTanimotoDisjoint(t *testing.T) {
	a := Signature{"a": 50}
	b := Signature{"b": 50}
	if got := Tanimoto(a, b); got != 0 {
		t.Errorf("disjoint similarity = %v, want 0", got)
	}
}

func TestTanimotoEmpty(t *testing.T) {
	if got := Tanimoto(nil, Signature{"a": 1}); got != 0 {
		t.Errorf("empty similarity = %v", got)
	}
	if got := Tanimoto(Signature{}, Signature{}); got != 0 {
		t.Errorf("both-empty similarity = %v", got)
	}
}

func TestTanimotoProperties(t *testing.T) {
	// Symmetry and [0,1] bounds over random signatures.
	f := func(w1, w2, w3, w4 uint8) bool {
		a := Signature{"x": float64(w1%60) + 1, "y": float64(w2 % 60)}
		b := Signature{"y": float64(w3%60) + 1, "z": float64(w4 % 60)}
		s1, s2 := Tanimoto(a, b), Tanimoto(b, a)
		return math.Abs(s1-s2) < 1e-12 && s1 >= 0 && s1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTanimotoPartialOverlap(t *testing.T) {
	a := Signature{"a": 50, "b": 50}
	b := Signature{"a": 50, "c": 50}
	got := Tanimoto(a, b)
	// dot = 2500, na = nb = 5000 => 2500 / 7500 = 1/3.
	if math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("partial overlap = %v, want 1/3", got)
	}
}

func TestWeightClamp(t *testing.T) {
	if weight(-100) != 0 {
		t.Error("weight below noise floor should clamp to 0")
	}
	if weight(-40) != 55 {
		t.Errorf("weight(-40) = %v, want 55", weight(-40))
	}
}

func TestDetectorEntranceAndDeparture(t *testing.T) {
	d := NewDetector(DefaultParams())
	var events []Event

	// Three similar scans at a place -> arrival.
	for i := 0; i < 3; i++ {
		events = append(events, d.Observe(scanAt(i, rd("ap1", -50), rd("ap2", -60)))...)
	}
	if len(events) != 1 || events[0].Kind != Arrival {
		t.Fatalf("events after settling = %v, want one arrival", events)
	}
	if events[0].At != simclock.Epoch {
		t.Errorf("arrival backdated to %v, want first settled scan", events[0].At)
	}
	if d.Current() == nil {
		t.Fatal("detector not dwelling after arrival")
	}

	// Keep dwelling.
	for i := 3; i < 20; i++ {
		if ev := d.Observe(scanAt(i, rd("ap1", -52), rd("ap2", -58))); len(ev) != 0 {
			t.Fatalf("unexpected events while dwelling: %v", ev)
		}
	}

	// Walk away: dissimilar scans.
	events = nil
	for i := 20; i < 25; i++ {
		events = append(events, d.Observe(scanAt(i, rd("street1", -70)))...)
	}
	var dep *Event
	for i := range events {
		if events[i].Kind == Departure {
			dep = &events[i]
		}
	}
	if dep == nil {
		t.Fatal("no departure after leaving")
	}
	// Departure timestamp is the last matching scan (minute 19).
	if want := simclock.Epoch.Add(19 * time.Minute); !dep.At.Equal(want) {
		t.Errorf("departure at %v, want %v", dep.At, want)
	}
	if got := len(d.Places()[0].Visits); got != 1 {
		t.Errorf("visits recorded = %d, want 1", got)
	}
}

func TestDetectorRecognizesReturn(t *testing.T) {
	d := NewDetector(DefaultParams())
	dwell := func(start int, ap1, ap2 float64) {
		for i := start; i < start+15; i++ {
			d.Observe(scanAt(i, rd("ap1", ap1), rd("ap2", ap2)))
		}
	}
	dwell(0, -50, -60)
	// Leave.
	for i := 15; i < 20; i++ {
		d.Observe(scanAt(i, rd("street1", -70), rd("street2", -75)))
	}
	// Outside coverage entirely.
	for i := 20; i < 25; i++ {
		d.Observe(scanAt(i))
	}
	// Return with slightly different RSSI.
	dwell(25, -55, -62)
	if got := len(d.Places()); got != 2 {
		// street scans may or may not have formed a transient place; the
		// home place must be recognized, so at most 2 places exist.
		if got > 2 {
			t.Fatalf("places = %d, want <= 2 (return not recognized)", got)
		}
	}
	home := d.Places()[0]
	d.Flush(simclock.Epoch.Add(40 * time.Minute))
	if len(home.Visits) != 2 {
		t.Errorf("home visits = %d, want 2", len(home.Visits))
	}
}

func TestDetectorEmptyScansNoPlace(t *testing.T) {
	d := NewDetector(DefaultParams())
	for i := 0; i < 30; i++ {
		if ev := d.Observe(scanAt(i)); len(ev) != 0 {
			t.Fatal("events from empty scans")
		}
	}
	if len(d.Places()) != 0 {
		t.Error("places created from empty scans")
	}
}

func TestDetectorDistinctPlaces(t *testing.T) {
	d := NewDetector(DefaultParams())
	for i := 0; i < 15; i++ {
		d.Observe(scanAt(i, rd("p1a", -50), rd("p1b", -55)))
	}
	for i := 15; i < 18; i++ {
		d.Observe(scanAt(i)) // gap
	}
	for i := 18; i < 35; i++ {
		d.Observe(scanAt(i, rd("p2a", -45), rd("p2b", -52)))
	}
	d.Flush(simclock.Epoch.Add(35 * time.Minute))
	if got := len(d.Places()); got != 2 {
		t.Fatalf("places = %d, want 2", got)
	}
}

func TestDiscoverFiltersShortStops(t *testing.T) {
	var scans []trace.WiFiScan
	// 5-minute stop (below MinStay).
	for i := 0; i < 5; i++ {
		scans = append(scans, scanAt(i, rd("stop", -50)))
	}
	for i := 5; i < 8; i++ {
		scans = append(scans, scanAt(i))
	}
	// 30-minute dwell.
	for i := 8; i < 38; i++ {
		scans = append(scans, scanAt(i, rd("homeap", -48), rd("homeap2", -55)))
	}
	res := Discover(scans, DefaultParams())
	if len(res.Places) != 1 {
		t.Fatalf("places = %d, want 1 (short stop must be filtered)", len(res.Places))
	}
	if _, ok := res.Places[0].Sig["homeap"]; !ok {
		t.Error("surviving place is not the long dwell")
	}
	if res.Places[0].ID != 0 {
		t.Error("place IDs not renumbered after filtering")
	}
}

func TestSignatureMergeConvergence(t *testing.T) {
	sig := Signature{"a": 50}
	for i := 0; i < 200; i++ {
		sig.merge(Signature{"a": 30}, 0.1)
	}
	if math.Abs(sig["a"]-30) > 1 {
		t.Errorf("EMA did not converge: %v", sig["a"])
	}
	// Unheard APs decay away.
	sig = Signature{"gone": 50, "a": 50}
	for i := 0; i < 200; i++ {
		sig.merge(Signature{"a": 50}, 0.1)
	}
	if sig["gone"] > 1 {
		t.Errorf("stale AP did not decay: %v", sig["gone"])
	}
}

func TestDiscoverOnSimulatedDays(t *testing.T) {
	cfg := world.DefaultConfig()
	cfg.WiFiVenueFraction = 1.0 // everything has WiFi for this test
	r := rand.New(rand.NewSource(41))
	w := world.Generate(cfg, r)
	home := w.AddVenue("home", "Home", world.KindHome, geo.Offset(cfg.Origin, 210, 2300), true, cfg, r)
	work := w.AddVenue("work", "Office", world.KindWorkplace, geo.Offset(cfg.Origin, 30, 2400), true, cfg, r)
	a := &mobility.Agent{ID: "u1", Home: home, Work: work, SpeedMPS: 7}
	for _, v := range w.Venues {
		if v.Kind != world.KindHome && v.Kind != world.KindWorkplace {
			a.Haunts = append(a.Haunts, v)
		}
	}
	it, err := mobility.BuildItinerary(a, w, simclock.Epoch, 3, mobility.DefaultScheduleConfig(), rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	s := trace.NewSensors(w, it, trace.DefaultConfig(), rand.New(rand.NewSource(43)))
	scans := s.CollectWiFi(it.Start, it.End, time.Minute)
	res := Discover(scans, DefaultParams())

	if len(res.Places) < 2 {
		t.Fatalf("discovered %d WiFi places over 3 days, want >= 2 (home+work)", len(res.Places))
	}
	// The top place by dwell should be home (nights dominate).
	var top *Place
	for _, p := range res.Places {
		if top == nil || p.TotalDwell() > top.TotalDwell() {
			top = p
		}
	}
	homeAP := false
	for b := range top.Sig {
		if ap := w.APByBSSID(b); ap != nil && ap.VenueID == "home" && top.Sig[b] > 5 {
			homeAP = true
		}
	}
	if !homeAP {
		t.Error("top place signature does not feature home APs")
	}
}

func TestVisitDuration(t *testing.T) {
	v := Visit{Arrive: simclock.Epoch, Depart: simclock.Epoch.Add(45 * time.Minute)}
	if v.Duration() != 45*time.Minute {
		t.Errorf("duration = %v", v.Duration())
	}
}

func TestDetectorWithSeededPlaces(t *testing.T) {
	seed := &Place{ID: 7, Sig: Signature{"ap1": 45, "ap2": 35}}
	d := NewDetectorWithPlaces(DefaultParams(), []*Place{seed})
	var events []Event
	for i := 0; i < 5; i++ {
		events = append(events, d.Observe(scanAt(i, rd("ap1", -50), rd("ap2", -60)))...)
	}
	if len(events) != 1 || events[0].PlaceID != 7 {
		t.Fatalf("seeded place not recognized: %v", events)
	}
}

func TestConsolidateMergesDuplicates(t *testing.T) {
	// Two records of the same venue (similar signatures) plus one distinct.
	a := &Place{ID: 0, Sig: Signature{"x": 50, "y": 40}, Visits: []Visit{
		{Arrive: simclock.Epoch, Depart: simclock.Epoch.Add(30 * time.Minute)},
	}}
	b := &Place{ID: 1, Sig: Signature{"x": 48, "y": 42}, Visits: []Visit{
		{Arrive: simclock.Epoch.Add(2 * time.Hour), Depart: simclock.Epoch.Add(3 * time.Hour)},
	}}
	c := &Place{ID: 2, Sig: Signature{"z": 55}, Visits: []Visit{
		{Arrive: simclock.Epoch.Add(5 * time.Hour), Depart: simclock.Epoch.Add(6 * time.Hour)},
	}}
	out := Consolidate([]*Place{a, b, c}, 0.40)
	if len(out) != 2 {
		t.Fatalf("consolidated = %d, want 2", len(out))
	}
	// The merged place keeps the smallest ID and both visits, time-sorted.
	var merged *Place
	for _, p := range out {
		if p.ID == 0 {
			merged = p
		}
	}
	if merged == nil {
		t.Fatal("merged place lost ID 0")
	}
	if len(merged.Visits) != 2 {
		t.Fatalf("merged visits = %d", len(merged.Visits))
	}
	if merged.Visits[1].Arrive.Before(merged.Visits[0].Arrive) {
		t.Error("visits unsorted")
	}
	// Inputs not mutated.
	if len(a.Visits) != 1 || len(b.Visits) != 1 {
		t.Error("Consolidate mutated inputs")
	}
}

func TestConsolidateTransitive(t *testing.T) {
	// a~b and b~c but a!~c: all three must still unify (transitively).
	a := &Place{ID: 0, Sig: Signature{"p": 50, "q": 10}}
	b := &Place{ID: 1, Sig: Signature{"p": 45, "q": 30, "r": 30}}
	c := &Place{ID: 2, Sig: Signature{"q": 35, "r": 45}}
	out := Consolidate([]*Place{a, b, c}, 0.45)
	if len(out) != 1 {
		sims := []float64{Tanimoto(a.Sig, b.Sig), Tanimoto(b.Sig, c.Sig), Tanimoto(a.Sig, c.Sig)}
		t.Fatalf("consolidated = %d, want 1 (sims %v)", len(out), sims)
	}
}

func TestConsolidateDistinctKeptApart(t *testing.T) {
	a := &Place{ID: 0, Sig: Signature{"x": 50}}
	b := &Place{ID: 1, Sig: Signature{"y": 50}}
	out := Consolidate([]*Place{a, b}, 0.40)
	if len(out) != 2 {
		t.Fatalf("distinct places merged: %d", len(out))
	}
	if out[0].ID != 0 || out[1].ID != 1 {
		t.Error("output not ordered by ID")
	}
}

func TestConsolidateDegenerate(t *testing.T) {
	if out := Consolidate(nil, 0.4); len(out) != 0 {
		t.Error("nil input")
	}
	one := []*Place{{ID: 5, Sig: Signature{"x": 1}}}
	out := Consolidate(one, 0.4)
	if len(out) != 1 || out[0].ID != 5 {
		t.Error("single input mangled")
	}
}
