package wifi_test

import (
	"fmt"

	"repro/internal/wifi"
)

func ExampleTanimoto() {
	cafe := wifi.Signature{"aa:01": 50, "aa:02": 40}
	sameCafe := wifi.Signature{"aa:01": 48, "aa:02": 42}
	library := wifi.Signature{"bb:07": 55}

	fmt.Printf("same place: %.2f\n", wifi.Tanimoto(cafe, sameCafe))
	fmt.Printf("different:  %.2f\n", wifi.Tanimoto(cafe, library))
	// Output:
	// same place: 1.00
	// different:  0.00
}
