// Package geo provides the geodesic primitives used throughout the PMWare
// reproduction: latitude/longitude points, great-circle distance, bearings,
// centroids, bounding boxes, and polyline utilities.
//
// All distances are in meters, all angles in degrees unless noted otherwise.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusMeters is the mean Earth radius used for great-circle math.
const EarthRadiusMeters = 6371000.0

// LatLng is a WGS84 coordinate pair in degrees.
type LatLng struct {
	Lat float64 `json:"lat"`
	Lng float64 `json:"lng"`
}

// String renders the point with 6 decimal places (~0.1 m resolution).
func (p LatLng) String() string {
	return fmt.Sprintf("(%.6f, %.6f)", p.Lat, p.Lng)
}

// Valid reports whether the point lies within the WGS84 domain.
func (p LatLng) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lng >= -180 && p.Lng <= 180 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lng)
}

// IsZero reports whether the point is the zero value (0, 0). The simulation
// never places anything at null island, so IsZero doubles as a "missing
// coordinate" sentinel.
func (p LatLng) IsZero() bool { return p.Lat == 0 && p.Lng == 0 }

func radians(deg float64) float64 { return deg * math.Pi / 180 }
func degrees(rad float64) float64 { return rad * 180 / math.Pi }

// Distance returns the great-circle (haversine) distance in meters between
// two points.
func Distance(a, b LatLng) float64 {
	latA, latB := radians(a.Lat), radians(b.Lat)
	dLat := latB - latA
	dLng := radians(b.Lng - a.Lng)

	sinLat := math.Sin(dLat / 2)
	sinLng := math.Sin(dLng / 2)
	h := sinLat*sinLat + math.Cos(latA)*math.Cos(latB)*sinLng*sinLng
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusMeters * math.Asin(math.Sqrt(h))
}

// Bearing returns the initial great-circle bearing from a to b, in degrees
// clockwise from north, normalized to [0, 360).
func Bearing(a, b LatLng) float64 {
	latA, latB := radians(a.Lat), radians(b.Lat)
	dLng := radians(b.Lng - a.Lng)

	y := math.Sin(dLng) * math.Cos(latB)
	x := math.Cos(latA)*math.Sin(latB) - math.Sin(latA)*math.Cos(latB)*math.Cos(dLng)
	brg := degrees(math.Atan2(y, x))
	return math.Mod(brg+360, 360)
}

// Offset returns the point reached by travelling distanceMeters from p along
// the given bearing (degrees clockwise from north).
func Offset(p LatLng, bearingDeg, distanceMeters float64) LatLng {
	lat := radians(p.Lat)
	lng := radians(p.Lng)
	brg := radians(bearingDeg)
	d := distanceMeters / EarthRadiusMeters

	lat2 := math.Asin(math.Sin(lat)*math.Cos(d) + math.Cos(lat)*math.Sin(d)*math.Cos(brg))
	lng2 := lng + math.Atan2(
		math.Sin(brg)*math.Sin(d)*math.Cos(lat),
		math.Cos(d)-math.Sin(lat)*math.Sin(lat2),
	)
	out := LatLng{Lat: degrees(lat2), Lng: degrees(lng2)}
	// Normalize longitude to [-180, 180].
	for out.Lng > 180 {
		out.Lng -= 360
	}
	for out.Lng < -180 {
		out.Lng += 360
	}
	return out
}

// Interpolate returns the point a fraction f of the way from a to b along the
// great circle. f is clamped to [0, 1].
func Interpolate(a, b LatLng, f float64) LatLng {
	if f <= 0 {
		return a
	}
	if f >= 1 {
		return b
	}
	d := Distance(a, b)
	if d == 0 {
		return a
	}
	return Offset(a, Bearing(a, b), d*f)
}

// Centroid returns the arithmetic centroid of the points. It is accurate for
// the city-scale extents used by the simulation (no antimeridian handling).
// Returns the zero value for an empty slice.
func Centroid(points []LatLng) LatLng {
	if len(points) == 0 {
		return LatLng{}
	}
	var sumLat, sumLng float64
	for _, p := range points {
		sumLat += p.Lat
		sumLng += p.Lng
	}
	n := float64(len(points))
	return LatLng{Lat: sumLat / n, Lng: sumLng / n}
}

// Bounds is an axis-aligned lat/lng bounding box.
type Bounds struct {
	MinLat, MinLng float64
	MaxLat, MaxLng float64
}

// NewBounds returns the tight bounding box around the points, and false if
// the slice is empty.
func NewBounds(points []LatLng) (Bounds, bool) {
	if len(points) == 0 {
		return Bounds{}, false
	}
	b := Bounds{
		MinLat: points[0].Lat, MaxLat: points[0].Lat,
		MinLng: points[0].Lng, MaxLng: points[0].Lng,
	}
	for _, p := range points[1:] {
		b = b.Extend(p)
	}
	return b, true
}

// Extend returns the bounds grown to include p.
func (b Bounds) Extend(p LatLng) Bounds {
	if p.Lat < b.MinLat {
		b.MinLat = p.Lat
	}
	if p.Lat > b.MaxLat {
		b.MaxLat = p.Lat
	}
	if p.Lng < b.MinLng {
		b.MinLng = p.Lng
	}
	if p.Lng > b.MaxLng {
		b.MaxLng = p.Lng
	}
	return b
}

// Contains reports whether p lies inside (or on the edge of) the bounds.
func (b Bounds) Contains(p LatLng) bool {
	return p.Lat >= b.MinLat && p.Lat <= b.MaxLat &&
		p.Lng >= b.MinLng && p.Lng <= b.MaxLng
}

// Center returns the midpoint of the bounds.
func (b Bounds) Center() LatLng {
	return LatLng{Lat: (b.MinLat + b.MaxLat) / 2, Lng: (b.MinLng + b.MaxLng) / 2}
}

// DiagonalMeters returns the great-circle length of the bounds diagonal.
func (b Bounds) DiagonalMeters() float64 {
	return Distance(LatLng{Lat: b.MinLat, Lng: b.MinLng}, LatLng{Lat: b.MaxLat, Lng: b.MaxLng})
}
