package geo

import (
	"math"
	"math/rand"
	"testing"
)

func line(points ...LatLng) Polyline { return Polyline(points) }

func TestPolylineLength(t *testing.T) {
	if got := line().Length(); got != 0 {
		t.Errorf("empty length = %v, want 0", got)
	}
	if got := line(LatLng{28.6, 77.2}).Length(); got != 0 {
		t.Errorf("single-point length = %v, want 0", got)
	}
	a := LatLng{28.6, 77.2}
	b := Offset(a, 90, 1000)
	c := Offset(b, 0, 500)
	pl := line(a, b, c)
	if got := pl.Length(); math.Abs(got-1500) > 1 {
		t.Errorf("length = %.3f, want ~1500", got)
	}
}

func TestPointAt(t *testing.T) {
	a := LatLng{28.6, 77.2}
	b := Offset(a, 90, 1000)
	pl := line(a, b)

	if got := pl.PointAt(-5); got != a {
		t.Errorf("negative distance should clamp to start, got %v", got)
	}
	if got := pl.PointAt(5000); got != b {
		t.Errorf("overshoot should clamp to end, got %v", got)
	}
	mid := pl.PointAt(500)
	if d := Distance(a, mid); math.Abs(d-500) > 1 {
		t.Errorf("PointAt(500) is %.3f m from start, want ~500", d)
	}
	if got := Polyline(nil).PointAt(10); !got.IsZero() {
		t.Errorf("empty polyline PointAt = %v, want zero", got)
	}
}

func TestResample(t *testing.T) {
	a := LatLng{28.6, 77.2}
	b := Offset(a, 90, 1000)
	pl := line(a, b)

	rs := pl.Resample(100)
	if len(rs) < 10 {
		t.Fatalf("resample too sparse: %d points", len(rs))
	}
	if rs[0] != a || rs[len(rs)-1] != b {
		t.Error("resample must keep endpoints")
	}
	med := rs.MedianNeighborSpacing()
	if math.Abs(med-100) > 5 {
		t.Errorf("median spacing = %.3f, want ~100", med)
	}
	// Length must be preserved (within interpolation error).
	if got := rs.Length(); math.Abs(got-pl.Length()) > 5 {
		t.Errorf("resample changed length: %.3f vs %.3f", got, pl.Length())
	}
	// Degenerate spacings return a copy.
	cp := pl.Resample(0)
	if len(cp) != len(pl) {
		t.Errorf("Resample(0) len = %d, want %d", len(cp), len(pl))
	}
	if Polyline(nil).Resample(10) != nil {
		t.Error("Resample of nil should be nil")
	}
}

func TestSimplify(t *testing.T) {
	a := LatLng{28.6, 77.2}
	b := Offset(a, 90, 1000)
	dense := line(a, b).Resample(10) // ~100 points
	sparse := dense.Simplify(100)
	if len(sparse) >= len(dense) {
		t.Errorf("simplify did not reduce: %d -> %d", len(dense), len(sparse))
	}
	if sparse[0] != dense[0] || sparse[len(sparse)-1] != dense[len(dense)-1] {
		t.Error("simplify must keep endpoints")
	}
	// Short polylines are returned as copies.
	two := line(a, b)
	if got := two.Simplify(1e9); len(got) != 2 {
		t.Errorf("Simplify on 2-point line returned %d points", len(got))
	}
}

func TestHausdorffDistance(t *testing.T) {
	a := LatLng{28.6, 77.2}
	b := Offset(a, 90, 2000)
	pl1 := line(a, b).Resample(50)

	// Identical lines: distance 0.
	if got := HausdorffDistance(pl1, pl1); got != 0 {
		t.Errorf("self distance = %.3f, want 0", got)
	}
	// Parallel line 300 m north: distance ~300.
	pl2 := make(Polyline, len(pl1))
	for i, p := range pl1 {
		pl2[i] = Offset(p, 0, 300)
	}
	if got := HausdorffDistance(pl1, pl2); math.Abs(got-300) > 10 {
		t.Errorf("parallel distance = %.3f, want ~300", got)
	}
	// Symmetry.
	if d1, d2 := HausdorffDistance(pl1, pl2), HausdorffDistance(pl2, pl1); d1 != d2 {
		t.Errorf("not symmetric: %.3f vs %.3f", d1, d2)
	}
	// Empty handling.
	if got := HausdorffDistance(nil, pl1); got != 0 {
		t.Errorf("empty vs non-empty = %.3f, want 0", got)
	}
}

func TestHausdorffMonotoneInOffset(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	a := LatLng{28.6, 77.2}
	b := Offset(a, r.Float64()*360, 3000)
	base := line(a, b).Resample(100)
	prev := -1.0
	for _, off := range []float64{50, 150, 400, 900} {
		shifted := make(Polyline, len(base))
		for i, p := range base {
			shifted[i] = Offset(p, 45, off)
		}
		d := HausdorffDistance(base, shifted)
		if d <= prev {
			t.Fatalf("Hausdorff not increasing with offset: %.3f after %.3f", d, prev)
		}
		prev = d
	}
}

func TestDistanceToPoint(t *testing.T) {
	a := LatLng{28.6, 77.2}
	b := Offset(a, 90, 1000)
	pl := line(a, b).Resample(20)
	p := Offset(pl.PointAt(500), 0, 123)
	if got := pl.DistanceToPoint(p); math.Abs(got-123) > 15 {
		t.Errorf("DistanceToPoint = %.3f, want ~123", got)
	}
	if got := Polyline(nil).DistanceToPoint(p); got != 0 {
		t.Errorf("empty DistanceToPoint = %.3f, want 0", got)
	}
}

func TestMedianNeighborSpacingShort(t *testing.T) {
	if got := Polyline(nil).MedianNeighborSpacing(); got != 0 {
		t.Errorf("nil spacing = %v", got)
	}
	if got := line(LatLng{1, 1}).MedianNeighborSpacing(); got != 0 {
		t.Errorf("single spacing = %v", got)
	}
}
