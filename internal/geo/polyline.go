package geo

import "sort"

// Polyline is an ordered sequence of points describing a path.
type Polyline []LatLng

// Length returns the total great-circle length of the polyline in meters.
func (pl Polyline) Length() float64 {
	var total float64
	for i := 1; i < len(pl); i++ {
		total += Distance(pl[i-1], pl[i])
	}
	return total
}

// PointAt returns the point a given distance (meters) along the polyline,
// interpolating between vertices. Distances beyond either end clamp to the
// endpoints. Returns the zero value for an empty polyline.
func (pl Polyline) PointAt(distanceMeters float64) LatLng {
	if len(pl) == 0 {
		return LatLng{}
	}
	if distanceMeters <= 0 {
		return pl[0]
	}
	remaining := distanceMeters
	for i := 1; i < len(pl); i++ {
		seg := Distance(pl[i-1], pl[i])
		if remaining <= seg {
			if seg == 0 {
				return pl[i]
			}
			return Interpolate(pl[i-1], pl[i], remaining/seg)
		}
		remaining -= seg
	}
	return pl[len(pl)-1]
}

// Resample returns the polyline re-sampled at a fixed spacing (meters),
// always including both endpoints. A spacing <= 0 returns a copy.
func (pl Polyline) Resample(spacingMeters float64) Polyline {
	if len(pl) == 0 {
		return nil
	}
	if spacingMeters <= 0 || len(pl) == 1 {
		out := make(Polyline, len(pl))
		copy(out, pl)
		return out
	}
	total := pl.Length()
	out := Polyline{pl[0]}
	for d := spacingMeters; d < total; d += spacingMeters {
		out = append(out, pl.PointAt(d))
	}
	out = append(out, pl[len(pl)-1])
	return out
}

// DistanceToPoint returns the minimum distance in meters from p to any vertex
// of the polyline (vertex approximation; adequate for densely sampled paths).
func (pl Polyline) DistanceToPoint(p LatLng) float64 {
	if len(pl) == 0 {
		return 0
	}
	best := Distance(pl[0], p)
	for _, v := range pl[1:] {
		if d := Distance(v, p); d < best {
			best = d
		}
	}
	return best
}

// Simplify returns the polyline with consecutive vertices closer than
// toleranceMeters collapsed, always keeping the endpoints.
func (pl Polyline) Simplify(toleranceMeters float64) Polyline {
	if len(pl) <= 2 {
		out := make(Polyline, len(pl))
		copy(out, pl)
		return out
	}
	out := Polyline{pl[0]}
	for i := 1; i < len(pl)-1; i++ {
		if Distance(out[len(out)-1], pl[i]) >= toleranceMeters {
			out = append(out, pl[i])
		}
	}
	out = append(out, pl[len(pl)-1])
	return out
}

// HausdorffDistance returns the (symmetric, vertex-sampled) Hausdorff
// distance in meters between two polylines: the largest distance from a
// vertex of either line to the nearest vertex of the other. It is the route
// dissimilarity measure used by the cloud route-similarity service.
func HausdorffDistance(a, b Polyline) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	directed := func(from, to Polyline) float64 {
		var worst float64
		for _, p := range from {
			if d := to.DistanceToPoint(p); d > worst {
				worst = d
			}
		}
		return worst
	}
	return max(directed(a, b), directed(b, a))
}

// MedianNeighborSpacing returns the median distance between consecutive
// vertices, used to sanity-check sampled trajectories. Returns 0 for
// polylines with fewer than two points.
func (pl Polyline) MedianNeighborSpacing() float64 {
	if len(pl) < 2 {
		return 0
	}
	gaps := make([]float64, 0, len(pl)-1)
	for i := 1; i < len(pl); i++ {
		gaps = append(gaps, Distance(pl[i-1], pl[i]))
	}
	sort.Float64s(gaps)
	return gaps[len(gaps)/2]
}
