package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomCityPoint returns a point inside the simulation's city-scale extent
// (a ~50 km box around a mid-latitude origin), the regime all algorithms
// operate in.
func randomCityPoint(r *rand.Rand) LatLng {
	return LatLng{
		Lat: 28.5 + r.Float64()*0.5,
		Lng: 77.0 + r.Float64()*0.5,
	}
}

func TestDistanceKnownValues(t *testing.T) {
	tests := []struct {
		name   string
		a, b   LatLng
		wantM  float64
		within float64
	}{
		{"same point", LatLng{28.6, 77.2}, LatLng{28.6, 77.2}, 0, 0.001},
		{"one degree latitude", LatLng{0, 0}, LatLng{1, 0}, 111195, 50},
		{"one degree longitude at equator", LatLng{0, 0}, LatLng{0, 1}, 111195, 50},
		{"delhi to bangalore", LatLng{28.6139, 77.2090}, LatLng{12.9716, 77.5946}, 1740000, 10000},
		{"antipodal-ish", LatLng{0, 0}, LatLng{0, 180}, math.Pi * EarthRadiusMeters, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Distance(tt.a, tt.b)
			if math.Abs(got-tt.wantM) > tt.within {
				t.Errorf("Distance(%v, %v) = %.1f m, want %.1f ± %.1f", tt.a, tt.b, got, tt.wantM, tt.within)
			}
		})
	}
}

func TestDistanceSymmetric(t *testing.T) {
	f := func(latA, lngA, latB, lngB float64) bool {
		a := LatLng{Lat: math.Mod(latA, 90), Lng: math.Mod(lngA, 180)}
		b := LatLng{Lat: math.Mod(latB, 90), Lng: math.Mod(lngB, 180)}
		d1, d2 := Distance(a, b), Distance(b, a)
		return math.Abs(d1-d2) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceTriangleInequality(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		a, b, c := randomCityPoint(r), randomCityPoint(r), randomCityPoint(r)
		ab, bc, ac := Distance(a, b), Distance(b, c), Distance(a, c)
		if ac > ab+bc+1e-6 {
			t.Fatalf("triangle inequality violated: d(a,c)=%.3f > d(a,b)+d(b,c)=%.3f", ac, ab+bc)
		}
	}
}

func TestOffsetRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		p := randomCityPoint(r)
		brg := r.Float64() * 360
		dist := r.Float64() * 20000 // up to 20 km
		q := Offset(p, brg, dist)
		got := Distance(p, q)
		if math.Abs(got-dist) > 0.5 {
			t.Fatalf("Offset distance mismatch: moved %.3f m, want %.3f m", got, dist)
		}
		// Travelling back along the reverse bearing should land near p.
		back := Offset(q, Bearing(q, p), dist)
		if d := Distance(back, p); d > 1.0 {
			t.Fatalf("round trip drifted %.3f m", d)
		}
	}
}

func TestBearingCardinal(t *testing.T) {
	origin := LatLng{Lat: 28.6, Lng: 77.2}
	tests := []struct {
		name string
		to   LatLng
		want float64
	}{
		{"north", LatLng{Lat: 28.7, Lng: 77.2}, 0},
		{"east", LatLng{Lat: 28.6, Lng: 77.3}, 90},
		{"south", LatLng{Lat: 28.5, Lng: 77.2}, 180},
		{"west", LatLng{Lat: 28.6, Lng: 77.1}, 270},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Bearing(origin, tt.to)
			diff := math.Abs(got - tt.want)
			if diff > 0.2 && diff < 359.8 {
				t.Errorf("Bearing = %.3f, want %.3f", got, tt.want)
			}
		})
	}
}

func TestBearingRange(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		a, b := randomCityPoint(r), randomCityPoint(r)
		brg := Bearing(a, b)
		if brg < 0 || brg >= 360 {
			t.Fatalf("bearing %.3f out of [0, 360)", brg)
		}
	}
}

func TestInterpolate(t *testing.T) {
	a := LatLng{Lat: 28.6, Lng: 77.2}
	b := LatLng{Lat: 28.7, Lng: 77.3}
	if got := Interpolate(a, b, 0); got != a {
		t.Errorf("f=0 should return a, got %v", got)
	}
	if got := Interpolate(a, b, 1); got != b {
		t.Errorf("f=1 should return b, got %v", got)
	}
	mid := Interpolate(a, b, 0.5)
	dA, dB := Distance(a, mid), Distance(mid, b)
	if math.Abs(dA-dB) > 1 {
		t.Errorf("midpoint not equidistant: %.3f vs %.3f", dA, dB)
	}
	// Clamping.
	if got := Interpolate(a, b, -0.5); got != a {
		t.Errorf("f<0 should clamp to a, got %v", got)
	}
	if got := Interpolate(a, b, 1.5); got != b {
		t.Errorf("f>1 should clamp to b, got %v", got)
	}
	// Degenerate segment.
	if got := Interpolate(a, a, 0.5); got != a {
		t.Errorf("degenerate segment should return a, got %v", got)
	}
}

func TestCentroid(t *testing.T) {
	if got := Centroid(nil); !got.IsZero() {
		t.Errorf("empty centroid = %v, want zero", got)
	}
	pts := []LatLng{{Lat: 28.0, Lng: 77.0}, {Lat: 29.0, Lng: 78.0}}
	got := Centroid(pts)
	want := LatLng{Lat: 28.5, Lng: 77.5}
	if math.Abs(got.Lat-want.Lat) > 1e-9 || math.Abs(got.Lng-want.Lng) > 1e-9 {
		t.Errorf("Centroid = %v, want %v", got, want)
	}
}

func TestCentroidInsideBounds(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		n := 1 + r.Intn(20)
		pts := make([]LatLng, n)
		for j := range pts {
			pts[j] = randomCityPoint(r)
		}
		b, ok := NewBounds(pts)
		if !ok {
			t.Fatal("NewBounds failed on non-empty input")
		}
		if c := Centroid(pts); !b.Contains(c) {
			t.Fatalf("centroid %v outside bounds %+v", c, b)
		}
	}
}

func TestBounds(t *testing.T) {
	if _, ok := NewBounds(nil); ok {
		t.Error("NewBounds(nil) should report not-ok")
	}
	pts := []LatLng{{28.6, 77.2}, {28.7, 77.1}, {28.65, 77.3}}
	b, ok := NewBounds(pts)
	if !ok {
		t.Fatal("NewBounds failed")
	}
	for _, p := range pts {
		if !b.Contains(p) {
			t.Errorf("bounds should contain %v", p)
		}
	}
	if b.Contains(LatLng{Lat: 30, Lng: 77.2}) {
		t.Error("bounds should not contain far point")
	}
	if b.MinLat != 28.6 || b.MaxLat != 28.7 || b.MinLng != 77.1 || b.MaxLng != 77.3 {
		t.Errorf("unexpected bounds %+v", b)
	}
	c := b.Center()
	if !b.Contains(c) {
		t.Errorf("center %v should be inside bounds", c)
	}
	if b.DiagonalMeters() <= 0 {
		t.Error("diagonal should be positive for non-degenerate bounds")
	}
}

func TestValid(t *testing.T) {
	tests := []struct {
		p    LatLng
		want bool
	}{
		{LatLng{0, 0}, true},
		{LatLng{90, 180}, true},
		{LatLng{-90, -180}, true},
		{LatLng{91, 0}, false},
		{LatLng{0, 181}, false},
		{LatLng{math.NaN(), 0}, false},
	}
	for _, tt := range tests {
		if got := tt.p.Valid(); got != tt.want {
			t.Errorf("Valid(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestOffsetLongitudeNormalization(t *testing.T) {
	// Travelling east across the antimeridian should wrap into [-180, 180].
	p := LatLng{Lat: 0, Lng: 179.9}
	q := Offset(p, 90, 50000)
	if q.Lng > 180 || q.Lng < -180 {
		t.Errorf("longitude not normalized: %v", q)
	}
	if q.Lng > 0 {
		t.Errorf("expected wrap to negative longitude, got %v", q)
	}
}
