package geo_test

import (
	"fmt"

	"repro/internal/geo"
)

func ExampleDistance() {
	connaughtPlace := geo.LatLng{Lat: 28.6315, Lng: 77.2167}
	indiaGate := geo.LatLng{Lat: 28.6129, Lng: 77.2295}
	fmt.Printf("%.0f m\n", geo.Distance(connaughtPlace, indiaGate))
	// Output: 2416 m
}

func ExamplePolyline_Length() {
	start := geo.LatLng{Lat: 28.6, Lng: 77.2}
	pl := geo.Polyline{
		start,
		geo.Offset(start, 90, 1000), // 1 km east
		geo.Offset(geo.Offset(start, 90, 1000), 0, 500), // then 500 m north
	}
	fmt.Printf("%.0f m\n", pl.Length())
	// Output: 1500 m
}
