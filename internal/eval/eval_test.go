package eval

import (
	"strings"
	"testing"
	"time"

	"repro/internal/simclock"
)

func iv(startMin, endMin int) Interval {
	return Interval{
		Start: simclock.Epoch.Add(time.Duration(startMin) * time.Minute),
		End:   simclock.Epoch.Add(time.Duration(endMin) * time.Minute),
	}
}

func tv(venue string, startMin, endMin int) TruthVisit {
	i := iv(startMin, endMin)
	return TruthVisit{VenueID: venue, Start: i.Start, End: i.End}
}

const minOv = 5 * time.Minute

func TestOverlap(t *testing.T) {
	tests := []struct {
		name string
		a, b Interval
		want time.Duration
	}{
		{"disjoint", iv(0, 10), iv(20, 30), 0},
		{"touching", iv(0, 10), iv(10, 20), 0},
		{"nested", iv(0, 60), iv(10, 20), 10 * time.Minute},
		{"partial", iv(0, 30), iv(20, 50), 10 * time.Minute},
		{"identical", iv(5, 15), iv(5, 15), 10 * time.Minute},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := overlap(tt.a, tt.b); got != tt.want {
				t.Errorf("overlap = %v, want %v", got, tt.want)
			}
			if got := overlap(tt.b, tt.a); got != tt.want {
				t.Errorf("overlap not symmetric")
			}
		})
	}
}

func TestCorrectClassification(t *testing.T) {
	discovered := []DiscoveredPlace{
		{ID: "d0", Visits: []Interval{iv(0, 60), iv(200, 260)}},
		{ID: "d1", Visits: []Interval{iv(100, 160)}},
	}
	truth := []TruthVisit{
		tv("home", 0, 60), tv("home", 200, 260),
		tv("work", 100, 160),
	}
	rep := Evaluate(discovered, truth, minOv)
	if rep.Correct != 2 || rep.Merged != 0 || rep.Divided != 0 || rep.Missed != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.PerVenue["home"] != Correct {
		t.Error("home not correct")
	}
	c, m, d := rep.Rates()
	if c != 1 || m != 0 || d != 0 {
		t.Errorf("rates = %v %v %v", c, m, d)
	}
}

func TestMergedClassification(t *testing.T) {
	// One discovered place covers both library and academic building —
	// the paper's canonical merge example.
	discovered := []DiscoveredPlace{
		{ID: "d0", Visits: []Interval{iv(0, 60), iv(100, 160)}},
	}
	truth := []TruthVisit{
		tv("library", 0, 60),
		tv("academic", 100, 160),
	}
	rep := Evaluate(discovered, truth, minOv)
	if rep.Merged != 2 || rep.Correct != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.PerVenue["library"] != Merged || rep.PerVenue["academic"] != Merged {
		t.Error("both venues should be merged")
	}
}

func TestDividedClassification(t *testing.T) {
	// Two discovered places both cover home: home is divided.
	discovered := []DiscoveredPlace{
		{ID: "d0", Visits: []Interval{iv(0, 60)}},
		{ID: "d1", Visits: []Interval{iv(200, 260)}},
	}
	truth := []TruthVisit{
		tv("home", 0, 60), tv("home", 200, 260),
	}
	rep := Evaluate(discovered, truth, minOv)
	if rep.Divided != 1 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestMissedClassification(t *testing.T) {
	truth := []TruthVisit{tv("gym", 0, 60)}
	rep := Evaluate(nil, truth, minOv)
	if rep.Missed != 1 || rep.Evaluable() != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if c, m, d := rep.Rates(); c != 0 || m != 0 || d != 0 {
		t.Error("rates of empty evaluable set must be zero")
	}
}

func TestMinOverlapThreshold(t *testing.T) {
	// Only 2 minutes of overlap: below the 5-minute attribution floor.
	discovered := []DiscoveredPlace{{ID: "d0", Visits: []Interval{iv(58, 90)}}}
	truth := []TruthVisit{tv("home", 0, 60)}
	rep := Evaluate(discovered, truth, minOv)
	if rep.PerVenue["home"] != Missed {
		t.Errorf("home = %v, want missed (overlap below floor)", rep.PerVenue["home"])
	}
}

func TestVisitAttributedToBestVenue(t *testing.T) {
	// Discovered visit overlaps home 10 min and work 40 min: goes to work.
	discovered := []DiscoveredPlace{{ID: "d0", Visits: []Interval{iv(50, 100)}}}
	truth := []TruthVisit{tv("home", 0, 60), tv("work", 60, 120)}
	rep := Evaluate(discovered, truth, minOv)
	if rep.PerVenue["work"] != Correct {
		t.Errorf("work = %v", rep.PerVenue["work"])
	}
	if rep.PerVenue["home"] != Missed {
		t.Errorf("home = %v, want missed", rep.PerVenue["home"])
	}
}

func TestMergeReports(t *testing.T) {
	r1 := Evaluate(
		[]DiscoveredPlace{{ID: "d0", Visits: []Interval{iv(0, 60)}}},
		[]TruthVisit{tv("u1/home", 0, 60)}, minOv)
	r2 := Evaluate(
		[]DiscoveredPlace{{ID: "d0", Visits: []Interval{iv(0, 60), iv(100, 160)}}},
		[]TruthVisit{tv("u2/a", 0, 60), tv("u2/b", 100, 160)}, minOv)
	merged := Merge(r1, r2, nil)
	if merged.Correct != 1 || merged.Merged != 2 {
		t.Fatalf("merged = %+v", merged)
	}
	if len(merged.PerVenue) != 3 {
		t.Errorf("venues = %d", len(merged.PerVenue))
	}
	if got := merged.SortedVenues(); len(got) != 3 || got[0] != "u1/home" {
		t.Errorf("SortedVenues = %v", got)
	}
}

func TestWriteReport(t *testing.T) {
	rep := &Report{Correct: 49, Merged: 9, Divided: 4, PerVenue: map[string]Outcome{}}
	var sb strings.Builder
	if err := rep.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"62", "79.03", "14.52", "6.45"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTimingError(t *testing.T) {
	discovered := []DiscoveredPlace{{ID: "d0", Visits: []Interval{iv(2, 58)}}}
	truth := []TruthVisit{tv("home", 0, 60)}
	arr, dep, n := TimingError(discovered, truth, minOv)
	if n != 1 {
		t.Fatalf("n = %d", n)
	}
	if arr != 2*time.Minute || dep != 2*time.Minute {
		t.Errorf("arr = %v, dep = %v", arr, dep)
	}
	// Empty case.
	if _, _, n := TimingError(nil, truth, minOv); n != 0 {
		t.Error("empty discovered should give n=0")
	}
}

func TestOutcomeString(t *testing.T) {
	for o, want := range map[Outcome]string{
		Correct: "correct", Merged: "merged", Divided: "divided", Missed: "missed", Outcome(0): "unknown",
	} {
		if got := o.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", o, got, want)
		}
	}
}
