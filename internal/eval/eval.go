// Package eval scores discovered places against ground truth using the
// methodology of the paper's deployment study (Section 4): each evaluable
// ground-truth place is classified as correctly discovered, merged (lumped
// into a discovered place together with other true places), or divided
// (split across several discovered places). The paper reports 79.03%
// correct, 14.52% merged, and 6.45% divided for GSM discovery augmented with
// opportunistic WiFi.
package eval

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Interval is a time span.
type Interval struct {
	Start time.Time
	End   time.Time
}

// overlap returns the length of the intersection of two intervals.
func overlap(a, b Interval) time.Duration {
	s := a.Start
	if b.Start.After(s) {
		s = b.Start
	}
	e := a.End
	if b.End.Before(e) {
		e = b.End
	}
	if e.Before(s) {
		return 0
	}
	return e.Sub(s)
}

// DiscoveredPlace is an algorithm output: an opaque ID plus visit intervals.
type DiscoveredPlace struct {
	ID     string
	Visits []Interval
}

// TruthVisit is one diary-logged ground-truth stay.
type TruthVisit struct {
	VenueID string
	Start   time.Time
	End     time.Time
}

// Outcome classifies one ground-truth venue.
type Outcome int

// Venue outcomes.
const (
	Correct Outcome = iota + 1
	Merged
	Divided
	Missed
)

// String returns the outcome name.
func (o Outcome) String() string {
	switch o {
	case Correct:
		return "correct"
	case Merged:
		return "merged"
	case Divided:
		return "divided"
	case Missed:
		return "missed"
	default:
		return "unknown"
	}
}

// Report summarizes an evaluation.
type Report struct {
	PerVenue map[string]Outcome

	Correct int
	Merged  int
	Divided int
	Missed  int
}

// Evaluable returns the number of venues that were discovered at all
// (correct + merged + divided) — the denominator the paper uses (its 62
// places "with departure information").
func (r *Report) Evaluable() int { return r.Correct + r.Merged + r.Divided }

// Rates returns the correct/merged/divided fractions over evaluable venues.
// All zeros when nothing was evaluable.
func (r *Report) Rates() (correct, merged, divided float64) {
	n := float64(r.Evaluable())
	if n == 0 {
		return 0, 0, 0
	}
	return float64(r.Correct) / n, float64(r.Merged) / n, float64(r.Divided) / n
}

// Evaluate attributes each discovered-place visit to the ground-truth venue
// it overlaps most (requiring at least minOverlap), then classifies every
// ground-truth venue:
//
//   - Correct: exactly one discovered place covers the venue, and that place
//     covers no other venue;
//   - Merged: the discovered place covering the venue also covers others;
//   - Divided: the venue's visits are spread over several discovered places;
//   - Missed: no discovered place covers the venue.
//
// Venues that never appear in truth are ignored; discovered places with no
// attributable visit contribute nothing.
func Evaluate(discovered []DiscoveredPlace, truth []TruthVisit, minOverlap time.Duration) *Report {
	// venue -> set of discovered place ids covering it
	venueToPlaces := map[string]map[string]bool{}
	// discovered id -> set of venues it covers
	placeToVenues := map[string]map[string]bool{}

	venues := map[string]bool{}
	for _, tv := range truth {
		venues[tv.VenueID] = true
	}

	for _, dp := range discovered {
		for _, visit := range dp.Visits {
			bestVenue := ""
			var bestOv time.Duration
			for _, tv := range truth {
				ov := overlap(visit, Interval{Start: tv.Start, End: tv.End})
				if ov > bestOv {
					bestOv, bestVenue = ov, tv.VenueID
				}
			}
			if bestVenue == "" || bestOv < minOverlap {
				continue
			}
			if venueToPlaces[bestVenue] == nil {
				venueToPlaces[bestVenue] = map[string]bool{}
			}
			venueToPlaces[bestVenue][dp.ID] = true
			if placeToVenues[dp.ID] == nil {
				placeToVenues[dp.ID] = map[string]bool{}
			}
			placeToVenues[dp.ID][bestVenue] = true
		}
	}

	rep := &Report{PerVenue: make(map[string]Outcome, len(venues))}
	for v := range venues {
		places := venueToPlaces[v]
		var outcome Outcome
		switch {
		case len(places) == 0:
			outcome = Missed
		case len(places) > 1:
			outcome = Divided
		default:
			var only string
			for id := range places {
				only = id
			}
			if len(placeToVenues[only]) > 1 {
				outcome = Merged
			} else {
				outcome = Correct
			}
		}
		rep.PerVenue[v] = outcome
		switch outcome {
		case Correct:
			rep.Correct++
		case Merged:
			rep.Merged++
		case Divided:
			rep.Divided++
		case Missed:
			rep.Missed++
		}
	}
	return rep
}

// Merge combines per-participant reports into a study-wide report (venue
// keys are expected to be globally unique, e.g. "user3/home").
func Merge(reports ...*Report) *Report {
	out := &Report{PerVenue: map[string]Outcome{}}
	for _, r := range reports {
		if r == nil {
			continue
		}
		for v, o := range r.PerVenue {
			out.PerVenue[v] = o
		}
		out.Correct += r.Correct
		out.Merged += r.Merged
		out.Divided += r.Divided
		out.Missed += r.Missed
	}
	return out
}

// Write renders the report in the style of the paper's Section 4 prose.
func (r *Report) Write(w io.Writer) error {
	c, m, d := r.Rates()
	_, err := fmt.Fprintf(w,
		"evaluable places: %d\ncorrect: %d (%.2f%%)\nmerged: %d (%.2f%%)\ndivided: %d (%.2f%%)\nmissed: %d\n",
		r.Evaluable(), r.Correct, c*100, r.Merged, m*100, r.Divided, d*100, r.Missed)
	return err
}

// TimingError reports the mean absolute arrival and departure error between
// discovered visits and the ground-truth visits they overlap. It quantifies
// how tightly arrival/departure tracking follows the diary.
func TimingError(discovered []DiscoveredPlace, truth []TruthVisit, minOverlap time.Duration) (arrive, depart time.Duration, n int) {
	var sumA, sumD time.Duration
	for _, dp := range discovered {
		for _, visit := range dp.Visits {
			var best *TruthVisit
			var bestOv time.Duration
			for i := range truth {
				ov := overlap(visit, Interval{Start: truth[i].Start, End: truth[i].End})
				if ov > bestOv {
					bestOv, best = ov, &truth[i]
				}
			}
			if best == nil || bestOv < minOverlap {
				continue
			}
			sumA += absDuration(visit.Start.Sub(best.Start))
			sumD += absDuration(visit.End.Sub(best.End))
			n++
		}
	}
	if n == 0 {
		return 0, 0, 0
	}
	return sumA / time.Duration(n), sumD / time.Duration(n), n
}

func absDuration(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}

// SortedVenues returns the report's venue keys sorted, for deterministic
// output.
func (r *Report) SortedVenues() []string {
	out := make([]string, 0, len(r.PerVenue))
	for v := range r.PerVenue {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
