package eval_test

import (
	"fmt"
	"time"

	"repro/internal/eval"
	"repro/internal/simclock"
)

func ExampleEvaluate() {
	t0 := simclock.Epoch
	// One discovered place covers both the library and the adjacent
	// academic building — the paper's canonical merge.
	discovered := []eval.DiscoveredPlace{{
		ID: "d0",
		Visits: []eval.Interval{
			{Start: t0, End: t0.Add(time.Hour)},
			{Start: t0.Add(2 * time.Hour), End: t0.Add(3 * time.Hour)},
		},
	}}
	truth := []eval.TruthVisit{
		{VenueID: "library", Start: t0, End: t0.Add(time.Hour)},
		{VenueID: "academic", Start: t0.Add(2 * time.Hour), End: t0.Add(3 * time.Hour)},
	}
	rep := eval.Evaluate(discovered, truth, 5*time.Minute)
	fmt.Printf("library: %s\n", rep.PerVenue["library"])
	fmt.Printf("academic: %s\n", rep.PerVenue["academic"])
	// Output:
	// library: merged
	// academic: merged
}
