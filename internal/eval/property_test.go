package eval

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simclock"
)

// genScenario builds a random but well-formed discovery scenario from a
// seed: some venues with visits, and discovered places derived from them
// with random noise (merging, splitting, missing).
func genScenario(seed int64) (discovered []DiscoveredPlace, truth []TruthVisit) {
	r := rand.New(rand.NewSource(seed))
	nVenues := 1 + r.Intn(8)
	t0 := simclock.Epoch

	cursor := t0
	for v := 0; v < nVenues; v++ {
		venue := string(rune('A' + v))
		visits := 1 + r.Intn(4)
		for k := 0; k < visits; k++ {
			start := cursor.Add(time.Duration(r.Intn(120)) * time.Minute)
			end := start.Add(time.Duration(20+r.Intn(120)) * time.Minute)
			truth = append(truth, TruthVisit{VenueID: venue, Start: start, End: end})
			cursor = end.Add(time.Duration(10+r.Intn(60)) * time.Minute)
		}
	}

	// Discovered places: each venue is (a) correct, (b) split into 2, (c)
	// merged with the next venue, or (d) missed.
	mode := make([]int, nVenues)
	for v := range mode {
		mode[v] = r.Intn(4)
	}
	idx := 0
	byVenue := map[string][]Interval{}
	for _, tv := range truth {
		byVenue[tv.VenueID] = append(byVenue[tv.VenueID], Interval{Start: tv.Start, End: tv.End})
	}
	for v := 0; v < nVenues; v++ {
		venue := string(rune('A' + v))
		ivs := byVenue[venue]
		switch mode[v] {
		case 0: // correct
			discovered = append(discovered, DiscoveredPlace{ID: id(&idx), Visits: ivs})
		case 1: // divided
			if len(ivs) >= 2 {
				discovered = append(discovered,
					DiscoveredPlace{ID: id(&idx), Visits: ivs[:1]},
					DiscoveredPlace{ID: id(&idx), Visits: ivs[1:]})
			} else {
				discovered = append(discovered, DiscoveredPlace{ID: id(&idx), Visits: ivs})
			}
		case 2: // merged with next venue (if any)
			next := string(rune('A' + (v+1)%nVenues))
			merged := append(append([]Interval{}, ivs...), byVenue[next]...)
			discovered = append(discovered, DiscoveredPlace{ID: id(&idx), Visits: merged})
		case 3: // missed
		}
	}
	return discovered, truth
}

func id(i *int) string {
	*i++
	return "d" + string(rune('0'+*i%10)) + string(rune('a'+*i/10))
}

func TestEvaluatePartitionInvariant(t *testing.T) {
	// Every truth venue receives exactly one outcome, and the counters sum
	// to the venue count — for any scenario.
	f := func(seed int64) bool {
		discovered, truth := genScenario(seed)
		rep := Evaluate(discovered, truth, 5*time.Minute)

		venues := map[string]bool{}
		for _, tv := range truth {
			venues[tv.VenueID] = true
		}
		if len(rep.PerVenue) != len(venues) {
			return false
		}
		return rep.Correct+rep.Merged+rep.Divided+rep.Missed == len(venues)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEvaluateRatesSumToOne(t *testing.T) {
	f := func(seed int64) bool {
		discovered, truth := genScenario(seed)
		rep := Evaluate(discovered, truth, 5*time.Minute)
		if rep.Evaluable() == 0 {
			c, m, d := rep.Rates()
			return c == 0 && m == 0 && d == 0
		}
		c, m, d := rep.Rates()
		sum := c + m + d
		return sum > 0.999999 && sum < 1.000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEvaluateEmptyDiscoveredAllMissed(t *testing.T) {
	f := func(seed int64) bool {
		_, truth := genScenario(seed)
		rep := Evaluate(nil, truth, 5*time.Minute)
		return rep.Correct == 0 && rep.Merged == 0 && rep.Divided == 0 &&
			rep.Missed == len(rep.PerVenue)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMergeIsAdditive(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		dA, tA := genScenario(seedA)
		dB, tB := genScenario(seedB)
		rA := Evaluate(dA, tA, 5*time.Minute)
		rB := Evaluate(dB, tB, 5*time.Minute)
		// Prefix venue keys to keep them distinct.
		pa := prefix(rA, "a/")
		pb := prefix(rB, "b/")
		m := Merge(pa, pb)
		return m.Correct == rA.Correct+rB.Correct &&
			m.Merged == rA.Merged+rB.Merged &&
			m.Divided == rA.Divided+rB.Divided &&
			m.Missed == rA.Missed+rB.Missed &&
			len(m.PerVenue) == len(rA.PerVenue)+len(rB.PerVenue)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func prefix(r *Report, p string) *Report {
	out := &Report{
		PerVenue: map[string]Outcome{},
		Correct:  r.Correct, Merged: r.Merged, Divided: r.Divided, Missed: r.Missed,
	}
	for v, o := range r.PerVenue {
		out.PerVenue[p+v] = o
	}
	return out
}
