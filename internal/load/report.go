package load

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"
)

// ReportSchema versions the report shape; the CI load-smoke job fails when
// a report stops matching the schema it expects.
const ReportSchema = 1

// Report is one pmware-load run. It is split along the determinism
// boundary:
//
//   - Workload is a pure function of (seed, spec): two runs with the same
//     inputs must produce byte-identical Workload sections (the E2E test
//     compares their JSON encodings), whatever the machine does.
//   - Measured is what the wall clock saw: latency quantiles, achieved
//     throughput, the saturation search. It is honest, not reproducible.
type Report struct {
	Schema   int            `json:"schema"`
	Workload WorkloadReport `json:"workload"`
	Measured MeasuredReport `json:"measured"`
}

// WorkloadReport is the deterministic half: what load was offered.
type WorkloadReport struct {
	SpecName string `json:"spec_name"`
	// SpecHash identifies the exact spec (canonical-JSON FNV-64a, hex).
	SpecHash string `json:"spec_hash"`
	Seed     int64  `json:"seed"`
	Users    int    `json:"users"`
	Mode     string `json:"mode"`
	// OfferedRPS is the open-mode arrival rate (0 in closed mode, where
	// offered load is Concurrency clients × think time).
	OfferedRPS  float64 `json:"offered_rps,omitempty"`
	Concurrency int     `json:"concurrency"`
	// VirtualDurationSec is the main schedule's virtual span.
	VirtualDurationSec float64 `json:"virtual_duration_sec"`
	// Requests and RouteCounts describe the main schedule.
	Requests    uint64            `json:"requests"`
	RouteCounts map[string]uint64 `json:"route_counts"`
	// TraceHash is the FNV-64a of the canonical request trace (hex) — the
	// byte-for-byte reproducibility stamp.
	TraceHash string `json:"trace_hash"`
	// Wire is the canonical name of the client codec the run drove
	// ("json" or "bin") — deterministic because it comes from the spec.
	Wire string `json:"wire"`
}

// MeasuredReport is the wall-clock half.
type MeasuredReport struct {
	RecordedAt string   `json:"recorded_at"`
	Host       HostInfo `json:"host"`
	// Main is the main phase's execution.
	Main StepResult `json:"main"`
	// Ramp holds the saturation-search steps, in ramp order. The number of
	// steps depends on measured performance, which is why ramp traces are
	// not part of the deterministic Workload section (each step's schedule
	// is still derivable from seed+spec+step index).
	Ramp []RampStep `json:"ramp,omitempty"`
	// SaturationRPS is the highest offered rate whose step met the SLO
	// (0 when the first step already failed or no ramp ran).
	SaturationRPS  float64 `json:"saturation_rps,omitempty"`
	SaturationNote string  `json:"saturation_note,omitempty"`
	// Events is the SSE subscriber side-channel, present when the spec ran
	// one (it spans the main phase only).
	Events *EventsReport `json:"events,omitempty"`
	// Wire sums the clients' wire traffic over the whole run (main phase
	// plus any ramp steps). Two runs of the same spec differing only in
	// the wire knob give the codec's byte delta under identical load.
	Wire *WireReport `json:"wire,omitempty"`
	// Cluster sums the clients' ring-routing activity, present when the
	// run drove a multi-node cluster (RunnerConfig.Targets).
	Cluster *ClusterReport `json:"cluster,omitempty"`
}

// WireReport is the client-side wire accounting: which codec the harness
// spoke and how many body bytes crossed the wire in each direction, summed
// across every simulated user's client. JSONFallbacks counts clients a 415
// downgraded to JSON — nonzero against a binary-capable server means the
// run did not measure the codec it claims.
type WireReport struct {
	Codec         string `json:"codec"`
	BytesSent     uint64 `json:"bytes_sent"`
	BytesReceived uint64 `json:"bytes_received"`
	JSONFallbacks uint64 `json:"json_fallbacks,omitempty"`
}

// ClusterReport is the client-side routing accounting for a cluster run:
// how many candidate failovers the clients performed (connection errors and
// 5xx answers) and how many 421 redirects they followed to the owning node.
type ClusterReport struct {
	Targets   int    `json:"targets"`
	Failovers uint64 `json:"failovers"`
	Redirects uint64 `json:"redirects"`
}

// EventsReport is the delivery half of a run with subscribers: what the
// spec's SSE consumers received and how fast, measured hub-publish-stamp to
// client receive and merged across subscribers.
type EventsReport struct {
	Subscribers int    `json:"subscribers"`
	Delivered   uint64 `json:"delivered"`
	// Evictions counts slow-consumer closes the subscribers resumed from;
	// Resets counts replay-ring gap signals (events lost to the consumer).
	Evictions uint64 `json:"evictions,omitempty"`
	Resets    uint64 `json:"resets,omitempty"`
	// Errors counts subscriptions that died mid-phase (reconnect budget
	// exhausted) instead of being closed by the harness.
	Errors int `json:"errors,omitempty"`

	DeliveryMeanUS float64 `json:"delivery_mean_us"`
	DeliveryP50US  float64 `json:"delivery_p50_us"`
	DeliveryP99US  float64 `json:"delivery_p99_us"`
	DeliveryMaxUS  int64   `json:"delivery_max_us,omitempty"`
}

// HostInfo stamps where the measurement ran.
type HostInfo struct {
	GoVersion string `json:"go_version"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	CPUs      int    `json:"cpus"`
}

// CurrentHost describes the running process's host.
func CurrentHost() HostInfo {
	return HostInfo{
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
	}
}

// RampStep is one saturation-search step.
type RampStep struct {
	OfferedRPS float64    `json:"offered_rps"`
	TraceHash  string     `json:"trace_hash"`
	Result     StepResult `json:"result"`
	Pass       bool       `json:"pass"`
	FailReason string     `json:"fail_reason,omitempty"`
}

// StepResult is the measured outcome of executing one schedule.
type StepResult struct {
	WallSec     float64 `json:"wall_sec"`
	Requests    uint64  `json:"requests"`
	AchievedRPS float64 `json:"achieved_rps"`

	OK              uint64 `json:"ok"`
	Backpressure429 uint64 `json:"backpressure_429"`
	ClientErr4xx    uint64 `json:"client_err_4xx"`
	ServerErr5xx    uint64 `json:"server_err_5xx"`
	Transport       uint64 `json:"transport_err"`
	// ErrorRate is (5xx + transport) / requests — the SLO's error class.
	ErrorRate float64 `json:"error_rate"`
	// Rejected429Rate is backpressure / requests.
	Rejected429Rate float64 `json:"rejected_429_rate"`

	Routes []RouteStats `json:"routes"`
}

// RouteStats is one route's per-route SLO line.
type RouteStats struct {
	Route           string  `json:"route"`
	Requests        uint64  `json:"requests"`
	OK              uint64  `json:"ok"`
	Backpressure429 uint64  `json:"backpressure_429,omitempty"`
	ClientErr4xx    uint64  `json:"client_err_4xx,omitempty"`
	ServerErr5xx    uint64  `json:"server_err_5xx,omitempty"`
	Transport       uint64  `json:"transport_err,omitempty"`
	MeanUS          float64 `json:"mean_us"`
	P50US           float64 `json:"p50_us"`
	P99US           float64 `json:"p99_us"`
	P999US          float64 `json:"p999_us"`
	MaxUS           int64   `json:"max_us"`
}

// BuildStepResult renders a merged recorder snapshot into a StepResult.
func BuildStepResult(snap RecorderSnapshot, wall time.Duration) StepResult {
	res := StepResult{WallSec: wall.Seconds()}
	for _, route := range snap.Routes() {
		s := snap[route]
		rs := RouteStats{
			Route:           route,
			Requests:        s.Requests(),
			OK:              s.Outcomes[OutcomeOK],
			Backpressure429: s.Outcomes[Outcome429],
			ClientErr4xx:    s.Outcomes[Outcome4xx],
			ServerErr5xx:    s.Outcomes[Outcome5xx],
			Transport:       s.Outcomes[OutcomeTransport],
			MeanUS:          s.Latency.Mean(),
			P50US:           s.Latency.Quantile(0.50),
			P99US:           s.Latency.Quantile(0.99),
			P999US:          s.Latency.Quantile(0.999),
		}
		if s.Latency.Count > 0 {
			rs.MaxUS = s.Latency.Max
		}
		res.Routes = append(res.Routes, rs)
		res.Requests += rs.Requests
		res.OK += rs.OK
		res.Backpressure429 += rs.Backpressure429
		res.ClientErr4xx += rs.ClientErr4xx
		res.ServerErr5xx += rs.ServerErr5xx
		res.Transport += rs.Transport
	}
	if res.WallSec > 0 {
		res.AchievedRPS = float64(res.Requests) / res.WallSec
	}
	if res.Requests > 0 {
		res.ErrorRate = float64(res.ServerErr5xx+res.Transport) / float64(res.Requests)
		res.Rejected429Rate = float64(res.Backpressure429) / float64(res.Requests)
	}
	return res
}

// Check validates a report's internal consistency — the schema gate the E2E
// test and the CI job run on every produced report.
func (r *Report) Check() error {
	if r.Schema != ReportSchema {
		return fmt.Errorf("report: schema %d, want %d", r.Schema, ReportSchema)
	}
	w := &r.Workload
	if w.SpecHash == "" || w.TraceHash == "" {
		return fmt.Errorf("report: missing spec/trace hash")
	}
	if w.Users <= 0 || w.Requests == 0 {
		return fmt.Errorf("report: empty workload")
	}
	var sum uint64
	for route, n := range w.RouteCounts {
		if ServerRoute(route) == "" {
			return fmt.Errorf("report: unknown route %q in workload", route)
		}
		sum += n
	}
	if sum != w.Requests {
		return fmt.Errorf("report: route counts sum %d != requests %d", sum, w.Requests)
	}
	if err := checkStep(&r.Measured.Main, "main"); err != nil {
		return err
	}
	if r.Measured.Main.Requests != w.Requests {
		return fmt.Errorf("report: main executed %d of %d scheduled requests", r.Measured.Main.Requests, w.Requests)
	}
	for route, n := range w.RouteCounts {
		var got uint64
		for _, rs := range r.Measured.Main.Routes {
			if rs.Route == route {
				got = rs.Requests
			}
		}
		if got != n {
			return fmt.Errorf("report: route %s executed %d of %d scheduled", route, got, n)
		}
	}
	for i := range r.Measured.Ramp {
		if err := checkStep(&r.Measured.Ramp[i].Result, fmt.Sprintf("ramp[%d]", i)); err != nil {
			return err
		}
	}
	if mw := r.Measured.Wire; mw != nil {
		if r.Workload.Wire != "" && mw.Codec != r.Workload.Wire {
			return fmt.Errorf("report: measured wire codec %q != workload %q", mw.Codec, r.Workload.Wire)
		}
		if r.Measured.Main.Requests > 0 && mw.BytesSent == 0 {
			return fmt.Errorf("report: %d requests executed but zero wire bytes sent", r.Measured.Main.Requests)
		}
	}
	if ev := r.Measured.Events; ev != nil {
		if ev.Subscribers <= 0 {
			return fmt.Errorf("report: events section with %d subscribers", ev.Subscribers)
		}
		if ev.Delivered > 0 && !(ev.DeliveryP50US <= ev.DeliveryP99US && ev.DeliveryP99US <= float64(ev.DeliveryMaxUS)) {
			return fmt.Errorf("report: delivery quantiles out of order (p50=%v p99=%v max=%v)",
				ev.DeliveryP50US, ev.DeliveryP99US, ev.DeliveryMaxUS)
		}
	}
	return nil
}

func checkStep(s *StepResult, name string) error {
	var sum uint64
	for i, rs := range s.Routes {
		if i > 0 && rs.Route <= s.Routes[i-1].Route {
			return fmt.Errorf("report: %s routes not sorted at %q", name, rs.Route)
		}
		if rs.OK+rs.Backpressure429+rs.ClientErr4xx+rs.ServerErr5xx+rs.Transport != rs.Requests {
			return fmt.Errorf("report: %s route %s outcomes do not sum to requests", name, rs.Route)
		}
		if rs.Requests > 0 && !(rs.P50US <= rs.P99US && rs.P99US <= rs.P999US && rs.P999US <= float64(rs.MaxUS)) {
			return fmt.Errorf("report: %s route %s quantiles out of order (p50=%v p99=%v p999=%v max=%v)",
				name, rs.Route, rs.P50US, rs.P99US, rs.P999US, rs.MaxUS)
		}
		sum += rs.Requests
	}
	if sum != s.Requests {
		return fmt.Errorf("report: %s per-route requests sum %d != total %d", name, sum, s.Requests)
	}
	return nil
}

// Trajectory is the BENCH_load.json shape: the suite header plus one report
// per recorded run, oldest first.
type Trajectory struct {
	Suite string    `json:"suite"`
	Runs  []*Report `json:"runs"`
}

// trajectorySuite names the file's suite header.
const trajectorySuite = "pmware-load SLO trajectory"

// AppendTrajectory appends the report to the trajectory file, creating it
// if missing. The write is atomic (temp file + rename) so a crashed run
// cannot corrupt the history.
func AppendTrajectory(path string, r *Report) error {
	t := &Trajectory{Suite: trajectorySuite}
	raw, err := os.ReadFile(path)
	switch {
	case err == nil:
		if err := json.Unmarshal(raw, t); err != nil {
			return fmt.Errorf("load: existing trajectory %s is not parseable (refusing to overwrite): %w", path, err)
		}
	case os.IsNotExist(err):
	default:
		return fmt.Errorf("load: read trajectory: %w", err)
	}
	t.Runs = append(t.Runs, r)

	out, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return fmt.Errorf("load: marshal trajectory: %w", err)
	}
	out = append(out, '\n')
	tmp, err := os.CreateTemp(filepath.Dir(path), ".bench_load-*")
	if err != nil {
		return fmt.Errorf("load: temp trajectory: %w", err)
	}
	if _, err := tmp.Write(out); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("load: write trajectory: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("load: close trajectory: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("load: replace trajectory: %w", err)
	}
	return nil
}
