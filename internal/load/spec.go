package load

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sort"

	"repro/internal/cloud"
)

// Harness route names. These are the units of the spec's route mix and of
// the SLO report; ServerRoute maps each to the label the server's
// pci_http_requests_total family uses, which is what lets the E2E test pin
// client-side counts to server-side metric deltas.
const (
	// RouteRegister obtains a device token. The schedule generator forces
	// every user's first request to be a register, whatever the mix says.
	RouteRegister = "register"
	// RouteDiscover uploads the user's GSM trace (delta sync after the
	// first call) and runs place discovery.
	RouteDiscover = "discover"
	// RouteObsStream uploads the user's not-yet-acknowledged observations
	// over the streaming ingest endpoint (chunked batches, online event
	// detection server-side). Cursor-aware: later calls stream only what
	// discover or earlier streams have not already synced.
	RouteObsStream = "obs_stream"
	// RouteProfilePut syncs one day's mobility profile.
	RouteProfilePut = "profile_put"
	// RoutePlacesGet reads the user's discovered places.
	RoutePlacesGet = "places_get"
	// RoutePopular reads the k-anonymous popular-places aggregate.
	RoutePopular = "popular"
	// RouteProfileRange reads a date range of profiles.
	RouteProfileRange = "profile_range"
	// RoutePredictArrival asks for the typical arrival time at a place the
	// user has profiled. Gated behind the user's first profile_put.
	RoutePredictArrival = "predict_arrival"
	// RouteStatsDwell reads dwell statistics for a profiled place. Gated.
	RouteStatsDwell = "stats_dwell"
	// RouteStatsFrequency reads visit frequency for a profiled place. Gated.
	RouteStatsFrequency = "stats_frequency"
)

// AllRoutes lists every route the harness can drive, in report order.
func AllRoutes() []string {
	return []string{
		RouteRegister, RouteDiscover, RouteObsStream, RouteProfilePut,
		RoutePlacesGet, RoutePopular, RouteProfileRange, RoutePredictArrival,
		RouteStatsDwell, RouteStatsFrequency,
	}
}

// ServerRoute returns the server-side instrumentation label for a harness
// route ("" for unknown routes).
func ServerRoute(route string) string {
	switch route {
	case RouteRegister:
		return "register"
	case RouteDiscover:
		return "places_discover"
	case RouteObsStream:
		return "obs_stream"
	case RouteProfilePut:
		return "profile_put"
	case RoutePlacesGet:
		return "places_get"
	case RoutePopular:
		return "places_popular"
	case RouteProfileRange:
		return "profile_range"
	case RoutePredictArrival:
		return "predict_arrival"
	case RouteStatsDwell:
		return "stats_dwell"
	case RouteStatsFrequency:
		return "stats_frequency"
	}
	return ""
}

// analyticsGated reports whether a route reads per-place analytics that 404
// until the user has synced at least one profile.
func analyticsGated(route string) bool {
	switch route {
	case RoutePredictArrival, RouteStatsDwell, RouteStatsFrequency:
		return true
	}
	return false
}

// Spec is the workload description cmd/pmware-load loads from -spec. A
// (seed, spec) pair fully determines the request sequence; everything that
// shapes the workload lives here so the spec file plus one integer
// reproduces a run.
type Spec struct {
	// Name labels the spec in reports.
	Name string `json:"name"`
	// Users is the population size. Users are synthesized lazily: a run
	// that touches 3k of 1M users pays for 3k.
	Users int `json:"users"`
	// Mode is "open" (arrivals paced by RatePerSec regardless of
	// completions — the saturation-honest model) or "closed" (Concurrency
	// clients issuing request, think, request, ...).
	Mode string `json:"mode"`
	// RatePerSec is the offered Poisson arrival rate (open mode).
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Concurrency is the number of executor workers; in closed mode it is
	// also the number of think-looping clients.
	Concurrency int `json:"concurrency"`
	// ThinkTimeMS is the mean exponential think time between one closed
	// client's requests.
	ThinkTimeMS int `json:"think_time_ms,omitempty"`
	// DurationSec is the virtual duration of the main phase's schedule.
	DurationSec int `json:"duration_sec"`
	// ZipfS skews user popularity (P(user k) ∝ 1/(k+1)^s). Must be > 1;
	// 0 means uniform.
	ZipfS float64 `json:"zipf_s,omitempty"`
	// RouteMix weights the non-register routes. Weights are relative;
	// unknown route names are rejected.
	RouteMix map[string]float64 `json:"route_mix"`
	// Wire selects the client codec every harness client speaks: "json"
	// (the default, and what the empty string means) or "bin"/"binary" for
	// the negotiated application/x-pmware-bin wire format (DESIGN.md §14).
	// Identical specs differing only in wire are the codec A/B comparison:
	// same schedule, same payloads, different encoding.
	Wire string `json:"wire,omitempty"`

	// World/population shape.

	// WorldSeed generates the shared city (towers, public venues).
	WorldSeed int64 `json:"world_seed"`
	// ExtentMeters is the city's half-width.
	ExtentMeters float64 `json:"extent_meters"`
	// HauntsPerUser is how many public venues each user frequents.
	HauntsPerUser int `json:"haunts_per_user"`
	// TraceDays is how many days of itinerary each user's trace and
	// profiles cover.
	TraceDays int `json:"trace_days"`
	// ObsIntervalSec is the GSM sampling period within those days.
	ObsIntervalSec int `json:"obs_interval_sec"`

	// Subscribers, when set, rides K concurrent SSE event subscribers along
	// the main phase and reports publish-to-receive delivery latency.
	Subscribers *SubscribersSpec `json:"subscribers,omitempty"`

	// Ramp, when set, runs a saturation search after the main phase.
	Ramp *RampSpec `json:"ramp,omitempty"`
	// SLO bounds what counts as a passing ramp step.
	SLO *SLOSpec `json:"slo,omitempty"`
}

// SubscribersSpec describes the SSE subscriber side-channel: Count
// subscribers attach before the main phase starts (subscriber i as user
// i mod Users) and detach after it ends. They receive the events the
// obs_stream route's ingest publishes for their user; each event's
// publish-to-receive latency feeds the report's delivery quantiles.
type SubscribersSpec struct {
	// Count is how many concurrent subscribers to run.
	Count int `json:"count"`
	// Buffer overrides each subscriber's client-side channel buffer
	// (0 = the client default).
	Buffer int `json:"buffer,omitempty"`
}

// RampSpec describes the saturation search: open-loop steps at
// geometrically increasing offered rates until a step misses the SLO.
type RampSpec struct {
	StartRPS        float64 `json:"start_rps"`
	MaxRPS          float64 `json:"max_rps"`
	Factor          float64 `json:"factor"`
	StepDurationSec int     `json:"step_duration_sec"`
}

// SLOSpec is the pass criterion for a ramp step.
type SLOSpec struct {
	// MinAchievedFrac is the fraction of the offered rate the step must
	// actually sustain (default 0.95).
	MinAchievedFrac float64 `json:"min_achieved_frac,omitempty"`
	// MaxErrorRate bounds (5xx + transport errors) / requests
	// (default 0.01). 429s are backpressure, not errors, and are reported
	// separately.
	MaxErrorRate float64 `json:"max_error_rate,omitempty"`
	// MaxP99MS, when > 0, additionally bounds the all-route p99.
	MaxP99MS float64 `json:"max_p99_ms,omitempty"`
}

// DefaultSLO returns the ramp pass criterion used when the spec omits one.
func DefaultSLO() SLOSpec {
	return SLOSpec{MinAchievedFrac: 0.95, MaxErrorRate: 0.01}
}

// DefaultSpec returns a small, fully populated spec — the starting point
// for writing spec files (cmd/pmware-load -print-spec emits it).
func DefaultSpec() *Spec {
	return &Spec{
		Name:        "default",
		Users:       1000,
		Mode:        "closed",
		Concurrency: 8,
		ThinkTimeMS: 250,
		DurationSec: 30,
		RouteMix: map[string]float64{
			RouteDiscover:       0.15,
			RouteProfilePut:     0.25,
			RoutePlacesGet:      0.20,
			RoutePopular:        0.10,
			RouteProfileRange:   0.05,
			RoutePredictArrival: 0.10,
			RouteStatsDwell:     0.05,
			RouteStatsFrequency: 0.10,
		},
		WorldSeed:      2014,
		ExtentMeters:   2600,
		HauntsPerUser:  7,
		TraceDays:      1,
		ObsIntervalSec: 300,
	}
}

// LoadSpec reads and validates a spec file.
func LoadSpec(path string) (*Spec, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("load: read spec: %w", err)
	}
	var s Spec
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("load: parse spec %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("load: spec %s: %w", path, err)
	}
	return &s, nil
}

// Validate checks the spec is runnable.
func (s *Spec) Validate() error {
	if s.Users <= 0 {
		return fmt.Errorf("users must be positive")
	}
	if s.DurationSec <= 0 {
		return fmt.Errorf("duration_sec must be positive")
	}
	switch s.Mode {
	case "open":
		if s.RatePerSec <= 0 {
			return fmt.Errorf("open mode needs rate_per_sec > 0")
		}
	case "closed":
		if s.ThinkTimeMS <= 0 {
			return fmt.Errorf("closed mode needs think_time_ms > 0")
		}
	default:
		return fmt.Errorf("mode must be \"open\" or \"closed\", got %q", s.Mode)
	}
	if s.Concurrency <= 0 {
		return fmt.Errorf("concurrency must be positive")
	}
	if s.ZipfS != 0 && s.ZipfS <= 1 {
		return fmt.Errorf("zipf_s must be > 1 (or 0 for uniform)")
	}
	if len(s.RouteMix) == 0 {
		return fmt.Errorf("route_mix must not be empty")
	}
	total := 0.0
	for route, w := range s.RouteMix {
		if ServerRoute(route) == "" {
			return fmt.Errorf("route_mix: unknown route %q", route)
		}
		if route == RouteRegister {
			return fmt.Errorf("route_mix: register is implicit (every user's first request); do not weight it")
		}
		if w < 0 {
			return fmt.Errorf("route_mix: negative weight for %q", route)
		}
		total += w
	}
	if total <= 0 {
		return fmt.Errorf("route_mix: weights sum to zero")
	}
	if _, err := cloud.ParseWireCodec(s.Wire); err != nil {
		return fmt.Errorf("wire: must be \"json\" or \"bin\", got %q", s.Wire)
	}
	if s.ExtentMeters <= 0 {
		return fmt.Errorf("extent_meters must be positive")
	}
	if s.HauntsPerUser < 0 {
		return fmt.Errorf("haunts_per_user must not be negative")
	}
	if s.TraceDays <= 0 {
		return fmt.Errorf("trace_days must be positive")
	}
	if s.ObsIntervalSec <= 0 {
		return fmt.Errorf("obs_interval_sec must be positive")
	}
	if sub := s.Subscribers; sub != nil {
		if sub.Count <= 0 {
			return fmt.Errorf("subscribers: count must be positive")
		}
		if sub.Buffer < 0 {
			return fmt.Errorf("subscribers: buffer must not be negative")
		}
	}
	if r := s.Ramp; r != nil {
		if r.StartRPS <= 0 || r.MaxRPS < r.StartRPS {
			return fmt.Errorf("ramp: need 0 < start_rps <= max_rps")
		}
		if r.Factor <= 1 {
			return fmt.Errorf("ramp: factor must be > 1")
		}
		if r.StepDurationSec <= 0 {
			return fmt.Errorf("ramp: step_duration_sec must be positive")
		}
	}
	if s.SLO != nil {
		if s.SLO.MinAchievedFrac < 0 || s.SLO.MinAchievedFrac > 1 {
			return fmt.Errorf("slo: min_achieved_frac must be in [0,1]")
		}
		if s.SLO.MaxErrorRate < 0 || s.SLO.MaxErrorRate > 1 {
			return fmt.Errorf("slo: max_error_rate must be in [0,1]")
		}
	}
	return nil
}

// slo returns the effective SLO with defaults applied.
func (s *Spec) slo() SLOSpec {
	out := DefaultSLO()
	if s.SLO != nil {
		if s.SLO.MinAchievedFrac > 0 {
			out.MinAchievedFrac = s.SLO.MinAchievedFrac
		}
		if s.SLO.MaxErrorRate > 0 {
			out.MaxErrorRate = s.SLO.MaxErrorRate
		}
		out.MaxP99MS = s.SLO.MaxP99MS
	}
	return out
}

// mixEntries returns the route mix as a deterministically ordered list with
// cumulative weights, independent of map iteration order.
func (s *Spec) mixEntries() (routes []string, cum []float64) {
	routes = make([]string, 0, len(s.RouteMix))
	for r, w := range s.RouteMix {
		if w > 0 {
			routes = append(routes, r)
		}
	}
	sort.Strings(routes)
	cum = make([]float64, len(routes))
	total := 0.0
	for i, r := range routes {
		total += s.RouteMix[r]
		cum[i] = total
	}
	return routes, cum
}

// Hash returns the FNV-64a of the spec's canonical JSON encoding —
// the identity stamped into traces and reports so a trajectory entry can be
// matched back to the exact workload that produced it.
func (s *Spec) Hash() uint64 {
	// encoding/json sorts map keys, so Marshal of the struct is canonical.
	raw, err := json.Marshal(s)
	if err != nil {
		// A Spec is plain data; Marshal cannot fail on one.
		panic(fmt.Sprintf("load: marshal spec: %v", err))
	}
	h := fnv.New64a()
	_, _ = h.Write(raw)
	return h.Sum64()
}
