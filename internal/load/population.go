package load

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/mobility"
	"repro/internal/profile"
	"repro/internal/simclock"
	"repro/internal/study"
	"repro/internal/trace"
	"repro/internal/world"
)

// minStay is the paper's place-visit threshold; visits at least this long
// become profile entries.
const minStay = 10 * time.Minute

// SimUser is one synthesized user's complete request payload set: identity,
// GSM trace for discovery uploads, and day profiles for profile sync and the
// analytics reads they unlock.
type SimUser struct {
	Idx   int
	ID    string
	IMEI  string
	Email string

	// Trace is the user's GSM observation stream over the spec's TraceDays,
	// sampled every ObsIntervalSec.
	Trace []trace.GSMObservation
	// Profiles holds one validated DayProfile per simulated day.
	Profiles []*profile.DayProfile
	// QueryPlaces are place IDs from the user's first day profile — the set
	// that is guaranteed query-safe for per-place analytics once the first
	// profile_put has happened.
	QueryPlaces []string
}

// UserIdentity returns user i's stable identity without synthesizing
// anything — the executor needs (imei, email) to build a client before the
// user's payloads are ever touched.
func UserIdentity(i int) (id, imei, email string) {
	id = fmt.Sprintf("lu%07d", i)
	return id, "imei-" + id, id + "@load.invalid"
}

// Population synthesizes SimUsers lazily from a Key. A million-user
// population costs nothing until users are requested; each user's synthesis
// draws only from that user's derived streams, so the result is identical
// whether the user is generated first, last, concurrently with others, or
// re-generated after cache eviction (TestPopulationOrderIndependent).
//
// The shared world is generated once, is never mutated afterwards (per-user
// home/work venues are standalone), and is safe for concurrent readers.
type Population struct {
	spec *Spec
	key  Key

	world     *world.World
	public    []*world.Venue
	schedCfg  mobility.ScheduleConfig
	sensorCfg trace.Config

	mu      sync.Mutex
	cache   map[int]*SimUser
	fifo    []int
	maxKeep int
}

// defaultPayloadCache bounds how many synthesized users stay resident. The
// per-user payload is a few hundred KB; 4096 users is a few hundred MB worst
// case while letting hot users (Zipf head) stay cached.
const defaultPayloadCache = 4096

// NewPopulation builds the lazy population for a spec. The world derives
// from spec.WorldSeed/ExtentMeters exactly the way cmd/pmware-cloud builds
// its cell database, so an external server booted with matching -world-seed
// and -extent geolocates the traces this population produces.
func NewPopulation(spec *Spec, key Key) *Population {
	wc := world.DefaultConfig()
	wc.ExtentMeters = spec.ExtentMeters
	w := world.Generate(wc, rand.New(rand.NewSource(spec.WorldSeed)))
	return &Population{
		spec:      spec,
		key:       key,
		world:     w,
		public:    append([]*world.Venue(nil), w.Venues...),
		schedCfg:  mobility.DefaultScheduleConfig(),
		sensorCfg: trace.DefaultConfig(),
		cache:     make(map[int]*SimUser),
		maxKeep:   defaultPayloadCache,
	}
}

// World returns the shared city (for building a matching cell database when
// self-booting a server).
func (p *Population) World() *world.World { return p.world }

// User returns user i, synthesizing it on demand. Safe for concurrent use;
// concurrent requests for the same uncached user may synthesize it twice,
// which wastes work but cannot diverge (synthesis is a pure function of the
// key).
func (p *Population) User(i int) (*SimUser, error) {
	p.mu.Lock()
	if u, ok := p.cache[i]; ok {
		p.mu.Unlock()
		return u, nil
	}
	p.mu.Unlock()

	u, err := p.synthesize(i)
	if err != nil {
		return nil, err
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	if cached, ok := p.cache[i]; ok {
		return cached, nil
	}
	p.cache[i] = u
	p.fifo = append(p.fifo, i)
	for len(p.fifo) > p.maxKeep {
		evict := p.fifo[0]
		p.fifo = p.fifo[1:]
		delete(p.cache, evict)
	}
	return u, nil
}

// synthesize builds user i from scratch: plan → private venues → itinerary
// → GSM trace → day profiles. Every draw comes from user i's own streams.
func (p *Population) synthesize(i int) (*SimUser, error) {
	id, imei, email := UserIdentity(i)

	planRand := p.key.UserStream(SubsysPlan, i)
	wc := world.DefaultConfig()
	wc.ExtentMeters = p.spec.ExtentMeters
	plan := study.PlanParticipant(planRand, wc, p.spec.HauntsPerUser, len(p.public), i)

	// Home and work are standalone: the shared world must not grow by two
	// venues per synthesized user (and AddVenue's reindex is not safe under
	// the concurrent readers sampling GSM).
	home := world.StandaloneVenue("home-"+id, "Home of "+id, world.KindHome, plan.HomePos, planRand)
	work := world.StandaloneVenue("work-"+id, "Office of "+id, world.KindWorkplace, plan.WorkPos, planRand)
	haunts := make([]*world.Venue, 0, len(plan.HauntIdx))
	for _, j := range plan.HauntIdx {
		haunts = append(haunts, p.public[j])
	}
	agent := &mobility.Agent{ID: id, Home: home, Work: work, Haunts: haunts, SpeedMPS: plan.SpeedMPS}

	it, err := mobility.BuildItinerary(agent, p.world, simclock.Epoch, p.spec.TraceDays, p.schedCfg, p.key.UserStream(SubsysSchedule, i))
	if err != nil {
		return nil, fmt.Errorf("load: itinerary for %s: %w", id, err)
	}

	sensors := trace.NewSensors(p.world, it, p.sensorCfg, p.key.UserStream(SubsysSensors, i))
	interval := time.Duration(p.spec.ObsIntervalSec) * time.Second
	end := simclock.Epoch.AddDate(0, 0, p.spec.TraceDays)
	var obs []trace.GSMObservation
	for t := simclock.Epoch; t.Before(end); t = t.Add(interval) {
		obs = append(obs, sensors.SampleGSM(t))
	}

	profiles, err := dayProfiles(id, it, p.venueLabel(home, work))
	if err != nil {
		return nil, err
	}
	if len(profiles) == 0 {
		return nil, fmt.Errorf("load: user %s produced no day profiles", id)
	}

	return &SimUser{
		Idx:         i,
		ID:          id,
		IMEI:        imei,
		Email:       email,
		Trace:       obs,
		Profiles:    profiles,
		QueryPlaces: profiles[0].DistinctPlaces(),
	}, nil
}

// venueLabel resolves a visit's venue kind for profile labels, covering the
// user's private venues plus the shared world.
func (p *Population) venueLabel(home, work *world.Venue) func(string) string {
	return func(venueID string) string {
		switch venueID {
		case home.ID:
			return home.Kind.String()
		case work.ID:
			return work.Kind.String()
		}
		if v := p.world.VenueByID(venueID); v != nil {
			return v.Kind.String()
		}
		return ""
	}
}

// dayProfiles converts an itinerary's significant visits into one validated
// DayProfile per day, splitting visits at midnight (profile.Validate
// requires every entry inside its day). Days with no significant visit are
// skipped; day 0 always has one, because every itinerary opens with the
// overnight home dwell.
func dayProfiles(userID string, it *mobility.Itinerary, label func(string) string) ([]*profile.DayProfile, error) {
	b := profile.NewBuilder(userID)
	for _, v := range it.SignificantVisits(minStay) {
		b.AddVisit(v.VenueID, label(v.VenueID), v.Arrive, v.Depart)
	}
	days := b.Days()
	for _, d := range days {
		if err := d.Validate(); err != nil {
			return nil, fmt.Errorf("load: synthesized profile invalid for %s %s: %w", userID, d.Date, err)
		}
	}
	return days, nil
}
