package load

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/obs"
	"repro/internal/storage"
)

// The boot-recovery benchmark for ISSUE 10: build a durable cloud.Store with
// ~100k registered users (identities from this package's lazy population,
// each carrying a synthesized day profile), then measure Open wall time with
// serial shard recovery (RecoverWorkers: 1, the pre-ISSUE-10 behavior) vs the
// parallel fan-out. The per-shard pci_storage_boot_recover_us histogram also
// yields sum(shard work) vs max(shard work) — the available parallel speedup
// on a host with real cores, which this single-core container cannot exhibit
// in wall time.

type bootLeg struct {
	Workers   int       `json:"recover_workers"`
	WallMS    []float64 `json:"open_wall_ms"`
	BestMS    float64   `json:"open_wall_ms_best"`
	ShardSum  float64   `json:"shard_recover_sum_ms"`
	ShardMax  float64   `json:"shard_recover_max_ms"`
	ShardDone uint64    `json:"shards_recovered"`
}

func measureBoot(t *testing.T, dir string, workers, iters int) bootLeg {
	t.Helper()
	leg := bootLeg{Workers: workers, BestMS: -1}
	for i := 0; i < iters; i++ {
		reg := obs.NewRegistry()
		t0 := time.Now()
		st, err := cloud.OpenStore(dir, cloud.StoreConfig{
			Sync:           storage.SyncNever,
			RecoverWorkers: workers,
			Metrics:        reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		wall := float64(time.Since(t0).Microseconds()) / 1000
		h := reg.Snapshot().Histograms["pci_storage_boot_recover_us"]
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		leg.WallMS = append(leg.WallMS, wall)
		if leg.BestMS < 0 || wall < leg.BestMS {
			leg.BestMS = wall
		}
		leg.ShardSum = float64(h.Sum) / 1000
		leg.ShardMax = float64(h.Max) / 1000
		leg.ShardDone = h.Count
	}
	return leg
}

// TestBootRecoveryBenchRecord appends the boot_recovery section to the JSON
// report named by STORAGE_BENCH_OUT (normally BENCH_storage.json, merged in
// place). Skipped in normal runs; populating and booting a 100k-user store
// takes a minute or two. BOOT_BENCH_USERS overrides the population size for
// quicker local runs.
func TestBootRecoveryBenchRecord(t *testing.T) {
	out := os.Getenv("STORAGE_BENCH_OUT")
	if out == "" {
		t.Skip("set STORAGE_BENCH_OUT to record the boot-recovery benchmark")
	}
	users := 100_000
	if v := os.Getenv("BOOT_BENCH_USERS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("bad BOOT_BENCH_USERS %q", v)
		}
		users = n
	}

	// Synthesize a small pool of real day profiles once; re-keying them per
	// registered user gives every data shard genuine decode weight without
	// paying full trace synthesis 100k times.
	const poolSize = 16
	spec := DefaultSpec()
	spec.TraceDays = 3
	pop := NewPopulation(spec, Key{Seed: 2014})
	pool := make([]*SimUser, poolSize)
	for i := range pool {
		u, err := pop.User(i)
		if err != nil {
			t.Fatal(err)
		}
		pool[i] = u
	}

	dir := t.TempDir()
	st, err := cloud.OpenStore(dir, cloud.StoreConfig{Shards: 8, Sync: storage.SyncNever, Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("populating %d users...", users)
	popStart := time.Now()
	for i := 0; i < users; i++ {
		_, imei, email := UserIdentity(i)
		resp, err := st.Register(imei, email)
		if err != nil {
			t.Fatal(err)
		}
		src := pool[i%poolSize]
		p := *src.Profiles[i%len(src.Profiles)]
		p.UserID = "" // PutProfile re-keys the copy to the registered user
		if err := st.PutProfile(resp.UserID, &p); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil { // compacts: boot restores snapshots, replays ~nothing
		t.Fatal(err)
	}
	t.Logf("populated and closed in %.1fs", time.Since(popStart).Seconds())

	const iters = 3
	serial := measureBoot(t, dir, 1, iters)
	parallel := measureBoot(t, dir, 8, iters)
	wallRatio := parallel.BestMS / serial.BestMS
	headroom := serial.ShardSum / serial.ShardMax
	t.Logf("serial boot (workers=1): best %.0fms of %v", serial.BestMS, serial.WallMS)
	t.Logf("parallel boot (workers=8): best %.0fms of %v", parallel.BestMS, parallel.WallMS)
	t.Logf("parallel/serial wall: %.2fx; per-shard work sum %.0fms, max %.0fms (%.1fx headroom over %d shards)",
		wallRatio, serial.ShardSum, serial.ShardMax, headroom, serial.ShardDone)

	section := struct {
		Recorded string  `json:"recorded"`
		Go       string  `json:"go_version"`
		Command  string  `json:"command"`
		Note     string  `json:"note"`
		Users    int     `json:"users"`
		Serial   bootLeg `json:"serial"`
		Parallel bootLeg `json:"parallel"`
		Ratio    float64 `json:"parallel_over_serial_wall"`
		Headroom float64 `json:"parallel_headroom_sum_over_max"`
	}{
		Recorded: time.Now().UTC().Format("2006-01-02"),
		Go:       runtime.Version(),
		Command:  "STORAGE_BENCH_OUT=BENCH_storage.json go test ./internal/load -run TestBootRecoveryBenchRecord -v -timeout 30m",
		Note: fmt.Sprintf("Open wall time of a durable store (8 data shards + meta + 8 trace shards) holding "+
			"%d registered users each with one synthesized day profile, serial vs 8-worker shard recovery. "+
			"GOMAXPROCS=%d on this host: wall time cannot show a parallel win without real cores, so the "+
			"honest capacity number is the headroom column — sum of per-shard recover work over the largest "+
			"single shard (the parallel boot's lower bound). On a multi-core host the ISSUE 10 bar is "+
			"parallel ≤ 0.5x serial wall.", users, runtime.GOMAXPROCS(0)),
		Users:    users,
		Serial:   serial,
		Parallel: parallel,
		Ratio:    wallRatio,
		Headroom: headroom,
	}

	report := map[string]json.RawMessage{}
	if data, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(data, &report); err != nil {
			t.Fatalf("existing %s is not a JSON object: %v", out, err)
		}
	}
	blob, err := json.Marshal(section)
	if err != nil {
		t.Fatal(err)
	}
	report["boot_recovery"] = blob
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
