package load

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"time"

	"repro/internal/simclock"
)

// Request is one scheduled API call: at virtual offset At from the start of
// the phase, user User issues Route. UserSeq is the request's rank within
// its user's sequence (0-based); the executor uses it to preserve per-user
// order across workers and to vary analytics query parameters
// deterministically.
type Request struct {
	Seq     int
	At      time.Duration
	User    int
	UserSeq int
	Route   string
}

// Schedule is a phase's complete, deterministic request sequence. It is the
// determinism test surface: Encode is byte-stable, so two schedules from the
// same (spec, key) compare equal as bytes.
type Schedule struct {
	SpecHash uint64
	Seed     int64
	Requests []Request
}

// BuildSchedule compiles the spec into a request sequence using the key's
// streams. The generator runs entirely in virtual time on a simclock — no
// wall clock, no map iteration, no goroutines — so the output is a pure
// function of (spec, key).
//
// Route selection consumes exactly one draw from the routes stream per
// request regardless of gating substitutions, and user selection draws only
// from the users stream, so the streams stay aligned when the gating rules
// (or the mix weights) change: perturbing one subsystem leaves the others'
// sequences intact (TestScheduleStreamIsolation).
func BuildSchedule(spec *Spec, key Key) *Schedule {
	g := &scheduleGen{
		spec:     spec,
		sched:    &Schedule{SpecHash: spec.Hash(), Seed: key.Seed},
		users:    key.Stream(SubsysUsers),
		routes:   key.Stream(SubsysRoutes),
		touched:  make(map[int]bool),
		profiled: make(map[int]bool),
		userSeq:  make(map[int]int),
	}
	g.routeNames, g.routeCum = spec.mixEntries()
	if spec.ZipfS > 1 && spec.Users > 1 {
		g.zipf = rand.NewZipf(g.users, spec.ZipfS, 1, uint64(spec.Users-1))
	}

	clock := simclock.New()
	start := clock.Now()
	end := start.Add(time.Duration(spec.DurationSec) * time.Second)

	switch spec.Mode {
	case "open":
		arrivals := key.Stream(SubsysArrivals)
		var arrive func(c *simclock.Clock)
		arrive = func(c *simclock.Clock) {
			g.emit(c.Since(start))
			c.After(expDur(arrivals, 1/spec.RatePerSec), arrive)
		}
		clock.After(expDur(arrivals, 1/spec.RatePerSec), arrive)
	case "closed":
		think := float64(spec.ThinkTimeMS) / 1000
		for c := 0; c < spec.Concurrency; c++ {
			thinkRand := key.UserStream(SubsysThink, c)
			var loop func(cl *simclock.Clock)
			loop = func(cl *simclock.Clock) {
				g.emit(cl.Since(start))
				cl.After(expDur(thinkRand, think), loop)
			}
			clock.After(expDur(thinkRand, think), loop)
		}
	}
	clock.RunUntil(end)
	return g.sched
}

// expDur draws an exponential interval with the given mean in seconds.
func expDur(r *rand.Rand, meanSec float64) time.Duration {
	d := time.Duration(r.ExpFloat64() * meanSec * float64(time.Second))
	if d <= 0 {
		d = time.Nanosecond
	}
	return d
}

type scheduleGen struct {
	spec  *Spec
	sched *Schedule

	users  *rand.Rand
	zipf   *rand.Zipf
	routes *rand.Rand

	routeNames []string
	routeCum   []float64

	touched  map[int]bool
	profiled map[int]bool
	userSeq  map[int]int
}

func (g *scheduleGen) emit(at time.Duration) {
	user := g.pickUser()
	route := g.pickRoute(user)
	seq := g.userSeq[user]
	g.userSeq[user]++
	g.sched.Requests = append(g.sched.Requests, Request{
		Seq:     len(g.sched.Requests),
		At:      at,
		User:    user,
		UserSeq: seq,
		Route:   route,
	})
}

func (g *scheduleGen) pickUser() int {
	if g.zipf != nil {
		return int(g.zipf.Uint64())
	}
	return g.users.Intn(g.spec.Users)
}

// pickRoute applies the session rules on top of the weighted mix:
//   - a user's first request is always register (tokens before traffic);
//   - per-place analytics reads are swapped for a profile_put until the
//     user has synced a profile, because those endpoints 404 on a user the
//     server has no profile data for — and this harness treats any 4xx/5xx
//     as a defect, not workload noise.
//
// Exactly one draw from the routes stream per request, even for the forced
// register (the draw is discarded), to keep the stream aligned across rule
// changes.
func (g *scheduleGen) pickRoute(user int) string {
	v := g.routes.Float64() * g.routeCum[len(g.routeCum)-1]
	route := g.routeNames[len(g.routeNames)-1]
	for i, c := range g.routeCum {
		if v < c {
			route = g.routeNames[i]
			break
		}
	}
	if !g.touched[user] {
		g.touched[user] = true
		return RouteRegister
	}
	if analyticsGated(route) && !g.profiled[user] {
		route = RouteProfilePut
	}
	if route == RouteProfilePut {
		g.profiled[user] = true
	}
	return route
}

// RouteCounts tallies requests per route.
func (s *Schedule) RouteCounts() map[string]uint64 {
	out := make(map[string]uint64)
	for _, r := range s.Requests {
		out[r.Route]++
	}
	return out
}

// Duration returns the virtual time of the last request (the schedule's
// active span).
func (s *Schedule) Duration() time.Duration {
	if len(s.Requests) == 0 {
		return 0
	}
	return s.Requests[len(s.Requests)-1].At
}

// Encode writes the canonical trace: a header line stamping the identity,
// then one tab-separated line per request with the virtual offset in
// microseconds. The encoding is the byte-for-byte reproducibility artifact:
// same (seed, spec) ⇒ same bytes, on any platform.
func (s *Schedule) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# pmware-load trace v1 spec=%016x seed=%d requests=%d\n",
		s.SpecHash, s.Seed, len(s.Requests)); err != nil {
		return err
	}
	for _, r := range s.Requests {
		if _, err := fmt.Fprintf(bw, "%d\t%d\t%d\t%d\t%s\n",
			r.Seq, r.At.Microseconds(), r.User, r.UserSeq, r.Route); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Hash returns the FNV-64a of the canonical encoding.
func (s *Schedule) Hash() uint64 {
	h := fnv.New64a()
	// Encode into an fnv hash cannot fail: fnv's Write never errors.
	_ = s.Encode(h)
	return h.Sum64()
}
