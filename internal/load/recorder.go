package load

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/obs"
)

// Outcome classifies one request's result. Latency is recorded for every
// outcome (a 429 costs the client real time), but the classes roll up
// differently in the SLO: 5xx and transport failures are errors, 429 is
// backpressure, other 4xx is a client/workload defect.
type Outcome int

// Outcome classes.
const (
	OutcomeOK Outcome = iota
	Outcome429
	Outcome4xx
	Outcome5xx
	OutcomeTransport
	numOutcomes
)

// LatencyBuckets spans ~20µs..8s with ±17% bucket resolution — finer than
// the serving layer's DefaultLatencyBuckets because SLO quantiles are this
// harness's headline output, and the quantile bracket is only as tight as
// the bucket.
func LatencyBuckets() []int64 { return obs.ExpBuckets(20, 1.35, 44) }

// Recorder collects per-route latency and outcome counts. It is race-safe
// (atomic histograms and counters), but the intended sharding is one
// Recorder per worker goroutine merged at the end — the merge-equals-
// single-stream property is pinned by TestRecorderMergeEquivalence.
type Recorder struct {
	routes map[string]*routeRec
}

type routeRec struct {
	latency  *obs.Histogram
	outcomes [numOutcomes]obs.Counter
}

// NewRecorder returns a recorder for the given route set. Observing an
// unknown route panics: routes are fixed by the spec at compile time, so an
// unknown route at execution time is a harness bug.
func NewRecorder(routes []string) *Recorder {
	r := &Recorder{routes: make(map[string]*routeRec, len(routes))}
	for _, route := range routes {
		r.routes[route] = &routeRec{latency: obs.NewHistogram(LatencyBuckets())}
	}
	return r
}

// Observe records one completed request.
func (r *Recorder) Observe(route string, d time.Duration, o Outcome) {
	rec, ok := r.routes[route]
	if !ok {
		panic(fmt.Sprintf("load: recorder observed unknown route %q", route))
	}
	rec.latency.ObserveDuration(d)
	rec.outcomes[o].Inc()
}

// RouteSnapshot is one route's frozen recording.
type RouteSnapshot struct {
	Route    string
	Outcomes [numOutcomes]uint64
	Latency  obs.HistogramSnapshot
}

// Requests returns the route's total completed requests.
func (s RouteSnapshot) Requests() uint64 {
	var n uint64
	for _, c := range s.Outcomes {
		n += c
	}
	return n
}

// RecorderSnapshot maps route → frozen recording.
type RecorderSnapshot map[string]RouteSnapshot

// Snapshot freezes the recorder.
func (r *Recorder) Snapshot() RecorderSnapshot {
	out := make(RecorderSnapshot, len(r.routes))
	for route, rec := range r.routes {
		s := RouteSnapshot{Route: route, Latency: rec.latency.Snapshot()}
		for i := range s.Outcomes {
			s.Outcomes[i] = rec.outcomes[i].Value()
		}
		out[route] = s
	}
	return out
}

// MergeSnapshots folds per-worker snapshots into the recording a single
// recorder would have produced: outcome counts add exactly, histogram
// counts and sums add exactly, min/max fold.
func MergeSnapshots(snaps ...RecorderSnapshot) (RecorderSnapshot, error) {
	out := make(RecorderSnapshot)
	for _, snap := range snaps {
		for route, s := range snap {
			cur, ok := out[route]
			if !ok {
				out[route] = s
				continue
			}
			merged, err := obs.MergeHistogramSnapshots(cur.Latency, s.Latency)
			if err != nil {
				return nil, fmt.Errorf("load: merge route %s: %w", route, err)
			}
			cur.Latency = merged
			for i := range cur.Outcomes {
				cur.Outcomes[i] += s.Outcomes[i]
			}
			out[route] = cur
		}
	}
	return out, nil
}

// Routes returns the snapshot's route names, sorted.
func (s RecorderSnapshot) Routes() []string {
	out := make([]string, 0, len(s))
	for r := range s {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}
