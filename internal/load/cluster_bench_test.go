package load

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/profile"
)

// The horizontal-scaling bench: write throughput of a 4-node cluster vs a
// single node, with every node process pinned to the same CPU quota so the
// comparison measures partitioning, not the host's core count. Runs only
// when CLUSTER_BENCH_OUT names the artifact to write (it spawns real
// pmware-cloud processes and takes ~1min).
//
// Per-node quota is enforced with a SIGSTOP/SIGCONT governor, which needs
// no cgroup privileges and works on any host including single-core CI
// containers. Each node banks CPU allowance at 1/16 of wall time; every
// 32ms round the governor thaws all funded nodes together (peers must
// overlap or semi-sync acks stall), polls their consumed nanoseconds via
// /proc schedstat, and refreezes the burst as soon as the first node
// drains its bank — charging each node for what it actually burned, so
// late signal delivery self-corrects as debt. A slow integral loop trims
// each node's accrual rate until its cumulative utime+stime share — the
// metric both configs are compared on — sits exactly on the 1/16-core
// target. The deliberately small quota leaves the load-generating test
// process enough CPU to saturate four nodes at once; capping nodes near
// the core's capacity would starve the clients and measure contention,
// not scaling.

const (
	benchSlotMS = 2
	benchSlots  = 16
)

type cappedNode struct {
	cmd *exec.Cmd
	url string
}

func startCappedNode(t *testing.T, bin string, port int, clusterSpec, nodeID string) *cappedNode {
	t.Helper()
	addr := fmt.Sprintf("127.0.0.1:%d", port)
	args := []string{"-addr", addr, "-fsync", "never"}
	if clusterSpec != "" {
		// A longer linger than the 2ms default: under the CPU quota a node
		// runs in widely spaced bursts, so holding partial batches a little
		// longer coalesces far more records per replication POST without
		// adding meaningful ack latency at bench pipeline depth.
		args = append(args, "-cluster", clusterSpec, "-node-id", nodeID, "-ship-linger", "8ms")
	}
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start node %s: %v", nodeID, err)
	}
	n := &cappedNode{cmd: cmd, url: "http://" + addr}
	t.Cleanup(func() { n.kill() })

	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(n.url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("node %s on %s never became healthy", nodeID, addr)
		}
		time.Sleep(50 * time.Millisecond)
	}
	return n
}

func (n *cappedNode) kill() {
	if n.cmd.Process != nil {
		_ = n.cmd.Process.Signal(syscall.SIGCONT)
		_ = n.cmd.Process.Signal(syscall.SIGTERM)
		_ = n.cmd.Wait()
		n.cmd.Process = nil
	}
}

// nodeCPUSeconds reads the process's consumed CPU (utime+stime) so runs can
// report how much core each node actually got under the quota.
func nodeCPUSeconds(pid int) float64 {
	data, err := os.ReadFile(fmt.Sprintf("/proc/%d/stat", pid))
	if err != nil {
		return 0
	}
	fields := strings.Fields(string(data))
	if len(fields) < 15 {
		return 0
	}
	utime, _ := strconv.ParseFloat(fields[13], 64)
	stime, _ := strconv.ParseFloat(fields[14], 64)
	return (utime + stime) / 100 // USER_HZ
}

// nodeCPUNanos sums sum_exec_runtime (ns) across the process's threads from
// /proc/<pid>/task/*/schedstat. Unlike utime+stime (10ms USER_HZ ticks) it
// has nanosecond resolution, which the quota governor needs to meter out
// ~1ms CPU grants.
func nodeCPUNanos(pid int) float64 {
	tasks, err := os.ReadDir(fmt.Sprintf("/proc/%d/task", pid))
	if err != nil {
		return 0
	}
	total := 0.0
	for _, task := range tasks {
		data, err := os.ReadFile(fmt.Sprintf("/proc/%d/task/%s/schedstat", pid, task.Name()))
		if err != nil {
			continue
		}
		fields := strings.Fields(string(data))
		if len(fields) < 1 {
			continue
		}
		v, _ := strconv.ParseFloat(fields[0], 64)
		total += v
	}
	return total
}

// startQuotaScheduler freezes every node and meters out its CPU by
// consumption, not wall clock: each node banks allowance at 1/benchSlots of
// real time, gets thawed when the bank is positive, and is charged for the
// CPU nanoseconds it actually burned (measured via schedstat) when it is
// frozen again. Charging actual consumption makes the delivered share
// converge on the target regardless of signal latency or scheduler
// contention — a node that overruns its grant because SIGSTOP landed late
// goes into debt and sits out following rounds. A node that is awake but
// blocked (e.g. a primary waiting on a frozen follower's ack) burns ~no CPU
// and keeps its allowance. Returns a stop func that thaws everyone.
func startQuotaScheduler(nodes []*cappedNode) (stop func()) {
	const (
		target   = 1.0 / benchSlots
		round    = benchSlots * benchSlotMS * time.Millisecond
		slotCap  = 12 * time.Millisecond // wall bound per burst, even if no CPU burned
		minGrant = float64(2 * time.Millisecond)
		maxBank  = float64(8 * time.Millisecond)
	)
	stopCh := make(chan struct{})
	var done sync.WaitGroup
	pids := make([]int, len(nodes))
	for i, n := range nodes {
		pids[i] = n.cmd.Process.Pid
		_ = syscall.Kill(pids[i], syscall.SIGSTOP)
	}
	done.Add(1)
	go func() {
		defer done.Done()
		allowance := make([]float64, len(pids)) // CPU ns each node may burn
		// schedstat misses CPU the kernel burns on the node's behalf
		// (softirq network work lands in stime but not sum_exec_runtime),
		// so a slow outer loop trims each node's accrual rate until the
		// utime+stime share — the metric both bench configs are compared
		// on — sits at the target.
		effTarget := make([]float64, len(pids))
		tickBase := make([]float64, len(pids))
		for i, pid := range pids {
			effTarget[i] = target
			tickBase[i] = nodeCPUSeconds(pid)
		}
		started := time.Now()
		lastTrim := time.Now()
		lastAccrue := time.Now()
		for {
			select {
			case <-stopCh:
				return
			default:
			}
			now := time.Now()
			accrued := float64(now.Sub(lastAccrue))
			lastAccrue = now
			for i := range allowance {
				if allowance[i] += effTarget[i] * accrued; allowance[i] > maxBank {
					allowance[i] = maxBank
				}
			}
			if time.Since(lastTrim).Seconds() >= 0.5 {
				// Integral control: aim the *cumulative* utime+stime share at
				// the target, repaying any accumulated error over the next
				// second. A node that ran hot early (signal latency, schedstat
				// undercounting kernel work) accrues slower until the running
				// total is back on the line, so the share measured over any
				// later window converges on the target exactly.
				elapsed := time.Since(started).Seconds()
				for i, pid := range pids {
					consumed := nodeCPUSeconds(pid) - tickBase[i]
					short := target*elapsed - consumed // CPU-seconds owed
					eff := target + short
					if eff < 0.2*target {
						eff = 0.2 * target
					} else if eff > 2.5*target {
						eff = 2.5 * target
					}
					effTarget[i] = eff
				}
				lastTrim = time.Now()
			}
			// Thaw every node with a funded bank at once — peers must be
			// awake together or semi-sync acks stall the whole burst — and
			// freeze each one individually as it exhausts its allowance.
			awake := make([]bool, len(pids))
			base := make([]float64, len(pids))
			any := false
			for i, pid := range pids {
				if allowance[i] < minGrant {
					continue
				}
				base[i] = nodeCPUNanos(pid)
				awake[i] = true
				any = true
				_ = syscall.Kill(pid, syscall.SIGCONT)
			}
			if any {
				// The burst ends for everyone as soon as one node drains its
				// bank (or the wall cap trips): a node left awake alone burns
				// CPU spinning against frozen peers, which is charged but
				// produces nothing. Residual allowances carry to later rounds.
				slotStart := time.Now()
				for time.Since(slotStart) < slotCap {
					drained := false
					for i, pid := range pids {
						if awake[i] && nodeCPUNanos(pid)-base[i] >= allowance[i] {
							drained = true
						}
					}
					if drained {
						break
					}
					time.Sleep(200 * time.Microsecond)
				}
				for i, pid := range pids {
					if !awake[i] {
						continue
					}
					_ = syscall.Kill(pid, syscall.SIGSTOP)
					allowance[i] -= nodeCPUNanos(pid) - base[i]
				}
			}
			if rest := round - time.Since(now); rest > 0 {
				time.Sleep(rest)
			}
		}
	}()
	return func() {
		close(stopCh)
		done.Wait()
		for _, pid := range pids {
			_ = syscall.Kill(pid, syscall.SIGCONT)
		}
	}
}

// measureWriteThroughput drives profile upserts from `workers` concurrent
// clients. Writers run through a warmup (which lets the quota feedback loop
// converge and the stores absorb cold-start costs) before the measured
// window opens; returns completed writes per second over the window alone,
// plus the node CPU-seconds the given pids consumed during it.
func measureWriteThroughput(t *testing.T, targets []string, workers int, warmup, window time.Duration, pids []int) (float64, uint64, float64) {
	t.Helper()
	clients := make([]*cloud.Client, workers)
	for i := range clients {
		imei := fmt.Sprintf("bench-imei-%03d", i)
		email := fmt.Sprintf("bench-%d@example.com", i)
		opts := []cloud.ClientOption{
			cloud.WithRetryPolicy(cloud.RetryPolicy{MaxAttempts: 2, BaseDelay: 10 * time.Millisecond, PerTryTimeout: 30 * time.Second}),
		}
		if len(targets) > 1 {
			opts = append(opts, cloud.WithCluster(targets))
		}
		c := cloud.NewClient(targets[i%len(targets)], imei, email,
			&http.Client{Timeout: 30 * time.Second}, opts...)
		if err := c.Register(); err != nil {
			t.Fatalf("register bench client %d: %v", i, err)
		}
		clients[i] = c
	}

	var writes atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *cloud.Client) {
			defer wg.Done()
			uid := c.UserID()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				date := fmt.Sprintf("2014-07-%02d", 1+(n%28))
				day, _ := time.Parse("2006-01-02", date)
				p := &profile.DayProfile{
					UserID: uid,
					Date:   date,
					Places: []profile.PlaceVisit{{
						PlaceID: fmt.Sprintf("place-%d", n%5),
						Arrive:  day.Add(8 * time.Hour),
						Depart:  day.Add(18 * time.Hour),
					}},
				}
				if err := c.SyncProfile(p); err == nil {
					writes.Add(1)
				}
			}
		}(i, c)
	}
	time.Sleep(warmup)
	cpuBase := 0.0
	for _, pid := range pids {
		cpuBase += nodeCPUSeconds(pid)
	}
	writes.Store(0)
	start := time.Now()
	time.Sleep(window)
	w := writes.Load()
	elapsed := time.Since(start)
	cpuUsed := -cpuBase
	for _, pid := range pids {
		cpuUsed += nodeCPUSeconds(pid)
	}
	close(stop)
	wg.Wait()
	return float64(w) / elapsed.Seconds(), w, cpuUsed
}

// TestClusterBenchRecord measures 1-node vs 4-node write throughput under
// identical per-node CPU quotas and records BENCH_cluster.json. The ratio
// gate (>= 2.5x) fails the run if partitioning stops paying for the
// replication overhead it adds.
func TestClusterBenchRecord(t *testing.T) {
	out := os.Getenv("CLUSTER_BENCH_OUT")
	if out == "" {
		t.Skip("set CLUSTER_BENCH_OUT=<path> to run the cluster scaling bench")
	}

	bin := filepath.Join(t.TempDir(), "pmware-cloud")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/pmware-cloud")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("build pmware-cloud: %v", err)
	}

	const (
		workers = 128
		warmup  = 6 * time.Second
		window  = 20 * time.Second
	)

	// Baseline: one node, same per-node quota, no cluster flags (so no
	// replication work — the single-node deployment it replaces).
	single := startCappedNode(t, bin, 19200, "", "")
	stopSched := startQuotaScheduler([]*cappedNode{single})
	singleRPS, singleWrites, singleCPU := measureWriteThroughput(t,
		[]string{single.url}, workers, warmup, window, []int{single.cmd.Process.Pid})
	stopSched()
	single.kill()
	t.Logf("1 node:  %.1f writes/s (%d writes, %.2f node CPU-sec, %.1f%% of core)",
		singleRPS, singleWrites, singleCPU, 100*singleCPU/window.Seconds())

	// 4-node ring: every write lands on its ring owner and replicates
	// semi-synchronously to the next node.
	ports := []int{19201, 19202, 19203, 19204}
	spec := ""
	var targets []string
	for i, p := range ports {
		if i > 0 {
			spec += ","
		}
		spec += fmt.Sprintf("m%d=http://127.0.0.1:%d", i, p)
		targets = append(targets, fmt.Sprintf("http://127.0.0.1:%d", p))
	}
	nodes := make([]*cappedNode, len(ports))
	for i, p := range ports {
		nodes[i] = startCappedNode(t, bin, p, spec, fmt.Sprintf("m%d", i))
	}
	stopSched = startQuotaScheduler(nodes)
	pids := make([]int, len(nodes))
	for i, n := range nodes {
		pids[i] = n.cmd.Process.Pid
	}
	clusterRPS, clusterWrites, clusterCPU := measureWriteThroughput(t, targets, workers, warmup, window, pids)
	stopSched()
	for _, n := range nodes {
		n.kill()
	}
	t.Logf("4 nodes: %.1f writes/s (%d writes, %.2f node CPU-sec total, %.1f%% of core)",
		clusterRPS, clusterWrites, clusterCPU, 100*clusterCPU/window.Seconds())

	ratio := clusterRPS / singleRPS
	t.Logf("scaling ratio: %.2fx", ratio)

	report := map[string]any{
		"schema":      1,
		"recorded_at": time.Now().UTC().Format(time.RFC3339),
		"host":        CurrentHost(),
		"methodology": map[string]any{
			"quota_mechanism": "SIGSTOP/SIGCONT consumption governor: nodes bank allowance at the quota rate, thaw together in joint bursts, and are charged actual schedstat nanoseconds; an integral loop trims accrual until the cumulative utime+stime share sits on the target",
			"slot_ms":         benchSlotMS,
			"slots":           benchSlots,
			"quota_fraction":  1.0 / float64(benchSlots),
			"workers":         workers,
			"warmup_sec":      warmup.Seconds(),
			"window_sec":      window.Seconds(),
			"write_op":        "profile upsert (PUT /api/v1/profiles/{date})",
			"note": "every node process, including the 1-node baseline, runs under the same 1/16-core quota; " +
				"consumption charging plus the utime+stime integral trim makes the delivered CPU share " +
				"identical in both configurations regardless of signal latency. The small quota leaves the " +
				"load generator CPU headroom on a single-core host, so the ratio measures horizontal " +
				"partitioning plus semi-sync replication overhead, not host core count. Cluster nodes run " +
				"with -ship-linger 8ms to coalesce replication batches across the bursty quota cadence",
		},
		"single_node": map[string]any{"writes_per_sec": singleRPS, "writes": singleWrites},
		"four_node":   map[string]any{"writes_per_sec": clusterRPS, "writes": clusterWrites},
		"ratio":       ratio,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)

	if ratio < 2.5 {
		t.Fatalf("4-node/1-node write throughput ratio %.2f below the 2.5x floor", ratio)
	}
}
