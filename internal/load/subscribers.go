package load

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/cloud"
	"repro/internal/events"
	"repro/internal/obs"
)

// subscriberPool runs the spec's SSE subscribers for the span of the main
// phase. Each subscriber is its own authenticated client attached as user
// i mod Users; received events are timed against their hub publish stamp,
// one histogram per subscriber, merged into the report's delivery quantiles
// exactly like the per-worker request recorders.
type subscriberPool struct {
	subs []*cloud.Subscription
	wg   sync.WaitGroup

	mu        sync.Mutex
	hists     []obs.HistogramSnapshot
	delivered uint64
	evictions uint64
	resets    uint64
}

// startSubscribers registers and attaches the pool. On any attach failure the
// already-attached subscribers are torn down before the error returns.
func (r *Runner) startSubscribers(spec *SubscribersSpec) (*subscriberPool, error) {
	p := &subscriberPool{}
	for i := 0; i < spec.Count; i++ {
		_, imei, email := UserIdentity(i % r.cfg.Spec.Users)
		client := cloud.NewClient(r.cfg.BaseURL, imei, email, r.cfg.HTTP)
		if err := client.Register(); err != nil {
			p.close()
			return nil, fmt.Errorf("load: subscriber %d register: %w", i, err)
		}
		var opts []cloud.SubscribeOption
		if spec.Buffer > 0 {
			opts = append(opts, cloud.WithSubscribeBuffer(spec.Buffer))
		}
		sub, err := client.Subscribe(context.Background(), opts...)
		if err != nil {
			p.close()
			return nil, fmt.Errorf("load: subscriber %d attach: %w", i, err)
		}
		p.subs = append(p.subs, sub)
		p.wg.Add(1)
		go p.consume(sub)
	}
	return p, nil
}

func (p *subscriberPool) consume(sub *cloud.Subscription) {
	defer p.wg.Done()
	hist := obs.NewHistogram(LatencyBuckets())
	var delivered, evictions, resets uint64
	for ev := range sub.C {
		switch ev.Type {
		case events.KindEvicted:
			evictions++
		case events.KindReset:
			resets++
		default:
			delivered++
			if ev.PublishedUnixNano > 0 {
				hist.ObserveDuration(time.Since(time.Unix(0, ev.PublishedUnixNano)))
			}
		}
	}
	p.mu.Lock()
	p.hists = append(p.hists, hist.Snapshot())
	p.delivered += delivered
	p.evictions += evictions
	p.resets += resets
	p.mu.Unlock()
}

func (p *subscriberPool) close() {
	for _, s := range p.subs {
		s.Close()
	}
}

// stop detaches every subscriber, waits the consumers out, and renders the
// pool's recording. Subscriptions that died mid-run (exhausted reconnect
// budget) are counted as errors rather than failing the run: a dropped
// subscriber under load is a finding, not a harness fault.
func (p *subscriberPool) stop() (*EventsReport, error) {
	p.close()
	p.wg.Wait()

	rep := &EventsReport{
		Subscribers: len(p.subs),
		Delivered:   p.delivered,
		Evictions:   p.evictions,
		Resets:      p.resets,
	}
	for _, s := range p.subs {
		if s.Err() != nil {
			rep.Errors++
		}
	}
	if len(p.hists) > 0 {
		merged := p.hists[0]
		for _, h := range p.hists[1:] {
			var err error
			if merged, err = obs.MergeHistogramSnapshots(merged, h); err != nil {
				return nil, fmt.Errorf("load: merge delivery histograms: %w", err)
			}
		}
		rep.DeliveryMeanUS = merged.Mean()
		rep.DeliveryP50US = merged.Quantile(0.50)
		rep.DeliveryP99US = merged.Quantile(0.99)
		if merged.Count > 0 {
			rep.DeliveryMaxUS = merged.Max
		}
	}
	return rep, nil
}
