package load

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/cloud"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/simclock"
)

// RunnerConfig configures one pmware-load run.
type RunnerConfig struct {
	Spec *Spec
	Seed int64
	// BaseURL is the PMWare cloud server to drive. The server's cell
	// database must come from the same world seed/extent as the spec for
	// discovery geolocation to resolve (cmd/pmware-load self-boots a
	// matching server when no URL is given).
	BaseURL string
	// Targets, when set, drives a PCI cluster: every harness client becomes
	// cluster-aware (ring-routed with 421/failover handling) over these node
	// base URLs, and BaseURL is only the ring bootstrap fallback.
	Targets []string
	// HTTP is the transport; it should allow at least Concurrency idle
	// connections per host or connection churn will dominate latency.
	HTTP *http.Client
	// TraceW, when set, receives the canonical main-phase request trace.
	TraceW io.Writer
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

// Runner executes a spec against a live server and produces the Report.
//
// Execution model: the main schedule runs once — paced to its virtual
// arrival times in open mode (lateness shows up as achieved < offered, the
// honest saturation signal), or drained back-to-back by Concurrency workers
// in closed mode (service time replaces virtual think time). Then, if the
// spec has a ramp, open-loop steps run at increasing offered rates until a
// step misses the SLO; the last passing rate is the measured saturation
// point.
//
// Requests for the same user execute strictly in schedule order (a per-user
// turnstile keyed on Request.UserSeq), because the workload's session rules
// — register before anything, profile_put before analytics — are ordering
// promises. Requests of different users interleave freely across workers.
//
// Clients run with retries disabled: a retry would hide exactly the 5xx/429
// signal the report exists to measure.
type Runner struct {
	cfg  RunnerConfig
	key  Key
	pop  *Population
	wire cloud.WireCodec
	// clientReg collects every harness client's client_* families in one
	// run-private registry, so the report can sum wire bytes across the
	// population without touching the process-wide default registry.
	clientReg *obs.Registry

	mu    sync.Mutex
	users map[int]*userState

	fatalMu sync.Mutex
	fatal   error
}

// userState is one user's cross-request session: the authenticated client,
// how many profiles it has synced, and the turnstile enforcing schedule
// order within the user.
type userState struct {
	mu   sync.Mutex
	cond *sync.Cond
	// turn is the UserSeq allowed to execute next in the current phase.
	turn     int
	client   *cloud.Client
	profiled int
}

// NewRunner builds a runner (and its lazy population) for the config.
func NewRunner(cfg RunnerConfig) (*Runner, error) {
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.HTTP == nil {
		cfg.HTTP = http.DefaultClient
	}
	wire, err := cloud.ParseWireCodec(cfg.Spec.Wire)
	if err != nil {
		return nil, err
	}
	key := Key{Seed: cfg.Seed}
	return &Runner{
		cfg:       cfg,
		key:       key,
		pop:       NewPopulation(cfg.Spec, key),
		wire:      wire,
		clientReg: obs.NewRegistry(),
		users:     make(map[int]*userState),
	}, nil
}

// Population exposes the runner's lazy population (the self-booting command
// builds its cell database from the same world).
func (r *Runner) Population() *Population { return r.pop }

// SetBaseURL points the runner at a server booted after construction — the
// self-booting path needs the population's world to build the server's cell
// database before it can listen. Must be called before Run.
func (r *Runner) SetBaseURL(u string) { r.cfg.BaseURL = u }

func (r *Runner) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// Run executes the main phase and the optional saturation ramp.
func (r *Runner) Run() (*Report, error) {
	if r.cfg.BaseURL == "" {
		return nil, fmt.Errorf("load: runner needs a base URL before Run")
	}
	spec := r.cfg.Spec
	main := BuildSchedule(spec, r.key)
	if r.cfg.TraceW != nil {
		if err := main.Encode(r.cfg.TraceW); err != nil {
			return nil, fmt.Errorf("load: write trace: %w", err)
		}
	}

	report := &Report{
		Schema: ReportSchema,
		Workload: WorkloadReport{
			SpecName:           spec.Name,
			SpecHash:           fmt.Sprintf("%016x", spec.Hash()),
			Seed:               r.cfg.Seed,
			Users:              spec.Users,
			Mode:               spec.Mode,
			OfferedRPS:         spec.RatePerSec,
			Concurrency:        spec.Concurrency,
			VirtualDurationSec: float64(spec.DurationSec),
			Requests:           uint64(len(main.Requests)),
			RouteCounts:        main.RouteCounts(),
			TraceHash:          fmt.Sprintf("%016x", main.Hash()),
			Wire:               r.wire.String(),
		},
		Measured: MeasuredReport{
			RecordedAt: time.Now().UTC().Format(time.RFC3339),
			Host:       CurrentHost(),
		},
	}

	var pool *subscriberPool
	if spec.Subscribers != nil {
		var err error
		if pool, err = r.startSubscribers(spec.Subscribers); err != nil {
			return nil, err
		}
		r.logf("attached %d event subscribers", spec.Subscribers.Count)
	}

	r.logf("main phase: %d requests over %ds virtual (%s mode)", len(main.Requests), spec.DurationSec, spec.Mode)
	mainRes, err := r.execute(main, spec.Mode == "open")
	if pool != nil {
		// Detach even when the phase failed, so consumers never leak.
		ev, stopErr := pool.stop()
		if err == nil {
			err = stopErr
		}
		report.Measured.Events = ev
		if ev != nil {
			r.logf("subscribers: %d events delivered (p99 %.1fms), %d evictions, %d errors",
				ev.Delivered, ev.DeliveryP99US/1000, ev.Evictions, ev.Errors)
		}
	}
	if err != nil {
		return nil, err
	}
	report.Measured.Main = mainRes
	r.logf("main phase: %.1f req/s achieved, error rate %.4f", mainRes.AchievedRPS, mainRes.ErrorRate)

	if spec.Ramp != nil {
		if err := r.runRamp(report); err != nil {
			return nil, err
		}
	}
	report.Measured.Wire = r.wireReport()
	if len(r.cfg.Targets) > 0 {
		report.Measured.Cluster = &ClusterReport{
			Targets:   len(r.cfg.Targets),
			Failovers: r.clientReg.Counter("client_cluster_failovers_total").Value(),
			Redirects: r.clientReg.Counter("client_cluster_redirects_total").Value(),
		}
		r.logf("cluster: %d targets, %d failovers, %d redirects",
			report.Measured.Cluster.Targets, report.Measured.Cluster.Failovers, report.Measured.Cluster.Redirects)
	}
	r.logf("wire: %s codec, %d bytes sent, %d bytes received, %d json fallbacks",
		report.Measured.Wire.Codec, report.Measured.Wire.BytesSent,
		report.Measured.Wire.BytesReceived, report.Measured.Wire.JSONFallbacks)
	if err := report.Check(); err != nil {
		return nil, err
	}
	return report, nil
}

// wireReport sums the run's client-side wire counters.
func (r *Runner) wireReport() *WireReport {
	return &WireReport{
		Codec:         r.wire.String(),
		BytesSent:     r.clientReg.Counter("client_wire_bytes_sent_total").Value(),
		BytesReceived: r.clientReg.Counter("client_wire_bytes_received_total").Value(),
		JSONFallbacks: r.clientReg.Counter("client_wire_json_fallbacks_total").Value(),
	}
}

// runRamp performs the saturation search: geometric rate steps, each its own
// scoped key universe, until the SLO breaks or MaxRPS passes.
func (r *Runner) runRamp(report *Report) error {
	spec := r.cfg.Spec
	ramp := spec.Ramp
	slo := spec.slo()
	note := fmt.Sprintf("ramp exhausted at max_rps %.0f with SLO intact", ramp.MaxRPS)

	step := 0
	for rate := ramp.StartRPS; rate <= ramp.MaxRPS; rate *= ramp.Factor {
		stepSpec := *spec
		stepSpec.Mode = "open"
		stepSpec.RatePerSec = rate
		stepSpec.DurationSec = ramp.StepDurationSec
		stepSpec.Ramp = nil
		sched := BuildSchedule(&stepSpec, r.key.Scoped("ramp", strconv.Itoa(step)))

		r.logf("ramp step %d: offering %.1f req/s for %ds (%d requests)", step, rate, ramp.StepDurationSec, len(sched.Requests))
		res, err := r.execute(sched, true)
		if err != nil {
			return err
		}
		pass, reason := evalStep(res, rate, slo)
		report.Measured.Ramp = append(report.Measured.Ramp, RampStep{
			OfferedRPS: rate,
			TraceHash:  fmt.Sprintf("%016x", sched.Hash()),
			Result:     res,
			Pass:       pass,
			FailReason: reason,
		})
		if !pass {
			note = fmt.Sprintf("step at %.1f req/s failed SLO: %s", rate, reason)
			r.logf("ramp step %d: FAIL (%s)", step, reason)
			break
		}
		report.Measured.SaturationRPS = rate
		r.logf("ramp step %d: pass (%.1f req/s achieved)", step, res.AchievedRPS)
		step++
	}
	report.Measured.SaturationNote = note
	return nil
}

// evalStep applies the SLO to a ramp step. The latency gate uses the worst
// route's p99 — a saturation point that hides one collapsed route behind
// eight healthy ones is not a saturation point.
func evalStep(res StepResult, offered float64, slo SLOSpec) (bool, string) {
	if res.AchievedRPS < slo.MinAchievedFrac*offered {
		return false, fmt.Sprintf("achieved %.1f req/s < %.0f%% of offered %.1f",
			res.AchievedRPS, slo.MinAchievedFrac*100, offered)
	}
	if res.ErrorRate > slo.MaxErrorRate {
		return false, fmt.Sprintf("error rate %.4f > %.4f", res.ErrorRate, slo.MaxErrorRate)
	}
	if slo.MaxP99MS > 0 {
		for _, rs := range res.Routes {
			if rs.P99US/1000 > slo.MaxP99MS {
				return false, fmt.Sprintf("route %s p99 %.1fms > %.1fms", rs.Route, rs.P99US/1000, slo.MaxP99MS)
			}
		}
	}
	return true, ""
}

// execute runs one schedule to completion and returns the measured result.
func (r *Runner) execute(s *Schedule, paced bool) (StepResult, error) {
	r.resetTurns()
	workers := r.cfg.Spec.Concurrency
	recorders := make([]*Recorder, workers)
	for i := range recorders {
		recorders[i] = NewRecorder(AllRoutes())
	}

	ch := make(chan Request, workers*2)
	start := time.Now()
	go func() {
		defer close(ch)
		for _, req := range s.Requests {
			if paced {
				if d := time.Until(start.Add(req.At)); d > 0 {
					time.Sleep(d)
				}
			}
			ch <- req
		}
	}()

	var wg sync.WaitGroup
	for wID := 0; wID < workers; wID++ {
		wg.Add(1)
		go func(rec *Recorder) {
			defer wg.Done()
			for req := range ch {
				if r.fatalErr() != nil {
					continue // drain; the run is already lost
				}
				if err := r.perform(req, rec); err != nil {
					r.setFatal(err)
				}
			}
		}(recorders[wID])
	}
	wg.Wait()
	wall := time.Since(start)

	if err := r.fatalErr(); err != nil {
		return StepResult{}, err
	}
	snaps := make([]RecorderSnapshot, len(recorders))
	for i, rec := range recorders {
		snaps[i] = rec.Snapshot()
	}
	merged, err := MergeSnapshots(snaps...)
	if err != nil {
		return StepResult{}, err
	}
	return BuildStepResult(merged, wall), nil
}

// perform executes one request end to end: synthesize the user's payloads
// if the route needs them (outside the latency window), take the user's
// turnstile, issue the call, classify, record. The returned error is fatal
// harness failure (payload synthesis), not request failure — request
// failures are outcomes.
func (r *Runner) perform(req Request, rec *Recorder) error {
	var u *SimUser
	if needsPayload(req.Route) {
		var err error
		if u, err = r.pop.User(req.User); err != nil {
			return err
		}
	}

	st := r.state(req.User)
	st.mu.Lock()
	for st.turn != req.UserSeq {
		// A fatal failure elsewhere may have dropped this user's
		// predecessor request without advancing the turnstile; setFatal
		// broadcasts every turnstile so waiters land here and bail.
		if r.fatalErr() != nil {
			st.mu.Unlock()
			return nil
		}
		st.cond.Wait()
	}
	defer func() {
		st.turn++
		st.cond.Broadcast()
		st.mu.Unlock()
	}()

	if st.client == nil {
		_, imei, email := UserIdentity(req.User)
		opts := []cloud.ClientOption{
			cloud.WithRetryPolicy(cloud.RetryPolicy{MaxAttempts: 1, PerTryTimeout: 30 * time.Second}),
			cloud.WithWireCodec(r.wire),
			cloud.WithClientMetrics(r.clientReg),
		}
		base := r.cfg.BaseURL
		if len(r.cfg.Targets) > 0 {
			opts = append(opts, cloud.WithCluster(r.cfg.Targets))
			// Spread ring-less bootstrap (and any unrouted call) across nodes.
			base = r.cfg.Targets[req.User%len(r.cfg.Targets)]
		}
		st.client = cloud.NewClient(base, imei, email, r.cfg.HTTP, opts...)
	}

	t0 := time.Now()
	err := r.issue(st, u, req)
	rec.Observe(req.Route, time.Since(t0), classify(err))
	return nil
}

// needsPayload reports whether the route uploads or queries user-specific
// synthesized data.
func needsPayload(route string) bool {
	switch route {
	case RouteDiscover, RouteObsStream, RouteProfilePut, RoutePredictArrival, RouteStatsDwell, RouteStatsFrequency:
		return true
	}
	return false
}

// issue performs the route's API call.
func (r *Runner) issue(st *userState, u *SimUser, req Request) error {
	switch req.Route {
	case RouteRegister:
		return st.client.Register()
	case RouteDiscover:
		_, err := st.client.DiscoverPlaces(u.Trace)
		return err
	case RouteObsStream:
		_, err := st.client.StreamObservations(context.Background(), u.Trace, 0)
		return err
	case RouteProfilePut:
		day := st.profiled % len(u.Profiles)
		st.profiled++
		return st.client.SyncProfile(u.Profiles[day])
	case RoutePlacesGet:
		_, err := st.client.Places()
		return err
	case RoutePopular:
		_, err := st.client.PopularPlaces(0, 0)
		return err
	case RouteProfileRange:
		from := simclock.Epoch.Format(profile.DateFormat)
		to := simclock.Epoch.AddDate(0, 0, r.cfg.Spec.TraceDays-1).Format(profile.DateFormat)
		_, err := st.client.ProfileRange(from, to)
		return err
	case RoutePredictArrival:
		_, err := st.client.PredictArrival(r.queryPlace(u, req))
		return err
	case RouteStatsDwell:
		_, err := st.client.DwellStats(r.queryPlace(u, req))
		return err
	case RouteStatsFrequency:
		_, err := st.client.VisitFrequency(r.queryPlace(u, req))
		return err
	}
	return fmt.Errorf("load: unknown route %q", req.Route)
}

// queryPlace picks which of the user's profiled places an analytics read
// targets — deterministic in the request's per-user sequence number, and
// always a place from the first-synced day profile so the server has data
// for it.
func (r *Runner) queryPlace(u *SimUser, req Request) string {
	return u.QueryPlaces[req.UserSeq%len(u.QueryPlaces)]
}

// classify maps a client-call error to its outcome class.
func classify(err error) Outcome {
	if err == nil {
		return OutcomeOK
	}
	code, ok := cloud.StatusCode(err)
	if !ok {
		return OutcomeTransport
	}
	switch {
	case code == http.StatusTooManyRequests:
		return Outcome429
	case code >= 500:
		return Outcome5xx
	default:
		return Outcome4xx
	}
}

func (r *Runner) state(user int) *userState {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.users[user]
	if !ok {
		st = &userState{}
		st.cond = sync.NewCond(&st.mu)
		r.users[user] = st
	}
	return st
}

// resetTurns rewinds every user's turnstile between phases (each schedule
// numbers its users' requests from zero). Runs only while no workers are
// active.
func (r *Runner) resetTurns() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, st := range r.users {
		st.mu.Lock()
		st.turn = 0
		st.mu.Unlock()
	}
}

func (r *Runner) setFatal(err error) {
	r.fatalMu.Lock()
	if r.fatal == nil {
		r.fatal = err
	}
	r.fatalMu.Unlock()
	// Wake every turnstile waiter so workers drain instead of waiting for a
	// predecessor that will never run.
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, st := range r.users {
		st.mu.Lock()
		st.cond.Broadcast()
		st.mu.Unlock()
	}
}

func (r *Runner) fatalErr() error {
	r.fatalMu.Lock()
	defer r.fatalMu.Unlock()
	return r.fatal
}
