// Package load is the deterministic load-generation layer behind
// cmd/pmware-load: it synthesizes an arbitrarily large user population
// lazily (per-user on demand, never materialized up front), compiles a
// workload spec into a virtual-time request schedule, executes the schedule
// against a real PMWare cloud server over HTTP, and emits a machine-readable
// SLO report (DESIGN.md §12).
//
// Determinism is the package's core contract: the same seed and spec
// reproduce the same request sequence byte-for-byte, on any machine, so a
// performance trajectory recorded in BENCH_load.json compares successive
// commits under literally identical offered load. Everything random flows
// from a Key — a partitioned RNG root that derives one isolated stream per
// (subsystem, user), so changing how many draws one subsystem consumes never
// perturbs another subsystem's sequence.
package load

import (
	"encoding/binary"
	"hash/fnv"
	"math/rand"
	"strconv"
)

// Subsystem stream names. Each is an isolated RNG universe under a Key:
// adding draws to one never shifts another (TestStreamIsolation pins this).
const (
	// SubsysArrivals paces open-loop request arrivals.
	SubsysArrivals = "arrivals"
	// SubsysUsers picks which user issues each request.
	SubsysUsers = "users"
	// SubsysRoutes picks each request's route from the spec's mix.
	SubsysRoutes = "routes"
	// SubsysThink paces one closed-loop client's think times (per client).
	SubsysThink = "think"
	// SubsysPlan draws one user's home/work/haunt plan (per user).
	SubsysPlan = "plan"
	// SubsysSchedule drives one user's daily itinerary (per user).
	SubsysSchedule = "schedule"
	// SubsysSensors seeds one user's handset radios (per user).
	SubsysSensors = "sensors"
)

// Key is the root of the partitioned RNG tree. Streams are derived by
// hashing (seed, parts...) — there is no shared mutable state between
// streams, so callers may draw from them lazily, concurrently, and in any
// order without perturbing each other. This is the partitioned-RNG idiom the
// sensor layer uses per-radio, promoted to an addressable keyspace.
type Key struct {
	Seed int64
}

// Stream returns the isolated RNG stream addressed by parts. The address is
// length-prefixed, so ("ab") and ("a","b") are distinct streams. Each call
// returns a fresh generator positioned at the stream's start.
func (k Key) Stream(parts ...string) *rand.Rand {
	return rand.New(rand.NewSource(k.streamSeed(parts)))
}

// UserStream returns the per-user stream of a subsystem.
func (k Key) UserStream(subsystem string, user int) *rand.Rand {
	return k.Stream(subsystem, strconv.Itoa(user))
}

// Scoped returns a child Key rooted at the given address — used to give
// each saturation-ramp step its own full universe of streams.
func (k Key) Scoped(parts ...string) Key {
	return Key{Seed: k.streamSeed(parts)}
}

func (k Key) streamSeed(parts []string) int64 {
	h := fnv.New64a()
	var buf [binary.MaxVarintLen64]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(k.Seed))
	_, _ = h.Write(buf[:8])
	for _, p := range parts {
		n := binary.PutUvarint(buf[:], uint64(len(p)))
		_, _ = h.Write(buf[:n])
		_, _ = h.Write([]byte(p))
	}
	return int64(mix64(h.Sum64()))
}

// mix64 is the splitmix64 finalizer: FNV of short, similar addresses (user
// indexes differing in one digit) produces correlated hashes; the finalizer
// scatters them before they become rand.Source seeds.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d49bbb133111eb
	return x ^ (x >> 31)
}
