package load

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/obs"
)

// e2eSpec is the ISSUE's smoke workload: 1k users, 30 virtual seconds.
func e2eSpec() *Spec {
	s := DefaultSpec()
	s.Name = "e2e-smoke"
	s.Users = 1000
	s.Mode = "closed"
	s.Concurrency = 8
	s.ThinkTimeMS = 250
	s.DurationSec = 30
	return s
}

// bootServer starts a real cloud server on a loopback listener with its
// metrics in a private registry, its cell database built from the same
// world the population uses.
func bootServer(t *testing.T, pop *Population, reg *obs.Registry) (*httptest.Server, *cloud.Server) {
	t.Helper()
	store := cloud.NewStore(nil)
	srv := cloud.NewServer(store,
		cloud.WithCellDatabase(cloud.NewCellDatabase(pop.World(), 150)),
		cloud.WithMetrics(reg),
	)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts, srv
}

func runOnce(t *testing.T, spec *Spec, seed int64) (*Report, []byte, obs.Snapshot, obs.Snapshot, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	var trace bytes.Buffer

	runner, err := NewRunner(RunnerConfig{
		Spec: spec, Seed: seed, TraceW: &trace,
		HTTP: &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: spec.Concurrency * 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts, _ := bootServer(t, runner.Population(), reg)
	runner.SetBaseURL(ts.URL)

	before := reg.Snapshot()
	rep, err := runner.Run()
	if err != nil {
		t.Fatal(err)
	}
	after := reg.Snapshot()
	return rep, trace.Bytes(), before, after, reg
}

// TestE2ESmoke is the macro delta-pinning test: a real server, a real load
// run, and three independent accountings of the same traffic — the
// schedule's route counts, the client-side recorder, and the server's
// pci_http_* metric families — that must all agree exactly, with zero
// errors of any class.
func TestE2ESmoke(t *testing.T) {
	spec := e2eSpec()
	rep, trace, before, after, _ := runOnce(t, spec, 7)

	if err := rep.Check(); err != nil {
		t.Fatalf("report malformed: %v", err)
	}
	if rep.Workload.Requests < 500 {
		t.Fatalf("suspiciously small workload: %d requests", rep.Workload.Requests)
	}

	// Zero errors: every scheduled request completed 2xx. 429s count as
	// non-errors in the SLO but the smoke spec must not provoke any.
	main := rep.Measured.Main
	if main.OK != main.Requests {
		t.Fatalf("not clean: ok=%d of %d (429=%d 4xx=%d 5xx=%d transport=%d)",
			main.OK, main.Requests, main.Backpressure429, main.ClientErr4xx, main.ServerErr5xx, main.Transport)
	}

	// Client-side per-route counts == server-side family deltas.
	for route, scheduled := range rep.Workload.RouteCounts {
		name := obs.Labeled("pci_http_requests_total", "route", ServerRoute(route))
		delta := after.CounterDelta(before, name)
		if delta != scheduled {
			t.Errorf("route %s: server saw %d requests, schedule had %d", route, delta, scheduled)
		}
	}
	// No other route family member moved: total server requests == ours.
	totalDelta := after.FamilyTotal("pci_http_requests_total") - before.FamilyTotal("pci_http_requests_total")
	if totalDelta != main.Requests {
		t.Errorf("server served %d requests total, harness issued %d", totalDelta, main.Requests)
	}
	// Status classes: all 2xx.
	if d := after.CounterDelta(before, obs.Labeled("pci_http_responses_total", "class", "2xx")); d != main.Requests {
		t.Errorf("2xx responses %d != %d requests", d, main.Requests)
	}
	for _, class := range []string{"4xx", "5xx"} {
		if d := after.CounterDelta(before, obs.Labeled("pci_http_responses_total", "class", class)); d != 0 {
			t.Errorf("%s responses: %d, want 0", class, d)
		}
	}
	if g := after.Gauges["pci_http_in_flight"]; g != 0 {
		t.Errorf("in-flight gauge %d after run, want 0", g)
	}
	if len(trace) == 0 {
		t.Fatal("no trace written")
	}
}

// TestE2ESubscribers rides SSE subscribers along a streaming-ingest workload:
// every user has a subscriber attached, obs_stream requests publish place
// events server-side, and the report's events section must account for them
// with ordered delivery quantiles — cross-checked against the server's
// pci_events_* families.
func TestE2ESubscribers(t *testing.T) {
	spec := e2eSpec()
	spec.Name = "e2e-subscribers"
	spec.Users = 8
	spec.Concurrency = 4
	spec.DurationSec = 10
	spec.RouteMix = map[string]float64{
		RouteObsStream: 0.6,
		RouteDiscover:  0.2,
		RoutePlacesGet: 0.2,
	}
	spec.Subscribers = &SubscribersSpec{Count: 8}

	rep, _, before, after, reg := runOnce(t, spec, 11)
	if err := rep.Check(); err != nil {
		t.Fatalf("report malformed: %v", err)
	}
	main := rep.Measured.Main
	if main.OK != main.Requests {
		t.Fatalf("not clean: ok=%d of %d (4xx=%d 5xx=%d transport=%d)",
			main.OK, main.Requests, main.ClientErr4xx, main.ServerErr5xx, main.Transport)
	}
	if n := rep.Workload.RouteCounts[RouteObsStream]; n == 0 {
		t.Fatal("schedule generated no obs_stream requests")
	}

	ev := rep.Measured.Events
	if ev == nil {
		t.Fatal("no events section in the report")
	}
	if ev.Subscribers != 8 {
		t.Errorf("subscribers = %d, want 8", ev.Subscribers)
	}
	if ev.Errors != 0 {
		t.Errorf("%d subscriptions died mid-run", ev.Errors)
	}
	if ev.Delivered == 0 {
		t.Fatal("no events delivered: streaming ingest published nothing the subscribers saw")
	}
	if ev.DeliveryP99US <= 0 {
		t.Errorf("delivery p99 = %v, want > 0", ev.DeliveryP99US)
	}

	// Server-side accounting: the hub published at least what our
	// subscribers received (replays after evictions can only add to the
	// delivered counter, never subtract).
	published := after.CounterDelta(before, "pci_events_published_total")
	delivered := after.CounterDelta(before, "pci_events_delivered_total")
	if published == 0 {
		t.Error("server published no events")
	}
	if delivered < ev.Delivered {
		t.Errorf("server delivered %d < harness received %d", delivered, ev.Delivered)
	}
	// The gauge drains asynchronously: the server notices each disconnect
	// when its SSE handler returns, shortly after the harness closed the
	// client side.
	gauge := reg.Gauge("pci_events_subscribers")
	deadline := time.Now().Add(10 * time.Second)
	for gauge.Value() != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := gauge.Value(); g != 0 {
		t.Errorf("subscribers gauge %d after detach, want 0", g)
	}
}

// TestE2EWireCodecDelta runs the same workload twice — once per wire codec —
// and pins the knob end to end: identical schedules, clean runs on both, the
// report's wire sections naming the codec each run actually spoke (no 415
// fallbacks against our own server), the server's pci_wire_encoding_total
// family agreeing, and the binary run moving strictly fewer body bytes.
func TestE2EWireCodecDelta(t *testing.T) {
	mkSpec := func(wire string) *Spec {
		s := e2eSpec()
		s.Name = "e2e-wire"
		s.Users = 8
		s.Concurrency = 4
		s.DurationSec = 8
		s.RouteMix = map[string]float64{
			RouteDiscover:     0.25,
			RouteObsStream:    0.15,
			RouteProfilePut:   0.20,
			RoutePlacesGet:    0.20,
			RouteProfileRange: 0.20,
		}
		s.Wire = wire
		return s
	}

	repJSON, traceJSON, _, afterJSON, _ := runOnce(t, mkSpec(""), 21)
	repBin, traceBin, beforeBin, afterBin, _ := runOnce(t, mkSpec("bin"), 21)

	for name, rep := range map[string]*Report{"json": repJSON, "bin": repBin} {
		if err := rep.Check(); err != nil {
			t.Fatalf("%s report malformed: %v", name, err)
		}
		if main := rep.Measured.Main; main.OK != main.Requests {
			t.Fatalf("%s run not clean: ok=%d of %d", name, main.OK, main.Requests)
		}
	}

	// The wire knob must not perturb the workload: same seed, same request
	// sequence. Only the traces' header lines may differ (they stamp the
	// spec hash, and the codec is part of the spec's identity).
	stripHeader := func(trace []byte) []byte {
		_, rest, _ := bytes.Cut(trace, []byte("\n"))
		return rest
	}
	if !bytes.Equal(stripHeader(traceJSON), stripHeader(traceBin)) {
		t.Fatal("request sequences differ between codecs: wire leaked into the schedule")
	}

	wj, wb := repJSON.Measured.Wire, repBin.Measured.Wire
	if wj == nil || wb == nil {
		t.Fatal("missing measured wire section")
	}
	if wj.Codec != "json" || repJSON.Workload.Wire != "json" {
		t.Errorf("json run reported codec %q / workload %q", wj.Codec, repJSON.Workload.Wire)
	}
	if wb.Codec != "bin" || repBin.Workload.Wire != "bin" {
		t.Errorf("bin run reported codec %q / workload %q", wb.Codec, repBin.Workload.Wire)
	}
	if wb.JSONFallbacks != 0 {
		t.Errorf("bin run downgraded %d clients to JSON against a binary-capable server", wb.JSONFallbacks)
	}

	// The codec delta the report exists to surface: binary moves fewer bytes
	// in both directions under the identical request sequence.
	if wb.BytesSent >= wj.BytesSent {
		t.Errorf("binary sent %d bytes >= json %d", wb.BytesSent, wj.BytesSent)
	}
	if wb.BytesReceived >= wj.BytesReceived {
		t.Errorf("binary received %d bytes >= json %d", wb.BytesReceived, wj.BytesReceived)
	}

	// Server-side agreement: the json run negotiated no binary responses,
	// the bin run negotiated binary ones.
	if n := afterJSON.Counters[obs.Labeled("pci_wire_encoding_total", "codec", "bin")]; n != 0 {
		t.Errorf("json run produced %d binary-encoded responses", n)
	}
	if d := afterBin.CounterDelta(beforeBin, obs.Labeled("pci_wire_encoding_total", "codec", "bin")); d == 0 {
		t.Error("bin run produced no binary-encoded responses server-side")
	}
}

// TestE2EDeterministicReplay is the acceptance criterion: two full runs with
// the same seed and spec — fresh server, fresh store, fresh runner — produce
// byte-identical request traces and identical reports modulo wall-clock
// fields (the Workload section compares as JSON bytes; Measured is the
// wall-clock half).
func TestE2EDeterministicReplay(t *testing.T) {
	spec := e2eSpec()
	repA, traceA, _, _, _ := runOnce(t, spec, 1234)
	repB, traceB, _, _, _ := runOnce(t, spec, 1234)

	if !bytes.Equal(traceA, traceB) {
		t.Fatal("request traces differ between same-seed runs")
	}
	wa, err := json.Marshal(repA.Workload)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := json.Marshal(repB.Workload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wa, wb) {
		t.Fatalf("workload sections differ:\n%s\n%s", wa, wb)
	}
	// The measured halves must agree on everything the schedule fixes —
	// request and outcome counts per route — even though latency numbers
	// differ run to run.
	if repA.Measured.Main.Requests != repB.Measured.Main.Requests {
		t.Fatal("executed request counts differ")
	}
	for i, rs := range repA.Measured.Main.Routes {
		other := repB.Measured.Main.Routes[i]
		if rs.Route != other.Route || rs.Requests != other.Requests || rs.OK != other.OK {
			t.Fatalf("route table diverged at %s", rs.Route)
		}
	}
}
