package load

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/obs"
)

// e2eSpec is the ISSUE's smoke workload: 1k users, 30 virtual seconds.
func e2eSpec() *Spec {
	s := DefaultSpec()
	s.Name = "e2e-smoke"
	s.Users = 1000
	s.Mode = "closed"
	s.Concurrency = 8
	s.ThinkTimeMS = 250
	s.DurationSec = 30
	return s
}

// bootServer starts a real cloud server on a loopback listener with its
// metrics in a private registry, its cell database built from the same
// world the population uses.
func bootServer(t *testing.T, pop *Population, reg *obs.Registry) (*httptest.Server, *cloud.Server) {
	t.Helper()
	store := cloud.NewStore(nil)
	srv := cloud.NewServer(store,
		cloud.WithCellDatabase(cloud.NewCellDatabase(pop.World(), 150)),
		cloud.WithMetrics(reg),
	)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts, srv
}

func runOnce(t *testing.T, spec *Spec, seed int64) (*Report, []byte, obs.Snapshot, obs.Snapshot, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	var trace bytes.Buffer

	runner, err := NewRunner(RunnerConfig{
		Spec: spec, Seed: seed, TraceW: &trace,
		HTTP: &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: spec.Concurrency * 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts, _ := bootServer(t, runner.Population(), reg)
	runner.SetBaseURL(ts.URL)

	before := reg.Snapshot()
	rep, err := runner.Run()
	if err != nil {
		t.Fatal(err)
	}
	after := reg.Snapshot()
	return rep, trace.Bytes(), before, after, reg
}

// TestE2ESmoke is the macro delta-pinning test: a real server, a real load
// run, and three independent accountings of the same traffic — the
// schedule's route counts, the client-side recorder, and the server's
// pci_http_* metric families — that must all agree exactly, with zero
// errors of any class.
func TestE2ESmoke(t *testing.T) {
	spec := e2eSpec()
	rep, trace, before, after, _ := runOnce(t, spec, 7)

	if err := rep.Check(); err != nil {
		t.Fatalf("report malformed: %v", err)
	}
	if rep.Workload.Requests < 500 {
		t.Fatalf("suspiciously small workload: %d requests", rep.Workload.Requests)
	}

	// Zero errors: every scheduled request completed 2xx. 429s count as
	// non-errors in the SLO but the smoke spec must not provoke any.
	main := rep.Measured.Main
	if main.OK != main.Requests {
		t.Fatalf("not clean: ok=%d of %d (429=%d 4xx=%d 5xx=%d transport=%d)",
			main.OK, main.Requests, main.Backpressure429, main.ClientErr4xx, main.ServerErr5xx, main.Transport)
	}

	// Client-side per-route counts == server-side family deltas.
	for route, scheduled := range rep.Workload.RouteCounts {
		name := obs.Labeled("pci_http_requests_total", "route", ServerRoute(route))
		delta := after.CounterDelta(before, name)
		if delta != scheduled {
			t.Errorf("route %s: server saw %d requests, schedule had %d", route, delta, scheduled)
		}
	}
	// No other route family member moved: total server requests == ours.
	totalDelta := after.FamilyTotal("pci_http_requests_total") - before.FamilyTotal("pci_http_requests_total")
	if totalDelta != main.Requests {
		t.Errorf("server served %d requests total, harness issued %d", totalDelta, main.Requests)
	}
	// Status classes: all 2xx.
	if d := after.CounterDelta(before, obs.Labeled("pci_http_responses_total", "class", "2xx")); d != main.Requests {
		t.Errorf("2xx responses %d != %d requests", d, main.Requests)
	}
	for _, class := range []string{"4xx", "5xx"} {
		if d := after.CounterDelta(before, obs.Labeled("pci_http_responses_total", "class", class)); d != 0 {
			t.Errorf("%s responses: %d, want 0", class, d)
		}
	}
	if g := after.Gauges["pci_http_in_flight"]; g != 0 {
		t.Errorf("in-flight gauge %d after run, want 0", g)
	}
	if len(trace) == 0 {
		t.Fatal("no trace written")
	}
}

// TestE2ESubscribers rides SSE subscribers along a streaming-ingest workload:
// every user has a subscriber attached, obs_stream requests publish place
// events server-side, and the report's events section must account for them
// with ordered delivery quantiles — cross-checked against the server's
// pci_events_* families.
func TestE2ESubscribers(t *testing.T) {
	spec := e2eSpec()
	spec.Name = "e2e-subscribers"
	spec.Users = 8
	spec.Concurrency = 4
	spec.DurationSec = 10
	spec.RouteMix = map[string]float64{
		RouteObsStream: 0.6,
		RouteDiscover:  0.2,
		RoutePlacesGet: 0.2,
	}
	spec.Subscribers = &SubscribersSpec{Count: 8}

	rep, _, before, after, reg := runOnce(t, spec, 11)
	if err := rep.Check(); err != nil {
		t.Fatalf("report malformed: %v", err)
	}
	main := rep.Measured.Main
	if main.OK != main.Requests {
		t.Fatalf("not clean: ok=%d of %d (4xx=%d 5xx=%d transport=%d)",
			main.OK, main.Requests, main.ClientErr4xx, main.ServerErr5xx, main.Transport)
	}
	if n := rep.Workload.RouteCounts[RouteObsStream]; n == 0 {
		t.Fatal("schedule generated no obs_stream requests")
	}

	ev := rep.Measured.Events
	if ev == nil {
		t.Fatal("no events section in the report")
	}
	if ev.Subscribers != 8 {
		t.Errorf("subscribers = %d, want 8", ev.Subscribers)
	}
	if ev.Errors != 0 {
		t.Errorf("%d subscriptions died mid-run", ev.Errors)
	}
	if ev.Delivered == 0 {
		t.Fatal("no events delivered: streaming ingest published nothing the subscribers saw")
	}
	if ev.DeliveryP99US <= 0 {
		t.Errorf("delivery p99 = %v, want > 0", ev.DeliveryP99US)
	}

	// Server-side accounting: the hub published at least what our
	// subscribers received (replays after evictions can only add to the
	// delivered counter, never subtract).
	published := after.CounterDelta(before, "pci_events_published_total")
	delivered := after.CounterDelta(before, "pci_events_delivered_total")
	if published == 0 {
		t.Error("server published no events")
	}
	if delivered < ev.Delivered {
		t.Errorf("server delivered %d < harness received %d", delivered, ev.Delivered)
	}
	// The gauge drains asynchronously: the server notices each disconnect
	// when its SSE handler returns, shortly after the harness closed the
	// client side.
	gauge := reg.Gauge("pci_events_subscribers")
	deadline := time.Now().Add(10 * time.Second)
	for gauge.Value() != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := gauge.Value(); g != 0 {
		t.Errorf("subscribers gauge %d after detach, want 0", g)
	}
}

// TestE2EDeterministicReplay is the acceptance criterion: two full runs with
// the same seed and spec — fresh server, fresh store, fresh runner — produce
// byte-identical request traces and identical reports modulo wall-clock
// fields (the Workload section compares as JSON bytes; Measured is the
// wall-clock half).
func TestE2EDeterministicReplay(t *testing.T) {
	spec := e2eSpec()
	repA, traceA, _, _, _ := runOnce(t, spec, 1234)
	repB, traceB, _, _, _ := runOnce(t, spec, 1234)

	if !bytes.Equal(traceA, traceB) {
		t.Fatal("request traces differ between same-seed runs")
	}
	wa, err := json.Marshal(repA.Workload)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := json.Marshal(repB.Workload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wa, wb) {
		t.Fatalf("workload sections differ:\n%s\n%s", wa, wb)
	}
	// The measured halves must agree on everything the schedule fixes —
	// request and outcome counts per route — even though latency numbers
	// differ run to run.
	if repA.Measured.Main.Requests != repB.Measured.Main.Requests {
		t.Fatal("executed request counts differ")
	}
	for i, rs := range repA.Measured.Main.Routes {
		other := repB.Measured.Main.Routes[i]
		if rs.Route != other.Route || rs.Requests != other.Requests || rs.OK != other.OK {
			t.Fatalf("route table diverged at %s", rs.Route)
		}
	}
}
