package load

import (
	"testing"
	"testing/quick"
)

// drawN returns the first n draws of a stream.
func drawN(k Key, n int, parts ...string) []float64 {
	r := k.Stream(parts...)
	out := make([]float64, n)
	for i := range out {
		out[i] = r.Float64()
	}
	return out
}

// TestStreamIsolation is the partitioned-RNG contract: drawing any amount
// from one subsystem's stream never changes what another stream yields, for
// any seed — the property that lets subsystems evolve independently without
// invalidating every pinned trace.
func TestStreamIsolation(t *testing.T) {
	check := func(seed int64, extraDraws uint8) bool {
		k := Key{Seed: seed}

		before := drawN(k, 16, SubsysUsers)

		// Perturb a different subsystem by a seed-dependent amount.
		other := k.Stream(SubsysArrivals)
		for i := 0; i < int(extraDraws); i++ {
			other.Float64()
		}

		after := drawN(k, 16, SubsysUsers)
		for i := range before {
			if before[i] != after[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestStreamStability pins that the same address always yields the same
// stream, and distinct addresses yield distinct streams.
func TestStreamStability(t *testing.T) {
	check := func(seed int64, user uint16) bool {
		k := Key{Seed: seed}
		u := int(user)
		a := drawN(k, 8, SubsysPlan, "7")
		b := drawN(k, 8, SubsysPlan, "7")
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		// Per-user streams differ from each other and from the bare
		// subsystem stream (float collision odds are negligible; equality
		// of all 8 draws would mean identical seeds).
		x := drawN(k, 8, SubsysPlan, "user-a")
		y := k.UserStream(SubsysPlan, u)
		same := true
		for i := range x {
			if x[i] != y.Float64() {
				same = false
			}
		}
		return !same
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestStreamAddressing pins that the address encoding is injective across
// part boundaries: ("ab") vs ("a","b") and ("a","bc") vs ("ab","c") are
// different streams.
func TestStreamAddressing(t *testing.T) {
	k := Key{Seed: 42}
	pairs := [][2][]string{
		{{"ab"}, {"a", "b"}},
		{{"a", "bc"}, {"ab", "c"}},
		{{""}, {}},
		{{"a", ""}, {"a"}},
	}
	for _, p := range pairs {
		a := drawN(k, 4, p[0]...)
		b := drawN(k, 4, p[1]...)
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
			}
		}
		if same {
			t.Fatalf("addresses %q and %q produced the same stream", p[0], p[1])
		}
	}
}

// TestScopedKeys pins that scoped keys derive distinct universes that still
// obey isolation.
func TestScopedKeys(t *testing.T) {
	k := Key{Seed: 7}
	s0 := k.Scoped("ramp", "0")
	s1 := k.Scoped("ramp", "1")
	if s0.Seed == s1.Seed || s0.Seed == k.Seed {
		t.Fatalf("scoped seeds collide: %d %d %d", k.Seed, s0.Seed, s1.Seed)
	}
	a := drawN(s0, 8, SubsysArrivals)
	b := drawN(s1, 8, SubsysArrivals)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Fatal("scoped universes share the arrivals stream")
	}
}
