package load

import (
	"bytes"
	"testing"
	"testing/quick"
)

func testSpec() *Spec {
	s := DefaultSpec()
	s.Users = 200
	s.DurationSec = 20
	return s
}

// TestScheduleDeterministic is the headline acceptance property: the same
// (seed, spec) compiles to a byte-identical canonical trace, in both modes,
// across seeds.
func TestScheduleDeterministic(t *testing.T) {
	for _, mode := range []string{"closed", "open"} {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			check := func(seed int64) bool {
				spec := testSpec()
				spec.Mode = mode
				if mode == "open" {
					spec.RatePerSec = 40
				}
				var a, b bytes.Buffer
				if err := BuildSchedule(spec, Key{Seed: seed}).Encode(&a); err != nil {
					t.Fatal(err)
				}
				if err := BuildSchedule(spec, Key{Seed: seed}).Encode(&b); err != nil {
					t.Fatal(err)
				}
				return bytes.Equal(a.Bytes(), b.Bytes()) && a.Len() > 0
			}
			if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestScheduleStreamIsolation pins macro-level stream independence:
// reweighting the route mix changes only which routes are picked — arrival
// times and user assignments are untouched, because they come from other
// streams.
func TestScheduleStreamIsolation(t *testing.T) {
	check := func(seed int64) bool {
		specA := testSpec()
		specA.Mode = "open"
		specA.RatePerSec = 40

		specB := testSpec()
		specB.Mode = "open"
		specB.RatePerSec = 40
		specB.RouteMix = map[string]float64{
			RouteDiscover:   5,
			RoutePlacesGet:  1,
			RouteProfilePut: 1,
		}

		a := BuildSchedule(specA, Key{Seed: seed})
		b := BuildSchedule(specB, Key{Seed: seed})
		if len(a.Requests) != len(b.Requests) {
			t.Logf("request counts diverged: %d vs %d", len(a.Requests), len(b.Requests))
			return false
		}
		for i := range a.Requests {
			if a.Requests[i].At != b.Requests[i].At || a.Requests[i].User != b.Requests[i].User {
				t.Logf("request %d: arrival/user diverged under a route-mix change", i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestScheduleSessionRules pins the gating: first request per user is
// register, and no per-place analytics read precedes the user's first
// profile_put.
func TestScheduleSessionRules(t *testing.T) {
	spec := testSpec()
	spec.ZipfS = 1.3 // skew so some users issue long sequences
	s := BuildSchedule(spec, Key{Seed: 99})
	if len(s.Requests) == 0 {
		t.Fatal("empty schedule")
	}
	seen := map[int]bool{}
	profiled := map[int]bool{}
	seq := map[int]int{}
	for _, req := range s.Requests {
		if want := seq[req.User]; req.UserSeq != want {
			t.Fatalf("user %d: got seq %d, want %d", req.User, req.UserSeq, want)
		}
		seq[req.User]++
		if !seen[req.User] {
			if req.Route != RouteRegister {
				t.Fatalf("user %d's first request is %s, want register", req.User, req.Route)
			}
			seen[req.User] = true
			continue
		}
		if req.Route == RouteRegister {
			t.Fatalf("user %d registers twice in one phase", req.User)
		}
		if analyticsGated(req.Route) && !profiled[req.User] {
			t.Fatalf("user %d issues %s before any profile_put", req.User, req.Route)
		}
		if req.Route == RouteProfilePut {
			profiled[req.User] = true
		}
	}
}

// TestScheduleZipfSkew sanity-checks that the Zipf option actually skews:
// the most popular user gets several times the uniform share.
func TestScheduleZipfSkew(t *testing.T) {
	spec := testSpec()
	spec.ZipfS = 1.3
	s := BuildSchedule(spec, Key{Seed: 5})
	counts := map[int]int{}
	for _, req := range s.Requests {
		counts[req.User]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	uniform := float64(len(s.Requests)) / float64(spec.Users)
	if float64(max) < 3*uniform {
		t.Fatalf("zipf head got %d requests, expected > 3x the uniform share %.1f", max, uniform)
	}
}

// TestSpecValidate covers the rejection paths.
func TestSpecValidate(t *testing.T) {
	bad := []func(*Spec){
		func(s *Spec) { s.Users = 0 },
		func(s *Spec) { s.Mode = "both" },
		func(s *Spec) { s.Mode = "open"; s.RatePerSec = 0 },
		func(s *Spec) { s.ThinkTimeMS = 0 },
		func(s *Spec) { s.Concurrency = 0 },
		func(s *Spec) { s.ZipfS = 0.5 },
		func(s *Spec) { s.RouteMix = nil },
		func(s *Spec) { s.RouteMix = map[string]float64{"bogus": 1} },
		func(s *Spec) { s.RouteMix = map[string]float64{RouteRegister: 1} },
		func(s *Spec) { s.RouteMix = map[string]float64{RouteDiscover: -1} },
		func(s *Spec) { s.TraceDays = 0 },
		func(s *Spec) { s.ObsIntervalSec = 0 },
		func(s *Spec) { s.Ramp = &RampSpec{StartRPS: 10, MaxRPS: 5, Factor: 2, StepDurationSec: 5} },
		func(s *Spec) { s.Ramp = &RampSpec{StartRPS: 10, MaxRPS: 50, Factor: 1, StepDurationSec: 5} },
	}
	for i, mutate := range bad {
		s := DefaultSpec()
		mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid spec passed validation", i)
		}
	}
	if err := DefaultSpec().Validate(); err != nil {
		t.Fatalf("default spec invalid: %v", err)
	}
}

// TestSpecHashSensitivity pins that the hash tracks content.
func TestSpecHashSensitivity(t *testing.T) {
	a, b := DefaultSpec(), DefaultSpec()
	if a.Hash() != b.Hash() {
		t.Fatal("identical specs hash differently")
	}
	b.Users++
	if a.Hash() == b.Hash() {
		t.Fatal("different specs hash the same")
	}
}
