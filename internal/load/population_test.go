package load

import (
	"reflect"
	"testing"
)

func popSpec() *Spec {
	s := DefaultSpec()
	s.Users = 50
	return s
}

// TestPopulationOrderIndependent is the lazy-generation contract: a user's
// synthesized payloads are identical whether the user is generated alone,
// after many others, or re-generated after cache eviction.
func TestPopulationOrderIndependent(t *testing.T) {
	spec := popSpec()
	key := Key{Seed: 31}

	solo := NewPopulation(spec, key)
	direct, err := solo.User(7)
	if err != nil {
		t.Fatal(err)
	}

	warmed := NewPopulation(spec, key)
	for i := 0; i < 7; i++ {
		if _, err := warmed.User(i); err != nil {
			t.Fatal(err)
		}
	}
	after, err := warmed.User(7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, after) {
		t.Fatal("user 7 differs when generated after users 0..6")
	}

	// Eviction and re-synthesis must reproduce the same user.
	warmed.mu.Lock()
	delete(warmed.cache, 7)
	warmed.mu.Unlock()
	again, err := warmed.User(7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, again) {
		t.Fatal("user 7 differs after eviction and re-synthesis")
	}
}

// TestPopulationPayloads sanity-checks the synthesized artifacts: non-empty
// monotone trace, validated profiles covering the trace days, and query
// places that the first profile really contains.
func TestPopulationPayloads(t *testing.T) {
	spec := popSpec()
	spec.TraceDays = 2
	pop := NewPopulation(spec, Key{Seed: 11})

	for i := 0; i < 5; i++ {
		u, err := pop.User(i)
		if err != nil {
			t.Fatal(err)
		}
		wantObs := spec.TraceDays * 24 * 3600 / spec.ObsIntervalSec
		if len(u.Trace) != wantObs {
			t.Fatalf("user %d: %d observations, want %d", i, len(u.Trace), wantObs)
		}
		for j := 1; j < len(u.Trace); j++ {
			if !u.Trace[j].At.After(u.Trace[j-1].At) {
				t.Fatalf("user %d: trace times not strictly increasing at %d", i, j)
			}
		}
		if len(u.Profiles) == 0 || len(u.Profiles) > spec.TraceDays {
			t.Fatalf("user %d: %d profiles for %d days", i, len(u.Profiles), spec.TraceDays)
		}
		for _, p := range u.Profiles {
			if err := p.Validate(); err != nil {
				t.Fatalf("user %d: profile %s invalid: %v", i, p.Date, err)
			}
			if p.UserID != u.ID {
				t.Fatalf("user %d: profile owned by %q", i, p.UserID)
			}
		}
		if len(u.QueryPlaces) == 0 {
			t.Fatalf("user %d: no query places", i)
		}
		first := map[string]bool{}
		for _, pid := range u.Profiles[0].DistinctPlaces() {
			first[pid] = true
		}
		for _, pid := range u.QueryPlaces {
			if !first[pid] {
				t.Fatalf("user %d: query place %q not in first profile", i, pid)
			}
		}
	}
}

// TestPopulationCacheBound pins the eviction policy actually bounds
// residency.
func TestPopulationCacheBound(t *testing.T) {
	spec := popSpec()
	pop := NewPopulation(spec, Key{Seed: 3})
	pop.maxKeep = 4
	for i := 0; i < 10; i++ {
		if _, err := pop.User(i); err != nil {
			t.Fatal(err)
		}
	}
	pop.mu.Lock()
	defer pop.mu.Unlock()
	if len(pop.cache) != 4 {
		t.Fatalf("cache holds %d users, want 4", len(pop.cache))
	}
}

// TestUserIdentityStable pins the identity scheme the server keys devices
// on.
func TestUserIdentityStable(t *testing.T) {
	id, imei, email := UserIdentity(1234567)
	if id != "lu1234567" || imei != "imei-lu1234567" || email != "lu1234567@load.invalid" {
		t.Fatalf("unexpected identity: %s %s %s", id, imei, email)
	}
}
