package load

import (
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestRecorderMergeEquivalence pins the satellite property: recording a
// stream of observations sharded across K per-worker recorders and merging
// the snapshots produces exactly the single-recorder snapshot — counts and
// sums exact, bucket by bucket, min/max folded.
func TestRecorderMergeEquivalence(t *testing.T) {
	routes := AllRoutes()
	r := rand.New(rand.NewSource(17))

	single := NewRecorder(routes)
	const workers = 7
	sharded := make([]*Recorder, workers)
	for i := range sharded {
		sharded[i] = NewRecorder(routes)
	}

	for i := 0; i < 20000; i++ {
		route := routes[r.Intn(len(routes))]
		d := time.Duration(r.Int63n(5_000_000)) * time.Microsecond
		o := Outcome(r.Intn(int(numOutcomes)))
		single.Observe(route, d, o)
		sharded[i%workers].Observe(route, d, o)
	}

	snaps := make([]RecorderSnapshot, workers)
	for i, rec := range sharded {
		snaps[i] = rec.Snapshot()
	}
	merged, err := MergeSnapshots(snaps...)
	if err != nil {
		t.Fatal(err)
	}
	want := single.Snapshot()
	if !reflect.DeepEqual(merged, want) {
		t.Fatal("merged sharded snapshot != single-stream snapshot")
	}
}

// TestRecorderQuantileBracketed pins that the report quantiles bracket the
// true order statistics of the recorded stream: each estimate lies within
// the bucket that contains the true quantile, and the estimates are
// monotone.
func TestRecorderQuantileBracketed(t *testing.T) {
	rec := NewRecorder([]string{RouteDiscover})
	r := rand.New(rand.NewSource(4))
	var vals []int64
	for i := 0; i < 5000; i++ {
		v := r.Int63n(2_000_000)
		vals = append(vals, v)
		rec.Observe(RouteDiscover, time.Duration(v)*time.Microsecond, OutcomeOK)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	snap := rec.Snapshot()[RouteDiscover].Latency

	bounds := LatencyBuckets()
	bracket := func(v int64) (lo, hi int64) {
		i := sort.Search(len(bounds), func(i int) bool { return v <= bounds[i] })
		lo = snap.Min
		if i > 0 {
			lo = bounds[i-1]
		}
		hi = snap.Max
		if i < len(bounds) && bounds[i] < hi {
			hi = bounds[i]
		}
		if lo < snap.Min {
			lo = snap.Min
		}
		return lo, hi
	}

	prev := 0.0
	for _, q := range []float64{0.5, 0.99, 0.999} {
		rank := int(q * float64(len(vals)))
		if rank < 1 {
			rank = 1
		}
		truth := vals[rank-1]
		est := snap.Quantile(q)
		lo, hi := bracket(truth)
		if est < float64(lo) || est > float64(hi) {
			t.Fatalf("q=%v: estimate %v outside bucket [%d,%d] of true order statistic %d", q, est, lo, hi, truth)
		}
		if est < prev {
			t.Fatalf("quantile estimates not monotone at q=%v", q)
		}
		prev = est
	}
}

// TestRecorderConcurrent hammers one recorder from many goroutines with
// concurrent snapshots — the -race gate for the recording path.
func TestRecorderConcurrent(t *testing.T) {
	rec := NewRecorder(AllRoutes())
	routes := AllRoutes()
	var wg sync.WaitGroup
	const goroutines, per = 8, 2000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < per; i++ {
				rec.Observe(routes[r.Intn(len(routes))], time.Duration(r.Int63n(1000))*time.Microsecond, Outcome(r.Intn(int(numOutcomes))))
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				rec.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(done)

	var total uint64
	for _, s := range rec.Snapshot() {
		total += s.Requests()
		if s.Latency.Count != s.Requests() {
			t.Fatalf("route %s: histogram count %d != outcome total %d", s.Route, s.Latency.Count, s.Requests())
		}
	}
	if total != goroutines*per {
		t.Fatalf("recorded %d observations, want %d", total, goroutines*per)
	}
}

// TestMergeSnapshotsRejectsMismatchedBounds pins the error path.
func TestMergeSnapshotsRejectsMismatchedBounds(t *testing.T) {
	a := NewRecorder([]string{RouteDiscover}).Snapshot()
	b := RecorderSnapshot{RouteDiscover: {Route: RouteDiscover}}
	a[RouteDiscover].Latency.Counts[0] = 0 // keep a non-empty
	bad := b[RouteDiscover]
	bad.Latency.Bounds = []int64{1, 2, 3}
	bad.Latency.Counts = []uint64{0, 0, 0, 0}
	b[RouteDiscover] = bad
	if _, err := MergeSnapshots(a, b); err == nil {
		t.Fatal("merging mismatched bounds succeeded")
	}
}
