// Package obs is PMWare's dependency-free observability layer: a race-safe
// metrics registry of atomic counters, gauges, and fixed-bucket histograms,
// with labeled families, a consistent snapshot API, and an HTTP exposition
// handler (DESIGN.md §10).
//
// The registry is the shared vocabulary between the instrumented subsystems
// (HTTP serving, the storage engine, the PMS↔PCI sync link, the outbox) and
// the verification harness: every instrumented counter has a delta test that
// pins it to independently-known ground truth, so the numbers on /metrics are
// evidence, not decoration.
//
// Design constraints, in order:
//
//   - hot-path cost is one atomic op per event: callers resolve metric
//     handles once (at construction) and hold them; the registry's map plus
//     lock is only on the resolve path;
//   - everything is safe for concurrent use, including Snapshot during a
//     write storm (counters are monotone, so a racing snapshot is a valid
//     linearization point per metric);
//   - no dependencies beyond the standard library.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n events.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous value that can move both ways (queue depth,
// in-flight requests).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution of int64 observations (latencies
// in microseconds, batch sizes, byte counts — the unit is the metric's
// contract, named in the metric name). Count and sum are exact; quantiles
// are estimated from the bucket counts and always bracketed by the bounds of
// the bucket holding the requested rank (the property test pins this).
//
// All mutation is atomic: Observe touches one bucket counter, the count, the
// sum, and CAS-updates min/max — no locks on the hot path.
type Histogram struct {
	bounds []int64 // sorted upper bounds (inclusive); overflow bucket after
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
	min    atomic.Int64 // valid only when count > 0
	max    atomic.Int64
}

// NewHistogram returns a standalone histogram with the given bucket upper
// bounds, outside any registry. Consumers that own many short-lived
// histograms (the load harness keeps one per route per worker) use this
// directly and merge the snapshots afterwards.
func NewHistogram(bounds []int64) *Histogram { return newHistogram(bounds) }

func newHistogram(bounds []int64) *Histogram {
	bs := append([]int64(nil), bounds...)
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	h := &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
	h.min.Store(int64(^uint64(0) >> 1)) // MaxInt64
	h.max.Store(-int64(^uint64(0)>>1) - 1)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// ObserveDuration records d in microseconds — the convention every *_us
// histogram in the repo uses.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Microseconds()) }

// Snapshot captures the histogram's current state. Under concurrent writers
// the per-bucket counts, count, and sum are each individually exact but may
// be mutually torn by in-flight observations; quiesce first when asserting
// exact relations between them.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]int64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	if s.Count > 0 {
		s.Min, s.Max = h.min.Load(), h.max.Load()
	}
	return s
}

// ExpBuckets returns n exponentially growing bucket bounds starting at start
// and multiplying by factor — the shape latency and size distributions want.
func ExpBuckets(start int64, factor float64, n int) []int64 {
	if start < 1 {
		start = 1
	}
	if factor <= 1 {
		factor = 2
	}
	out := make([]int64, 0, n)
	v := float64(start)
	for i := 0; i < n; i++ {
		b := int64(v)
		if len(out) > 0 && b <= out[len(out)-1] {
			b = out[len(out)-1] + 1
		}
		out = append(out, b)
		v *= factor
	}
	return out
}

// LinearBuckets returns n bounds start, start+width, ...
func LinearBuckets(start, width int64, n int) []int64 {
	out := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, start+int64(i)*width)
	}
	return out
}

// DefaultLatencyBuckets spans 50us..~1.6s exponentially — wide enough for
// both in-memory handler latencies and fsync-bound commits.
func DefaultLatencyBuckets() []int64 { return ExpBuckets(50, 2, 16) }

// Registry holds named metrics. Names follow the convention
// subsystem_metric_unit[_total]; labeled family members are stored under
// name{label="value"}. Get-or-create is idempotent; asking for an existing
// name with a different metric kind (or different histogram bounds) panics —
// that is a programming error, not a runtime condition.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

var (
	defaultOnce sync.Once
	defaultReg  *Registry
)

// Default returns the process-wide registry — what pmware-cloud exposes on
// /metrics. Instrumented packages fall back to it when no registry is
// injected; tests that assert exact deltas inject their own.
func Default() *Registry {
	defaultOnce.Do(func() { defaultReg = NewRegistry() })
	return defaultReg
}

func (r *Registry) checkFree(name, kind string) {
	if _, ok := r.counters[name]; ok && kind != "counter" {
		panic(fmt.Sprintf("obs: %q already registered as a counter", name))
	}
	if _, ok := r.gauges[name]; ok && kind != "gauge" {
		panic(fmt.Sprintf("obs: %q already registered as a gauge", name))
	}
	if _, ok := r.histograms[name]; ok && kind != "histogram" {
		panic(fmt.Sprintf("obs: %q already registered as a histogram", name))
	}
}

// Counter returns the counter with the given name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.checkFree(name, "counter")
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge with the given name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkFree(name, "gauge")
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram with the given name, creating it with the
// given bucket upper bounds if needed. Re-requesting an existing histogram
// with different bounds panics.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		checkBounds(name, h, bounds)
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		checkBounds(name, h, bounds)
		return h
	}
	r.checkFree(name, "histogram")
	h = newHistogram(bounds)
	r.histograms[name] = h
	return h
}

func checkBounds(name string, h *Histogram, bounds []int64) {
	if len(bounds) != len(h.bounds) {
		panic(fmt.Sprintf("obs: histogram %q re-registered with different bounds", name))
	}
	sorted := append([]int64(nil), bounds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, b := range sorted {
		if h.bounds[i] != b {
			panic(fmt.Sprintf("obs: histogram %q re-registered with different bounds", name))
		}
	}
}

// Labeled composes a family member name: Labeled("x_total", "route", "places")
// is `x_total{route="places"}`. One label is enough for this system; the
// member is an ordinary metric in the registry.
func Labeled(name, label, value string) string {
	return name + `{` + label + `="` + value + `"}`
}

// CounterVec is a labeled counter family: one label key, one counter per
// observed value. Resolving a member costs a registry lookup; hot paths
// should hold the resolved *Counter.
type CounterVec struct {
	r     *Registry
	name  string
	label string
}

// CounterVec returns the family with the given name and label key.
func (r *Registry) CounterVec(name, label string) *CounterVec {
	return &CounterVec{r: r, name: name, label: label}
}

// With returns the member counter for the label value.
func (v *CounterVec) With(value string) *Counter {
	return v.r.Counter(Labeled(v.name, v.label, value))
}

// Snapshot is a point-in-time copy of a registry. Each metric's value is
// individually consistent; relations across metrics can be torn by in-flight
// writers (quiesce before asserting cross-metric identities).
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// Counter returns a counter's value from the snapshot (0 when absent).
func (s Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// CounterDelta returns how much a counter grew from an earlier snapshot.
func (s Snapshot) CounterDelta(earlier Snapshot, name string) uint64 {
	return s.Counters[name] - earlier.Counters[name]
}

// FamilyTotal sums every member of a labeled family (counters whose name
// starts with name followed by "{").
func (s Snapshot) FamilyTotal(name string) uint64 {
	var total uint64
	prefix := name + "{"
	for n, v := range s.Counters {
		if n == name || strings.HasPrefix(n, prefix) {
			total += v
		}
	}
	return total
}

// HistogramSnapshot is a histogram's frozen state. Counts has one entry per
// bound plus the overflow bucket; bucket i covers (Bounds[i-1], Bounds[i]]
// (the first bucket covers (-inf, Bounds[0]]).
type HistogramSnapshot struct {
	Count  uint64   `json:"count"`
	Sum    int64    `json:"sum"`
	Min    int64    `json:"min"`
	Max    int64    `json:"max"`
	Bounds []int64  `json:"bounds"`
	Counts []uint64 `json:"counts"`
}

// Mean returns the exact average observation (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// bucketBounds returns bucket i's value range, tightened by the observed
// min/max so estimates never leave the data's hull.
func (s HistogramSnapshot) bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		lo = float64(s.Min)
	} else {
		lo = float64(s.Bounds[i-1])
	}
	if i < len(s.Bounds) {
		hi = float64(s.Bounds[i])
	} else {
		hi = float64(s.Max)
	}
	if lo < float64(s.Min) {
		lo = float64(s.Min)
	}
	if hi > float64(s.Max) {
		hi = float64(s.Max)
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// within the bucket containing the rank. The estimate is always within the
// bounds of that bucket (clamped to observed min/max), which is exactly the
// bracket the true order statistic lives in — the property test's invariant.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the order statistic (1-based, ceiling), matching the
	// "smallest value with cumulative count >= rank" definition the test's
	// sorted-slice reference uses.
	rank := uint64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum uint64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += c
		if cum >= rank {
			lo, hi := s.bucketBounds(i)
			frac := float64(rank-prev) / float64(c)
			return lo + (hi-lo)*frac
		}
	}
	return float64(s.Max)
}

// MergeHistogramSnapshots folds any number of snapshots (with identical
// bounds) into the snapshot a single-stream recording of all observations
// would have produced. Zero snapshots merge to an empty snapshot.
func MergeHistogramSnapshots(snaps ...HistogramSnapshot) (HistogramSnapshot, error) {
	if len(snaps) == 0 {
		return HistogramSnapshot{}, nil
	}
	out := snaps[0]
	for _, s := range snaps[1:] {
		var err error
		out, err = out.Merge(s)
		if err != nil {
			return HistogramSnapshot{}, err
		}
	}
	return out, nil
}

// Merge combines two snapshots of histograms with identical bounds: the
// result is the snapshot the union of observations would have produced
// (counts and sums add; min/max fold).
func (s HistogramSnapshot) Merge(o HistogramSnapshot) (HistogramSnapshot, error) {
	if len(s.Bounds) != len(o.Bounds) {
		return HistogramSnapshot{}, fmt.Errorf("obs: merging histograms with different bucket counts")
	}
	for i := range s.Bounds {
		if s.Bounds[i] != o.Bounds[i] {
			return HistogramSnapshot{}, fmt.Errorf("obs: merging histograms with different bounds")
		}
	}
	if s.Count == 0 {
		return o, nil
	}
	if o.Count == 0 {
		return s, nil
	}
	out := HistogramSnapshot{
		Count:  s.Count + o.Count,
		Sum:    s.Sum + o.Sum,
		Min:    s.Min,
		Max:    s.Max,
		Bounds: append([]int64(nil), s.Bounds...),
		Counts: make([]uint64, len(s.Counts)),
	}
	if o.Min < out.Min {
		out.Min = o.Min
	}
	if o.Max > out.Max {
		out.Max = o.Max
	}
	for i := range s.Counts {
		out.Counts[i] = s.Counts[i] + o.Counts[i]
	}
	return out, nil
}
