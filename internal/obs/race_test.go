package obs

import (
	"fmt"
	"sync"
	"testing"
)

// TestRegistryConcurrency hammers one registry from many goroutines —
// counters, gauges, histogram observations, labeled-family resolution, and
// concurrent snapshots — and then asserts the final totals are exact. Run
// under -race (the CI race leg runs this package with the rest of ./...),
// this is the registry's thread-safety proof; run without, it is the
// lost-update check.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const perG = 2000

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Every goroutine resolves its own handles — the get-or-create
			// path races with siblings on the same names.
			c := r.Counter("hits_total")
			gauge := r.Gauge("depth")
			h := r.Histogram("obs_us", []int64{10, 100, 1000})
			vec := r.CounterVec("routed_total", "route")
			for i := 0; i < perG; i++ {
				c.Inc()
				gauge.Inc()
				h.Observe(int64(i % 1500))
				vec.With(fmt.Sprintf("r%d", i%3)).Inc()
				if i%500 == 0 {
					_ = r.Snapshot() // snapshots race the writers
				}
			}
			for i := 0; i < perG/2; i++ {
				gauge.Dec()
			}
		}()
	}
	wg.Wait()

	s := r.Snapshot()
	const total = goroutines * perG
	if got := s.Counter("hits_total"); got != total {
		t.Errorf("hits_total = %d, want %d (lost updates)", got, total)
	}
	if got := s.Gauges["depth"]; got != total/2 {
		t.Errorf("depth = %d, want %d", got, total/2)
	}
	h := s.Histograms["obs_us"]
	if h.Count != total {
		t.Errorf("histogram count = %d, want %d", h.Count, total)
	}
	var perGSum int64
	for i := 0; i < perG; i++ {
		perGSum += int64(i % 1500)
	}
	if h.Sum != perGSum*goroutines {
		t.Errorf("histogram sum = %d, want %d", h.Sum, perGSum*goroutines)
	}
	var bucketSum uint64
	for _, c := range h.Counts {
		bucketSum += c
	}
	if bucketSum != total {
		t.Errorf("bucket counts sum to %d, want %d", bucketSum, total)
	}
	if got := s.FamilyTotal("routed_total"); got != total {
		t.Errorf("routed_total family = %d, want %d", got, total)
	}
	for i := 0; i < 3; i++ {
		want := uint64(0)
		for j := 0; j < perG; j++ {
			if j%3 == i {
				want++
			}
		}
		want *= goroutines
		if got := s.Counter(Labeled("routed_total", "route", fmt.Sprintf("r%d", i))); got != want {
			t.Errorf("routed_total{r%d} = %d, want %d", i, got, want)
		}
	}
}
