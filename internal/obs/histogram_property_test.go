package obs

import (
	"math/rand"
	"slices"
	"sort"
	"testing"
)

// TestHistogramProperty drives randomized observation sets against three
// invariants:
//
//  1. recorded count and sum are exact;
//  2. every estimated quantile is bracketed by the bounds of the bucket that
//     contains the true order statistic (tightened by observed min/max);
//  3. Merge(snapshot(A), snapshot(B)) equals snapshot(A ∪ B).
func TestHistogramProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	quantiles := []float64{0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1}

	for trial := 0; trial < 60; trial++ {
		bounds := randomBounds(rng)
		h := newHistogram(bounds)
		n := 1 + rng.Intn(500)
		values := make([]int64, n)
		var sum int64
		for i := range values {
			v := randomValue(rng)
			values[i] = v
			sum += v
			h.Observe(v)
		}
		s := h.Snapshot()

		// (1) count/sum exact.
		if s.Count != uint64(n) || s.Sum != sum {
			t.Fatalf("trial %d: count/sum = %d/%d, want %d/%d", trial, s.Count, s.Sum, n, sum)
		}
		sorted := slices.Clone(values)
		slices.Sort(sorted)
		if s.Min != sorted[0] || s.Max != sorted[n-1] {
			t.Fatalf("trial %d: min/max = %d/%d, want %d/%d", trial, s.Min, s.Max, sorted[0], sorted[n-1])
		}

		// (2) quantile estimates bracketed by the true bucket bounds.
		for _, q := range quantiles {
			rank := int(q * float64(n))
			if rank < 1 {
				rank = 1
			}
			if rank > n {
				rank = n
			}
			truth := sorted[rank-1]
			lo, hi := trueBucketBounds(s, truth)
			est := s.Quantile(q)
			if est < lo || est > hi {
				t.Fatalf("trial %d: Quantile(%g) = %g outside true bucket [%g, %g] (truth %d, bounds %v)",
					trial, q, est, lo, hi, truth, bounds)
			}
		}

		// (3) merge ≡ union.
		ha, hb, hu := newHistogram(bounds), newHistogram(bounds), newHistogram(bounds)
		split := rng.Intn(n + 1)
		for i, v := range values {
			if i < split {
				ha.Observe(v)
			} else {
				hb.Observe(v)
			}
			hu.Observe(v)
		}
		merged, err := ha.Snapshot().Merge(hb.Snapshot())
		if err != nil {
			t.Fatalf("trial %d: merge: %v", trial, err)
		}
		if !snapshotsEqual(merged, hu.Snapshot()) {
			t.Fatalf("trial %d: merge(A,B) != snapshot(A∪B):\n%+v\n%+v", trial, merged, hu.Snapshot())
		}
	}
}

// randomBounds picks a random bucket layout: linear, exponential, or a few
// arbitrary sorted cut points.
func randomBounds(rng *rand.Rand) []int64 {
	switch rng.Intn(3) {
	case 0:
		return LinearBuckets(int64(rng.Intn(50)), 1+int64(rng.Intn(200)), 2+rng.Intn(12))
	case 1:
		return ExpBuckets(1+int64(rng.Intn(20)), 1.5+rng.Float64()*2, 2+rng.Intn(12))
	default:
		n := 1 + rng.Intn(8)
		seen := map[int64]bool{}
		var out []int64
		for len(out) < n {
			v := int64(rng.Intn(4000) - 500)
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
}

// randomValue mixes small, mid, and large magnitudes (including negatives)
// so every bucket layout gets exercised at both ends.
func randomValue(rng *rand.Rand) int64 {
	switch rng.Intn(3) {
	case 0:
		return int64(rng.Intn(100) - 20)
	case 1:
		return int64(rng.Intn(5000))
	default:
		return int64(rng.Intn(1_000_000))
	}
}

// trueBucketBounds returns the (min/max-tightened) value range of the bucket
// the true order statistic falls in — the bracket the estimate must respect.
func trueBucketBounds(s HistogramSnapshot, truth int64) (lo, hi float64) {
	i := sort.Search(len(s.Bounds), func(i int) bool { return truth <= s.Bounds[i] })
	return s.bucketBounds(i)
}

func snapshotsEqual(a, b HistogramSnapshot) bool {
	if a.Count != b.Count || a.Sum != b.Sum || a.Min != b.Min || a.Max != b.Max {
		return false
	}
	if !slices.Equal(a.Bounds, b.Bounds) || !slices.Equal(a.Counts, b.Counts) {
		return false
	}
	return true
}
