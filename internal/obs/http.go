package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
)

// Handler serves the registry's snapshot. The default rendering is JSON (the
// Snapshot structure verbatim); `?format=text` renders sorted
// expvar-style `name value` lines, with histograms expanded into _count,
// _sum, _min, _max, and cumulative `_bucket{le="..."}` lines — greppable by
// the CI smoke check and by humans with curl.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := r.Snapshot()
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.Write([]byte(renderText(snap)))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(snap)
	})
}

// renderText flattens a snapshot into sorted `name value` lines.
func renderText(s Snapshot) string {
	lines := make([]string, 0, len(s.Counters)+len(s.Gauges)+8*len(s.Histograms))
	for name, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("%s %d", name, v))
	}
	for name, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("%s %d", name, v))
	}
	for name, h := range s.Histograms {
		lines = append(lines, fmt.Sprintf("%s_count %d", name, h.Count))
		lines = append(lines, fmt.Sprintf("%s_sum %d", name, h.Sum))
		if h.Count > 0 {
			lines = append(lines, fmt.Sprintf("%s_min %d", name, h.Min))
			lines = append(lines, fmt.Sprintf("%s_max %d", name, h.Max))
		}
		var cum uint64
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = fmt.Sprintf("%d", h.Bounds[i])
			}
			lines = append(lines, fmt.Sprintf(`%s_bucket{le="%s"} %d`, name, le, cum))
		}
	}
	sort.Strings(lines)
	var b strings.Builder
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}
