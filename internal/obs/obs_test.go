package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("x_total") != c {
		t.Fatal("get-or-create returned a different counter")
	}

	g := r.Gauge("depth")
	g.Set(7)
	g.Inc()
	g.Dec()
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestHistogramBasics(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_us", []int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 || s.Sum != 5126 {
		t.Fatalf("count/sum = %d/%d, want 5/5126", s.Count, s.Sum)
	}
	if s.Min != 5 || s.Max != 5000 {
		t.Fatalf("min/max = %d/%d, want 5/5000", s.Min, s.Max)
	}
	// Bucket semantics: bounds are inclusive upper bounds.
	want := []uint64{2, 2, 0, 1}
	for i, c := range s.Counts {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, c, want[i], s.Counts)
		}
	}
	h.ObserveDuration(250 * time.Microsecond)
	if got := h.Snapshot().Counts[2]; got != 1 {
		t.Fatalf("ObserveDuration(250us) landed wrong: buckets %v", h.Snapshot().Counts)
	}
}

func TestCounterVecAndFamilyTotal(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("req_total", "route")
	v.With("a").Add(3)
	v.With("b").Add(4)
	v.With("a").Inc()
	s := r.Snapshot()
	if got := s.Counter(`req_total{route="a"}`); got != 4 {
		t.Fatalf("member a = %d, want 4", got)
	}
	if got := s.FamilyTotal("req_total"); got != 8 {
		t.Fatalf("family total = %d, want 8", got)
	}
}

func TestKindCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("name")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge over a counter name did not panic")
		}
	}()
	r.Gauge("name")
}

func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total")
	c.Add(2)
	before := r.Snapshot()
	c.Add(5)
	after := r.Snapshot()
	if got := after.CounterDelta(before, "x_total"); got != 5 {
		t.Fatalf("delta = %d, want 5", got)
	}
	// A counter born after the first snapshot deltas from zero.
	r.Counter("y_total").Add(3)
	if got := r.Snapshot().CounterDelta(before, "y_total"); got != 3 {
		t.Fatalf("new-counter delta = %d, want 3", got)
	}
}

func TestHandlerJSONAndText(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total").Add(2)
	r.Gauge("g").Set(-3)
	r.Histogram("h_us", []int64{10, 100}).Observe(42)

	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["c_total"] != 2 || snap.Gauges["g"] != -3 {
		t.Fatalf("JSON snapshot wrong: %+v", snap)
	}
	if h := snap.Histograms["h_us"]; h.Count != 1 || h.Sum != 42 {
		t.Fatalf("JSON histogram wrong: %+v", snap.Histograms)
	}

	resp2, err := srv.Client().Get(srv.URL + "?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	data, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{"c_total 2", "g -3", "h_us_count 1", "h_us_sum 42", `h_us_bucket{le="100"} 1`, `h_us_bucket{le="+Inf"} 1`} {
		if !strings.Contains(text, want) {
			t.Errorf("text rendering missing %q:\n%s", want, text)
		}
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(50, 2, 4)
	want := []int64{50, 100, 200, 400}
	for i := range want {
		if exp[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", exp, want)
		}
	}
	lin := LinearBuckets(1, 2, 3)
	wantLin := []int64{1, 3, 5}
	for i := range wantLin {
		if lin[i] != wantLin[i] {
			t.Fatalf("LinearBuckets = %v, want %v", lin, wantLin)
		}
	}
	// Degenerate factor must still produce strictly increasing bounds.
	degen := ExpBuckets(1, 1.01, 5)
	for i := 1; i < len(degen); i++ {
		if degen[i] <= degen[i-1] {
			t.Fatalf("ExpBuckets not strictly increasing: %v", degen)
		}
	}
}
