package cloud

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/geo"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// streamServer is the stream-test harness: like testServer but exposing the
// Server so tests can reach the hub directly.
type streamServer struct {
	srv    *httptest.Server
	server *Server
	store  *Store
}

func newStreamServer(t *testing.T, opts ...ServerOption) *streamServer {
	t.Helper()
	now := simclock.Epoch
	store := NewStore(func() time.Time { return now })
	server := NewServer(store, opts...)
	ts := httptest.NewServer(server.Handler())
	t.Cleanup(func() {
		ts.Close()
		server.Close()
	})
	return &streamServer{srv: ts, server: server, store: store}
}

// register performs the registration handshake over raw HTTP and returns the
// bearer token and user id.
func (ss *streamServer) register(t *testing.T) (token, uid string) {
	t.Helper()
	resp, err := http.Post(ss.srv.URL+PathRegister, "application/json",
		strings.NewReader(`{"imei":"imei-9","email":"tester@example.com"}`))
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	defer resp.Body.Close()
	var rr RegisterResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatalf("register decode: %v", err)
	}
	return rr.Token, rr.UserID
}

// subscribeSSE opens the raw SSE subscription. The returned cancel tears the
// connection down; the FrameReader yields frames as they arrive.
func (ss *streamServer) subscribeSSE(t *testing.T, token, query, lastEventID string) (*events.FrameReader, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	u := ss.srv.URL + PathEventsSubscribe
	if query != "" {
		u += "?" + query
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		cancel()
		t.Fatalf("subscribe request: %v", err)
	}
	req.Header.Set("Authorization", "Bearer "+token)
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := ss.srv.Client().Do(req)
	if err != nil {
		cancel()
		t.Fatalf("subscribe: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		cancel()
		t.Fatalf("subscribe: http %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("subscribe Content-Type = %q, want text/event-stream", ct)
	}
	t.Cleanup(cancel)
	return events.NewFrameReader(resp.Body), cancel
}

// streamBody renders observation batches as the concatenated-JSON stream
// body.
func streamBody(t *testing.T, batches ...[]trace.GSMObservation) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, b := range batches {
		if err := json.NewEncoder(&buf).Encode(StreamBatch{Observations: b}); err != nil {
			t.Fatalf("encode batch: %v", err)
		}
	}
	return buf.Bytes()
}

// postStream sends a pre-rendered stream body and decodes the result.
func (ss *streamServer) postStream(t *testing.T, token string, body []byte) (StreamResult, *http.Response) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ss.srv.URL+PathObservationsStream, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("stream request: %v", err)
	}
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := ss.srv.Client().Do(req)
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	defer resp.Body.Close()
	var res StreamResult
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatalf("stream result decode: %v", err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return res, resp
}

// readFrames collects n non-control frames (control frames are returned too,
// but do not count) with a deadline enforced by the caller's cancel.
func readFrames(t *testing.T, fr *events.FrameReader, n int) []events.Frame {
	t.Helper()
	var out []events.Frame
	got := 0
	for got < n {
		f, err := fr.Next()
		if err != nil {
			t.Fatalf("frame read after %d/%d events: %v", got, n, err)
		}
		out = append(out, f)
		if f.Event != events.KindReset && f.Event != events.KindEvicted {
			got++
		}
	}
	return out
}

// TestStreamIngestEndToEnd streams a trace with two stays and checks the
// subscriber sees the place transitions (entry, exit, route start, entry) in
// sequence order while the trace lands persisted and delta-sync compatible.
func TestStreamIngestEndToEnd(t *testing.T) {
	ss := newStreamServer(t)
	token, uid := ss.register(t)
	fr, cancel := ss.subscribeSSE(t, token, "", "")
	defer cancel()

	obs := oscillatingTrace()
	res, resp := ss.postStream(t, token, streamBody(t, obs[:30], obs[30:31], nil, obs[31:]))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: http %d", resp.StatusCode)
	}
	if res.Appended != len(obs) {
		t.Errorf("Appended = %d, want %d", res.Appended, len(obs))
	}
	if res.TraceLen != int64(len(obs)) || res.TraceHash != TraceHash(obs) {
		t.Errorf("trace position = (%d,%d), want (%d,%d)", res.TraceLen, res.TraceHash, len(obs), TraceHash(obs))
	}
	if res.Events != 4 {
		t.Errorf("Events = %d, want 4 (entry, exit, route start, entry)", res.Events)
	}
	if st := ss.store.TraceStatusFor(uid); st.Len != int64(len(obs)) {
		t.Errorf("persisted trace len = %d, want %d", st.Len, len(obs))
	}

	frames := readFrames(t, fr, 4)
	wantKinds := []string{events.KindPlaceEntry, events.KindPlaceExit, events.KindRouteStart, events.KindPlaceEntry}
	for i, f := range frames {
		if f.Event != wantKinds[i] {
			t.Errorf("frame %d kind = %q, want %q", i, f.Event, wantKinds[i])
		}
		ev, err := f.DecodeEvent()
		if err != nil {
			t.Fatalf("frame %d decode: %v", i, err)
		}
		if ev.Seq != uint64(i+1) {
			t.Errorf("frame %d seq = %d, want %d", i, ev.Seq, i+1)
		}
		if ev.UserID != uid {
			t.Errorf("frame %d user = %q, want %q", i, ev.UserID, uid)
		}
	}

	// An exit pairs with its entry: Start matches the first entry's At.
	entry, _ := frames[0].DecodeEvent()
	exit, _ := frames[1].DecodeEvent()
	if !exit.Start.Equal(entry.At) {
		t.Errorf("exit.Start = %v, want entry.At %v", exit.Start, entry.At)
	}
}

// TestStreamResumesAcrossRequests pins that a second stream request extends
// the same trace and detector state: no transition is re-published and the
// sequence keeps counting from where the first request left off.
func TestStreamResumesAcrossRequests(t *testing.T) {
	ss := newStreamServer(t)
	token, _ := ss.register(t)
	fr, cancel := ss.subscribeSSE(t, token, "", "")
	defer cancel()

	obs := oscillatingTrace()
	res1, _ := ss.postStream(t, token, streamBody(t, obs[:50]))
	res2, _ := ss.postStream(t, token, streamBody(t, obs[50:]))
	if res1.Events+res2.Events != 4 {
		t.Errorf("split stream events = %d+%d, want 4 total", res1.Events, res2.Events)
	}
	if res2.TraceLen != int64(len(obs)) {
		t.Errorf("TraceLen after second stream = %d, want %d", res2.TraceLen, len(obs))
	}
	frames := readFrames(t, fr, 4)
	for i, f := range frames {
		ev, err := f.DecodeEvent()
		if err != nil {
			t.Fatalf("frame %d decode: %v", i, err)
		}
		if ev.Seq != uint64(i+1) {
			t.Errorf("frame %d seq = %d, want %d (no re-publication across requests)", i, ev.Seq, i+1)
		}
	}
}

// TestStreamExemptFromMaxBody is the satellite regression: a stream whose
// cumulative body far exceeds -max-body stays open and ingests everything,
// while the batch endpoints still enforce the cap.
func TestStreamExemptFromMaxBody(t *testing.T) {
	const cap = 2048
	ss := newStreamServer(t, WithMaxBodyBytes(cap))
	token, _ := ss.register(t)

	// ~200 observations across many batches: far more than cap bytes.
	var batches [][]trace.GSMObservation
	for i := 0; i < 20; i++ {
		var b []trace.GSMObservation
		for j := 0; j < 10; j++ {
			b = append(b, cellObs(i*10+j, 1+(i*10+j)%3))
		}
		batches = append(batches, b)
	}
	body := streamBody(t, batches...)
	if len(body) <= 4*cap {
		t.Fatalf("test body only %d bytes; grow it past the cap (%d)", len(body), cap)
	}
	res, resp := ss.postStream(t, token, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream with %d-byte body under max-body %d: http %d", len(body), cap, resp.StatusCode)
	}
	if res.Appended != 200 {
		t.Errorf("Appended = %d, want 200", res.Appended)
	}

	// Control: the non-streaming endpoint still rejects oversized bodies.
	big := DiscoverPlacesRequest{Observations: make([]trace.GSMObservation, 0, 512)}
	for i := 0; i < 512; i++ {
		big.Observations = append(big.Observations, cellObs(1000+i, 5))
	}
	payload, _ := json.Marshal(big)
	if int64(len(payload)) <= cap {
		t.Fatalf("control body only %d bytes", len(payload))
	}
	req, _ := http.NewRequest(http.MethodPost, ss.srv.URL+PathPlacesDiscover, bytes.NewReader(payload))
	req.Header.Set("Authorization", "Bearer "+token)
	req.Header.Set("Content-Type", "application/json")
	cresp, err := ss.srv.Client().Do(req)
	if err != nil {
		t.Fatalf("control discover: %v", err)
	}
	defer cresp.Body.Close()
	io.Copy(io.Discard, cresp.Body)
	if cresp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized discover: http %d, want 413 (max-body still enforced)", cresp.StatusCode)
	}
}

// TestStreamOutOfOrderConflict pins the 409 on appends that would break the
// trace's time order, both within a batch and against the persisted tail.
func TestStreamOutOfOrderConflict(t *testing.T) {
	ss := newStreamServer(t)
	token, uid := ss.register(t)

	_, resp := ss.postStream(t, token, streamBody(t, []trace.GSMObservation{cellObs(10, 1), cellObs(5, 2)}))
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("in-batch disorder: http %d, want 409", resp.StatusCode)
	}
	if st := ss.store.TraceStatusFor(uid); st.Len != 0 {
		t.Errorf("disordered batch persisted %d observations", st.Len)
	}

	if _, resp := ss.postStream(t, token, streamBody(t, []trace.GSMObservation{cellObs(10, 1)})); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed append: http %d", resp.StatusCode)
	}
	_, resp = ss.postStream(t, token, streamBody(t, []trace.GSMObservation{cellObs(3, 1)}))
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("append before persisted tail: http %d, want 409", resp.StatusCode)
	}
	if st := ss.store.TraceStatusFor(uid); st.Len != 1 {
		t.Errorf("trace len = %d, want 1", st.Len)
	}
}

// TestStreamBadPayload pins the mid-stream garbage path: everything decoded
// before the bad batch is durable, the response is a 400.
func TestStreamBadPayload(t *testing.T) {
	ss := newStreamServer(t)
	token, uid := ss.register(t)
	body := append(streamBody(t, []trace.GSMObservation{cellObs(1, 1)}), []byte("{nonsense")...)
	_, resp := ss.postStream(t, token, body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage batch: http %d, want 400", resp.StatusCode)
	}
	if st := ss.store.TraceStatusFor(uid); st.Len != 1 {
		t.Errorf("observations before the garbage: len = %d, want 1", st.Len)
	}
}

// TestClientStreamObservations pins the client-side streaming upload: the
// trace streams in batches over one chunked request, repeat calls are
// cursor-aware (only the new tail ships, an up-to-date client streams
// nothing), and a later DiscoverPlaces delta-syncs from the streamed position
// instead of falling back to a full upload.
func TestClientStreamObservations(t *testing.T) {
	ss := newStreamServer(t)
	c := NewClient(ss.srv.URL, "imei-9", "tester@example.com", ss.srv.Client())
	if err := c.Register(); err != nil {
		t.Fatal(err)
	}
	obs := oscillatingTrace()

	res, err := c.StreamObservations(context.Background(), obs[:60], 16)
	if err != nil {
		t.Fatalf("first stream: %v", err)
	}
	if res.Appended != 60 || res.TraceLen != 60 {
		t.Errorf("first stream appended %d to len %d, want 60/60", res.Appended, res.TraceLen)
	}

	// Full trace handed in again: only the unacknowledged tail streams.
	res, err = c.StreamObservations(context.Background(), obs, 16)
	if err != nil {
		t.Fatalf("tail stream: %v", err)
	}
	if want := len(obs) - 60; res.Appended != want {
		t.Errorf("tail stream appended %d, want %d", res.Appended, want)
	}
	if res.TraceLen != int64(len(obs)) || res.TraceHash != TraceHash(obs) {
		t.Errorf("trace position = (%d,%d), want (%d,%d)", res.TraceLen, res.TraceHash, len(obs), TraceHash(obs))
	}

	// Up to date: nothing streams, the current position comes back.
	res, err = c.StreamObservations(context.Background(), obs, 16)
	if err != nil {
		t.Fatalf("no-op stream: %v", err)
	}
	if res.Appended != 0 || res.TraceLen != int64(len(obs)) {
		t.Errorf("no-op stream appended %d to len %d, want 0/%d", res.Appended, res.TraceLen, len(obs))
	}

	// Cursor interop: discovery delta-syncs off the streamed position.
	// Client counters live in the shared default registry, so measure the
	// deltas around the call rather than absolute values.
	baseDeltas, baseFallbacks := c.m.deltaUploads.Value(), c.m.deltaFallbacks.Value()
	if _, err := c.DiscoverPlaces(obs); err != nil {
		t.Fatalf("discover after stream: %v", err)
	}
	if d := c.m.deltaUploads.Value() - baseDeltas; d != 1 {
		t.Errorf("deltaUploads delta = %d, want 1 (discover should ride the streamed cursor)", d)
	}
	if f := c.m.deltaFallbacks.Value() - baseFallbacks; f != 0 {
		t.Errorf("deltaFallbacks delta = %d, want 0", f)
	}
}

// TestSubscribeGranularityClamp pins per-subscriber privacy clamping: the
// same published event arrives at different positional precision per the
// subscriber's granularity tier, and the hub keeps full precision.
func TestSubscribeGranularityClamp(t *testing.T) {
	ss := newStreamServer(t)
	token, uid := ss.register(t)

	area, cancelA := ss.subscribeSSE(t, token, "granularity=area", "")
	defer cancelA()
	room, cancelR := ss.subscribeSSE(t, token, "granularity=room", "")
	defer cancelR()

	ev := events.Event{
		Type:           events.KindPlaceEntry,
		UserID:         uid,
		At:             simclock.Epoch,
		Center:         geo.LatLng{Lat: 48.137154, Lng: 11.576124},
		AccuracyMeters: 30,
	}
	if !ss.server.Hub().Publish(ev) {
		t.Fatal("publish rejected")
	}

	gotArea, err := readFrames(t, area, 1)[0].DecodeEvent()
	if err != nil {
		t.Fatalf("area decode: %v", err)
	}
	gotRoom, err := readFrames(t, room, 1)[0].DecodeEvent()
	if err != nil {
		t.Fatalf("room decode: %v", err)
	}
	wantArea := events.Degrade(ev, core.GranularityArea)
	if gotArea.Center != wantArea.Center || gotArea.AccuracyMeters != wantArea.AccuracyMeters {
		t.Errorf("area event = (%v, %v), want (%v, %v)",
			gotArea.Center, gotArea.AccuracyMeters, wantArea.Center, wantArea.AccuracyMeters)
	}
	if gotRoom.Center != ev.Center {
		t.Errorf("room event center = %v, want full precision %v", gotRoom.Center, ev.Center)
	}
	if gotArea.Center == gotRoom.Center {
		t.Error("area and room subscribers saw identical coordinates; clamp is not per-subscriber")
	}

	// Bad granularity is rejected up front.
	req, _ := http.NewRequest(http.MethodGet, ss.srv.URL+PathEventsSubscribe+"?granularity=exact", nil)
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := ss.srv.Client().Do(req)
	if err != nil {
		t.Fatalf("bad granularity request: %v", err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("granularity=exact: http %d, want 400", resp.StatusCode)
	}
}

// TestSubscribeResumeOverHTTP pins Last-Event-ID resume through the HTTP
// layer: a reconnect after N events sees exactly the events after its
// Last-Event-ID, and a stale id gets the reset control frame.
func TestSubscribeResumeOverHTTP(t *testing.T) {
	ss := newStreamServer(t, WithEventQueue(0, 8))
	token, uid := ss.register(t)

	for i := 0; i < 20; i++ {
		ss.server.Hub().Publish(events.Event{Type: events.KindPlaceEntry, UserID: uid, Label: fmt.Sprintf("e%d", i)})
	}
	ss.server.Hub().Sync()

	// Resume within the ring (history 8 holds 13..20).
	fr, cancel := ss.subscribeSSE(t, token, "", "15")
	got := readFrames(t, fr, 5)
	for i, f := range got {
		ev, err := f.DecodeEvent()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if ev.Seq != uint64(16+i) {
			t.Errorf("resumed frame %d seq = %d, want %d", i, ev.Seq, 16+i)
		}
	}
	cancel()

	// Resume from before the ring: first frame is the reset control carrying
	// the head sequence.
	fr2, cancel2 := ss.subscribeSSE(t, token, "", "2")
	defer cancel2()
	f, err := fr2.Next()
	if err != nil {
		t.Fatalf("reset frame: %v", err)
	}
	if f.Event != events.KindReset {
		t.Fatalf("first frame after stale resume = %q, want reset", f.Event)
	}
	var payload struct {
		Seq uint64 `json:"seq"`
	}
	if err := json.Unmarshal(f.Data, &payload); err != nil || payload.Seq != 20 {
		t.Errorf("reset payload = %s (err %v), want seq 20", f.Data, err)
	}
}
