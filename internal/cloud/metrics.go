package cloud

import (
	"log"
	"net/http"
	"time"

	"repro/internal/obs"
)

// serverMetrics is the PCI front end's metric bundle (DESIGN.md §10).
//
// Family inventory:
//
//	pci_http_requests_total{route=...}       requests served, per named route
//	pci_http_request_duration_us{route=...}  per-route handler latency histogram
//	pci_http_responses_total{class=...}      responses by status class (2xx/3xx/4xx/5xx)
//	pci_http_in_flight                       gauge of requests currently in handlers
//	pci_http_slow_requests_total             requests over the slow-request threshold
//	pci_wire_encoding_total{codec=...}       negotiated response bodies by codec (json/bin)
type serverMetrics struct {
	reg       *obs.Registry
	requests  *obs.CounterVec
	responses *obs.CounterVec
	inFlight  *obs.Gauge
	slow      *obs.Counter
	wireJSON  *obs.Counter
	wireBin   *obs.Counter
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	if reg == nil {
		reg = obs.Default()
	}
	encodings := reg.CounterVec("pci_wire_encoding_total", "codec")
	return &serverMetrics{
		reg:       reg,
		requests:  reg.CounterVec("pci_http_requests_total", "route"),
		responses: reg.CounterVec("pci_http_responses_total", "class"),
		inFlight:  reg.Gauge("pci_http_in_flight"),
		slow:      reg.Counter("pci_http_slow_requests_total"),
		// Both labels resolved eagerly so a fresh boot exposes the family
		// (and the hot path pays one atomic add, not a map lookup).
		wireJSON: encodings.With("json"),
		wireBin:  encodings.With("bin"),
	}
}

// WithMetrics registers the server's pci_http_* families in reg instead of
// the process-wide default registry. Tests inject a private registry here for
// exact delta assertions.
func WithMetrics(reg *obs.Registry) ServerOption {
	return func(s *Server) { s.metrics = newServerMetrics(reg) }
}

// WithSlowRequestLog logs a structured line (and bumps
// pci_http_slow_requests_total) for every request whose handler ran longer
// than threshold. threshold <= 0 disables the log. A nil logger means the
// process default.
func WithSlowRequestLog(threshold time.Duration, logger *log.Logger) ServerOption {
	return func(s *Server) {
		s.slowThreshold = threshold
		s.slowLog = logger
	}
}

// statusRecorder captures the status code a handler wrote so the middleware
// can classify the response after the fact. A handler that never calls
// WriteHeader implicitly wrote 200.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so instrumented streaming routes
// (SSE) keep http.Flusher through the middleware.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the underlying writer to http.NewResponseController.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

func statusClass(code int) string {
	switch {
	case code >= 500:
		return "5xx"
	case code >= 400:
		return "4xx"
	case code >= 300:
		return "3xx"
	default:
		return "2xx"
	}
}

// instrument wraps one named route with the serving metrics: request count
// and latency per route, response count per status class, the in-flight
// gauge, and the slow-request log. Handles are resolved here, once per route
// at mux-registration time, so the per-request cost is a handful of atomic
// operations.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	m := s.metrics
	reqs := m.requests.With(route)
	dur := m.reg.Histogram(obs.Labeled("pci_http_request_duration_us", "route", route), obs.DefaultLatencyBuckets())
	return func(w http.ResponseWriter, r *http.Request) {
		m.inFlight.Inc()
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		elapsed := time.Since(start)
		m.inFlight.Dec()
		reqs.Inc()
		dur.ObserveDuration(elapsed)
		m.responses.With(statusClass(rec.status)).Inc()
		if s.slowThreshold > 0 && elapsed >= s.slowThreshold {
			m.slow.Inc()
			logger := s.slowLog
			if logger == nil {
				logger = log.Default()
			}
			logger.Printf("slow-request route=%s method=%s path=%s status=%d duration_ms=%d threshold_ms=%d",
				route, r.Method, r.URL.Path, rec.status, elapsed.Milliseconds(), s.slowThreshold.Milliseconds())
		}
	}
}
