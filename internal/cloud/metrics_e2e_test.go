package cloud

import (
	"testing"
)

// TestE2EMetricsDeltas runs the chaos soak with every layer reporting into
// one private registry and pins the whole-pipeline counters to ground truth
// the instrumentation cannot see:
//
//   - the fault injector's own accounting (faultnet.Stats) for the client's
//     attempt/conn-error/5xx counters and the server's request counter;
//   - the outbox's lifetime counters and the cloud store's recovered profile
//     set for the pms_outbox_* families.
//
// Every assertion is an exact equality, not a non-zero check.
func TestE2EMetricsDeltas(t *testing.T) {
	run := runChaosPipeline(t, true)
	st := run.fault.Stats()
	s := run.reg.Snapshot()

	// Client retry layer vs the fault injector. Every attempt is exactly one
	// RoundTrip through the faultnet transport; injected connection errors
	// and synthesized 5xx never reach the real server, so the three pairs
	// must match one-for-one.
	if got := s.Counter("client_attempts_total"); got != uint64(st.Requests) {
		t.Errorf("client_attempts_total = %d, faultnet saw %d requests", got, st.Requests)
	}
	if got := s.Counter("client_conn_errors_total"); got != uint64(st.ConnErrors) {
		t.Errorf("client_conn_errors_total = %d, faultnet injected %d", got, st.ConnErrors)
	}
	if got := s.Counter("client_http_5xx_total"); got != uint64(st.ServerError) {
		t.Errorf("client_http_5xx_total = %d, faultnet synthesized %d", got, st.ServerError)
	}
	// Retries = attempts beyond the first per call. Under a ~30% fault rate
	// there must have been some, and never more than the faults seen.
	retries := s.Counter("client_retries_total")
	if retries == 0 {
		t.Error("client_retries_total = 0 under a 30% fault rate")
	}
	if faults := uint64(st.Faults()); retries > faults {
		t.Errorf("client_retries_total = %d exceeds total faults %d", retries, faults)
	}
	if sleeps := s.Counter("client_backoff_sleeps_total"); sleeps != retries {
		t.Errorf("client_backoff_sleeps_total = %d, want one per retry (%d)", sleeps, retries)
	}

	// Server middleware vs the fault injector: only forwarded requests reach
	// the real instance, and each lands on exactly one instrumented route.
	if got := s.FamilyTotal("pci_http_requests_total"); got != uint64(st.Forwarded) {
		t.Errorf("pci_http_requests_total family = %d, faultnet forwarded %d", got, st.Forwarded)
	}
	if got := s.FamilyTotal("pci_http_responses_total"); got != uint64(st.Forwarded) {
		t.Errorf("pci_http_responses_total family = %d, faultnet forwarded %d", got, st.Forwarded)
	}
	if got := s.Gauges["pci_http_in_flight"]; got != 0 {
		t.Errorf("pci_http_in_flight = %d after the run, want 0", got)
	}

	// Outbox counters vs the outbox's own lifetime accounting and the
	// profiles that actually reached the cloud. Every upload routes through
	// the outbox, the run ends with recovered connectivity, and a synced day
	// is never re-enqueued — so enqueued == flushed == stored profiles.
	ob := run.svc.Outbox()
	if got := s.Counter("pms_outbox_enqueued_total"); got != uint64(ob.Enqueued()) {
		t.Errorf("pms_outbox_enqueued_total = %d, outbox enqueued %d", got, ob.Enqueued())
	}
	if got := s.Counter("pms_outbox_flushed_total"); got != uint64(ob.Flushed()) {
		t.Errorf("pms_outbox_flushed_total = %d, outbox flushed %d", got, ob.Flushed())
	}
	if got := s.Gauges["pms_outbox_depth"]; got != int64(ob.Pending()) {
		t.Errorf("pms_outbox_depth = %d, outbox holds %d", got, ob.Pending())
	}
	if ob.Pending() != 0 {
		t.Errorf("outbox still holds %d days after recovery", ob.Pending())
	}
	stored := len(run.store.ProfileRange("user-0001", "", ""))
	if ob.Flushed() != stored {
		t.Errorf("outbox flushed %d uploads, cloud stores %d profiles", ob.Flushed(), stored)
	}
	if got := s.Counter("pms_outbox_flushed_total"); got != uint64(stored) {
		t.Errorf("pms_outbox_flushed_total = %d, cloud stores %d profiles", got, stored)
	}

	// The PMS ran its nightly pass once per simulated day after the first.
	if got, want := s.Counter("pms_discoveries_total"), uint64(run.svc.DiscoveriesRun()); got != want {
		t.Errorf("pms_discoveries_total = %d, service ran %d discoveries", got, want)
	}

	// Storage layer: the durable store journals on this registry too; the
	// soak must have committed every record it journaled.
	if b, r := s.Counter("storage_commit_batches_total"), s.Counter("storage_commit_records_total"); b == 0 || r < b {
		t.Errorf("storage commit counters implausible: %d batches, %d records", b, r)
	}
	if got := s.Counter("storage_wal_append_records_total"); got != s.Counter("storage_commit_records_total") {
		t.Errorf("WAL records %d != committed records %d", got, s.Counter("storage_commit_records_total"))
	}
}
