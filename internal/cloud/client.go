package cloud

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/gsm"
	"repro/internal/profile"
	"repro/internal/trace"
	"repro/internal/world"
)

// Client implements the cloud surface the mobile service consumes.
var _ core.CloudAPI = (*Client)(nil)

// Client is the mobile service's connection to the cloud instance: the
// communication-management module of Section 2.2.5 ("REST API based
// communication with the cloud instance"). It handles registration, token
// refresh on expiry, and typed access to every endpoint. Safe for concurrent
// use.
type Client struct {
	baseURL string
	http    *http.Client

	imei  string
	email string

	mu     sync.Mutex
	token  string
	userID string
}

// NewClient builds a client for the given base URL (no trailing slash) and
// device identity. httpClient may be nil for http.DefaultClient.
func NewClient(baseURL, imei, email string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{baseURL: baseURL, http: httpClient, imei: imei, email: email}
}

// UserID returns the registered user id (empty before first registration).
func (c *Client) UserID() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.userID
}

// Register performs the one-time registration handshake, storing the token
// for subsequent calls.
func (c *Client) Register() error {
	var resp RegisterResponse
	if err := c.call(http.MethodPost, PathRegister, nil, RegisterRequest{IMEI: c.imei, Email: c.email}, &resp, false); err != nil {
		return fmt.Errorf("cloud: register: %w", err)
	}
	c.mu.Lock()
	c.token = resp.Token
	c.userID = resp.UserID
	c.mu.Unlock()
	return nil
}

// Refresh exchanges the current token for a fresh one.
func (c *Client) Refresh() error {
	var resp RefreshResponse
	if err := c.call(http.MethodPost, PathRefresh, nil, nil, &resp, true); err != nil {
		return fmt.Errorf("cloud: refresh: %w", err)
	}
	c.mu.Lock()
	c.token = resp.Token
	c.mu.Unlock()
	return nil
}

// statusError carries a non-2xx response.
type statusError struct {
	Status int
	Msg    string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("cloud: http %d: %s", e.Status, e.Msg)
}

// call performs one JSON request. withAuth attaches the bearer token.
func (c *Client) call(method, path string, query url.Values, body, into any, withAuth bool) error {
	u := c.baseURL + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("marshal request: %w", err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, u, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if withAuth {
		c.mu.Lock()
		tok := c.token
		c.mu.Unlock()
		if tok == "" {
			return &statusError{Status: http.StatusUnauthorized, Msg: "no token (register first)"}
		}
		req.Header.Set("Authorization", "Bearer "+tok)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return &statusError{Status: resp.StatusCode, Msg: e.Error}
	}
	if into == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		return fmt.Errorf("decode response: %w", err)
	}
	return nil
}

// authedCall wraps call with one automatic recovery from an expired token:
// refresh (or re-register when refresh is also rejected) and retry once.
func (c *Client) authedCall(method, path string, query url.Values, body, into any) error {
	err := c.call(method, path, query, body, into, true)
	se, ok := err.(*statusError)
	if !ok || se.Status != http.StatusUnauthorized {
		return err
	}
	if rerr := c.Refresh(); rerr != nil {
		if rerr := c.Register(); rerr != nil {
			return err
		}
	}
	return c.call(method, path, query, body, into, true)
}

// DiscoverPlaces offloads GCA to the cloud (core.CloudAPI).
func (c *Client) DiscoverPlaces(obs []trace.GSMObservation) ([]*gsm.Place, error) {
	var resp DiscoverPlacesResponse
	if err := c.authedCall(http.MethodPost, PathPlacesDiscover, nil, DiscoverPlacesRequest{Observations: obs}, &resp); err != nil {
		return nil, err
	}
	places := make([]*gsm.Place, 0, len(resp.Places))
	for _, w := range resp.Places {
		places = append(places, WireToPlace(w))
	}
	return places, nil
}

// SyncProfile uploads a day profile (core.CloudAPI).
func (c *Client) SyncProfile(p *profile.DayProfile) error {
	return c.authedCall(http.MethodPut, PathProfiles+"/"+p.Date, nil, p, nil)
}

// GeolocateCell resolves a Cell-ID via the cloud geo service
// (core.CloudAPI).
func (c *Client) GeolocateCell(id world.CellID) (geo.LatLng, float64, error) {
	q := url.Values{}
	q.Set("mcc", strconv.Itoa(id.MCC))
	q.Set("mnc", strconv.Itoa(id.MNC))
	q.Set("lac", strconv.Itoa(id.LAC))
	q.Set("cid", strconv.Itoa(id.CID))
	var resp GeoCellResponse
	if err := c.authedCall(http.MethodGet, PathGeoCell, q, nil, &resp); err != nil {
		return geo.LatLng{}, 0, err
	}
	return geo.LatLng{Lat: resp.Lat, Lng: resp.Lng}, resp.AccuracyMeters, nil
}

// Places fetches the user's stored places.
func (c *Client) Places() ([]PlaceWire, error) {
	var resp DiscoverPlacesResponse
	if err := c.authedCall(http.MethodGet, PathPlaces, nil, nil, &resp); err != nil {
		return nil, err
	}
	return resp.Places, nil
}

// LabelPlace tags a stored place.
func (c *Client) LabelPlace(placeID int, label string) error {
	return c.authedCall(http.MethodPost, PathPlacesLabel, nil, LabelRequest{PlaceID: placeID, Label: label}, nil)
}

// DiscoverRoutes offloads route extraction.
func (c *Client) DiscoverRoutes(obs []trace.GSMObservation, visits []VisitWire) ([]RouteWire, error) {
	var resp DiscoverRoutesResponse
	if err := c.authedCall(http.MethodPost, PathRoutesDiscover, nil, DiscoverRoutesRequest{Observations: obs, Visits: visits}, &resp); err != nil {
		return nil, err
	}
	return resp.Routes, nil
}

// Routes fetches stored routes with at least minFrequency traversals.
func (c *Client) Routes(minFrequency int) ([]RouteWire, error) {
	q := url.Values{}
	if minFrequency > 0 {
		q.Set("min_frequency", strconv.Itoa(minFrequency))
	}
	var resp DiscoverRoutesResponse
	if err := c.authedCall(http.MethodGet, PathRoutes, q, nil, &resp); err != nil {
		return nil, err
	}
	return resp.Routes, nil
}

// RouteSimilarity compares two cell sequences on the cloud.
func (c *Client) RouteSimilarity(a, b []world.CellID) (float64, error) {
	var resp RouteSimilarityResponse
	if err := c.authedCall(http.MethodPost, PathRouteSimilarity, nil, RouteSimilarityRequest{A: a, B: b}, &resp); err != nil {
		return 0, err
	}
	return resp.Similarity, nil
}

// Profile fetches one day profile.
func (c *Client) Profile(date string) (*profile.DayProfile, error) {
	var p profile.DayProfile
	if err := c.authedCall(http.MethodGet, PathProfiles+"/"+date, nil, nil, &p); err != nil {
		return nil, err
	}
	return &p, nil
}

// ProfileRange fetches day profiles between two dates (inclusive; empty
// bounds are open).
func (c *Client) ProfileRange(from, to string) ([]*profile.DayProfile, error) {
	q := url.Values{}
	if from != "" {
		q.Set("from", from)
	}
	if to != "" {
		q.Set("to", to)
	}
	var ps []*profile.DayProfile
	if err := c.authedCall(http.MethodGet, PathProfiles, q, nil, &ps); err != nil {
		return nil, err
	}
	return ps, nil
}

// UploadContacts appends encounters to the user's contact log.
func (c *Client) UploadContacts(encs []profile.Encounter) error {
	return c.authedCall(http.MethodPost, PathContacts, nil, ContactsRequest{Encounters: encs}, nil)
}

// Contacts fetches encounters, optionally filtered by place.
func (c *Client) Contacts(placeID string) ([]profile.Encounter, error) {
	q := url.Values{}
	if placeID != "" {
		q.Set("place", placeID)
	}
	var resp ContactsResponse
	if err := c.authedCall(http.MethodGet, PathContacts, q, nil, &resp); err != nil {
		return nil, err
	}
	return resp.Encounters, nil
}

// PopularPlaces fetches the k-anonymous cross-user place aggregate.
func (c *Client) PopularPlaces(k int, radiusM float64) (PopularPlacesResponse, error) {
	q := url.Values{}
	if k > 0 {
		q.Set("k", strconv.Itoa(k))
	}
	if radiusM > 0 {
		q.Set("radius", strconv.FormatFloat(radiusM, 'f', -1, 64))
	}
	var resp PopularPlacesResponse
	err := c.authedCall(http.MethodGet, PathPlacesPopular, q, nil, &resp)
	return resp, err
}

// PredictArrival asks for the user's typical arrival time-of-day at a place.
func (c *Client) PredictArrival(placeID string) (PredictArrivalResponse, error) {
	q := url.Values{}
	q.Set("place", placeID)
	var resp PredictArrivalResponse
	err := c.authedCall(http.MethodGet, PathPredictArrival, q, nil, &resp)
	return resp, err
}

// PredictNextVisit asks when the user will next visit the place.
func (c *Client) PredictNextVisit(placeID string, after time.Time) (PredictNextVisitResponse, error) {
	q := url.Values{}
	q.Set("place", placeID)
	q.Set("after", after.Format(time.RFC3339))
	var resp PredictNextVisitResponse
	err := c.authedCall(http.MethodGet, PathPredictNext, q, nil, &resp)
	return resp, err
}

// VisitFrequency asks how often the user visits the place.
func (c *Client) VisitFrequency(placeID string) (FrequencyResponse, error) {
	q := url.Values{}
	q.Set("place", placeID)
	var resp FrequencyResponse
	err := c.authedCall(http.MethodGet, PathStatsFrequency, q, nil, &resp)
	return resp, err
}

// DwellStats asks for stay-duration statistics at a place.
func (c *Client) DwellStats(placeID string) (DwellStatsResponse, error) {
	q := url.Values{}
	q.Set("place", placeID)
	var resp DwellStatsResponse
	err := c.authedCall(http.MethodGet, PathStatsDwell, q, nil, &resp)
	return resp, err
}

// FrequencyByLabel asks how often the user visits places with a label (e.g.
// "how frequently does the user visit shopping malls?").
func (c *Client) FrequencyByLabel(label string) (FrequencyResponse, error) {
	q := url.Values{}
	q.Set("label", label)
	var resp FrequencyResponse
	err := c.authedCall(http.MethodGet, PathStatsFrequency, q, nil, &resp)
	return resp, err
}
