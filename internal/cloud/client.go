package cloud

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/gsm"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/trace"
	"repro/internal/world"
)

// Client implements the cloud surface the mobile service consumes.
var _ core.CloudAPI = (*Client)(nil)

// errorBodyLimit caps how much of a non-2xx response body the client will
// read while extracting the error message.
const errorBodyLimit = 8 << 10

// drainLimit caps how much of a leftover body is drained before close so the
// underlying connection can be reused by the retry loop.
const drainLimit = 256 << 10

// Client is the mobile service's connection to the cloud instance: the
// communication-management module of Section 2.2.5 ("REST API based
// communication with the cloud instance"). It handles registration, token
// refresh on expiry, typed access to every endpoint, and transparent
// retry-with-backoff of idempotent calls on transient failures (the phone is
// assumed to live on an intermittent cellular link). Safe for concurrent use.
type Client struct {
	baseURL string
	http    *http.Client
	retry   RetryPolicy
	m       *clientMetrics

	imei  string
	email string

	mu       sync.Mutex
	token    string
	userID   string
	tokenGen uint64 // bumped whenever a new token is installed

	// refreshMu single-flights token recovery: when N concurrent calls hit
	// an expired token, exactly one performs the refresh round-trip and the
	// rest reuse the new token.
	refreshMu sync.Mutex

	// Delta sync cursor: the server-acknowledged trace position after the
	// last successful DiscoverPlaces. The next call uploads only the
	// observations past it (after re-verifying the prefix hash locally, so
	// an unrelated trace falls back to a full upload instead of corrupting
	// the server's copy).
	syncMu    sync.Mutex
	traceLen  int64
	traceHash uint64

	// wire is the preferred request/response encoding; jsonOnly latches true
	// the first time a peer answers 415 to a binary request, downgrading
	// this client to JSON for its lifetime (the peer predates the codec —
	// asking again next call would just burn a round-trip every time).
	wire     WireCodec
	jsonOnly atomic.Bool

	// router, when set (WithCluster), routes each call by the consistent-hash
	// ring instead of baseURL and drives failover across nodes.
	router *clusterRouter
}

// WireCodec selects the client's preferred wire encoding.
type WireCodec int

const (
	// WireJSON is the historical reflective-JSON wire — the default, and
	// what every peer understands.
	WireJSON WireCodec = iota
	// WireBinary negotiates application/x-pmware-bin (DESIGN.md §14),
	// falling back to JSON transparently against peers without the codec.
	WireBinary
)

func (wc WireCodec) String() string {
	if wc == WireBinary {
		return "bin"
	}
	return "json"
}

// ParseWireCodec maps CLI/spec names onto a codec: "json" (or empty) and
// "bin"/"binary".
func ParseWireCodec(s string) (WireCodec, error) {
	switch s {
	case "", "json":
		return WireJSON, nil
	case "bin", "binary":
		return WireBinary, nil
	}
	return WireJSON, fmt.Errorf("cloud: unknown wire codec %q", s)
}

// WithWireCodec sets the preferred wire encoding.
func WithWireCodec(wc WireCodec) ClientOption {
	return func(c *Client) { c.wire = wc }
}

// useBinary reports whether the next request should speak binary.
func (c *Client) useBinary() bool { return c.wire == WireBinary && !c.jsonOnly.Load() }

// fallbackToJSON latches the sticky JSON downgrade after a 415.
func (c *Client) fallbackToJSON() {
	if !c.jsonOnly.Swap(true) {
		c.m.wireFallbacks.Inc()
	}
}

// ClientOption customizes a Client.
type ClientOption func(*Client)

// WithRetryPolicy overrides the client's retry/backoff policy.
func WithRetryPolicy(p RetryPolicy) ClientOption {
	return func(c *Client) { c.retry = p }
}

// NewClient builds a client for the given base URL (no trailing slash) and
// device identity. httpClient may be nil for http.DefaultClient.
func NewClient(baseURL, imei, email string, httpClient *http.Client, opts ...ClientOption) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	c := &Client{
		baseURL: baseURL,
		http:    httpClient,
		retry:   DefaultRetryPolicy(),
		imei:    imei,
		email:   email,
	}
	for _, opt := range opts {
		opt(c)
	}
	if c.m == nil {
		c.m = defaultClientMetrics
	}
	if c.router != nil {
		c.router.key = StableUserID(imei, email)
		c.router.httpc = c.http
		c.router.m = c.m
	}
	return c
}

// UserID returns the registered user id (empty before first registration).
func (c *Client) UserID() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.userID
}

// setToken installs a new token, bumping the generation counter that the
// single-flight recovery path uses to detect "someone already refreshed".
func (c *Client) setToken(token, userID string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.token = token
	if userID != "" {
		c.userID = userID
	}
	c.tokenGen++
}

// snapshotToken returns the current token and its generation.
func (c *Client) snapshotToken() (string, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.token, c.tokenGen
}

// Register performs the one-time registration handshake, storing the token
// for subsequent calls.
func (c *Client) Register() error { return c.RegisterContext(context.Background()) }

// RegisterContext is Register with caller-controlled cancellation.
// Registration is idempotent on the server (same device key maps to the same
// user), so it is retried on transient failures.
func (c *Client) RegisterContext(ctx context.Context) error {
	var resp RegisterResponse
	if err := c.call(ctx, http.MethodPost, PathRegister, nil, RegisterRequest{IMEI: c.imei, Email: c.email}, &resp, false, true); err != nil {
		return fmt.Errorf("cloud: register: %w", err)
	}
	c.setToken(resp.Token, resp.UserID)
	return nil
}

// Refresh exchanges the current token for a fresh one. The exchange revokes
// the old token server-side, so it is deliberately not retried: a lost
// response is recovered by the 401 path falling back to Register.
func (c *Client) Refresh() error { return c.RefreshContext(context.Background()) }

// RefreshContext is Refresh with caller-controlled cancellation.
func (c *Client) RefreshContext(ctx context.Context) error {
	var resp RefreshResponse
	if err := c.call(ctx, http.MethodPost, PathRefresh, nil, nil, &resp, true, false); err != nil {
		return fmt.Errorf("cloud: refresh: %w", err)
	}
	c.setToken(resp.Token, "")
	return nil
}

// ErrRequestTooLarge reports the server rejected an upload body as over its
// size cap (HTTP 413). Unlike transient faults this is terminal — retrying
// the same payload cannot succeed; the caller must shrink the upload.
// Surface it with errors.Is.
var ErrRequestTooLarge = errors.New("cloud: request body too large")

// statusError carries a non-2xx response.
type statusError struct {
	Status int
	Msg    string
	// RetryAfter is the server's Retry-After hint on backpressure responses
	// (0 when absent). The retry loop waits at least this long.
	RetryAfter time.Duration
	// Owner is the owning node's URL off a 421 Misdirected Request — the
	// cluster router re-targets there without refetching the ring.
	Owner string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("cloud: http %d: %s", e.Status, e.Msg)
}

// Is lets callers classify typed protocol rejections with errors.Is.
func (e *statusError) Is(target error) bool {
	return target == ErrRequestTooLarge && e.Status == http.StatusRequestEntityTooLarge
}

// StatusCode extracts the HTTP status behind a client-call error. ok is
// false when the error did not come from an HTTP response (transport
// failure, context cancellation) — the distinction the load harness uses to
// separate server rejections from connectivity faults.
func StatusCode(err error) (status int, ok bool) {
	var se *statusError
	if errors.As(err, &se) {
		return se.Status, true
	}
	return 0, false
}

// call performs one request under the retry policy. withAuth attaches the
// bearer token; idempotent enables automatic retry on transient errors. The
// request body is marshalled once (binary when the active wire codec has an
// encoding for it, JSON otherwise) and replayed per attempt. A binary call
// rejected 415 — a peer without the codec — downgrades the client to JSON
// and replays the whole call.
func (c *Client) call(ctx context.Context, method, path string, query url.Values, body, into any, withAuth, idempotent bool) error {
	var rt *routeSession
	if c.router != nil {
		rt = c.router.begin()
	}
	urlFor := func() string {
		base := c.baseURL
		if rt != nil {
			base = rt.current()
		}
		u := base + path
		if len(query) > 0 {
			u += "?" + query.Encode()
		}
		return u
	}
	useBin := false
	var payload []byte
	marshal := func() error {
		useBin, payload = false, nil
		if body == nil {
			return nil
		}
		if c.useBinary() {
			if data, ok := appendWire(nil, body); ok {
				useBin, payload = true, data
				return nil
			}
		}
		data, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("marshal request: %w", err)
		}
		payload = data
		return nil
	}
	run := func() error {
		attempt := 0
		return c.retry.withSleepObserver(c.m.observeBackoff).run(ctx, idempotent, func(ctx context.Context) error {
			attempt++
			if attempt > 1 {
				c.m.retries.Inc()
			}
			err := c.doOnce(ctx, method, urlFor(), payload, useBin, into, withAuth)
			if err != nil && rt != nil {
				rt.observe(err)
			}
			return err
		})
	}
	if err := marshal(); err != nil {
		return err
	}
	err := run()
	if useBin {
		var se *statusError
		if errors.As(err, &se) && se.Status == http.StatusUnsupportedMediaType {
			c.fallbackToJSON()
			if merr := marshal(); merr != nil {
				return merr
			}
			err = run()
		}
	}
	if rt != nil {
		// A 421 is answered before the request touches any state, so one
		// whole-call replay on the owner the router just adopted is always
		// safe — including for non-idempotent calls and for retry policies
		// whose attempt budget was already spent inside run().
		var se *statusError
		if errors.As(err, &se) && se.Status == http.StatusMisdirectedRequest {
			err = run()
		}
	}
	return err
}

// doOnce performs a single HTTP attempt.
func (c *Client) doOnce(ctx context.Context, method, u string, payload []byte, binaryReq bool, into any, withAuth bool) error {
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, u, rd)
	if err != nil {
		return err
	}
	if payload != nil {
		if binaryReq {
			req.Header.Set("Content-Type", ContentTypeBinary)
		} else {
			req.Header.Set("Content-Type", "application/json")
		}
	}
	if into != nil && c.useBinary() && wireDecodable(into) {
		// Offer binary but accept JSON: a peer without the codec ignores the
		// preference and answers JSON, which finishResponse decodes by the
		// response's own Content-Type — the fallback costs nothing.
		req.Header.Set("Accept", ContentTypeBinary+", application/json;q=0.5")
	}
	if withAuth {
		tok, _ := c.snapshotToken()
		if tok == "" {
			return &statusError{Status: http.StatusUnauthorized, Msg: "no token (register first)"}
		}
		req.Header.Set("Authorization", "Bearer "+tok)
	}
	if c.router != nil {
		req.Header.Set(cluster.HeaderKey, c.router.key)
	}
	c.m.attempts.Inc()
	resp, err := c.http.Do(req)
	if err != nil {
		c.m.connErrors.Inc()
		return err
	}
	c.m.wireSentBytes.Add(uint64(len(payload)))
	defer func() {
		// Drain any leftover body (bounded) before close so the keep-alive
		// connection is reusable by the next attempt.
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, drainLimit))
		resp.Body.Close()
	}()
	return c.finishResponse(resp, into)
}

// finishResponse classifies one HTTP response and, for 2xx, decodes the body
// into `into` by the RESPONSE's Content-Type — the server only answers
// binary when the request offered it, and a JSON answer to a
// binary-accepting request is the compatibility fallback working, not an
// error. Every body byte read is counted into
// client_wire_bytes_received_total. Shared by the buffered, streaming-ingest
// and streaming-discover paths.
func (c *Client) finishResponse(resp *http.Response, into any) error {
	if resp.StatusCode/100 != 2 {
		switch {
		case resp.StatusCode >= 500:
			c.m.http5xx.Inc()
		case resp.StatusCode >= 400:
			c.m.http4xx.Inc()
		}
		var e ErrorResponse
		data, _ := io.ReadAll(io.LimitReader(resp.Body, errorBodyLimit))
		c.m.wireRecvBytes.Add(uint64(len(data)))
		if jerr := json.Unmarshal(data, &e); jerr != nil || e.Error == "" {
			e.Error = strconv.Quote(truncateForError(data))
		}
		se := &statusError{Status: resp.StatusCode, Msg: e.Error}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, perr := strconv.Atoi(ra); perr == nil && secs > 0 {
				se.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		if resp.StatusCode == http.StatusMisdirectedRequest {
			se.Owner = resp.Header.Get(cluster.HeaderOwner)
		}
		return se
	}
	if into == nil {
		return nil
	}
	if mt, _, _ := mime.ParseMediaType(resp.Header.Get("Content-Type")); mt == ContentTypeBinary {
		bp := getWireBuf()
		defer putWireBuf(bp)
		buf, rerr := readAllInto((*bp)[:0], resp.Body)
		*bp = buf
		c.m.wireRecvBytes.Add(uint64(len(buf)))
		if rerr != nil {
			c.m.bodyErrors.Inc()
			return &transientError{err: fmt.Errorf("read response: %w", rerr)}
		}
		if derr := decodeWire(buf, into); derr != nil {
			// Same classification as garbled JSON below: a link failure, not
			// a protocol rejection.
			c.m.bodyErrors.Inc()
			return &transientError{err: fmt.Errorf("decode response: %w", derr)}
		}
		return nil
	}
	cr := &wireCountReader{r: resp.Body}
	err := json.NewDecoder(cr).Decode(into)
	c.m.wireRecvBytes.Add(cr.n)
	if err != nil {
		// A garbled or truncated 2xx body is a link failure, not a protocol
		// rejection: mark it transient so idempotent calls retry.
		c.m.bodyErrors.Inc()
		return &transientError{err: fmt.Errorf("decode response: %w", err)}
	}
	return nil
}

// wireCountReader counts response bytes as the JSON decoder pulls them
// (subscribe.go's countingReader serves the SSE path; this one feeds the
// wire byte counters).
type wireCountReader struct {
	r io.Reader
	n uint64
}

func (cr *wireCountReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += uint64(n)
	return n, err
}

// wireCountWriter counts request bytes as a streaming body writes them.
type wireCountWriter struct {
	w io.Writer
	m *obs.Counter
}

func (cw *wireCountWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.m.Add(uint64(n))
	return n, err
}

// truncateForError trims raw non-JSON error bodies to a loggable size.
func truncateForError(data []byte) string {
	const max = 200
	if len(data) > max {
		return string(data[:max]) + "..."
	}
	return string(data)
}

// authedCall wraps call with one automatic recovery from an expired token:
// refresh (or re-register when refresh is also rejected) and retry once.
// Recovery is single-flighted across goroutines.
func (c *Client) authedCall(ctx context.Context, method, path string, query url.Values, body, into any, idempotent bool) error {
	_, gen := c.snapshotToken()
	err := c.call(ctx, method, path, query, body, into, true, idempotent)
	var se *statusError
	if !errors.As(err, &se) || se.Status != http.StatusUnauthorized {
		return err
	}
	if rerr := c.recoverToken(ctx, gen); rerr != nil {
		return err
	}
	return c.call(ctx, method, path, query, body, into, true, idempotent)
}

// recoverToken obtains a fresh token after a 401. gen is the token
// generation the failed call was issued under: if another goroutine already
// installed a newer token, recovery is skipped and the caller just retries.
func (c *Client) recoverToken(ctx context.Context, gen uint64) error {
	c.refreshMu.Lock()
	defer c.refreshMu.Unlock()
	if _, cur := c.snapshotToken(); cur != gen {
		c.m.tokenCoalesced.Inc()
		return nil // someone else recovered while we waited
	}
	c.m.tokenRecovers.Inc()
	if err := c.RefreshContext(ctx); err == nil {
		return nil
	}
	return c.RegisterContext(ctx)
}

// DiscoverPlaces offloads GCA to the cloud (core.CloudAPI). The server
// replaces the user's whole place set, so the call is retry-safe.
func (c *Client) DiscoverPlaces(obs []trace.GSMObservation) ([]*gsm.Place, error) {
	return c.DiscoverPlacesContext(context.Background(), obs)
}

// DiscoverPlacesContext is DiscoverPlaces with caller-controlled
// cancellation. After the first successful call the client holds the
// server-acknowledged trace cursor and ships only the observations past it
// (delta sync); a 409 from the server — the persisted trace diverged from
// the cursor claim — falls back to a full upload within the same call.
func (c *Client) DiscoverPlacesContext(ctx context.Context, obs []trace.GSMObservation) ([]*gsm.Place, error) {
	cursor, hash, delta := c.traceCursor(obs)
	var resp DiscoverPlacesResponse
	var err error
	if delta {
		c.m.deltaUploads.Inc()
		req := &DiscoverPlacesRequest{Observations: obs[cursor:], Delta: true, Cursor: cursor, PrefixHash: hash}
		err = c.discoverCall(ctx, req, &resp)
		var se *statusError
		if errors.As(err, &se) && se.Status == http.StatusConflict {
			c.m.deltaFallbacks.Inc()
			delta = false
		}
	}
	if !delta {
		// On the binary wire the full-history fallback streams its frames
		// through a pipe (chunked transfer), so neither side ever buffers
		// the serialized form of the whole trace.
		err = c.discoverCall(ctx, &DiscoverPlacesRequest{Observations: obs}, &resp)
	}
	if err != nil {
		return nil, err
	}
	c.storeCursor(resp.TraceLen, resp.TraceHash)
	places := make([]*gsm.Place, 0, len(resp.Places))
	for _, w := range resp.Places {
		places = append(places, WireToPlace(w))
	}
	return places, nil
}

// discoverCall routes one discover upload: framed binary streaming when the
// binary wire is active (with the one-time JSON downgrade if the peer
// answers 415), the buffered JSON call otherwise.
func (c *Client) discoverCall(ctx context.Context, req *DiscoverPlacesRequest, out *DiscoverPlacesResponse) error {
	if c.useBinary() {
		err := c.discoverBinary(ctx, req, out)
		var se *statusError
		if !errors.As(err, &se) || se.Status != http.StatusUnsupportedMediaType {
			return err
		}
		c.fallbackToJSON()
	}
	return c.authedCall(ctx, http.MethodPost, PathPlacesDiscover, nil, req, out, true)
}

// traceCursor decides whether obs can be uploaded as a delta: the stored
// cursor must cover a non-empty prefix of obs and that prefix must hash to
// the stored value (the caller handed us a trace that genuinely extends the
// last upload, not a trimmed or unrelated one). Returns delta=false for a
// full upload otherwise — including always on the first call, which
// preserves the server's "no observations" rejection of empty full uploads.
func (c *Client) traceCursor(obs []trace.GSMObservation) (cursor int64, hash uint64, delta bool) {
	c.syncMu.Lock()
	cursor, hash = c.traceLen, c.traceHash
	c.syncMu.Unlock()
	if cursor <= 0 || cursor > int64(len(obs)) {
		return 0, 0, false
	}
	if TraceHash(obs[:cursor]) != hash {
		return 0, 0, false
	}
	return cursor, hash, true
}

// storeCursor records the server's post-sync trace position. Written
// unconditionally: a concurrent call's stale overwrite only makes the next
// upload ship a longer (still correct) tail, and the server's overlap dedup
// keeps that harmless.
func (c *Client) storeCursor(n int64, h uint64) {
	c.syncMu.Lock()
	c.traceLen, c.traceHash = n, h
	c.syncMu.Unlock()
}

// SyncProfile uploads a day profile (core.CloudAPI). PUT is an upsert keyed
// by date, hence idempotent and retried.
func (c *Client) SyncProfile(p *profile.DayProfile) error {
	return c.SyncProfileContext(context.Background(), p)
}

// SyncProfileContext is SyncProfile with caller-controlled cancellation.
func (c *Client) SyncProfileContext(ctx context.Context, p *profile.DayProfile) error {
	return c.authedCall(ctx, http.MethodPut, PathProfiles+"/"+p.Date, nil, p, nil, true)
}

// GeolocateCell resolves a Cell-ID via the cloud geo service
// (core.CloudAPI).
func (c *Client) GeolocateCell(id world.CellID) (geo.LatLng, float64, error) {
	q := url.Values{}
	q.Set("mcc", strconv.Itoa(id.MCC))
	q.Set("mnc", strconv.Itoa(id.MNC))
	q.Set("lac", strconv.Itoa(id.LAC))
	q.Set("cid", strconv.Itoa(id.CID))
	var resp GeoCellResponse
	if err := c.authedCall(context.Background(), http.MethodGet, PathGeoCell, q, nil, &resp, true); err != nil {
		return geo.LatLng{}, 0, err
	}
	return geo.LatLng{Lat: resp.Lat, Lng: resp.Lng}, resp.AccuracyMeters, nil
}

// Places fetches the user's stored places.
func (c *Client) Places() ([]PlaceWire, error) {
	var resp DiscoverPlacesResponse
	if err := c.authedCall(context.Background(), http.MethodGet, PathPlaces, nil, nil, &resp, true); err != nil {
		return nil, err
	}
	return resp.Places, nil
}

// LabelPlace tags a stored place (setting a label twice is a no-op, so the
// call is retried).
func (c *Client) LabelPlace(placeID int, label string) error {
	return c.authedCall(context.Background(), http.MethodPost, PathPlacesLabel, nil, LabelRequest{PlaceID: placeID, Label: label}, nil, true)
}

// DiscoverRoutes offloads route extraction (whole-set replacement, retried).
func (c *Client) DiscoverRoutes(obs []trace.GSMObservation, visits []VisitWire) ([]RouteWire, error) {
	var resp DiscoverRoutesResponse
	if err := c.authedCall(context.Background(), http.MethodPost, PathRoutesDiscover, nil, DiscoverRoutesRequest{Observations: obs, Visits: visits}, &resp, true); err != nil {
		return nil, err
	}
	return resp.Routes, nil
}

// Routes fetches stored routes with at least minFrequency traversals.
func (c *Client) Routes(minFrequency int) ([]RouteWire, error) {
	q := url.Values{}
	if minFrequency > 0 {
		q.Set("min_frequency", strconv.Itoa(minFrequency))
	}
	var resp DiscoverRoutesResponse
	if err := c.authedCall(context.Background(), http.MethodGet, PathRoutes, q, nil, &resp, true); err != nil {
		return nil, err
	}
	return resp.Routes, nil
}

// RouteSimilarity compares two cell sequences on the cloud (pure
// computation, retried).
func (c *Client) RouteSimilarity(a, b []world.CellID) (float64, error) {
	var resp RouteSimilarityResponse
	if err := c.authedCall(context.Background(), http.MethodPost, PathRouteSimilarity, nil, RouteSimilarityRequest{A: a, B: b}, &resp, true); err != nil {
		return 0, err
	}
	return resp.Similarity, nil
}

// Profile fetches one day profile.
func (c *Client) Profile(date string) (*profile.DayProfile, error) {
	var p profile.DayProfile
	if err := c.authedCall(context.Background(), http.MethodGet, PathProfiles+"/"+date, nil, nil, &p, true); err != nil {
		return nil, err
	}
	return &p, nil
}

// ProfileRange fetches day profiles between two dates (inclusive; empty
// bounds are open).
func (c *Client) ProfileRange(from, to string) ([]*profile.DayProfile, error) {
	q := url.Values{}
	if from != "" {
		q.Set("from", from)
	}
	if to != "" {
		q.Set("to", to)
	}
	var ps []*profile.DayProfile
	if err := c.authedCall(context.Background(), http.MethodGet, PathProfiles, q, nil, &ps, true); err != nil {
		return nil, err
	}
	return ps, nil
}

// UploadContacts appends encounters to the user's contact log. Appending is
// not idempotent, so the call is never retried automatically — callers own
// redelivery (the service's outbox).
func (c *Client) UploadContacts(encs []profile.Encounter) error {
	return c.authedCall(context.Background(), http.MethodPost, PathContacts, nil, ContactsRequest{Encounters: encs}, nil, false)
}

// Contacts fetches encounters, optionally filtered by place.
func (c *Client) Contacts(placeID string) ([]profile.Encounter, error) {
	q := url.Values{}
	if placeID != "" {
		q.Set("place", placeID)
	}
	var resp ContactsResponse
	if err := c.authedCall(context.Background(), http.MethodGet, PathContacts, q, nil, &resp, true); err != nil {
		return nil, err
	}
	return resp.Encounters, nil
}

// PopularPlaces fetches the k-anonymous cross-user place aggregate.
func (c *Client) PopularPlaces(k int, radiusM float64) (PopularPlacesResponse, error) {
	q := url.Values{}
	if k > 0 {
		q.Set("k", strconv.Itoa(k))
	}
	if radiusM > 0 {
		q.Set("radius", strconv.FormatFloat(radiusM, 'f', -1, 64))
	}
	var resp PopularPlacesResponse
	err := c.authedCall(context.Background(), http.MethodGet, PathPlacesPopular, q, nil, &resp, true)
	return resp, err
}

// PredictArrival asks for the user's typical arrival time-of-day at a place.
func (c *Client) PredictArrival(placeID string) (PredictArrivalResponse, error) {
	q := url.Values{}
	q.Set("place", placeID)
	var resp PredictArrivalResponse
	err := c.authedCall(context.Background(), http.MethodGet, PathPredictArrival, q, nil, &resp, true)
	return resp, err
}

// PredictNextVisit asks when the user will next visit the place.
func (c *Client) PredictNextVisit(placeID string, after time.Time) (PredictNextVisitResponse, error) {
	q := url.Values{}
	q.Set("place", placeID)
	q.Set("after", after.Format(time.RFC3339))
	var resp PredictNextVisitResponse
	err := c.authedCall(context.Background(), http.MethodGet, PathPredictNext, q, nil, &resp, true)
	return resp, err
}

// VisitFrequency asks how often the user visits the place.
func (c *Client) VisitFrequency(placeID string) (FrequencyResponse, error) {
	q := url.Values{}
	q.Set("place", placeID)
	var resp FrequencyResponse
	err := c.authedCall(context.Background(), http.MethodGet, PathStatsFrequency, q, nil, &resp, true)
	return resp, err
}

// DwellStats asks for stay-duration statistics at a place.
func (c *Client) DwellStats(placeID string) (DwellStatsResponse, error) {
	q := url.Values{}
	q.Set("place", placeID)
	var resp DwellStatsResponse
	err := c.authedCall(context.Background(), http.MethodGet, PathStatsDwell, q, nil, &resp, true)
	return resp, err
}

// FrequencyByLabel asks how often the user visits places with a label (e.g.
// "how frequently does the user visit shopping malls?").
func (c *Client) FrequencyByLabel(label string) (FrequencyResponse, error) {
	q := url.Values{}
	q.Set("label", label)
	var resp FrequencyResponse
	err := c.authedCall(context.Background(), http.MethodGet, PathStatsFrequency, q, nil, &resp, true)
	return resp, err
}
