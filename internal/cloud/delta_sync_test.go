package cloud

// Tests for the delta trace sync protocol and the bounded discovery pool:
// uploaded bytes proportional to new data, 409 conflict → full-upload
// fallback, memoized retries, 429 backpressure with Retry-After, the 413
// typed error, and cursor survival across a PCI kill-and-restart.

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"slices"
	"sync"
	"testing"
	"time"

	"repro/internal/gsm"
	"repro/internal/obs"
	"repro/internal/simclock"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/world"
)

// deltaHarness is a cloud instance whose *Server (and thus discovery pool
// internals) stays visible to the test.
type deltaHarness struct {
	ts     *httptest.Server
	server *Server
	store  *Store
}

// newDeltaHarness boots a server over store (nil for a fresh memory store),
// optionally wrapping the handler with mw to observe raw requests.
func newDeltaHarness(t *testing.T, store *Store, mw func(http.Handler) http.Handler, opts ...ServerOption) *deltaHarness {
	t.Helper()
	if store == nil {
		store = NewStore(fixedNow(simclock.Epoch))
	}
	// Own registry per server: pool counters would otherwise accumulate in
	// the process-wide default registry across tests.
	opts = append([]ServerOption{WithMetrics(obs.NewRegistry())}, opts...)
	server := NewServer(store, opts...)
	var h http.Handler = server.Handler()
	if mw != nil {
		h = mw(h)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(func() {
		ts.Close()
		server.Close()
	})
	return &deltaHarness{ts: ts, server: server, store: store}
}

// newClient returns a registered client with its own metrics registry, so
// counter assertions are isolated per test.
func (h *deltaHarness) newClient(t *testing.T, imei string, opts ...ClientOption) *Client {
	t.Helper()
	opts = append(opts, WithClientMetrics(obs.NewRegistry()))
	c := NewClient(h.ts.URL, imei, imei+"@example.com", h.ts.Client(), opts...)
	if err := c.Register(); err != nil {
		t.Fatal(err)
	}
	return c
}

// obsPerSynthDay is the observation count of one synthDays day.
const obsPerSynthDay = 110

// synthDays builds a deterministic multi-day trace with a daily
// home → commute → work → commute rhythm: two stable oscillating stays plus
// fresh commute cells every day, at a one-minute cadence.
func synthDays(days int) []trace.GSMObservation {
	var out []trace.GSMObservation
	at := simclock.Epoch
	emit := func(cid int) {
		out = append(out, trace.GSMObservation{
			At:   at,
			Cell: world.CellID{MCC: 404, MNC: 10, LAC: 1, CID: cid},
		})
		at = at.Add(time.Minute)
	}
	for d := 0; d < days; d++ {
		for i := 0; i < 40; i++ {
			emit(10 + i%2)
		}
		for i := 0; i < 15; i++ {
			emit(1000 + d*100 + i)
		}
		for i := 0; i < 40; i++ {
			emit(20 + i%2)
		}
		for i := 0; i < 15; i++ {
			emit(2000 + d*100 + i)
		}
	}
	return out
}

// canonicalWire renders places in wire form for byte-level comparison.
// PlaceToWire sorts cell sets, so the encoding is deterministic.
func canonicalWire(t *testing.T, places []*gsm.Place) string {
	t.Helper()
	ws := make([]PlaceWire, 0, len(places))
	for _, p := range places {
		ws = append(ws, PlaceToWire(p))
	}
	data, err := json.Marshal(ws)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestDeltaSyncUploadsOnlyNewData is the tentpole's bandwidth claim: after a
// full sync, re-discovering with one extra day uploads bytes proportional to
// that day, not the whole history — and the result still matches batch GCA.
func TestDeltaSyncUploadsOnlyNewData(t *testing.T) {
	var mu sync.Mutex
	var sizes []int64
	mw := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == PathPlacesDiscover {
				mu.Lock()
				sizes = append(sizes, r.ContentLength)
				mu.Unlock()
			}
			next.ServeHTTP(w, r)
		})
	}
	h := newDeltaHarness(t, nil, mw)
	c := h.newClient(t, "imei-delta")

	full := synthDays(30)
	if _, err := c.DiscoverPlaces(full[:29*obsPerSynthDay]); err != nil {
		t.Fatal(err)
	}
	got, err := c.DiscoverPlaces(full)
	if err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(sizes) != 2 {
		t.Fatalf("discover requests = %d, want 2", len(sizes))
	}
	// One new day out of 30: the delta body must be a small fraction of the
	// initial 29-day upload (1/10 leaves generous envelope headroom).
	if sizes[1] >= sizes[0]/10 {
		t.Errorf("delta upload %d bytes not proportional to one day (full 29-day upload was %d)", sizes[1], sizes[0])
	}
	if n := c.m.deltaUploads.Value(); n != 1 {
		t.Errorf("delta uploads = %d, want 1", n)
	}
	if n := c.m.deltaFallbacks.Value(); n != 0 {
		t.Errorf("delta fallbacks = %d, want 0", n)
	}
	pm := h.server.pool.m
	if n := pm.full.Value(); n != 1 {
		t.Errorf("full pipeline builds = %d, want 1", n)
	}
	if n := pm.incremental.Value(); n != 1 {
		t.Errorf("incremental runs = %d, want 1", n)
	}
	if n := pm.appended.Value(); n != uint64(obsPerSynthDay) {
		t.Errorf("appended observations = %d, want %d", n, obsPerSynthDay)
	}
	if st := h.store.TraceStatusFor(c.UserID()); st.Len != int64(len(full)) || st.Hash != TraceHash(full) {
		t.Errorf("server trace status = %+v, want len %d hash %d", st, len(full), TraceHash(full))
	}
	want := gsm.Discover(full, gsm.DefaultParams()).Places
	if g, w := canonicalWire(t, got), canonicalWire(t, want); g != w {
		t.Errorf("delta-synced places diverge from batch GCA:\n got %s\nwant %s", g, w)
	}
}

// TestDeltaConflictFallsBackToFull: when the server's persisted trace no
// longer matches the client's cursor claim, the server answers 409 and the
// client transparently re-sends a full upload, then heals its cursor.
func TestDeltaConflictFallsBackToFull(t *testing.T) {
	h := newDeltaHarness(t, nil, nil)
	c := h.newClient(t, "imei-conflict")
	if _, err := c.DiscoverPlaces(synthDays(2)); err != nil {
		t.Fatal(err)
	}

	// Diverge the server behind the client's back: replace the persisted
	// trace with a shorter one, so the client's cursor now overshoots it.
	if _, _, err := h.store.SyncTrace(c.UserID(), false, 0, 0, synthDays(1)); err != nil {
		t.Fatal(err)
	}

	full := synthDays(3)
	got, err := c.DiscoverPlaces(full)
	if err != nil {
		t.Fatal(err)
	}
	if n := c.m.deltaFallbacks.Value(); n != 1 {
		t.Errorf("delta fallbacks = %d, want 1", n)
	}
	if n := h.server.pool.m.conflicts.Value(); n != 1 {
		t.Errorf("server trace conflicts = %d, want 1", n)
	}
	want := gsm.Discover(full, gsm.DefaultParams()).Places
	if g, w := canonicalWire(t, got), canonicalWire(t, want); g != w {
		t.Errorf("post-fallback places diverge from batch GCA:\n got %s\nwant %s", g, w)
	}

	// The fallback's response healed the cursor: the next extension goes
	// back to delta with no further conflicts.
	if _, err := c.DiscoverPlaces(synthDays(4)); err != nil {
		t.Fatal(err)
	}
	if n := c.m.deltaFallbacks.Value(); n != 1 {
		t.Errorf("delta fallbacks after heal = %d, want still 1", n)
	}
	if n := c.m.deltaUploads.Value(); n != 2 {
		t.Errorf("delta uploads = %d, want 2", n)
	}
}

// TestDiscoverMemoMakesRetriesFree: re-sending a trace the server has
// already discovered against — the retry-after-lost-response shape, via both
// the delta path and an identical full upload — answers from the result memo
// without recomputation.
func TestDiscoverMemoMakesRetriesFree(t *testing.T) {
	h := newDeltaHarness(t, nil, nil)
	c := h.newClient(t, "imei-memo")
	obsA := synthDays(2)
	if _, err := c.DiscoverPlaces(obsA); err != nil {
		t.Fatal(err)
	}
	pm := h.server.pool.m
	if n := pm.full.Value(); n != 1 {
		t.Fatalf("runs after first discover = %d, want 1", n)
	}

	// Same trace again: the cursor covers all of it, the delta carries no
	// observations, and the memo answers without queueing a run.
	if _, err := c.DiscoverPlaces(obsA); err != nil {
		t.Fatal(err)
	}
	if n := pm.memoHits.Value(); n != 1 {
		t.Errorf("memo hits = %d, want 1", n)
	}

	// A cursor-less client re-uploading the identical trace in full is also
	// a no-op: the replace is detected as identical, the generation is not
	// bumped, and the memo still answers.
	c2 := h.newClient(t, "imei-memo")
	if _, err := c2.DiscoverPlaces(obsA); err != nil {
		t.Fatal(err)
	}
	if n := pm.memoHits.Value(); n != 2 {
		t.Errorf("memo hits after identical full upload = %d, want 2", n)
	}
	if n := pm.full.Value() + pm.incremental.Value(); n != 1 {
		t.Errorf("discovery runs = %d, want still 1 (retries must be free)", n)
	}

	// Genuinely new data does run — incrementally, on the cached pipeline.
	if _, err := c.DiscoverPlaces(synthDays(3)); err != nil {
		t.Fatal(err)
	}
	if n := pm.incremental.Value(); n != 1 {
		t.Errorf("incremental runs = %d, want 1", n)
	}
}

// TestDiscoverBackpressure429: with a one-worker one-slot pool, a third
// concurrent user is refused with 429 + Retry-After instead of queueing
// unboundedly, and succeeds once the pool drains.
func TestDiscoverBackpressure429(t *testing.T) {
	h := newDeltaHarness(t, nil, nil, WithDiscoverPool(1, 1))
	oneShot := WithRetryPolicy(RetryPolicy{MaxAttempts: 1})
	c1 := h.newClient(t, "imei-bp1", oneShot)
	c2 := h.newClient(t, "imei-bp2", oneShot)
	c3 := h.newClient(t, "imei-bp3", oneShot)

	hold := make(chan struct{})
	entered := make(chan string, 8)
	h.server.pool.testHook = func(uid string) {
		entered <- uid
		<-hold
	}

	errc := make(chan error, 2)
	go func() {
		_, err := c1.DiscoverPlaces(synthDays(1))
		errc <- err
	}()
	<-entered // worker is now held mid-job

	go func() {
		_, err := c2.DiscoverPlaces(synthDays(1))
		errc <- err
	}()
	// Wait for c2's job to occupy the single queue slot.
	deadline := time.Now().Add(5 * time.Second)
	for h.server.pool.m.queueDepth.Value() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second job never queued")
		}
		time.Sleep(time.Millisecond)
	}

	_, err := c3.DiscoverPlaces(synthDays(1))
	var se *statusError
	if !errors.As(err, &se) || se.Status != http.StatusTooManyRequests {
		t.Fatalf("third discover error = %v, want 429", err)
	}
	if se.RetryAfter != time.Second {
		t.Errorf("Retry-After hint = %v, want 1s", se.RetryAfter)
	}
	if n := h.server.pool.m.rejected.Value(); n != 1 {
		t.Errorf("rejected = %d, want 1", n)
	}

	close(hold)
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatalf("held discover %d failed after release: %v", i, err)
		}
	}
	if _, err := c3.DiscoverPlaces(synthDays(1)); err != nil {
		t.Fatalf("rejected client failed after drain: %v", err)
	}
}

// TestRetryAfterHintStretchesBackoff: the retry loop waits at least the
// server's Retry-After on 429, even when the policy's own backoff is tiny.
func TestRetryAfterHintStretchesBackoff(t *testing.T) {
	var slept []time.Duration
	p := RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond}.
		WithSleep(func(_ context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		})
	busy := &statusError{Status: http.StatusTooManyRequests, Msg: "busy", RetryAfter: 2 * time.Second}
	err := p.run(context.Background(), true, func(context.Context) error { return busy })
	if err != busy {
		t.Fatalf("err = %v, want the 429", err)
	}
	if len(slept) != 2 {
		t.Fatalf("sleeps = %d, want 2", len(slept))
	}
	for i, d := range slept {
		if d < 2*time.Second {
			t.Errorf("sleep %d = %v, want >= server's 2s Retry-After", i, d)
		}
	}

	// Without a hint the policy's own (tiny) backoff is untouched.
	slept = nil
	plain := &statusError{Status: http.StatusTooManyRequests, Msg: "busy"}
	_ = p.run(context.Background(), true, func(context.Context) error { return plain })
	for i, d := range slept {
		if d >= 2*time.Second {
			t.Errorf("hint-less sleep %d = %v, want millisecond-scale backoff", i, d)
		}
	}
}

// TestRequestTooLargeTypedError: an upload over the server's body cap is
// rejected 413, surfaces as ErrRequestTooLarge (distinct from transient
// faults), and is not retried.
func TestRequestTooLargeTypedError(t *testing.T) {
	h := newDeltaHarness(t, nil, nil, WithMaxBodyBytes(16<<10))
	c := h.newClient(t, "imei-big")
	_, err := c.DiscoverPlaces(synthDays(5))
	if !errors.Is(err, ErrRequestTooLarge) {
		t.Fatalf("err = %v, want errors.Is(..., ErrRequestTooLarge)", err)
	}
	var se *statusError
	if !errors.As(err, &se) || se.Status != http.StatusRequestEntityTooLarge {
		t.Fatalf("err = %v, want HTTP 413", err)
	}
	if n := c.m.retries.Value(); n != 0 {
		t.Errorf("retries = %d, want 0 (413 is terminal)", n)
	}
	// A small upload on the same client still works.
	if _, err := c.DiscoverPlaces(synthDays(1)[:20]); err != nil {
		t.Fatalf("small upload after 413: %v", err)
	}
}

// TestDeltaSurvivesRestart is the kill-and-restart equivalence property:
// upload a trace in random day-batches, restart the PCI (new process state,
// same data directory) at a random point, keep delta-syncing against the
// recovered instance, and the final places must be byte-identical to batch
// GCA over the full trace — with no cursor conflicts, because the persisted
// trace was replayed from the WAL.
func TestDeltaSurvivesRestart(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const days = 8
	full := synthDays(days)
	want := canonicalWire(t, gsm.Discover(full, gsm.DefaultParams()).Places)

	for round := 0; round < 3; round++ {
		// Three random day boundaries: batch 1, batch 2, restart, batch 3,
		// then the full trace.
		cuts := map[int]bool{}
		for len(cuts) < 3 {
			cuts[(1+rng.Intn(days-1))*obsPerSynthDay] = true
		}
		var bounds []int
		for c := range cuts {
			bounds = append(bounds, c)
		}
		slices.Sort(bounds)

		dir := t.TempDir()
		cfg := StoreConfig{Now: fixedNow(simclock.Epoch), Sync: storage.SyncAlways}

		store1, err := OpenStore(dir, cfg)
		if err != nil {
			t.Fatal(err)
		}
		server1 := NewServer(store1, WithMetrics(obs.NewRegistry()))
		ts1 := httptest.NewServer(server1.Handler())
		c1 := NewClient(ts1.URL, "imei-restart", "r@example.com", nil, WithClientMetrics(obs.NewRegistry()))
		if err := c1.Register(); err != nil {
			t.Fatal(err)
		}
		uid := c1.UserID()
		if _, err := c1.DiscoverPlaces(full[:bounds[0]]); err != nil {
			t.Fatal(err)
		}
		if _, err := c1.DiscoverPlaces(full[:bounds[1]]); err != nil {
			t.Fatal(err)
		}
		curLen, curHash := c1.traceLen, c1.traceHash

		// Kill the PCI: the pool's memo and pipeline cache die with it; only
		// the WAL-backed store survives.
		ts1.Close()
		server1.Close()
		if err := store1.Close(); err != nil {
			t.Fatal(err)
		}

		store2, err := OpenStore(dir, cfg)
		if err != nil {
			t.Fatal(err)
		}
		server2 := NewServer(store2, WithMetrics(obs.NewRegistry()))
		ts2 := httptest.NewServer(server2.Handler())
		c2 := NewClient(ts2.URL, "imei-restart", "r@example.com", nil, WithClientMetrics(obs.NewRegistry()))
		if err := c2.Register(); err != nil {
			t.Fatal(err)
		}
		if c2.UserID() != uid {
			t.Fatalf("restart changed user identity: %q vs %q", c2.UserID(), uid)
		}
		// The device carries its cursor across the server restart.
		c2.storeCursor(curLen, curHash)

		if st := store2.TraceStatusFor(uid); st.Len != curLen || st.Hash != curHash {
			t.Fatalf("round %d: recovered trace status %+v, want len %d hash %d", round, st, curLen, curHash)
		}
		if _, err := c2.DiscoverPlaces(full[:bounds[2]]); err != nil {
			t.Fatal(err)
		}
		got, err := c2.DiscoverPlaces(full)
		if err != nil {
			t.Fatal(err)
		}
		if n := c2.m.deltaUploads.Value(); n != 2 {
			t.Errorf("round %d: post-restart delta uploads = %d, want 2", round, n)
		}
		if n := c2.m.deltaFallbacks.Value(); n != 0 {
			t.Errorf("round %d: delta fallbacks = %d, want 0 (recovery must preserve the trace)", round, n)
		}
		if n := server2.pool.m.conflicts.Value(); n != 0 {
			t.Errorf("round %d: server conflicts = %d, want 0", round, n)
		}
		if g := canonicalWire(t, got); g != want {
			t.Errorf("round %d: places after restart diverge from batch GCA:\n got %s\nwant %s", round, g, want)
		}

		ts2.Close()
		server2.Close()
		if err := store2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
