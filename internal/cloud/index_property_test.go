package cloud

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"testing"
	"time"

	"repro/internal/profile"
	"repro/internal/storage"
	"repro/internal/world"
)

// The incremental-index equivalence property (ISSUE 3): after ANY random
// interleaving of PutProfile / SetPlaces / LabelPlace mutations, every
// analytics answer computed from the materialized index must be
// byte-identical (== on ints, Float64bits on floats) to a from-scratch
// recompute over the same store — including after a crash, where WAL replay
// rebuilds the index from the recovered profiles. The scan* methods on
// Analytics are the reference recompute; PopularPlaces is the reference for
// PopularIndex.

var propPlaceIDs = []string{"home", "work", "mall", "gym", "cafe"}
var propLabels = []string{"shopping", "office", "fitness"}

// genDayProfile builds a random valid day: 1–3 ordered visits at random
// places, some labelled.
func genDayProfile(rng *rand.Rand, uid, date string) *profile.DayProfile {
	day, _ := time.Parse(profile.DateFormat, date)
	dayEnd := day.AddDate(0, 0, 1)
	p := &profile.DayProfile{UserID: uid, Date: date}
	cur := day.Add(time.Duration(1+rng.Intn(600)) * time.Minute)
	for i := 0; i < 1+rng.Intn(3); i++ {
		depart := cur.Add(time.Duration(10+rng.Intn(300)) * time.Minute)
		if depart.After(dayEnd) {
			depart = dayEnd
		}
		if !depart.After(cur) {
			break
		}
		v := profile.PlaceVisit{
			PlaceID: propPlaceIDs[rng.Intn(len(propPlaceIDs))],
			Arrive:  cur,
			Depart:  depart,
		}
		if rng.Intn(2) == 0 {
			v.Label = propLabels[rng.Intn(len(propLabels))]
		}
		p.Places = append(p.Places, v)
		cur = depart.Add(time.Duration(rng.Intn(120)) * time.Minute)
		if !cur.Before(dayEnd) {
			break
		}
	}
	return p
}

// overnightPair builds two adjacent days where a stay crosses midnight — the
// continuation-detection edge both implementations must agree on.
func overnightPair(rng *rand.Rand, uid, date string) (p1, p2 *profile.DayProfile) {
	day, _ := time.Parse(profile.DateFormat, date)
	dayEnd := day.AddDate(0, 0, 1)
	pid := propPlaceIDs[rng.Intn(len(propPlaceIDs))]
	p1 = &profile.DayProfile{UserID: uid, Date: date, Places: []profile.PlaceVisit{
		{PlaceID: "work", Label: "office", Arrive: day.Add(9 * time.Hour), Depart: day.Add(17 * time.Hour)},
		{PlaceID: pid, Arrive: day.Add(time.Duration(18*60+rng.Intn(240)) * time.Minute), Depart: dayEnd},
	}}
	p2 = &profile.DayProfile{UserID: uid, Date: dayEnd.Format(profile.DateFormat), Places: []profile.PlaceVisit{
		{PlaceID: pid, Arrive: dayEnd, Depart: dayEnd.Add(time.Duration(5+rng.Intn(180)) * time.Minute)},
	}}
	return p1, p2
}

// checkIndexEquivalence pins every indexed analytics answer to its scan twin.
func checkIndexEquivalence(t *testing.T, store *Store, users []string) {
	t.Helper()
	a := NewAnalytics(store)
	after := time.Date(2014, 9, 15, 12, 0, 0, 0, time.UTC)
	for _, u := range users {
		for _, pid := range append(slices.Clone(propPlaceIDs), "nowhere") {
			sec, n := a.TypicalArrival(u, pid)
			wsec, wn := a.scanTypicalArrival(u, pid)
			if sec != wsec || n != wn {
				t.Errorf("%s/%s TypicalArrival: index (%d,%d) != scan (%d,%d)", u, pid, sec, n, wsec, wn)
			}
			fw, tot := a.VisitFrequency(u, pid)
			wfw, wtot := a.scanVisitFrequency(u, pid)
			if math.Float64bits(fw) != math.Float64bits(wfw) || tot != wtot {
				t.Errorf("%s/%s VisitFrequency: index (%v,%d) != scan (%v,%d)", u, pid, fw, tot, wfw, wtot)
			}
			dw, wdw := a.DwellStats(u, pid), a.scanDwellStats(u, pid)
			if dw != wdw {
				t.Errorf("%s/%s DwellStats: index %+v != scan %+v", u, pid, dw, wdw)
			}
			next, conf := a.PredictNextVisit(u, pid, after)
			wnext, wconf := a.scanPredictNextVisit(u, pid, after)
			if conf != wconf || !next.Equal(wnext) {
				t.Errorf("%s/%s PredictNextVisit: index (%v,%v) != scan (%v,%v)", u, pid, next, conf, wnext, wconf)
			}
		}
		for _, lb := range append(slices.Clone(propLabels), "nothing") {
			fw, tot := a.FrequencyByLabel(u, lb)
			wfw, wtot := a.scanFrequencyByLabel(u, lb)
			if math.Float64bits(fw) != math.Float64bits(wfw) || tot != wtot {
				t.Errorf("%s/%s FrequencyByLabel: index (%v,%d) != scan (%v,%d)", u, lb, fw, tot, wfw, wtot)
			}
		}
	}
}

func TestIndexScanEquivalenceProperty(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			w := world.Generate(world.DefaultConfig(), rand.New(rand.NewSource(91)))
			cells := NewCellDatabase(w, 100)
			dir := t.TempDir()
			// CompactEvery is small on purpose: several mid-run snapshot
			// installs must also rebuild the index correctly.
			store, err := OpenStore(dir, StoreConfig{
				Shards: 4, Sync: storage.SyncNever, CompactEvery: 40,
			})
			if err != nil {
				t.Fatal(err)
			}

			users := []string{"user-a", "user-b", "user-c"}
			base, _ := time.Parse(profile.DateFormat, "2014-09-01")
			for i := 0; i < 120; i++ {
				u := users[rng.Intn(len(users))]
				date := base.AddDate(0, 0, rng.Intn(30)).Format(profile.DateFormat)
				switch rng.Intn(5) {
				case 0, 1:
					if err := store.PutProfile(u, genDayProfile(rng, u, date)); err != nil {
						t.Fatal(err)
					}
				case 2:
					p1, p2 := overnightPair(rng, u, date)
					if err := store.PutProfile(u, p1); err != nil {
						t.Fatal(err)
					}
					if err := store.PutProfile(u, p2); err != nil {
						t.Fatal(err)
					}
				case 3:
					ps := make([]PlaceWire, 1+rng.Intn(3))
					for j := range ps {
						ps[j] = placeAtTower(w, rng.Intn(len(w.Towers)), "")
						ps[j].ID = j
					}
					if err := store.SetPlaces(u, ps); err != nil {
						t.Fatal(err)
					}
				case 4:
					// May fail when the place doesn't exist yet; a failed
					// mutation must not disturb the index either.
					_ = store.LabelPlace(u, rng.Intn(3), propLabels[rng.Intn(len(propLabels))])
				}
			}

			checkIndexEquivalence(t, store, users)

			// Popular-places: the cached index must answer exactly like the
			// full recompute, on a cold cache, a warm memo, and after an
			// invalidating mutation.
			px := NewPopularIndex(store, cells)
			for _, k := range []int{2, 3} {
				want := PopularPlaces(store, cells, k, 400)
				if got := px.Places(k, 400); !slices.Equal(got, want) {
					t.Errorf("k=%d cold PopularIndex diverges from PopularPlaces", k)
				}
				if got := px.Places(k, 400); !slices.Equal(got, want) {
					t.Errorf("k=%d memoized PopularIndex diverges", k)
				}
			}
			if err := store.LabelPlace(users[0], 0, "after-memo"); err == nil {
				want := PopularPlaces(store, cells, 2, 400)
				if got := px.Places(2, 400); !slices.Equal(got, want) {
					t.Error("PopularIndex served stale result after label mutation")
				}
			}

			// ProfileRange: sorted full walk, and every random window equals
			// the filtered full walk.
			for _, u := range users {
				full := store.ProfileRange(u, "", "")
				for i := 1; i < len(full); i++ {
					if full[i-1].Date >= full[i].Date {
						t.Fatalf("%s ProfileRange not sorted: %s >= %s", u, full[i-1].Date, full[i].Date)
					}
				}
				for trial := 0; trial < 5; trial++ {
					from := base.AddDate(0, 0, rng.Intn(31)).Format(profile.DateFormat)
					to := base.AddDate(0, 0, rng.Intn(31)).Format(profile.DateFormat)
					var want []string
					for _, p := range full {
						if p.Date >= from && p.Date <= to {
							want = append(want, p.Date)
						}
					}
					got := store.ProfileRange(u, from, to)
					gotDates := make([]string, len(got))
					for i, p := range got {
						gotDates[i] = p.Date
					}
					if !slices.Equal(gotDates, want) {
						t.Errorf("%s ProfileRange[%s..%s] = %v, want %v", u, from, to, gotDates, want)
					}
				}
			}

			// Crash: abandon the store without Close, reopen the directory.
			// Replay rebuilds the index through the same apply path; answers
			// must survive bit-for-bit.
			a := NewAnalytics(store)
			before := map[string]DwellStatsResponse{}
			for _, u := range users {
				for _, pid := range propPlaceIDs {
					before[u+"/"+pid] = a.DwellStats(u, pid)
				}
			}
			store2, err := OpenStore(dir, StoreConfig{Sync: storage.SyncNever, CompactEvery: -1})
			if err != nil {
				t.Fatal(err)
			}
			defer store2.Close()
			checkIndexEquivalence(t, store2, users)
			a2 := NewAnalytics(store2)
			for _, u := range users {
				for _, pid := range propPlaceIDs {
					if got := a2.DwellStats(u, pid); got != before[u+"/"+pid] {
						t.Errorf("%s/%s: recovery changed DwellStats: %+v != %+v", u, pid, got, before[u+"/"+pid])
					}
				}
			}
		})
	}
}
