package cloud

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/faultnet"
	"repro/internal/obs"
	"repro/internal/profile"
)

// The chaos suite: a 3-node cluster soaked by fault-injected clients loses a
// node mid-run, the coordinator promotes the follower, and at the end the
// surviving cluster's merged state is byte-identical to a fault-free
// single-node control run of the same write sequence. Zero acked profiles
// lost, zero spurious ones gained.

type chaosNode struct {
	id  string
	url string
	cn  *ClusterNode
	srv *Server
	ts  *httptest.Server
	reg *obs.Registry
}

// startChaosCluster boots n cluster nodes on pre-bound loopback listeners
// (the peer list must be known before any node starts).
func startChaosCluster(t *testing.T, n int) []*chaosNode {
	t.Helper()
	listeners := make([]net.Listener, n)
	peers := make([]cluster.Node, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		peers[i] = cluster.Node{ID: fmt.Sprintf("n%d", i), URL: "http://" + l.Addr().String()}
	}
	nodes := make([]*chaosNode, n)
	for i := range nodes {
		reg := obs.NewRegistry()
		cn, err := NewClusterNode("", StoreConfig{Shards: 2, StableIDs: true}, ClusterNodeConfig{
			Self:    peers[i],
			Peers:   peers,
			Metrics: reg,
			Logf:    t.Logf,
		})
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		srv := NewServer(cn.Store(), WithClusterNode(cn))
		ts := httptest.NewUnstartedServer(srv.Handler())
		ts.Listener.Close()
		ts.Listener = listeners[i]
		ts.Start()
		node := &chaosNode{id: peers[i].ID, url: peers[i].URL, cn: cn, srv: srv, ts: ts, reg: reg}
		nodes[i] = node
		t.Cleanup(func() {
			node.ts.Close()
			node.srv.Close()
			node.cn.Close()
		})
	}
	return nodes
}

// mustEventually retries op until it succeeds; chaos makes individual calls
// fail, but every logical write must eventually land (that is the loss-free
// claim being tested: acked == applied, exactly once-or-idempotent).
func mustEventually(t *testing.T, what string, op func() error) {
	t.Helper()
	var err error
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if err = op(); err == nil {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("%s never succeeded: %v", what, err)
}

func chaosProfile(uid, date string) *profile.DayProfile {
	day, _ := time.Parse("2006-01-02", date)
	return &profile.DayProfile{
		UserID: uid,
		Date:   date,
		Places: []profile.PlaceVisit{{
			PlaceID: "place-7",
			Arrive:  day.Add(9 * time.Hour),
			Depart:  day.Add(17 * time.Hour),
		}},
	}
}

// TestClusterChaosFailoverEquivalence is the pinned chaos run: kill a node
// mid-soak, promote its follower, and require the cluster's merged profile
// state to be byte-identical to a fault-free single-node control.
func TestClusterChaosFailoverEquivalence(t *testing.T) {
	const (
		users  = 9
		rounds = 6
	)
	nodes := startChaosCluster(t, 3)
	urls := make([]string, len(nodes))
	for i, n := range nodes {
		urls[i] = n.url
	}

	coord := cluster.NewCoordinator([]cluster.Node{
		{ID: nodes[0].id, URL: nodes[0].url},
		{ID: nodes[1].id, URL: nodes[1].url},
		{ID: nodes[2].id, URL: nodes[2].url},
	}, cluster.DefaultVNodes, nil, t.Logf)
	defer coord.Stop()

	// Fault-free single-node control: the same logical writes applied to a
	// plain store. Idempotent upserts make the cluster's retried/duplicated
	// applications converge to exactly this state.
	control, err := newStore("", StoreConfig{Shards: 2, StableIDs: true})
	if err != nil {
		t.Fatal(err)
	}

	type chaosUser struct {
		imei, email, uid string
		client           *Client
		faults           *faultnet.Transport
	}
	cusers := make([]*chaosUser, users)
	for i := range cusers {
		imei := fmt.Sprintf("chaos-imei-%03d", i)
		email := fmt.Sprintf("chaos-%d@example.com", i)
		ft := faultnet.Wrap(nil, faultnet.Config{
			Seed:            int64(1000 + i),
			ConnErrorRate:   0.08,
			ServerErrorRate: 0.05,
			BurstLen:        2,
			Sleep:           func(time.Duration) {},
		})
		httpc := &http.Client{Transport: ft, Timeout: 5 * time.Second}
		client := NewClient(urls[i%len(urls)], imei, email, httpc,
			WithCluster(urls),
			WithRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseDelay: 5 * time.Millisecond, PerTryTimeout: 5 * time.Second}),
		)
		u := &chaosUser{imei: imei, email: email, uid: StableUserID(imei, email), client: client, faults: ft}
		cusers[i] = u
		mustEventually(t, "register "+imei, u.client.Register)
		if got := u.client.UserID(); got != u.uid {
			t.Fatalf("user %d: cluster assigned id %s, want stable id %s", i, got, u.uid)
		}
		if _, err := control.Register(imei, email); err != nil {
			t.Fatal(err)
		}
	}

	killAt := rounds / 2
	for r := 0; r < rounds; r++ {
		if r == killAt {
			// Kill n1 mid-soak: its listener dies with in-flight
			// connections, then the coordinator promotes its follower.
			nodes[1].ts.Close()
			if err := coord.Fail("n1"); err != nil {
				t.Fatalf("coordinator fail: %v", err)
			}
		}
		date := fmt.Sprintf("2014-04-%02d", 10+r)
		for _, u := range cusers {
			p := chaosProfile(u.uid, date)
			mustEventually(t, fmt.Sprintf("profile %s round %d", u.imei, r), func() error {
				return u.client.SyncProfile(p)
			})
			if err := control.PutProfile(u.uid, chaosProfile(u.uid, date)); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Merged read-back through the surviving cluster: every user's full
	// profile range, routed to the post-failover owner by the client ring.
	from, to := "2014-04-01", "2014-04-30"
	clusterState := map[string][]*profile.DayProfile{}
	for _, u := range cusers {
		var got []*profile.DayProfile
		mustEventually(t, "read-back "+u.imei, func() error {
			var err error
			got, err = u.client.ProfileRange(from, to)
			return err
		})
		clusterState[u.uid] = got
	}
	controlState := map[string][]*profile.DayProfile{}
	for _, u := range cusers {
		controlState[u.uid] = control.ProfileRange(u.uid, from, to)
	}

	clusterJSON, err := json.MarshalIndent(clusterState, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	controlJSON, err := json.MarshalIndent(controlState, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(clusterJSON) != string(controlJSON) {
		t.Fatalf("merged cluster state diverged from fault-free control:\ncluster:\n%s\ncontrol:\n%s", clusterJSON, controlJSON)
	}

	// Sanity on the chaos itself: the run must actually have injected
	// faults and survived a promotion, or the equivalence proves nothing.
	totalFaults := 0
	for _, u := range cusers {
		totalFaults += u.faults.Stats().Faults()
	}
	if totalFaults == 0 {
		t.Fatal("chaos run injected zero faults; equivalence is vacuous")
	}
	if v := coord.Ring().Version; v < 2 {
		t.Fatalf("coordinator ring version %d, want >= 2 after failover", v)
	}
	for _, n := range []*chaosNode{nodes[0], nodes[2]} {
		if got := n.cn.Ring().Version; got != coord.Ring().Version {
			t.Fatalf("node %s ring version %d, coordinator at %d", n.id, got, coord.Ring().Version)
		}
	}
	t.Logf("chaos summary: %d injected faults across %d clients, ring at v%d",
		totalFaults, users, coord.Ring().Version)
}
