package cloud

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/profile"
	"repro/internal/simclock"
)

// seedProfiles stores a fortnight of synthetic routine: home overnight,
// work 9:15-ish on weekdays, mall on Saturdays around 14:00.
func seedProfiles(t *testing.T, s *Store, userID string) {
	t.Helper()
	for d := 0; d < 14; d++ {
		day := simclock.Epoch.AddDate(0, 0, d)
		date := day.Format(profile.DateFormat)
		p := &profile.DayProfile{UserID: userID, Date: date}

		wd := day.Weekday()
		switch {
		case wd == time.Saturday:
			p.Places = append(p.Places,
				profile.PlaceVisit{PlaceID: "home", Label: "home", Arrive: day, Depart: day.Add(13 * time.Hour)},
				profile.PlaceVisit{PlaceID: "mall", Label: "mall", Arrive: day.Add(14 * time.Hour), Depart: day.Add(17 * time.Hour)},
				profile.PlaceVisit{PlaceID: "home", Label: "home", Arrive: day.Add(18 * time.Hour), Depart: day.Add(24 * time.Hour)},
			)
		case wd == time.Sunday:
			p.Places = append(p.Places,
				profile.PlaceVisit{PlaceID: "home", Label: "home", Arrive: day, Depart: day.Add(24 * time.Hour)},
			)
		default:
			// Work 9:15 +/- a few minutes depending on day index; home at
			// ~18:40.
			arrive := day.Add(9*time.Hour + time.Duration(10+d)*time.Minute)
			homeBack := day.Add(18*time.Hour + 40*time.Minute)
			p.Places = append(p.Places,
				profile.PlaceVisit{PlaceID: "home", Label: "home", Arrive: day, Depart: arrive.Add(-30 * time.Minute)},
				profile.PlaceVisit{PlaceID: "work", Label: "work", Arrive: arrive, Depart: homeBack.Add(-25 * time.Minute)},
				profile.PlaceVisit{PlaceID: "home", Label: "home", Arrive: homeBack, Depart: day.Add(24 * time.Hour)},
			)
		}
		if err := s.PutProfile(userID, p); err != nil {
			t.Fatalf("seed %s: %v", date, err)
		}
	}
}

func TestTypicalArrivalWork(t *testing.T) {
	s := NewStore(fixedNow(simclock.Epoch))
	a := NewAnalytics(s)
	seedProfiles(t, s, "u1")

	sec, n := a.TypicalArrival("u1", "work")
	if n != 10 {
		t.Errorf("work arrivals = %d, want 10 weekdays", n)
	}
	// ~9:15-9:25.
	h := float64(sec) / 3600
	if h < 9.0 || h > 9.7 {
		t.Errorf("typical work arrival = %.2f h, want ~9.3", h)
	}
}

func TestTypicalArrivalHomeEveningNotMidnight(t *testing.T) {
	// The paper's query: "likely time at which the user typically reaches
	// home in the evening". Midnight continuations must not drag the mean.
	s := NewStore(fixedNow(simclock.Epoch))
	a := NewAnalytics(s)
	seedProfiles(t, s, "u1")

	sec, n := a.TypicalArrival("u1", "home")
	if n == 0 {
		t.Fatal("no home arrivals")
	}
	h := float64(sec) / 3600
	// Home arrivals cluster in the evening (18:40, 18:00 Sat); with the
	// midnight continuations correctly skipped the mean stays in the
	// evening.
	if h < 17 || h > 20 {
		t.Errorf("typical home arrival = %.2f h, want evening", h)
	}
}

func TestTypicalArrivalUnknownPlace(t *testing.T) {
	s := NewStore(fixedNow(simclock.Epoch))
	a := NewAnalytics(s)
	if _, n := a.TypicalArrival("u1", "atlantis"); n != 0 {
		t.Error("phantom arrivals")
	}
}

func TestCircularMeanAroundMidnight(t *testing.T) {
	// Arrivals at 23:30 and 00:30 must average to ~midnight, not noon.
	s := NewStore(fixedNow(simclock.Epoch))
	a := NewAnalytics(s)
	day0 := simclock.Epoch
	day1 := simclock.Epoch.AddDate(0, 0, 1)
	_ = s.PutProfile("u1", &profile.DayProfile{
		UserID: "u1", Date: day0.Format(profile.DateFormat),
		Places: []profile.PlaceVisit{{PlaceID: "club", Arrive: day0.Add(23*time.Hour + 30*time.Minute), Depart: day0.Add(24 * time.Hour)}},
	})
	_ = s.PutProfile("u1", &profile.DayProfile{
		UserID: "u1", Date: day1.Format(profile.DateFormat),
		Places: []profile.PlaceVisit{{PlaceID: "club", Arrive: day1.Add(30 * time.Minute), Depart: day1.Add(2 * time.Hour)}},
	})
	sec, n := a.TypicalArrival("u1", "club")
	if n != 2 {
		t.Fatalf("arrivals = %d", n)
	}
	// Within 15 minutes of midnight (either side).
	distFromMidnight := math.Min(float64(sec), float64(86400-sec))
	if distFromMidnight > 900 {
		t.Errorf("circular mean = %d s from midnight", sec)
	}
}

func TestPredictNextVisit(t *testing.T) {
	s := NewStore(fixedNow(simclock.Epoch))
	a := NewAnalytics(s)
	seedProfiles(t, s, "u1")

	// After the study: next mall visit should land on a Saturday around
	// 14:00.
	after := simclock.Epoch.AddDate(0, 0, 14)
	next, ok := a.PredictNextVisit("u1", "mall", after)
	if !ok {
		t.Fatal("no prediction despite 2 mall visits")
	}
	if next.Weekday() != time.Saturday {
		t.Errorf("predicted weekday = %v, want Saturday", next.Weekday())
	}
	if h := next.Hour(); h < 13 || h > 15 {
		t.Errorf("predicted hour = %d, want ~14", h)
	}
	if !next.After(after) {
		t.Error("prediction not in the future")
	}
}

func TestPredictNextVisitSameDayLater(t *testing.T) {
	s := NewStore(fixedNow(simclock.Epoch))
	a := NewAnalytics(s)
	seedProfiles(t, s, "u1")

	// Monday 06:00: work visit should be predicted for the same day ~9:20.
	after := simclock.Epoch.AddDate(0, 0, 14).Add(6 * time.Hour) // a Monday
	next, ok := a.PredictNextVisit("u1", "work", after)
	if !ok {
		t.Fatal("no prediction")
	}
	if next.Day() != after.Day() {
		t.Errorf("prediction skipped same-day visit: %v", next)
	}
}

func TestPredictNextVisitThinHistory(t *testing.T) {
	s := NewStore(fixedNow(simclock.Epoch))
	a := NewAnalytics(s)
	day := simclock.Epoch
	_ = s.PutProfile("u1", &profile.DayProfile{
		UserID: "u1", Date: day.Format(profile.DateFormat),
		Places: []profile.PlaceVisit{{PlaceID: "once", Arrive: day.Add(10 * time.Hour), Depart: day.Add(11 * time.Hour)}},
	})
	if _, ok := a.PredictNextVisit("u1", "once", day.AddDate(0, 0, 1)); ok {
		t.Error("confident prediction from a single visit")
	}
}

func TestVisitFrequency(t *testing.T) {
	s := NewStore(fixedNow(simclock.Epoch))
	a := NewAnalytics(s)
	seedProfiles(t, s, "u1")

	perWeek, total := a.VisitFrequency("u1", "work")
	if total != 10 {
		t.Errorf("work visits = %d, want 10", total)
	}
	if perWeek < 4.5 || perWeek > 5.5 {
		t.Errorf("work frequency = %.2f/week, want ~5", perWeek)
	}
	perWeek, total = a.VisitFrequency("u1", "mall")
	if total != 2 || perWeek < 0.8 || perWeek > 1.2 {
		t.Errorf("mall frequency = %.2f/week (%d), want ~1", perWeek, total)
	}
	if _, total := a.VisitFrequency("u1", "nowhere"); total != 0 {
		t.Error("phantom visits")
	}
	if perWeek, total := a.VisitFrequency("ghost", "work"); perWeek != 0 || total != 0 {
		t.Error("unknown user should have zero frequency")
	}
}

func TestFrequencyByLabel(t *testing.T) {
	s := NewStore(fixedNow(simclock.Epoch))
	a := NewAnalytics(s)
	seedProfiles(t, s, "u1")
	perWeek, total := a.FrequencyByLabel("u1", "mall")
	if total != 2 {
		t.Errorf("labelled mall visits = %d", total)
	}
	if perWeek <= 0 {
		t.Error("zero label frequency")
	}
}

func TestDwellStats(t *testing.T) {
	s := NewStore(fixedNow(simclock.Epoch))
	a := NewAnalytics(s)
	seedProfiles(t, s, "u1")

	// Work stays: weekdays, roughly 9:20 -> 18:15 (~9h each).
	stats := a.DwellStats("u1", "work")
	if stats.Visits != 10 {
		t.Errorf("work stays = %d, want 10", stats.Visits)
	}
	meanH := float64(stats.MeanStaySec) / 3600
	if meanH < 8 || meanH > 10 {
		t.Errorf("mean work stay = %.1f h, want ~9", meanH)
	}
	if stats.MedianStaySec <= 0 || stats.LongestStaySec < stats.MedianStaySec {
		t.Errorf("order stats wrong: %+v", stats)
	}

	// Home stays include overnight runs rejoined across midnight: the
	// longest home stay must exceed 24h is impossible, but it must exceed a
	// single evening (>12h spanning the midnight split).
	home := a.DwellStats("u1", "home")
	if home.Visits == 0 {
		t.Fatal("no home stays")
	}
	if home.LongestStaySec < 12*3600 {
		t.Errorf("longest home stay = %d s; midnight rejoin failed", home.LongestStaySec)
	}

	// Unknown place: zeroes.
	if got := a.DwellStats("u1", "atlantis"); got.Visits != 0 || got.MeanStaySec != 0 {
		t.Errorf("phantom dwell stats: %+v", got)
	}
}

func TestDwellStatsViaHTTP(t *testing.T) {
	ts := newTestServer(t)
	c := ts.client()
	if err := c.Register(); err != nil {
		t.Fatal(err)
	}
	seedProfiles(t, ts.store, c.UserID())
	stats, err := c.DwellStats("mall")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Visits != 2 {
		t.Errorf("mall stays = %d", stats.Visits)
	}
	if err := c.authedCall(context.Background(), "GET", PathStatsDwell, nil, nil, nil, true); err == nil {
		t.Error("missing place parameter accepted")
	}
}
