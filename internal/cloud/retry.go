package cloud

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// RetryPolicy describes how the client recovers from transient failures on
// the PMS↔PCI link: exponential backoff with bounded jitter, a per-attempt
// timeout, and a cap on total attempts. The phone side of the paper's split
// lives on flaky cellular links, so every idempotent call is retried on
// network errors, 429, and 5xx responses.
//
// The randomness and the sleeping are injected so the policy is fully
// deterministic under test (the property suite drives it with a seeded RNG
// and a recording sleep func).
type RetryPolicy struct {
	// MaxAttempts is the total number of tries, including the first.
	// Values < 1 behave as 1 (no retries).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry.
	BaseDelay time.Duration
	// MaxDelay caps the pre-jitter backoff growth.
	MaxDelay time.Duration
	// Multiplier is the exponential growth factor (values <= 1 mean
	// constant backoff at BaseDelay).
	Multiplier float64
	// JitterFrac spreads each delay uniformly over
	// [delay*(1-JitterFrac), delay*(1+JitterFrac)] to avoid retry
	// synchronization across a fleet of devices. Must be in [0, 1).
	JitterFrac float64
	// PerTryTimeout bounds each individual HTTP attempt (0 = no timeout).
	PerTryTimeout time.Duration

	// rnd returns a uniform float64 in [0,1). nil means the global
	// math/rand source (which is goroutine-safe).
	rnd func() float64
	// sleep waits for d or until ctx is done. nil means a real
	// context-aware sleep. Tests inject a no-op or a simclock-driven func.
	sleep func(ctx context.Context, d time.Duration) error
	// onSleep, when set, observes every backoff delay as it is about to be
	// slept — the hook the client's backoff metrics hang off. It sees the
	// jittered delay actually waited, not the pre-jitter backoff.
	onSleep func(d time.Duration)
}

// DefaultRetryPolicy is the production policy: 4 attempts, 200ms base
// doubling to a 5s cap, ±25% jitter, 10s per attempt. Worst-case added
// latency is bounded (see TestRetryTotalTimeBounded).
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:   4,
		BaseDelay:     200 * time.Millisecond,
		MaxDelay:      5 * time.Second,
		Multiplier:    2,
		JitterFrac:    0.25,
		PerTryTimeout: 10 * time.Second,
	}
}

// WithRand returns a copy of the policy drawing jitter from r. The returned
// policy serializes access to r, so it stays safe for concurrent use.
func (p RetryPolicy) WithRand(r *rand.Rand) RetryPolicy {
	var mu sync.Mutex
	p.rnd = func() float64 {
		mu.Lock()
		defer mu.Unlock()
		return r.Float64()
	}
	return p
}

// WithSleep returns a copy of the policy using fn to wait between attempts.
func (p RetryPolicy) WithSleep(fn func(ctx context.Context, d time.Duration) error) RetryPolicy {
	p.sleep = fn
	return p
}

// attempts returns the effective attempt budget.
func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Backoff returns the pre-jitter delay before retry number n (n = 0 is the
// delay after the first failed attempt). It grows geometrically from
// BaseDelay and is capped at MaxDelay; it is a pure function of the policy.
func (p RetryPolicy) Backoff(n int) time.Duration {
	d := float64(p.BaseDelay)
	mult := p.Multiplier
	if mult < 1 {
		mult = 1
	}
	for i := 0; i < n; i++ {
		d *= mult
		if p.MaxDelay > 0 && d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	return time.Duration(d)
}

// Delay returns the jittered delay before retry number n.
func (p RetryPolicy) Delay(n int) time.Duration {
	d := p.Backoff(n)
	if p.JitterFrac <= 0 || d <= 0 {
		return d
	}
	rnd := p.rnd
	if rnd == nil {
		rnd = rand.Float64
	}
	// Uniform over [1-j, 1+j].
	factor := 1 - p.JitterFrac + 2*p.JitterFrac*rnd()
	return time.Duration(float64(d) * factor)
}

// MaxTotalDelay bounds the summed sleep time of a full retry cycle
// (pre-jitter backoff times the worst-case jitter factor).
func (p RetryPolicy) MaxTotalDelay() time.Duration {
	var total float64
	for n := 0; n < p.attempts()-1; n++ {
		total += float64(p.Backoff(n)) * (1 + p.JitterFrac)
	}
	return time.Duration(total)
}

// withSleepObserver returns a copy of the policy reporting each backoff
// delay to fn before sleeping it.
func (p RetryPolicy) withSleepObserver(fn func(d time.Duration)) RetryPolicy {
	p.onSleep = fn
	return p
}

// wait sleeps for the nth retry delay, honoring ctx cancellation. hint is
// the server's Retry-After request (0 when absent); the effective wait is
// the larger of the backoff and the hint, so a loaded server's explicit
// pacing is never undercut by a small early backoff.
func (p RetryPolicy) wait(ctx context.Context, n int, hint time.Duration) error {
	d := p.Delay(n)
	if hint > d {
		d = hint
	}
	if p.onSleep != nil {
		p.onSleep(d)
	}
	if p.sleep != nil {
		return p.sleep(ctx, d)
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// transientError marks a failure that happened below the HTTP status layer
// on an otherwise well-formed exchange — e.g. a truncated response body —
// which is safe to retry on idempotent calls.
type transientError struct{ err error }

func (e *transientError) Error() string { return "cloud: transient: " + e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// retryAfterHint extracts the server's Retry-After request from err (0 when
// err carries none).
func retryAfterHint(err error) time.Duration {
	var se *statusError
	if errors.As(err, &se) {
		return se.RetryAfter
	}
	return 0
}

// retryable reports whether err is worth retrying on an idempotent call:
// network-level failures, truncated/garbled responses, 429, and 5xx. Context
// cancellation and client-side (4xx) rejections are terminal.
func retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) {
		return false
	}
	var se *statusError
	if errors.As(err, &se) {
		// 421 Misdirected Request is answered before the request touches any
		// state: the cluster router adopts the owner URL and the retry lands
		// on the right node.
		return se.Status == http.StatusTooManyRequests ||
			se.Status == http.StatusMisdirectedRequest ||
			se.Status >= 500
	}
	// Everything else is a transport-level failure (url.Error, injected
	// connection faults, deadline-exceeded attempts, truncated bodies).
	return true
}

// run executes fn under the retry policy. Non-idempotent calls get exactly
// one attempt (still with the per-try timeout); idempotent calls are retried
// on retryable errors until the attempt budget is spent or ctx is done.
func (p RetryPolicy) run(ctx context.Context, idempotent bool, fn func(ctx context.Context) error) error {
	attempts := p.attempts()
	if !idempotent {
		attempts = 1
	}
	var err error
	for n := 0; n < attempts; n++ {
		if n > 0 {
			if werr := p.wait(ctx, n-1, retryAfterHint(err)); werr != nil {
				return err // parent ctx ended during backoff: report last failure
			}
		}
		attemptCtx := ctx
		var cancel context.CancelFunc
		if p.PerTryTimeout > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, p.PerTryTimeout)
		}
		err = fn(attemptCtx)
		if cancel != nil {
			cancel()
		}
		if err == nil || !retryable(err) {
			return err
		}
		if ctx.Err() != nil {
			return err
		}
	}
	return err
}
