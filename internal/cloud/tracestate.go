package cloud

import (
	"encoding/json"
	"fmt"

	"repro/internal/trace"
)

// This file is the journaling side of the per-user GSM trace keyspace: the
// server-side half of the delta sync protocol. Traces live in their own
// storage engine (under <data-dir>/traces) so adding the keyspace never
// disturbs the main engine's manifest-pinned shard layout on existing data
// directories.

// Trace WAL op codes. These are a persistence format: renaming one breaks
// replay of existing data directories.
const (
	opTraceAppend  = "trace_append"  // extend the user's trace
	opTraceReplace = "trace_replace" // replace it wholesale (full upload)
	opTraceDrop    = "trace_drop"    // cluster handoff: remove the user's trace
)

// traceRecord is the journaled form of every trace mutation.
type traceRecord struct {
	Op           string                 `json:"op"`
	UserID       string                 `json:"user_id"`
	Observations []trace.GSMObservation `json:"observations"`
}

// userTrace is one user's persisted trace plus the derived state the delta
// protocol needs: the chained hash of the whole trace and a generation that
// bumps on every wholesale replace, so cached discovery pipelines built over
// a previous generation can never be extended across a rewrite.
type userTrace struct {
	obs  []trace.GSMObservation
	hash uint64 // TraceHash(obs), maintained incrementally
	gen  uint64 // replace generation; derived, never journaled
}

// traceState is one shard of the trace keyspace.
type traceState struct {
	users map[string]*userTrace
	gens  uint64 // shard-wide generation source; only ever grows
}

func newTraceState() *traceState {
	return &traceState{users: map[string]*userTrace{}}
}

func (t *traceState) ensure(userID string) *userTrace {
	u := t.users[userID]
	if u == nil {
		t.gens++
		u = &userTrace{hash: EmptyTraceHash(), gen: t.gens}
		t.users[userID] = u
	}
	return u
}

// apply is the single mutation path: live SyncTrace calls and crash-recovery
// replay both go through it.
func (t *traceState) apply(rec *traceRecord) error {
	switch rec.Op {
	case opTraceAppend:
		u := t.ensure(rec.UserID)
		u.obs = append(u.obs, rec.Observations...)
		u.hash = ExtendTraceHash(u.hash, rec.Observations)
	case opTraceReplace:
		u := t.ensure(rec.UserID)
		u.obs = append([]trace.GSMObservation(nil), rec.Observations...)
		u.hash = TraceHash(u.obs)
		t.gens++
		u.gen = t.gens
	case opTraceDrop:
		delete(t.users, rec.UserID)
		t.gens++
	default:
		return fmt.Errorf("cloud: trace shard cannot apply op %q", rec.Op)
	}
	return nil
}

func (t *traceState) Apply(b []byte) error {
	var rec traceRecord
	if err := json.Unmarshal(b, &rec); err != nil {
		return fmt.Errorf("cloud: decode trace record: %w", err)
	}
	return t.apply(&rec)
}

// traceSnapshot is the persisted form of traceState. Hashes and generations
// are derived and rebuilt on restore.
type traceSnapshot struct {
	Users map[string][]trace.GSMObservation `json:"users"`
}

func (t *traceState) Snapshot() ([]byte, error) {
	snap := traceSnapshot{Users: make(map[string][]trace.GSMObservation, len(t.users))}
	for id, u := range t.users {
		snap.Users[id] = u.obs
	}
	return json.Marshal(snap)
}

func (t *traceState) Restore(b []byte) error {
	var snap traceSnapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		return fmt.Errorf("cloud: decode trace snapshot: %w", err)
	}
	fresh := newTraceState()
	// Generations keep growing across the restore so no (user, gen) pair
	// issued before it can collide with one issued after.
	fresh.gens = t.gens
	for id, obs := range snap.Users {
		fresh.gens++
		fresh.users[id] = &userTrace{obs: obs, hash: TraceHash(obs), gen: fresh.gens}
	}
	*t = *fresh
	return nil
}
