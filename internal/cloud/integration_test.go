package cloud

import (
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/simclock"
	"repro/internal/trace"
	"repro/internal/world"
)

// TestEndToEndMobileServiceWithCloud runs the full stack: simulated world ->
// sensors -> PMS -> HTTP -> cloud instance, and checks the cloud ends up
// with the user's places, profiles, and predictions.
func TestEndToEndMobileServiceWithCloud(t *testing.T) {
	cfg := world.DefaultConfig()
	r := rand.New(rand.NewSource(201))
	w := world.Generate(cfg, r)
	home := w.AddVenue("home", "Home", world.KindHome, geo.Offset(cfg.Origin, 210, 2300), true, cfg, r)
	work := w.AddVenue("work", "Office", world.KindWorkplace, geo.Offset(cfg.Origin, 30, 2400), true, cfg, r)
	agent := &mobility.Agent{ID: "u1", Home: home, Work: work, SpeedMPS: 7}
	for _, v := range w.Venues {
		if v.Kind != world.KindHome && v.Kind != world.KindWorkplace {
			agent.Haunts = append(agent.Haunts, v)
		}
	}
	it, err := mobility.BuildItinerary(agent, w, simclock.Epoch, 3, mobility.DefaultScheduleConfig(), rand.New(rand.NewSource(202)))
	if err != nil {
		t.Fatal(err)
	}

	clock := simclock.New()
	store := NewStore(clock.Now) // cloud shares the virtual clock
	server := NewServer(store, WithCellDatabase(NewCellDatabase(w, 150)))
	ts := httptest.NewServer(server.Handler())
	defer ts.Close()

	client := NewClient(ts.URL, "imei-e2e", "e2e@example.com", ts.Client())
	if err := client.Register(); err != nil {
		t.Fatal(err)
	}

	sensors := trace.NewSensors(w, it, trace.DefaultConfig(), rand.New(rand.NewSource(203)))
	meter := energy.NewMeter(energy.DefaultModel())
	svc := core.NewService(core.DefaultConfig("u1"), clock, sensors, meter, client)
	svc.Connect(
		core.Requirement{AppID: "todo", Granularity: core.GranularityBuilding},
		core.Filter{Actions: []string{core.ActionPlaceArrival, core.ActionNewPlace}},
		func(core.Intent) {},
	)
	svc.Run(72 * time.Hour)

	// The cloud must now hold the user's places.
	places, err := client.Places()
	if err != nil {
		t.Fatal(err)
	}
	if len(places) < 2 {
		t.Fatalf("cloud has %d places, want >= 2", len(places))
	}

	// Geolocation populated place centers on the device.
	centered := 0
	for _, p := range svc.Places() {
		if !p.Center.IsZero() {
			centered++
			if !w.Bounds.Contains(p.Center) {
				t.Errorf("place %s geolocated outside world: %v", p.ID, p.Center)
			}
		}
	}
	if centered == 0 {
		t.Error("no place centers geolocated despite cloud connectivity")
	}

	// Profiles synced for finished days.
	profiles, err := client.ProfileRange("", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) < 2 {
		t.Fatalf("cloud has %d day profiles, want >= 2", len(profiles))
	}
	if svc.CloudSyncErrors() != 0 {
		t.Errorf("sync errors: %d", svc.CloudSyncErrors())
	}

	// The prediction engine works over synced data: home (largest-dwell
	// place) must have a typical arrival.
	var topID string
	var topDwell time.Duration
	for _, p := range svc.Places() {
		if p.TotalDwell() > topDwell {
			topDwell, topID = p.TotalDwell(), p.ID
		}
	}
	arr, err := client.PredictArrival(topID)
	if err != nil {
		t.Fatalf("PredictArrival(%s): %v", topID, err)
	}
	if arr.SampleCount == 0 {
		t.Error("no arrival samples")
	}
	freq, err := client.VisitFrequency(topID)
	if err != nil || freq.TotalVisits == 0 {
		t.Errorf("frequency = %+v, %v", freq, err)
	}
}

// TestServiceSurvivesCloudOutage verifies the on-device fallback: a dead
// cloud endpoint must not stop discovery.
func TestServiceSurvivesCloudOutage(t *testing.T) {
	cfg := world.DefaultConfig()
	r := rand.New(rand.NewSource(211))
	w := world.Generate(cfg, r)
	home := w.AddVenue("home", "Home", world.KindHome, geo.Offset(cfg.Origin, 210, 2300), true, cfg, r)
	agent := &mobility.Agent{ID: "u1", Home: home, SpeedMPS: 7}
	it, err := mobility.BuildItinerary(agent, w, simclock.Epoch, 2, mobility.DefaultScheduleConfig(), rand.New(rand.NewSource(212)))
	if err != nil {
		t.Fatal(err)
	}

	// A server that immediately closes: every request fails.
	ts := httptest.NewServer(nil)
	ts.Close()
	client := NewClient(ts.URL, "imei-x", "x@example.com", nil, WithRetryPolicy(fastRetry()))

	clock := simclock.New()
	sensors := trace.NewSensors(w, it, trace.DefaultConfig(), rand.New(rand.NewSource(213)))
	svc := core.NewService(core.DefaultConfig("u1"), clock, sensors, energy.NewMeter(energy.DefaultModel()), client)
	svc.Run(48 * time.Hour)

	if len(svc.Places()) == 0 {
		t.Error("on-device fallback failed: no places despite dead cloud")
	}
	if svc.CloudSyncErrors() == 0 {
		t.Error("expected sync errors against a dead cloud")
	}
}
