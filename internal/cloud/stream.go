package cloud

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/geo"
	"repro/internal/trace"
	"repro/internal/world"
)

// This file is the PCI side of the real-time event subsystem (DESIGN.md
// §13): the streaming ingest endpoint that turns appended observations into
// published transitions, and the SSE subscription endpoint that fans them
// out. Both routes are mounted outside the request-timeout middleware
// (http.TimeoutHandler buffers responses and hides http.Flusher) and skip
// decode()'s MaxBytesReader — the connections are long-lived by design, and
// a stream's cumulative bytes legitimately exceed any per-request cap.

// ingestCacheCap bounds resident per-user detectors, mirroring the discovery
// pool's pipeline cache: LRU beyond the cap, rebuilt from the persisted
// trace on the next stream.
const ingestCacheCap = 512

// ingestState owns the per-user online detectors behind the streaming
// ingest path.
type ingestState struct {
	mu    sync.Mutex
	users map[string]*userIngest
	tick  uint64 // LRU clock
}

type userIngest struct {
	mu       sync.Mutex
	gen      uint64
	det      *events.Detector
	lastUsed uint64 // under ingestState.mu
}

func newIngestState() *ingestState {
	return &ingestState{users: map[string]*userIngest{}}
}

// user returns (creating if needed) the per-user ingest slot, evicting the
// least recently used detector when over cap. Eviction only drops cached
// pipeline state — the trace is persisted, so the next stream rebuilds.
func (st *ingestState) user(uid string) *userIngest {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.tick++
	ui := st.users[uid]
	if ui == nil {
		if len(st.users) >= ingestCacheCap {
			var oldest string
			var oldestTick uint64 = ^uint64(0)
			for id, u := range st.users {
				if u.lastUsed < oldestTick {
					oldest, oldestTick = id, u.lastUsed
				}
			}
			delete(st.users, oldest)
		}
		ui = &userIngest{}
		st.users[uid] = ui
	}
	ui.lastUsed = st.tick
	return ui
}

// feed extends the user's detector to cover the full persisted trace and
// returns the transitions that became final. appended is how many trailing
// observations this request just persisted: on a detector rebuild (cold
// cache or replace-generation bump) everything before them is caught up
// silently — its transitions either were already emitted by a previous
// incarnation or belong to a wholesale-replaced history nobody streamed.
func (s *Server) feedDetector(uid string, appended int) []events.Transition {
	ui := s.ingest.user(uid)
	ui.mu.Lock()
	defer ui.mu.Unlock()

	var out []events.Transition
	s.store.viewTrace(uid, func(obs []trace.GSMObservation, _ uint64, gen uint64) {
		if ui.det == nil || ui.gen != gen || ui.det.Len() > len(obs) {
			ui.det = events.NewDetector(s.gsmParams)
			ui.gen = gen
			catch := len(obs) - appended
			if catch < 0 {
				catch = 0
			}
			ui.det.CatchUp(obs[:catch])
		}
		out = ui.det.Feed(obs[ui.det.Len():])
	})
	return out
}

// handleObsStream is POST /api/v1/observations/stream: a sequence of
// observation batches decoded as they arrive — JSON documents or, under
// Content-Type: application/x-pmware-bin, CRC-framed binary observation
// blocks. Each batch is appended WAL-durably, fed to the online detector,
// and its transitions published to the fanout hub before the next batch is
// read — so a subscriber sees the place entry while the device is still
// streaming. One summary response is written when the client closes its
// side; in both codecs end-of-stream at a batch boundary is the clean end.
func (s *Server) handleObsStream(w http.ResponseWriter, r *http.Request, uid string) {
	// Deliberately no MaxBytesReader (see the file comment): the regression
	// test pins that a stream outliving -max-body stays open.
	var appended, published int
	var status TraceStatus

	// ingest persists and publishes one batch; it answers the error response
	// itself and returns false to stop the stream.
	ingest := func(obs []trace.GSMObservation) bool {
		var err error
		status, err = s.store.AppendTrace(uid, obs)
		if err != nil {
			if errors.Is(err, ErrObservationOrder) {
				writeError(w, http.StatusConflict, "%v", err)
				return false
			}
			writeError(w, http.StatusInternalServerError, "appending observations: %v", err)
			return false
		}
		if n := len(obs); n > 0 {
			appended += n
			s.pool.m.appended.Add(uint64(n))
		}
		for _, t := range s.feedDetector(uid, len(obs)) {
			published += s.publishTransition(uid, t)
		}
		return true
	}

	switch requestCodec(r) {
	case codecBinary:
		if !s.readObsStreamBinary(w, r, &appended, ingest) {
			return
		}
	case codecJSON:
		dec := json.NewDecoder(r.Body)
		for {
			var batch StreamBatch
			err := dec.Decode(&batch)
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				// Mid-stream garbage: everything before it is already durable;
				// report what happened with the position reached.
				writeError(w, http.StatusBadRequest, "bad stream batch after %d observations: %v", appended, err)
				return
			}
			if !ingest(batch.Observations) {
				return
			}
		}
	default:
		writeError(w, http.StatusUnsupportedMediaType,
			"unsupported content type %q", r.Header.Get("Content-Type"))
		return
	}
	if status == (TraceStatus{}) {
		status = s.store.TraceStatusFor(uid)
	}
	s.reply(w, r, http.StatusOK, &StreamResult{
		TraceLen:  status.Len,
		TraceHash: status.Hash,
		Appended:  appended,
		Events:    published,
	})
}

// readObsStreamBinary drains a binary observation stream: a two-byte
// version/kind header, then CRC-framed observation blocks until the client
// closes. EOF at a frame boundary is the clean end (mirroring the JSON
// decoder loop); a stream that dies mid-frame, or a frame that fails its
// CRC, is a 400 with everything before it already durable.
func (s *Server) readObsStreamBinary(w http.ResponseWriter, r *http.Request, appended *int, ingest func([]trace.GSMObservation) bool) bool {
	fail := func(err error) bool {
		writeError(w, http.StatusBadRequest, "bad stream batch after %d observations: %v", *appended, err)
		return false
	}
	br := bufio.NewReader(r.Body)
	var hdr [2]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return fail(frameReadErr(err))
	}
	if hdr[0] != wireVersion {
		return fail(fmt.Errorf("unsupported wire version %d", hdr[0]))
	}
	if hdr[1] != wireKindObsStream {
		return fail(fmt.Errorf("wire kind %d where %d expected", hdr[1], wireKindObsStream))
	}
	bp := getWireBuf()
	defer putWireBuf(bp)
	for {
		payload, err := readWireFrame(br, bp)
		if err == io.EOF || err == errFrameEnd {
			return true
		}
		if err != nil {
			return fail(err)
		}
		d := trace.NewBinaryDecoder(payload)
		obs := trace.DecodeObservations(d)
		if err := d.Err(); err != nil {
			return fail(err)
		}
		if d.Rest() != 0 {
			return fail(fmt.Errorf("%d trailing bytes in observation frame", d.Rest()))
		}
		if !ingest(obs) {
			return false
		}
	}
}

// publishTransition enriches one canonical transition into a wire event
// (matched place, disclosed position, and — after an exit — a predicted
// next visit when the analytics engine is confident) and hands it to the
// hub. Returns how many events were published.
func (s *Server) publishTransition(uid string, t events.Transition) int {
	ev := events.Event{
		Type:    t.Kind,
		UserID:  uid,
		At:      t.At,
		Start:   t.Start,
		PlaceID: -1,
	}
	cells := t.Cells
	if len(cells) == 0 {
		cells = t.Hint
	}
	if len(cells) > 0 {
		ev.PlaceID, ev.Label = s.matchPlace(uid, cells)
		ev.Center, ev.AccuracyMeters = s.cellCentroid(cells)
	}
	n := 0
	if s.hub.Publish(ev) {
		n++
	}
	if t.Kind == events.KindPlaceExit && ev.PlaceID >= 0 {
		// The analytics engine keys visits by the PMS profile id namespace
		// ("p<N>", see core fusion); absent or unconfident history simply
		// means no prediction event.
		next, confident := s.analytics.PredictNextVisit(uid, "p"+strconv.FormatInt(ev.PlaceID, 10), t.At)
		if confident {
			pred := ev
			pred.Type = events.KindPredictedVisit
			pred.Start = time.Time{}
			pred.PredictedAt = next
			if s.hub.Publish(pred) {
				n++
			}
		}
	}
	return n
}

// matchPlace finds the stored place whose cell set overlaps the stay's
// cells the most. Returns (-1, "") when the user has no discovered places
// or nothing overlaps — a brand-new place before discovery has seen it.
func (s *Server) matchPlace(uid string, cells []world.CellID) (int64, string) {
	places := s.store.Places(uid)
	bestID, bestLabel, bestOverlap := int64(-1), "", 0
	for _, p := range places {
		set := make(map[world.CellID]struct{}, len(p.Cells))
		for _, c := range p.Cells {
			set[c] = struct{}{}
		}
		overlap := 0
		for _, c := range cells {
			if _, ok := set[c]; ok {
				overlap++
			}
		}
		if overlap > bestOverlap {
			bestID, bestLabel, bestOverlap = int64(p.ID), p.Label, overlap
		}
	}
	return bestID, bestLabel
}

// cellCentroid geolocates a stay from its cell set: the mean of the known
// cell positions, disclosed at cell-tower accuracy. Zero when no cell is in
// the database.
func (s *Server) cellCentroid(cells []world.CellID) (geo.LatLng, float64) {
	if s.cells == nil {
		return geo.LatLng{}, 0
	}
	var lat, lng float64
	n := 0
	for _, c := range cells {
		if e, ok := s.cells.Lookup(c); ok {
			lat += e.Lat
			lng += e.Lng
			n++
		}
	}
	if n == 0 {
		return geo.LatLng{}, 0
	}
	return geo.LatLng{Lat: lat / float64(n), Lng: lng / float64(n)}, core.GranularityBuilding.AccuracyMeters()
}

// handleEventsSubscribe is GET /api/v1/events/subscribe: a text/event-stream
// of the authenticated user's place events. `granularity=area|building|room`
// clamps every event's positional payload to the tier (default room = full
// precision); the Last-Event-ID header resumes a dropped connection.
func (s *Server) handleEventsSubscribe(w http.ResponseWriter, r *http.Request, uid string) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	gran := core.GranularityRoom
	if v := r.URL.Query().Get("granularity"); v != "" {
		g, ok := parseGranularity(v)
		if !ok {
			writeError(w, http.StatusBadRequest, "bad granularity %q", v)
			return
		}
		gran = g
	}
	var lastSeq uint64
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad Last-Event-ID %q", v)
			return
		}
		lastSeq = n
	}

	sub := s.hub.Subscribe(uid, lastSeq)
	if sub == nil {
		writeError(w, http.StatusServiceUnavailable, "event hub shut down")
		return
	}
	defer sub.Close()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	if sub.Gap {
		// The client's Last-Event-ID predates the replay ring: it must
		// resynchronize authoritative state (places, profiles) out of band.
		if events.WriteControl(w, events.KindReset, sub.HeadSeq) != nil {
			return
		}
	}
	flusher.Flush()

	heartbeat := time.NewTicker(s.eventHeartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case ev, open := <-sub.C:
			if !open {
				if sub.Evicted() {
					// Final frame: tell the consumer it was too slow, so
					// its reconnect policy can distinguish eviction from a
					// network fault.
					_ = events.WriteControl(w, events.KindEvicted, 0)
				}
				return
			}
			if events.WriteEvent(w, events.Degrade(ev, gran)) != nil {
				return
			}
			flusher.Flush()
		case <-heartbeat.C:
			if events.WriteHeartbeat(w) != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// parseGranularity maps the wire names onto the core privacy tiers.
func parseGranularity(v string) (core.Granularity, bool) {
	switch v {
	case "area":
		return core.GranularityArea, true
	case "building":
		return core.GranularityBuilding, true
	case "room":
		return core.GranularityRoom, true
	}
	return 0, false
}
