package cloud

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// This file is the node side of the horizontal PCI cluster (DESIGN.md §15):
// the glue between the cloud Store and internal/cluster's ring, shipper and
// receiver. A ClusterNode owns one node's view of the ring, ships the
// store's WAL to its follower, applies the stream it follows, gates every
// client request on ring ownership, and moves users on topology changes.

// StableUserID derives the cluster user ID from the device identity: FNV-64a
// of the registration device key. Every node — and the client itself —
// computes the same ID for a device without coordination, which is what
// makes client-side ring routing possible before the first request.
func StableUserID(imei, email string) string {
	h := fnv.New64a()
	h.Write([]byte(deviceKey(imei, email)))
	return fmt.Sprintf("u%016x", h.Sum64())
}

// ApplyShipped journals one replicated record verbatim into the named
// engine and shard (cluster.Applier). Shipped records bypass the write gate:
// they never enqueue on this node's own stream, and they only touch users
// owned by the sending primary — disjoint from any export this node cuts.
// The replay into in-memory state is deferred (storage.AppendShipped):
// durability is what the ack promises, and materializeReplicas runs before
// this node serves or exports the replicated users.
func (s *Store) ApplyShipped(engine uint8, shard int, rec []byte) error {
	switch engine {
	case cluster.EngineMain:
		if shard < 0 || shard >= s.eng.NumShards() {
			return fmt.Errorf("cloud: shipped record for main shard %d of %d", shard, s.eng.NumShards())
		}
		return s.eng.AppendShipped(shard, rec)
	case cluster.EngineTrace:
		if shard < 0 || shard >= s.traceEng.NumShards() {
			return fmt.Errorf("cloud: shipped record for trace shard %d of %d", shard, s.traceEng.NumShards())
		}
		return s.traceEng.AppendShipped(shard, rec)
	}
	return fmt.Errorf("cloud: shipped record for unknown engine %d", engine)
}

// ApplyShippedBatch journals a contiguous run of replicated records
// (cluster.BatchApplier), grouped per engine shard so each shard pays one
// group-commit wait for the whole run instead of one per record — with a
// non-zero commit linger the per-record path costs a full linger each,
// which stalls the stream and everything queued behind it. Stream order is
// preserved within each shard, and per-shard WALs are the only place
// replication order exists, so the journaled bytes are identical to the
// per-record path's.
func (s *Store) ApplyShippedBatch(recs []cluster.ShipRecord) error {
	type dest struct {
		engine uint8
		shard  int
	}
	groups := map[dest][][]byte{}
	var order []dest
	for _, rec := range recs {
		switch rec.Engine {
		case cluster.EngineMain:
			if rec.Shard < 0 || rec.Shard >= s.eng.NumShards() {
				return fmt.Errorf("cloud: shipped record for main shard %d of %d", rec.Shard, s.eng.NumShards())
			}
		case cluster.EngineTrace:
			if rec.Shard < 0 || rec.Shard >= s.traceEng.NumShards() {
				return fmt.Errorf("cloud: shipped record for trace shard %d of %d", rec.Shard, s.traceEng.NumShards())
			}
		default:
			return fmt.Errorf("cloud: shipped record for unknown engine %d", rec.Engine)
		}
		d := dest{engine: rec.Engine, shard: rec.Shard}
		if _, ok := groups[d]; !ok {
			order = append(order, d)
		}
		groups[d] = append(groups[d], rec.Rec)
	}
	for _, d := range order {
		var err error
		if d.engine == cluster.EngineMain {
			err = s.eng.AppendShippedBatch(d.shard, groups[d])
		} else {
			err = s.traceEng.AppendShippedBatch(d.shard, groups[d])
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// materializeReplicas replays every deferred shipped record into in-memory
// state. Promotion must call it before reading ownership or serving users
// that arrived over replication.
func (s *Store) materializeReplicas() error {
	if err := s.eng.MaterializeAll(); err != nil {
		return err
	}
	return s.traceEng.MaterializeAll()
}

// applyImported journals a handed-off record through the full primary
// mutation path: unlike ApplyShipped it ships onward to this node's own
// follower, because an imported user is now this node's to replicate.
func (s *Store) applyImported(engine uint8, shard int, rec []byte) error {
	s.gate.RLock()
	defer s.gate.RUnlock()
	switch engine {
	case cluster.EngineMain:
		if shard < 0 || shard >= s.eng.NumShards() {
			return fmt.Errorf("cloud: imported record for main shard %d of %d", shard, s.eng.NumShards())
		}
		return s.eng.ApplyRecord(shard, rec)
	case cluster.EngineTrace:
		if shard < 0 || shard >= s.traceEng.NumShards() {
			return fmt.Errorf("cloud: imported record for trace shard %d of %d", shard, s.traceEng.NumShards())
		}
		return s.traceEng.ApplyRecord(shard, rec)
	}
	return fmt.Errorf("cloud: imported record for unknown engine %d", engine)
}

// userIDs returns every registered user ID.
func (s *Store) userIDs() []string {
	var ids []string
	s.eng.View(0, func() {
		ids = make([]string, 0, len(s.meta.users))
		for id := range s.meta.users {
			ids = append(ids, id)
		}
	})
	sort.Strings(ids)
	return ids
}

// exportUsersLocked builds the wholesale per-user record stream for every
// user matching own: a register record, a sync_user replacement of the
// user's mobility data, and a trace replace (or drop, so a follower's stale
// copy cannot outlive the primary's deletion). The caller must hold the
// write gate exclusively — the per-shard View locks below only protect the
// map reads against concurrent shipped applies, not the snapshot/stream
// consistency the gate provides.
func (s *Store) exportUsersLocked(own func(uid string) bool) ([]cluster.ShipRecord, error) {
	type expUser struct {
		u   User
		key string
	}
	var users []expUser
	s.eng.View(0, func() {
		for id, u := range s.meta.users {
			if own(id) {
				users = append(users, expUser{u: *u, key: deviceKey(u.IMEI, u.Email)})
			}
		}
	})
	sort.Slice(users, func(i, j int) bool { return users[i].u.ID < users[j].u.ID })

	var recs []cluster.ShipRecord
	add := func(engine uint8, shard int, rec any) error {
		b, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		recs = append(recs, cluster.ShipRecord{Engine: engine, Shard: shard, Rec: b})
		return nil
	}
	for _, eu := range users {
		uid := eu.u.ID
		if err := add(cluster.EngineMain, 0, &walRecord{Op: opRegister, User: &eu.u, DeviceKey: eu.key}); err != nil {
			return nil, err
		}
		idx, d := s.dataFor(uid)
		var err error
		s.eng.View(idx, func() {
			err = add(cluster.EngineMain, idx, &walRecord{
				Op:         opSyncUser,
				UserID:     uid,
				Places:     d.places[uid],
				Routes:     d.routes[uid],
				Profiles:   d.profiles[uid],
				Encounters: d.contacts[uid],
			})
		})
		if err != nil {
			return nil, err
		}
		tidx := s.traceShard(uid)
		s.traceEng.View(tidx, func() {
			if ut := s.traces[tidx].users[uid]; ut != nil {
				err = add(cluster.EngineTrace, tidx, &traceRecord{Op: opTraceReplace, UserID: uid, Observations: ut.obs})
			} else {
				err = add(cluster.EngineTrace, tidx, &traceRecord{Op: opTraceDrop, UserID: uid})
			}
		})
		if err != nil {
			return nil, err
		}
	}
	return recs, nil
}

// dropUsersLocked removes the named users from this node after a handoff.
// The caller must hold the write gate exclusively — the drop is the second
// half of the export-then-drop pair, and only the gate makes the pair
// atomic against writes (a write landing between the export snapshot and
// the drop would be acknowledged and then deleted). The drops are journaled
// but deliberately NOT shipped (ApplyShipped path): this node's follower
// may be the very node that just imported the users as their new primary,
// and a shipped drop would delete its primary copy. The follower's replica
// copy goes stale instead — harmless, because serving is ring-gated, and
// the next full resync rebuilds only owned users anyway. Meta goes last so
// a crash mid-drop leaves the user discoverable.
func (s *Store) dropUsersLocked(uids []string) error {
	for _, uid := range uids {
		var key string
		s.eng.View(0, func() {
			if u := s.meta.users[uid]; u != nil {
				key = deviceKey(u.IMEI, u.Email)
			}
		})
		// Eager (not the deferred AppendShipped path): the dropped users must
		// vanish from in-memory state before the handoff acks.
		drop := func(eng uint8, shard int, rec any) error {
			b, err := json.Marshal(rec)
			if err != nil {
				return err
			}
			if eng == cluster.EngineMain {
				return s.eng.ApplyShipped(shard, b)
			}
			return s.traceEng.ApplyShipped(shard, b)
		}
		idx, _ := s.dataFor(uid)
		if err := drop(cluster.EngineMain, idx, &walRecord{Op: opDropUser, UserID: uid}); err != nil {
			return err
		}
		if err := drop(cluster.EngineTrace, s.traceShard(uid), &traceRecord{Op: opTraceDrop, UserID: uid}); err != nil {
			return err
		}
		if err := drop(cluster.EngineMain, 0, &walRecord{Op: opDropMeta, UserID: uid, DeviceKey: key}); err != nil {
			return err
		}
	}
	// Tombstone the dropped users: a writer that was parked on the gate
	// during this drop re-checks ownership when it resumes and is refused
	// (ErrNotOwner) instead of re-creating state no reader is routed to.
	s.markMoved(uids)
	return nil
}

// ClusterNodeConfig configures one PCI cluster node.
type ClusterNodeConfig struct {
	// Self identifies this node in the ring (ID and advertised URL).
	Self cluster.Node
	// Peers is the initial membership, including Self (ring version 1; the
	// coordinator pushes every later version).
	Peers []cluster.Node
	// ReplDir persists the stream epoch and replication cursors ("" =
	// memory-only: every restart full-resyncs).
	ReplDir string
	// VNodes is the virtual-node count per member (0 = cluster.DefaultVNodes).
	VNodes int
	// ShipLinger holds partial replication batches briefly so concurrent
	// writers share one POST (0 = DefaultShipLinger, negative = ship each
	// batch immediately). See cluster.ShipperConfig.Linger.
	ShipLinger time.Duration
	// HTTP issues replication, proxy, and handoff requests.
	HTTP *http.Client
	// Metrics receives the pci_repl_* and pci_cluster_* families.
	Metrics *obs.Registry
	Logf    func(format string, args ...any)
}

// ClusterNode ties one Store into the cluster: it owns the node's ring
// view, the WAL shipper to its follower, and the receiver for the stream it
// follows, and it implements the ownership gate and topology-change moves.
type ClusterNode struct {
	cfg   ClusterNodeConfig
	store *Store
	ship  *cluster.Shipper
	recv  *cluster.Receiver
	httpc *http.Client
	logf  func(format string, args ...any)

	mu   sync.Mutex
	ring *cluster.Ring

	proxied   *obs.Counter // pci_cluster_proxied_total
	misrouted *obs.Counter // pci_cluster_misrouted_total
	handoffs  *obs.Counter // pci_cluster_handoff_users_total
	ringVer   *obs.Gauge   // pci_cluster_ring_version
}

// ErrStaleRing reports a pushed ring whose version does not exceed the one
// the node already holds.
var ErrStaleRing = errors.New("cloud: stale ring version")

// ErrNotOwner reports a store mutation for a user this node does not own
// under its current ring. The HTTP ownership gate runs before the handler;
// the ring can change — and a handoff can export and drop the user —
// before the store applies, and a write acknowledged after that would live
// on a node no reader is ever routed to. The store refuses it instead and
// the server answers the gate's 421 contract so the client re-targets.
var ErrNotOwner = errors.New("cloud: user not owned by this node")

// DefaultShipLinger is the default replication batch linger: long enough to
// coalesce a busy node's concurrent writers into shared POSTs, short enough
// to stay invisible next to a WAN round trip.
const DefaultShipLinger = 2 * time.Millisecond

// NewClusterNode opens the node's store (dir may be "" for memory-only) with
// replication wired in, restores replication cursors, and points the WAL
// stream at the ring-assigned follower. Close order on shutdown: HTTP server
// first, then the ClusterNode, then the Store.
func NewClusterNode(dir string, storeCfg StoreConfig, cfg ClusterNodeConfig) (*ClusterNode, error) {
	if cfg.HTTP == nil {
		cfg.HTTP = &http.Client{Timeout: 15 * time.Second}
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = cluster.DefaultVNodes
	}
	switch {
	case cfg.ShipLinger == 0:
		cfg.ShipLinger = DefaultShipLinger
	case cfg.ShipLinger < 0:
		cfg.ShipLinger = 0
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.Default()
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	dataShards, traceShards, err := plannedShards(dir, storeCfg)
	if err != nil {
		return nil, err
	}
	epoch, err := cluster.NextEpoch(cfg.ReplDir)
	if err != nil {
		return nil, err
	}
	cn := &ClusterNode{
		cfg:       cfg,
		httpc:     cfg.HTTP,
		logf:      logf,
		ring:      cluster.NewRing(1, cfg.Peers, cfg.VNodes),
		proxied:   reg.Counter("pci_cluster_proxied_total"),
		misrouted: reg.Counter("pci_cluster_misrouted_total"),
		handoffs:  reg.Counter("pci_cluster_handoff_users_total"),
		ringVer:   reg.Gauge("pci_cluster_ring_version"),
	}
	if epoch > 1 {
		// This node restarted. The cluster may have moved on while it was
		// down — in particular it may have been failed over, in which case
		// the flag-seeded v1 ring names its own promoted heir as its
		// follower, and the resync armed below would replace the heir's
		// (now primary) data with this node's stale pre-crash copy. Fetch
		// the current ring from the peers before arming anything; if no
		// peer answers, the receivers' stream admission check (verifyStream)
		// is the backstop. A first boot (epoch 1, or memory-only) skips the
		// fetch: there is no pre-crash state to protect, and on a cold
		// cluster boot no peer is up to answer.
		if nr := cn.fetchPeerRing(); nr != nil && nr.Version > cn.ring.Version {
			cn.ring = nr
			logf("cluster: node %s booted onto fetched ring v%d", cfg.Self.ID, nr.Version)
		}
	}
	cn.ship = cluster.NewShipper(cluster.ShipperConfig{
		Self:        cfg.Self.ID,
		Epoch:       epoch,
		HTTP:        cfg.HTTP,
		DataShards:  dataShards,
		TraceShards: traceShards,
		Export:      cn.exportForResync,
		RingVersion: func() uint64 { return cn.Ring().Version },
		Linger:      cfg.ShipLinger,
		Metrics:     reg,
		Logf:        logf,
	})
	storeCfg.StableIDs = true
	storeCfg.Repl = cluster.EngineSink{S: cn.ship, Engine: cluster.EngineMain}
	storeCfg.TraceRepl = cluster.EngineSink{S: cn.ship, Engine: cluster.EngineTrace}
	store, err := newStore(dir, storeCfg)
	if err != nil {
		cn.ship.Close()
		return nil, err
	}
	cn.store = store
	// Ownership re-check under the write gate (see ErrNotOwner): closes the
	// window between the HTTP gate's ring lookup and the store apply.
	store.owns = func(uid string) bool {
		id := cn.Ring().PrimaryID(uid)
		return id == "" || id == cn.cfg.Self.ID
	}
	cn.recv, err = cluster.OpenReceiver(cluster.ReceiverConfig{
		Applier:      store,
		Dir:          cfg.ReplDir,
		DataShards:   dataShards,
		TraceShards:  traceShards,
		VerifyStream: cn.verifyStream,
		Metrics:      reg,
		Logf:         logf,
	})
	if err != nil {
		cn.ship.Close()
		store.Close()
		return nil, err
	}
	if f, ok := cn.ring.Follower(cfg.Self.ID); ok {
		cn.ship.SetTarget(&f)
	}
	cn.ringVer.Set(int64(cn.ring.Version))
	return cn, nil
}

// fetchPeerRing asks every peer for its current ring and returns the
// newest one seen (nil when no peer answered). Best effort on a short
// timeout: it runs during boot, before this node serves anything, and a
// peer that is itself down just means the flag-seeded ring stands until
// the coordinator's next push.
func (cn *ClusterNode) fetchPeerRing() *cluster.Ring {
	httpc := &http.Client{Timeout: 2 * time.Second}
	var best *cluster.Ring
	for _, p := range cn.cfg.Peers {
		if p.ID == cn.cfg.Self.ID {
			continue
		}
		resp, err := httpc.Get(p.URL + cluster.PathRing)
		if err != nil {
			continue
		}
		body, rerr := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
		resp.Body.Close()
		if rerr != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		ring, derr := cluster.DecodeRing(body)
		if derr != nil {
			continue
		}
		if best == nil || ring.Version > best.Version {
			best = ring
		}
	}
	return best
}

// verifyStream is this node's replication stream admission check
// (cluster.ReceiverConfig.VerifyStream): a batch or resync is accepted
// only when the sender's stamped ring version is not provably stale.
// Cursor epochs order streams *within* one topology; this check orders
// them *across* topologies — without it a restarted pre-failover primary
// (ring v1 from flags) could wholesale-replace its promoted heir's data,
// destroying every write the heir acknowledged during the failover.
func (cn *ClusterNode) verifyStream(from string, ringVersion uint64) error {
	ring := cn.Ring()
	if ringVersion < ring.Version {
		return fmt.Errorf("stale ring v%d (this node holds v%d)", ringVersion, ring.Version)
	}
	if ringVersion == ring.Version && !ring.Alive(from) {
		return fmt.Errorf("sender %s is failed over under ring v%d", from, ring.Version)
	}
	return nil
}

// Store returns the node's store (the caller owns its lifecycle).
func (cn *ClusterNode) Store() *Store { return cn.store }

// Ring returns the node's current ring view.
func (cn *ClusterNode) Ring() *cluster.Ring {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	return cn.ring
}

// Lag reports how many records this node's follower is behind.
func (cn *ClusterNode) Lag() uint64 { return cn.ship.Lag() }

// Close stops the shipper (flushing what it can) and persists the
// receiver's cursors. The store stays open — close it after.
func (cn *ClusterNode) Close() error {
	cn.ship.Close()
	return cn.recv.Close()
}

// exportForResync is the shipper's Export callback: under the store-wide
// write gate (no write can slip between the snapshot and the baseline) it
// cuts a wholesale copy of every user this node currently owns, pinned to
// the stream position the follower's cursor re-baselines at.
func (cn *ClusterNode) exportForResync() ([]cluster.ShipRecord, uint64, error) {
	s := cn.store
	s.gate.Lock()
	defer s.gate.Unlock()
	baseline := cn.ship.Seq()
	ring := cn.Ring()
	self := cn.cfg.Self.ID
	recs, err := s.exportUsersLocked(func(uid string) bool {
		return ring.PrimaryID(uid) == self
	})
	return recs, baseline, err
}

// AdoptRing installs a newer ring version and performs the moves it
// implies: retarget the WAL stream at the new follower, full-resync when
// this node inherited ownership (its follower is missing that history), and
// hand off users it no longer owns — synchronously, so by the time the ring
// push is acknowledged the new owners hold the data.
func (cn *ClusterNode) AdoptRing(nr *cluster.Ring) error {
	cn.mu.Lock()
	old := cn.ring
	if nr.Version <= old.Version {
		cn.mu.Unlock()
		return ErrStaleRing
	}
	cn.ring = nr
	cn.mu.Unlock()
	cn.ringVer.Set(int64(nr.Version))
	self := cn.cfg.Self.ID
	cn.logf("cluster: node %s adopted ring v%d", self, nr.Version)

	// Users handed off earlier whose ranges this version routes back here
	// are no longer moved-away (the handoff back re-imports their data).
	cn.store.clearMovedOwned(func(uid string) bool { return nr.PrimaryID(uid) == self })

	// Users this node may now own could still sit in the deferred-replay
	// queue; the ownership scan and any export below need them in state.
	if err := cn.store.materializeReplicas(); err != nil {
		return fmt.Errorf("materialize replicas: %w", err)
	}

	if f, ok := nr.Follower(self); ok {
		cn.ship.SetTarget(&f)
	} else {
		cn.ship.SetTarget(nil)
	}

	var lost []string
	gained := false
	for _, uid := range cn.store.userIDs() {
		oldOwn := old.PrimaryID(uid) == self
		newOwn := nr.PrimaryID(uid) == self
		if oldOwn && !newOwn {
			lost = append(lost, uid)
		}
		if newOwn && !oldOwn {
			gained = true
		}
	}
	if gained {
		// Inherited users exist here only as replica or handed-off state the
		// follower never saw on this stream: re-baseline it wholesale.
		cn.ship.ForceResync()
	}
	if len(lost) > 0 {
		cn.handoff(nr, lost)
	}
	return nil
}

// handoff transfers the named users to their new owners and drops the local
// copies. Export, delivery, and drop run as one atomic step under the
// store-wide write gate: no write — stamped, unstamped, or proxied — can
// land between the snapshot the new owner receives and the local drop, so
// nothing acknowledged is ever deleted un-transferred. Holding the gate
// across the POST stalls this node's writes for one bounded round trip
// (the HTTP client timeout caps it); on failure the gate is released
// between attempts, writes proceed, and the next attempt's fresh export
// captures them. A destination that cannot be reached keeps its users here
// — data is never dropped unacknowledged; the users stay served by the
// ownership gate's redirect until a later ring version retries the move.
// (Two nodes handing off to each other could block on each other's gates
// for one timeout; a single membership change only ever moves keys toward
// or away from one node, so the pair never arises from one ring step.)
func (cn *ClusterNode) handoff(ring *cluster.Ring, uids []string) {
	byDest := map[string][]string{}
	for _, uid := range uids {
		if owner, ok := ring.Primary(uid); ok && owner.ID != cn.cfg.Self.ID {
			byDest[owner.ID] = append(byDest[owner.ID], uid)
		}
	}
	for destID, users := range byDest {
		dest, ok := ring.NodeByID(destID)
		if !ok {
			continue
		}
		set := map[string]bool{}
		for _, uid := range users {
			set[uid] = true
		}
		s := cn.store
		done := false
		for attempt := 0; attempt < 3 && !done; attempt++ {
			if attempt > 0 {
				time.Sleep(time.Duration(attempt) * 200 * time.Millisecond)
			}
			s.gate.Lock()
			recs, err := s.exportUsersLocked(func(uid string) bool { return set[uid] })
			if err != nil {
				s.gate.Unlock()
				cn.logf("cluster: handoff export to %s failed: %v", destID, err)
				break
			}
			if err := cn.postHandoff(dest, recs); err != nil {
				s.gate.Unlock()
				cn.logf("cluster: handoff of %d users to %s failed (keeping local copies): %v", len(users), destID, err)
				continue
			}
			err = s.dropUsersLocked(users)
			s.gate.Unlock()
			if err != nil {
				cn.logf("cluster: dropping %d handed-off users: %v", len(users), err)
				break
			}
			done = true
		}
		if !done {
			continue
		}
		cn.handoffs.Add(uint64(len(users)))
		cn.logf("cluster: handed %d users to %s", len(users), destID)
	}
}

// postHandoff delivers one handoff batch — a single attempt, because the
// caller holds the write gate across it; retries (with fresh exports) are
// the caller's loop.
func (cn *ClusterNode) postHandoff(dest cluster.Node, recs []cluster.ShipRecord) error {
	body, err := json.Marshal(cluster.HandoffRequest{From: cn.cfg.Self.ID, Records: recs})
	if err != nil {
		return err
	}
	resp, err := cn.httpc.Post(dest.URL+cluster.PathHandoff, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	var hr cluster.HandoffResponse
	err = json.NewDecoder(resp.Body).Decode(&hr)
	resp.Body.Close()
	switch {
	case err != nil:
		return err
	case !hr.OK:
		return fmt.Errorf("%s", hr.Error)
	}
	return nil
}

// Mount attaches the node-to-node cluster endpoints (replication stream,
// ring exchange, handoff) to mux. These are mounted outside the ownership
// gate and the request timeout: they are peer traffic, not client traffic.
func (cn *ClusterNode) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST "+cluster.PathReplBatch, cn.recv.HandleBatch)
	mux.HandleFunc("POST "+cluster.PathReplSync, cn.recv.HandleSync)
	mux.HandleFunc("GET "+cluster.PathReplCursor, cn.recv.HandleCursor)
	mux.HandleFunc("GET "+cluster.PathRing, func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(cn.Ring().Encode())
	})
	mux.HandleFunc("POST "+cluster.PathRing, func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
		if err != nil {
			writeError(w, http.StatusBadRequest, "reading ring: %v", err)
			return
		}
		ring, err := cluster.DecodeRing(body)
		if err != nil {
			writeError(w, http.StatusBadRequest, "decoding ring: %v", err)
			return
		}
		if err := cn.AdoptRing(ring); err != nil {
			if errors.Is(err, ErrStaleRing) {
				writeError(w, http.StatusConflict, "%v", err)
				return
			}
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, struct{}{})
	})
	mux.HandleFunc("POST "+cluster.PathHandoff, func(w http.ResponseWriter, r *http.Request) {
		var req cluster.HandoffRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "decoding handoff: %v", err)
			return
		}
		for i, rec := range req.Records {
			if err := cn.store.applyImported(rec.Engine, rec.Shard, rec.Rec); err != nil {
				writeJSON(w, http.StatusOK, cluster.HandoffResponse{
					Error: fmt.Sprintf("apply handoff record %d: %v", i, err),
				})
				return
			}
		}
		cn.logf("cluster: imported %d handoff records from %s", len(req.Records), req.From)
		writeJSON(w, http.StatusOK, cluster.HandoffResponse{OK: true})
	})
}

// owner resolves the routing key's owner under the current ring, reporting
// whether this node is it.
func (cn *ClusterNode) owner(uid string) (cluster.Node, bool) {
	ring := cn.Ring()
	owner, ok := ring.Primary(uid)
	if !ok {
		return cluster.Node{}, true // no ring owner: serve locally
	}
	return owner, owner.ID == cn.cfg.Self.ID
}

// Gate is the ownership middleware for client traffic: a request stamped
// with a routing key this node does not own is proxied to the owner when
// this node is the owner's follower (the failover window — the client fell
// over here for a reason), and answered 421 Misdirected Request with the
// owner's URL otherwise. Unstamped requests (non-cluster-aware clients) are
// served locally. A proxied request is ownership-checked like any other:
// the proxying peer may have routed it off a stale ring, and serving it
// here would land the write on a non-owner that silently diverges from the
// real owner's copy. It is just never proxied a second time (single hop,
// loop guard) — a misdirected one bounces 421 with the owner's URL, which
// the proxying node relays verbatim so the client re-targets.
func (cn *ClusterNode) Gate(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		uid := r.Header.Get(cluster.HeaderKey)
		if uid == "" {
			next.ServeHTTP(w, r)
			return
		}
		owner, self := cn.owner(uid)
		if self {
			next.ServeHTTP(w, r)
			return
		}
		if r.Header.Get(cluster.HeaderProxied) == "" {
			if f, ok := cn.Ring().Follower(owner.ID); ok && f.ID == cn.cfg.Self.ID {
				cn.proxy(w, r, owner)
				return
			}
		}
		cn.redirect(w, owner, uid)
	})
}

// GateStreaming guards a streaming handler (SSE, chunked ingest): proxying
// a long-lived stream through a second node would pin two connections per
// client, so a misrouted stream is always redirected, never proxied.
func (cn *ClusterNode) GateStreaming(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		uid := r.Header.Get(cluster.HeaderKey)
		if uid == "" {
			next(w, r)
			return
		}
		if owner, self := cn.owner(uid); !self {
			cn.redirect(w, owner, uid)
			return
		}
		next(w, r)
	}
}

func (cn *ClusterNode) redirect(w http.ResponseWriter, owner cluster.Node, uid string) {
	cn.misrouted.Inc()
	w.Header().Set(cluster.HeaderOwner, owner.URL)
	writeError(w, http.StatusMisdirectedRequest, "user %s is owned by node %s", uid, owner.ID)
}

// proxy forwards one buffered request to the owner and relays the response.
// A proxy transport failure answers 503 so the client's retry loop runs its
// own failover instead of trusting this hop.
func (cn *ClusterNode) proxy(w http.ResponseWriter, r *http.Request, owner cluster.Node) {
	body, err := io.ReadAll(io.LimitReader(r.Body, DefaultMaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading request body: %v", err)
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, owner.URL+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		writeError(w, http.StatusInternalServerError, "building proxy request: %v", err)
		return
	}
	req.Header = r.Header.Clone()
	req.Header.Set(cluster.HeaderProxied, "1")
	resp, err := cn.httpc.Do(req)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "proxy to owner %s failed: %v", owner.ID, err)
		return
	}
	defer resp.Body.Close()
	cn.proxied.Inc()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}
