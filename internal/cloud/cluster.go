package cloud

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// This file is the node side of the horizontal PCI cluster (DESIGN.md §15):
// the glue between the cloud Store and internal/cluster's ring, shipper and
// receiver. A ClusterNode owns one node's view of the ring, ships the
// store's WAL to its follower, applies the stream it follows, gates every
// client request on ring ownership, and moves users on topology changes.

// StableUserID derives the cluster user ID from the device identity: FNV-64a
// of the registration device key. Every node — and the client itself —
// computes the same ID for a device without coordination, which is what
// makes client-side ring routing possible before the first request.
func StableUserID(imei, email string) string {
	h := fnv.New64a()
	h.Write([]byte(deviceKey(imei, email)))
	return fmt.Sprintf("u%016x", h.Sum64())
}

// ApplyShipped journals one replicated record verbatim into the named
// engine and shard (cluster.Applier). Shipped records bypass the write gate:
// they never enqueue on this node's own stream, and they only touch users
// owned by the sending primary — disjoint from any export this node cuts.
// The replay into in-memory state is deferred (storage.AppendShipped):
// durability is what the ack promises, and materializeReplicas runs before
// this node serves or exports the replicated users.
func (s *Store) ApplyShipped(engine uint8, shard int, rec []byte) error {
	switch engine {
	case cluster.EngineMain:
		if shard < 0 || shard >= s.eng.NumShards() {
			return fmt.Errorf("cloud: shipped record for main shard %d of %d", shard, s.eng.NumShards())
		}
		return s.eng.AppendShipped(shard, rec)
	case cluster.EngineTrace:
		if shard < 0 || shard >= s.traceEng.NumShards() {
			return fmt.Errorf("cloud: shipped record for trace shard %d of %d", shard, s.traceEng.NumShards())
		}
		return s.traceEng.AppendShipped(shard, rec)
	}
	return fmt.Errorf("cloud: shipped record for unknown engine %d", engine)
}

// materializeReplicas replays every deferred shipped record into in-memory
// state. Promotion must call it before reading ownership or serving users
// that arrived over replication.
func (s *Store) materializeReplicas() error {
	if err := s.eng.MaterializeAll(); err != nil {
		return err
	}
	return s.traceEng.MaterializeAll()
}

// applyImported journals a handed-off record through the full primary
// mutation path: unlike ApplyShipped it ships onward to this node's own
// follower, because an imported user is now this node's to replicate.
func (s *Store) applyImported(engine uint8, shard int, rec []byte) error {
	s.gate.RLock()
	defer s.gate.RUnlock()
	switch engine {
	case cluster.EngineMain:
		if shard < 0 || shard >= s.eng.NumShards() {
			return fmt.Errorf("cloud: imported record for main shard %d of %d", shard, s.eng.NumShards())
		}
		return s.eng.ApplyRecord(shard, rec)
	case cluster.EngineTrace:
		if shard < 0 || shard >= s.traceEng.NumShards() {
			return fmt.Errorf("cloud: imported record for trace shard %d of %d", shard, s.traceEng.NumShards())
		}
		return s.traceEng.ApplyRecord(shard, rec)
	}
	return fmt.Errorf("cloud: imported record for unknown engine %d", engine)
}

// userIDs returns every registered user ID.
func (s *Store) userIDs() []string {
	var ids []string
	s.eng.View(0, func() {
		ids = make([]string, 0, len(s.meta.users))
		for id := range s.meta.users {
			ids = append(ids, id)
		}
	})
	sort.Strings(ids)
	return ids
}

// exportUsersLocked builds the wholesale per-user record stream for every
// user matching own: a register record, a sync_user replacement of the
// user's mobility data, and a trace replace (or drop, so a follower's stale
// copy cannot outlive the primary's deletion). The caller must hold the
// write gate exclusively — the per-shard View locks below only protect the
// map reads against concurrent shipped applies, not the snapshot/stream
// consistency the gate provides.
func (s *Store) exportUsersLocked(own func(uid string) bool) ([]cluster.ShipRecord, error) {
	type expUser struct {
		u   User
		key string
	}
	var users []expUser
	s.eng.View(0, func() {
		for id, u := range s.meta.users {
			if own(id) {
				users = append(users, expUser{u: *u, key: deviceKey(u.IMEI, u.Email)})
			}
		}
	})
	sort.Slice(users, func(i, j int) bool { return users[i].u.ID < users[j].u.ID })

	var recs []cluster.ShipRecord
	add := func(engine uint8, shard int, rec any) error {
		b, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		recs = append(recs, cluster.ShipRecord{Engine: engine, Shard: shard, Rec: b})
		return nil
	}
	for _, eu := range users {
		uid := eu.u.ID
		if err := add(cluster.EngineMain, 0, &walRecord{Op: opRegister, User: &eu.u, DeviceKey: eu.key}); err != nil {
			return nil, err
		}
		idx, d := s.dataFor(uid)
		var err error
		s.eng.View(idx, func() {
			err = add(cluster.EngineMain, idx, &walRecord{
				Op:         opSyncUser,
				UserID:     uid,
				Places:     d.places[uid],
				Routes:     d.routes[uid],
				Profiles:   d.profiles[uid],
				Encounters: d.contacts[uid],
			})
		})
		if err != nil {
			return nil, err
		}
		tidx := s.traceShard(uid)
		s.traceEng.View(tidx, func() {
			if ut := s.traces[tidx].users[uid]; ut != nil {
				err = add(cluster.EngineTrace, tidx, &traceRecord{Op: opTraceReplace, UserID: uid, Observations: ut.obs})
			} else {
				err = add(cluster.EngineTrace, tidx, &traceRecord{Op: opTraceDrop, UserID: uid})
			}
		})
		if err != nil {
			return nil, err
		}
	}
	return recs, nil
}

// dropUsersLocal removes the named users from this node after a handoff.
// The drops are journaled but deliberately NOT shipped (ApplyShipped path):
// this node's follower may be the very node that just imported the users as
// their new primary, and a shipped drop would delete its primary copy. The
// follower's replica copy goes stale instead — harmless, because serving is
// ring-gated, and the next full resync rebuilds only owned users anyway.
// Meta goes last so a crash mid-drop leaves the user discoverable.
func (s *Store) dropUsersLocal(uids []string) error {
	s.gate.RLock()
	defer s.gate.RUnlock()
	for _, uid := range uids {
		var key string
		s.eng.View(0, func() {
			if u := s.meta.users[uid]; u != nil {
				key = deviceKey(u.IMEI, u.Email)
			}
		})
		// Eager (not the deferred AppendShipped path): the dropped users must
		// vanish from in-memory state before the handoff acks.
		drop := func(eng uint8, shard int, rec any) error {
			b, err := json.Marshal(rec)
			if err != nil {
				return err
			}
			if eng == cluster.EngineMain {
				return s.eng.ApplyShipped(shard, b)
			}
			return s.traceEng.ApplyShipped(shard, b)
		}
		idx, _ := s.dataFor(uid)
		if err := drop(cluster.EngineMain, idx, &walRecord{Op: opDropUser, UserID: uid}); err != nil {
			return err
		}
		if err := drop(cluster.EngineTrace, s.traceShard(uid), &traceRecord{Op: opTraceDrop, UserID: uid}); err != nil {
			return err
		}
		if err := drop(cluster.EngineMain, 0, &walRecord{Op: opDropMeta, UserID: uid, DeviceKey: key}); err != nil {
			return err
		}
	}
	return nil
}

// ClusterNodeConfig configures one PCI cluster node.
type ClusterNodeConfig struct {
	// Self identifies this node in the ring (ID and advertised URL).
	Self cluster.Node
	// Peers is the initial membership, including Self (ring version 1; the
	// coordinator pushes every later version).
	Peers []cluster.Node
	// ReplDir persists the stream epoch and replication cursors ("" =
	// memory-only: every restart full-resyncs).
	ReplDir string
	// VNodes is the virtual-node count per member (0 = cluster.DefaultVNodes).
	VNodes int
	// ShipLinger holds partial replication batches briefly so concurrent
	// writers share one POST (0 = DefaultShipLinger, negative = ship each
	// batch immediately). See cluster.ShipperConfig.Linger.
	ShipLinger time.Duration
	// HTTP issues replication, proxy, and handoff requests.
	HTTP *http.Client
	// Metrics receives the pci_repl_* and pci_cluster_* families.
	Metrics *obs.Registry
	Logf    func(format string, args ...any)
}

// ClusterNode ties one Store into the cluster: it owns the node's ring
// view, the WAL shipper to its follower, and the receiver for the stream it
// follows, and it implements the ownership gate and topology-change moves.
type ClusterNode struct {
	cfg   ClusterNodeConfig
	store *Store
	ship  *cluster.Shipper
	recv  *cluster.Receiver
	httpc *http.Client
	logf  func(format string, args ...any)

	mu   sync.Mutex
	ring *cluster.Ring

	proxied   *obs.Counter // pci_cluster_proxied_total
	misrouted *obs.Counter // pci_cluster_misrouted_total
	handoffs  *obs.Counter // pci_cluster_handoff_users_total
	ringVer   *obs.Gauge   // pci_cluster_ring_version
}

// ErrStaleRing reports a pushed ring whose version does not exceed the one
// the node already holds.
var ErrStaleRing = errors.New("cloud: stale ring version")

// DefaultShipLinger is the default replication batch linger: long enough to
// coalesce a busy node's concurrent writers into shared POSTs, short enough
// to stay invisible next to a WAN round trip.
const DefaultShipLinger = 2 * time.Millisecond

// NewClusterNode opens the node's store (dir may be "" for memory-only) with
// replication wired in, restores replication cursors, and points the WAL
// stream at the ring-assigned follower. Close order on shutdown: HTTP server
// first, then the ClusterNode, then the Store.
func NewClusterNode(dir string, storeCfg StoreConfig, cfg ClusterNodeConfig) (*ClusterNode, error) {
	if cfg.HTTP == nil {
		cfg.HTTP = &http.Client{Timeout: 15 * time.Second}
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = cluster.DefaultVNodes
	}
	switch {
	case cfg.ShipLinger == 0:
		cfg.ShipLinger = DefaultShipLinger
	case cfg.ShipLinger < 0:
		cfg.ShipLinger = 0
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.Default()
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	dataShards, traceShards, err := plannedShards(dir, storeCfg)
	if err != nil {
		return nil, err
	}
	epoch, err := cluster.NextEpoch(cfg.ReplDir)
	if err != nil {
		return nil, err
	}
	cn := &ClusterNode{
		cfg:       cfg,
		httpc:     cfg.HTTP,
		logf:      logf,
		ring:      cluster.NewRing(1, cfg.Peers, cfg.VNodes),
		proxied:   reg.Counter("pci_cluster_proxied_total"),
		misrouted: reg.Counter("pci_cluster_misrouted_total"),
		handoffs:  reg.Counter("pci_cluster_handoff_users_total"),
		ringVer:   reg.Gauge("pci_cluster_ring_version"),
	}
	cn.ship = cluster.NewShipper(cluster.ShipperConfig{
		Self:        cfg.Self.ID,
		Epoch:       epoch,
		HTTP:        cfg.HTTP,
		DataShards:  dataShards,
		TraceShards: traceShards,
		Export:      cn.exportForResync,
		Linger:      cfg.ShipLinger,
		Metrics:     reg,
		Logf:        logf,
	})
	storeCfg.StableIDs = true
	storeCfg.Repl = cluster.EngineSink{S: cn.ship, Engine: cluster.EngineMain}
	storeCfg.TraceRepl = cluster.EngineSink{S: cn.ship, Engine: cluster.EngineTrace}
	store, err := newStore(dir, storeCfg)
	if err != nil {
		cn.ship.Close()
		return nil, err
	}
	cn.store = store
	cn.recv, err = cluster.OpenReceiver(cluster.ReceiverConfig{
		Applier:     store,
		Dir:         cfg.ReplDir,
		DataShards:  dataShards,
		TraceShards: traceShards,
		Metrics:     reg,
		Logf:        logf,
	})
	if err != nil {
		cn.ship.Close()
		store.Close()
		return nil, err
	}
	if f, ok := cn.ring.Follower(cfg.Self.ID); ok {
		cn.ship.SetTarget(&f)
	}
	cn.ringVer.Set(int64(cn.ring.Version))
	return cn, nil
}

// Store returns the node's store (the caller owns its lifecycle).
func (cn *ClusterNode) Store() *Store { return cn.store }

// Ring returns the node's current ring view.
func (cn *ClusterNode) Ring() *cluster.Ring {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	return cn.ring
}

// Lag reports how many records this node's follower is behind.
func (cn *ClusterNode) Lag() uint64 { return cn.ship.Lag() }

// Close stops the shipper (flushing what it can) and persists the
// receiver's cursors. The store stays open — close it after.
func (cn *ClusterNode) Close() error {
	cn.ship.Close()
	return cn.recv.Close()
}

// exportForResync is the shipper's Export callback: under the store-wide
// write gate (no write can slip between the snapshot and the baseline) it
// cuts a wholesale copy of every user this node currently owns, pinned to
// the stream position the follower's cursor re-baselines at.
func (cn *ClusterNode) exportForResync() ([]cluster.ShipRecord, uint64, error) {
	s := cn.store
	s.gate.Lock()
	defer s.gate.Unlock()
	baseline := cn.ship.Seq()
	ring := cn.Ring()
	self := cn.cfg.Self.ID
	recs, err := s.exportUsersLocked(func(uid string) bool {
		return ring.PrimaryID(uid) == self
	})
	return recs, baseline, err
}

// AdoptRing installs a newer ring version and performs the moves it
// implies: retarget the WAL stream at the new follower, full-resync when
// this node inherited ownership (its follower is missing that history), and
// hand off users it no longer owns — synchronously, so by the time the ring
// push is acknowledged the new owners hold the data.
func (cn *ClusterNode) AdoptRing(nr *cluster.Ring) error {
	cn.mu.Lock()
	old := cn.ring
	if nr.Version <= old.Version {
		cn.mu.Unlock()
		return ErrStaleRing
	}
	cn.ring = nr
	cn.mu.Unlock()
	cn.ringVer.Set(int64(nr.Version))
	self := cn.cfg.Self.ID
	cn.logf("cluster: node %s adopted ring v%d", self, nr.Version)

	// Users this node may now own could still sit in the deferred-replay
	// queue; the ownership scan and any export below need them in state.
	if err := cn.store.materializeReplicas(); err != nil {
		return fmt.Errorf("materialize replicas: %w", err)
	}

	if f, ok := nr.Follower(self); ok {
		cn.ship.SetTarget(&f)
	} else {
		cn.ship.SetTarget(nil)
	}

	var lost []string
	gained := false
	for _, uid := range cn.store.userIDs() {
		oldOwn := old.PrimaryID(uid) == self
		newOwn := nr.PrimaryID(uid) == self
		if oldOwn && !newOwn {
			lost = append(lost, uid)
		}
		if newOwn && !oldOwn {
			gained = true
		}
	}
	if gained {
		// Inherited users exist here only as replica or handed-off state the
		// follower never saw on this stream: re-baseline it wholesale.
		cn.ship.ForceResync()
	}
	if len(lost) > 0 {
		cn.handoff(nr, lost)
	}
	return nil
}

// handoff transfers the named users to their new owners and drops the local
// copies. A destination that cannot be reached keeps its users here — data
// is never dropped unacknowledged; the users stay served by the ownership
// gate's redirect until a later ring version retries the move.
func (cn *ClusterNode) handoff(ring *cluster.Ring, uids []string) {
	byDest := map[string][]string{}
	for _, uid := range uids {
		if owner, ok := ring.Primary(uid); ok && owner.ID != cn.cfg.Self.ID {
			byDest[owner.ID] = append(byDest[owner.ID], uid)
		}
	}
	for destID, users := range byDest {
		dest, ok := ring.NodeByID(destID)
		if !ok {
			continue
		}
		set := map[string]bool{}
		for _, uid := range users {
			set[uid] = true
		}
		s := cn.store
		s.gate.Lock()
		recs, err := s.exportUsersLocked(func(uid string) bool { return set[uid] })
		s.gate.Unlock()
		if err != nil {
			cn.logf("cluster: handoff export to %s failed: %v", destID, err)
			continue
		}
		if err := cn.postHandoff(dest, recs); err != nil {
			cn.logf("cluster: handoff of %d users to %s failed (keeping local copies): %v", len(users), destID, err)
			continue
		}
		if err := s.dropUsersLocal(users); err != nil {
			cn.logf("cluster: dropping %d handed-off users: %v", len(users), err)
			continue
		}
		cn.handoffs.Add(uint64(len(users)))
		cn.logf("cluster: handed %d users to %s", len(users), destID)
	}
}

// postHandoff delivers one handoff batch, with bounded retries — the
// destination just adopted the same ring and may still be settling.
func (cn *ClusterNode) postHandoff(dest cluster.Node, recs []cluster.ShipRecord) error {
	body, err := json.Marshal(cluster.HandoffRequest{From: cn.cfg.Self.ID, Records: recs})
	if err != nil {
		return err
	}
	var last error
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(attempt) * 200 * time.Millisecond)
		}
		resp, err := cn.httpc.Post(dest.URL+cluster.PathHandoff, "application/json", bytes.NewReader(body))
		if err != nil {
			last = err
			continue
		}
		var hr cluster.HandoffResponse
		err = json.NewDecoder(resp.Body).Decode(&hr)
		resp.Body.Close()
		switch {
		case err != nil:
			last = err
		case !hr.OK:
			last = fmt.Errorf("%s", hr.Error)
		default:
			return nil
		}
	}
	return last
}

// Mount attaches the node-to-node cluster endpoints (replication stream,
// ring exchange, handoff) to mux. These are mounted outside the ownership
// gate and the request timeout: they are peer traffic, not client traffic.
func (cn *ClusterNode) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST "+cluster.PathReplBatch, cn.recv.HandleBatch)
	mux.HandleFunc("POST "+cluster.PathReplSync, cn.recv.HandleSync)
	mux.HandleFunc("GET "+cluster.PathReplCursor, cn.recv.HandleCursor)
	mux.HandleFunc("GET "+cluster.PathRing, func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(cn.Ring().Encode())
	})
	mux.HandleFunc("POST "+cluster.PathRing, func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
		if err != nil {
			writeError(w, http.StatusBadRequest, "reading ring: %v", err)
			return
		}
		ring, err := cluster.DecodeRing(body)
		if err != nil {
			writeError(w, http.StatusBadRequest, "decoding ring: %v", err)
			return
		}
		if err := cn.AdoptRing(ring); err != nil {
			if errors.Is(err, ErrStaleRing) {
				writeError(w, http.StatusConflict, "%v", err)
				return
			}
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, struct{}{})
	})
	mux.HandleFunc("POST "+cluster.PathHandoff, func(w http.ResponseWriter, r *http.Request) {
		var req cluster.HandoffRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "decoding handoff: %v", err)
			return
		}
		for i, rec := range req.Records {
			if err := cn.store.applyImported(rec.Engine, rec.Shard, rec.Rec); err != nil {
				writeJSON(w, http.StatusOK, cluster.HandoffResponse{
					Error: fmt.Sprintf("apply handoff record %d: %v", i, err),
				})
				return
			}
		}
		cn.logf("cluster: imported %d handoff records from %s", len(req.Records), req.From)
		writeJSON(w, http.StatusOK, cluster.HandoffResponse{OK: true})
	})
}

// owner resolves the routing key's owner under the current ring, reporting
// whether this node is it.
func (cn *ClusterNode) owner(uid string) (cluster.Node, bool) {
	ring := cn.Ring()
	owner, ok := ring.Primary(uid)
	if !ok {
		return cluster.Node{}, true // no ring owner: serve locally
	}
	return owner, owner.ID == cn.cfg.Self.ID
}

// Gate is the ownership middleware for client traffic: a request stamped
// with a routing key this node does not own is proxied to the owner when
// this node is the owner's follower (the failover window — the client fell
// over here for a reason), and answered 421 Misdirected Request with the
// owner's URL otherwise. Unstamped requests (non-cluster-aware clients) and
// already-proxied requests (single hop, loop guard) are served locally.
func (cn *ClusterNode) Gate(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		uid := r.Header.Get(cluster.HeaderKey)
		if uid == "" || r.Header.Get(cluster.HeaderProxied) != "" {
			next.ServeHTTP(w, r)
			return
		}
		owner, self := cn.owner(uid)
		if self {
			next.ServeHTTP(w, r)
			return
		}
		if f, ok := cn.Ring().Follower(owner.ID); ok && f.ID == cn.cfg.Self.ID {
			cn.proxy(w, r, owner)
			return
		}
		cn.redirect(w, owner, uid)
		return
	})
}

// GateStreaming guards a streaming handler (SSE, chunked ingest): proxying
// a long-lived stream through a second node would pin two connections per
// client, so a misrouted stream is always redirected, never proxied.
func (cn *ClusterNode) GateStreaming(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		uid := r.Header.Get(cluster.HeaderKey)
		if uid == "" {
			next(w, r)
			return
		}
		if owner, self := cn.owner(uid); !self {
			cn.redirect(w, owner, uid)
			return
		}
		next(w, r)
	}
}

func (cn *ClusterNode) redirect(w http.ResponseWriter, owner cluster.Node, uid string) {
	cn.misrouted.Inc()
	w.Header().Set(cluster.HeaderOwner, owner.URL)
	writeError(w, http.StatusMisdirectedRequest, "user %s is owned by node %s", uid, owner.ID)
}

// proxy forwards one buffered request to the owner and relays the response.
// A proxy transport failure answers 503 so the client's retry loop runs its
// own failover instead of trusting this hop.
func (cn *ClusterNode) proxy(w http.ResponseWriter, r *http.Request, owner cluster.Node) {
	body, err := io.ReadAll(io.LimitReader(r.Body, DefaultMaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading request body: %v", err)
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, owner.URL+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		writeError(w, http.StatusInternalServerError, "building proxy request: %v", err)
		return
	}
	req.Header = r.Header.Clone()
	req.Header.Set(cluster.HeaderProxied, "1")
	resp, err := cn.httpc.Do(req)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "proxy to owner %s failed: %v", owner.ID, err)
		return
	}
	defer resp.Body.Close()
	cn.proxied.Inc()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}
