package cloud

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/events"
	"repro/internal/gsm"
	"repro/internal/profile"
	"repro/internal/route"
	"repro/internal/trace"
	"repro/internal/world"
)

// Server is the PMWare Cloud Instance HTTP front end. Construct with
// NewServer and mount via Handler().
type Server struct {
	store     *Store
	analytics *Analytics
	cells     *CellDatabase
	popular   *PopularIndex
	pool      *discoverPool

	gsmParams   gsm.Params
	routeParams route.Params
	reqTimeout  time.Duration
	maxBody     int64

	discoverWorkers int
	discoverQueue   int

	hub            *events.Hub
	ingest         *ingestState
	eventQueue     int
	eventHistory   int
	eventHeartbeat time.Duration

	metrics       *serverMetrics
	slowThreshold time.Duration
	slowLog       *log.Logger

	cnode *ClusterNode

	mux *http.ServeMux
}

// DefaultMaxBodyBytes caps request bodies when no -max-body override is
// given. Bodies over the cap answer 413 (which the client surfaces as
// ErrRequestTooLarge, not a transient fault).
const DefaultMaxBodyBytes = 64 << 20

// DefaultRequestTimeout bounds how long one request may occupy a handler
// before the middleware replies 503; a wedged handler can then never pin a
// mux worker indefinitely. The client treats the 503 as retryable.
const DefaultRequestTimeout = 30 * time.Second

// DefaultEventHeartbeat is the SSE comment-frame period on idle event
// subscriptions: frequent enough that a dead peer is noticed and NATs keep
// the mapping, rare enough to cost nothing.
const DefaultEventHeartbeat = 15 * time.Second

// ServerOption customizes a Server.
type ServerOption func(*Server)

// WithCellDatabase installs the Cell-ID geolocation database.
func WithCellDatabase(db *CellDatabase) ServerOption {
	return func(s *Server) { s.cells = db }
}

// WithGSMParams overrides the GCA parameters used for offloaded discovery.
func WithGSMParams(p gsm.Params) ServerOption {
	return func(s *Server) { s.gsmParams = p }
}

// WithRouteParams overrides route-extraction parameters.
func WithRouteParams(p route.Params) ServerOption {
	return func(s *Server) { s.routeParams = p }
}

// WithRequestTimeout overrides the per-request handler deadline (0 disables
// the timeout middleware entirely).
func WithRequestTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.reqTimeout = d }
}

// WithDiscoverPool sizes the discovery worker pool: workers bounds how many
// GCA runs execute concurrently, queueLen how many may wait before the
// endpoint answers 429. Zero values keep the defaults.
func WithDiscoverPool(workers, queueLen int) ServerOption {
	return func(s *Server) {
		s.discoverWorkers = workers
		s.discoverQueue = queueLen
	}
}

// WithMaxBodyBytes overrides the request body cap (0 keeps the default).
// Streaming endpoints are exempt (DESIGN.md §13).
func WithMaxBodyBytes(n int64) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.maxBody = n
		}
	}
}

// WithEventQueue sizes the per-subscriber event queue (the slow-consumer
// eviction threshold) and the per-user replay ring backing Last-Event-ID
// resume. Zero values keep the defaults (64 and 256).
func WithEventQueue(queueCap, history int) ServerOption {
	return func(s *Server) {
		s.eventQueue = queueCap
		s.eventHistory = history
	}
}

// WithEventHeartbeat overrides the SSE heartbeat period (0 keeps the
// default).
func WithEventHeartbeat(d time.Duration) ServerOption {
	return func(s *Server) {
		if d > 0 {
			s.eventHeartbeat = d
		}
	}
}

// WithClusterNode attaches this server to a PCI cluster node: client traffic
// is gated on ring ownership, and the node-to-node replication/ring/handoff
// endpoints are mounted. The server must be built over cn.Store().
func WithClusterNode(cn *ClusterNode) ServerOption {
	return func(s *Server) { s.cnode = cn }
}

// NewServer builds the cloud instance over the given store.
func NewServer(store *Store, opts ...ServerOption) *Server {
	s := &Server{
		store:       store,
		analytics:   NewAnalytics(store),
		gsmParams:   gsm.DefaultParams(),
		routeParams: route.DefaultParams(),
		reqTimeout:  DefaultRequestTimeout,
		maxBody:     DefaultMaxBodyBytes,
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.metrics == nil {
		s.metrics = newServerMetrics(nil)
	}
	s.popular = NewPopularIndex(store, s.cells)
	s.pool = newDiscoverPool(store, s.gsmParams, s.discoverWorkers, s.discoverQueue, newDiscoverMetrics(s.metrics.reg))
	if s.eventHeartbeat <= 0 {
		s.eventHeartbeat = DefaultEventHeartbeat
	}
	s.hub = events.NewHub(events.Config{
		QueueCap: s.eventQueue,
		History:  s.eventHistory,
		Registry: s.metrics.reg,
	})
	s.ingest = newIngestState()
	s.mux = http.NewServeMux()
	s.routesMux()
	return s
}

// Close stops the discovery worker pool and the event hub (closing every
// subscriber stream, which unblocks any SSE handlers still attached). It
// does not close the store (the store may be shared; the caller owns its
// lifecycle).
func (s *Server) Close() {
	s.pool.close()
	s.hub.Close()
}

// Hub exposes the event fanout hub (the PMS-side bridge and tests publish
// and subscribe through it directly).
func (s *Server) Hub() *events.Hub { return s.hub }

// Handler returns the HTTP handler for the full API surface. The regular
// API is wrapped in the request-timeout middleware; the streaming routes
// mount beside it, exempt from both the timeout (http.TimeoutHandler
// buffers, which would strip http.Flusher and kill SSE) and the -max-body
// cap (a long-lived stream legitimately outgrows any per-request limit).
// When a cluster node is attached, the regular API additionally passes the
// ownership gate (misrouted requests proxied or answered 421), streaming
// routes get the redirect-only gate (proxying a long-lived stream would pin
// two connections per client), and the peer-facing cluster endpoints plus
// /healthz mount on the root mux outside both gate and timeout.
func (s *Server) Handler() http.Handler {
	root := http.NewServeMux()
	api := TimeoutMiddleware(s.mux, s.reqTimeout)
	obsStream := s.instrument("obs_stream", s.auth(s.handleObsStream))
	evSub := s.instrument("events_subscribe", s.auth(s.handleEventsSubscribe))
	if s.cnode != nil {
		api = s.cnode.Gate(api)
		obsStream = s.cnode.GateStreaming(obsStream)
		evSub = s.cnode.GateStreaming(evSub)
		s.cnode.Mount(root)
	}
	root.Handle("/", api)
	root.HandleFunc("POST "+PathObservationsStream, obsStream)
	root.HandleFunc("GET "+PathEventsSubscribe, evSub)
	root.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok"))
	})
	return root
}

// TimeoutMiddleware bounds every request to d: a handler still running at
// the deadline gets its request context cancelled and the client receives a
// JSON 503 (which the retry layer classifies as transient). d <= 0 returns h
// unchanged.
func TimeoutMiddleware(h http.Handler, d time.Duration) http.Handler {
	if d <= 0 {
		return h
	}
	body := `{"error":"request timed out"}`
	return http.TimeoutHandler(h, d, body)
}

func (s *Server) routesMux() {
	s.mux.HandleFunc("POST "+PathRegister, s.instrument("register", s.handleRegister))
	s.mux.HandleFunc("POST "+PathRefresh, s.instrument("refresh", s.handleRefresh))
	s.mux.HandleFunc("POST "+PathPlacesDiscover, s.instrument("places_discover", s.auth(s.handlePlacesDiscover)))
	s.mux.HandleFunc("GET "+PathPlaces, s.instrument("places_get", s.auth(s.handlePlacesGet)))
	s.mux.HandleFunc("POST "+PathPlacesLabel, s.instrument("places_label", s.auth(s.handlePlacesLabel)))
	s.mux.HandleFunc("POST "+PathRoutesDiscover, s.instrument("routes_discover", s.auth(s.handleRoutesDiscover)))
	s.mux.HandleFunc("GET "+PathRoutes, s.instrument("routes_get", s.auth(s.handleRoutesGet)))
	s.mux.HandleFunc("POST "+PathRouteSimilarity, s.instrument("route_similarity", s.auth(s.handleRouteSimilarity)))
	s.mux.HandleFunc("PUT "+PathProfiles+"/{date}", s.instrument("profile_put", s.auth(s.handleProfilePut)))
	s.mux.HandleFunc("GET "+PathProfiles+"/{date}", s.instrument("profile_get", s.auth(s.handleProfileGet)))
	s.mux.HandleFunc("GET "+PathProfiles, s.instrument("profile_range", s.auth(s.handleProfileRange)))
	s.mux.HandleFunc("POST "+PathContacts, s.instrument("contacts_post", s.auth(s.handleContactsPost)))
	s.mux.HandleFunc("GET "+PathContacts, s.instrument("contacts_get", s.auth(s.handleContactsGet)))
	s.mux.HandleFunc("GET "+PathPlacesPopular, s.instrument("places_popular", s.auth(s.handlePlacesPopular)))
	s.mux.HandleFunc("GET "+PathGeoCell, s.instrument("geo_cell", s.auth(s.handleGeoCell)))
	s.mux.HandleFunc("GET "+PathPredictArrival, s.instrument("predict_arrival", s.auth(s.handlePredictArrival)))
	s.mux.HandleFunc("GET "+PathPredictNext, s.instrument("predict_next", s.auth(s.handlePredictNext)))
	s.mux.HandleFunc("GET "+PathStatsFrequency, s.instrument("stats_frequency", s.auth(s.handleFrequency)))
	s.mux.HandleFunc("GET "+PathStatsDwell, s.instrument("stats_dwell", s.auth(s.handleDwell)))
}

// writeJSON emits a JSON body with status.
func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// notOwner answers a store ErrNotOwner: the ring moved between the
// ownership gate and the apply, so the store refused the write rather than
// landing it on a node readers are never routed to. Answer the gate's 421
// contract (owner URL included) so the client re-targets and retries; if
// ownership has already swung back to this node, a retryable 503.
func (s *Server) notOwner(w http.ResponseWriter, uid string) {
	if s.cnode != nil {
		if owner, self := s.cnode.owner(uid); !self {
			s.cnode.redirect(w, owner, uid)
			return
		}
	}
	writeError(w, http.StatusServiceUnavailable, "ownership of user %s changed mid-request; retry", uid)
}

// decode parses the request body under the server's size cap. A body over
// the cap answers 413 so the client can tell "your upload is too big" apart
// from a garbled request (400) or a transient fault.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, into any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(into); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", mbe.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// reply writes body under content negotiation: a pooled binary encode when
// the request Accepts application/x-pmware-bin and the type has a binary
// codec, the historical JSON path otherwise. Error responses never come
// through here — they are always JSON (writeError), whatever the codec.
func (s *Server) reply(w http.ResponseWriter, r *http.Request, status int, body any) {
	if acceptsBinary(r) {
		bp := getWireBuf()
		if b, ok := appendWire((*bp)[:0], body); ok {
			s.metrics.wireBin.Inc()
			w.Header().Set("Content-Type", ContentTypeBinary)
			w.WriteHeader(status)
			_, _ = w.Write(b)
			*bp = b
			putWireBuf(bp)
			return
		}
		putWireBuf(bp)
	}
	s.metrics.wireJSON.Inc()
	writeJSON(w, status, body)
}

// decodeAny parses the request body by its declared Content-Type: JSON via
// decode, binary via decodeBinaryBody, anything else answers 415.
func (s *Server) decodeAny(w http.ResponseWriter, r *http.Request, into any) bool {
	switch requestCodec(r) {
	case codecJSON:
		return s.decode(w, r, into)
	case codecBinary:
		return s.decodeBinaryBody(w, r, into)
	default:
		writeError(w, http.StatusUnsupportedMediaType,
			"unsupported content type %q", r.Header.Get("Content-Type"))
		return false
	}
}

// decodeBinaryBody reads a whole binary-framed body (under the size cap)
// into a pooled buffer and decodes one wire message from it. Mirrors
// decode's status contract: 413 over the cap, 400 for anything garbled.
func (s *Server) decodeBinaryBody(w http.ResponseWriter, r *http.Request, into any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	bp := getWireBuf()
	defer putWireBuf(bp)
	buf, err := readAllInto((*bp)[:0], r.Body)
	*bp = buf
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", mbe.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, "reading request body: %v", err)
		return false
	}
	if err := decodeWire(buf, into); err != nil {
		writeError(w, http.StatusBadRequest, "bad binary body: %v", err)
		return false
	}
	return true
}

// decodeDiscoverBinary incrementally parses a binary discover upload: a
// fixed header (version, kind, flags, cursor, prefix hash) followed by
// CRC-framed observation blocks and an explicit end marker, so neither side
// ever holds the serialized form of the whole history. Decoding runs
// through http.MaxBytesReader, preserving the 413 contract, and a stream
// that dies mid-frame (or never reaches the end marker) is a clean 400.
func (s *Server) decodeDiscoverBinary(w http.ResponseWriter, r *http.Request, req *DiscoverPlacesRequest) bool {
	fail := func(err error) bool {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", mbe.Limit)
		} else {
			writeError(w, http.StatusBadRequest, "bad binary request: %v", err)
		}
		return false
	}
	br := bufio.NewReader(http.MaxBytesReader(w, r.Body, s.maxBody))

	readByte := func() (byte, error) {
		b, err := br.ReadByte()
		if err != nil {
			return 0, frameReadErr(err)
		}
		return b, nil
	}
	version, err := readByte()
	if err != nil {
		return fail(err)
	}
	if version != wireVersion {
		return fail(fmt.Errorf("unsupported wire version %d", version))
	}
	kind, err := readByte()
	if err != nil {
		return fail(err)
	}
	if kind != wireKindDiscoverRequest {
		return fail(fmt.Errorf("wire kind %d where %d expected", kind, wireKindDiscoverRequest))
	}
	flags, err := readByte()
	if err != nil {
		return fail(err)
	}
	req.Delta = flags&1 != 0
	cursor, err := binary.ReadUvarint(br)
	if err != nil {
		return fail(frameReadErr(err))
	}
	req.Cursor = int64(cursor)
	var hash [8]byte
	if _, err := io.ReadFull(br, hash[:]); err != nil {
		return fail(frameReadErr(err))
	}
	req.PrefixHash = binary.LittleEndian.Uint64(hash[:])

	bp := getWireBuf()
	defer putWireBuf(bp)
	for {
		payload, err := readWireFrame(br, bp)
		if err == errFrameEnd {
			return true
		}
		if err == io.EOF {
			// End-of-stream without the marker: the upload was cut short.
			return fail(errWireTruncated)
		}
		if err != nil {
			return fail(err)
		}
		d := trace.NewBinaryDecoder(payload)
		obs := trace.DecodeObservations(d)
		if err := d.Err(); err != nil {
			return fail(err)
		}
		if d.Rest() != 0 {
			return fail(fmt.Errorf("%d trailing bytes in observation frame", d.Rest()))
		}
		req.Observations = append(req.Observations, obs...)
	}
}

type authedHandler func(w http.ResponseWriter, r *http.Request, userID string)

// auth wraps a handler with Bearer-token authentication.
func (s *Server) auth(h authedHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		hdr := r.Header.Get("Authorization")
		token, ok := strings.CutPrefix(hdr, "Bearer ")
		if !ok || token == "" {
			writeError(w, http.StatusUnauthorized, "missing bearer token")
			return
		}
		uid, err := s.store.Authenticate(token)
		if err != nil {
			writeError(w, http.StatusUnauthorized, "invalid or expired token")
			return
		}
		h(w, r, uid)
	}
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !s.decode(w, r, &req) {
		return
	}
	resp, err := s.store.Register(req.IMEI, req.Email)
	if err != nil {
		if errors.Is(err, ErrNotOwner) {
			s.notOwner(w, StableUserID(req.IMEI, req.Email))
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleRefresh(w http.ResponseWriter, r *http.Request) {
	hdr := r.Header.Get("Authorization")
	token, ok := strings.CutPrefix(hdr, "Bearer ")
	if !ok || token == "" {
		writeError(w, http.StatusUnauthorized, "missing bearer token")
		return
	}
	resp, err := s.store.Refresh(token)
	if err != nil {
		writeError(w, http.StatusUnauthorized, "invalid or expired token")
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePlacesDiscover(w http.ResponseWriter, r *http.Request, uid string) {
	var req DiscoverPlacesRequest
	switch requestCodec(r) {
	case codecBinary:
		if !s.decodeDiscoverBinary(w, r, &req) {
			return
		}
	case codecJSON:
		if !s.decode(w, r, &req) {
			return
		}
	default:
		writeError(w, http.StatusUnsupportedMediaType,
			"unsupported content type %q", r.Header.Get("Content-Type"))
		return
	}
	if !req.Delta && len(req.Observations) == 0 {
		writeError(w, http.StatusBadRequest, "no observations")
		return
	}
	status, appended, err := s.store.SyncTrace(uid, req.Delta, req.Cursor, req.PrefixHash, req.Observations)
	if err != nil {
		if errors.Is(err, ErrTraceConflict) {
			s.pool.m.conflicts.Inc()
			writeError(w, http.StatusConflict, "%v", err)
			return
		}
		if errors.Is(err, ErrNotOwner) {
			s.notOwner(w, uid)
			return
		}
		writeError(w, http.StatusInternalServerError, "syncing trace: %v", err)
		return
	}
	if appended > 0 {
		s.pool.m.appended.Add(uint64(appended))
	}
	places, err := s.pool.discover(r.Context(), uid, status)
	if err != nil {
		if errors.Is(err, errDiscoverBusy) {
			// Backpressure: the queue is full. The hint keeps a retrying
			// fleet from hammering the pool while it drains.
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "%v", err)
			return
		}
		writeError(w, http.StatusInternalServerError, "discovering places: %v", err)
		return
	}
	s.reply(w, r, http.StatusOK, &DiscoverPlacesResponse{
		Places:    places,
		TraceLen:  status.Len,
		TraceHash: status.Hash,
	})
}

func (s *Server) handlePlacesGet(w http.ResponseWriter, r *http.Request, uid string) {
	s.reply(w, r, http.StatusOK, &DiscoverPlacesResponse{Places: s.store.Places(uid)})
}

func (s *Server) handlePlacesLabel(w http.ResponseWriter, r *http.Request, uid string) {
	var req LabelRequest
	if !s.decode(w, r, &req) {
		return
	}
	if err := s.store.LabelPlace(uid, req.PlaceID, req.Label); err != nil {
		if errors.Is(err, ErrNotOwner) {
			s.notOwner(w, uid)
			return
		}
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

// handlePlacesPopular serves the k-anonymous cross-user place aggregate.
func (s *Server) handlePlacesPopular(w http.ResponseWriter, r *http.Request, _ string) {
	q := r.URL.Query()
	k := 3
	if v := q.Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 2 {
			writeError(w, http.StatusBadRequest, "bad k %q (minimum 2)", v)
			return
		}
		k = n
	}
	radius := 300.0
	if v := q.Get("radius"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f <= 0 {
			writeError(w, http.StatusBadRequest, "bad radius %q", v)
			return
		}
		radius = f
	}
	writeJSON(w, http.StatusOK, PopularPlacesResponse{
		K:      k,
		Places: s.popular.Places(k, radius),
	})
}

func (s *Server) handleRoutesDiscover(w http.ResponseWriter, r *http.Request, uid string) {
	var req DiscoverRoutesRequest
	if !s.decode(w, r, &req) {
		return
	}
	intervals := make([]route.Interval, 0, len(req.Visits))
	for _, v := range req.Visits {
		intervals = append(intervals, route.Interval{Start: v.Arrive, End: v.Depart})
	}
	routes := route.ExtractGSM(req.Observations, intervals, s.routeParams)
	wire := make([]RouteWire, 0, len(routes))
	for _, rt := range routes {
		wire = append(wire, RouteToWire(rt))
	}
	if err := s.store.SetRoutes(uid, wire); err != nil {
		if errors.Is(err, ErrNotOwner) {
			s.notOwner(w, uid)
			return
		}
		writeError(w, http.StatusInternalServerError, "storing routes: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, DiscoverRoutesResponse{Routes: wire})
}

func (s *Server) handleRoutesGet(w http.ResponseWriter, r *http.Request, uid string) {
	minFreq := 0
	if v := r.URL.Query().Get("min_frequency"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad min_frequency %q", v)
			return
		}
		minFreq = n
	}
	writeJSON(w, http.StatusOK, DiscoverRoutesResponse{Routes: s.store.Routes(uid, minFreq)})
}

func (s *Server) handleRouteSimilarity(w http.ResponseWriter, r *http.Request, _ string) {
	var req RouteSimilarityRequest
	if !s.decode(w, r, &req) {
		return
	}
	writeJSON(w, http.StatusOK, RouteSimilarityResponse{Similarity: route.SimilarityGSM(req.A, req.B)})
}

func (s *Server) handleProfilePut(w http.ResponseWriter, r *http.Request, uid string) {
	date := r.PathValue("date")
	if _, err := time.Parse(profile.DateFormat, date); err != nil {
		writeError(w, http.StatusBadRequest, "bad date %q", date)
		return
	}
	var p profile.DayProfile
	if !s.decodeAny(w, r, &p) {
		return
	}
	p.Date = date
	p.UserID = uid
	if err := s.store.PutProfile(uid, &p); err != nil {
		if errors.Is(err, ErrNotOwner) {
			s.notOwner(w, uid)
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (s *Server) handleProfileGet(w http.ResponseWriter, r *http.Request, uid string) {
	date := r.PathValue("date")
	p, ok := s.store.Profile(uid, date)
	if !ok {
		writeError(w, http.StatusNotFound, "no profile for %s", date)
		return
	}
	s.reply(w, r, http.StatusOK, p)
}

func (s *Server) handleProfileRange(w http.ResponseWriter, r *http.Request, uid string) {
	q := r.URL.Query()
	from, to := q.Get("from"), q.Get("to")
	if acceptsBinary(r) {
		// The zero-alloc read path: encode straight out of the store's
		// in-memory profiles under the shard read lock — no clones, no DTO
		// slice, one pooled buffer.
		s.metrics.wireBin.Inc()
		bp := getWireBuf()
		var e trace.BinaryEncoder
		e.Buf = append((*bp)[:0], wireVersion, wireKindProfileRange)
		s.store.viewProfileRange(uid, from, to,
			func(n int) { e.Uvarint(uint64(n)) },
			func(p *profile.DayProfile) { appendProfileBody(&e, p) })
		w.Header().Set("Content-Type", ContentTypeBinary)
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(e.Buf)
		*bp = e.Buf
		putWireBuf(bp)
		return
	}
	s.metrics.wireJSON.Inc()
	writeJSON(w, http.StatusOK, s.store.ProfileRange(uid, from, to))
}

func (s *Server) handleContactsPost(w http.ResponseWriter, r *http.Request, uid string) {
	var req ContactsRequest
	if !s.decode(w, r, &req) {
		return
	}
	if err := s.store.AddContacts(uid, req.Encounters); err != nil {
		if errors.Is(err, ErrNotOwner) {
			s.notOwner(w, uid)
			return
		}
		writeError(w, http.StatusInternalServerError, "storing contacts: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (s *Server) handleContactsGet(w http.ResponseWriter, r *http.Request, uid string) {
	writeJSON(w, http.StatusOK, ContactsResponse{Encounters: s.store.Contacts(uid, r.URL.Query().Get("place"))})
}

func (s *Server) handleGeoCell(w http.ResponseWriter, r *http.Request, _ string) {
	q := r.URL.Query()
	var id world.CellID
	var err error
	parse := func(key string) int {
		if err != nil {
			return 0
		}
		n, e := strconv.Atoi(q.Get(key))
		if e != nil {
			err = fmt.Errorf("bad %s %q", key, q.Get(key))
		}
		return n
	}
	id.MCC, id.MNC, id.LAC, id.CID = parse("mcc"), parse("mnc"), parse("lac"), parse("cid")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	entry, ok := s.cells.Lookup(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown cell %s", id)
		return
	}
	writeJSON(w, http.StatusOK, entry)
}

func (s *Server) handlePredictArrival(w http.ResponseWriter, r *http.Request, uid string) {
	placeID := r.URL.Query().Get("place")
	if placeID == "" {
		writeError(w, http.StatusBadRequest, "place parameter required")
		return
	}
	sec, n := s.analytics.TypicalArrival(uid, placeID)
	if n == 0 {
		writeError(w, http.StatusNotFound, "no visits to %q", placeID)
		return
	}
	s.reply(w, r, http.StatusOK, &PredictArrivalResponse{PlaceID: placeID, TypicalArrivalSec: sec, SampleCount: n})
}

func (s *Server) handlePredictNext(w http.ResponseWriter, r *http.Request, uid string) {
	q := r.URL.Query()
	placeID := q.Get("place")
	if placeID == "" {
		writeError(w, http.StatusBadRequest, "place parameter required")
		return
	}
	after := time.Now()
	if v := q.Get("after"); v != "" {
		t, err := time.Parse(time.RFC3339, v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad after %q", v)
			return
		}
		after = t
	}
	next, confident := s.analytics.PredictNextVisit(uid, placeID, after)
	s.reply(w, r, http.StatusOK, &PredictNextVisitResponse{PlaceID: placeID, NextVisit: next, Confident: confident})
}

func (s *Server) handleDwell(w http.ResponseWriter, r *http.Request, uid string) {
	placeID := r.URL.Query().Get("place")
	if placeID == "" {
		writeError(w, http.StatusBadRequest, "place parameter required")
		return
	}
	s.reply(w, r, http.StatusOK, s.analytics.DwellStats(uid, placeID))
}

func (s *Server) handleFrequency(w http.ResponseWriter, r *http.Request, uid string) {
	q := r.URL.Query()
	placeID, label := q.Get("place"), q.Get("label")
	switch {
	case placeID != "":
		perWeek, total := s.analytics.VisitFrequency(uid, placeID)
		s.reply(w, r, http.StatusOK, &FrequencyResponse{PlaceID: placeID, VisitsPerWeek: perWeek, TotalVisits: total})
	case label != "":
		perWeek, total := s.analytics.FrequencyByLabel(uid, label)
		s.reply(w, r, http.StatusOK, &FrequencyResponse{PlaceID: "label:" + label, VisitsPerWeek: perWeek, TotalVisits: total})
	default:
		writeError(w, http.StatusBadRequest, "place or label parameter required")
	}
}
