package cloud

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/faultnet"
	"repro/internal/obs"
	"repro/internal/simclock"
)

// subscribeRetry is a generous no-sleep retry policy for chaos runs: the
// reconnect loop should survive long fault bursts without real backoff
// delays slowing the test down.
func subscribeRetry() RetryPolicy {
	p := DefaultRetryPolicy()
	p.MaxAttempts = 100
	return p.WithSleep(func(context.Context, time.Duration) error { return nil })
}

func TestClientSubscribeDelivers(t *testing.T) {
	ss := newStreamServer(t)
	c := NewClient(ss.srv.URL, "imei-9", "tester@example.com", ss.srv.Client())
	if err := c.Register(); err != nil {
		t.Fatal(err)
	}
	sub, err := c.Subscribe(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	for i := 0; i < 5; i++ {
		ss.server.Hub().Publish(events.Event{Type: events.KindPlaceEntry, UserID: c.UserID(), Label: fmt.Sprintf("e%d", i)})
	}
	for i := 0; i < 5; i++ {
		select {
		case ev := <-sub.C:
			if ev.Seq != uint64(i+1) {
				t.Errorf("event %d: seq %d, want %d", i, ev.Seq, i+1)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out waiting for event %d", i)
		}
	}
	sub.Close()
	if err := sub.Err(); err != nil {
		t.Errorf("Err after clean Close = %v, want nil", err)
	}
}

// TestClientSubscribeBusBridge pins the PMS-side bridge: events delivered
// over the subscription are broadcast on the local core bus as the intents
// local detection would have produced.
func TestClientSubscribeBusBridge(t *testing.T) {
	ss := newStreamServer(t)
	c := NewClient(ss.srv.URL, "imei-9", "tester@example.com", ss.srv.Client())
	if err := c.Register(); err != nil {
		t.Fatal(err)
	}
	bus := core.NewBus()
	got := make(chan core.Intent, 16)
	bus.Register("app", core.Filter{Actions: []string{core.ActionPlaceArrival, core.ActionPlaceDeparture}},
		func(in core.Intent) { got <- in })

	sub, err := c.Subscribe(context.Background(), WithEventBus(bus))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	ss.server.Hub().Publish(events.Event{
		Type: events.KindPlaceEntry, UserID: c.UserID(),
		At: simclock.Epoch, PlaceID: 3, Label: "office",
	})
	select {
	case in := <-got:
		if in.Action != core.ActionPlaceArrival {
			t.Errorf("bridged action = %q, want place arrival", in.Action)
		}
		if in.Place == nil || in.Place.ID != "p3" || in.Place.Label != "office" {
			t.Errorf("bridged place = %+v, want id p3 label office", in.Place)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no intent bridged to the bus")
	}
}

// TestClientSubscribeTokenRecovery pins the 401 path: a subscription opened
// with a stale token recovers it (refresh, falling back to registration)
// exactly like every other authenticated call, then streams normally.
func TestClientSubscribeTokenRecovery(t *testing.T) {
	ss := newStreamServer(t)
	c := NewClient(ss.srv.URL, "imei-9", "tester@example.com", ss.srv.Client(),
		WithRetryPolicy(subscribeRetry()))
	if err := c.Register(); err != nil {
		t.Fatal(err)
	}
	uid := c.UserID()
	c.setToken("stale-token", "") // simulate server-side expiry

	sub, err := c.Subscribe(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// The subscription needs a beat to run through 401 -> recover ->
	// reconnect; publish until the event arrives.
	deadline := time.After(10 * time.Second)
	for {
		ss.server.Hub().Publish(events.Event{Type: events.KindPlaceEntry, UserID: uid})
		select {
		case <-sub.C:
			return
		case <-deadline:
			t.Fatal("no event after token recovery")
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// TestClientSubscribeTerminalError pins the give-up path: against a server
// that refuses every connection, the subscription channel closes and Err
// reports the exhausted reconnect budget instead of spinning forever.
func TestClientSubscribeTerminalError(t *testing.T) {
	ss := newStreamServer(t)
	faults := faultnet.Wrap(ss.srv.Client().Transport, faultnet.Config{Seed: 1, ConnErrorRate: 1})
	c := NewClient(ss.srv.URL, "imei-9", "tester@example.com",
		&http.Client{Transport: faults},
		WithRetryPolicy(DefaultRetryPolicy().WithSleep(func(context.Context, time.Duration) error { return nil })))
	c.setToken("whatever", "u1") // Subscribe only needs a token installed

	sub, err := c.Subscribe(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-sub.C:
		if ok {
			t.Fatal("received an event through a 100% fault link")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("subscription did not give up")
	}
	if sub.Err() == nil {
		t.Error("Err = nil after reconnect budget exhausted")
	}
}

// TestClientSubscribeChaosExactlyOnce is the chaos leg: under injected
// connection faults and 5xx bursts on every (re)connect, plus genuine
// mid-stream slow-consumer evictions forced by burst publishing against a
// tiny server-side queue, the reconnecting subscriber receives every
// sequence number exactly once.
func TestClientSubscribeChaosExactlyOnce(t *testing.T) {
	const total = 400
	reg := obs.NewRegistry()
	ss := newStreamServer(t, WithEventQueue(4, 4096), WithEventHeartbeat(5*time.Millisecond), WithMetrics(reg))
	faults := faultnet.Wrap(ss.srv.Client().Transport, faultnet.Config{
		Seed:            2,
		ConnErrorRate:   0.35,
		ServerErrorRate: 0.15,
		BurstLen:        2,
		Exempt: func(r *http.Request) bool {
			// Keep the control plane reliable; only the event stream burns.
			return r.URL.Path != PathEventsSubscribe
		},
	})
	c := NewClient(ss.srv.URL, "imei-9", "tester@example.com",
		&http.Client{Transport: faults}, WithRetryPolicy(subscribeRetry()))
	if err := c.Register(); err != nil {
		t.Fatal(err)
	}
	uid := c.UserID()

	sub, err := c.Subscribe(context.Background(), WithSubscribeBuffer(8))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	var mu sync.Mutex
	seen := map[uint64]int{}
	evictions := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range sub.C {
			switch ev.Type {
			case events.KindEvicted:
				mu.Lock()
				evictions++
				mu.Unlock()
			case events.KindReset:
				t.Error("reset signalled: history ring was sized to hold the whole run")
				return
			default:
				// Deliberately slow consumer: sustained TCP backpressure is
				// what overflows the server-side queue and forces evictions.
				time.Sleep(time.Millisecond)
				mu.Lock()
				seen[ev.Seq]++
				n := len(seen)
				mu.Unlock()
				if n == total {
					return
				}
			}
		}
	}()

	// Publishing only matters once the SSE connection is attached — before
	// that, events just land in the replay ring and nothing can be evicted.
	subscribers := reg.Gauge("pci_events_subscribers")
	for start := time.Now(); subscribers.Value() == 0; {
		if time.Since(start) > 10*time.Second {
			t.Fatal("subscription never attached")
		}
		time.Sleep(time.Millisecond)
	}

	// Bursts of 50 against a 4-slot queue: the dispatch loop fans a burst
	// out at memory speed, far faster than the SSE writer can drain it, so
	// the subscriber is evicted mid-stream and the resume path runs
	// repeatedly under connect faults.
	pad := strings.Repeat("x", 4096)
	for i := 0; i < total; i++ {
		if !ss.server.Hub().Publish(events.Event{Type: events.KindPlaceEntry, UserID: uid, Label: fmt.Sprintf("e%d-%s", i, pad)}) {
			t.Fatalf("publish %d rejected", i)
		}
		if i%50 == 49 {
			time.Sleep(20 * time.Millisecond) // let the subscriber reattach
		}
	}

	select {
	case <-done:
	case <-time.After(60 * time.Second):
		mu.Lock()
		t.Fatalf("timed out: received %d/%d distinct seqs (%d evictions)", len(seen), total, evictions)
	}
	if err := sub.Err(); err != nil {
		t.Fatalf("subscription failed mid-run: %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	for seq := uint64(1); seq <= total; seq++ {
		if n := seen[seq]; n != 1 {
			t.Errorf("seq %d received %d times, want exactly once", seq, n)
		}
	}
	if len(seen) != total {
		t.Errorf("distinct seqs = %d, want %d", len(seen), total)
	}
	if evictions == 0 && faults.Stats().Faults() == 0 {
		t.Error("chaos never engaged: no evictions and no injected faults")
	}
	t.Logf("chaos run: %d evictions, faultnet stats %+v", evictions, faults.Stats())
}
