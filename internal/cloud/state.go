package cloud

import (
	"encoding/json"
	"fmt"
	"maps"
	"slices"
	"sync/atomic"

	"repro/internal/profile"
)

// This file is the journaling side of the Store: the WAL record schema, the
// two shard-state kinds the storage engine manages (registration keyspace,
// per-user data keyspace), and the deep-copy helpers that keep journaled
// state isolated from callers.

// WAL op codes. These are a persistence format: renaming one breaks replay
// of existing data directories.
const (
	opRegister    = "register"
	opSetPlaces   = "set_places"
	opLabelPlace  = "label_place"
	opSetRoutes   = "set_routes"
	opPutProfile  = "put_profile"
	opAddContacts = "add_contacts"
	opLoadMeta    = "load_meta"  // legacy Save-file import: replace meta keyspace
	opLoadShard   = "load_shard" // legacy Save-file import: replace one data shard
	opSyncUser    = "sync_user"  // cluster resync/handoff: replace one user's data wholesale
	opDropUser    = "drop_user"  // cluster handoff: remove one user's data from this node
	opDropMeta    = "drop_meta"  // cluster handoff: remove one user's registration
)

// walRecord is the journaled form of every Store mutation. One struct for
// all ops keeps the codec trivial; unused fields are omitted from the JSON.
type walRecord struct {
	Op string `json:"op"`

	// opRegister
	User      *User  `json:"user,omitempty"`
	DeviceKey string `json:"device_key,omitempty"`

	// data ops
	UserID     string              `json:"user_id,omitempty"`
	Places     []PlaceWire         `json:"places,omitempty"`
	PlaceID    int                 `json:"place_id,omitempty"`
	Label      string              `json:"label,omitempty"`
	Routes     []RouteWire         `json:"routes,omitempty"`
	Profile    *profile.DayProfile `json:"profile,omitempty"`
	Encounters []profile.Encounter `json:"encounters,omitempty"`

	// load ops
	Meta *metaSnapshot `json:"meta,omitempty"`
	Data *dataSnapshot `json:"data,omitempty"`

	// opSyncUser: the user's whole per-day history (Places/Routes/Encounters
	// above carry the rest of the wholesale state).
	Profiles map[string]*profile.DayProfile `json:"profiles,omitempty"`
}

// metaState is shard 0: the registration keyspace.
type metaState struct {
	users    map[string]*User  // user id -> user
	byDevice map[string]string // imei|email -> user id
}

func newMetaState() *metaState {
	return &metaState{users: map[string]*User{}, byDevice: map[string]string{}}
}

// metaSnapshot is the persisted form of metaState.
type metaSnapshot struct {
	Users    map[string]*User  `json:"users"`
	ByDevice map[string]string `json:"by_device"`
}

func (m *metaState) apply(rec *walRecord) error {
	switch rec.Op {
	case opRegister:
		if rec.User == nil || rec.User.ID == "" {
			return fmt.Errorf("cloud: register record without user")
		}
		m.users[rec.User.ID] = rec.User
		m.byDevice[rec.DeviceKey] = rec.User.ID
	case opLoadMeta:
		if rec.Meta == nil {
			return fmt.Errorf("cloud: load_meta record without payload")
		}
		if rec.Meta.Users != nil {
			m.users = rec.Meta.Users
		}
		if rec.Meta.ByDevice != nil {
			m.byDevice = rec.Meta.ByDevice
		}
	case opDropMeta:
		delete(m.users, rec.UserID)
		delete(m.byDevice, rec.DeviceKey)
	default:
		return fmt.Errorf("cloud: meta shard cannot apply op %q", rec.Op)
	}
	return nil
}

func (m *metaState) Apply(b []byte) error {
	var rec walRecord
	if err := json.Unmarshal(b, &rec); err != nil {
		return fmt.Errorf("cloud: decode meta record: %w", err)
	}
	return m.apply(&rec)
}

func (m *metaState) Snapshot() ([]byte, error) {
	return json.Marshal(metaSnapshot{Users: m.users, ByDevice: m.byDevice})
}

func (m *metaState) Restore(b []byte) error {
	var snap metaSnapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		return fmt.Errorf("cloud: decode meta snapshot: %w", err)
	}
	fresh := newMetaState()
	if snap.Users != nil {
		fresh.users = snap.Users
	}
	if snap.ByDevice != nil {
		fresh.byDevice = snap.ByDevice
	}
	*m = *fresh
	return nil
}

// dataState is one data shard: the per-user mobility keyspace for the users
// hashed onto it, plus the derived state apply maintains alongside it — the
// per-user analytics index and the places change-version counters the
// popular-places cache invalidates on. Derived state is never journaled or
// snapshotted: replay and restore rebuild it through apply/install.
type dataState struct {
	places   map[string][]PlaceWire
	routes   map[string][]RouteWire
	profiles map[string]map[string]*profile.DayProfile // user id -> date -> profile
	contacts map[string][]profile.Encounter

	idx       map[string]*userIndex // user id -> materialized analytics index
	placesGen map[string]uint64     // user id -> generation of places[user]
	ver       uint64                // bumped on every places change; never reset

	// snapViews counts outstanding off-lock snapshot views (snapview.go).
	// While non-zero, apply copy-on-writes the inner structures a view may
	// share instead of mutating them in place. A pointer so the count
	// survives install's *d = *fresh value copy only when the maps it guards
	// do — install replaces every map wholesale, so its fresh zero counter
	// correctly stops the copy-on-write for structures no view references.
	snapViews *int32
}

func newDataState() *dataState {
	return &dataState{
		places:    map[string][]PlaceWire{},
		routes:    map[string][]RouteWire{},
		profiles:  map[string]map[string]*profile.DayProfile{},
		contacts:  map[string][]profile.Encounter{},
		idx:       map[string]*userIndex{},
		placesGen: map[string]uint64{},
		snapViews: new(int32),
	}
}

// bumpPlaces marks the user's places as changed. ver only ever grows (even
// across install), so a (user, gen) pair is never reissued and stale cache
// hits are impossible.
func (d *dataState) bumpPlaces(userID string) {
	d.ver++
	d.placesGen[userID] = d.ver
}

// dataSnapshot is the persisted form of dataState.
type dataSnapshot struct {
	Places   map[string][]PlaceWire                    `json:"places"`
	Routes   map[string][]RouteWire                    `json:"routes"`
	Profiles map[string]map[string]*profile.DayProfile `json:"profiles"`
	Contacts map[string][]profile.Encounter            `json:"contacts"`
}

func newDataSnapshot() *dataSnapshot {
	return &dataSnapshot{
		Places:   map[string][]PlaceWire{},
		Routes:   map[string][]RouteWire{},
		Profiles: map[string]map[string]*profile.DayProfile{},
		Contacts: map[string][]profile.Encounter{},
	}
}

// apply is the single mutation path: live Store calls and crash-recovery
// replay both go through it, so a replayed log reproduces the exact state
// the acknowledged calls built.
func (d *dataState) apply(rec *walRecord) error {
	switch rec.Op {
	case opSetPlaces:
		// Carry labels from the previous generation by place ID (discovery
		// is a whole-history recomputation; labels are user input).
		labels := map[int]string{}
		for _, p := range d.places[rec.UserID] {
			if p.Label != "" {
				labels[p.ID] = p.Label
			}
		}
		for i := range rec.Places {
			if rec.Places[i].Label == "" {
				rec.Places[i].Label = labels[rec.Places[i].ID]
			}
		}
		d.places[rec.UserID] = rec.Places
		d.bumpPlaces(rec.UserID)
	case opLabelPlace:
		ps := d.places[rec.UserID]
		for i := range ps {
			if ps[i].ID == rec.PlaceID {
				// Clone-modify-replace rather than writing in place: an
				// off-lock snapshot view (snapview.go) may share this slice.
				ps = slices.Clone(ps)
				ps[i].Label = rec.Label
				d.places[rec.UserID] = ps
				d.bumpPlaces(rec.UserID)
				return nil
			}
		}
		return fmt.Errorf("cloud: user %s has no place %d", rec.UserID, rec.PlaceID)
	case opSetRoutes:
		d.routes[rec.UserID] = rec.Routes
	case opPutProfile:
		if rec.Profile == nil {
			return fmt.Errorf("cloud: put_profile record without profile")
		}
		days := d.profiles[rec.UserID]
		switch {
		case days == nil:
			days = map[string]*profile.DayProfile{}
			d.profiles[rec.UserID] = days
		case atomic.LoadInt32(d.snapViews) > 0:
			// An off-lock snapshot encoder may be reading this user's day
			// map (snapview.go shares inner maps); write a copy instead.
			days = maps.Clone(days)
			d.profiles[rec.UserID] = days
		}
		days[rec.Profile.Date] = rec.Profile
		ux := d.idx[rec.UserID]
		if ux == nil {
			ux = newUserIndex()
			d.idx[rec.UserID] = ux
		}
		ux.putDay(rec.Profile)
	case opAddContacts:
		d.contacts[rec.UserID] = append(d.contacts[rec.UserID], rec.Encounters...)
	case opLoadShard:
		if rec.Data == nil {
			return fmt.Errorf("cloud: load_shard record without payload")
		}
		d.install(rec.Data)
	case opSyncUser:
		// Wholesale replacement of one user (cluster resync/handoff). Only
		// this user's entries change; the rest of the shard — which may be
		// primary data owned by the receiving node — is untouched.
		if rec.Places == nil {
			delete(d.places, rec.UserID)
		} else {
			d.places[rec.UserID] = rec.Places
		}
		if rec.Routes == nil {
			delete(d.routes, rec.UserID)
		} else {
			d.routes[rec.UserID] = rec.Routes
		}
		if rec.Profiles == nil {
			delete(d.profiles, rec.UserID)
			delete(d.idx, rec.UserID)
		} else {
			d.profiles[rec.UserID] = rec.Profiles
			d.idx[rec.UserID] = buildUserIndex(rec.Profiles)
		}
		if rec.Encounters == nil {
			delete(d.contacts, rec.UserID)
		} else {
			d.contacts[rec.UserID] = rec.Encounters
		}
		d.bumpPlaces(rec.UserID)
	case opDropUser:
		delete(d.places, rec.UserID)
		delete(d.routes, rec.UserID)
		delete(d.profiles, rec.UserID)
		delete(d.contacts, rec.UserID)
		delete(d.idx, rec.UserID)
		delete(d.placesGen, rec.UserID)
		d.ver++
	default:
		return fmt.Errorf("cloud: data shard cannot apply op %q", rec.Op)
	}
	return nil
}

func (d *dataState) install(snap *dataSnapshot) {
	fresh := newDataState()
	if snap.Places != nil {
		fresh.places = snap.Places
	}
	if snap.Routes != nil {
		fresh.routes = snap.Routes
	}
	if snap.Profiles != nil {
		fresh.profiles = snap.Profiles
	}
	if snap.Contacts != nil {
		fresh.contacts = snap.Contacts
	}
	// Rebuild derived state. ver keeps growing across the install so no
	// (user, gen) pair issued before it can collide with one issued after.
	fresh.ver = d.ver + 1
	for u := range fresh.places {
		fresh.placesGen[u] = fresh.ver
	}
	for u, days := range fresh.profiles {
		fresh.idx[u] = buildUserIndex(days)
	}
	*d = *fresh
}

func (d *dataState) Apply(b []byte) error {
	var rec walRecord
	if err := json.Unmarshal(b, &rec); err != nil {
		return fmt.Errorf("cloud: decode data record: %w", err)
	}
	return d.apply(&rec)
}

func (d *dataState) Snapshot() ([]byte, error) {
	return json.Marshal(dataSnapshot{
		Places:   d.places,
		Routes:   d.routes,
		Profiles: d.profiles,
		Contacts: d.contacts,
	})
}

func (d *dataState) Restore(b []byte) error {
	var snap dataSnapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		return fmt.Errorf("cloud: decode data snapshot: %w", err)
	}
	d.install(&snap)
	return nil
}

// clonePlace deep-copies one place, detaching every slice.
func clonePlace(p PlaceWire) PlaceWire {
	p.Signature = slices.Clone(p.Signature)
	p.Cells = slices.Clone(p.Cells)
	p.Visits = slices.Clone(p.Visits)
	return p
}

func clonePlaces(ps []PlaceWire) []PlaceWire {
	if ps == nil {
		return nil
	}
	out := make([]PlaceWire, len(ps))
	for i, p := range ps {
		out[i] = clonePlace(p)
	}
	return out
}

// cloneRoute deep-copies one route: the Trips and Cells slices no longer
// alias store state, so a caller mutation cannot corrupt journaled data.
func cloneRoute(r RouteWire) RouteWire {
	r.Cells = slices.Clone(r.Cells)
	r.Trips = slices.Clone(r.Trips)
	return r
}

func cloneRoutes(rs []RouteWire) []RouteWire {
	if rs == nil {
		return nil
	}
	out := make([]RouteWire, len(rs))
	for i, r := range rs {
		out[i] = cloneRoute(r)
	}
	return out
}

// cloneProfile deep-copies a day profile (entry slices are flat structs, so
// one level of slice cloning fully detaches it).
func cloneProfile(p *profile.DayProfile) *profile.DayProfile {
	if p == nil {
		return nil
	}
	q := *p
	q.Places = slices.Clone(p.Places)
	q.Routes = slices.Clone(p.Routes)
	q.Contacts = slices.Clone(p.Contacts)
	if p.Activity != nil {
		a := *p.Activity
		q.Activity = &a
	}
	return &q
}
