package cloud

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/gsm"
	"repro/internal/profile"
	"repro/internal/simclock"
	"repro/internal/trace"
	"repro/internal/world"
)

// testServer wires a full cloud instance over httptest with a controllable
// clock.
type testServer struct {
	srv   *httptest.Server
	store *Store
	now   *time.Time
}

func newTestServer(t *testing.T, opts ...ServerOption) *testServer {
	t.Helper()
	now := simclock.Epoch
	store := NewStore(func() time.Time { return now })
	server := NewServer(store, opts...)
	ts := httptest.NewServer(server.Handler())
	t.Cleanup(func() {
		ts.Close()
		server.Close()
	})
	return &testServer{srv: ts, store: store, now: &now}
}

func (ts *testServer) client() *Client {
	return NewClient(ts.srv.URL, "imei-9", "tester@example.com", ts.srv.Client())
}

// fastRetry is the default retry policy with the sleeps removed, so tests
// that exercise failure paths do not pay real backoff delays.
func fastRetry() RetryPolicy {
	return DefaultRetryPolicy().WithSleep(func(context.Context, time.Duration) error { return nil })
}

func cellObs(minute, cid int) trace.GSMObservation {
	return trace.GSMObservation{
		At:   simclock.Epoch.Add(time.Duration(minute) * time.Minute),
		Cell: world.CellID{MCC: 404, MNC: 10, LAC: 1, CID: cid},
	}
}

// oscillatingTrace builds a trace with two 40-minute stays separated by
// movement.
func oscillatingTrace() []trace.GSMObservation {
	var obs []trace.GSMObservation
	m := 0
	for i := 0; i < 20; i++ {
		obs = append(obs, cellObs(m, 1), cellObs(m+1, 2))
		m += 2
	}
	for c := 100; c < 120; c++ {
		obs = append(obs, cellObs(m, c))
		m++
	}
	for i := 0; i < 20; i++ {
		obs = append(obs, cellObs(m, 7), cellObs(m+1, 8))
		m += 2
	}
	return obs
}

func TestRegisterAndDiscoverViaHTTP(t *testing.T) {
	ts := newTestServer(t)
	c := ts.client()
	if err := c.Register(); err != nil {
		t.Fatal(err)
	}
	if c.UserID() == "" {
		t.Fatal("no user id after registration")
	}

	places, err := c.DiscoverPlaces(oscillatingTrace())
	if err != nil {
		t.Fatal(err)
	}
	if len(places) != 2 {
		t.Fatalf("places = %d, want 2", len(places))
	}
	for _, p := range places {
		if len(p.Signature) == 0 || len(p.AllCells) == 0 || len(p.Visits) == 0 {
			t.Errorf("wire round-trip lost data: %+v", p)
		}
	}

	// Server stored them.
	stored, err := c.Places()
	if err != nil {
		t.Fatal(err)
	}
	if len(stored) != 2 {
		t.Errorf("stored = %d", len(stored))
	}

	// Label round-trip.
	if err := c.LabelPlace(stored[0].ID, "Home"); err != nil {
		t.Fatal(err)
	}
	stored, _ = c.Places()
	found := false
	for _, p := range stored {
		if p.Label == "Home" {
			found = true
		}
	}
	if !found {
		t.Error("label not visible")
	}
}

func TestAuthRequired(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.srv.URL + PathPlaces)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("status = %d, want 401", resp.StatusCode)
	}
	// Garbage token.
	req, _ := http.NewRequest(http.MethodGet, ts.srv.URL+PathPlaces, nil)
	req.Header.Set("Authorization", "Bearer bogus")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusUnauthorized {
		t.Errorf("bogus token status = %d", resp2.StatusCode)
	}
}

func TestClientAutoRefreshOnExpiry(t *testing.T) {
	ts := newTestServer(t)
	c := ts.client()
	if err := c.Register(); err != nil {
		t.Fatal(err)
	}
	// Age the token past expiry: the client must recover transparently by
	// re-registering (refresh also fails for expired tokens).
	*ts.now = ts.now.Add(2 * TokenTTL)
	if _, err := c.Places(); err != nil {
		t.Fatalf("client did not recover from expiry: %v", err)
	}
}

func TestClientExplicitRefresh(t *testing.T) {
	ts := newTestServer(t)
	c := ts.client()
	if err := c.Register(); err != nil {
		t.Fatal(err)
	}
	if err := c.Refresh(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Places(); err != nil {
		t.Fatalf("refreshed token rejected: %v", err)
	}
}

func TestProfileSyncAndFetch(t *testing.T) {
	ts := newTestServer(t)
	c := ts.client()
	if err := c.Register(); err != nil {
		t.Fatal(err)
	}
	day := simclock.Epoch
	p := &profile.DayProfile{
		UserID: "ignored-client-side", // server stamps the authed user
		Date:   day.Format(profile.DateFormat),
		Places: []profile.PlaceVisit{{PlaceID: "p0", Arrive: day.Add(8 * time.Hour), Depart: day.Add(18 * time.Hour)}},
	}
	if err := c.SyncProfile(p); err != nil {
		t.Fatal(err)
	}
	got, err := c.Profile(p.Date)
	if err != nil {
		t.Fatal(err)
	}
	if got.UserID != c.UserID() {
		t.Errorf("profile user = %q, want authed %q", got.UserID, c.UserID())
	}
	if len(got.Places) != 1 {
		t.Error("places lost")
	}
	ps, err := c.ProfileRange("", "")
	if err != nil || len(ps) != 1 {
		t.Errorf("range = %v, %v", ps, err)
	}
	if _, err := c.Profile("2019-01-01"); err == nil {
		t.Error("missing profile fetched")
	}
}

func TestGeolocateViaHTTP(t *testing.T) {
	w := world.Generate(world.DefaultConfig(), newRand(5))
	db := NewCellDatabase(w, 150)
	ts := newTestServer(t, WithCellDatabase(db))
	c := ts.client()
	if err := c.Register(); err != nil {
		t.Fatal(err)
	}
	tower := w.Towers[0]
	pos, acc, err := c.GeolocateCell(tower.ID)
	if err != nil {
		t.Fatal(err)
	}
	if acc <= 0 {
		t.Error("no accuracy radius")
	}
	if d := distance(pos.Lat, pos.Lng, tower.Pos.Lat, tower.Pos.Lng); d > 400 {
		t.Errorf("geolocated %f m from tower", d)
	}
	// Unknown cell 404s.
	if _, _, err := c.GeolocateCell(world.CellID{MCC: 1, MNC: 2, LAC: 3, CID: 4}); err == nil {
		t.Error("unknown cell resolved")
	}
}

func TestRoutesAndSimilarityViaHTTP(t *testing.T) {
	ts := newTestServer(t)
	c := ts.client()
	if err := c.Register(); err != nil {
		t.Fatal(err)
	}
	// Build trips between two stays.
	var obs []trace.GSMObservation
	for i := 0; i < 5; i++ {
		obs = append(obs, cellObs(60+i, 10+i))
	}
	visits := []VisitWire{
		{Arrive: simclock.Epoch, Depart: simclock.Epoch.Add(60 * time.Minute)},
		{Arrive: simclock.Epoch.Add(65 * time.Minute), Depart: simclock.Epoch.Add(120 * time.Minute)},
	}
	routes, err := c.DiscoverRoutes(obs, visits)
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) != 1 {
		t.Fatalf("routes = %d", len(routes))
	}
	got, err := c.Routes(1)
	if err != nil || len(got) != 1 {
		t.Errorf("stored routes = %v, %v", got, err)
	}
	if got2, err := c.Routes(5); err != nil || len(got2) != 0 {
		t.Errorf("min_frequency filter failed: %v, %v", got2, err)
	}

	sim, err := c.RouteSimilarity(routes[0].Cells, routes[0].Cells)
	if err != nil {
		t.Fatal(err)
	}
	if sim != 1 {
		t.Errorf("self similarity = %v", sim)
	}
}

func TestContactsViaHTTP(t *testing.T) {
	ts := newTestServer(t)
	c := ts.client()
	if err := c.Register(); err != nil {
		t.Fatal(err)
	}
	err := c.UploadContacts([]profile.Encounter{
		{ContactID: "u2", PlaceID: "work", Start: simclock.Epoch, End: simclock.Epoch.Add(time.Hour)},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Contacts("work")
	if err != nil || len(got) != 1 || got[0].ContactID != "u2" {
		t.Errorf("contacts = %v, %v", got, err)
	}
	if got, _ := c.Contacts("cafe"); len(got) != 0 {
		t.Error("place filter leak")
	}
}

func TestPredictionEndpoints(t *testing.T) {
	ts := newTestServer(t)
	c := ts.client()
	if err := c.Register(); err != nil {
		t.Fatal(err)
	}
	seedProfiles(t, ts.store, c.UserID())

	arr, err := c.PredictArrival("work")
	if err != nil {
		t.Fatal(err)
	}
	if arr.SampleCount != 10 {
		t.Errorf("samples = %d", arr.SampleCount)
	}
	if _, err := c.PredictArrival("nowhere"); err == nil {
		t.Error("prediction for unvisited place")
	}

	next, err := c.PredictNextVisit("mall", simclock.Epoch.AddDate(0, 0, 14))
	if err != nil {
		t.Fatal(err)
	}
	if !next.Confident || next.NextVisit.Weekday() != time.Saturday {
		t.Errorf("next visit = %+v", next)
	}

	freq, err := c.VisitFrequency("work")
	if err != nil || freq.TotalVisits != 10 {
		t.Errorf("freq = %+v, %v", freq, err)
	}
	lfreq, err := c.FrequencyByLabel("mall")
	if err != nil || lfreq.TotalVisits != 2 {
		t.Errorf("label freq = %+v, %v", lfreq, err)
	}
}

func TestBadRequests(t *testing.T) {
	ts := newTestServer(t)
	c := ts.client()
	if err := c.Register(); err != nil {
		t.Fatal(err)
	}
	// Empty discovery payload.
	if _, err := c.DiscoverPlaces(nil); err == nil {
		t.Error("empty discovery accepted")
	}
	// Malformed JSON body straight at the server.
	req, _ := http.NewRequest(http.MethodPost, ts.srv.URL+PathPlacesDiscover, bytes.NewReader([]byte("{nope")))
	req.Header.Set("Authorization", "Bearer "+registeredToken(t, ts))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body status = %d", resp.StatusCode)
	}
	// Bad date on profile PUT.
	var p profile.DayProfile
	err = c.authedCall(context.Background(), http.MethodPut, PathProfiles+"/not-a-date", nil, &p, nil, true)
	if err == nil {
		t.Error("bad date accepted")
	}
	// Bad min_frequency.
	err = c.authedCall(context.Background(), http.MethodGet, PathRoutes, mustQuery("min_frequency", "-3"), nil, nil, true)
	if err == nil {
		t.Error("negative min_frequency accepted")
	}
}

func registeredToken(t *testing.T, ts *testServer) string {
	t.Helper()
	resp, err := ts.store.Register("imei-tok", "tok@example.com")
	if err != nil {
		t.Fatal(err)
	}
	return resp.Token
}

func mustQuery(k, v string) map[string][]string {
	return map[string][]string{k: {v}}
}

// TestWireRoundTrip checks PlaceWire <-> gsm.Place fidelity through JSON.
func TestWireRoundTrip(t *testing.T) {
	p := &gsm.Place{
		ID:        3,
		Signature: []world.CellID{{MCC: 404, MNC: 10, LAC: 1, CID: 9}},
		AllCells: map[world.CellID]struct{}{
			{MCC: 404, MNC: 10, LAC: 1, CID: 9}:  {},
			{MCC: 404, MNC: 10, LAC: 1, CID: 11}: {},
		},
		Visits: []gsm.Visit{{Arrive: simclock.Epoch, Depart: simclock.Epoch.Add(time.Hour)}},
	}
	wire := PlaceToWire(p)
	data, err := json.Marshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	var back PlaceWire
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	q := WireToPlace(back)
	if q.ID != p.ID || len(q.AllCells) != 2 || len(q.Visits) != 1 {
		t.Errorf("round trip lost data: %+v", q)
	}
	if !q.HasCell(world.CellID{MCC: 404, MNC: 10, LAC: 1, CID: 11}) {
		t.Error("cell set lost")
	}
}

func TestCellDatabaseDeterminism(t *testing.T) {
	w := world.Generate(world.DefaultConfig(), newRand(6))
	db1 := NewCellDatabase(w, 150)
	db2 := NewCellDatabase(w, 150)
	if db1.Size() == 0 || db1.Size() != db2.Size() {
		t.Fatal("size mismatch")
	}
	id := w.Towers[0].ID
	e1, _ := db1.Lookup(id)
	e2, _ := db2.Lookup(id)
	if e1 != e2 {
		t.Error("cell database not deterministic")
	}
	var nilDB *CellDatabase
	if _, ok := nilDB.Lookup(id); ok {
		t.Error("nil database resolved a cell")
	}
	if nilDB.Size() != 0 {
		t.Error("nil database has size")
	}
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func distance(lat1, lng1, lat2, lng2 float64) float64 {
	return geo.Distance(geo.LatLng{Lat: lat1, Lng: lng1}, geo.LatLng{Lat: lat2, Lng: lng2})
}
