package cloud

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/faultnet"
	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/obs"
	"repro/internal/simclock"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/world"
)

// chaosRun is one full PMS↔PCI pipeline execution.
type chaosRun struct {
	store *Store
	dir   string // durable store's data directory
	svc   *core.Service
	fault *faultnet.Transport // nil for the fault-free control run
	reg   *obs.Registry       // private registry every layer of the run reports into
}

// chaosFaultConfig injects ~30% faults: connection drops, 5xx bursts, and
// truncated responses, all from a fixed seed so the run is reproducible.
func chaosFaultConfig() faultnet.Config {
	return faultnet.Config{
		Seed:            99,
		ConnErrorRate:   0.15,
		ServerErrorRate: 0.10,
		BurstLen:        2,
		TruncateRate:    0.08,
	}
}

// runChaosPipeline drives the full stack — simulated world -> sensors -> PMS
// -> HTTP -> cloud instance — for 4 simulated days, then one more day of
// "recovered" connectivity (faults disabled). Both the faulty and the
// control run use identical seeds, so any divergence in the cloud's final
// state is attributable to the transport alone.
func runChaosPipeline(t *testing.T, faulty bool) *chaosRun {
	t.Helper()
	cfg := world.DefaultConfig()
	r := rand.New(rand.NewSource(301))
	w := world.Generate(cfg, r)
	home := w.AddVenue("home", "Home", world.KindHome, geo.Offset(cfg.Origin, 210, 2300), true, cfg, r)
	work := w.AddVenue("work", "Office", world.KindWorkplace, geo.Offset(cfg.Origin, 30, 2400), true, cfg, r)
	agent := &mobility.Agent{ID: "u1", Home: home, Work: work, SpeedMPS: 7}
	for _, v := range w.Venues {
		if v.Kind != world.KindHome && v.Kind != world.KindWorkplace {
			agent.Haunts = append(agent.Haunts, v)
		}
	}
	it, berr := mobility.BuildItinerary(agent, w, simclock.Epoch, 5, mobility.DefaultScheduleConfig(), rand.New(rand.NewSource(302)))
	if berr != nil {
		t.Fatal(berr)
	}

	clock := simclock.New()
	// Every layer of the run — storage engine, server middleware, client
	// retry, PMS outbox — reports into one private registry, so the metrics
	// E2E test can delta whole-pipeline counters against faultnet's ground
	// truth without cross-test contamination.
	reg := obs.NewRegistry()
	// The chaos soak runs over the durable store: every synced profile is
	// journaled, and compaction churns generations mid-run (CompactEvery is
	// deliberately small). fsync=always so the kill+recover check below can
	// assert on acknowledged writes.
	dir := t.TempDir()
	store, err := OpenStore(dir, StoreConfig{
		Now:          clock.Now,
		Sync:         storage.SyncAlways,
		CompactEvery: 32,
		Metrics:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	server := NewServer(store, WithCellDatabase(NewCellDatabase(w, 150)), WithMetrics(reg))
	ts := httptest.NewServer(server.Handler())
	t.Cleanup(ts.Close)

	httpClient := ts.Client()
	var fault *faultnet.Transport
	if faulty {
		fault = faultnet.Wrap(httpClient.Transport, chaosFaultConfig())
		httpClient = &http.Client{Transport: fault}
	}
	client := NewClient(ts.URL, "imei-chaos", "chaos@example.com", httpClient,
		WithRetryPolicy(fastRetry().WithRand(rand.New(rand.NewSource(7)))),
		WithClientMetrics(reg))
	if err := client.Register(); err != nil {
		t.Fatalf("register (faulty=%v): %v", faulty, err)
	}

	sensors := trace.NewSensors(w, it, trace.DefaultConfig(), rand.New(rand.NewSource(303)))
	svcCfg := core.DefaultConfig("u1")
	svcCfg.Metrics = reg
	svc := core.NewService(svcCfg, clock, sensors, energy.NewMeter(energy.DefaultModel()), client)

	// 4 days under fire, then connectivity "recovers" for the final day
	// (the control run executes the identical two-phase schedule).
	svc.Run(96 * time.Hour)
	if fault != nil {
		fault.SetEnabled(false)
	}
	svc.Run(24 * time.Hour)
	return &chaosRun{store: store, dir: dir, svc: svc, fault: fault, reg: reg}
}

// recoverStore abandons the run's store (a crash: no Close, no final sync or
// snapshot) and reopens it from the same data directory.
func (r *chaosRun) recoverStore(t *testing.T) *Store {
	t.Helper()
	s, err := OpenStore(r.dir, StoreConfig{Sync: storage.SyncAlways, CompactEvery: 32})
	if err != nil {
		t.Fatalf("recovery after chaos run: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// profilesJSON renders a store's full profile set for byte-level comparison.
func profilesJSON(t *testing.T, s *Store, uid string) string {
	t.Helper()
	data, err := json.MarshalIndent(s.ProfileRange(uid, "", ""), "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestChaosSoakNoProfileLoss is the chaos suite's core guarantee: with a
// ~30% fault rate on the PMS↔PCI link, once connectivity recovers the cloud
// holds exactly the same day profiles as a fault-free run — the retry layer
// plus outbox lose nothing.
func TestChaosSoakNoProfileLoss(t *testing.T) {
	clean := runChaosPipeline(t, false)
	dirty := runChaosPipeline(t, true)

	st := dirty.fault.Stats()
	if st.Faults() < 10 {
		t.Fatalf("chaos run saw only %d faults (%+v) — not a meaningful soak", st.Faults(), st)
	}
	t.Logf("fault stats: %+v", st)

	uid := func(run *chaosRun) string {
		users := run.store.UserCount()
		if users != 1 {
			t.Fatalf("store has %d users, want 1", users)
		}
		return "user-0001"
	}

	cleanProfiles := clean.store.ProfileRange(uid(clean), "", "")
	dirtyProfiles := dirty.store.ProfileRange(uid(dirty), "", "")
	if len(cleanProfiles) < 3 {
		t.Fatalf("control run synced only %d profiles — fixture too small", len(cleanProfiles))
	}

	cleanDates := map[string]bool{}
	for _, p := range cleanProfiles {
		cleanDates[p.Date] = true
	}
	dirtyDates := map[string]bool{}
	for _, p := range dirtyProfiles {
		dirtyDates[p.Date] = true
	}
	for d := range cleanDates {
		if !dirtyDates[d] {
			t.Errorf("day %s lost under faults", d)
		}
	}
	for d := range dirtyDates {
		if !cleanDates[d] {
			t.Errorf("day %s present only under faults", d)
		}
	}

	// Content, not just presence: the synced profiles must be identical.
	if a, b := profilesJSON(t, clean.store, uid(clean)), profilesJSON(t, dirty.store, uid(dirty)); a != b {
		t.Error("synced profile contents diverged between the fault-free and chaos runs")
	}

	// The outbox must have fully drained after recovery.
	if pending := dirty.svc.Outbox().Pending(); pending != 0 {
		t.Errorf("outbox still holds %d profiles after connectivity recovered", pending)
	}

	// Finally, kill the chaos run's cloud instance (no Close) and recover it
	// from disk: with fsync=always, every profile the PMS got an ack for must
	// survive the crash byte-for-byte.
	revived := dirty.recoverStore(t)
	if got := profilesJSON(t, revived, uid(dirty)); got != profilesJSON(t, clean.store, uid(clean)) {
		t.Error("recovered store diverged from the fault-free control after a crash")
	}
}

// TestChaosSoakDeterministic: the chaos run itself is reproducible — two
// executions with identical seeds inject identical fault schedules and end
// in identical cloud states.
func TestChaosSoakDeterministic(t *testing.T) {
	a := runChaosPipeline(t, true)
	b := runChaosPipeline(t, true)
	sa, sb := a.fault.Stats(), b.fault.Stats()
	if sa != sb {
		t.Errorf("fault schedules diverged: %+v vs %+v", sa, sb)
	}
	if pa, pb := profilesJSON(t, a.store, "user-0001"), profilesJSON(t, b.store, "user-0001"); pa != pb {
		t.Error("cloud state diverged across identical chaos runs")
	}
}
