package cloud

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/simclock"
	"repro/internal/world"
)

// popularFixture stores places for several users around shared towers.
func popularFixture(t *testing.T) (*Store, *CellDatabase, *world.World) {
	t.Helper()
	w := world.Generate(world.DefaultConfig(), rand.New(rand.NewSource(91)))
	cells := NewCellDatabase(w, 100)
	store := NewStore(fixedNow(simclock.Epoch))
	return store, cells, w
}

// placeAtTower builds a PlaceWire whose cells are towers near index i.
func placeAtTower(w *world.World, i int, label string) PlaceWire {
	t := w.Towers[i]
	cells := []world.CellID{t.ID}
	// Add a couple of neighbours for realism.
	for _, n := range w.TowersInRange(t.Pos)[:3] {
		cells = append(cells, n.ID)
	}
	return PlaceWire{ID: 0, Cells: cells, Label: label}
}

func TestPopularPlacesSuppressesUnique(t *testing.T) {
	store, cells, w := popularFixture(t)
	// Three users share a "mall" at tower 10; one user has a unique home at
	// a far tower.
	for _, u := range []string{"u1", "u2", "u3"} {
		store.SetPlaces(u, []PlaceWire{placeAtTower(w, 10, "mall")})
	}
	store.SetPlaces("u4", []PlaceWire{placeAtTower(w, len(w.Towers)-1, "my home")})

	out := PopularPlaces(store, cells, 3, 400)
	if len(out) != 1 {
		t.Fatalf("clusters = %d, want 1 (unique home must be suppressed)", len(out))
	}
	if out[0].Users != 3 {
		t.Errorf("users = %d", out[0].Users)
	}
	if out[0].Label != "mall" {
		t.Errorf("label = %q, want mall (3 >= k users agree)", out[0].Label)
	}
}

func TestPopularPlacesLabelAnonymity(t *testing.T) {
	store, cells, w := popularFixture(t)
	// Three users at the same spot, but only ONE labelled it: revealing that
	// label would leak the labeller's vocabulary. It must stay hidden.
	store.SetPlaces("u1", []PlaceWire{placeAtTower(w, 10, "my secret spot")})
	store.SetPlaces("u2", []PlaceWire{placeAtTower(w, 10, "")})
	store.SetPlaces("u3", []PlaceWire{placeAtTower(w, 10, "")})

	out := PopularPlaces(store, cells, 3, 400)
	if len(out) != 1 {
		t.Fatalf("clusters = %d", len(out))
	}
	if out[0].Label != "" {
		t.Errorf("minority label leaked: %q", out[0].Label)
	}
}

func TestPopularPlacesMinimumK(t *testing.T) {
	store, cells, w := popularFixture(t)
	store.SetPlaces("u1", []PlaceWire{placeAtTower(w, 5, "home")})
	// k below 2 is clamped: a single user's place never appears.
	if out := PopularPlaces(store, cells, 1, 400); len(out) != 0 {
		t.Error("k=1 revealed a single user's place")
	}
}

func TestPopularPlacesSkipsUnmappedCells(t *testing.T) {
	store, cells, _ := popularFixture(t)
	ghost := PlaceWire{Cells: []world.CellID{{MCC: 1, MNC: 1, LAC: 1, CID: 1}}}
	for _, u := range []string{"u1", "u2", "u3"} {
		store.SetPlaces(u, []PlaceWire{ghost})
	}
	if out := PopularPlaces(store, cells, 2, 400); len(out) != 0 {
		t.Error("unmappable places clustered")
	}
}

func TestPopularPlacesDeterministic(t *testing.T) {
	store, cells, w := popularFixture(t)
	for i, u := range []string{"u1", "u2", "u3", "u4", "u5"} {
		store.SetPlaces(u, []PlaceWire{
			placeAtTower(w, 10, "mall"),
			placeAtTower(w, 40+i, ""), // scattered singles
		})
	}
	a := PopularPlaces(store, cells, 3, 400)
	b := PopularPlaces(store, cells, 3, 400)
	if len(a) != len(b) {
		t.Fatal("non-deterministic cluster count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic clusters")
		}
	}
}

func TestPopularPlacesViaHTTP(t *testing.T) {
	w := world.Generate(world.DefaultConfig(), rand.New(rand.NewSource(92)))
	cells := NewCellDatabase(w, 100)
	ts := newTestServer(t, WithCellDatabase(cells))
	for _, u := range []string{"a", "b", "c"} {
		reg, err := ts.store.Register("imei-"+u, u+"@x")
		if err != nil {
			t.Fatal(err)
		}
		ts.store.SetPlaces(reg.UserID, []PlaceWire{placeAtTower(w, 10, "mall")})
	}
	c := ts.client()
	if err := c.Register(); err != nil {
		t.Fatal(err)
	}
	resp, err := c.PopularPlaces(3, 400)
	if err != nil {
		t.Fatal(err)
	}
	if resp.K != 3 || len(resp.Places) != 1 || resp.Places[0].Users != 3 {
		t.Errorf("response = %+v", resp)
	}
	// Bad k rejected.
	if err := c.authedCall(context.Background(), "GET", PathPlacesPopular, mustQuery("k", "1"), nil, nil, true); err == nil {
		t.Error("k=1 accepted over HTTP")
	}
	if err := c.authedCall(context.Background(), "GET", PathPlacesPopular, mustQuery("radius", "-5"), nil, nil, true); err == nil {
		t.Error("negative radius accepted")
	}
}
