package cloud

import (
	"time"

	"repro/internal/obs"
)

// clientMetrics is the PMS-side communication module's metric bundle
// (DESIGN.md §10). Ground truth for the delta tests: every HTTP attempt is
// exactly one RoundTrip, so under the chaos fixture client_attempts_total
// must equal faultnet's Stats.Requests, client_conn_errors_total its
// ConnErrors, and client_http_5xx_total its ServerError count.
//
// Family inventory (all counters):
//
//	client_attempts_total                   HTTP attempts issued (RoundTrips)
//	client_retries_total                    attempts beyond the first per call
//	client_conn_errors_total                transport-level failures
//	client_http_5xx_total                   5xx responses received
//	client_http_4xx_total                   4xx responses received
//	client_body_errors_total                garbled/truncated 2xx bodies
//	client_backoff_sleeps_total             backoff waits taken
//	client_backoff_sleep_us_total           summed jittered backoff (µs)
//	client_token_recoveries_total           refresh/re-register round-trips run
//	client_token_recoveries_coalesced_total 401 recoveries absorbed by single-flight
//	client_delta_uploads_total              discover calls shipped as cursor deltas
//	client_delta_fallbacks_total            deltas rejected 409, re-sent as full uploads
//	client_wire_bytes_sent_total            request body bytes written, any codec
//	client_wire_bytes_received_total        response body bytes read, any codec
//	client_wire_json_fallbacks_total        binary requests downgraded after a 415
//	client_cluster_failovers_total          candidate advances on conn error / 5xx
//	client_cluster_redirects_total          421 redirects adopted from X-PMWare-Owner
type clientMetrics struct {
	attempts       *obs.Counter
	retries        *obs.Counter
	connErrors     *obs.Counter
	http5xx        *obs.Counter
	http4xx        *obs.Counter
	bodyErrors     *obs.Counter
	backoffSleeps  *obs.Counter
	backoffSleepUs *obs.Counter
	tokenRecovers  *obs.Counter
	tokenCoalesced *obs.Counter
	deltaUploads   *obs.Counter
	deltaFallbacks *obs.Counter
	wireSentBytes  *obs.Counter
	wireRecvBytes  *obs.Counter
	wireFallbacks  *obs.Counter

	clusterFailovers *obs.Counter
	clusterRedirects *obs.Counter
}

func newClientMetrics(reg *obs.Registry) *clientMetrics {
	if reg == nil {
		reg = obs.Default()
	}
	return &clientMetrics{
		attempts:       reg.Counter("client_attempts_total"),
		retries:        reg.Counter("client_retries_total"),
		connErrors:     reg.Counter("client_conn_errors_total"),
		http5xx:        reg.Counter("client_http_5xx_total"),
		http4xx:        reg.Counter("client_http_4xx_total"),
		bodyErrors:     reg.Counter("client_body_errors_total"),
		backoffSleeps:  reg.Counter("client_backoff_sleeps_total"),
		backoffSleepUs: reg.Counter("client_backoff_sleep_us_total"),
		tokenRecovers:  reg.Counter("client_token_recoveries_total"),
		tokenCoalesced: reg.Counter("client_token_recoveries_coalesced_total"),
		deltaUploads:   reg.Counter("client_delta_uploads_total"),
		deltaFallbacks: reg.Counter("client_delta_fallbacks_total"),
		wireSentBytes:  reg.Counter("client_wire_bytes_sent_total"),
		wireRecvBytes:  reg.Counter("client_wire_bytes_received_total"),
		wireFallbacks:  reg.Counter("client_wire_json_fallbacks_total"),

		clusterFailovers: reg.Counter("client_cluster_failovers_total"),
		clusterRedirects: reg.Counter("client_cluster_redirects_total"),
	}
}

// defaultClientMetrics registers the client_* families in the process-wide
// registry at package init, so a booted pmware-cloud exposes them on /metrics
// even before any client traffic arrives.
var defaultClientMetrics = newClientMetrics(nil)

// WithClientMetrics registers the client's client_* families in reg instead
// of the process-wide default registry.
func WithClientMetrics(reg *obs.Registry) ClientOption {
	return func(c *Client) { c.m = newClientMetrics(reg) }
}

// observeBackoff feeds RetryPolicy's sleep observer.
func (m *clientMetrics) observeBackoff(d time.Duration) {
	m.backoffSleeps.Inc()
	if us := d.Microseconds(); us > 0 {
		m.backoffSleepUs.Add(uint64(us))
	}
}
