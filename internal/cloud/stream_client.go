package cloud

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"

	"repro/internal/trace"
)

// DefaultStreamBatchSize is how many observations StreamObservations packs
// into one stream batch when the caller passes 0.
const DefaultStreamBatchSize = 64

// StreamObservations ships observations to the cloud over the streaming
// ingest endpoint (POST /api/v1/observations/stream): one long-lived request
// whose body is a sequence of JSON batches, each appended WAL-durably and fed
// to the online event detector as it arrives — subscribers see the resulting
// place events while the device is still uploading.
//
// Like DiscoverPlaces, the call is cursor-aware: observations the server
// already acknowledged are skipped client-side, so handing it the full trace
// streams only the new tail (and an up-to-date client streams nothing,
// getting back the current position). On success the acknowledged cursor is
// stored, so a later DiscoverPlaces delta-syncs instead of re-uploading.
//
// The stream appends state as it goes, so the request is not retried by the
// retry policy; a failed stream is resumed by calling again (the cursor —
// refreshed by the returned StreamResult — restarts from what was durably
// appended). A 401 recovers the token once, exactly like every other
// authenticated call.
func (c *Client) StreamObservations(ctx context.Context, obs []trace.GSMObservation, batchSize int) (StreamResult, error) {
	if batchSize <= 0 {
		batchSize = DefaultStreamBatchSize
	}
	_, gen := c.snapshotToken()
	res, err := c.streamOnce(ctx, obs, batchSize)
	var se *statusError
	if errors.As(err, &se) && se.Status == http.StatusUnauthorized {
		if rerr := c.recoverToken(ctx, gen); rerr == nil {
			res, err = c.streamOnce(ctx, obs, batchSize)
		}
	}
	if err != nil {
		return StreamResult{}, err
	}
	c.storeCursor(res.TraceLen, res.TraceHash)
	return res, nil
}

func (c *Client) streamOnce(ctx context.Context, obs []trace.GSMObservation, batchSize int) (StreamResult, error) {
	tok, _ := c.snapshotToken()
	if tok == "" {
		return StreamResult{}, &statusError{Status: http.StatusUnauthorized, Msg: "no token (register first)"}
	}
	if cursor, _, delta := c.traceCursor(obs); delta {
		obs = obs[cursor:]
	}

	// Feed the body through a pipe so batches hit the wire as they are
	// encoded (chunked transfer, no Content-Length): the server ingests and
	// publishes batch by batch, which is the point of the streaming path.
	pr, pw := io.Pipe()
	go func() {
		enc := json.NewEncoder(pw)
		for start := 0; start < len(obs); start += batchSize {
			end := start + batchSize
			if end > len(obs) {
				end = len(obs)
			}
			if err := enc.Encode(StreamBatch{Observations: obs[start:end]}); err != nil {
				pw.CloseWithError(err)
				return
			}
		}
		pw.Close()
	}()

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.baseURL+PathObservationsStream, pr)
	if err != nil {
		return StreamResult{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Authorization", "Bearer "+tok)
	c.m.attempts.Inc()
	resp, err := c.http.Do(req)
	if err != nil {
		c.m.connErrors.Inc()
		return StreamResult{}, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, drainLimit))
		resp.Body.Close()
	}()
	if resp.StatusCode/100 != 2 {
		switch {
		case resp.StatusCode >= 500:
			c.m.http5xx.Inc()
		case resp.StatusCode >= 400:
			c.m.http4xx.Inc()
		}
		var e ErrorResponse
		data, _ := io.ReadAll(io.LimitReader(resp.Body, errorBodyLimit))
		if jerr := json.Unmarshal(data, &e); jerr != nil || e.Error == "" {
			e.Error = strconv.Quote(truncateForError(data))
		}
		return StreamResult{}, &statusError{Status: resp.StatusCode, Msg: e.Error}
	}
	var res StreamResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		c.m.bodyErrors.Inc()
		return StreamResult{}, &transientError{err: err}
	}
	return res, nil
}
