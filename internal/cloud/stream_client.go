package cloud

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"repro/internal/trace"
)

// DefaultStreamBatchSize is how many observations StreamObservations packs
// into one stream batch when the caller passes 0.
const DefaultStreamBatchSize = 64

// StreamObservations ships observations to the cloud over the streaming
// ingest endpoint (POST /api/v1/observations/stream): one long-lived request
// whose body is a sequence of JSON batches, each appended WAL-durably and fed
// to the online event detector as it arrives — subscribers see the resulting
// place events while the device is still uploading.
//
// Like DiscoverPlaces, the call is cursor-aware: observations the server
// already acknowledged are skipped client-side, so handing it the full trace
// streams only the new tail (and an up-to-date client streams nothing,
// getting back the current position). On success the acknowledged cursor is
// stored, so a later DiscoverPlaces delta-syncs instead of re-uploading.
//
// The stream appends state as it goes, so the request is not retried by the
// retry policy; a failed stream is resumed by calling again (the cursor —
// refreshed by the returned StreamResult — restarts from what was durably
// appended). A 401 recovers the token once, exactly like every other
// authenticated call.
func (c *Client) StreamObservations(ctx context.Context, obs []trace.GSMObservation, batchSize int) (StreamResult, error) {
	if batchSize <= 0 {
		batchSize = DefaultStreamBatchSize
	}
	_, gen := c.snapshotToken()
	res, err := c.streamOnce(ctx, obs, batchSize)
	var se *statusError
	if errors.As(err, &se) && se.Status == http.StatusUnsupportedMediaType && c.useBinary() {
		// The peer predates the binary codec: downgrade and restream as
		// JSON. Nothing was appended (the 415 precedes ingest).
		c.fallbackToJSON()
		res, err = c.streamOnce(ctx, obs, batchSize)
	}
	if errors.As(err, &se) && se.Status == http.StatusUnauthorized {
		if rerr := c.recoverToken(ctx, gen); rerr == nil {
			res, err = c.streamOnce(ctx, obs, batchSize)
		}
	}
	if err != nil {
		return StreamResult{}, err
	}
	c.storeCursor(res.TraceLen, res.TraceHash)
	return res, nil
}

func (c *Client) streamOnce(ctx context.Context, obs []trace.GSMObservation, batchSize int) (StreamResult, error) {
	tok, _ := c.snapshotToken()
	if tok == "" {
		return StreamResult{}, &statusError{Status: http.StatusUnauthorized, Msg: "no token (register first)"}
	}
	if cursor, _, delta := c.traceCursor(obs); delta {
		obs = obs[cursor:]
	}
	binary := c.useBinary()

	// Feed the body through a pipe so batches hit the wire as they are
	// encoded (chunked transfer, no Content-Length): the server ingests and
	// publishes batch by batch, which is the point of the streaming path.
	pr, pw := io.Pipe()
	go func() {
		cw := &wireCountWriter{w: pw, m: c.m.wireSentBytes}
		if binary {
			if err := writeObsFrames(cw, obs, batchSize); err != nil {
				pw.CloseWithError(err)
				return
			}
			pw.Close()
			return
		}
		enc := json.NewEncoder(cw)
		for start := 0; start < len(obs); start += batchSize {
			end := min(start+batchSize, len(obs))
			if err := enc.Encode(StreamBatch{Observations: obs[start:end]}); err != nil {
				pw.CloseWithError(err)
				return
			}
		}
		pw.Close()
	}()

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.baseURL+PathObservationsStream, pr)
	if err != nil {
		pr.Close()
		return StreamResult{}, err
	}
	if binary {
		req.Header.Set("Content-Type", ContentTypeBinary)
		req.Header.Set("Accept", ContentTypeBinary+", application/json;q=0.5")
	} else {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set("Authorization", "Bearer "+tok)
	c.m.attempts.Inc()
	resp, err := c.http.Do(req)
	if err != nil {
		c.m.connErrors.Inc()
		return StreamResult{}, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, drainLimit))
		resp.Body.Close()
	}()
	var res StreamResult
	if err := c.finishResponse(resp, &res); err != nil {
		return StreamResult{}, err
	}
	return res, nil
}

// writeObsFrames emits the binary observation stream: the two-byte
// version/kind header, one CRC frame per batch, and the explicit end marker
// so the server can tell a deliberate close from a dropped link.
func writeObsFrames(w io.Writer, obs []trace.GSMObservation, batchSize int) error {
	if _, err := w.Write([]byte{wireVersion, wireKindObsStream}); err != nil {
		return err
	}
	var e trace.BinaryEncoder
	var frame []byte
	for start := 0; start < len(obs); start += batchSize {
		end := min(start+batchSize, len(obs))
		e.Reset(e.Buf)
		trace.AppendObservations(&e, obs[start:end])
		frame = appendWireFrame(frame[:0], e.Buf)
		if _, err := w.Write(frame); err != nil {
			return err
		}
	}
	_, err := w.Write(wireFrameEnd)
	return err
}

// discoverBinary performs one binary streamed discover call with the same
// 401 single-flight token recovery as authedCall; each retry attempt builds
// a fresh pipe.
func (c *Client) discoverBinary(ctx context.Context, dreq *DiscoverPlacesRequest, out *DiscoverPlacesResponse) error {
	_, gen := c.snapshotToken()
	err := c.discoverBinaryRetry(ctx, dreq, out)
	var se *statusError
	if !errors.As(err, &se) || se.Status != http.StatusUnauthorized {
		return err
	}
	if rerr := c.recoverToken(ctx, gen); rerr != nil {
		return err
	}
	return c.discoverBinaryRetry(ctx, dreq, out)
}

func (c *Client) discoverBinaryRetry(ctx context.Context, dreq *DiscoverPlacesRequest, out *DiscoverPlacesResponse) error {
	attempt := 0
	return c.retry.withSleepObserver(c.m.observeBackoff).run(ctx, true, func(ctx context.Context) error {
		attempt++
		if attempt > 1 {
			c.m.retries.Inc()
		}
		return c.discoverOnce(ctx, dreq, out)
	})
}

// discoverOnce streams one binary discover request: the fixed header
// (version, kind, flags, cursor, prefix hash) followed by CRC-framed
// observation blocks and the end marker, all through a pipe so the full
// history is never serialized at once.
func (c *Client) discoverOnce(ctx context.Context, dreq *DiscoverPlacesRequest, out *DiscoverPlacesResponse) error {
	tok, _ := c.snapshotToken()
	if tok == "" {
		return &statusError{Status: http.StatusUnauthorized, Msg: "no token (register first)"}
	}
	pr, pw := io.Pipe()
	go func() {
		cw := &wireCountWriter{w: pw, m: c.m.wireSentBytes}
		var e trace.BinaryEncoder
		e.Byte(wireVersion)
		e.Byte(wireKindDiscoverRequest)
		var flags byte
		if dreq.Delta {
			flags |= 1
		}
		e.Byte(flags)
		e.Uvarint(uint64(dreq.Cursor))
		e.Fixed64(dreq.PrefixHash)
		if _, err := cw.Write(e.Buf); err != nil {
			pw.CloseWithError(err)
			return
		}
		var frame []byte
		obs := dreq.Observations
		for start := 0; start < len(obs); start += wireFrameObs {
			end := min(start+wireFrameObs, len(obs))
			e.Reset(e.Buf)
			trace.AppendObservations(&e, obs[start:end])
			frame = appendWireFrame(frame[:0], e.Buf)
			if _, err := cw.Write(frame); err != nil {
				pw.CloseWithError(err)
				return
			}
		}
		if _, err := cw.Write(wireFrameEnd); err != nil {
			pw.CloseWithError(err)
			return
		}
		pw.Close()
	}()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.baseURL+PathPlacesDiscover, pr)
	if err != nil {
		pr.Close()
		return err
	}
	req.Header.Set("Content-Type", ContentTypeBinary)
	req.Header.Set("Accept", ContentTypeBinary+", application/json;q=0.5")
	req.Header.Set("Authorization", "Bearer "+tok)
	c.m.attempts.Inc()
	resp, err := c.http.Do(req)
	if err != nil {
		c.m.connErrors.Inc()
		return err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, drainLimit))
		resp.Body.Close()
	}()
	return c.finishResponse(resp, out)
}
