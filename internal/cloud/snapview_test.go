package cloud

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/profile"
	"repro/internal/trace"
	"repro/internal/world"
)

// The off-lock snapshot view property (DESIGN.md §16): for every shard-state
// kind, the streaming view encoder must produce byte-for-byte the output of
// Snapshot() at capture time — even while later mutations land on the live
// state — and RestoreStream(those bytes) must reconstruct the same state as
// Restore. Cluster equivalence compares data directories byte-identically,
// so "semantically equal" is not enough here.

func randPlaces(rng *rand.Rand, n int) []PlaceWire {
	out := make([]PlaceWire, n)
	for i := range out {
		out[i] = PlaceWire{
			ID:        i + 1,
			Signature: []world.CellID{{MCC: 1, MNC: 1, LAC: 7, CID: rng.Intn(500)}},
			Cells:     []world.CellID{{MCC: 1, MNC: 1, LAC: 7, CID: rng.Intn(500)}},
		}
		if rng.Intn(2) == 0 {
			out[i].Label = fmt.Sprintf("label-%d", rng.Intn(9))
		}
	}
	return out
}

func randDataState(t *testing.T, rng *rand.Rand, users int) *dataState {
	t.Helper()
	d := newDataState()
	for u := 0; u < users; u++ {
		uid := fmt.Sprintf("u%03d", u)
		recs := []*walRecord{
			{Op: opSetPlaces, UserID: uid, Places: randPlaces(rng, 1+rng.Intn(4))},
			{Op: opSetRoutes, UserID: uid, Routes: []RouteWire{{ID: 1, Cells: []world.CellID{{MCC: 1, CID: rng.Intn(99)}}}}},
			{Op: opAddContacts, UserID: uid, Encounters: []profile.Encounter{{ContactID: "x", PlaceID: "home"}}},
		}
		for day := 0; day < 1+rng.Intn(3); day++ {
			date := fmt.Sprintf("2014-03-%02d", day+1)
			recs = append(recs, &walRecord{Op: opPutProfile, UserID: uid, Profile: genDayProfile(rng, uid, date)})
		}
		for _, rec := range recs {
			if err := d.apply(rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	return d
}

func TestDataSnapshotViewMatchesSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	d := randDataState(t, rng, 20)

	want, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	encode, release, err := d.SnapshotView()
	if err != nil {
		t.Fatal(err)
	}

	// Mutate the live state while the view is outstanding: the exact ops
	// that share structure with the captured view (in-place label writes,
	// same-user profile puts, contact appends, drops).
	muts := []*walRecord{
		{Op: opLabelPlace, UserID: "u000", PlaceID: 1, Label: "changed"},
		{Op: opPutProfile, UserID: "u001", Profile: genDayProfile(rng, "u001", "2014-03-01")},
		{Op: opPutProfile, UserID: "u001", Profile: genDayProfile(rng, "u001", "2014-03-20")},
		{Op: opAddContacts, UserID: "u002", Encounters: []profile.Encounter{{ContactID: "y"}}},
		{Op: opSetPlaces, UserID: "u003", Places: randPlaces(rng, 2)},
		{Op: opDropUser, UserID: "u004"},
	}
	for _, rec := range muts {
		if err := d.apply(rec); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := encode(&buf); err != nil {
		t.Fatal(err)
	}
	release()
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("view encoding diverged from capture-time Snapshot (%d vs %d bytes)", buf.Len(), len(want))
	}

	// The live state did move on.
	after, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(after, want) {
		t.Fatal("live state unchanged by mutations — test lost its teeth")
	}

	// RestoreStream(view bytes) == Restore(view bytes).
	viaStream, viaBytes := newDataState(), newDataState()
	if err := viaStream.RestoreStream(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if err := viaBytes.Restore(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	s1, _ := viaStream.Snapshot()
	s2, _ := viaBytes.Snapshot()
	if !bytes.Equal(s1, s2) || !bytes.Equal(s1, want) {
		t.Fatal("RestoreStream state diverged from Restore state")
	}
}

func TestMetaSnapshotViewMatchesSnapshot(t *testing.T) {
	m := newMetaState()
	for i := 0; i < 10; i++ {
		uid := fmt.Sprintf("u%d", i)
		if err := m.apply(&walRecord{Op: opRegister, User: &User{ID: uid, IMEI: fmt.Sprintf("imei%d", i)}, DeviceKey: fmt.Sprintf("dk%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	want, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	encode, release, err := m.SnapshotView()
	if err != nil {
		t.Fatal(err)
	}
	// Register and drop while the view is outstanding.
	if err := m.apply(&walRecord{Op: opRegister, User: &User{ID: "late"}, DeviceKey: "dk-late"}); err != nil {
		t.Fatal(err)
	}
	if err := m.apply(&walRecord{Op: opDropMeta, UserID: "u3", DeviceKey: "dk3"}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := encode(&buf); err != nil {
		t.Fatal(err)
	}
	release()
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatal("meta view encoding diverged from capture-time Snapshot")
	}
	fresh := newMetaState()
	if err := fresh.RestoreStream(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	got, _ := fresh.Snapshot()
	if !bytes.Equal(got, want) {
		t.Fatal("meta RestoreStream round-trip diverged")
	}
}

func TestTraceSnapshotViewMatchesSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ts := newTraceState()
	obsFor := func(n int) []trace.GSMObservation {
		out := make([]trace.GSMObservation, n)
		for i := range out {
			out[i] = trace.GSMObservation{Cell: world.CellID{MCC: 1, CID: rng.Intn(300)}, SignalDBM: -float64(50 + rng.Intn(50))}
		}
		return out
	}
	for i := 0; i < 8; i++ {
		uid := fmt.Sprintf("u%d", i)
		if err := ts.apply(&traceRecord{Op: opTraceAppend, UserID: uid, Observations: obsFor(1 + rng.Intn(20))}); err != nil {
			t.Fatal(err)
		}
	}
	want, err := ts.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	encode, release, err := ts.SnapshotView()
	if err != nil {
		t.Fatal(err)
	}
	// Appends and a replace while the view is outstanding — the append case
	// is the one that shares a backing array with the captured headers.
	if err := ts.apply(&traceRecord{Op: opTraceAppend, UserID: "u0", Observations: obsFor(5)}); err != nil {
		t.Fatal(err)
	}
	if err := ts.apply(&traceRecord{Op: opTraceReplace, UserID: "u1", Observations: obsFor(3)}); err != nil {
		t.Fatal(err)
	}
	if err := ts.apply(&traceRecord{Op: opTraceDrop, UserID: "u2"}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := encode(&buf); err != nil {
		t.Fatal(err)
	}
	release()
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatal("trace view encoding diverged from capture-time Snapshot")
	}
	fresh := newTraceState()
	if err := fresh.RestoreStream(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	got, _ := fresh.Snapshot()
	if !bytes.Equal(got, want) {
		t.Fatal("trace RestoreStream round-trip diverged")
	}
}
