package cloud

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"

	"repro/internal/core"
	"repro/internal/events"
)

// SubscribeOption customizes a Subscribe call.
type SubscribeOption func(*subscribeConfig)

type subscribeConfig struct {
	granularity string
	bus         *core.Bus
	buffer      int
}

// WithSubscribeGranularity asks the server to clamp every delivered event's
// positional payload to the given privacy tier ("area", "building", or
// "room"; empty leaves the server default).
func WithSubscribeGranularity(tier string) SubscribeOption {
	return func(c *subscribeConfig) { c.granularity = tier }
}

// WithEventBus bridges the subscription onto an in-process Connected
// Applications bus: every delivered event is also broadcast as the core
// intent local detection would have produced, so PMS-side apps receive
// identical events regardless of where detection ran.
func WithEventBus(b *core.Bus) SubscribeOption {
	return func(c *subscribeConfig) { c.bus = b }
}

// WithSubscribeBuffer sets the capacity of the Subscription's delivery
// channel (default 64).
func WithSubscribeBuffer(n int) SubscribeOption {
	return func(c *subscribeConfig) { c.buffer = n }
}

// Subscription is a live event subscription. Events (including the reset and
// evicted control events, which consumers may use to trigger an out-of-band
// state refresh) arrive on C; the channel closes when the subscription ends,
// after which Err reports why (nil on Close or parent-context cancellation).
type Subscription struct {
	C <-chan events.Event

	ch     chan events.Event
	cancel context.CancelFunc
	done   chan struct{}
	err    error // written once before done closes
}

// Close tears the subscription down and waits for its goroutine to exit.
// Idempotent.
func (s *Subscription) Close() {
	s.cancel()
	<-s.done
}

// Err reports why the subscription ended: nil while live or after a clean
// Close/cancellation, the terminal failure otherwise. Only valid to inspect
// after C closes.
func (s *Subscription) Err() error {
	select {
	case <-s.done:
		return s.err
	default:
		return nil
	}
}

// Subscribe opens a server-sent-events subscription to the authenticated
// user's place events (GET /api/v1/events/subscribe) and keeps it open:
// dropped connections reconnect under the client's retry policy, resuming
// from the last delivered sequence number via Last-Event-ID so no event is
// missed or duplicated across the gap. A 401 mid-subscription recovers the
// token exactly like every other authenticated call. The subscription ends
// only when ctx is cancelled, Close is called, or consecutive reconnect
// attempts exhaust the retry budget without a single delivered frame.
func (c *Client) Subscribe(ctx context.Context, opts ...SubscribeOption) (*Subscription, error) {
	cfg := subscribeConfig{buffer: 64}
	for _, opt := range opts {
		opt(&cfg)
	}
	if tok, _ := c.snapshotToken(); tok == "" {
		return nil, errors.New("cloud: subscribe: no token (register first)")
	}
	sctx, cancel := context.WithCancel(ctx)
	sub := &Subscription{
		ch:     make(chan events.Event, cfg.buffer),
		cancel: cancel,
		done:   make(chan struct{}),
	}
	sub.C = sub.ch
	go sub.run(sctx, c, cfg)
	return sub, nil
}

// run is the subscription's reconnect loop. failures counts consecutive
// attempts that delivered nothing; it indexes the retry policy's backoff
// schedule and resets whenever a connection proves healthy, so a long-lived
// subscription survives any number of transient faults while a hard-down
// server still exhausts the policy's attempt budget and surfaces an error.
func (s *Subscription) run(ctx context.Context, c *Client, cfg subscribeConfig) {
	defer close(s.done)
	defer close(s.ch)
	policy := c.retry.withSleepObserver(c.m.observeBackoff)
	var lastSeq uint64
	failures := 0
	for {
		if failures > 0 {
			if failures >= policy.attempts() {
				s.err = fmt.Errorf("cloud: subscribe: reconnect budget exhausted: %w", s.err)
				return
			}
			c.m.retries.Inc()
			if policy.wait(ctx, failures-1, 0) != nil {
				s.err = nil // parent cancelled during backoff: clean shutdown
				return
			}
		}
		delivered, err := s.attempt(ctx, c, cfg, &lastSeq)
		if ctx.Err() != nil {
			s.err = nil
			return
		}
		if delivered {
			failures = 0
		} else {
			failures++
		}
		s.err = err

		var se *statusError
		if errors.As(err, &se) {
			switch {
			case se.Status == http.StatusUnauthorized:
				_, gen := c.snapshotToken()
				if rerr := c.recoverToken(ctx, gen); rerr != nil {
					s.err = fmt.Errorf("cloud: subscribe: token recovery: %w", rerr)
					return
				}
			case se.Status/100 == 4 && se.Status != http.StatusTooManyRequests:
				// Protocol rejection (bad granularity, hub shut down answers
				// 503 and is retried): reconnecting cannot help.
				s.err = fmt.Errorf("cloud: subscribe: %w", se)
				return
			}
		}
	}
}

// countingReader flags whether any body bytes arrived — the connection
// health signal. Heartbeat comments count: a subscription can legitimately
// idle for hours with no events, and its eventual drop is not the server
// being down.
type countingReader struct {
	r    io.Reader
	seen bool
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if n > 0 {
		c.seen = true
	}
	return n, err
}

// attempt opens one SSE connection and pumps frames until it breaks.
// delivered reports whether the connection yielded any body bytes (events or
// heartbeats) — the health signal that resets the reconnect backoff.
func (s *Subscription) attempt(ctx context.Context, c *Client, cfg subscribeConfig, lastSeq *uint64) (delivered bool, err error) {
	u := c.baseURL + PathEventsSubscribe
	if cfg.granularity != "" {
		u += "?" + url.Values{"granularity": {cfg.granularity}}.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return false, err
	}
	tok, _ := c.snapshotToken()
	req.Header.Set("Authorization", "Bearer "+tok)
	req.Header.Set("Accept", "text/event-stream")
	if *lastSeq > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(*lastSeq, 10))
	}
	c.m.attempts.Inc()
	resp, err := c.http.Do(req)
	if err != nil {
		c.m.connErrors.Inc()
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode >= 500 {
			c.m.http5xx.Inc()
		} else if resp.StatusCode >= 400 {
			c.m.http4xx.Inc()
		}
		var e ErrorResponse
		data, _ := io.ReadAll(io.LimitReader(resp.Body, errorBodyLimit))
		if jerr := json.Unmarshal(data, &e); jerr != nil || e.Error == "" {
			e.Error = strconv.Quote(truncateForError(data))
		}
		return false, &statusError{Status: resp.StatusCode, Msg: e.Error}
	}

	cr := &countingReader{r: resp.Body}
	fr := events.NewFrameReader(cr)
	for {
		frame, ferr := fr.Next()
		if ferr != nil {
			// EOF included: the server went away; reconnect and resume.
			return cr.seen, fmt.Errorf("cloud: subscribe: stream: %w", ferr)
		}
		var ev events.Event
		switch frame.Event {
		case events.KindReset:
			// The server could not replay our resume point: accept its head
			// sequence so the stream continues, and pass the reset through so
			// the consumer can refresh authoritative state out of band.
			ev = events.Event{Type: events.KindReset, Seq: frame.Seq()}
			*lastSeq = frame.Seq()
		case events.KindEvicted:
			// Final frame before the server closes a slow consumer: surface
			// it, then let the read loop hit EOF and reconnect with resume.
			ev = events.Event{Type: events.KindEvicted}
		default:
			dev, derr := frame.DecodeEvent()
			if derr != nil {
				return cr.seen, fmt.Errorf("cloud: subscribe: bad event frame: %w", derr)
			}
			ev = dev
			*lastSeq = ev.Seq
		}
		if cfg.bus != nil {
			if in, ok := events.ToIntent(ev); ok {
				cfg.bus.Broadcast(in)
			}
		}
		select {
		case s.ch <- ev:
		case <-ctx.Done():
			return cr.seen, ctx.Err()
		}
	}
}
