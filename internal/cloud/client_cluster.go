package cloud

import (
	"context"
	"errors"
	"io"
	"net/http"
	"sync"

	"repro/internal/cluster"
)

// clusterRouter is the client side of ring routing: it computes the device's
// routing key locally (the same StableUserID every node derives), fetches
// the ring lazily, and orders candidate node URLs by expected ownership so
// the common case is one hop to the right node. Requests carry the key in
// X-PMWare-Key; nodes gate on it and answer 421 with the owner's URL when
// the client guessed wrong, which the router adopts as a sticky target.
type clusterRouter struct {
	peers []string
	key   string
	httpc *http.Client
	m     *clientMetrics

	mu     sync.Mutex
	ring   *cluster.Ring
	sticky string // owner URL learned from the last 421 redirect
}

// WithCluster makes the client cluster-aware: targets are the node base URLs
// (any order; the ring is fetched from whichever answers first). The
// client's base URL argument is ignored for routed calls.
func WithCluster(targets []string) ClientOption {
	return func(c *Client) {
		if len(targets) == 0 {
			return
		}
		c.router = &clusterRouter{peers: append([]string(nil), targets...)}
	}
}

// refreshRing fetches the current ring from the first peer that answers,
// keeping the newest version seen.
func (r *clusterRouter) refreshRing() {
	for _, p := range r.peers {
		resp, err := r.httpc.Get(p + cluster.PathRing)
		if err != nil {
			continue
		}
		b, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if rerr != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		ring, derr := cluster.DecodeRing(b)
		if derr != nil {
			continue
		}
		r.mu.Lock()
		if r.ring == nil || ring.Version > r.ring.Version {
			r.ring = ring
		}
		r.mu.Unlock()
		return
	}
}

// candidates orders node URLs by expected ownership: the sticky owner from a
// 421 first, then the ring primary and its follower (the failover target
// holding the replica), then every remaining peer.
func (r *clusterRouter) candidates() []string {
	r.mu.Lock()
	ring, sticky := r.ring, r.sticky
	r.mu.Unlock()
	out := make([]string, 0, len(r.peers)+1)
	seen := map[string]bool{}
	add := func(u string) {
		if u != "" && !seen[u] {
			seen[u] = true
			out = append(out, u)
		}
	}
	add(sticky)
	if ring != nil {
		if p, ok := ring.Primary(r.key); ok {
			add(p.URL)
			if f, ok := ring.Follower(p.ID); ok {
				add(f.URL)
			}
		}
	}
	for _, p := range r.peers {
		add(p)
	}
	return out
}

func (r *clusterRouter) adopt(owner string) {
	r.mu.Lock()
	r.sticky = owner
	r.mu.Unlock()
}

// clearSticky drops the sticky target if it still points at u — the node
// just failed an attempt, so trusting the old redirect would loop on it.
func (r *clusterRouter) clearSticky(u string) {
	r.mu.Lock()
	if r.sticky == u {
		r.sticky = ""
	}
	r.mu.Unlock()
}

// begin opens one call's routing session.
func (r *clusterRouter) begin() *routeSession {
	r.mu.Lock()
	haveRing := r.ring != nil
	r.mu.Unlock()
	if !haveRing {
		r.refreshRing()
	}
	return &routeSession{r: r, cands: r.candidates()}
}

// routeSession is one call's walk over the candidate list: each retry
// attempt asks current() for its base URL, and observe() repositions after
// a failure.
type routeSession struct {
	r     *clusterRouter
	cands []string
	cur   int
}

func (s *routeSession) current() string {
	if len(s.cands) == 0 {
		return s.r.peers[0]
	}
	return s.cands[s.cur%len(s.cands)]
}

// observe classifies one failed attempt. A 421 carries the owner's URL:
// adopt it (sticky, so later calls start there) and retarget this session. A
// transport failure or 5xx means the node is unhealthy: advance to the next
// candidate. Protocol rejections (4xx) stay on the current node — they are
// the caller's problem, not a routing one.
func (s *routeSession) observe(err error) {
	var se *statusError
	if errors.As(err, &se) {
		switch {
		case se.Status == http.StatusMisdirectedRequest && se.Owner != "":
			s.r.m.clusterRedirects.Inc()
			s.r.adopt(se.Owner)
			s.retarget(se.Owner)
		case se.Status >= 500:
			s.advance()
		}
		return
	}
	if errors.Is(err, context.Canceled) {
		return
	}
	s.advance()
}

func (s *routeSession) retarget(u string) {
	for i, c := range s.cands {
		if c == u {
			s.cur = i
			return
		}
	}
	s.cands = append(s.cands, u)
	s.cur = len(s.cands) - 1
}

func (s *routeSession) advance() {
	s.r.m.clusterFailovers.Inc()
	s.r.clearSticky(s.current())
	s.cur++
	if s.cur >= len(s.cands) {
		// Every candidate failed once. A failover may have published a new
		// ring by now: refresh and start the walk over.
		s.r.refreshRing()
		s.cands = s.r.candidates()
		s.cur = 0
	}
}
