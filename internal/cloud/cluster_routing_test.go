package cloud

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/faultnet"
	"repro/internal/obs"
)

// Routing and failover behavior, pinned to exact metric deltas: the server
// gate's serve/proxy/redirect decisions, the client router's redirect
// adoption on ring change, and conn-error failovers tied one-to-one to
// faultnet's injected-fault ground truth.

func clusterNodeByID(t *testing.T, nodes []*chaosNode, id string) *chaosNode {
	t.Helper()
	for _, n := range nodes {
		if n.id == id {
			return n
		}
	}
	t.Fatalf("no node %s", id)
	return nil
}

func rawRegister(t *testing.T, url string, hdr map[string]string) *http.Response {
	t.Helper()
	body, _ := json.Marshal(RegisterRequest{IMEI: "route-imei-1", Email: "route@example.com"})
	req, err := http.NewRequest("POST", url+PathRegister, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestClusterGateRouting pins the server-side gate decision table: owner
// serves, follower-of-owner proxies (one hop), anyone else redirects with
// the owner's URL, keyless requests are served locally, and a proxied
// request for a key this node does not own bounces 421 (the hop is not a
// license to serve someone else's user) — each with its exact
// pci_cluster_* delta.
func TestClusterGateRouting(t *testing.T) {
	nodes := startChaosCluster(t, 3)
	uid := StableUserID("route-imei-1", "route@example.com")
	ring := nodes[0].cn.Ring()
	ownerID := ring.PrimaryID(uid)
	followerID, ok := ring.FollowerID(ownerID)
	if !ok {
		t.Fatalf("no follower for %s", ownerID)
	}
	owner := clusterNodeByID(t, nodes, ownerID)
	follower := clusterNodeByID(t, nodes, followerID)
	var third *chaosNode
	for _, n := range nodes {
		if n.id != ownerID && n.id != followerID {
			third = n
		}
	}

	key := map[string]string{cluster.HeaderKey: uid}

	// Owner serves directly; no routing counters move.
	if resp := rawRegister(t, owner.url, key); resp.StatusCode != http.StatusOK {
		t.Fatalf("owner: status %d", resp.StatusCode)
	}
	// Follower-of-owner proxies the request to the owner, one hop.
	if resp := rawRegister(t, follower.url, key); resp.StatusCode != http.StatusOK {
		t.Fatalf("follower proxy: status %d", resp.StatusCode)
	}
	if got := follower.reg.Counter("pci_cluster_proxied_total").Value(); got != 1 {
		t.Fatalf("follower proxied counter = %d, want 1", got)
	}
	// Any other node redirects, naming the owner.
	resp := rawRegister(t, third.url, key)
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("third node: status %d, want 421", resp.StatusCode)
	}
	if got := resp.Header.Get(cluster.HeaderOwner); got != owner.url {
		t.Fatalf("redirect owner = %q, want %q", got, owner.url)
	}
	if got := third.reg.Counter("pci_cluster_misrouted_total").Value(); got != 1 {
		t.Fatalf("third misrouted counter = %d, want 1", got)
	}
	// Keyless requests (pre-cluster clients) are served wherever they land.
	if resp := rawRegister(t, third.url, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("keyless: status %d", resp.StatusCode)
	}
	// A proxied request is still ownership-checked: a hop off a stale ring
	// must not land a write on a non-owner. It is never proxied a second
	// time (single hop) — it bounces 421 naming the real owner, for the
	// proxying node to relay.
	hopped := map[string]string{cluster.HeaderKey: uid, cluster.HeaderProxied: "1"}
	resp = rawRegister(t, third.url, hopped)
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("proxied flag: status %d, want 421", resp.StatusCode)
	}
	if got := resp.Header.Get(cluster.HeaderOwner); got != owner.url {
		t.Fatalf("proxied bounce owner = %q, want %q", got, owner.url)
	}
	if got := third.reg.Counter("pci_cluster_misrouted_total").Value(); got != 2 {
		t.Fatalf("third misrouted counter = %d, want 2", got)
	}
	// A proxied request for a key this node DOES own is served (the normal
	// proxy hop terminates here).
	ownerHop := map[string]string{cluster.HeaderKey: uid, cluster.HeaderProxied: "1"}
	if resp := rawRegister(t, owner.url, ownerHop); resp.StatusCode != http.StatusOK {
		t.Fatalf("proxied-to-owner: status %d", resp.StatusCode)
	}
	if got := owner.reg.Counter("pci_cluster_proxied_total").Value() +
		owner.reg.Counter("pci_cluster_misrouted_total").Value(); got != 0 {
		t.Fatalf("owner routing counters = %d, want 0", got)
	}
}

// TestClusterLeaveHandoffRedirect pins the ring-change path end to end: a
// coordinator Leave hands the departing node's users off to their new
// owners, a client holding the stale ring gets exactly one 421, adopts the
// owner, replays, and reads back the handed-off profile intact.
func TestClusterLeaveHandoffRedirect(t *testing.T) {
	nodes := startChaosCluster(t, 3)
	urls := []string{nodes[0].url, nodes[1].url, nodes[2].url}
	coord := cluster.NewCoordinator([]cluster.Node{
		{ID: nodes[0].id, URL: nodes[0].url},
		{ID: nodes[1].id, URL: nodes[1].url},
		{ID: nodes[2].id, URL: nodes[2].url},
	}, cluster.DefaultVNodes, nil, t.Logf)
	defer coord.Stop()

	imei, email := "leave-imei-1", "leave@example.com"
	uid := StableUserID(imei, email)
	creg := obs.NewRegistry()
	client := NewClient(urls[0], imei, email, &http.Client{Timeout: 5 * time.Second},
		WithCluster(urls),
		WithClientMetrics(creg),
		WithRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseDelay: 5 * time.Millisecond}))
	if err := client.Register(); err != nil {
		t.Fatal(err)
	}
	date := "2014-05-02"
	if err := client.SyncProfile(chaosProfile(uid, date)); err != nil {
		t.Fatal(err)
	}

	oldOwnerID := nodes[0].cn.Ring().PrimaryID(uid)
	oldOwner := clusterNodeByID(t, nodes, oldOwnerID)
	redirectsBefore := creg.Counter("client_cluster_redirects_total").Value()
	misroutedBefore := oldOwner.reg.Counter("pci_cluster_misrouted_total").Value()

	// Leave is synchronous through AdoptRing: when it returns, the
	// departing node has exported its users to their new owners.
	if err := coord.Leave(oldOwnerID); err != nil {
		t.Fatalf("leave: %v", err)
	}
	if got := oldOwner.reg.Counter("pci_cluster_handoff_users_total").Value(); got < 1 {
		t.Fatalf("leaver handoff counter = %d, want >= 1", got)
	}
	newOwnerID := coord.Ring().PrimaryID(uid)
	if newOwnerID == oldOwnerID {
		t.Fatalf("owner did not move off %s", oldOwnerID)
	}

	// The client still holds ring v1, so its next call lands on the old
	// owner: exactly one 421, owner adopted, whole call replayed.
	got, err := client.ProfileRange("2014-05-01", "2014-05-03")
	if err != nil {
		t.Fatalf("post-leave read: %v", err)
	}
	if len(got) != 1 || got[0].Date != date {
		t.Fatalf("post-leave read returned %d profiles, want the handed-off one", len(got))
	}
	want, _ := json.Marshal(chaosProfile(uid, date))
	gotJSON, _ := json.Marshal(got[0])
	if string(gotJSON) != string(want) {
		t.Fatalf("handed-off profile mutated:\ngot  %s\nwant %s", gotJSON, want)
	}
	if d := creg.Counter("client_cluster_redirects_total").Value() - redirectsBefore; d != 1 {
		t.Fatalf("client redirects delta = %d, want 1", d)
	}
	if d := oldOwner.reg.Counter("pci_cluster_misrouted_total").Value() - misroutedBefore; d != 1 {
		t.Fatalf("old owner misrouted delta = %d, want 1", d)
	}
	// The old owner no longer holds the user locally.
	if oldOwner.cn.Store().UserCount() != 0 {
		t.Fatalf("leaver still holds %d users after handoff", oldOwner.cn.Store().UserCount())
	}
}

// TestClusterFailoverMetricsPinned ties the client's failover counter to
// faultnet's ground truth: with a stable ring, every injected connection
// error and synthesized 5xx produces exactly one candidate failover — no
// more, no fewer — and zero redirects.
func TestClusterFailoverMetricsPinned(t *testing.T) {
	nodes := startChaosCluster(t, 3)
	urls := []string{nodes[0].url, nodes[1].url, nodes[2].url}

	const clients = 4
	var transports []*faultnet.Transport
	var cs []*Client
	var cregs []*obs.Registry
	for i := 0; i < clients; i++ {
		ft := faultnet.Wrap(nil, faultnet.Config{
			Seed:            int64(7000 + i),
			ConnErrorRate:   0.15,
			ServerErrorRate: 0.1,
			BurstLen:        2,
			Sleep:           func(time.Duration) {},
			// Ring refreshes are swallowed by the router (stale ring kept),
			// so faults there would break the one-fault-one-failover pin.
			Exempt: func(r *http.Request) bool {
				return strings.HasPrefix(r.URL.Path, cluster.PathRing)
			},
		})
		reg := obs.NewRegistry()
		c := NewClient(urls[i%len(urls)], fmt.Sprintf("pin-imei-%d", i), fmt.Sprintf("pin-%d@example.com", i),
			&http.Client{Transport: ft, Timeout: 5 * time.Second},
			WithCluster(urls),
			WithClientMetrics(reg),
			WithRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond}))
		transports = append(transports, ft)
		cs = append(cs, c)
		cregs = append(cregs, reg)
		mustEventually(t, "register", c.Register)
	}
	for r := 0; r < 8; r++ {
		date := fmt.Sprintf("2014-06-%02d", 10+r)
		for i, c := range cs {
			uid := StableUserID(fmt.Sprintf("pin-imei-%d", i), fmt.Sprintf("pin-%d@example.com", i))
			mustEventually(t, "write", func() error { return c.SyncProfile(chaosProfile(uid, date)) })
			mustEventually(t, "read", func() error {
				_, err := c.ProfileRange(date, date)
				return err
			})
		}
	}

	totalFaults, totalFailovers, totalRedirects := 0, uint64(0), uint64(0)
	for i := range cs {
		st := transports[i].Stats()
		faults := st.ConnErrors + st.ServerError
		failovers := cregs[i].Counter("client_cluster_failovers_total").Value()
		totalFaults += faults
		totalFailovers += failovers
		totalRedirects += cregs[i].Counter("client_cluster_redirects_total").Value()
		if uint64(faults) != failovers {
			t.Errorf("client %d: %d injected faults (%d conn, %d 5xx) but %d failovers",
				i, faults, st.ConnErrors, st.ServerError, failovers)
		}
	}
	if totalFaults == 0 {
		t.Fatal("faultnet injected nothing; pin is vacuous")
	}
	// Failing over past the owner's follower lands on a peer that answers
	// 421, so redirects do occur on a stable ring — but every one the
	// clients observed must match a 421 some node issued, one to one.
	var misrouted uint64
	for _, n := range nodes {
		misrouted += n.reg.Counter("pci_cluster_misrouted_total").Value()
	}
	if totalRedirects != misrouted {
		t.Fatalf("clients saw %d redirects but nodes issued %d 421s", totalRedirects, misrouted)
	}
	t.Logf("pinned %d injected faults to %d failovers and %d redirects to %d 421s across %d clients",
		totalFaults, totalFailovers, totalRedirects, misrouted, clients)

	// Replication accounting under the same load: once every shipper
	// drains, batch-shipped and batch-applied record counts agree across
	// the cluster (initial resyncs shipped zero records: empty stores).
	deadline := time.Now().Add(10 * time.Second)
	for {
		lag := uint64(0)
		for _, n := range nodes {
			lag += n.cn.Lag()
		}
		if lag == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shippers never drained (lag %d)", lag)
		}
		time.Sleep(10 * time.Millisecond)
	}
	var shipped, applied uint64
	for _, n := range nodes {
		shipped += n.reg.Counter("pci_repl_shipped_records_total").Value()
		applied += n.reg.Counter("pci_repl_applied_records_total").Value()
	}
	if shipped == 0 || shipped != applied {
		t.Fatalf("repl accounting: shipped %d != applied %d", shipped, applied)
	}
}
