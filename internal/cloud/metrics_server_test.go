package cloud

import (
	"bytes"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// newMetricsTestServer boots a memory-backed instance reporting into a fresh
// private registry and returns a registered user's bearer token.
func newMetricsTestServer(t *testing.T, opts ...ServerOption) (*httptest.Server, *obs.Registry, string) {
	t.Helper()
	reg := obs.NewRegistry()
	store := NewStore(nil)
	opts = append([]ServerOption{WithMetrics(reg)}, opts...)
	srv := httptest.NewServer(NewServer(store, opts...).Handler())
	t.Cleanup(srv.Close)
	rr, err := store.Register("imei-m", "m@example.com")
	if err != nil {
		t.Fatal(err)
	}
	return srv, reg, rr.Token
}

func doGet(t *testing.T, srv *httptest.Server, path, token string) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, srv.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestServerMetricsDeltas drives a known request mix through the instrumented
// mux and asserts the per-route and per-class counters match it exactly.
func TestServerMetricsDeltas(t *testing.T) {
	srv, reg, token := newMetricsTestServer(t)
	before := reg.Snapshot()

	const gets = 5
	for i := 0; i < gets; i++ {
		if code := doGet(t, srv, PathPlaces, token); code != http.StatusOK {
			t.Fatalf("GET places = %d", code)
		}
	}
	if code := doGet(t, srv, PathProfiles+"/2024-01-01", token); code != http.StatusNotFound {
		t.Fatalf("GET missing profile = %d, want 404", code)
	}
	if code := doGet(t, srv, PathPlaces, ""); code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated GET = %d, want 401", code)
	}

	s := reg.Snapshot()
	// Per-route request counts: the unauthenticated call still lands on the
	// places_get route (auth runs inside the instrumented handler).
	if got := s.CounterDelta(before, obs.Labeled("pci_http_requests_total", "route", "places_get")); got != gets+1 {
		t.Errorf("places_get requests = %d, want %d", got, gets+1)
	}
	if got := s.CounterDelta(before, obs.Labeled("pci_http_requests_total", "route", "profile_get")); got != 1 {
		t.Errorf("profile_get requests = %d, want 1", got)
	}
	// Status classes: 5 OK, one 404 + one 401 = two 4xx.
	if got := s.CounterDelta(before, obs.Labeled("pci_http_responses_total", "class", "2xx")); got != gets {
		t.Errorf("2xx responses = %d, want %d", got, gets)
	}
	if got := s.CounterDelta(before, obs.Labeled("pci_http_responses_total", "class", "4xx")); got != 2 {
		t.Errorf("4xx responses = %d, want 2", got)
	}
	// The latency histogram records one observation per request on its route.
	h := s.Histograms[obs.Labeled("pci_http_request_duration_us", "route", "places_get")]
	if h.Count != gets+1 {
		t.Errorf("places_get duration observations = %d, want %d", h.Count, gets+1)
	}
	if got := s.Gauges["pci_http_in_flight"]; got != 0 {
		t.Errorf("in-flight gauge = %d after requests drained, want 0", got)
	}
}

// TestSlowRequestLog pins the slow-request path: with a 1ns threshold every
// request is slow — the counter must equal the request count and the log must
// carry the structured line.
func TestSlowRequestLog(t *testing.T) {
	var buf bytes.Buffer
	logger := log.New(&buf, "", 0)
	srv, reg, token := newMetricsTestServer(t, WithSlowRequestLog(time.Nanosecond, logger))

	const n = 3
	for i := 0; i < n; i++ {
		if code := doGet(t, srv, PathPlaces, token); code != http.StatusOK {
			t.Fatalf("GET places = %d", code)
		}
	}
	if got := reg.Snapshot().Counter("pci_http_slow_requests_total"); got != n {
		t.Errorf("slow requests = %d, want %d", got, n)
	}
	if lines := strings.Count(buf.String(), "slow-request route=places_get"); lines != n {
		t.Errorf("slow-request log lines = %d, want %d\n%s", lines, n, buf.String())
	}
	if !strings.Contains(buf.String(), "status=200") {
		t.Errorf("slow-request line missing status field:\n%s", buf.String())
	}
}

// TestAnalyticsIndexMetrics pins the index hit/fallback counters: queries for
// a user with a materialized index count as hits, queries for an unknown user
// as fallbacks, one each per viewIndex entry.
func TestAnalyticsIndexMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	store, err := newStore("", StoreConfig{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := store.Register("imei-x", "x@example.com")
	if err != nil {
		t.Fatal(err)
	}
	uid := rr.UserID
	if err := store.PutProfile(uid, mkProfile(uid, "2024-03-04")); err != nil {
		t.Fatal(err)
	}

	a := NewAnalytics(store)
	before := reg.Snapshot()
	const hits = 4
	for i := 0; i < hits; i++ {
		if _, n := a.TypicalArrival(uid, "p0"); n != 1 {
			t.Fatalf("TypicalArrival n = %d, want 1", n)
		}
	}
	const misses = 2
	for i := 0; i < misses; i++ {
		if _, n := a.TypicalArrival(fmt.Sprintf("nobody-%d", i), "p0"); n != 0 {
			t.Fatal("query for unknown user returned samples")
		}
	}
	s := reg.Snapshot()
	if got := s.CounterDelta(before, "analytics_index_hits_total"); got != hits {
		t.Errorf("index hits = %d, want %d", got, hits)
	}
	if got := s.CounterDelta(before, "analytics_index_fallbacks_total"); got != misses {
		t.Errorf("index fallbacks = %d, want %d", got, misses)
	}
}

// TestPopularIndexMetrics: an unchanged store serves repeat popular-places
// queries from the memo — exactly one recompute, the rest memo hits.
func TestPopularIndexMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	store, err := newStore("", StoreConfig{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	px := NewPopularIndex(store, nil)
	const queries = 5
	for i := 0; i < queries; i++ {
		px.Places(3, 300)
	}
	s := reg.Snapshot()
	if got := s.Counter("popular_recomputes_total"); got != 1 {
		t.Errorf("recomputes = %d, want 1 (store unchanged)", got)
	}
	if got := s.Counter("popular_memo_hits_total"); got != queries-1 {
		t.Errorf("memo hits = %d, want %d", got, queries-1)
	}
}
