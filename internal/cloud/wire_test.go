package cloud

// Tests for the binary wire codec (DESIGN.md §14): content negotiation edge
// cases, the randomized JSON ≡ binary equivalence property, robustness
// against truncated or foreign bodies, the sticky JSON downgrade against
// peers that predate the codec, and end-to-end equivalence of the binary and
// JSON clients over the three converted route families.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"testing"
	"time"

	"repro/internal/gsm"
	"repro/internal/profile"
	"repro/internal/trace"
	"repro/internal/world"
)

// --- negotiation ----------------------------------------------------------

func TestAcceptsBinary(t *testing.T) {
	cases := []struct {
		accept []string
		want   bool
	}{
		{nil, false},          // no header: the compatible default
		{[]string{""}, false}, // empty header
		{[]string{ContentTypeBinary}, true},
		{[]string{"application/json"}, false},
		{[]string{"*/*"}, false}, // wildcard alone never opts into binary
		{[]string{"text/html"}, false},
		{[]string{ContentTypeBinary + ", application/json;q=0.5"}, true},
		{[]string{ContentTypeBinary + ";q=0.4, application/json;q=0.5"}, false},
		{[]string{ContentTypeBinary + ";q=0.5, application/json;q=0.5"}, true}, // tie: the explicit offer wins
		{[]string{ContentTypeBinary + ";q=0"}, false},                          // q=0 is a refusal
		{[]string{ContentTypeBinary + ";q=0.8, */*;q=0.9"}, false},
		{[]string{ContentTypeBinary + ";q=0.8, application/*;q=0.3"}, true},
		{[]string{"application/json", ContentTypeBinary}, true}, // two header lines
		{[]string{";;;garbage"}, false},
		{[]string{";;;garbage, " + ContentTypeBinary}, true}, // unparseable parts are skipped
	}
	for _, tc := range cases {
		r, _ := http.NewRequest(http.MethodGet, "/", nil)
		for _, v := range tc.accept {
			r.Header.Add("Accept", v)
		}
		if got := acceptsBinary(r); got != tc.want {
			t.Errorf("acceptsBinary(%q) = %v, want %v", tc.accept, got, tc.want)
		}
	}
}

func TestRequestCodec(t *testing.T) {
	cases := []struct {
		ct   string
		want reqCodec
	}{
		{"", codecJSON}, // absent header is the historical JSON default
		{"application/json", codecJSON},
		{"application/json; charset=utf-8", codecJSON},
		{ContentTypeBinary, codecBinary},
		{ContentTypeBinary + "; v=1", codecBinary},
		{"application/msgpack", codecUnknown},
		{"text/plain", codecUnknown},
		{";;;not a media type", codecUnknown},
	}
	for _, tc := range cases {
		r, _ := http.NewRequest(http.MethodPost, "/", nil)
		if tc.ct != "" {
			r.Header.Set("Content-Type", tc.ct)
		}
		if got := requestCodec(r); got != tc.want {
			t.Errorf("requestCodec(%q) = %v, want %v", tc.ct, got, tc.want)
		}
	}
}

// --- JSON ≡ binary equivalence property -----------------------------------

func jsonRender(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// roundTripEq encodes msg with the binary codec, decodes into a fresh value,
// and requires the JSON renderings to match byte-for-byte — the same
// observable the JSON wire exposes, including nil-vs-empty and omitempty
// semantics.
func roundTripEq(t *testing.T, msg, into any) {
	t.Helper()
	buf, ok := appendWire(nil, msg)
	if !ok {
		t.Fatalf("no binary codec for %T", msg)
	}
	if err := decodeWire(buf, into); err != nil {
		t.Fatalf("decodeWire(%T): %v", msg, err)
	}
	if got, want := jsonRender(t, into), jsonRender(t, msg); got != want {
		t.Errorf("binary round trip of %T changed the message:\n got %s\nwant %s", msg, got, want)
	}
}

func randWireTime(r *rand.Rand) time.Time {
	// The decoder returns UTC instants; generate UTC so JSON renderings of
	// original and round-tripped values use the same zone designator.
	return time.Unix(int64(r.Intn(1<<30)), int64(r.Intn(1e9))).UTC()
}

func randCells(r *rand.Rand) []world.CellID {
	n := r.Intn(5)
	if n == 0 {
		return nil // empty encodes as absent, decodes as nil — JSON "null" parity
	}
	out := make([]world.CellID, n)
	for i := range out {
		out[i] = world.CellID{
			MCC: r.Intn(1000), MNC: r.Intn(1000),
			LAC: r.Intn(1 << 16), CID: r.Intn(1 << 28),
		}
	}
	return out
}

func randString(r *rand.Rand) string {
	const alpha = "abcdefghijklmnop-0123456789"
	b := make([]byte, r.Intn(12))
	for i := range b {
		b[i] = alpha[r.Intn(len(alpha))]
	}
	return string(b)
}

func randDiscoverResponse(r *rand.Rand) *DiscoverPlacesResponse {
	m := &DiscoverPlacesResponse{TraceLen: int64(r.Intn(1 << 20)), TraceHash: r.Uint64()}
	for i, n := 0, r.Intn(4); i < n; i++ {
		p := PlaceWire{
			ID:        r.Intn(100),
			Signature: randCells(r),
			Cells:     randCells(r),
			Label:     randString(r),
		}
		for j, nv := 0, r.Intn(4); j < nv; j++ {
			p.Visits = append(p.Visits, VisitWire{Arrive: randWireTime(r), Depart: randWireTime(r)})
		}
		m.Places = append(m.Places, p)
	}
	return m
}

func randProfile(r *rand.Rand) *profile.DayProfile {
	p := &profile.DayProfile{UserID: randString(r), Date: "2026-01-0" + string(rune('1'+r.Intn(9)))}
	for i, n := 0, r.Intn(4); i < n; i++ {
		p.Places = append(p.Places, profile.PlaceVisit{
			PlaceID: randString(r), Label: randString(r),
			Arrive: randWireTime(r), Depart: randWireTime(r),
		})
	}
	for i, n := 0, r.Intn(3); i < n; i++ {
		p.Routes = append(p.Routes, profile.RouteUse{
			RouteID: randString(r), Start: randWireTime(r), End: randWireTime(r),
		})
	}
	for i, n := 0, r.Intn(3); i < n; i++ {
		p.Contacts = append(p.Contacts, profile.Encounter{
			ContactID: randString(r), PlaceID: randString(r),
			Start: randWireTime(r), End: randWireTime(r),
		})
	}
	if r.Intn(2) == 0 {
		p.Activity = &profile.ActivitySummary{MovingMinutes: r.Intn(1440), StillMinutes: r.Intn(1440)}
	}
	return p
}

// TestWireRoundTripProperty is the codec's pinning property: for every
// message kind, a binary round trip is invisible at the JSON level.
func TestWireRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		roundTripEq(t, randDiscoverResponse(r), &DiscoverPlacesResponse{})
		roundTripEq(t, &StreamResult{
			TraceLen: int64(r.Intn(1 << 20)), TraceHash: r.Uint64(),
			Appended: r.Intn(1 << 16), Events: r.Intn(1 << 10),
		}, &StreamResult{})
		roundTripEq(t, randProfile(r), &profile.DayProfile{})

		rng := []*profile.DayProfile{}
		for j, n := 0, r.Intn(4); j < n; j++ {
			rng = append(rng, randProfile(r))
		}
		if len(rng) == 0 {
			rng = nil // ProfileRange renders "null" for an empty range
		}
		var gotRange []*profile.DayProfile
		roundTripEq(t, rng, &gotRange)

		roundTripEq(t, &PredictArrivalResponse{
			PlaceID: randString(r), TypicalArrivalSec: r.Intn(86400), SampleCount: r.Intn(1000),
		}, &PredictArrivalResponse{})
		next := PredictNextVisitResponse{PlaceID: randString(r), Confident: r.Intn(2) == 0}
		if r.Intn(2) == 0 {
			next.NextVisit = randWireTime(r) // otherwise the zero time — presence bit path
		}
		roundTripEq(t, &next, &PredictNextVisitResponse{})
		roundTripEq(t, &FrequencyResponse{
			PlaceID: randString(r), VisitsPerWeek: r.Float64() * 20, TotalVisits: r.Intn(1000),
		}, &FrequencyResponse{})
		roundTripEq(t, &DwellStatsResponse{
			PlaceID: randString(r), Visits: r.Intn(500), MeanStaySec: r.Intn(86400),
			MedianStaySec: r.Intn(86400), LongestStaySec: r.Intn(7 * 86400),
		}, &DwellStatsResponse{})
	}
}

// TestWireObservationsCompact pins the codec's reason to exist: a day of
// observations costs a small fraction of its JSON rendering.
func TestWireObservationsCompact(t *testing.T) {
	obs := synthDays(1)
	var e trace.BinaryEncoder
	trace.AppendObservations(&e, obs)
	jsonBytes, err := json.Marshal(obs)
	if err != nil {
		t.Fatal(err)
	}
	// The fixed 8-byte signal field keeps raw observations around 4–5x; the
	// response-side codecs (places, profiles, analytics) compress far more —
	// the wire benchmarks pin those ratios.
	if len(e.Buf)*4 > len(jsonBytes) {
		t.Errorf("binary observations = %d bytes, want ≤ 1/4 of JSON's %d", len(e.Buf), len(jsonBytes))
	}
}

// --- malformed and foreign bodies -----------------------------------------

func rawBinPost(t *testing.T, h *deltaHarness, tok, path, ct string, body []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, h.ts.URL+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", ct)
	req.Header.Set("Authorization", "Bearer "+tok)
	resp, err := h.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestUnknownContentType415: a body in a codec the server does not speak is
// refused with 415 on every negotiating route, with the uniform JSON error
// body.
func TestUnknownContentType415(t *testing.T) {
	h := newDeltaHarness(t, nil, nil)
	c := h.newClient(t, "imei-415")
	tok, _ := c.snapshotToken()
	for _, path := range []string{PathPlacesDiscover, PathObservationsStream} {
		resp := rawBinPost(t, h, tok, path, "application/msgpack", []byte("xx"))
		if resp.StatusCode != http.StatusUnsupportedMediaType {
			t.Errorf("%s with foreign content type: status %d, want 415", path, resp.StatusCode)
		}
		var er ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil || er.Error == "" {
			t.Errorf("%s 415 body not a JSON ErrorResponse: %v %+v", path, err, er)
		}
	}
}

// TestTruncatedBinary400: every way a binary body can be cut short or
// corrupted yields a clean 400 (or 413 under the size cap) — never a panic,
// never a misparse.
func TestTruncatedBinary400(t *testing.T) {
	h := newDeltaHarness(t, nil, nil)
	c := h.newClient(t, "imei-trunc")
	tok, _ := c.snapshotToken()

	var e trace.BinaryEncoder
	trace.AppendObservations(&e, synthDays(1)[:8])
	frame := appendWireFrame(nil, e.Buf)

	header := []byte{wireVersion, wireKindDiscoverRequest, 0 /* flags */, 0 /* cursor */}
	header = append(header, make([]byte, 8)...) // prefix hash
	good := append(append(append([]byte{}, header...), frame...), wireFrameEnd...)

	badCRC := append([]byte{}, good...)
	badCRC[len(header)+3] ^= 0xff // flip a CRC byte

	cases := []struct {
		name, path string
		body       []byte
	}{
		{"discover empty body", PathPlacesDiscover, nil},
		{"discover header only", PathPlacesDiscover, header},
		{"discover missing end marker", PathPlacesDiscover, append(append([]byte{}, header...), frame...)},
		{"discover frame cut mid-payload", PathPlacesDiscover, good[:len(header)+len(frame)/2]},
		{"discover CRC flip", PathPlacesDiscover, badCRC},
		{"discover wrong version", PathPlacesDiscover, append([]byte{99}, good[1:]...)},
		{"discover wrong kind", PathPlacesDiscover, append([]byte{wireVersion, wireKindDwell}, good[2:]...)},
		{"stream bare header truncated", PathObservationsStream, []byte{wireVersion}},
		{"stream frame cut mid-payload", PathObservationsStream,
			append([]byte{wireVersion, wireKindObsStream}, frame[:len(frame)/2]...)},
		{"stream CRC flip", PathObservationsStream,
			append([]byte{wireVersion, wireKindObsStream}, badCRC[len(header):len(header)+len(frame)]...)},
		{"profile put garbage", PathProfiles + "/2026-01-02", []byte{wireVersion, wireKindProfile, 0xff, 0xff}},
	}
	for _, tc := range cases {
		path, method := tc.path, http.MethodPost
		if tc.path != PathPlacesDiscover && tc.path != PathObservationsStream {
			method = http.MethodPut
		}
		req, err := http.NewRequest(method, h.ts.URL+path, bytes.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", ContentTypeBinary)
		req.Header.Set("Authorization", "Bearer "+tok)
		resp, err := h.ts.Client().Do(req)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		var er ErrorResponse
		derr := json.NewDecoder(resp.Body).Decode(&er)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
		if derr != nil || er.Error == "" {
			t.Errorf("%s: error body not JSON ErrorResponse: %v %+v", tc.name, derr, er)
		}
	}

	// A clean stream that ends at a frame boundary without the marker is the
	// JSON-parity case: EOF there is a deliberate close, not truncation.
	body := append([]byte{wireVersion, wireKindObsStream}, frame...)
	resp := rawBinPost(t, h, tok, PathObservationsStream, ContentTypeBinary, body)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("stream ending at frame boundary: status %d, want 200", resp.StatusCode)
	}
}

// TestBinaryUpload413: the streamed binary discover path preserves the typed
// 413 contract of the JSON path.
func TestBinaryUpload413(t *testing.T) {
	h := newDeltaHarness(t, nil, nil, WithMaxBodyBytes(4<<10))
	c := h.newClient(t, "imei-bin-413", WithWireCodec(WireBinary))
	_, err := c.DiscoverPlaces(synthDays(20))
	if !errors.Is(err, ErrRequestTooLarge) {
		t.Fatalf("binary oversized upload: err = %v, want ErrRequestTooLarge", err)
	}
	if n := c.m.wireFallbacks.Value(); n != 0 {
		t.Errorf("413 latched the JSON downgrade (fallbacks = %d); only 415 may", n)
	}
}

// --- downgrade against a JSON-only peer -----------------------------------

// jsonOnlyPeer emulates a server that predates the codec: binary request
// bodies are refused with 415, and the Accept header is ignored (dropped),
// so every response comes back JSON.
func jsonOnlyPeer(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("Content-Type") == ContentTypeBinary {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusUnsupportedMediaType)
			fmt.Fprint(w, `{"error":"unsupported media type"}`)
			return
		}
		r.Header.Del("Accept")
		next.ServeHTTP(w, r)
	})
}

// TestBinaryClientAgainstJSONOnlyPeer: a binary-preferring client meeting an
// old peer downgrades to JSON after one 415 — transparently, stickily, and
// counted once — and every call still succeeds.
func TestBinaryClientAgainstJSONOnlyPeer(t *testing.T) {
	h := newDeltaHarness(t, nil, jsonOnlyPeer)
	c := h.newClient(t, "imei-old-peer", WithWireCodec(WireBinary))

	obs := synthDays(2)
	got, err := c.DiscoverPlaces(obs)
	if err != nil {
		t.Fatalf("discover against JSON-only peer: %v", err)
	}
	want := gsm.Discover(obs, gsm.DefaultParams()).Places
	if g, w := canonicalWire(t, got), canonicalWire(t, want); g != w {
		t.Errorf("places after downgrade diverge from batch GCA:\n got %s\nwant %s", g, w)
	}
	if n := c.m.wireFallbacks.Value(); n != 1 {
		t.Errorf("wire fallbacks = %d, want exactly 1 (the downgrade is sticky)", n)
	}

	// Subsequent calls — including the streaming path — go straight to JSON
	// with no further 415 round-trips.
	res, err := c.StreamObservations(t.Context(), synthDays(3), 0)
	if err != nil {
		t.Fatalf("stream after downgrade: %v", err)
	}
	if res.Appended != obsPerSynthDay {
		t.Errorf("stream appended %d, want %d", res.Appended, obsPerSynthDay)
	}
	if n := c.m.wireFallbacks.Value(); n != 1 {
		t.Errorf("wire fallbacks after more calls = %d, want still 1", n)
	}

	// A stream-first client downgrades through the streaming path too.
	c2 := h.newClient(t, "imei-old-peer-2", WithWireCodec(WireBinary))
	if _, err := c2.StreamObservations(t.Context(), synthDays(1), 0); err != nil {
		t.Fatalf("stream-first against JSON-only peer: %v", err)
	}
	if n := c2.m.wireFallbacks.Value(); n != 1 {
		t.Errorf("stream-first wire fallbacks = %d, want 1", n)
	}
}

// --- end-to-end equivalence ------------------------------------------------

// synthProfiles builds a deterministic profile history with enough structure
// for every analytics query: a home place with an overnight midnight split,
// a labelled work place visited on weekdays, and routes/contacts/activity.
func synthProfiles(days int) []*profile.DayProfile {
	base := time.Date(2026, 3, 2, 0, 0, 0, 0, time.UTC) // a Monday
	var out []*profile.DayProfile
	for d := 0; d < days; d++ {
		day := base.AddDate(0, 0, d)
		date := day.Format(profile.DateFormat)
		p := &profile.DayProfile{Date: date}
		// Home from midnight (continuation of yesterday) to ~08:10.
		p.Places = append(p.Places, profile.PlaceVisit{
			PlaceID: "home", Label: "home",
			Arrive: day, Depart: day.Add(8*time.Hour + time.Duration(d)*10*time.Minute),
		})
		if day.Weekday() != time.Saturday && day.Weekday() != time.Sunday {
			p.Places = append(p.Places, profile.PlaceVisit{
				PlaceID: "work", Label: "work",
				Arrive: day.Add(9*time.Hour + time.Duration(d)*7*time.Minute),
				Depart: day.Add(17 * time.Hour),
			})
			p.Routes = append(p.Routes, profile.RouteUse{
				RouteID: "commute",
				Start:   day.Add(8*time.Hour + 30*time.Minute),
				End:     day.Add(9 * time.Hour),
			})
			p.Contacts = append(p.Contacts, profile.Encounter{
				ContactID: "colleague", PlaceID: "work",
				Start: day.Add(10 * time.Hour), End: day.Add(11 * time.Hour),
			})
		}
		// Home overnight: depart exactly at next midnight so the next day's
		// 00:00 arrival is a midnight continuation.
		p.Places = append(p.Places, profile.PlaceVisit{
			PlaceID: "home", Label: "home",
			Arrive: day.Add(19 * time.Hour), Depart: day.AddDate(0, 0, 1),
		})
		p.Activity = &profile.ActivitySummary{MovingMinutes: 60 + d, StillMinutes: 1300 - d}
		out = append(out, p)
	}
	return out
}

// stripUserIDs clears the server-assigned user id so profile histories of
// two different test users compare structurally.
func stripUserIDs(ps []*profile.DayProfile) {
	for _, p := range ps {
		p.UserID = ""
	}
}

// TestBinaryE2EMatchesJSON runs the identical workload through a JSON client
// and a binary client — delta trace sync, streaming ingest, profile
// upload/range, and every analytics query — and requires identical results,
// while the binary client moves a fraction of the bytes.
func TestBinaryE2EMatchesJSON(t *testing.T) {
	h := newDeltaHarness(t, nil, nil)
	cj := h.newClient(t, "imei-e2e-json")
	cb := h.newClient(t, "imei-e2e-bin", WithWireCodec(WireBinary))
	clients := []*Client{cj, cb}

	// Delta trace sync: full upload, then a one-day extension.
	full := synthDays(4)
	for _, c := range clients {
		if _, err := c.DiscoverPlaces(full[:3*obsPerSynthDay]); err != nil {
			t.Fatal(err)
		}
	}
	var places [2]string
	for i, c := range clients {
		got, err := c.DiscoverPlaces(full)
		if err != nil {
			t.Fatal(err)
		}
		places[i] = canonicalWire(t, got)
	}
	if places[0] != places[1] {
		t.Errorf("binary delta sync diverges from JSON:\n got %s\nwant %s", places[1], places[0])
	}
	if n := cb.m.deltaUploads.Value(); n != 1 {
		t.Errorf("binary client delta uploads = %d, want 1 (cursor protocol intact)", n)
	}

	// Conflict path: diverge the server behind each client's back; the full
	// re-upload (chunked frames on the binary side) must heal both.
	for i, c := range clients {
		if _, _, err := h.store.SyncTrace(c.UserID(), false, 0, 0, synthDays(1)); err != nil {
			t.Fatal(err)
		}
		got, err := c.DiscoverPlaces(full)
		if err != nil {
			t.Fatalf("client %d post-conflict discover: %v", i, err)
		}
		places[i] = canonicalWire(t, got)
	}
	if places[0] != places[1] {
		t.Errorf("post-conflict full upload diverges:\n got %s\nwant %s", places[1], places[0])
	}
	if n := cb.m.deltaFallbacks.Value(); n != 1 {
		t.Errorf("binary client delta fallbacks = %d, want 1", n)
	}

	// Streaming ingest of a fresh tail.
	var streams [2]StreamResult
	for i, c := range clients {
		res, err := c.StreamObservations(t.Context(), synthDays(5), 0)
		if err != nil {
			t.Fatal(err)
		}
		streams[i] = res
	}
	if streams[0] != streams[1] {
		t.Errorf("stream results diverge: json %+v, binary %+v", streams[0], streams[1])
	}

	// Profile upload and readback: single day, full range, empty range.
	days := synthProfiles(10)
	for _, c := range clients {
		for _, p := range days {
			if err := c.SyncProfile(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	var rendered [2]string
	for i, c := range clients {
		one, err := c.Profile(days[3].Date)
		if err != nil {
			t.Fatal(err)
		}
		all, err := c.ProfileRange("", "")
		if err != nil {
			t.Fatal(err)
		}
		if len(all) != len(days) {
			t.Fatalf("client %d range returned %d profiles, want %d", i, len(all), len(days))
		}
		empty, err := c.ProfileRange("2030-01-01", "2030-01-02")
		if err != nil {
			t.Fatal(err)
		}
		if empty != nil {
			t.Errorf("client %d empty range = %v, want nil", i, empty)
		}
		stripUserIDs(all)
		one.UserID = ""
		rendered[i] = jsonRender(t, one) + "\n" + jsonRender(t, all)
	}
	if rendered[0] != rendered[1] {
		t.Errorf("profile readback diverges:\n got %s\nwant %s", rendered[1], rendered[0])
	}

	// Every analytics query family, JSON vs binary.
	after := time.Date(2026, 3, 12, 12, 0, 0, 0, time.UTC)
	for i, c := range clients {
		var parts []string
		ar, err := c.PredictArrival("work")
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, jsonRender(t, ar))
		nv, err := c.PredictNextVisit("work", after)
		if err != nil {
			t.Fatal(err)
		}
		if !nv.Confident {
			t.Errorf("client %d next-visit not confident over 10 days of history", i)
		}
		parts = append(parts, jsonRender(t, nv))
		fr, err := c.VisitFrequency("work")
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, jsonRender(t, fr))
		dw, err := c.DwellStats("home")
		if err != nil {
			t.Fatal(err)
		}
		if dw.Visits == 0 {
			t.Errorf("client %d dwell stats empty", i)
		}
		parts = append(parts, jsonRender(t, dw))
		fl, err := c.FrequencyByLabel("work")
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, jsonRender(t, fl))
		rendered[i] = fmt.Sprint(parts)
	}
	if rendered[0] != rendered[1] {
		t.Errorf("analytics responses diverge:\n json   %s\n binary %s", rendered[0], rendered[1])
	}

	// The whole point: the binary client moved far fewer bytes for the same
	// workload, no downgrade fired, and the server served binary.
	if n := cb.m.wireFallbacks.Value(); n != 0 {
		t.Errorf("binary client fell back to JSON %d times against a binary-capable server", n)
	}
	jsonBytes := cj.m.wireSentBytes.Value() + cj.m.wireRecvBytes.Value()
	binBytes := cb.m.wireSentBytes.Value() + cb.m.wireRecvBytes.Value()
	if binBytes == 0 || jsonBytes == 0 {
		t.Fatalf("byte counters not wired: json %d, binary %d", jsonBytes, binBytes)
	}
	if binBytes*2 > jsonBytes {
		t.Errorf("binary client moved %d bytes vs JSON's %d, want well under half", binBytes, jsonBytes)
	}
	if n := h.server.metrics.wireBin.Value(); n == 0 {
		t.Error("server pci_wire_encoding_total{codec=bin} never incremented")
	}
	if n := h.server.metrics.wireJSON.Value(); n == 0 {
		t.Error("server pci_wire_encoding_total{codec=json} never incremented")
	}
}

// TestNegotiatedResponseContentType pins the response side of negotiation
// over real HTTP: the same resource answers binary or JSON by Accept alone.
func TestNegotiatedResponseContentType(t *testing.T) {
	h := newDeltaHarness(t, nil, nil)
	c := h.newClient(t, "imei-neg")
	for _, p := range synthProfiles(3) {
		if err := c.SyncProfile(p); err != nil {
			t.Fatal(err)
		}
	}
	tok, _ := c.snapshotToken()

	get := func(accept string) (*http.Response, []byte) {
		req, err := http.NewRequest(http.MethodGet, h.ts.URL+PathPredictArrival+"?place=work", nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		req.Header.Set("Authorization", "Bearer "+tok)
		resp, err := h.ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("Accept %q: status %d, body %s", accept, resp.StatusCode, body)
		}
		return resp, body
	}

	respJSON, bodyJSON := get("")
	if ct := respJSON.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("no-Accept response content type = %q, want application/json", ct)
	}
	var viaJSON PredictArrivalResponse
	if err := json.Unmarshal(bodyJSON, &viaJSON); err != nil {
		t.Fatal(err)
	}

	respBin, bodyBin := get(ContentTypeBinary + ", application/json;q=0.5")
	if ct := respBin.Header.Get("Content-Type"); ct != ContentTypeBinary {
		t.Fatalf("binary-Accept response content type = %q, want %s", ct, ContentTypeBinary)
	}
	var viaBin PredictArrivalResponse
	if err := decodeWire(bodyBin, &viaBin); err != nil {
		t.Fatal(err)
	}
	if viaBin != viaJSON {
		t.Errorf("negotiated representations diverge: json %+v, binary %+v", viaJSON, viaBin)
	}
	if len(bodyBin) >= len(bodyJSON) {
		t.Errorf("binary body %d bytes not smaller than JSON's %d", len(bodyBin), len(bodyJSON))
	}

	// A low q-value keeps the peer on JSON.
	respLow, _ := get(ContentTypeBinary + ";q=0.1, application/json")
	if ct := respLow.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("low-q binary Accept got content type %q, want application/json", ct)
	}
}
