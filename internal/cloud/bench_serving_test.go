package cloud

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/profile"
	"repro/internal/simclock"
	"repro/internal/world"
)

// The benchmarks behind BENCH_serving.json (ISSUE 3 acceptance): each pair
// measures one analytics hot path as the pre-index baseline (the scan*
// reference: deep-copy the history, rescan it) against the serving path (the
// incremental index read under the shard lock). Same store, same 365-day
// user, same answers — the property test holds them byte-identical. Run with:
//
//	go test ./internal/cloud -run '^$' -bench Serving -benchmem

// servingStore seeds one user with a year of daily routine: home overnight
// (split at midnight), work on weekdays, mall on Saturdays.
func servingStore(b *testing.B) *Store {
	b.Helper()
	s := NewStore(fixedNow(simclock.Epoch))
	u := "u-serving"
	for d := 0; d < 365; d++ {
		day := simclock.Epoch.AddDate(0, 0, d)
		p := &profile.DayProfile{UserID: u, Date: day.Format(profile.DateFormat)}
		switch day.Weekday() {
		case time.Saturday:
			p.Places = append(p.Places,
				profile.PlaceVisit{PlaceID: "home", Label: "home", Arrive: day, Depart: day.Add(13 * time.Hour)},
				profile.PlaceVisit{PlaceID: "mall", Label: "mall", Arrive: day.Add(14 * time.Hour), Depart: day.Add(17 * time.Hour)},
				profile.PlaceVisit{PlaceID: "home", Label: "home", Arrive: day.Add(18 * time.Hour), Depart: day.Add(24 * time.Hour)},
			)
		case time.Sunday:
			p.Places = append(p.Places,
				profile.PlaceVisit{PlaceID: "home", Label: "home", Arrive: day, Depart: day.Add(24 * time.Hour)},
			)
		default:
			arrive := day.Add(9*time.Hour + time.Duration(d%20)*time.Minute)
			p.Places = append(p.Places,
				profile.PlaceVisit{PlaceID: "home", Label: "home", Arrive: day, Depart: arrive.Add(-30 * time.Minute)},
				profile.PlaceVisit{PlaceID: "work", Label: "work", Arrive: arrive, Depart: day.Add(18 * time.Hour)},
				profile.PlaceVisit{PlaceID: "home", Label: "home", Arrive: day.Add(19 * time.Hour), Depart: day.Add(24 * time.Hour)},
			)
		}
		if err := s.PutProfile(u, p); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

func BenchmarkServingTypicalArrivalScan(b *testing.B) {
	a := NewAnalytics(servingStore(b))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, n := a.scanTypicalArrival("u-serving", "work"); n == 0 {
			b.Fatal("no arrivals")
		}
	}
}

func BenchmarkServingTypicalArrivalIndexed(b *testing.B) {
	a := NewAnalytics(servingStore(b))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, n := a.TypicalArrival("u-serving", "work"); n == 0 {
			b.Fatal("no arrivals")
		}
	}
}

func BenchmarkServingDwellStatsScan(b *testing.B) {
	a := NewAnalytics(servingStore(b))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := a.scanDwellStats("u-serving", "home"); r.Visits == 0 {
			b.Fatal("no stays")
		}
	}
}

func BenchmarkServingDwellStatsIndexed(b *testing.B) {
	a := NewAnalytics(servingStore(b))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := a.DwellStats("u-serving", "home"); r.Visits == 0 {
			b.Fatal("no stays")
		}
	}
}

// popularStore populates 200 users with geolocated places for the cross-user
// aggregate.
func popularStore(b *testing.B) (*Store, *CellDatabase) {
	b.Helper()
	w := world.Generate(world.DefaultConfig(), rand.New(rand.NewSource(91)))
	cells := NewCellDatabase(w, 100)
	s := NewStore(fixedNow(simclock.Epoch))
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		ps := make([]PlaceWire, 3)
		for j := range ps {
			ps[j] = placeAtTower(w, rng.Intn(len(w.Towers)), "spot")
			ps[j].ID = j
		}
		if err := s.SetPlaces(fmt.Sprintf("u%03d", i), ps); err != nil {
			b.Fatal(err)
		}
	}
	return s, cells
}

func BenchmarkServingPopularPlacesScan(b *testing.B) {
	s, cells := popularStore(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := PopularPlaces(s, cells, 3, 400); len(out) == 0 {
			b.Fatal("no clusters")
		}
	}
}

func BenchmarkServingPopularPlacesIndexed(b *testing.B) {
	s, cells := popularStore(b)
	px := NewPopularIndex(s, cells)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := px.Places(3, 400); len(out) == 0 {
			b.Fatal("no clusters")
		}
	}
}

// BenchmarkServingProfileRangeWindow reads a one-week window out of the
// 365-day history — the binary-searched date index should make this cost the
// window, not the year.
func BenchmarkServingProfileRangeWindow(b *testing.B) {
	s := servingStore(b)
	from := simclock.Epoch.AddDate(0, 0, 100).Format(profile.DateFormat)
	to := simclock.Epoch.AddDate(0, 0, 106).Format(profile.DateFormat)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.ProfileRange("u-serving", from, to); len(got) != 7 {
			b.Fatalf("window = %d days", len(got))
		}
	}
}
