// Package cloud implements the PMWare Cloud Instance (PCI, paper Section
// 2.3): a REST service that registers devices, offloads heavy place/route
// discovery, stores long-term mobility profiles and social contacts,
// resolves Cell-IDs to coordinates, and answers analytics and prediction
// queries. It also provides the HTTP client the mobile service uses to talk
// to it.
package cloud

import (
	"math"
	"time"

	"repro/internal/gsm"
	"repro/internal/profile"
	"repro/internal/route"
	"repro/internal/trace"
	"repro/internal/world"
)

// API paths, versioned as in the paper's REST design.
const (
	PathRegister        = "/api/v1/register"
	PathRefresh         = "/api/v1/token/refresh"
	PathPlacesDiscover  = "/api/v1/places/discover"
	PathPlaces          = "/api/v1/places"
	PathPlacesLabel     = "/api/v1/places/label"
	PathRoutesDiscover  = "/api/v1/routes/discover"
	PathRoutes          = "/api/v1/routes"
	PathRouteSimilarity = "/api/v1/routes/similarity"
	PathProfiles        = "/api/v1/profiles"
	PathContacts        = "/api/v1/contacts"
	PathGeoCell         = "/api/v1/geo/cell"
	PathPredictArrival  = "/api/v1/predict/arrival"
	PathPredictNext     = "/api/v1/predict/next-visit"
	PathStatsFrequency  = "/api/v1/stats/frequency"
	PathStatsDwell      = "/api/v1/stats/dwell"
	// Streaming endpoints (DESIGN.md §13). Both are exempt from the request
	// timeout middleware and the -max-body cap: the connections are
	// long-lived by design.
	PathObservationsStream = "/api/v1/observations/stream"
	PathEventsSubscribe    = "/api/v1/events/subscribe"
)

// RegisterRequest registers a device. The device is identified jointly by
// its IMEI and the phone's email account (Section 2.2.1).
type RegisterRequest struct {
	IMEI  string `json:"imei"`
	Email string `json:"email"`
}

// RegisterResponse carries the issued token.
type RegisterResponse struct {
	UserID    string    `json:"user_id"`
	Token     string    `json:"token"`
	ExpiresAt time.Time `json:"expires_at"`
}

// RefreshResponse carries a renewed token.
type RefreshResponse struct {
	Token     string    `json:"token"`
	ExpiresAt time.Time `json:"expires_at"`
}

// VisitWire is a serialized visit interval.
type VisitWire struct {
	Arrive time.Time `json:"arrive"`
	Depart time.Time `json:"depart"`
}

// PlaceWire is the serialized form of a GSM place (map-keyed cell sets do
// not survive JSON, hence the explicit slice).
type PlaceWire struct {
	ID        int            `json:"id"`
	Signature []world.CellID `json:"signature"`
	Cells     []world.CellID `json:"cells"`
	Visits    []VisitWire    `json:"visits"`
	Label     string         `json:"label,omitempty"`
}

// PlaceToWire converts a discovered place for transport.
func PlaceToWire(p *gsm.Place) PlaceWire {
	w := PlaceWire{ID: p.ID, Signature: p.Signature}
	for c := range p.AllCells {
		w.Cells = append(w.Cells, c)
	}
	sortCells(w.Cells)
	for _, v := range p.Visits {
		w.Visits = append(w.Visits, VisitWire{Arrive: v.Arrive, Depart: v.Depart})
	}
	return w
}

// WireToPlace reconstructs a place from transport form.
func WireToPlace(w PlaceWire) *gsm.Place {
	p := &gsm.Place{ID: w.ID, Signature: w.Signature, AllCells: map[world.CellID]struct{}{}}
	for _, c := range w.Cells {
		p.AllCells[c] = struct{}{}
	}
	for _, v := range w.Visits {
		p.Visits = append(p.Visits, gsm.Visit{Arrive: v.Arrive, Depart: v.Depart})
	}
	return p
}

func sortCells(cs []world.CellID) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].String() < cs[j-1].String(); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

// DiscoverPlacesRequest uploads a GSM trace for GCA offload.
//
// Two upload modes share the endpoint. A full upload (Delta false) replaces
// the server's persisted trace with Observations — the legacy behaviour, and
// the client's fallback when its cursor diverges from the server. A delta
// upload (Delta true) claims the server already holds a Cursor-observation
// prefix whose chained TraceHash is PrefixHash, and ships only the
// observations after it; the server verifies the claim against its persisted
// trace and appends. Retries are harmless: a delta that (partially) overlaps
// what the server already holds is deduplicated observation-by-observation
// rather than double-appended, and a mismatch answers 409 so the client can
// fall back to a full upload.
type DiscoverPlacesRequest struct {
	Observations []trace.GSMObservation `json:"observations"`
	Delta        bool                   `json:"delta,omitempty"`
	Cursor       int64                  `json:"cursor,omitempty"`
	PrefixHash   uint64                 `json:"prefix_hash,omitempty"`
}

// StreamBatch is one element of the streaming ingest body: the request is a
// sequence of JSON batches (NDJSON-style concatenation) decoded as they
// arrive, each appended WAL-durably and fed to the online event detector
// before the next is read.
type StreamBatch struct {
	Observations []trace.GSMObservation `json:"observations"`
}

// StreamResult is the single response written when the ingest stream ends.
type StreamResult struct {
	// TraceLen/TraceHash are the post-stream trace position, compatible
	// with the delta sync cursor protocol.
	TraceLen  int64  `json:"trace_len"`
	TraceHash uint64 `json:"trace_hash"`
	// Appended counts observations persisted by this stream; Events counts
	// transitions it published.
	Appended int `json:"appended"`
	Events   int `json:"events"`
}

// DiscoverPlacesResponse returns the discovered places plus the server's
// post-sync trace position — the cursor the client resumes its next delta
// upload from.
type DiscoverPlacesResponse struct {
	Places    []PlaceWire `json:"places"`
	TraceLen  int64       `json:"trace_len"`
	TraceHash uint64      `json:"trace_hash"`
}

// Trace hashing: an order-sensitive chained FNV-64a over every observation
// field. Both sides of the delta protocol compute it independently — the
// client over its local buffer, the server over its persisted trace — so a
// matching (length, hash) pair certifies the prefixes are identical without
// shipping them. Timestamps hash as UnixNano, which survives the RFC 3339
// JSON round-trip exactly; signal levels hash by their bit pattern.
const (
	traceHashOffset = 14695981039346656037 // FNV-64a offset basis
	traceHashPrime  = 1099511628211        // FNV-64a prime
)

// TraceHash hashes a whole trace from the empty-prefix seed.
func TraceHash(obs []trace.GSMObservation) uint64 {
	return ExtendTraceHash(EmptyTraceHash(), obs)
}

// EmptyTraceHash is the hash of the zero-observation prefix.
func EmptyTraceHash() uint64 { return traceHashOffset }

// ExtendTraceHash continues a chained trace hash over additional
// observations: ExtendTraceHash(TraceHash(a), b) == TraceHash(append(a, b)).
func ExtendTraceHash(h uint64, obs []trace.GSMObservation) uint64 {
	for _, o := range obs {
		h = traceHashWord(h, uint64(o.At.UnixNano()))
		h = traceHashWord(h, uint64(int64(o.Cell.MCC)))
		h = traceHashWord(h, uint64(int64(o.Cell.MNC)))
		h = traceHashWord(h, uint64(int64(o.Cell.LAC)))
		h = traceHashWord(h, uint64(int64(o.Cell.CID)))
		h = traceHashWord(h, math.Float64bits(o.SignalDBM))
	}
	return h
}

func traceHashWord(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= traceHashPrime
		v >>= 8
	}
	return h
}

// LabelRequest tags a stored place.
type LabelRequest struct {
	PlaceID int    `json:"place_id"`
	Label   string `json:"label"`
}

// RouteWire is a serialized low-accuracy route.
type RouteWire struct {
	ID    int            `json:"id"`
	Cells []world.CellID `json:"cells"`
	Trips []VisitWire    `json:"trips"`
}

// RouteToWire converts a GSM route for transport.
func RouteToWire(r *route.GSMRoute) RouteWire {
	w := RouteWire{ID: r.ID, Cells: r.Cells}
	for _, t := range r.Trips {
		w.Trips = append(w.Trips, VisitWire{Arrive: t.Start, Depart: t.End})
	}
	return w
}

// DiscoverRoutesRequest uploads a trace plus visit intervals for route
// extraction.
type DiscoverRoutesRequest struct {
	Observations []trace.GSMObservation `json:"observations"`
	Visits       []VisitWire            `json:"visits"`
}

// DiscoverRoutesResponse returns the extracted routes.
type DiscoverRoutesResponse struct {
	Routes []RouteWire `json:"routes"`
}

// RouteSimilarityRequest compares two cell sequences.
type RouteSimilarityRequest struct {
	A []world.CellID `json:"a"`
	B []world.CellID `json:"b"`
}

// RouteSimilarityResponse carries the similarity in [0,1].
type RouteSimilarityResponse struct {
	Similarity float64 `json:"similarity"`
}

// GeoCellResponse resolves a cell to approximate coordinates.
type GeoCellResponse struct {
	Lat            float64 `json:"lat"`
	Lng            float64 `json:"lng"`
	AccuracyMeters float64 `json:"accuracy_meters"`
}

// ContactsRequest uploads encounters.
type ContactsRequest struct {
	Encounters []profile.Encounter `json:"encounters"`
}

// ContactsResponse lists stored encounters.
type ContactsResponse struct {
	Encounters []profile.Encounter `json:"encounters"`
}

// PredictArrivalResponse answers "at what time of day does the user
// typically arrive at this place?" (paper Section 2.3.2, query 1).
type PredictArrivalResponse struct {
	PlaceID string `json:"place_id"`
	// TypicalArrival is seconds since local midnight.
	TypicalArrivalSec int `json:"typical_arrival_sec"`
	SampleCount       int `json:"sample_count"`
}

// PredictNextVisitResponse answers "when is the user's next visit to place
// A?" (query 2).
type PredictNextVisitResponse struct {
	PlaceID   string    `json:"place_id"`
	NextVisit time.Time `json:"next_visit"`
	Confident bool      `json:"confident"`
}

// FrequencyResponse answers "how often does the user visit this place?"
// (query 3).
type FrequencyResponse struct {
	PlaceID       string  `json:"place_id"`
	VisitsPerWeek float64 `json:"visits_per_week"`
	TotalVisits   int     `json:"total_visits"`
}

// DwellStatsResponse summarizes how long the user stays at a place.
type DwellStatsResponse struct {
	PlaceID        string `json:"place_id"`
	Visits         int    `json:"visits"`
	MeanStaySec    int    `json:"mean_stay_sec"`
	MedianStaySec  int    `json:"median_stay_sec"`
	LongestStaySec int    `json:"longest_stay_sec"`
}

// ErrorResponse is the uniform error body.
type ErrorResponse struct {
	Error string `json:"error"`
}
