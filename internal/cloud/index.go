package cloud

import (
	"math"
	"slices"
	"strings"
	"time"

	"repro/internal/profile"
)

// Incremental analytics index (DESIGN.md §9). Every analytics query used to
// deep-copy the user's entire profile history and rescan it; this file is the
// materialized alternative: a per-user index over the stored day profiles,
// maintained inside dataState.apply so live mutations, WAL replay, and
// snapshot restore all rebuild it through the one mutation path — a recovered
// store's index is the recovered profiles' index by construction.
//
// Layout: visits are pre-bucketed per place (and per label) into date-ordered
// day segments, with time-of-day and weekday precomputed, so a query walks
// exactly the visits that match it — no per-day map lookups, no rescans of
// other places. The answers must be byte-identical to a from-scratch rescan
// (the equivalence property test enforces this), so the index stores ordered
// visit lists, never running float aggregates: queries fold the same visits
// in the same order as a scan would — dates ascending, within-day profile
// order — and therefore accumulate floating point in the same order.

// visitRef is one indexed visit with the derived values the analytics fold
// needs precomputed. cosTh/sinTh are the arrival's unit-circle coordinates on
// the 24 h cycle: the circular-mean queries sum them in visit order, and
// because cos/sin of identical input bits yield identical output bits,
// precomputing them preserves byte-identity with a scan that computes them
// inline.
type visitRef struct {
	placeID        string
	secOfDay       int // Arrive's time of day; 0 marks a possible midnight split
	weekday        time.Weekday
	arrive, depart time.Time
	dur            time.Duration
	cosTh, sinTh   float64
}

// daySeg is one day's visits at one place (or carrying one label), in
// profile order. prevDate names the calendar day before it — the only day
// whose final visit can continue across midnight into this one, since the
// continuation test is instant equality at this day's 00:00.
type daySeg struct {
	date     string
	prevDate string
	visits   []visitRef
}

// dayIndex is the per-day bookkeeping: the day's final visit (what the NEXT
// day's continuation checks consult) plus which segment keys the day
// contributed, so an upsert can retract them.
type dayIndex struct {
	last   *visitRef
	places []string
	labels []string
}

// userIndex is one user's materialized analytics state.
type userIndex struct {
	dates   []string // sorted ascending; also serves ProfileRange
	days    map[string]*dayIndex
	byPlace map[string][]daySeg // place id -> date-ordered segments
	byLabel map[string][]daySeg // label -> date-ordered segments
}

func newUserIndex() *userIndex {
	return &userIndex{
		days:    map[string]*dayIndex{},
		byPlace: map[string][]daySeg{},
		byLabel: map[string][]daySeg{},
	}
}

// buildUserIndex rebuilds from scratch — the snapshot-restore and bulk-load
// path.
func buildUserIndex(days map[string]*profile.DayProfile) *userIndex {
	ux := newUserIndex()
	for _, p := range days {
		ux.putDay(p)
	}
	return ux
}

// putDay upserts one day — the incremental step for opPutProfile. A day's
// contributions depend only on that day's profile (cross-day state is read
// at query time through prevDate), so an upsert retracts and re-adds one
// day's segments and never touches a neighbor.
func (ux *userIndex) putDay(p *profile.DayProfile) {
	if old := ux.days[p.Date]; old != nil {
		for _, pid := range old.places {
			removeSeg(ux.byPlace, pid, p.Date)
		}
		for _, lb := range old.labels {
			removeSeg(ux.byLabel, lb, p.Date)
		}
	} else {
		at, _ := slices.BinarySearch(ux.dates, p.Date)
		ux.dates = slices.Insert(ux.dates, at, p.Date)
	}

	day, _ := time.Parse(profile.DateFormat, p.Date)
	prevDate := day.AddDate(0, 0, -1).Format(profile.DateFormat)
	di := &dayIndex{}
	byPlace := map[string][]visitRef{}
	byLabel := map[string][]visitRef{}
	for _, v := range p.Places {
		ref := visitRef{
			placeID:  v.PlaceID,
			secOfDay: v.Arrive.Hour()*3600 + v.Arrive.Minute()*60 + v.Arrive.Second(),
			weekday:  v.Arrive.Weekday(),
			arrive:   v.Arrive,
			depart:   v.Depart,
			dur:      v.Duration(),
		}
		th := float64(ref.secOfDay) / 86400 * 2 * math.Pi
		ref.cosTh, ref.sinTh = math.Cos(th), math.Sin(th)
		byPlace[v.PlaceID] = append(byPlace[v.PlaceID], ref)
		if v.Label != "" {
			byLabel[v.Label] = append(byLabel[v.Label], ref)
		}
	}
	if n := len(p.Places); n > 0 {
		v := p.Places[n-1]
		di.last = &visitRef{placeID: v.PlaceID, arrive: v.Arrive, depart: v.Depart}
	}
	for pid, vs := range byPlace {
		di.places = append(di.places, pid)
		insertSeg(ux.byPlace, pid, daySeg{date: p.Date, prevDate: prevDate, visits: vs})
	}
	for lb, vs := range byLabel {
		di.labels = append(di.labels, lb)
		insertSeg(ux.byLabel, lb, daySeg{date: p.Date, prevDate: prevDate, visits: vs})
	}
	ux.days[p.Date] = di
}

func segIdx(segs []daySeg, date string) (int, bool) {
	return slices.BinarySearchFunc(segs, date, func(s daySeg, d string) int {
		return strings.Compare(s.date, d)
	})
}

func removeSeg(m map[string][]daySeg, key, date string) {
	segs := m[key]
	if i, ok := segIdx(segs, date); ok {
		segs = slices.Delete(segs, i, i+1)
		if len(segs) == 0 {
			delete(m, key)
		} else {
			m[key] = segs
		}
	}
}

func insertSeg(m map[string][]daySeg, key string, seg daySeg) {
	segs := m[key]
	i, ok := segIdx(segs, seg.date)
	if ok {
		segs[i] = seg
	} else {
		segs = slices.Insert(segs, i, seg)
	}
	m[key] = segs
}

// continuedFrom reports whether a visit arriving at this instant (already
// known to be 00:00:00) is the second half of a stay split at midnight: the
// previous calendar day is indexed and ends at the same place at the same
// instant. Equality at an instant forces calendar adjacency, which is why
// only prevDate needs checking — a scan's "previous profile in sorted order"
// test agrees on every input.
func (ux *userIndex) continuedFrom(prevDate, placeID string, arrive time.Time) bool {
	prev := ux.days[prevDate]
	if prev == nil || prev.last == nil {
		return false
	}
	return prev.last.placeID == placeID && prev.last.depart.Equal(arrive)
}

// continuesPrevDay is the same predicate on raw profile visits — shared with
// the scan reference implementation in analytics.go.
func continuesPrevDay(v, prevLast *profile.PlaceVisit, placeID string) bool {
	if v.Arrive.Hour() != 0 || v.Arrive.Minute() != 0 || v.Arrive.Second() != 0 {
		return false
	}
	return prevLast != nil && prevLast.PlaceID == placeID && prevLast.Depart.Equal(v.Arrive)
}

// foldArrivalsAt streams every true arrival at the place to fn — date order,
// then within-day order, midnight continuations skipped — the indexed
// counterpart of Analytics.scanArrivalsAt, without materializing the
// intermediate slice the old indexed path allocated per query. fn may be nil
// to just count. Returns the arrival count.
func foldArrivalsAt(ux *userIndex, placeID string, fn func(v *visitRef)) int {
	if ux == nil {
		return 0
	}
	n := 0
	for _, seg := range ux.byPlace[placeID] {
		for i := range seg.visits {
			v := &seg.visits[i]
			if v.secOfDay == 0 && ux.continuedFrom(seg.prevDate, placeID, v.arrive) {
				continue
			}
			n++
			if fn != nil {
				fn(v)
			}
		}
	}
	return n
}

// indexDwells is the indexed counterpart of the DwellStats scan fold: stay
// durations at the place with midnight-split visits re-joined, in visit
// order.
func indexDwells(ux *userIndex, placeID string) []time.Duration {
	if ux == nil {
		return nil
	}
	segs := ux.byPlace[placeID]
	n := 0
	for _, seg := range segs {
		n += len(seg.visits)
	}
	if n == 0 {
		return nil
	}
	// A run's end instant always equals the last joined visit's departure
	// (each join extends the run by exactly that visit's span), so tracking
	// the precomputed depart gives the same join decisions as recomputing
	// arrive+duration the way the scan does.
	stays := make([]time.Duration, 0, n)
	var openEnd time.Time
	var openDur time.Duration
	open := false
	for _, seg := range segs {
		for i := range seg.visits {
			v := &seg.visits[i]
			if open && v.arrive.Equal(openEnd) {
				openDur += v.dur
				openEnd = v.depart
				continue
			}
			if open {
				stays = append(stays, openDur)
			}
			openEnd, openDur, open = v.depart, v.dur, true
		}
	}
	if open {
		stays = append(stays, openDur)
	}
	return stays
}

// indexCountByLabel counts true arrivals at places carrying the label, the
// indexed counterpart of the FrequencyByLabel scan.
func indexCountByLabel(ux *userIndex, label string) int {
	total := 0
	for _, seg := range ux.byLabel[label] {
		for i := range seg.visits {
			v := &seg.visits[i]
			if v.secOfDay == 0 && ux.continuedFrom(seg.prevDate, v.placeID, v.arrive) {
				continue
			}
			total++
		}
	}
	return total
}
