package cloud

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/profile"
	"repro/internal/simclock"
)

// TestStoreConcurrentAccess hammers the store from many goroutines; run
// with -race to validate the locking discipline.
func TestStoreConcurrentAccess(t *testing.T) {
	s := NewStore(fixedNow(simclock.Epoch))
	const workers = 8
	const iters = 50

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			uid := fmt.Sprintf("user-%d", w)
			for i := 0; i < iters; i++ {
				reg, err := s.Register(fmt.Sprintf("imei-%d", w), "x@y")
				if err != nil {
					t.Errorf("register: %v", err)
					return
				}
				if _, err := s.Authenticate(reg.Token); err != nil {
					t.Errorf("auth: %v", err)
					return
				}
				s.SetPlaces(uid, []PlaceWire{{ID: i}})
				_ = s.Places(uid)
				s.SetRoutes(uid, []RouteWire{{ID: i}})
				_ = s.Routes(uid, 0)
				day := simclock.Epoch.AddDate(0, 0, i%5)
				_ = s.PutProfile(uid, &profile.DayProfile{
					UserID: uid,
					Date:   day.Format(profile.DateFormat),
					Places: []profile.PlaceVisit{{PlaceID: "p", Arrive: day.Add(time.Hour), Depart: day.Add(2 * time.Hour)}},
				})
				_ = s.ProfileRange(uid, "", "")
				s.AddContacts(uid, []profile.Encounter{{ContactID: "c", Start: day, End: day.Add(time.Minute)}})
				_ = s.Contacts(uid, "")
			}
		}()
	}
	wg.Wait()

	if s.UserCount() == 0 {
		t.Error("no users after concurrent registration")
	}
}

// TestServerConcurrentRequests exercises the HTTP surface concurrently.
func TestServerConcurrentRequests(t *testing.T) {
	ts := newTestServer(t)
	const workers = 6

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := NewClient(ts.srv.URL, fmt.Sprintf("imei-%d", w), "c@x", ts.srv.Client())
			if err := c.Register(); err != nil {
				t.Errorf("register: %v", err)
				return
			}
			for i := 0; i < 10; i++ {
				if _, err := c.DiscoverPlaces(oscillatingTrace()); err != nil {
					t.Errorf("discover: %v", err)
					return
				}
				if _, err := c.Places(); err != nil {
					t.Errorf("places: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if ts.store.UserCount() != workers {
		t.Errorf("users = %d, want %d", ts.store.UserCount(), workers)
	}
}
