package cloud

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"testing"
	"time"
)

// randomPolicy draws a structurally valid policy from r, for property-style
// sweeps over the parameter space.
func randomPolicy(r *rand.Rand) RetryPolicy {
	base := time.Duration(1+r.Intn(500)) * time.Millisecond
	maxD := base * time.Duration(1+r.Intn(50))
	return RetryPolicy{
		MaxAttempts: 1 + r.Intn(8),
		BaseDelay:   base,
		MaxDelay:    maxD,
		Multiplier:  1 + 3*r.Float64(),
		JitterFrac:  r.Float64() * 0.9,
	}
}

// TestBackoffMonotoneAndCapped: the pre-jitter schedule never decreases and
// never exceeds MaxDelay, for any policy shape.
func TestBackoffMonotoneAndCapped(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		p := randomPolicy(r)
		prev := time.Duration(-1)
		for n := 0; n < 20; n++ {
			d := p.Backoff(n)
			if d < prev {
				t.Fatalf("trial %d: Backoff(%d)=%v < Backoff(%d)=%v (policy %+v)", trial, n, d, n-1, prev, p)
			}
			if d > p.MaxDelay {
				t.Fatalf("trial %d: Backoff(%d)=%v exceeds cap %v", trial, n, d, p.MaxDelay)
			}
			if d < 0 {
				t.Fatalf("trial %d: negative backoff %v", trial, d)
			}
			prev = d
		}
	}
}

// TestJitterStaysInBand: every jittered delay lies within
// [backoff*(1-j), backoff*(1+j)].
func TestJitterStaysInBand(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		p := randomPolicy(r).WithRand(rand.New(rand.NewSource(int64(trial))))
		for n := 0; n < 10; n++ {
			base := float64(p.Backoff(n))
			lo := time.Duration(base * (1 - p.JitterFrac))
			hi := time.Duration(base * (1 + p.JitterFrac))
			for draw := 0; draw < 5; draw++ {
				d := p.Delay(n)
				// One nanosecond of slack for float rounding.
				if d < lo-1 || d > hi+1 {
					t.Fatalf("trial %d: Delay(%d)=%v outside [%v,%v] (jitter %.3f)", trial, n, d, lo, hi, p.JitterFrac)
				}
			}
		}
	}
}

// TestScheduleDeterministicForSeed: identical seeds yield identical jittered
// schedules; the schedule is a pure function of (policy, seed).
func TestScheduleDeterministicForSeed(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		mk := func() []time.Duration {
			p := DefaultRetryPolicy().WithRand(rand.New(rand.NewSource(seed)))
			var out []time.Duration
			for n := 0; n < 12; n++ {
				out = append(out, p.Delay(n))
			}
			return out
		}
		a, b := mk(), mk()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: schedule diverged at %d: %v vs %v", seed, i, a[i], b[i])
			}
		}
	}
	// And different seeds should (overwhelmingly) differ somewhere.
	p1 := DefaultRetryPolicy().WithRand(rand.New(rand.NewSource(1)))
	p2 := DefaultRetryPolicy().WithRand(rand.New(rand.NewSource(2)))
	same := true
	for n := 0; n < 12; n++ {
		if p1.Delay(n) != p2.Delay(n) {
			same = false
			break
		}
	}
	if same {
		t.Error("schedules for seeds 1 and 2 are identical — jitter is not seed-driven")
	}
}

// TestRetryTotalTimeBounded: an exhausted retry cycle sleeps no more than
// MaxTotalDelay in total and makes exactly MaxAttempts attempts.
func TestRetryTotalTimeBounded(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	fail := errors.New("synthetic network failure")
	for trial := 0; trial < 100; trial++ {
		var slept time.Duration
		p := randomPolicy(r).WithRand(rand.New(rand.NewSource(int64(trial))))
		p = p.WithSleep(func(_ context.Context, d time.Duration) error {
			slept += d
			return nil
		})
		attempts := 0
		err := p.run(context.Background(), true, func(context.Context) error {
			attempts++
			return fail
		})
		if !errors.Is(err, fail) {
			t.Fatalf("trial %d: err = %v, want the injected failure", trial, err)
		}
		if attempts != p.attempts() {
			t.Fatalf("trial %d: %d attempts, want %d", trial, attempts, p.attempts())
		}
		if bound := p.MaxTotalDelay(); slept > bound {
			t.Fatalf("trial %d: slept %v, bound %v (policy %+v)", trial, slept, bound, p)
		}
	}
}

// TestRetryClassification pins down which errors are retried.
func TestRetryClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"429", &statusError{Status: http.StatusTooManyRequests}, true},
		{"500", &statusError{Status: 500}, true},
		{"503", &statusError{Status: 503}, true},
		{"400", &statusError{Status: 400}, false},
		{"401", &statusError{Status: 401}, false},
		{"404", &statusError{Status: 404}, false},
		{"network", errors.New("connection refused"), true},
		{"truncated", &transientError{err: errors.New("unexpected EOF")}, true},
		{"canceled", context.Canceled, false},
	}
	for _, tc := range cases {
		if got := retryable(tc.err); got != tc.want {
			t.Errorf("retryable(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestNonIdempotentSingleAttempt: non-idempotent calls never retry, even on
// retryable errors.
func TestNonIdempotentSingleAttempt(t *testing.T) {
	p := DefaultRetryPolicy().WithSleep(func(context.Context, time.Duration) error { return nil })
	attempts := 0
	err := p.run(context.Background(), false, func(context.Context) error {
		attempts++
		return errors.New("boom")
	})
	if err == nil || attempts != 1 {
		t.Fatalf("attempts = %d (err %v), want exactly 1", attempts, err)
	}
}

// TestRetryStopsOnContextCancel: a cancelled parent context ends the cycle.
func TestRetryStopsOnContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := DefaultRetryPolicy().WithSleep(func(ctx context.Context, _ time.Duration) error { return ctx.Err() })
	attempts := 0
	err := p.run(ctx, true, func(context.Context) error {
		attempts++
		cancel()
		return errors.New("boom")
	})
	if err == nil {
		t.Fatal("expected an error after cancellation")
	}
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (no retries after cancel)", attempts)
	}
}
