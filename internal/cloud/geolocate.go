package cloud

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"repro/internal/geo"
	"repro/internal/world"
)

// CellDatabase resolves Cell-IDs to approximate coordinates. It stands in
// for the Open Cell ID / Google geolocation services the paper's geo-location
// API wraps (Section 2.3.3): positions carry a few hundred meters of error,
// as crowd-sourced tower databases do.
type CellDatabase struct {
	entries map[world.CellID]GeoCellResponse
}

// NewCellDatabase builds the database from the world's towers, applying a
// deterministic per-cell position error to mimic crowd-sourced inaccuracy.
func NewCellDatabase(w *world.World, meanErrorMeters float64) *CellDatabase {
	db := &CellDatabase{entries: make(map[world.CellID]GeoCellResponse, len(w.Towers))}
	for _, t := range w.Towers {
		h := fnv.New64a()
		fmt.Fprint(h, t.ID.String())
		r := rand.New(rand.NewSource(int64(h.Sum64())))
		err := r.Float64() * 2 * meanErrorMeters
		pos := geo.Offset(t.Pos, r.Float64()*360, err)
		db.entries[t.ID] = GeoCellResponse{
			Lat:            pos.Lat,
			Lng:            pos.Lng,
			AccuracyMeters: t.RangeMeters,
		}
	}
	return db
}

// Lookup resolves a cell. The boolean is false for unknown cells (towers the
// crowd never mapped).
func (db *CellDatabase) Lookup(id world.CellID) (GeoCellResponse, bool) {
	if db == nil {
		return GeoCellResponse{}, false
	}
	e, ok := db.entries[id]
	return e, ok
}

// Size returns the number of known cells.
func (db *CellDatabase) Size() int {
	if db == nil {
		return 0
	}
	return len(db.entries)
}
