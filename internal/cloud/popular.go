package cloud

import (
	"slices"
	"sort"
	"sync"

	"repro/internal/geo"
	"repro/internal/obs"
)

// This file implements the cross-user "popular places" aggregate — an
// implementation of the paper's future-work direction of offering mobility
// data to third parties "while ensuring greater privacy guarantees": the
// cloud reveals only place clusters visited by at least k distinct users
// (k-anonymity at the place level), with counts and an optional consensus
// label, never user identities or visit times.
//
// Two entry points share the pipeline (sitePlaces → clusterPopular):
// PopularPlaces recomputes from a full store scan, and PopularIndex — the
// serving path — caches each user's geolocated points keyed by that user's
// places generation and memoizes the whole clustering keyed by the store's
// places version, so an unchanged store answers repeat queries without
// touching a single place.

// PopularPlace is one k-anonymous aggregate cluster.
type PopularPlace struct {
	Center geo.LatLng `json:"center"`
	// Users is how many distinct users have a discovered place here.
	Users int `json:"users"`
	// Label is the most common user label in the cluster, or "" when fewer
	// than k users agree on one (so a unique label cannot identify anyone).
	Label string `json:"label,omitempty"`
}

// PopularPlacesResponse is the endpoint payload.
type PopularPlacesResponse struct {
	K      int            `json:"k"`
	Places []PopularPlace `json:"places"`
}

// PathPlacesPopular is the aggregate endpoint.
const PathPlacesPopular = "/api/v1/places/popular"

// sited is one user's place resolved to a map position.
type sited struct {
	user   string
	center geo.LatLng
	label  string
}

// sitePlaces geolocates one user's places through the cell database. Places
// whose cells cannot be geolocated are skipped.
func sitePlaces(user string, places []PlaceWire, cells *CellDatabase) []sited {
	var out []sited
	for _, p := range places {
		var pts []geo.LatLng
		for _, c := range p.Cells {
			if e, ok := cells.Lookup(c); ok {
				pts = append(pts, geo.LatLng{Lat: e.Lat, Lng: e.Lng})
			}
		}
		if len(pts) == 0 {
			continue
		}
		out = append(out, sited{user: user, center: geo.Centroid(pts), label: p.Label})
	}
	return out
}

// clusterPopular greedily clusters sited places within radiusM and keeps the
// k-anonymous clusters. The input is sorted first so the result is a pure
// function of the set, not of shard iteration order.
func clusterPopular(all []sited, k int, radiusM float64) []PopularPlace {
	sort.Slice(all, func(i, j int) bool {
		if all[i].center.Lat != all[j].center.Lat {
			return all[i].center.Lat < all[j].center.Lat
		}
		if all[i].center.Lng != all[j].center.Lng {
			return all[i].center.Lng < all[j].center.Lng
		}
		return all[i].user < all[j].user
	})

	type cluster struct {
		members []sited
		center  geo.LatLng
	}
	var clusters []*cluster
	for _, s := range all {
		var best *cluster
		bestD := radiusM
		for _, c := range clusters {
			if d := geo.Distance(c.center, s.center); d <= bestD {
				best, bestD = c, d
			}
		}
		if best == nil {
			clusters = append(clusters, &cluster{members: []sited{s}, center: s.center})
			continue
		}
		best.members = append(best.members, s)
		// Recompute the running centroid.
		pts := make([]geo.LatLng, len(best.members))
		for i, m := range best.members {
			pts[i] = m.center
		}
		best.center = geo.Centroid(pts)
	}

	var out []PopularPlace
	for _, c := range clusters {
		users := map[string]bool{}
		labelVotes := map[string]int{}
		for _, m := range c.members {
			users[m.user] = true
			if m.label != "" {
				labelVotes[m.label]++
			}
		}
		if len(users) < k {
			continue
		}
		pp := PopularPlace{Center: c.center, Users: len(users)}
		// Reveal a label only when at least k members carry it.
		bestLabel, bestVotes := "", 0
		for l, v := range labelVotes {
			if v > bestVotes || (v == bestVotes && l < bestLabel) {
				bestLabel, bestVotes = l, v
			}
		}
		if bestVotes >= k {
			pp.Label = bestLabel
		}
		out = append(out, pp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Users != out[j].Users {
			return out[i].Users > out[j].Users
		}
		if out[i].Center.Lat != out[j].Center.Lat {
			return out[i].Center.Lat < out[j].Center.Lat
		}
		return out[i].Center.Lng < out[j].Center.Lng
	})
	return out
}

// PopularPlaces clusters every user's stored places by geolocated centroid
// (cells resolved through the cell database, clusters within radiusM merge)
// and returns clusters with at least k distinct users — the from-scratch
// recompute; the serving path is PopularIndex.
func PopularPlaces(store *Store, cells *CellDatabase, k int, radiusM float64) []PopularPlace {
	if k < 2 {
		k = 2 // never allow a singleton reveal
	}
	var all []sited
	store.forEachPlaces(func(user string, places []PlaceWire) {
		all = append(all, sitePlaces(user, places, cells)...)
	})
	return clusterPopular(all, k, radiusM)
}

// cachedSited is one user's geolocated places, valid while the user's places
// generation is unchanged.
type cachedSited struct {
	gen uint64
	pts []sited
}

// PopularIndex serves popular-places queries from caches instead of
// re-geolocating every user's places per request. Two layers, both
// invalidated by version counters the store bumps on places mutations (never
// by time, so results are always exact, never stale):
//
//   - per-user: sitePlaces output keyed by the user's places generation —
//     only users whose places actually changed are re-geolocated;
//   - whole-result: the clustered answer keyed by (store places version, k,
//     radius) — an unchanged store serves repeats from the memo.
type PopularIndex struct {
	store *Store
	cells *CellDatabase

	memoHits   *obs.Counter // popular_memo_hits_total
	recomputes *obs.Counter // popular_recomputes_total

	mu     sync.Mutex
	byUser map[string]cachedSited
	memo   struct {
		valid  bool
		ver    uint64
		k      int
		radius float64
		places []PopularPlace
	}
}

// NewPopularIndex returns an empty cache over the store; the first query
// populates it.
func NewPopularIndex(store *Store, cells *CellDatabase) *PopularIndex {
	return &PopularIndex{
		store:      store,
		cells:      cells,
		memoHits:   store.obsReg.Counter("popular_memo_hits_total"),
		recomputes: store.obsReg.Counter("popular_recomputes_total"),
		byUser:     map[string]cachedSited{},
	}
}

// Places answers exactly like PopularPlaces(store, cells, k, radiusM) — the
// equivalence property test holds the two identical — reusing every cache
// layer the version counters allow. The returned slice is the caller's.
func (px *PopularIndex) Places(k int, radiusM float64) []PopularPlace {
	if k < 2 {
		k = 2 // never allow a singleton reveal
	}
	px.mu.Lock()
	defer px.mu.Unlock()

	// Read the version BEFORE gathering: a mutation racing the gather can
	// only make the memo key stale-low (over-invalidating next call), never
	// let newer state hide behind an old key.
	ver := px.store.placesVersion()
	if px.memo.valid && px.memo.ver == ver && px.memo.k == k && px.memo.radius == radiusM {
		px.memoHits.Inc()
		return slices.Clone(px.memo.places)
	}
	px.recomputes.Inc()

	seen := map[string]bool{}
	var all []sited
	px.store.forEachPlacesGen(func(user string, gen uint64, places []PlaceWire) {
		seen[user] = true
		c, ok := px.byUser[user]
		if !ok || c.gen != gen {
			c = cachedSited{gen: gen, pts: sitePlaces(user, places, px.cells)}
			px.byUser[user] = c
		}
		all = append(all, c.pts...)
	})
	// Drop cache entries for users no longer in the store (legacy Load can
	// replace the population wholesale).
	for u := range px.byUser {
		if !seen[u] {
			delete(px.byUser, u)
		}
	}

	out := clusterPopular(all, k, radiusM)
	px.memo.valid = true
	px.memo.ver, px.memo.k, px.memo.radius = ver, k, radiusM
	px.memo.places = out
	return slices.Clone(out)
}
