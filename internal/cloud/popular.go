package cloud

import (
	"sort"

	"repro/internal/geo"
)

// This file implements the cross-user "popular places" aggregate — an
// implementation of the paper's future-work direction of offering mobility
// data to third parties "while ensuring greater privacy guarantees": the
// cloud reveals only place clusters visited by at least k distinct users
// (k-anonymity at the place level), with counts and an optional consensus
// label, never user identities or visit times.

// PopularPlace is one k-anonymous aggregate cluster.
type PopularPlace struct {
	Center geo.LatLng `json:"center"`
	// Users is how many distinct users have a discovered place here.
	Users int `json:"users"`
	// Label is the most common user label in the cluster, or "" when fewer
	// than k users agree on one (so a unique label cannot identify anyone).
	Label string `json:"label,omitempty"`
}

// PopularPlacesResponse is the endpoint payload.
type PopularPlacesResponse struct {
	K      int            `json:"k"`
	Places []PopularPlace `json:"places"`
}

// PathPlacesPopular is the aggregate endpoint.
const PathPlacesPopular = "/api/v1/places/popular"

// PopularPlaces clusters every user's stored places by geolocated centroid
// (cells resolved through the cell database, clusters within radiusM merge)
// and returns clusters with at least k distinct users. Places whose cells
// cannot be geolocated are skipped.
func PopularPlaces(store *Store, cells *CellDatabase, k int, radiusM float64) []PopularPlace {
	if k < 2 {
		k = 2 // never allow a singleton reveal
	}
	type sited struct {
		user   string
		center geo.LatLng
		label  string
	}
	var all []sited

	store.forEachPlaces(func(user string, places []PlaceWire) {
		for _, p := range places {
			var pts []geo.LatLng
			for _, c := range p.Cells {
				if e, ok := cells.Lookup(c); ok {
					pts = append(pts, geo.LatLng{Lat: e.Lat, Lng: e.Lng})
				}
			}
			if len(pts) == 0 {
				continue
			}
			all = append(all, sited{user: user, center: geo.Centroid(pts), label: p.Label})
		}
	})

	// Deterministic order before greedy clustering.
	sort.Slice(all, func(i, j int) bool {
		if all[i].center.Lat != all[j].center.Lat {
			return all[i].center.Lat < all[j].center.Lat
		}
		if all[i].center.Lng != all[j].center.Lng {
			return all[i].center.Lng < all[j].center.Lng
		}
		return all[i].user < all[j].user
	})

	type cluster struct {
		members []sited
		center  geo.LatLng
	}
	var clusters []*cluster
	for _, s := range all {
		var best *cluster
		bestD := radiusM
		for _, c := range clusters {
			if d := geo.Distance(c.center, s.center); d <= bestD {
				best, bestD = c, d
			}
		}
		if best == nil {
			clusters = append(clusters, &cluster{members: []sited{s}, center: s.center})
			continue
		}
		best.members = append(best.members, s)
		// Recompute the running centroid.
		pts := make([]geo.LatLng, len(best.members))
		for i, m := range best.members {
			pts[i] = m.center
		}
		best.center = geo.Centroid(pts)
	}

	var out []PopularPlace
	for _, c := range clusters {
		users := map[string]bool{}
		labelVotes := map[string]int{}
		for _, m := range c.members {
			users[m.user] = true
			if m.label != "" {
				labelVotes[m.label]++
			}
		}
		if len(users) < k {
			continue
		}
		pp := PopularPlace{Center: c.center, Users: len(users)}
		// Reveal a label only when at least k members carry it.
		bestLabel, bestVotes := "", 0
		for l, v := range labelVotes {
			if v > bestVotes || (v == bestVotes && l < bestLabel) {
				bestLabel, bestVotes = l, v
			}
		}
		if bestVotes >= k {
			pp.Label = bestLabel
		}
		out = append(out, pp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Users != out[j].Users {
			return out[i].Users > out[j].Users
		}
		if out[i].Center.Lat != out[j].Center.Lat {
			return out[i].Center.Lat < out[j].Center.Lat
		}
		return out[i].Center.Lng < out[j].Center.Lng
	})
	return out
}
