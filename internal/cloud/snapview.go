package cloud

import (
	"encoding/json"
	"fmt"
	"io"
	"maps"
	"sort"
	"sync/atomic"

	"repro/internal/storage"
	"repro/internal/trace"
)

// This file implements the storage engine's off-lock snapshot extensions
// (storage.SnapshotViewer / storage.StreamRestorer, DESIGN.md §16) for the
// three shard-state kinds. SnapshotView captures shallow clones of the
// top-level maps under the shard write lock — O(keys), no encoding — and the
// returned encoder streams JSON off the lock, marshaling one user's worth of
// data at a time, so snapshot encode neither stalls writers nor doubles the
// shard's memory. RestoreStream decodes straight from the (already
// CRC-validated) snapshot file for the same peak-memory reason.
//
// The encoders must produce exactly the bytes Snapshot() would have produced
// at capture time: cluster equivalence tests compare data directories
// byte-for-byte across primary and follower. That holds because encoding/json
// renders a map as its keys in sorted order — the same order writeJSONMap
// walks — and each key/value here is rendered by json.Marshal itself.

// writeJSONMap streams m to w exactly as json.Marshal would render it
// (keys sorted bytewise), marshaling one entry at a time so peak memory is
// O(largest value), not O(map).
func writeJSONMap[V any](w io.Writer, m map[string]V) error {
	if m == nil {
		_, err := io.WriteString(w, "null")
		return err
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if _, err := io.WriteString(w, "{"); err != nil {
		return err
	}
	for i, k := range keys {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		kb, err := json.Marshal(k)
		if err != nil {
			return err
		}
		if _, err := w.Write(kb); err != nil {
			return err
		}
		if _, err := io.WriteString(w, ":"); err != nil {
			return err
		}
		vb, err := json.Marshal(m[k])
		if err != nil {
			return err
		}
		if _, err := w.Write(vb); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "}")
	return err
}

// decodeJSONStream decodes exactly one JSON value from r into v, rejecting
// trailing data — the same strictness json.Unmarshal gives the []byte path.
func decodeJSONStream(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	if err := dec.Decode(v); err != nil {
		return err
	}
	if _, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("cloud: trailing data after snapshot payload")
	}
	return nil
}

// --- metaState ---

func (m *metaState) SnapshotView() (func(io.Writer) error, func(), error) {
	// Shallow clones freeze the key set; *User values are never mutated in
	// place after registration, so sharing them with the live map is safe.
	users := maps.Clone(m.users)
	byDevice := maps.Clone(m.byDevice)
	encode := func(w io.Writer) error {
		// Field order mirrors metaSnapshot.
		if _, err := io.WriteString(w, `{"users":`); err != nil {
			return err
		}
		if err := writeJSONMap(w, users); err != nil {
			return err
		}
		if _, err := io.WriteString(w, `,"by_device":`); err != nil {
			return err
		}
		if err := writeJSONMap(w, byDevice); err != nil {
			return err
		}
		_, err := io.WriteString(w, "}")
		return err
	}
	return encode, func() {}, nil
}

func (m *metaState) RestoreStream(r io.Reader) error {
	var snap metaSnapshot
	if err := decodeJSONStream(r, &snap); err != nil {
		return fmt.Errorf("cloud: decode meta snapshot: %w", err)
	}
	fresh := newMetaState()
	if snap.Users != nil {
		fresh.users = snap.Users
	}
	if snap.ByDevice != nil {
		fresh.byDevice = snap.ByDevice
	}
	*m = *fresh
	return nil
}

// --- dataState ---

func (d *dataState) SnapshotView() (func(io.Writer) error, func(), error) {
	// Top-level clones freeze each user's entry. Values stay shared with the
	// live state, which is safe against every mutation apply can make while
	// the view is outstanding: whole-value replacement and delete touch only
	// the live (un-cloned) top-level maps; opAddContacts appends past the
	// view's slice length; opLabelPlace clones before writing; and
	// opPutProfile copy-on-writes the inner day map while snapViews > 0 —
	// the one shared structure apply would otherwise write into.
	places := maps.Clone(d.places)
	routes := maps.Clone(d.routes)
	profiles := maps.Clone(d.profiles)
	contacts := maps.Clone(d.contacts)
	views := d.snapViews
	atomic.AddInt32(views, 1)
	encode := func(w io.Writer) error {
		// Field order mirrors dataSnapshot.
		if _, err := io.WriteString(w, `{"places":`); err != nil {
			return err
		}
		if err := writeJSONMap(w, places); err != nil {
			return err
		}
		if _, err := io.WriteString(w, `,"routes":`); err != nil {
			return err
		}
		if err := writeJSONMap(w, routes); err != nil {
			return err
		}
		if _, err := io.WriteString(w, `,"profiles":`); err != nil {
			return err
		}
		if err := writeJSONMap(w, profiles); err != nil {
			return err
		}
		if _, err := io.WriteString(w, `,"contacts":`); err != nil {
			return err
		}
		if err := writeJSONMap(w, contacts); err != nil {
			return err
		}
		_, err := io.WriteString(w, "}")
		return err
	}
	release := func() { atomic.AddInt32(views, -1) }
	return encode, release, nil
}

func (d *dataState) RestoreStream(r io.Reader) error {
	var snap dataSnapshot
	if err := decodeJSONStream(r, &snap); err != nil {
		return fmt.Errorf("cloud: decode data snapshot: %w", err)
	}
	d.install(&snap)
	return nil
}

// --- traceState ---

func (t *traceState) SnapshotView() (func(io.Writer) error, func(), error) {
	// Copying the slice headers freezes each trace's length; opTraceAppend
	// only writes past that length (or swaps in a grown backing array the
	// view doesn't reference) and opTraceReplace swaps in a fresh slice, so
	// no copy-on-write flag is needed.
	users := make(map[string][]trace.GSMObservation, len(t.users))
	for id, u := range t.users {
		users[id] = u.obs
	}
	encode := func(w io.Writer) error {
		// Field order mirrors traceSnapshot.
		if _, err := io.WriteString(w, `{"users":`); err != nil {
			return err
		}
		if err := writeJSONMap(w, users); err != nil {
			return err
		}
		_, err := io.WriteString(w, "}")
		return err
	}
	return encode, func() {}, nil
}

func (t *traceState) RestoreStream(r io.Reader) error {
	var snap traceSnapshot
	if err := decodeJSONStream(r, &snap); err != nil {
		return fmt.Errorf("cloud: decode trace snapshot: %w", err)
	}
	fresh := newTraceState()
	fresh.gens = t.gens
	for id, obs := range snap.Users {
		fresh.gens++
		fresh.users[id] = &userTrace{obs: obs, hash: TraceHash(obs), gen: fresh.gens}
	}
	*t = *fresh
	return nil
}

// Interface conformance: all three states implement both off-lock snapshot
// extensions.
var (
	_ storage.SnapshotViewer = (*metaState)(nil)
	_ storage.StreamRestorer = (*metaState)(nil)
	_ storage.SnapshotViewer = (*dataState)(nil)
	_ storage.StreamRestorer = (*dataState)(nil)
	_ storage.SnapshotViewer = (*traceState)(nil)
	_ storage.StreamRestorer = (*traceState)(nil)
)
