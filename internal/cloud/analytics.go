package cloud

import (
	"math"
	"time"

	"repro/internal/profile"
)

// Analytics is the prediction engine over stored mobility profiles (paper
// Section 2.3.2). It answers the three query families the paper lists:
// typical arrival time at a place, next expected visit, and visit frequency.
type Analytics struct {
	store *Store
}

// NewAnalytics returns an engine over the store.
func NewAnalytics(store *Store) *Analytics { return &Analytics{store: store} }

// arrivalsAt collects (time-of-day-seconds, weekday) of every arrival at the
// place across the user's stored profiles. An overnight stay split at
// midnight produces a spurious 00:00 "arrival" on the second day; those
// continuation rows are skipped.
func (a *Analytics) arrivalsAt(userID, placeID string) []arrival {
	profiles := a.store.ProfileRange(userID, "", "")
	var out []arrival
	var prevDay *profile.DayProfile
	for _, day := range profiles {
		for _, v := range day.Places {
			if v.PlaceID != placeID {
				continue
			}
			if isMidnightContinuation(v, prevDay, placeID) {
				continue
			}
			sec := v.Arrive.Hour()*3600 + v.Arrive.Minute()*60 + v.Arrive.Second()
			out = append(out, arrival{secOfDay: sec, weekday: v.Arrive.Weekday(), at: v.Arrive})
		}
		prevDay = day
	}
	return out
}

type arrival struct {
	secOfDay int
	weekday  time.Weekday
	at       time.Time
}

// isMidnightContinuation detects the second half of a visit split at the day
// boundary: arrival exactly at 00:00 while the previous day's profile ends
// with the same place at 24:00.
func isMidnightContinuation(v profile.PlaceVisit, prevDay *profile.DayProfile, placeID string) bool {
	if v.Arrive.Hour() != 0 || v.Arrive.Minute() != 0 || v.Arrive.Second() != 0 {
		return false
	}
	if prevDay == nil || len(prevDay.Places) == 0 {
		return false
	}
	last := prevDay.Places[len(prevDay.Places)-1]
	return last.PlaceID == placeID && last.Depart.Equal(v.Arrive)
}

// TypicalArrival answers "at what time does the user typically reach this
// place?" — e.g. the likely time the user reaches home in the evening. It
// returns the circular mean of arrival times-of-day and the sample count
// (zero when the place was never visited).
func (a *Analytics) TypicalArrival(userID, placeID string) (secOfDay int, n int) {
	arrivals := a.arrivalsAt(userID, placeID)
	if len(arrivals) == 0 {
		return 0, 0
	}
	// Circular mean over the 24 h cycle, so 23:30 and 00:30 average to
	// midnight rather than noon.
	var sx, sy float64
	for _, ar := range arrivals {
		th := float64(ar.secOfDay) / 86400 * 2 * math.Pi
		sx += math.Cos(th)
		sy += math.Sin(th)
	}
	th := math.Atan2(sy, sx)
	if th < 0 {
		th += 2 * math.Pi
	}
	return int(th / (2 * math.Pi) * 86400), len(arrivals)
}

// PredictNextVisit answers "when will the user next visit this place?" after
// the given instant. The model is the day-of-week visiting pattern: for each
// of the next 14 days, if the user has historically visited the place on
// that weekday, predict the typical arrival time on the first such day.
// Confident is false when history is too thin (fewer than 2 visits).
func (a *Analytics) PredictNextVisit(userID, placeID string, after time.Time) (time.Time, bool) {
	arrivals := a.arrivalsAt(userID, placeID)
	if len(arrivals) < 2 {
		return time.Time{}, false
	}
	// Per-weekday typical arrival.
	type acc struct {
		sx, sy float64
		n      int
	}
	byWD := map[time.Weekday]*acc{}
	for _, ar := range arrivals {
		a, ok := byWD[ar.weekday]
		if !ok {
			a = &acc{}
			byWD[ar.weekday] = a
		}
		th := float64(ar.secOfDay) / 86400 * 2 * math.Pi
		a.sx += math.Cos(th)
		a.sy += math.Sin(th)
		a.n++
	}
	day := time.Date(after.Year(), after.Month(), after.Day(), 0, 0, 0, 0, after.Location())
	for i := 0; i < 14; i++ {
		d := day.AddDate(0, 0, i)
		acc, ok := byWD[d.Weekday()]
		if !ok {
			continue
		}
		th := math.Atan2(acc.sy, acc.sx)
		if th < 0 {
			th += 2 * math.Pi
		}
		sec := int(th / (2 * math.Pi) * 86400)
		cand := d.Add(time.Duration(sec) * time.Second)
		if cand.After(after) {
			return cand, true
		}
	}
	return time.Time{}, false
}

// VisitFrequency answers "how often does the user visit this place?" as
// visits per week over the observed profile span.
func (a *Analytics) VisitFrequency(userID, placeID string) (perWeek float64, total int) {
	profiles := a.store.ProfileRange(userID, "", "")
	if len(profiles) == 0 {
		return 0, 0
	}
	arrivals := a.arrivalsAt(userID, placeID)
	total = len(arrivals)
	first, _ := time.Parse(profile.DateFormat, profiles[0].Date)
	last, _ := time.Parse(profile.DateFormat, profiles[len(profiles)-1].Date)
	days := last.Sub(first).Hours()/24 + 1
	if days <= 0 {
		days = 1
	}
	return float64(total) / days * 7, total
}

// DwellStats summarizes stay durations at a place across stored profiles.
// Visits split at midnight are re-joined before measuring, so an overnight
// home stay counts once at its full length.
func (a *Analytics) DwellStats(userID, placeID string) DwellStatsResponse {
	profiles := a.store.ProfileRange(userID, "", "")
	var stays []time.Duration
	var open *profile.PlaceVisit
	var openDur time.Duration
	flush := func() {
		if open != nil {
			stays = append(stays, openDur)
			open = nil
			openDur = 0
		}
	}
	for _, day := range profiles {
		for i := range day.Places {
			v := day.Places[i]
			if v.PlaceID != placeID {
				continue
			}
			if open != nil && v.Arrive.Equal(openEnd(open, openDur)) {
				openDur += v.Duration()
				continue
			}
			flush()
			vv := v
			open = &vv
			openDur = v.Duration()
		}
	}
	flush()

	resp := DwellStatsResponse{PlaceID: placeID, Visits: len(stays)}
	if len(stays) == 0 {
		return resp
	}
	sortDurations(stays)
	var sum time.Duration
	for _, s := range stays {
		sum += s
	}
	resp.MeanStaySec = int(sum.Seconds()) / len(stays)
	resp.MedianStaySec = int(stays[len(stays)/2].Seconds())
	resp.LongestStaySec = int(stays[len(stays)-1].Seconds())
	return resp
}

// openEnd computes where the currently-joined visit run ends.
func openEnd(v *profile.PlaceVisit, joined time.Duration) time.Time {
	return v.Arrive.Add(joined)
}

func sortDurations(d []time.Duration) {
	for i := 1; i < len(d); i++ {
		for j := i; j > 0 && d[j] < d[j-1]; j-- {
			d[j], d[j-1] = d[j-1], d[j]
		}
	}
}

// FrequencyByKindPrefix sums visit frequency across every place whose ID (or
// label) starts with the prefix — e.g. "how frequently does the user visit
// shopping malls" when mall places are labelled accordingly.
func (a *Analytics) FrequencyByLabel(userID, label string) (perWeek float64, total int) {
	profiles := a.store.ProfileRange(userID, "", "")
	if len(profiles) == 0 {
		return 0, 0
	}
	var prevDay *profile.DayProfile
	for _, day := range profiles {
		for _, v := range day.Places {
			if v.Label != label {
				continue
			}
			if isMidnightContinuation(v, prevDay, v.PlaceID) {
				continue
			}
			total++
		}
		prevDay = day
	}
	first, _ := time.Parse(profile.DateFormat, profiles[0].Date)
	last, _ := time.Parse(profile.DateFormat, profiles[len(profiles)-1].Date)
	days := last.Sub(first).Hours()/24 + 1
	if days <= 0 {
		days = 1
	}
	return float64(total) / days * 7, total
}
