package cloud

import (
	"math"
	"slices"
	"time"

	"repro/internal/profile"
)

// Analytics is the prediction engine over stored mobility profiles (paper
// Section 2.3.2). It answers the three query families the paper lists:
// typical arrival time at a place, next expected visit, and visit frequency.
//
// Queries answer from the store's incremental per-user index (index.go) under
// the shard read lock — no per-query deep copy of the history. Each exported
// method keeps an unexported scan* twin that recomputes from scratch via
// ProfileRange; the twins are the reference implementation the equivalence
// property test pins the index against, and the pre-index baseline the
// serving benchmarks measure speedups from. Both sides fold visits in the
// same order (dates ascending, within-day profile order), so floating-point
// results agree byte-for-byte, not just approximately.
type Analytics struct {
	store *Store
}

// NewAnalytics returns an engine over the store.
func NewAnalytics(store *Store) *Analytics { return &Analytics{store: store} }

// arrival carries one true arrival plus its unit-circle coordinates on the
// 24 h cycle (the circular-mean folds sum cosTh/sinTh in arrival order).
type arrival struct {
	secOfDay     int
	weekday      time.Weekday
	at           time.Time
	cosTh, sinTh float64
}

func newArrival(v *profile.PlaceVisit) arrival {
	sec := v.Arrive.Hour()*3600 + v.Arrive.Minute()*60 + v.Arrive.Second()
	th := float64(sec) / 86400 * 2 * math.Pi
	return arrival{
		secOfDay: sec, weekday: v.Arrive.Weekday(), at: v.Arrive,
		cosTh: math.Cos(th), sinTh: math.Sin(th),
	}
}

// scanArrivalsAt is the from-scratch reference: deep-copy the history and
// rescan it.
func (a *Analytics) scanArrivalsAt(userID, placeID string) []arrival {
	profiles := a.store.ProfileRange(userID, "", "")
	var out []arrival
	var prevDay *profile.DayProfile
	for _, day := range profiles {
		for _, v := range day.Places {
			if v.PlaceID != placeID {
				continue
			}
			if isMidnightContinuation(v, prevDay, placeID) {
				continue
			}
			out = append(out, newArrival(&v))
		}
		prevDay = day
	}
	return out
}

// isMidnightContinuation detects the second half of a visit split at the day
// boundary: arrival exactly at 00:00 while the previous day's profile ends
// with the same place at 24:00.
func isMidnightContinuation(v profile.PlaceVisit, prevDay *profile.DayProfile, placeID string) bool {
	if prevDay == nil || len(prevDay.Places) == 0 {
		return false
	}
	last := prevDay.Places[len(prevDay.Places)-1]
	return continuesPrevDay(&v, &last, placeID)
}

// TypicalArrival answers "at what time does the user typically reach this
// place?" — e.g. the likely time the user reaches home in the evening. It
// returns the circular mean of arrival times-of-day and the sample count
// (zero when the place was never visited). The indexed path folds the sums
// straight off the index under the read lock — no arrival slice exists.
func (a *Analytics) TypicalArrival(userID, placeID string) (secOfDay int, n int) {
	a.store.viewIndex(userID, func(ux *userIndex) {
		// Circular mean over the 24 h cycle, so 23:30 and 00:30 average to
		// midnight rather than noon. Identical fold order to the scan twin,
		// so the floats agree byte-for-byte.
		var sx, sy float64
		n = foldArrivalsAt(ux, placeID, func(v *visitRef) {
			sx += v.cosTh
			sy += v.sinTh
		})
		if n > 0 {
			secOfDay = circularMeanSec(sx, sy)
		}
	})
	return secOfDay, n
}

func (a *Analytics) scanTypicalArrival(userID, placeID string) (secOfDay int, n int) {
	return typicalFromArrivals(a.scanArrivalsAt(userID, placeID))
}

func typicalFromArrivals(arrivals []arrival) (secOfDay int, n int) {
	if len(arrivals) == 0 {
		return 0, 0
	}
	var sx, sy float64
	for _, ar := range arrivals {
		sx += ar.cosTh
		sy += ar.sinTh
	}
	return circularMeanSec(sx, sy), len(arrivals)
}

// circularMeanSec maps summed unit-circle coordinates back to the mean
// second of day.
func circularMeanSec(sx, sy float64) int {
	th := math.Atan2(sy, sx)
	if th < 0 {
		th += 2 * math.Pi
	}
	return int(th / (2 * math.Pi) * 86400)
}

// PredictNextVisit answers "when will the user next visit this place?" after
// the given instant. The model is the day-of-week visiting pattern: for each
// of the next 14 days, if the user has historically visited the place on
// that weekday, predict the typical arrival time on the first such day.
// Confident is false when history is too thin (fewer than 2 visits).
func (a *Analytics) PredictNextVisit(userID, placeID string, after time.Time) (next time.Time, confident bool) {
	a.store.viewIndex(userID, func(ux *userIndex) {
		// Per-weekday typical arrival, folded into a stack array — the
		// per-weekday adds happen in the same (arrival) order as the scan
		// twin's map accumulation, so each weekday's sums are bit-identical.
		var byWD [7]weekdayAcc
		total := foldArrivalsAt(ux, placeID, func(v *visitRef) {
			acc := &byWD[v.weekday]
			acc.sx += v.cosTh
			acc.sy += v.sinTh
			acc.n++
		})
		next, confident = predictFromWeekdays(&byWD, total, after)
	})
	return next, confident
}

func (a *Analytics) scanPredictNextVisit(userID, placeID string, after time.Time) (time.Time, bool) {
	return predictFromArrivals(a.scanArrivalsAt(userID, placeID), after)
}

// weekdayAcc accumulates one weekday's circular-mean terms.
type weekdayAcc struct {
	sx, sy float64
	n      int
}

// predictFromWeekdays walks the next 14 days from after's midnight and
// predicts the typical arrival on the first weekday with history that lands
// after the given instant.
func predictFromWeekdays(byWD *[7]weekdayAcc, total int, after time.Time) (time.Time, bool) {
	if total < 2 {
		return time.Time{}, false
	}
	day := time.Date(after.Year(), after.Month(), after.Day(), 0, 0, 0, 0, after.Location())
	for i := 0; i < 14; i++ {
		d := day.AddDate(0, 0, i)
		acc := &byWD[d.Weekday()]
		if acc.n == 0 {
			continue
		}
		cand := d.Add(time.Duration(circularMeanSec(acc.sx, acc.sy)) * time.Second)
		if cand.After(after) {
			return cand, true
		}
	}
	return time.Time{}, false
}

func predictFromArrivals(arrivals []arrival, after time.Time) (time.Time, bool) {
	if len(arrivals) < 2 {
		return time.Time{}, false
	}
	var byWD [7]weekdayAcc
	for _, ar := range arrivals {
		acc := &byWD[ar.weekday]
		acc.sx += ar.cosTh
		acc.sy += ar.sinTh
		acc.n++
	}
	return predictFromWeekdays(&byWD, len(arrivals), after)
}

// VisitFrequency answers "how often does the user visit this place?" as
// visits per week over the observed profile span.
func (a *Analytics) VisitFrequency(userID, placeID string) (perWeek float64, total int) {
	a.store.viewIndex(userID, func(ux *userIndex) {
		if ux == nil || len(ux.dates) == 0 {
			return
		}
		total = foldArrivalsAt(ux, placeID, nil)
		perWeek = perWeekOver(ux.dates[0], ux.dates[len(ux.dates)-1], total)
	})
	return perWeek, total
}

func (a *Analytics) scanVisitFrequency(userID, placeID string) (perWeek float64, total int) {
	profiles := a.store.ProfileRange(userID, "", "")
	if len(profiles) == 0 {
		return 0, 0
	}
	total = len(a.scanArrivalsAt(userID, placeID))
	return perWeekOver(profiles[0].Date, profiles[len(profiles)-1].Date, total), total
}

// perWeekOver converts a visit count over [firstDate, lastDate] (inclusive)
// into visits per week.
func perWeekOver(firstDate, lastDate string, total int) float64 {
	first, _ := time.Parse(profile.DateFormat, firstDate)
	last, _ := time.Parse(profile.DateFormat, lastDate)
	days := last.Sub(first).Hours()/24 + 1
	if days <= 0 {
		days = 1
	}
	return float64(total) / days * 7
}

// DwellStats summarizes stay durations at a place across stored profiles.
// Visits split at midnight are re-joined before measuring, so an overnight
// home stay counts once at its full length.
func (a *Analytics) DwellStats(userID, placeID string) DwellStatsResponse {
	var stays []time.Duration
	a.store.viewIndex(userID, func(ux *userIndex) {
		stays = indexDwells(ux, placeID)
	})
	return dwellSummary(placeID, stays)
}

func (a *Analytics) scanDwellStats(userID, placeID string) DwellStatsResponse {
	profiles := a.store.ProfileRange(userID, "", "")
	var stays []time.Duration
	var open *profile.PlaceVisit
	var openDur time.Duration
	flush := func() {
		if open != nil {
			stays = append(stays, openDur)
			open = nil
			openDur = 0
		}
	}
	for _, day := range profiles {
		for i := range day.Places {
			v := day.Places[i]
			if v.PlaceID != placeID {
				continue
			}
			if open != nil && v.Arrive.Equal(open.Arrive.Add(openDur)) {
				openDur += v.Duration()
				continue
			}
			flush()
			vv := v
			open = &vv
			openDur = v.Duration()
		}
	}
	flush()
	return dwellSummary(placeID, stays)
}

func dwellSummary(placeID string, stays []time.Duration) DwellStatsResponse {
	resp := DwellStatsResponse{PlaceID: placeID, Visits: len(stays)}
	if len(stays) == 0 {
		return resp
	}
	slices.Sort(stays)
	var sum time.Duration
	for _, s := range stays {
		sum += s
	}
	resp.MeanStaySec = int(sum.Seconds()) / len(stays)
	resp.MedianStaySec = int(stays[len(stays)/2].Seconds())
	resp.LongestStaySec = int(stays[len(stays)-1].Seconds())
	return resp
}

// FrequencyByLabel sums visit frequency across every place carrying the
// label — e.g. "how frequently does the user visit shopping malls" when mall
// places are labelled accordingly.
func (a *Analytics) FrequencyByLabel(userID, label string) (perWeek float64, total int) {
	a.store.viewIndex(userID, func(ux *userIndex) {
		if ux == nil || len(ux.dates) == 0 {
			return
		}
		total = indexCountByLabel(ux, label)
		perWeek = perWeekOver(ux.dates[0], ux.dates[len(ux.dates)-1], total)
	})
	return perWeek, total
}

func (a *Analytics) scanFrequencyByLabel(userID, label string) (perWeek float64, total int) {
	profiles := a.store.ProfileRange(userID, "", "")
	if len(profiles) == 0 {
		return 0, 0
	}
	var prevDay *profile.DayProfile
	for _, day := range profiles {
		for _, v := range day.Places {
			if v.Label != label {
				continue
			}
			if isMidnightContinuation(v, prevDay, v.PlaceID) {
				continue
			}
			total++
		}
		prevDay = day
	}
	return perWeekOver(profiles[0].Date, profiles[len(profiles)-1].Date, total), total
}
