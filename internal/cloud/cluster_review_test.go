package cloud

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/profile"
)

// Failure-recovery regression suite: the zombie-primary scenario (a failed
// node restarts with a pre-failover ring and must not wholesale-replace its
// promoted heir's data), the coordinator's rejoin probing, and writes
// racing a Leave handoff.

// durableNode is a disk-backed cluster node that can be stopped and
// restarted on the same address and data directories — what a real process
// crash plus restart looks like to the rest of the cluster.
type durableNode struct {
	t     *testing.T
	id    string
	url   string
	addr  string
	root  string // storeDir/replDir live under here, surviving restarts
	peers []cluster.Node

	cn  *ClusterNode
	srv *Server
	ts  *httptest.Server
	reg *obs.Registry
}

func (n *durableNode) storeDir() string { return filepath.Join(n.root, "store") }
func (n *durableNode) replDir() string  { return filepath.Join(n.root, "repl") }

func (n *durableNode) open(l net.Listener) {
	n.t.Helper()
	reg := obs.NewRegistry()
	cn, err := NewClusterNode(n.storeDir(), StoreConfig{Shards: 2, StableIDs: true}, ClusterNodeConfig{
		Self:    cluster.Node{ID: n.id, URL: n.url},
		Peers:   n.peers,
		ReplDir: n.replDir(),
		Metrics: reg,
		Logf:    n.t.Logf,
	})
	if err != nil {
		n.t.Fatalf("node %s: %v", n.id, err)
	}
	srv := NewServer(cn.Store(), WithClusterNode(cn))
	ts := httptest.NewUnstartedServer(srv.Handler())
	ts.Listener.Close()
	ts.Listener = l
	ts.Start()
	n.cn, n.srv, n.ts, n.reg = cn, srv, ts, reg
}

// stop shuts the node down cleanly and frees its address.
func (n *durableNode) stop() {
	n.t.Helper()
	n.ts.Close()
	n.srv.Close()
	if err := n.cn.Close(); err != nil {
		n.t.Fatalf("close node %s: %v", n.id, err)
	}
	if err := n.cn.Store().Close(); err != nil {
		n.t.Fatalf("close store %s: %v", n.id, err)
	}
	n.cn, n.srv, n.ts = nil, nil, nil
}

// restart rebinds the node's address and reopens it over the same
// directories — a new process lifetime (the replication epoch bumps).
func (n *durableNode) restart() {
	n.t.Helper()
	l, err := net.Listen("tcp", n.addr)
	if err != nil {
		n.t.Fatalf("rebind %s: %v", n.addr, err)
	}
	n.open(l)
}

func startDurableCluster(t *testing.T, count int) []*durableNode {
	t.Helper()
	listeners := make([]net.Listener, count)
	peers := make([]cluster.Node, count)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		peers[i] = cluster.Node{ID: fmt.Sprintf("n%d", i), URL: "http://" + l.Addr().String()}
	}
	nodes := make([]*durableNode, count)
	for i := range nodes {
		n := &durableNode{
			t:     t,
			id:    peers[i].ID,
			url:   peers[i].URL,
			addr:  listeners[i].Addr().String(),
			root:  t.TempDir(),
			peers: peers,
		}
		n.open(listeners[i])
		nodes[i] = n
		t.Cleanup(func() {
			if n.ts != nil {
				n.stop()
			}
		})
	}
	return nodes
}

func durableNodeByID(t *testing.T, nodes []*durableNode, id string) *durableNode {
	t.Helper()
	for _, n := range nodes {
		if n.id == id {
			return n
		}
	}
	t.Fatalf("no node %s", id)
	return nil
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("%s never happened", what)
}

// TestClusterZombieRestartAndRejoin pins the full failed-primary lifecycle:
//
//  1. a node is killed and its follower promoted (acked writes survive);
//  2. the node restarts as a zombie — boot-time ring fetch hands it the
//     post-failover ring, and its armed resync (which under the stale flag
//     ring would have wholesale-replaced the heir's primary data) is
//     refused by the heir's stream admission check;
//  3. the coordinator's health loop notices the node answering again,
//     rejoins it, and the heir hands its ranges back — including every
//     write acknowledged during the failover.
func TestClusterZombieRestartAndRejoin(t *testing.T) {
	nodes := startDurableCluster(t, 3)
	urls := []string{nodes[0].url, nodes[1].url, nodes[2].url}
	coord := cluster.NewCoordinator([]cluster.Node{
		{ID: nodes[0].id, URL: nodes[0].url},
		{ID: nodes[1].id, URL: nodes[1].url},
		{ID: nodes[2].id, URL: nodes[2].url},
	}, cluster.DefaultVNodes, nil, t.Logf)
	defer coord.Stop()

	imei, email := "zombie-imei-1", "zombie@example.com"
	uid := StableUserID(imei, email)
	client := NewClient(urls[0], imei, email, &http.Client{Timeout: 5 * time.Second},
		WithCluster(urls),
		WithRetryPolicy(RetryPolicy{MaxAttempts: 4, BaseDelay: 5 * time.Millisecond}))
	if err := client.Register(); err != nil {
		t.Fatal(err)
	}
	d1, d2 := "2014-08-01", "2014-08-02"
	if err := client.SyncProfile(chaosProfile(uid, d1)); err != nil {
		t.Fatal(err)
	}

	ring := nodes[0].cn.Ring()
	ownerID := ring.PrimaryID(uid)
	owner := durableNodeByID(t, nodes, ownerID)
	heirID, ok := ring.FollowerID(ownerID)
	if !ok {
		t.Fatalf("no follower for %s", ownerID)
	}
	// Semi-sync means the ack already reached the follower, but drain the
	// stream fully so the kill point is quiescent.
	waitFor(t, "repl drain", func() bool {
		lag := uint64(0)
		for _, n := range nodes {
			lag += n.cn.Lag()
		}
		return lag == 0
	})

	// Kill the owner (clean stop; the zombie hazard is topology staleness,
	// not torn files) and promote its follower.
	owner.stop()
	if err := coord.Fail(ownerID); err != nil {
		t.Fatalf("failover: %v", err)
	}

	// A write acknowledged during the failover — the data a zombie resync
	// would destroy.
	mustEventually(t, "post-failover write", func() error {
		return client.SyncProfile(chaosProfile(uid, d2))
	})

	// Restart the dead node over its old directories. Its flags still say
	// ring v1; the boot-time peer fetch must hand it the failover ring.
	owner.restart()
	if got, want := owner.cn.Ring().Version, coord.Ring().Version; got != want {
		t.Fatalf("zombie booted onto ring v%d, coordinator at v%d", got, want)
	}

	// Its shipper still arms a resync (its v2 follower is its heir), but
	// the heir's admission check refuses the stream: the sender is failed
	// over under the current ring. Nothing of the heir's data moves.
	followerID, ok := coord.Ring().FollowerID(ownerID)
	if !ok {
		t.Fatalf("no v2 follower for %s", ownerID)
	}
	target := durableNodeByID(t, nodes, followerID)
	waitFor(t, "zombie resync refused", func() bool {
		return target.reg.Counter("pci_repl_batches_rejected_total").Value() >= 1
	})

	// Both acked writes still read back intact through the cluster.
	verifyProfiles := func(stage string) {
		t.Helper()
		var got []*profile.DayProfile
		mustEventually(t, stage+" read-back", func() error {
			var err error
			got, err = client.ProfileRange("2014-08-01", "2014-08-28")
			return err
		})
		if len(got) != 2 || got[0].Date != d1 || got[1].Date != d2 {
			t.Fatalf("%s: read %d profiles, want [%s %s]", stage, len(got), d1, d2)
		}
		for _, p := range got {
			want, _ := json.Marshal(chaosProfile(uid, p.Date))
			pj, _ := json.Marshal(p)
			if string(pj) != string(want) {
				t.Fatalf("%s: profile %s mutated:\ngot  %s\nwant %s", stage, p.Date, pj, want)
			}
		}
	}
	verifyProfiles("zombie")

	// The health loop probes taken-over members too: the restarted node
	// answers, is rejoined, and the heir hands the ranges back.
	coord.StartHealth(25*time.Millisecond, 20)
	waitFor(t, "rejoin", func() bool {
		r := coord.Ring()
		return r.Alive(ownerID) && owner.cn.Ring().Version == r.Version
	})
	waitFor(t, "handoff back", func() bool {
		return coord.Ring().PrimaryID(uid) != ownerID ||
			durableNodeByID(t, nodes, heirID).reg.Counter("pci_cluster_handoff_users_total").Value() >= 1
	})
	verifyProfiles("post-rejoin")

	// The rejoined ring has no takeover left and every node converged.
	if to := coord.Ring().Takeover; len(to) != 0 {
		t.Fatalf("takeover entries survive rejoin: %v", to)
	}
	for _, n := range nodes {
		if got := n.cn.Ring().Version; got != coord.Ring().Version {
			t.Fatalf("node %s at ring v%d, coordinator at v%d", n.id, got, coord.Ring().Version)
		}
	}
}

// TestClusterHandoffConcurrentWritesNoLoss races writers against a Leave
// handoff: every write the cluster acknowledges must be readable afterward.
// This is the export→drop atomicity claim — before handoff ran under the
// write gate, a write landing between the export snapshot and the local
// drop was acknowledged and then deleted; a writer parked on the gate
// during the drop is refused (421) and lands on the new owner instead.
func TestClusterHandoffConcurrentWritesNoLoss(t *testing.T) {
	const users = 6
	nodes := startChaosCluster(t, 3)
	urls := []string{nodes[0].url, nodes[1].url, nodes[2].url}
	coord := cluster.NewCoordinator([]cluster.Node{
		{ID: nodes[0].id, URL: nodes[0].url},
		{ID: nodes[1].id, URL: nodes[1].url},
		{ID: nodes[2].id, URL: nodes[2].url},
	}, cluster.DefaultVNodes, nil, t.Logf)
	defer coord.Stop()

	type wuser struct {
		uid    string
		client *Client
		acked  []string // dates whose SyncProfile was acknowledged
	}
	ws := make([]*wuser, users)
	for i := range ws {
		imei := fmt.Sprintf("race-imei-%02d", i)
		email := fmt.Sprintf("race-%d@example.com", i)
		c := NewClient(urls[i%len(urls)], imei, email, &http.Client{Timeout: 5 * time.Second},
			WithCluster(urls),
			WithRetryPolicy(RetryPolicy{MaxAttempts: 4, BaseDelay: 2 * time.Millisecond}))
		if err := c.Register(); err != nil {
			t.Fatal(err)
		}
		ws[i] = &wuser{uid: StableUserID(imei, email), client: c}
	}
	// Leave a node that owns at least one of the users, so its handoff
	// races the writers.
	leaverID := nodes[0].cn.Ring().PrimaryID(ws[0].uid)
	leaver := clusterNodeByID(t, nodes, leaverID)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, u := range ws {
		wg.Add(1)
		go func(u *wuser) {
			defer wg.Done()
			for day := 1; day <= 28; day++ {
				select {
				case <-stop:
					return
				default:
				}
				date := fmt.Sprintf("2014-07-%02d", day)
				if err := u.client.SyncProfile(chaosProfile(u.uid, date)); err == nil {
					u.acked = append(u.acked, date)
				}
				time.Sleep(2 * time.Millisecond)
			}
		}(u)
	}

	time.Sleep(20 * time.Millisecond)
	if err := coord.Leave(leaverID); err != nil {
		t.Fatalf("leave: %v", err)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()

	if got := leaver.reg.Counter("pci_cluster_handoff_users_total").Value(); got < 1 {
		t.Fatalf("leaver handed off %d users, want >= 1 (race never exercised handoff)", got)
	}

	// Every acknowledged write reads back byte-identical through the
	// post-leave cluster.
	totalAcked := 0
	for _, u := range ws {
		totalAcked += len(u.acked)
		var got []*profile.DayProfile
		mustEventually(t, "read-back "+u.uid, func() error {
			var err error
			got, err = u.client.ProfileRange("2014-07-01", "2014-07-28")
			return err
		})
		have := map[string]*profile.DayProfile{}
		for _, p := range got {
			have[p.Date] = p
		}
		for _, date := range u.acked {
			p, ok := have[date]
			if !ok {
				t.Fatalf("user %s: acked write %s lost after handoff", u.uid, date)
			}
			want, _ := json.Marshal(chaosProfile(u.uid, date))
			pj, _ := json.Marshal(p)
			if string(pj) != string(want) {
				t.Fatalf("user %s: profile %s mutated:\ngot  %s\nwant %s", u.uid, date, pj, want)
			}
		}
	}
	if totalAcked == 0 {
		t.Fatal("no write was ever acknowledged; the race is vacuous")
	}
	t.Logf("handoff race: %d acked writes across %d users, all intact", totalAcked, users)
}
