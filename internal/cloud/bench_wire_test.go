package cloud

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/gsm"
	"repro/internal/profile"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// The benchmarks behind BENCH_serving.json's wire_efficiency section
// (ISSUE 8 acceptance): each pair measures one hot route's body codec — the
// reflective JSON wire against the negotiated binary codec — at the codec
// layer, where the bytes-on-the-wire and allocation deltas are not drowned by
// net/http's per-request overhead (which both codecs pay identically). The
// equivalence property in wire_test.go holds the two representations
// interchangeable. Run with:
//
//	go test ./internal/cloud -run '^$' -bench Wire -benchmem

// wireDiscoverFixture is a realistic delta-sync response: the places GCA
// actually discovers over a week of the synthetic trace.
func wireDiscoverFixture() *DiscoverPlacesResponse {
	obs := synthDays(7)
	res := gsm.Discover(obs, gsm.DefaultParams())
	resp := &DiscoverPlacesResponse{TraceLen: int64(len(obs)), TraceHash: TraceHash(obs)}
	for _, p := range res.Places {
		resp.Places = append(resp.Places, PlaceToWire(p))
	}
	return resp
}

func benchEncodeJSON(b *testing.B, msg any) {
	b.ReportAllocs()
	var size int
	for i := 0; i < b.N; i++ {
		data, err := json.Marshal(msg)
		if err != nil {
			b.Fatal(err)
		}
		size = len(data)
	}
	b.ReportMetric(float64(size), "bodybytes/op")
}

func benchEncodeBinary(b *testing.B, msg any) {
	b.ReportAllocs()
	var buf []byte
	for i := 0; i < b.N; i++ {
		var ok bool
		buf, ok = appendWire(buf[:0], msg)
		if !ok {
			b.Fatalf("no binary codec for %T", msg)
		}
	}
	b.ReportMetric(float64(len(buf)), "bodybytes/op")
}

func benchDecodeJSON(b *testing.B, msg any, mk func() any) {
	data, err := json.Marshal(msg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := json.Unmarshal(data, mk()); err != nil {
			b.Fatal(err)
		}
	}
}

func benchDecodeBinary(b *testing.B, msg any, mk func() any) {
	data, ok := appendWire(nil, msg)
	if !ok {
		b.Fatalf("no binary codec for %T", msg)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := decodeWire(data, mk()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- route 1: delta trace sync (DiscoverPlacesResponse) -------------------

func BenchmarkWireDiscoverEncodeJSON(b *testing.B) { benchEncodeJSON(b, wireDiscoverFixture()) }
func BenchmarkWireDiscoverEncodeBinary(b *testing.B) {
	benchEncodeBinary(b, wireDiscoverFixture())
}
func BenchmarkWireDiscoverDecodeJSON(b *testing.B) {
	benchDecodeJSON(b, wireDiscoverFixture(), func() any { return &DiscoverPlacesResponse{} })
}
func BenchmarkWireDiscoverDecodeBinary(b *testing.B) {
	benchDecodeBinary(b, wireDiscoverFixture(), func() any { return &DiscoverPlacesResponse{} })
}

// --- route 2: profile upload/range ([]*profile.DayProfile) ----------------

func BenchmarkWireProfileRangeEncodeJSON(b *testing.B) { benchEncodeJSON(b, synthProfiles(7)) }
func BenchmarkWireProfileRangeEncodeBinary(b *testing.B) {
	benchEncodeBinary(b, synthProfiles(7))
}
func BenchmarkWireProfileRangeDecodeJSON(b *testing.B) {
	benchDecodeJSON(b, synthProfiles(7), func() any { return &[]*profile.DayProfile{} })
}
func BenchmarkWireProfileRangeDecodeBinary(b *testing.B) {
	benchDecodeBinary(b, synthProfiles(7), func() any { return &[]*profile.DayProfile{} })
}

// BenchmarkWireProfileRangeServe* measure the whole serving path, store to
// body bytes: the JSON route deep-clones the window then reflects over it;
// the binary route encodes straight out of the store under the read lock
// into a reused buffer.
func BenchmarkWireProfileRangeServeJSON(b *testing.B) {
	s := servingStore(b)
	from := simclock.Epoch.AddDate(0, 0, 100).Format(profile.DateFormat)
	to := simclock.Epoch.AddDate(0, 0, 106).Format(profile.DateFormat)
	b.ReportAllocs()
	b.ResetTimer()
	var size int
	for i := 0; i < b.N; i++ {
		data, err := json.Marshal(s.ProfileRange("u-serving", from, to))
		if err != nil {
			b.Fatal(err)
		}
		size = len(data)
	}
	b.ReportMetric(float64(size), "bodybytes/op")
}

func BenchmarkWireProfileRangeServeBinary(b *testing.B) {
	s := servingStore(b)
	from := simclock.Epoch.AddDate(0, 0, 100).Format(profile.DateFormat)
	to := simclock.Epoch.AddDate(0, 0, 106).Format(profile.DateFormat)
	b.ReportAllocs()
	b.ResetTimer()
	var e trace.BinaryEncoder
	for i := 0; i < b.N; i++ {
		e.Buf = append(e.Buf[:0], wireVersion, wireKindProfileRange)
		s.viewProfileRange("u-serving", from, to,
			func(n int) { e.Uvarint(uint64(n)) },
			func(p *profile.DayProfile) { appendProfileBody(&e, p) })
	}
	b.ReportMetric(float64(len(e.Buf)), "bodybytes/op")
}

// --- route 3: indexed analytics reads -------------------------------------

var wireDwellFixture = &DwellStatsResponse{
	PlaceID: "home", Visits: 365, MeanStaySec: 46980, MedianStaySec: 47100, LongestStaySec: 86400,
}

func BenchmarkWireAnalyticsEncodeJSON(b *testing.B) { benchEncodeJSON(b, wireDwellFixture) }
func BenchmarkWireAnalyticsEncodeBinary(b *testing.B) {
	benchEncodeBinary(b, wireDwellFixture)
}
func BenchmarkWireAnalyticsDecodeJSON(b *testing.B) {
	benchDecodeJSON(b, wireDwellFixture, func() any { return &DwellStatsResponse{} })
}
func BenchmarkWireAnalyticsDecodeBinary(b *testing.B) {
	benchDecodeBinary(b, wireDwellFixture, func() any { return &DwellStatsResponse{} })
}

// --- request side: streamed observation upload ----------------------------

func BenchmarkWireObsStreamEncodeJSON(b *testing.B) {
	obs := synthDays(1)
	b.ReportAllocs()
	var size int
	for i := 0; i < b.N; i++ {
		size = 0
		for start := 0; start < len(obs); start += DefaultStreamBatchSize {
			end := min(start+DefaultStreamBatchSize, len(obs))
			data, err := json.Marshal(StreamBatch{Observations: obs[start:end]})
			if err != nil {
				b.Fatal(err)
			}
			size += len(data) + 1 // newline per JSON stream batch
		}
	}
	b.ReportMetric(float64(size), "bodybytes/op")
}

func BenchmarkWireObsStreamEncodeBinary(b *testing.B) {
	obs := synthDays(1)
	b.ReportAllocs()
	var e trace.BinaryEncoder
	var frame []byte
	var size int
	for i := 0; i < b.N; i++ {
		size = 2 // version + kind header
		for start := 0; start < len(obs); start += DefaultStreamBatchSize {
			end := min(start+DefaultStreamBatchSize, len(obs))
			e.Reset(e.Buf)
			trace.AppendObservations(&e, obs[start:end])
			frame = appendWireFrame(frame[:0], e.Buf)
			size += len(frame)
		}
		size += len(wireFrameEnd)
	}
	b.ReportMetric(float64(size), "bodybytes/op")
}

// --- recorder --------------------------------------------------------------

// wireCodecSide is one codec's measured cost on one route.
type wireCodecSide struct {
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	AllocBPerOp int64 `json:"alloc_b_per_op"`
	BodyBytes   int64 `json:"body_bytes"`
	Iterations  int   `json:"iterations"`
}

// wireRouteRow is one before/after row of the wire_efficiency section.
type wireRouteRow struct {
	Route      string        `json:"route"`
	JSON       wireCodecSide `json:"json"`
	Binary     wireCodecSide `json:"binary"`
	ByteRatio  float64       `json:"byte_ratio"`
	AllocRatio float64       `json:"alloc_ratio"`
}

func measureWire(t *testing.T, fn func(b *testing.B)) wireCodecSide {
	t.Helper()
	r := testing.Benchmark(fn)
	return wireCodecSide{
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		AllocBPerOp: r.AllocedBytesPerOp(),
		BodyBytes:   int64(r.Extra["bodybytes/op"]),
		Iterations:  r.N,
	}
}

func ratio(num, den int64) float64 {
	if den == 0 {
		return float64(num) // vs zero: report the numerator as the factor
	}
	return float64(num) / float64(den)
}

// TestWireBenchRecord appends the wire_efficiency section to the JSON report
// named by WIRE_BENCH_OUT (normally BENCH_serving.json, merged in place so
// the serving rows survive). Skipped in normal test runs — measurement is
// not a correctness gate — but when run it enforces the ISSUE 8 floor:
// ≥ 5x fewer body bytes and ≥ 5x fewer encode allocations on all three
// routes.
func TestWireBenchRecord(t *testing.T) {
	out := os.Getenv("WIRE_BENCH_OUT")
	if out == "" {
		t.Skip("set WIRE_BENCH_OUT to record the wire codec benchmarks")
	}

	routes := []struct {
		name    string
		encJSON func(b *testing.B)
		encBin  func(b *testing.B)
	}{
		{"trace_sync_discover_response", BenchmarkWireDiscoverEncodeJSON, BenchmarkWireDiscoverEncodeBinary},
		{"profile_range_response", BenchmarkWireProfileRangeEncodeJSON, BenchmarkWireProfileRangeEncodeBinary},
		{"analytics_dwell_response", BenchmarkWireAnalyticsEncodeJSON, BenchmarkWireAnalyticsEncodeBinary},
		{"obs_stream_request", BenchmarkWireObsStreamEncodeJSON, BenchmarkWireObsStreamEncodeBinary},
	}

	section := struct {
		Recorded string         `json:"recorded"`
		Go       string         `json:"go_version"`
		Command  string         `json:"command"`
		Note     string         `json:"note"`
		Routes   []wireRouteRow `json:"routes"`
	}{
		Recorded: time.Now().UTC().Format("2006-01-02"),
		Go:       runtime.Version(),
		Command:  "WIRE_BENCH_OUT=BENCH_serving.json go test ./internal/cloud -run TestWireBenchRecord -v",
		Note: "Body codec cost per route, JSON vs negotiated application/x-pmware-bin " +
			"(encode into a reused pooled buffer). Ratios are JSON/binary; the first three " +
			"routes carry the ISSUE 8 acceptance floor of 5x on both columns. " +
			"TestWireRoundTripProperty holds the representations interchangeable.",
	}

	for _, rt := range routes {
		row := wireRouteRow{
			Route:  rt.name,
			JSON:   measureWire(t, rt.encJSON),
			Binary: measureWire(t, rt.encBin),
		}
		row.ByteRatio = ratio(row.JSON.BodyBytes, row.Binary.BodyBytes)
		row.AllocRatio = ratio(row.JSON.AllocsPerOp, row.Binary.AllocsPerOp)
		t.Logf("%s: %d -> %d body bytes (%.1fx), %d -> %d allocs/op (%.1fx), %d -> %d ns/op",
			rt.name, row.JSON.BodyBytes, row.Binary.BodyBytes, row.ByteRatio,
			row.JSON.AllocsPerOp, row.Binary.AllocsPerOp, row.AllocRatio,
			row.JSON.NsPerOp, row.Binary.NsPerOp)
		if rt.name != "obs_stream_request" {
			if row.ByteRatio < 5 {
				t.Errorf("%s: byte ratio %.2fx under the 5x floor", rt.name, row.ByteRatio)
			}
			if row.Binary.AllocsPerOp*5 > row.JSON.AllocsPerOp {
				t.Errorf("%s: alloc ratio %.2fx under the 5x floor", rt.name, row.AllocRatio)
			}
		}
		section.Routes = append(section.Routes, row)
	}

	// Merge into the existing report so the serving rows survive.
	report := map[string]json.RawMessage{}
	if data, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(data, &report); err != nil {
			t.Fatalf("existing %s is not a JSON object: %v", out, err)
		}
	}
	blob, err := json.Marshal(section)
	if err != nil {
		t.Fatal(err)
	}
	report["wire_efficiency"] = blob
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
