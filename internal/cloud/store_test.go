package cloud

import (
	"path/filepath"
	"testing"
	"time"

	"repro/internal/profile"
	"repro/internal/simclock"
	"repro/internal/world"
)

func fixedNow(t time.Time) func() time.Time {
	return func() time.Time { return t }
}

func TestRegisterIssuesToken(t *testing.T) {
	s := NewStore(fixedNow(simclock.Epoch))
	resp, err := s.Register("imei-1", "a@b.c")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Token == "" || resp.UserID == "" {
		t.Fatal("empty token or user")
	}
	if !resp.ExpiresAt.Equal(simclock.Epoch.Add(TokenTTL)) {
		t.Errorf("expiry = %v", resp.ExpiresAt)
	}
	uid, err := s.Authenticate(resp.Token)
	if err != nil || uid != resp.UserID {
		t.Errorf("Authenticate = %q, %v", uid, err)
	}
	if s.UserCount() != 1 {
		t.Errorf("users = %d", s.UserCount())
	}
}

func TestRegisterSameDeviceSameUser(t *testing.T) {
	s := NewStore(fixedNow(simclock.Epoch))
	r1, _ := s.Register("imei-1", "a@b.c")
	r2, _ := s.Register("imei-1", "a@b.c")
	if r1.UserID != r2.UserID {
		t.Error("same device got two users")
	}
	if r1.Token == r2.Token {
		t.Error("re-registration should issue a fresh token")
	}
	r3, _ := s.Register("imei-2", "a@b.c")
	if r3.UserID == r1.UserID {
		t.Error("different device must get a different user (IMEI+email jointly identify)")
	}
}

func TestRegisterValidation(t *testing.T) {
	s := NewStore(fixedNow(simclock.Epoch))
	if _, err := s.Register("", "a@b.c"); err == nil {
		t.Error("empty imei accepted")
	}
	if _, err := s.Register("x", ""); err == nil {
		t.Error("empty email accepted")
	}
}

func TestTokenExpiry(t *testing.T) {
	now := simclock.Epoch
	s := NewStore(func() time.Time { return now })
	resp, _ := s.Register("imei-1", "a@b.c")

	now = now.Add(TokenTTL - time.Minute)
	if _, err := s.Authenticate(resp.Token); err != nil {
		t.Error("token expired early")
	}
	now = now.Add(2 * time.Minute)
	if _, err := s.Authenticate(resp.Token); err == nil {
		t.Error("expired token accepted")
	}
}

func TestRefreshRotatesToken(t *testing.T) {
	now := simclock.Epoch
	s := NewStore(func() time.Time { return now })
	reg, _ := s.Register("imei-1", "a@b.c")

	ref, err := s.Refresh(reg.Token)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Token == reg.Token {
		t.Error("refresh returned the same token")
	}
	if _, err := s.Authenticate(reg.Token); err == nil {
		t.Error("old token survives refresh")
	}
	if uid, err := s.Authenticate(ref.Token); err != nil || uid != reg.UserID {
		t.Error("new token invalid")
	}
	// Refreshing an expired token fails.
	now = now.Add(2 * TokenTTL)
	if _, err := s.Refresh(ref.Token); err == nil {
		t.Error("expired token refreshed")
	}
}

func TestPlacesRoundTripAndLabels(t *testing.T) {
	s := NewStore(fixedNow(simclock.Epoch))
	places := []PlaceWire{
		{ID: 0, Cells: []world.CellID{{MCC: 404, MNC: 10, LAC: 1, CID: 5}}},
		{ID: 1},
	}
	s.SetPlaces("u1", places)
	if err := s.LabelPlace("u1", 0, "Home"); err != nil {
		t.Fatal(err)
	}
	if err := s.LabelPlace("u1", 9, "X"); err == nil {
		t.Error("labeling unknown place accepted")
	}
	got := s.Places("u1")
	if len(got) != 2 || got[0].Label != "Home" {
		t.Errorf("places = %+v", got)
	}
	// Re-discovery replaces places but keeps labels by ID.
	s.SetPlaces("u1", []PlaceWire{{ID: 0}, {ID: 1}, {ID: 2}})
	got = s.Places("u1")
	if got[0].Label != "Home" {
		t.Error("label lost across re-discovery")
	}
	if len(s.Places("other")) != 0 {
		t.Error("cross-user leak")
	}
}

func TestProfilesCRUD(t *testing.T) {
	s := NewStore(fixedNow(simclock.Epoch))
	mk := func(date string) *profile.DayProfile {
		day, _ := time.Parse(profile.DateFormat, date)
		return &profile.DayProfile{
			UserID: "u1", Date: date,
			Places: []profile.PlaceVisit{{PlaceID: "p0", Arrive: day.Add(8 * time.Hour), Depart: day.Add(9 * time.Hour)}},
		}
	}
	for _, d := range []string{"2014-09-03", "2014-09-01", "2014-09-02"} {
		if err := s.PutProfile("u1", mk(d)); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.Profile("u1", "2014-09-02"); !ok {
		t.Error("profile missing")
	}
	if _, ok := s.Profile("u1", "2014-09-09"); ok {
		t.Error("phantom profile")
	}
	all := s.ProfileRange("u1", "", "")
	if len(all) != 3 || all[0].Date != "2014-09-01" {
		t.Errorf("range = %d, first %s", len(all), all[0].Date)
	}
	some := s.ProfileRange("u1", "2014-09-02", "2014-09-02")
	if len(some) != 1 {
		t.Errorf("bounded range = %d", len(some))
	}
	// Invalid profile rejected.
	bad := mk("2014-09-04")
	bad.Places[0].Depart = bad.Places[0].Arrive
	if err := s.PutProfile("u1", bad); err == nil {
		t.Error("invalid profile stored")
	}
	if err := s.PutProfile("u1", nil); err == nil {
		t.Error("nil profile stored")
	}
}

func TestContacts(t *testing.T) {
	s := NewStore(fixedNow(simclock.Epoch))
	s.AddContacts("u1", []profile.Encounter{
		{ContactID: "u2", PlaceID: "work", Start: simclock.Epoch, End: simclock.Epoch.Add(time.Hour)},
		{ContactID: "u3", PlaceID: "cafe", Start: simclock.Epoch, End: simclock.Epoch.Add(time.Hour)},
	})
	if got := s.Contacts("u1", ""); len(got) != 2 {
		t.Errorf("all contacts = %d", len(got))
	}
	if got := s.Contacts("u1", "work"); len(got) != 1 || got[0].ContactID != "u2" {
		t.Errorf("work contacts = %v", got)
	}
}

func TestRoutesMinFrequency(t *testing.T) {
	s := NewStore(fixedNow(simclock.Epoch))
	s.SetRoutes("u1", []RouteWire{
		{ID: 0, Trips: []VisitWire{{}, {}, {}}},
		{ID: 1, Trips: []VisitWire{{}}},
	})
	if got := s.Routes("u1", 0); len(got) != 2 {
		t.Errorf("all routes = %d", len(got))
	}
	if got := s.Routes("u1", 2); len(got) != 1 || got[0].ID != 0 {
		t.Errorf("frequent routes = %v", got)
	}
}

func TestSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.json")

	s := NewStore(fixedNow(simclock.Epoch))
	reg, _ := s.Register("imei-1", "a@b.c")
	s.SetPlaces(reg.UserID, []PlaceWire{{ID: 0, Label: "Home"}})
	day, _ := time.Parse(profile.DateFormat, "2014-09-01")
	_ = s.PutProfile(reg.UserID, &profile.DayProfile{
		UserID: reg.UserID, Date: "2014-09-01",
		Places: []profile.PlaceVisit{{PlaceID: "p0", Arrive: day.Add(time.Hour), Depart: day.Add(2 * time.Hour)}},
	})
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}

	s2 := NewStore(fixedNow(simclock.Epoch))
	if err := s2.Load(path); err != nil {
		t.Fatal(err)
	}
	if s2.UserCount() != 1 {
		t.Error("users not restored")
	}
	if got := s2.Places(reg.UserID); len(got) != 1 || got[0].Label != "Home" {
		t.Error("places not restored")
	}
	if _, ok := s2.Profile(reg.UserID, "2014-09-01"); !ok {
		t.Error("profiles not restored")
	}
	// Tokens do not survive.
	if _, err := s2.Authenticate(reg.Token); err == nil {
		t.Error("token survived persistence")
	}
	// Same device re-registers to the same user.
	reg2, _ := s2.Register("imei-1", "a@b.c")
	if reg2.UserID != reg.UserID {
		t.Error("device identity lost across persistence")
	}
	// Load errors.
	if err := s2.Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("loading missing file should fail")
	}
}
