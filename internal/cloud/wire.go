package cloud

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"mime"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/profile"
	"repro/internal/trace"
	"repro/internal/world"
)

// Binary wire codec (DESIGN.md §14). The paper's communication-management
// module assumes phones on intermittent cellular links, where every byte of
// PMS↔PCI traffic costs energy; reflective JSON spends most of its bytes on
// field names and RFC 3339 timestamps. This file promotes the compact trace
// codec (internal/trace/binary.go) to the wire via content negotiation:
//
//   - A client that wants binary sends Content-Type and/or Accept
//     application/x-pmware-bin. Anything else — including no header at all —
//     is the JSON path, byte-for-byte what it always was, so old and new
//     peers interoperate without a protocol flag day.
//   - Every binary message opens with a version byte and a message-kind
//     byte, so a route mix-up or codec drift fails loudly instead of
//     misparsing.
//   - Responses encode into sync.Pool-recycled buffers: the hot read routes
//     serve without an intermediate DTO slice or per-request allocation.
//   - Error bodies are ALWAYS JSON (ErrorResponse), whatever the request
//     codec — the client's error parsing predates negotiation and stays
//     uniform.
//
// Streamed bodies (trace sync, observation ingest) do not fit one buffer by
// design; they use CRC-framed observation blocks (uvarint length, CRC-32
// IEEE of the payload, payload — the storage WAL idiom) so neither side
// buffers the whole history and truncation fails at a frame boundary.

// ContentTypeBinary is the negotiated binary media type.
const ContentTypeBinary = "application/x-pmware-bin"

// contentTypeJSON is the default media type.
const contentTypeJSON = "application/json"

// wireVersion is the current binary wire-format version, the first byte of
// every binary message.
const wireVersion = 1

// Message kinds — the second byte of every binary message.
const (
	wireKindDiscoverRequest  byte = 1
	wireKindDiscoverResponse byte = 2
	wireKindStreamResult     byte = 3
	wireKindProfile          byte = 4
	wireKindProfileRange     byte = 5
	wireKindPredictArrival   byte = 6
	wireKindPredictNext      byte = 7
	wireKindFrequency        byte = 8
	wireKindDwell            byte = 9
	wireKindObsStream        byte = 10
)

// maxWireFrame bounds one framed observation block on the streaming paths;
// a larger claim is corruption, not data.
const maxWireFrame = 8 << 20

// wireFrameObs is how many observations the client packs per frame on
// streamed binary uploads.
const wireFrameObs = 512

// errFrameEnd is the in-band end-of-frames marker (a zero-length frame).
var errFrameEnd = errors.New("cloud: end of frames")

// errWireTruncated reports a binary body that ended mid-message.
var errWireTruncated = errors.New("cloud: truncated binary body")

// maxPooledWireBuf caps the capacity of buffers returned to the pool, so one
// huge response does not pin its buffer forever.
const maxPooledWireBuf = 1 << 20

var wireBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

func getWireBuf() *[]byte { return wireBufPool.Get().(*[]byte) }

func putWireBuf(p *[]byte) {
	if cap(*p) <= maxPooledWireBuf {
		wireBufPool.Put(p)
	}
}

// readAllInto reads r to EOF appending into buf (reusing its capacity),
// returning the filled slice. io.ReadAll without the fresh allocation.
func readAllInto(buf []byte, r io.Reader) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

// acceptsBinary reports whether the request's Accept header asks for the
// binary media type: its q-value must be positive and at least as high as
// the best JSON-capable alternative (application/json, application/*, */*).
// No Accept header means JSON — the compatible default.
func acceptsBinary(r *http.Request) bool {
	values := r.Header.Values("Accept")
	if len(values) == 0 {
		return false
	}
	qBin, qJSON := -1.0, -1.0
	for _, hdr := range values {
		for _, part := range strings.Split(hdr, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			mt, params, err := mime.ParseMediaType(part)
			if err != nil {
				continue
			}
			q := 1.0
			if qs, ok := params["q"]; ok {
				f, err := strconv.ParseFloat(qs, 64)
				if err != nil || f < 0 {
					continue
				}
				q = f
			}
			switch mt {
			case ContentTypeBinary:
				qBin = max(qBin, q)
			case contentTypeJSON, "application/*", "*/*":
				qJSON = max(qJSON, q)
			}
		}
	}
	return qBin > 0 && qBin >= qJSON
}

// reqCodec classifies a request body's declared encoding.
type reqCodec int

const (
	codecJSON reqCodec = iota
	codecBinary
	codecUnknown
)

// requestCodec classifies the Content-Type header. An absent header is JSON
// (the historical default); an unparseable or foreign one is unknown, which
// negotiating handlers answer with 415.
func requestCodec(r *http.Request) reqCodec {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return codecJSON
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil {
		return codecUnknown
	}
	switch mt {
	case contentTypeJSON:
		return codecJSON
	case ContentTypeBinary:
		return codecBinary
	default:
		return codecUnknown
	}
}

// --- message codecs -------------------------------------------------------

// appendWire encodes msg as a binary wire message appended to dst. ok is
// false when the type has no binary codec (the caller falls back to JSON).
func appendWire(dst []byte, msg any) ([]byte, bool) {
	var e trace.BinaryEncoder
	e.Buf = append(dst, wireVersion)
	switch m := msg.(type) {
	case *DiscoverPlacesResponse:
		e.Byte(wireKindDiscoverResponse)
		appendDiscoverResponse(&e, m)
	case DiscoverPlacesResponse:
		e.Byte(wireKindDiscoverResponse)
		appendDiscoverResponse(&e, &m)
	case *StreamResult:
		e.Byte(wireKindStreamResult)
		appendStreamResult(&e, m)
	case StreamResult:
		e.Byte(wireKindStreamResult)
		appendStreamResult(&e, &m)
	case *profile.DayProfile:
		e.Byte(wireKindProfile)
		appendProfileBody(&e, m)
	case []*profile.DayProfile:
		e.Byte(wireKindProfileRange)
		e.Uvarint(uint64(len(m)))
		for _, p := range m {
			appendProfileBody(&e, p)
		}
	case *PredictArrivalResponse:
		e.Byte(wireKindPredictArrival)
		e.String(m.PlaceID)
		e.Varint(int64(m.TypicalArrivalSec))
		e.Varint(int64(m.SampleCount))
	case PredictArrivalResponse:
		return appendWire(dst, &m)
	case *PredictNextVisitResponse:
		e.Byte(wireKindPredictNext)
		e.String(m.PlaceID)
		e.Bool(m.Confident)
		// The zero time.Time predates the UnixNano range; carry presence
		// explicitly instead of a garbage delta.
		e.Bool(!m.NextVisit.IsZero())
		if !m.NextVisit.IsZero() {
			e.Time(m.NextVisit)
		}
	case PredictNextVisitResponse:
		return appendWire(dst, &m)
	case *FrequencyResponse:
		e.Byte(wireKindFrequency)
		e.String(m.PlaceID)
		e.Float64(m.VisitsPerWeek)
		e.Varint(int64(m.TotalVisits))
	case FrequencyResponse:
		return appendWire(dst, &m)
	case *DwellStatsResponse:
		e.Byte(wireKindDwell)
		e.String(m.PlaceID)
		e.Varint(int64(m.Visits))
		e.Varint(int64(m.MeanStaySec))
		e.Varint(int64(m.MedianStaySec))
		e.Varint(int64(m.LongestStaySec))
	case DwellStatsResponse:
		return appendWire(dst, &m)
	default:
		return dst, false
	}
	return e.Buf, true
}

// wireDecodable reports whether decodeWire can fill into — the client uses
// it to decide whether to offer Accept: application/x-pmware-bin.
func wireDecodable(into any) bool {
	switch into.(type) {
	case *DiscoverPlacesResponse, *StreamResult, *profile.DayProfile, *[]*profile.DayProfile,
		*PredictArrivalResponse, *PredictNextVisitResponse, *FrequencyResponse, *DwellStatsResponse:
		return true
	}
	return false
}

// decodeWire parses a binary wire message into the pointed-to value,
// verifying version and message kind. Decoded values never alias data — the
// buffer may be recycled the moment this returns.
func decodeWire(data []byte, into any) error {
	d := trace.NewBinaryDecoder(data)
	if v := d.Byte(); d.Err() == nil && v != wireVersion {
		return fmt.Errorf("cloud: unsupported wire version %d", v)
	}
	kind := d.Byte()
	var want byte
	switch v := into.(type) {
	case *DiscoverPlacesResponse:
		want = wireKindDiscoverResponse
		if kind == want {
			decodeDiscoverResponse(d, v)
		}
	case *StreamResult:
		want = wireKindStreamResult
		if kind == want {
			v.TraceLen = d.Varint()
			v.TraceHash = d.Fixed64()
			v.Appended = int(d.Uvarint())
			v.Events = int(d.Uvarint())
		}
	case *profile.DayProfile:
		want = wireKindProfile
		if kind == want {
			decodeProfileBody(d, v)
		}
	case *[]*profile.DayProfile:
		want = wireKindProfileRange
		if kind == want {
			n := d.Uvarint()
			var out []*profile.DayProfile
			for i := uint64(0); i < n && d.Err() == nil; i++ {
				p := &profile.DayProfile{}
				decodeProfileBody(d, p)
				out = append(out, p)
			}
			if d.Err() == nil {
				*v = out
			}
		}
	case *PredictArrivalResponse:
		want = wireKindPredictArrival
		if kind == want {
			v.PlaceID = d.String()
			v.TypicalArrivalSec = int(d.Varint())
			v.SampleCount = int(d.Varint())
		}
	case *PredictNextVisitResponse:
		want = wireKindPredictNext
		if kind == want {
			v.PlaceID = d.String()
			v.Confident = d.Bool()
			if d.Bool() {
				v.NextVisit = d.Time()
			} else {
				v.NextVisit = time.Time{}
			}
		}
	case *FrequencyResponse:
		want = wireKindFrequency
		if kind == want {
			v.PlaceID = d.String()
			v.VisitsPerWeek = d.Float64()
			v.TotalVisits = int(d.Varint())
		}
	case *DwellStatsResponse:
		want = wireKindDwell
		if kind == want {
			v.PlaceID = d.String()
			v.Visits = int(d.Varint())
			v.MeanStaySec = int(d.Varint())
			v.MedianStaySec = int(d.Varint())
			v.LongestStaySec = int(d.Varint())
		}
	default:
		return fmt.Errorf("cloud: no binary codec for %T", into)
	}
	if err := d.Err(); err != nil {
		return err
	}
	if kind != want {
		return fmt.Errorf("cloud: wire kind %d where %d expected", kind, want)
	}
	if d.Rest() != 0 {
		return fmt.Errorf("cloud: %d trailing bytes after wire message", d.Rest())
	}
	return nil
}

func appendDiscoverResponse(e *trace.BinaryEncoder, m *DiscoverPlacesResponse) {
	e.Uvarint(uint64(len(m.Places)))
	for i := range m.Places {
		p := &m.Places[i]
		e.Varint(int64(p.ID))
		appendCells(e, p.Signature)
		appendCells(e, p.Cells)
		e.Uvarint(uint64(len(p.Visits)))
		for _, v := range p.Visits {
			e.Time(v.Arrive)
			e.Time(v.Depart)
		}
		e.String(p.Label)
	}
	e.Varint(m.TraceLen)
	e.Fixed64(m.TraceHash)
}

func decodeDiscoverResponse(d *trace.BinaryDecoder, m *DiscoverPlacesResponse) {
	n := d.Uvarint()
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		var p PlaceWire
		p.ID = int(d.Varint())
		p.Signature = decodeCells(d)
		p.Cells = decodeCells(d)
		nv := d.Uvarint()
		for j := uint64(0); j < nv && d.Err() == nil; j++ {
			var v VisitWire
			v.Arrive = d.Time()
			v.Depart = d.Time()
			p.Visits = append(p.Visits, v)
		}
		p.Label = d.String()
		if d.Err() == nil {
			m.Places = append(m.Places, p)
		}
	}
	m.TraceLen = d.Varint()
	m.TraceHash = d.Fixed64()
}

func appendStreamResult(e *trace.BinaryEncoder, m *StreamResult) {
	e.Varint(m.TraceLen)
	e.Fixed64(m.TraceHash)
	e.Uvarint(uint64(m.Appended))
	e.Uvarint(uint64(m.Events))
}

// appendCells encodes a cell list with per-field deltas against the previous
// cell in the list (a place signature's cells share MCC/MNC and usually LAC,
// so most entries cost a few bytes).
func appendCells(e *trace.BinaryEncoder, cells []world.CellID) {
	e.Uvarint(uint64(len(cells)))
	var prev world.CellID
	for _, c := range cells {
		e.Varint(int64(c.MCC - prev.MCC))
		e.Varint(int64(c.MNC - prev.MNC))
		e.Varint(int64(c.LAC - prev.LAC))
		e.Varint(int64(c.CID - prev.CID))
		prev = c
	}
}

func decodeCells(d *trace.BinaryDecoder) []world.CellID {
	n := d.Uvarint()
	if d.Err() != nil || n == 0 {
		return nil
	}
	out := make([]world.CellID, 0, min(int(n), d.Rest()/4+1))
	var prev world.CellID
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		var c world.CellID
		c.MCC = prev.MCC + int(d.Varint())
		c.MNC = prev.MNC + int(d.Varint())
		c.LAC = prev.LAC + int(d.Varint())
		c.CID = prev.CID + int(d.Varint())
		if d.Err() != nil {
			return nil
		}
		prev = c
		out = append(out, c)
	}
	return out
}

// wireTimeChain delta-encodes a run of timestamps that are overwhelmingly
// whole seconds (profile visits, route uses, encounters): when both the
// previous and current instant sit on a second boundary the delta travels at
// seconds scale — a working day is three varint bytes instead of seven at
// nanoseconds scale — with a per-value flag falling back to nanoseconds for
// anything finer. Each profile body gets its own chain, so range entries
// decode independently of their neighbours.
type wireTimeChain struct{ lastNs int64 }

func (c *wireTimeChain) put(e *trace.BinaryEncoder, t time.Time) {
	ns := t.UnixNano()
	if ns%int64(time.Second) == 0 && c.lastNs%int64(time.Second) == 0 {
		e.Bool(true)
		e.Varint((ns - c.lastNs) / int64(time.Second))
	} else {
		e.Bool(false)
		e.Varint(ns - c.lastNs)
	}
	c.lastNs = ns
}

func (c *wireTimeChain) get(d *trace.BinaryDecoder) time.Time {
	seconds := d.Bool()
	delta := d.Varint()
	if seconds {
		delta *= int64(time.Second)
	}
	c.lastNs += delta
	return time.Unix(0, c.lastNs).UTC()
}

// appendProfileBody encodes one day profile.
func appendProfileBody(e *trace.BinaryEncoder, p *profile.DayProfile) {
	var tc wireTimeChain
	e.String(p.UserID)
	e.String(p.Date)
	e.Uvarint(uint64(len(p.Places)))
	for i := range p.Places {
		v := &p.Places[i]
		e.String(v.PlaceID)
		e.String(v.Label)
		tc.put(e, v.Arrive)
		tc.put(e, v.Depart)
	}
	e.Uvarint(uint64(len(p.Routes)))
	for i := range p.Routes {
		r := &p.Routes[i]
		e.String(r.RouteID)
		tc.put(e, r.Start)
		tc.put(e, r.End)
	}
	e.Uvarint(uint64(len(p.Contacts)))
	for i := range p.Contacts {
		c := &p.Contacts[i]
		e.String(c.ContactID)
		e.String(c.PlaceID)
		tc.put(e, c.Start)
		tc.put(e, c.End)
	}
	e.Bool(p.Activity != nil)
	if p.Activity != nil {
		e.Varint(int64(p.Activity.MovingMinutes))
		e.Varint(int64(p.Activity.StillMinutes))
	}
}

func decodeProfileBody(d *trace.BinaryDecoder, p *profile.DayProfile) {
	var tc wireTimeChain
	p.UserID = d.String()
	p.Date = d.String()
	np := d.Uvarint()
	for i := uint64(0); i < np && d.Err() == nil; i++ {
		var v profile.PlaceVisit
		v.PlaceID = d.String()
		v.Label = d.String()
		v.Arrive = tc.get(d)
		v.Depart = tc.get(d)
		p.Places = append(p.Places, v)
	}
	nr := d.Uvarint()
	for i := uint64(0); i < nr && d.Err() == nil; i++ {
		var r profile.RouteUse
		r.RouteID = d.String()
		r.Start = tc.get(d)
		r.End = tc.get(d)
		p.Routes = append(p.Routes, r)
	}
	nc := d.Uvarint()
	for i := uint64(0); i < nc && d.Err() == nil; i++ {
		var c profile.Encounter
		c.ContactID = d.String()
		c.PlaceID = d.String()
		c.Start = tc.get(d)
		c.End = tc.get(d)
		p.Contacts = append(p.Contacts, c)
	}
	if d.Bool() {
		p.Activity = &profile.ActivitySummary{
			MovingMinutes: int(d.Varint()),
			StillMinutes:  int(d.Varint()),
		}
	}
}

// --- framing for streamed bodies ------------------------------------------

// appendWireFrame frames one payload: uvarint length, CRC-32 IEEE of the
// payload (little-endian), payload.
func appendWireFrame(dst, payload []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	return append(dst, payload...)
}

// wireFrameEnd is the explicit end-of-frames marker: a zero length. A stream
// that ends without it was truncated — that is the point.
var wireFrameEnd = []byte{0}

// readWireFrame reads one frame into *scratch (grown as needed, reused
// across calls). Returns io.EOF cleanly at end-of-stream before any length
// byte, errFrameEnd on the explicit end marker, errWireTruncated when the
// stream dies mid-frame.
func readWireFrame(br *bufio.Reader, scratch *[]byte) ([]byte, error) {
	size, err := binary.ReadUvarint(br)
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, errWireTruncated
		}
		return nil, err
	}
	if size == 0 {
		return nil, errFrameEnd
	}
	if size > maxWireFrame {
		return nil, fmt.Errorf("cloud: frame of %d bytes exceeds limit", size)
	}
	var crcb [4]byte
	if _, err := io.ReadFull(br, crcb[:]); err != nil {
		return nil, frameReadErr(err)
	}
	buf := *scratch
	if uint64(cap(buf)) < size {
		buf = make([]byte, size)
		*scratch = buf
	}
	buf = buf[:size]
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, frameReadErr(err)
	}
	if crc := crc32.ChecksumIEEE(buf); crc != binary.LittleEndian.Uint32(crcb[:]) {
		return nil, errors.New("cloud: frame CRC mismatch")
	}
	return buf, nil
}

// frameReadErr maps mid-frame read failures to errWireTruncated while
// letting policy errors (http.MaxBytesError) through for 413 handling.
func frameReadErr(err error) error {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return err
	}
	if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
		return errWireTruncated
	}
	return err
}
