package cloud

import (
	"context"
	"errors"
	"math"
	"sync"
	"time"

	"repro/internal/gsm"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Default discovery pool sizing (overridable with WithDiscoverPool / the
// -discover-workers and -discover-queue flags).
const (
	DefaultDiscoverWorkers = 4
	DefaultDiscoverQueue   = 64
)

// pipeCacheCap bounds how many per-user incremental pipelines the pool keeps
// warm; least-recently-used entries are evicted and rebuilt from the
// persisted trace on the user's next discovery.
const pipeCacheCap = 512

// errDiscoverBusy maps to 429 + Retry-After: the queue is full and the
// client should back off.
var errDiscoverBusy = errors.New("cloud: discovery queue full")

// errDiscoverStopped reports a discovery interrupted by server shutdown.
var errDiscoverStopped = errors.New("cloud: discovery pool stopped")

// discoverMetrics is the discovery path's metric bundle (DESIGN.md §11).
//
// Family inventory:
//
//	pci_discover_queue_depth        gauge of jobs waiting for a worker
//	pci_discover_wait_us            queue wait latency histogram
//	pci_discover_run_us             discovery run latency histogram
//	pci_discover_memo_hits_total    requests answered from the result memo
//	pci_discover_coalesced_total    requests that joined an in-flight discovery
//	pci_discover_incremental_total  runs that extended a cached pipeline
//	pci_discover_full_total         runs that rebuilt the pipeline from scratch
//	pci_discover_rejected_total     requests refused with 429 (queue full)
//	pci_trace_appended_obs_total    observations appended by delta sync
//	pci_trace_conflicts_total       delta uploads rejected with 409
type discoverMetrics struct {
	queueDepth  *obs.Gauge
	waitUs      *obs.Histogram
	runUs       *obs.Histogram
	memoHits    *obs.Counter
	coalesced   *obs.Counter
	incremental *obs.Counter
	full        *obs.Counter
	rejected    *obs.Counter
	appended    *obs.Counter
	conflicts   *obs.Counter
}

func newDiscoverMetrics(reg *obs.Registry) *discoverMetrics {
	if reg == nil {
		reg = obs.Default()
	}
	return &discoverMetrics{
		queueDepth:  reg.Gauge("pci_discover_queue_depth"),
		waitUs:      reg.Histogram("pci_discover_wait_us", obs.DefaultLatencyBuckets()),
		runUs:       reg.Histogram("pci_discover_run_us", obs.DefaultLatencyBuckets()),
		memoHits:    reg.Counter("pci_discover_memo_hits_total"),
		coalesced:   reg.Counter("pci_discover_coalesced_total"),
		incremental: reg.Counter("pci_discover_incremental_total"),
		full:        reg.Counter("pci_discover_full_total"),
		rejected:    reg.Counter("pci_discover_rejected_total"),
		appended:    reg.Counter("pci_trace_appended_obs_total"),
		conflicts:   reg.Counter("pci_trace_conflicts_total"),
	}
}

// discoverFlight is one in-progress discovery for a user. Concurrent
// requests for the same user join it instead of queueing duplicate work;
// gen/len record the trace position the run actually covered (set before
// done closes).
type discoverFlight struct {
	done chan struct{}
	err  error
	gen  uint64
	len  int64
}

type discoverJob struct {
	uid    string
	flight *discoverFlight
	enq    time.Time
}

// discoverMemo records the trace position whose discovery result is already
// in the store, so a retry (or any request not past that position) is
// answered without recomputation.
type discoverMemo struct {
	gen uint64
	len int64
}

// pipeEntry is one user's cached incremental pipeline, valid for a single
// trace replace generation.
type pipeEntry struct {
	gen  uint64
	pipe *gsm.Pipeline
	seq  uint64 // last-use ordinal for LRU eviction
}

// discoverPool runs offloaded GCA on a bounded worker pool instead of the
// HTTP handler goroutine: a full queue turns into 429 backpressure rather
// than unbounded goroutines, per-user single-flight dedups concurrent
// requests, a (user, trace position) memo makes client retries free, and a
// per-user cached gsm.Pipeline makes nightly re-discovery cost O(new data).
type discoverPool struct {
	store  *Store
	params gsm.Params
	m      *discoverMetrics

	queue   chan *discoverJob
	stopped chan struct{}
	wg      sync.WaitGroup

	mu      sync.Mutex
	flights map[string]*discoverFlight
	memo    map[string]discoverMemo
	pipes   map[string]*pipeEntry
	seq     uint64

	// testHook, when set, runs in the worker before each job — the seam the
	// backpressure tests use to hold workers while the queue fills.
	testHook func(uid string)
}

func newDiscoverPool(store *Store, params gsm.Params, workers, queueLen int, m *discoverMetrics) *discoverPool {
	if workers <= 0 {
		workers = DefaultDiscoverWorkers
	}
	if queueLen <= 0 {
		queueLen = DefaultDiscoverQueue
	}
	p := &discoverPool{
		store:   store,
		params:  params,
		m:       m,
		queue:   make(chan *discoverJob, queueLen),
		stopped: make(chan struct{}),
		flights: map[string]*discoverFlight{},
		memo:    map[string]discoverMemo{},
		pipes:   map[string]*pipeEntry{},
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// close stops the workers. Queued jobs are abandoned; their waiters receive
// errDiscoverStopped.
func (p *discoverPool) close() {
	close(p.stopped)
	p.wg.Wait()
}

// discover returns the user's places for at least the given trace position,
// running (or joining, or memo-skipping) a discovery as needed.
func (p *discoverPool) discover(ctx context.Context, uid string, want TraceStatus) ([]PlaceWire, error) {
	for {
		p.mu.Lock()
		if m, ok := p.memo[uid]; ok && m.gen == want.Gen && m.len >= want.Len {
			p.mu.Unlock()
			p.m.memoHits.Inc()
			return p.store.Places(uid), nil
		}
		f := p.flights[uid]
		if f == nil {
			f = &discoverFlight{done: make(chan struct{})}
			job := &discoverJob{uid: uid, flight: f, enq: time.Now()}
			select {
			case p.queue <- job:
				p.flights[uid] = f
				p.m.queueDepth.Inc()
			default:
				p.mu.Unlock()
				p.m.rejected.Inc()
				return nil, errDiscoverBusy
			}
			p.mu.Unlock()
		} else {
			p.mu.Unlock()
			p.m.coalesced.Inc()
		}

		select {
		case <-f.done:
		case <-p.stopped:
			return nil, errDiscoverStopped
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if f.err != nil {
			return nil, f.err
		}
		if f.gen == want.Gen && f.len >= want.Len {
			return p.store.Places(uid), nil
		}
		// The finished flight predates this request's trace sync (another
		// upload replaced or extended the trace while it queued): go again.
		// Generations and lengths only move forward, so this terminates.
	}
}

func (p *discoverPool) worker() {
	defer p.wg.Done()
	for {
		select {
		case <-p.stopped:
			return
		case job := <-p.queue:
			p.m.queueDepth.Dec()
			p.m.waitUs.ObserveDuration(time.Since(job.enq))
			p.runJob(job)
		}
	}
}

// runJob executes one discovery: extend (or rebuild) the user's pipeline
// from the persisted trace, store the places, publish the memo, release the
// flight. Single-flight guarantees one runJob per user at a time, so the
// pipeline checkout needs no further locking.
func (p *discoverPool) runJob(job *discoverJob) {
	if h := p.testHook; h != nil {
		h(job.uid)
	}
	start := time.Now()
	entry := p.takePipe(job.uid)
	var res *gsm.Result
	var gen uint64
	var traceLen int
	p.store.viewTrace(job.uid, func(obs []trace.GSMObservation, _ uint64, g uint64) {
		gen, traceLen = g, len(obs)
		if entry == nil || entry.gen != g || entry.pipe.Len() > len(obs) {
			// No cached pipeline for this trace generation (cold user, LRU
			// eviction, or a full replace invalidated it): rebuild.
			entry = &pipeEntry{gen: g, pipe: gsm.NewPipeline(p.params)}
			p.m.full.Inc()
		} else {
			p.m.incremental.Inc()
		}
		entry.pipe.Extend(obs[entry.pipe.Len():])
		res = entry.pipe.Result()
	})
	wire := make([]PlaceWire, 0, len(res.Places))
	for _, pl := range res.Places {
		wire = append(wire, PlaceToWire(pl))
	}
	err := p.store.SetPlaces(job.uid, wire)
	p.putPipe(job.uid, entry)
	p.m.runUs.ObserveDuration(time.Since(start))

	f := job.flight
	f.err = err
	f.gen = gen
	f.len = int64(traceLen)
	p.mu.Lock()
	if err == nil {
		p.memo[job.uid] = discoverMemo{gen: gen, len: int64(traceLen)}
	}
	delete(p.flights, job.uid)
	p.mu.Unlock()
	close(f.done)
}

// takePipe checks the user's cached pipeline out of the cache (nil when
// absent). Checked-out entries are invisible to eviction.
func (p *discoverPool) takePipe(uid string) *pipeEntry {
	p.mu.Lock()
	defer p.mu.Unlock()
	e := p.pipes[uid]
	delete(p.pipes, uid)
	return e
}

// putPipe returns a pipeline to the cache, evicting the least recently used
// entry beyond the cap.
func (p *discoverPool) putPipe(uid string, e *pipeEntry) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.seq++
	e.seq = p.seq
	p.pipes[uid] = e
	if len(p.pipes) <= pipeCacheCap {
		return
	}
	victim := ""
	min := uint64(math.MaxUint64)
	for id, pe := range p.pipes {
		if pe.seq < min {
			min, victim = pe.seq, id
		}
	}
	delete(p.pipes, victim)
}
