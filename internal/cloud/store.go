package cloud

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"slices"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/storage"
)

// TokenTTL is how long an issued token stays valid before the mobile service
// must refresh it (Section 2.2.1: "the authentication token is refreshed
// periodically based on its expiry time").
const TokenTTL = 24 * time.Hour

// DefaultShards is the data-shard count when none is configured. User state
// is hashed across the shards, each with its own lock and write-ahead log,
// so concurrent uploads from different users do not serialize.
const DefaultShards = 8

// User is a registered device/account pair.
type User struct {
	ID    string `json:"id"`
	IMEI  string `json:"imei"`
	Email string `json:"email"`
}

type tokenInfo struct {
	UserID    string    `json:"user_id"`
	ExpiresAt time.Time `json:"expires_at"`
}

// Store is the cloud instance's state: users, tokens, places, routes,
// profiles, and contacts. Safe for concurrent use.
//
// Store is a thin typed layer over the sharded storage engine
// (internal/storage): every mutation is journaled as a WAL record on the
// owning shard and replayed on startup, so an acknowledged write survives a
// crash (under the engine's fsync policy). Shard 0 holds the registration
// keyspace (users, device index); per-user data is hashed across the
// remaining shards. Tokens are deliberately in-memory only — they never
// survive a restart, devices re-register (matching the paper's token
// refresh flow).
type Store struct {
	eng  *storage.Engine
	meta *metaState
	data []*dataState

	// The per-user GSM trace keyspace (the delta sync substrate) lives in
	// its own engine under <data-dir>/traces: existing data directories keep
	// their manifest-pinned shard layout untouched, and trace churn never
	// competes with place/profile writes for a WAL.
	traceEng *storage.Engine
	traces   []*traceState

	tokenMu sync.RWMutex
	tokens  map[string]tokenInfo

	// gate is the store-wide write gate cluster resync/handoff exports cut
	// their consistent snapshots under: every mutation path holds it for
	// read, an export holds it for write, freezing the replication stream
	// position relative to state. Uncontended in single-node mode.
	gate sync.RWMutex

	// stableIDs derives user IDs from the device key instead of a
	// registration counter, so any cluster node (and the client itself)
	// computes the same routing key for a device without coordination.
	stableIDs bool

	// owns, when set (cluster mode), re-checks user ownership under the
	// write gate on every primary mutation. The HTTP ownership gate runs
	// before the handler; the ring can change — and a handoff can export
	// and drop the user — between that check and the store apply, and a
	// write acknowledged after the drop would live on a node no reader is
	// ever routed to. Mutations for users this node handed off (see moved)
	// and still does not own fail with ErrNotOwner instead, and the client
	// retries at the new owner. Set once before the node serves traffic;
	// nil means own everything.
	owns func(userID string) bool

	// moved tombstones users this node handed off to a new owner. The
	// refusal above is gated on it so only the actual loss window — a
	// write that raced the export→drop of its user — is refused; keyless
	// (pre-cluster) traffic for users that never moved keeps its
	// served-where-it-lands contract. Entries are cleared when a ring
	// version makes this node the user's owner again (the handoff back
	// re-imports the data). Guarded by movedMu, not the gate: readers
	// check it under gate.RLock while drops write it under gate.Lock, but
	// ring adoption clears it outside any gate hold.
	movedMu sync.Mutex
	moved   map[string]struct{}

	now func() time.Time

	obsReg       *obs.Registry
	idxHits      *obs.Counter // analytics_index_hits_total
	idxFallbacks *obs.Counter // analytics_index_fallbacks_total
}

// StoreConfig configures a durable store opened with OpenStore.
type StoreConfig struct {
	// Shards is the data-shard count (default DefaultShards). Ignored when
	// the data directory already exists: the persisted layout wins.
	Shards int
	// Sync is the WAL fsync policy (default storage.SyncAlways).
	Sync storage.SyncPolicy
	// SyncEvery is the storage.SyncInterval period (default 100ms).
	SyncEvery time.Duration
	// CompactEvery snapshots a shard after this many journaled records
	// (default storage.DefaultCompactEvery; negative disables).
	CompactEvery int
	// CommitMaxBatch caps how many concurrent mutations one WAL group commit
	// may coalesce (default storage.DefaultCommitMaxBatch; negative disables
	// grouping — every record pays its own write+fsync).
	CommitMaxBatch int
	// CommitLinger is how long a commit leader waits for followers when its
	// batch is short (default 0: the fsync latency is the batching window).
	CommitLinger time.Duration
	// RecoverWorkers bounds how many shards boot recovery (and close)
	// processes concurrently (default 0: min(shards, max(2, GOMAXPROCS));
	// 1 forces serial recovery).
	RecoverWorkers int
	// Now is the time source (nil means time.Now; simulations inject the
	// virtual clock).
	Now func() time.Time
	// Metrics is the registry the store's storage_*, analytics_*, and
	// popular_* families register in (nil means the process-wide default).
	Metrics *obs.Registry
	// StableIDs derives user IDs from the device key (cluster mode) instead
	// of a registration counter, making placement computable client-side.
	StableIDs bool
	// Repl/TraceRepl receive every record journaled by the main and trace
	// engines for shipment to this node's follower (nil = unreplicated).
	Repl      storage.ReplSink
	TraceRepl storage.ReplSink
}

// plannedShards resolves the shard counts a store over dir would open with:
// the persisted manifests win over cfg.Shards, exactly as newStore decides.
// Cluster wiring calls this before the store exists, because the shipper
// must advertise the shard layout its stream was journaled under.
func plannedShards(dir string, cfg StoreConfig) (data, trace int, err error) {
	data = cfg.Shards
	if data <= 0 {
		data = DefaultShards
	}
	trace = -1
	if dir != "" {
		if n, ok, err := storage.ReadManifest(dir); err != nil {
			return 0, 0, err
		} else if ok {
			data = n - 1 // shard 0 is the registration keyspace
		}
		if n, ok, err := storage.ReadManifest(filepath.Join(dir, "traces")); err != nil {
			return 0, 0, err
		} else if ok {
			trace = n
		}
	}
	if trace < 0 {
		trace = data
	}
	return data, trace, nil
}

// NewStore returns an empty memory-only store using the given time source
// (nil means time.Now; simulations inject the virtual clock). State is still
// sharded for concurrency but nothing is journaled; use OpenStore for
// durability.
func NewStore(now func() time.Time) *Store {
	s, err := newStore("", StoreConfig{Now: now})
	if err != nil {
		// Memory-only construction touches no I/O and cannot fail.
		panic(fmt.Sprintf("cloud: memory store: %v", err))
	}
	return s
}

// OpenStore opens (creating if needed) a durable store rooted at dir,
// recovering state from its snapshots and write-ahead logs: torn WAL tails
// from a crash are truncated, every intact acknowledged write is replayed.
func OpenStore(dir string, cfg StoreConfig) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("cloud: OpenStore needs a data directory (use NewStore for memory-only)")
	}
	return newStore(dir, cfg)
}

func newStore(dir string, cfg StoreConfig) (*Store, error) {
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	// A pre-existing layout pins the shard counts: rehashing users across a
	// different count would strand their data on the wrong shards.
	shards, tshards, err := plannedShards(dir, cfg)
	if err != nil {
		return nil, err
	}

	reg := cfg.Metrics
	if reg == nil {
		reg = obs.Default()
	}
	s := &Store{
		meta:         newMetaState(),
		data:         make([]*dataState, shards),
		tokens:       map[string]tokenInfo{},
		stableIDs:    cfg.StableIDs,
		now:          cfg.Now,
		obsReg:       reg,
		idxHits:      reg.Counter("analytics_index_hits_total"),
		idxFallbacks: reg.Counter("analytics_index_fallbacks_total"),
	}
	states := make([]storage.ShardState, 0, shards+1)
	states = append(states, s.meta)
	for i := range s.data {
		s.data[i] = newDataState()
		states = append(states, s.data[i])
	}
	eng, err := storage.Open(storage.Options{
		Dir:            dir,
		Sync:           cfg.Sync,
		SyncEvery:      cfg.SyncEvery,
		CompactEvery:   cfg.CompactEvery,
		CommitMaxBatch: cfg.CommitMaxBatch,
		CommitLinger:   cfg.CommitLinger,
		RecoverWorkers: cfg.RecoverWorkers,
		Metrics:        reg,
		Repl:           cfg.Repl,
	}, states)
	if err != nil {
		return nil, err
	}
	s.eng = eng

	traceDir := ""
	if dir != "" {
		traceDir = filepath.Join(dir, "traces")
	}
	s.traces = make([]*traceState, tshards)
	tstates := make([]storage.ShardState, tshards)
	for i := range s.traces {
		s.traces[i] = newTraceState()
		tstates[i] = s.traces[i]
	}
	teng, err := storage.Open(storage.Options{
		Dir:            traceDir,
		Sync:           cfg.Sync,
		SyncEvery:      cfg.SyncEvery,
		CompactEvery:   cfg.CompactEvery,
		CommitMaxBatch: cfg.CommitMaxBatch,
		CommitLinger:   cfg.CommitLinger,
		RecoverWorkers: cfg.RecoverWorkers,
		Metrics:        reg,
		Repl:           cfg.TraceRepl,
	}, tstates)
	if err != nil {
		eng.Close()
		return nil, err
	}
	s.traceEng = teng
	return s, nil
}

// Close compacts every shard (so the next boot replays nothing), flushes the
// logs, and releases the store's files. Memory-only stores need not call it.
func (s *Store) Close() error {
	err := s.eng.Close()
	if terr := s.traceEng.Close(); err == nil {
		err = terr
	}
	return err
}

// Sync forces all WALs to stable storage — a checkpoint for interval/never
// fsync policies.
func (s *Store) Sync() error {
	if err := s.eng.Sync(); err != nil {
		return err
	}
	return s.traceEng.Sync()
}

// Durable reports whether the store journals to disk.
func (s *Store) Durable() bool { return s.eng.Durable() }

// ShardCount returns the number of data shards.
func (s *Store) ShardCount() int { return len(s.data) }

// dataShard maps a user to its engine shard index (1-based; 0 is meta).
func (s *Store) dataShard(userID string) int {
	h := fnv.New32a()
	h.Write([]byte(userID))
	return 1 + int(h.Sum32()%uint32(len(s.data)))
}

func (s *Store) dataFor(userID string) (int, *dataState) {
	idx := s.dataShard(userID)
	return idx, s.data[idx-1]
}

// mutateData runs one record through the owning data shard: the same apply
// path recovery replays, journaled only when it succeeds. Marshal runs after
// apply so the journal captures any normalization apply performed.
// markMoved tombstones users just dropped by a handoff (caller holds the
// write gate exclusively, so no mutation can interleave with the marking).
func (s *Store) markMoved(uids []string) {
	s.movedMu.Lock()
	if s.moved == nil {
		s.moved = map[string]struct{}{}
	}
	for _, uid := range uids {
		s.moved[uid] = struct{}{}
	}
	s.movedMu.Unlock()
}

// clearMovedOwned drops tombstones for users the given predicate reports as
// owned again — called on ring adoption, when a rejoin hands ranges back.
func (s *Store) clearMovedOwned(owned func(userID string) bool) {
	s.movedMu.Lock()
	for uid := range s.moved {
		if owned(uid) {
			delete(s.moved, uid)
		}
	}
	s.movedMu.Unlock()
}

// refuseMoved reports whether a primary mutation for the user must be
// refused with ErrNotOwner: this node handed the user off and the current
// ring still routes it elsewhere (see the moved field).
func (s *Store) refuseMoved(userID string) bool {
	if s.owns == nil {
		return false
	}
	s.movedMu.Lock()
	_, moved := s.moved[userID]
	s.movedMu.Unlock()
	return moved && !s.owns(userID)
}

func (s *Store) mutateData(userID string, rec *walRecord) error {
	s.gate.RLock()
	defer s.gate.RUnlock()
	if s.refuseMoved(userID) {
		return ErrNotOwner
	}
	idx, d := s.dataFor(userID)
	return s.eng.Mutate(idx, func() ([]byte, error) {
		if err := d.apply(rec); err != nil {
			return nil, err
		}
		return json.Marshal(rec)
	})
}

func deviceKey(imei, email string) string { return imei + "|" + email }

func newToken() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("cloud: token entropy unavailable: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// Register creates (or finds) the user for the device and issues a fresh
// token. User creation is journaled; the token itself is ephemeral.
func (s *Store) Register(imei, email string) (RegisterResponse, error) {
	if imei == "" || email == "" {
		return RegisterResponse{}, fmt.Errorf("cloud: imei and email are required")
	}
	var uid string
	s.gate.RLock()
	// Cluster mode forces stable IDs, so the routing key is known before
	// the user exists and ownership can be re-checked under the gate.
	if s.refuseMoved(StableUserID(imei, email)) {
		s.gate.RUnlock()
		return RegisterResponse{}, ErrNotOwner
	}
	err := s.eng.Mutate(0, func() ([]byte, error) {
		key := deviceKey(imei, email)
		if id, ok := s.meta.byDevice[key]; ok {
			uid = id
			return nil, nil // known device: nothing to journal
		}
		id := fmt.Sprintf("user-%04d", len(s.meta.users)+1)
		if s.stableIDs {
			id = StableUserID(imei, email)
		}
		u := &User{ID: id, IMEI: imei, Email: email}
		rec := &walRecord{Op: opRegister, User: u, DeviceKey: key}
		if err := s.meta.apply(rec); err != nil {
			return nil, err
		}
		uid = u.ID
		return json.Marshal(rec)
	})
	s.gate.RUnlock()
	if err != nil {
		return RegisterResponse{}, err
	}
	tok := newToken()
	exp := s.now().Add(TokenTTL)
	s.tokenMu.Lock()
	s.tokens[tok] = tokenInfo{UserID: uid, ExpiresAt: exp}
	s.tokenMu.Unlock()
	return RegisterResponse{UserID: uid, Token: tok, ExpiresAt: exp}, nil
}

// Refresh exchanges a valid (possibly near-expiry) token for a fresh one.
// The old token is revoked.
func (s *Store) Refresh(token string) (RefreshResponse, error) {
	s.tokenMu.Lock()
	defer s.tokenMu.Unlock()
	info, ok := s.tokens[token]
	if !ok || s.now().After(info.ExpiresAt) {
		delete(s.tokens, token)
		return RefreshResponse{}, errUnauthorized
	}
	delete(s.tokens, token)
	tok := newToken()
	exp := s.now().Add(TokenTTL)
	s.tokens[tok] = tokenInfo{UserID: info.UserID, ExpiresAt: exp}
	return RefreshResponse{Token: tok, ExpiresAt: exp}, nil
}

// errUnauthorized signals an invalid/expired token.
var errUnauthorized = fmt.Errorf("cloud: unauthorized")

// Authenticate resolves a token to a user ID.
func (s *Store) Authenticate(token string) (string, error) {
	s.tokenMu.RLock()
	defer s.tokenMu.RUnlock()
	info, ok := s.tokens[token]
	if !ok || s.now().After(info.ExpiresAt) {
		return "", errUnauthorized
	}
	return info.UserID, nil
}

// SetPlaces replaces the user's stored places (discovery is a whole-history
// recomputation, so replacement is the right semantic). Labels from the
// previous generation are carried over by place ID.
func (s *Store) SetPlaces(userID string, places []PlaceWire) error {
	// Detach from the caller before journaling. Apply runs before Marshal,
	// so the record captures the post-label-carry value.
	rec := &walRecord{Op: opSetPlaces, UserID: userID, Places: clonePlaces(places)}
	return s.mutateData(userID, rec)
}

// Places returns a deep copy of the user's stored places.
func (s *Store) Places(userID string) []PlaceWire {
	idx, d := s.dataFor(userID)
	var out []PlaceWire
	s.eng.View(idx, func() { out = clonePlaces(d.places[userID]) })
	if out == nil {
		out = []PlaceWire{}
	}
	return out
}

// LabelPlace tags a stored place.
func (s *Store) LabelPlace(userID string, placeID int, label string) error {
	return s.mutateData(userID, &walRecord{Op: opLabelPlace, UserID: userID, PlaceID: placeID, Label: label})
}

// SetRoutes replaces the user's stored routes.
func (s *Store) SetRoutes(userID string, routes []RouteWire) error {
	return s.mutateData(userID, &walRecord{Op: opSetRoutes, UserID: userID, Routes: cloneRoutes(routes)})
}

// Routes returns deep copies of the user's routes with at least minFrequency
// traversals — callers may mutate the result freely.
func (s *Store) Routes(userID string, minFrequency int) []RouteWire {
	idx, d := s.dataFor(userID)
	var out []RouteWire
	s.eng.View(idx, func() {
		for _, r := range d.routes[userID] {
			if len(r.Trips) >= minFrequency {
				out = append(out, cloneRoute(r))
			}
		}
	})
	return out
}

// PutProfile stores (upserts) a day profile after validation. The store
// keeps its own deep copy; later caller mutations cannot corrupt journaled
// state.
func (s *Store) PutProfile(userID string, p *profile.DayProfile) error {
	if p == nil {
		return fmt.Errorf("cloud: nil profile")
	}
	if p.UserID == "" {
		p.UserID = userID
	}
	if err := p.Validate(); err != nil {
		return err
	}
	return s.mutateData(userID, &walRecord{Op: opPutProfile, UserID: userID, Profile: cloneProfile(p)})
}

// Profile returns a deep copy of the user's profile for a date.
func (s *Store) Profile(userID, date string) (*profile.DayProfile, bool) {
	idx, d := s.dataFor(userID)
	var out *profile.DayProfile
	var ok bool
	s.eng.View(idx, func() {
		var p *profile.DayProfile
		p, ok = d.profiles[userID][date]
		if ok {
			out = cloneProfile(p)
		}
	})
	return out, ok
}

// ProfileRange returns deep copies of profiles with from <= date <= to
// (inclusive, date strings), sorted by date. Empty bounds are open. The walk
// binary-searches the user's sorted date index, so a narrow window costs the
// window, not a scan-and-sort of the whole history.
func (s *Store) ProfileRange(userID, from, to string) []*profile.DayProfile {
	var out []*profile.DayProfile
	s.viewProfileRange(userID, from, to,
		func(n int) {
			if n > 0 {
				out = make([]*profile.DayProfile, 0, n)
			}
		},
		func(p *profile.DayProfile) { out = append(out, cloneProfile(p)) })
	return out
}

// viewProfileRange streams the profiles with from <= date <= to (inclusive,
// date strings, empty bounds open) in date order under the owning shard's
// read lock, without cloning: begin runs once with the count, then each per
// profile. This is the binary serving path — the encoder writes straight
// from store memory into its buffer. The viewIndex retention rules apply:
// the callbacks must not retain or mutate what they are handed and must not
// call back into the store.
func (s *Store) viewProfileRange(userID, from, to string, begin func(n int), each func(p *profile.DayProfile)) {
	idx, d := s.dataFor(userID)
	s.eng.View(idx, func() {
		ux := d.idx[userID]
		if ux == nil {
			begin(0)
			return
		}
		days := d.profiles[userID]
		lo := 0
		if from != "" {
			lo, _ = slices.BinarySearch(ux.dates, from)
		}
		hi := len(ux.dates)
		if to != "" {
			h, ok := slices.BinarySearch(ux.dates, to)
			if ok {
				h++
			}
			hi = h
		}
		dates := ux.dates[lo:max(lo, hi)]
		begin(len(dates))
		for _, date := range dates {
			each(days[date])
		}
	})
}

// viewIndex runs fn under the owning shard's read lock with the user's
// materialized analytics index — nil when the user has no profiles. The
// copy-free read path: fn must not retain or mutate anything it is handed,
// and must not call back into the store.
func (s *Store) viewIndex(userID string, fn func(ux *userIndex)) {
	idx, d := s.dataFor(userID)
	s.eng.View(idx, func() {
		ux := d.idx[userID]
		if ux != nil {
			s.idxHits.Inc()
		} else {
			// No materialized index for the user: the caller answers from
			// nothing, the same result a reference scan of zero profiles
			// would produce.
			s.idxFallbacks.Inc()
		}
		fn(ux)
	})
}

// placesVersion sums the shards' places-change counters: any SetPlaces or
// LabelPlace anywhere changes the sum, and the counters only grow, so equal
// sums mean nothing changed. The popular-places cache keys its memo on it.
func (s *Store) placesVersion() uint64 {
	var ver uint64
	for i, d := range s.data {
		s.eng.View(i+1, func() { ver += d.ver })
	}
	return ver
}

// AddContacts appends encounters to the user's contact log.
func (s *Store) AddContacts(userID string, encs []profile.Encounter) error {
	if len(encs) == 0 {
		return nil
	}
	return s.mutateData(userID, &walRecord{Op: opAddContacts, UserID: userID, Encounters: slices.Clone(encs)})
}

// Contacts returns the user's encounters, optionally filtered by place.
func (s *Store) Contacts(userID, placeID string) []profile.Encounter {
	idx, d := s.dataFor(userID)
	var out []profile.Encounter
	s.eng.View(idx, func() {
		for _, e := range d.contacts[userID] {
			if placeID == "" || e.PlaceID == placeID {
				out = append(out, e)
			}
		}
	})
	return out
}

// UserCount returns the number of registered users.
func (s *Store) UserCount() int {
	var n int
	s.eng.View(0, func() { n = len(s.meta.users) })
	return n
}

// forEachPlaces streams every user's stored places, one shard at a time,
// under that shard's read lock. The callback must not retain or mutate the
// slice (cross-user aggregates such as PopularPlaces read it in place).
func (s *Store) forEachPlaces(fn func(userID string, places []PlaceWire)) {
	for i, d := range s.data {
		s.eng.View(i+1, func() {
			for u, ps := range d.places {
				fn(u, ps)
			}
		})
	}
}

// forEachPlacesGen is forEachPlaces plus each user's places generation, so a
// caller-side cache can skip reprocessing users whose places are unchanged.
// Same contract: the slice is the live store state, borrowed under the shard
// read lock.
func (s *Store) forEachPlacesGen(fn func(userID string, gen uint64, places []PlaceWire)) {
	for i, d := range s.data {
		s.eng.View(i+1, func() {
			for u, ps := range d.places {
				fn(u, d.placesGen[u], ps)
			}
		})
	}
}

// snapshot is the legacy whole-store persisted form (Save/Load and the sim
// tooling); the engine's per-shard snapshots use metaSnapshot/dataSnapshot.
type snapshot struct {
	Users    map[string]*User                          `json:"users"`
	ByDevice map[string]string                         `json:"by_device"`
	Places   map[string][]PlaceWire                    `json:"places"`
	Routes   map[string][]RouteWire                    `json:"routes"`
	Profiles map[string]map[string]*profile.DayProfile `json:"profiles"`
	Contacts map[string][]profile.Encounter            `json:"contacts"`
}

// Save writes the store (minus live tokens) to path as JSON, via a temp
// file in the same directory plus rename — a crash mid-save can never
// corrupt a previous save. Kept as a compatibility export (sim tooling, the
// legacy -store flag); durable deployments use OpenStore instead.
func (s *Store) Save(path string) error {
	snap := snapshot{
		Users:    map[string]*User{},
		ByDevice: map[string]string{},
		Places:   map[string][]PlaceWire{},
		Routes:   map[string][]RouteWire{},
		Profiles: map[string]map[string]*profile.DayProfile{},
		Contacts: map[string][]profile.Encounter{},
	}
	s.eng.View(0, func() {
		for id, u := range s.meta.users {
			cu := *u
			snap.Users[id] = &cu
		}
		for k, v := range s.meta.byDevice {
			snap.ByDevice[k] = v
		}
	})
	for i, d := range s.data {
		s.eng.View(i+1, func() {
			for u, ps := range d.places {
				snap.Places[u] = clonePlaces(ps)
			}
			for u, rs := range d.routes {
				snap.Routes[u] = cloneRoutes(rs)
			}
			for u, days := range d.profiles {
				m := map[string]*profile.DayProfile{}
				for date, p := range days {
					m[date] = cloneProfile(p)
				}
				snap.Profiles[u] = m
			}
			for u, es := range d.contacts {
				snap.Contacts[u] = slices.Clone(es)
			}
		})
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return fmt.Errorf("cloud: marshal store: %w", err)
	}
	return writeJSONAtomic(path, data)
}

// writeJSONAtomic writes data via temp file + rename in path's directory.
func writeJSONAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Load replaces the store contents from a Save file. Tokens are not
// restored; devices must re-register. On a durable store the loaded state
// is journaled like any other mutation.
func (s *Store) Load(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("cloud: read store: %w", err)
	}
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("cloud: parse store: %w", err)
	}
	s.gate.RLock()
	defer s.gate.RUnlock()

	// Meta shard: replace users/device index wholesale.
	err = s.eng.Mutate(0, func() ([]byte, error) {
		rec := &walRecord{Op: opLoadMeta, Meta: &metaSnapshot{Users: snap.Users, ByDevice: snap.ByDevice}}
		if err := s.meta.apply(rec); err != nil {
			return nil, err
		}
		return json.Marshal(rec)
	})
	if err != nil {
		return err
	}

	// Partition per-user data by owning shard, then replace each shard's
	// keyspace with its slice of the snapshot.
	parts := make([]*dataSnapshot, len(s.data))
	for i := range parts {
		parts[i] = newDataSnapshot()
	}
	for u, v := range snap.Places {
		parts[s.dataShard(u)-1].Places[u] = v
	}
	for u, v := range snap.Routes {
		parts[s.dataShard(u)-1].Routes[u] = v
	}
	for u, v := range snap.Profiles {
		parts[s.dataShard(u)-1].Profiles[u] = v
	}
	for u, v := range snap.Contacts {
		parts[s.dataShard(u)-1].Contacts[u] = v
	}
	for i, d := range s.data {
		rec := &walRecord{Op: opLoadShard, Data: parts[i]}
		err := s.eng.Mutate(i+1, func() ([]byte, error) {
			if err := d.apply(rec); err != nil {
				return nil, err
			}
			return json.Marshal(rec)
		})
		if err != nil {
			return err
		}
	}
	return nil
}
