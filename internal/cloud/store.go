package cloud

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/profile"
)

// TokenTTL is how long an issued token stays valid before the mobile service
// must refresh it (Section 2.2.1: "the authentication token is refreshed
// periodically based on its expiry time").
const TokenTTL = 24 * time.Hour

// User is a registered device/account pair.
type User struct {
	ID    string `json:"id"`
	IMEI  string `json:"imei"`
	Email string `json:"email"`
}

type tokenInfo struct {
	UserID    string    `json:"user_id"`
	ExpiresAt time.Time `json:"expires_at"`
}

// Store is the cloud instance's state: users, tokens, places, routes,
// profiles, and contacts. Safe for concurrent use. Persistence is explicit
// via Save/Load.
type Store struct {
	mu sync.RWMutex

	users    map[string]*User     // user id -> user
	byDevice map[string]string    // imei|email -> user id
	tokens   map[string]tokenInfo // token -> info

	places   map[string][]PlaceWire                    // user id -> places
	routes   map[string][]RouteWire                    // user id -> routes
	profiles map[string]map[string]*profile.DayProfile // user id -> date -> profile
	contacts map[string][]profile.Encounter            // user id -> encounters

	now func() time.Time
}

// NewStore returns an empty store using the given time source (nil means
// time.Now; simulations inject the virtual clock).
func NewStore(now func() time.Time) *Store {
	if now == nil {
		now = time.Now
	}
	return &Store{
		users:    map[string]*User{},
		byDevice: map[string]string{},
		tokens:   map[string]tokenInfo{},
		places:   map[string][]PlaceWire{},
		routes:   map[string][]RouteWire{},
		profiles: map[string]map[string]*profile.DayProfile{},
		contacts: map[string][]profile.Encounter{},
		now:      now,
	}
}

func deviceKey(imei, email string) string { return imei + "|" + email }

func newToken() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("cloud: token entropy unavailable: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// Register creates (or finds) the user for the device and issues a fresh
// token.
func (s *Store) Register(imei, email string) (RegisterResponse, error) {
	if imei == "" || email == "" {
		return RegisterResponse{}, fmt.Errorf("cloud: imei and email are required")
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	key := deviceKey(imei, email)
	uid, ok := s.byDevice[key]
	if !ok {
		uid = fmt.Sprintf("user-%04d", len(s.users)+1)
		s.users[uid] = &User{ID: uid, IMEI: imei, Email: email}
		s.byDevice[key] = uid
	}
	tok := newToken()
	exp := s.now().Add(TokenTTL)
	s.tokens[tok] = tokenInfo{UserID: uid, ExpiresAt: exp}
	return RegisterResponse{UserID: uid, Token: tok, ExpiresAt: exp}, nil
}

// Refresh exchanges a valid (possibly near-expiry) token for a fresh one.
// The old token is revoked.
func (s *Store) Refresh(token string) (RefreshResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	info, ok := s.tokens[token]
	if !ok || s.now().After(info.ExpiresAt) {
		delete(s.tokens, token)
		return RefreshResponse{}, errUnauthorized
	}
	delete(s.tokens, token)
	tok := newToken()
	exp := s.now().Add(TokenTTL)
	s.tokens[tok] = tokenInfo{UserID: info.UserID, ExpiresAt: exp}
	return RefreshResponse{Token: tok, ExpiresAt: exp}, nil
}

// errUnauthorized signals an invalid/expired token.
var errUnauthorized = fmt.Errorf("cloud: unauthorized")

// Authenticate resolves a token to a user ID.
func (s *Store) Authenticate(token string) (string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	info, ok := s.tokens[token]
	if !ok || s.now().After(info.ExpiresAt) {
		return "", errUnauthorized
	}
	return info.UserID, nil
}

// SetPlaces replaces the user's stored places (discovery is a whole-history
// recomputation, so replacement is the right semantic).
func (s *Store) SetPlaces(userID string, places []PlaceWire) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Carry labels from the previous generation by place ID.
	labels := map[int]string{}
	for _, p := range s.places[userID] {
		if p.Label != "" {
			labels[p.ID] = p.Label
		}
	}
	for i := range places {
		if places[i].Label == "" {
			places[i].Label = labels[places[i].ID]
		}
	}
	s.places[userID] = places
}

// Places returns the user's stored places.
func (s *Store) Places(userID string) []PlaceWire {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]PlaceWire, len(s.places[userID]))
	copy(out, s.places[userID])
	return out
}

// LabelPlace tags a stored place.
func (s *Store) LabelPlace(userID string, placeID int, label string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.places[userID] {
		if s.places[userID][i].ID == placeID {
			s.places[userID][i].Label = label
			return nil
		}
	}
	return fmt.Errorf("cloud: user %s has no place %d", userID, placeID)
}

// SetRoutes replaces the user's stored routes.
func (s *Store) SetRoutes(userID string, routes []RouteWire) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.routes[userID] = routes
}

// Routes returns the user's routes with at least minFrequency traversals.
func (s *Store) Routes(userID string, minFrequency int) []RouteWire {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []RouteWire
	for _, r := range s.routes[userID] {
		if len(r.Trips) >= minFrequency {
			out = append(out, r)
		}
	}
	return out
}

// PutProfile stores (upserts) a day profile after validation.
func (s *Store) PutProfile(userID string, p *profile.DayProfile) error {
	if p == nil {
		return fmt.Errorf("cloud: nil profile")
	}
	if p.UserID == "" {
		p.UserID = userID
	}
	if err := p.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.profiles[userID] == nil {
		s.profiles[userID] = map[string]*profile.DayProfile{}
	}
	s.profiles[userID][p.Date] = p
	return nil
}

// Profile returns the user's profile for a date.
func (s *Store) Profile(userID, date string) (*profile.DayProfile, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.profiles[userID][date]
	return p, ok
}

// ProfileRange returns profiles with from <= date <= to (inclusive, date
// strings), sorted by date. Empty bounds are open.
func (s *Store) ProfileRange(userID, from, to string) []*profile.DayProfile {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []*profile.DayProfile
	for date, p := range s.profiles[userID] {
		if from != "" && date < from {
			continue
		}
		if to != "" && date > to {
			continue
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Date < out[j].Date })
	return out
}

// AddContacts appends encounters to the user's contact log.
func (s *Store) AddContacts(userID string, encs []profile.Encounter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.contacts[userID] = append(s.contacts[userID], encs...)
}

// Contacts returns the user's encounters, optionally filtered by place.
func (s *Store) Contacts(userID, placeID string) []profile.Encounter {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []profile.Encounter
	for _, e := range s.contacts[userID] {
		if placeID == "" || e.PlaceID == placeID {
			out = append(out, e)
		}
	}
	return out
}

// UserCount returns the number of registered users.
func (s *Store) UserCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.users)
}

// snapshot is the persisted form.
type snapshot struct {
	Users    map[string]*User                          `json:"users"`
	ByDevice map[string]string                         `json:"by_device"`
	Places   map[string][]PlaceWire                    `json:"places"`
	Routes   map[string][]RouteWire                    `json:"routes"`
	Profiles map[string]map[string]*profile.DayProfile `json:"profiles"`
	Contacts map[string][]profile.Encounter            `json:"contacts"`
}

// Save writes the store (minus live tokens) to path as JSON.
func (s *Store) Save(path string) error {
	s.mu.RLock()
	snap := snapshot{
		Users:    s.users,
		ByDevice: s.byDevice,
		Places:   s.places,
		Routes:   s.routes,
		Profiles: s.profiles,
		Contacts: s.contacts,
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	s.mu.RUnlock()
	if err != nil {
		return fmt.Errorf("cloud: marshal store: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// Load replaces the store contents from a Save file. Tokens are not
// restored; devices must re-register.
func (s *Store) Load(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("cloud: read store: %w", err)
	}
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("cloud: parse store: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if snap.Users != nil {
		s.users = snap.Users
	}
	if snap.ByDevice != nil {
		s.byDevice = snap.ByDevice
	}
	if snap.Places != nil {
		s.places = snap.Places
	}
	if snap.Routes != nil {
		s.routes = snap.Routes
	}
	if snap.Profiles != nil {
		s.profiles = snap.Profiles
	}
	if snap.Contacts != nil {
		s.contacts = snap.Contacts
	}
	return nil
}
