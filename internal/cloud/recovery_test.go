package cloud

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/profile"
	"repro/internal/simclock"
	"repro/internal/storage"
	"repro/internal/world"
)

// mkProfile builds a valid one-visit day profile.
func mkProfile(uid, date string) *profile.DayProfile {
	day, _ := time.Parse(profile.DateFormat, date)
	return &profile.DayProfile{
		UserID: uid, Date: date,
		Places: []profile.PlaceVisit{{PlaceID: "p0", Arrive: day.Add(8 * time.Hour), Depart: day.Add(17 * time.Hour)}},
	}
}

// userStateJSON renders everything the store holds for one user, for
// byte-level state comparison across restarts.
func userStateJSON(t *testing.T, s *Store, uid string) string {
	t.Helper()
	blob := struct {
		Places   []PlaceWire           `json:"places"`
		Routes   []RouteWire           `json:"routes"`
		Profiles []*profile.DayProfile `json:"profiles"`
		Contacts []profile.Encounter   `json:"contacts"`
		Users    int                   `json:"users"`
	}{
		Places:   s.Places(uid),
		Routes:   s.Routes(uid, 0),
		Profiles: s.ProfileRange(uid, "", ""),
		Contacts: s.Contacts(uid, ""),
		Users:    s.UserCount(),
	}
	data, err := json.MarshalIndent(blob, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestStoreDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreConfig{Now: fixedNow(simclock.Epoch)})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := s.Register("imei-1", "a@b.c")
	if err != nil {
		t.Fatal(err)
	}
	uid := reg.UserID
	if err := s.SetPlaces(uid, []PlaceWire{{ID: 0, Cells: []world.CellID{{MCC: 1, MNC: 2, LAC: 3, CID: 4}}}, {ID: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := s.LabelPlace(uid, 0, "Home"); err != nil {
		t.Fatal(err)
	}
	if err := s.SetRoutes(uid, []RouteWire{{ID: 0, Trips: []VisitWire{{}, {}}}}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutProfile(uid, mkProfile(uid, "2014-09-01")); err != nil {
		t.Fatal(err)
	}
	if err := s.AddContacts(uid, []profile.Encounter{{ContactID: "u2", PlaceID: "p0", Start: simclock.Epoch, End: simclock.Epoch.Add(time.Hour)}}); err != nil {
		t.Fatal(err)
	}
	before := userStateJSON(t, s, uid)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(dir, StoreConfig{Now: fixedNow(simclock.Epoch)})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if after := userStateJSON(t, s2, uid); after != before {
		t.Errorf("state diverged across restart:\nbefore: %s\nafter:  %s", before, after)
	}
	// Tokens are ephemeral: the old token must not survive.
	if _, err := s2.Authenticate(reg.Token); err == nil {
		t.Error("token survived restart")
	}
	// Same device re-registers to the same user.
	reg2, err := s2.Register("imei-1", "a@b.c")
	if err != nil || reg2.UserID != uid {
		t.Errorf("device identity lost across restart: %v, %v", reg2.UserID, err)
	}
}

// TestStoreShardCountPinnedByManifest: reopening with a different shard
// count adopts the persisted layout instead of mis-hashing users.
func TestStoreShardCountPinnedByManifest(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreConfig{Shards: 4, Now: fixedNow(simclock.Epoch)})
	if err != nil {
		t.Fatal(err)
	}
	reg, _ := s.Register("imei-1", "a@b.c")
	if err := s.PutProfile(reg.UserID, mkProfile(reg.UserID, "2014-09-01")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(dir, StoreConfig{Shards: 16, Now: fixedNow(simclock.Epoch)})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.ShardCount(); got != 4 {
		t.Errorf("reopened with %d shards, manifest says 4", got)
	}
	if _, ok := s2.Profile(reg.UserID, "2014-09-01"); !ok {
		t.Error("profile lost after shard-count change attempt")
	}
}

// walFrameEnds parses the cumulative end offsets of intact records in a WAL.
func walFrameEnds(t *testing.T, data []byte) []int {
	t.Helper()
	var ends []int
	off := 0
	for off+8 <= len(data) {
		ln := int(binary.LittleEndian.Uint32(data[off : off+4]))
		if off+8+ln > len(data) {
			break
		}
		off += 8 + ln
		ends = append(ends, off)
	}
	return ends
}

// TestStoreRecoveryTruncationProperty is the cloud-level crash property:
// journal a realistic mutation sequence with fsync=always, then cut the data
// shard's WAL at byte offsets spanning every record boundary (and interior
// bytes). Every cut must recover cleanly to exactly the state after the
// journaled prefix — acknowledged-and-synced writes survive, torn tails
// vanish, nothing half-applies.
func TestStoreRecoveryTruncationProperty(t *testing.T) {
	dir := t.TempDir()
	cfg := StoreConfig{Shards: 1, Sync: storage.SyncAlways, CompactEvery: -1, Now: fixedNow(simclock.Epoch)}
	s, err := OpenStore(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := s.Register("imei-1", "a@b.c")
	if err != nil {
		t.Fatal(err)
	}
	uid := reg.UserID

	// The mutation script, one journaled record per step.
	steps := []func(*Store) error{
		func(s *Store) error {
			return s.SetPlaces(uid, []PlaceWire{{ID: 0, Cells: []world.CellID{{MCC: 1, MNC: 1, LAC: 1, CID: 1}}}, {ID: 1}})
		},
		func(s *Store) error { return s.LabelPlace(uid, 0, "Home") },
		func(s *Store) error { return s.PutProfile(uid, mkProfile(uid, "2014-09-01")) },
		func(s *Store) error { return s.SetRoutes(uid, []RouteWire{{ID: 0, Trips: []VisitWire{{}, {}, {}}}}) },
		func(s *Store) error { return s.PutProfile(uid, mkProfile(uid, "2014-09-02")) },
		func(s *Store) error {
			return s.AddContacts(uid, []profile.Encounter{{ContactID: "u9", PlaceID: "p0", Start: simclock.Epoch, End: simclock.Epoch.Add(time.Hour)}})
		},
		func(s *Store) error {
			return s.SetPlaces(uid, []PlaceWire{{ID: 0}, {ID: 1}, {ID: 2}}) // re-discovery; label carry
		},
		func(s *Store) error { return s.PutProfile(uid, mkProfile(uid, "2014-09-03")) },
	}

	// expected[i] = user state after i steps, built on memory-only reference
	// stores driven through the identical script.
	expected := make([]string, len(steps)+1)
	for i := 0; i <= len(steps); i++ {
		ref := NewStore(fixedNow(simclock.Epoch))
		if _, err := ref.Register("imei-1", "a@b.c"); err != nil {
			t.Fatal(err)
		}
		for _, step := range steps[:i] {
			if err := step(ref); err != nil {
				t.Fatal(err)
			}
		}
		expected[i] = userStateJSON(t, ref, uid)
	}
	for _, step := range steps {
		if err := step(s); err != nil {
			t.Fatal(err)
		}
	}
	// Hard kill: no Close. fsync=always means the WAL holds every ack'd record.
	dataWAL := filepath.Join(dir, "shard-001", "wal-0000000000000000.log")
	full, err := os.ReadFile(dataWAL)
	if err != nil {
		t.Fatal(err)
	}
	ends := walFrameEnds(t, full)
	if len(ends) != len(steps) {
		t.Fatalf("data WAL holds %d records, want %d", len(ends), len(steps))
	}

	// Cut points: every frame boundary, one byte either side, and a stride
	// through record interiors (torn mid-record writes).
	cuts := map[int]bool{0: true, len(full): true}
	for _, e := range ends {
		cuts[e] = true
		if e > 0 {
			cuts[e-1] = true
		}
		if e < len(full) {
			cuts[e+1] = true
		}
	}
	for c := 0; c < len(full); c += 13 {
		cuts[c] = true
	}

	scratch := t.TempDir()
	caseN := 0
	for cut := range cuts {
		caseN++
		caseDir := filepath.Join(scratch, fmt.Sprintf("case-%04d", caseN))
		copyTree(t, dir, caseDir)
		if err := os.WriteFile(filepath.Join(caseDir, "shard-001", "wal-0000000000000000.log"), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := OpenStore(caseDir, cfg)
		if err != nil {
			t.Fatalf("cut at %d: recovery failed: %v", cut, err)
		}
		survived := 0
		for _, e := range ends {
			if e <= cut {
				survived++
			}
		}
		if got := userStateJSON(t, s2, uid); got != expected[survived] {
			t.Fatalf("cut at %d (=%d records): recovered state diverges from prefix state\ngot:  %s\nwant: %s",
				cut, survived, got, expected[survived])
		}
		// The repaired store must accept new writes.
		if err := s2.PutProfile(uid, mkProfile(uid, "2014-12-31")); err != nil {
			t.Fatalf("cut at %d: write after recovery: %v", cut, err)
		}
		if err := s2.Close(); err != nil {
			t.Fatal(err)
		}
		os.RemoveAll(caseDir)
	}
}

func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, info.Mode())
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestServerKillRestartNoAckedProfileLoss drives the real HTTP stack: a
// client registers and uploads profiles, the cloud process "dies" without
// any shutdown hook (the store is simply abandoned, never Closed), a new
// process recovers from the same data directory — and every profile the
// client got a 200 for is still served.
func TestServerKillRestartNoAckedProfileLoss(t *testing.T) {
	dir := t.TempDir()
	cfg := StoreConfig{Sync: storage.SyncAlways, Now: fixedNow(simclock.Epoch)}

	boot := func() (*Store, *httptest.Server) {
		st, err := OpenStore(dir, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(NewServer(st).Handler())
		return st, ts
	}

	st1, ts1 := boot()
	_ = st1 // abandoned without Close: the crash
	client := NewClient(ts1.URL, "imei-kill", "kill@example.com", ts1.Client())
	if err := client.Register(); err != nil {
		t.Fatal(err)
	}
	uid := client.UserID()
	dates := []string{"2014-09-01", "2014-09-02", "2014-09-03", "2014-09-04", "2014-09-05"}
	for _, d := range dates {
		if err := client.SyncProfile(mkProfile(uid, d)); err != nil {
			t.Fatalf("upload %s: %v", d, err) // every upload here is acknowledged
		}
	}
	ts1.Close() // the "SIGKILL": server gone, store never flushed or closed

	st2, ts2 := boot()
	defer st2.Close()
	defer ts2.Close()
	client2 := NewClient(ts2.URL, "imei-kill", "kill@example.com", ts2.Client())
	if err := client2.Register(); err != nil {
		t.Fatal(err)
	}
	if client2.UserID() != uid {
		t.Fatalf("user id changed across restart: %s -> %s", uid, client2.UserID())
	}
	for _, d := range dates {
		p, err := client2.Profile(d)
		if err != nil {
			t.Errorf("acknowledged profile %s lost after kill+restart: %v", d, err)
			continue
		}
		if len(p.Places) != 1 || p.Places[0].PlaceID != "p0" {
			t.Errorf("profile %s corrupted after recovery: %+v", d, p)
		}
	}
}

// TestStoreReadsAreDeepCopies: mutating anything a read returns must not
// change journaled state (the aliasing leaks the old store had).
func TestStoreReadsAreDeepCopies(t *testing.T) {
	s := NewStore(fixedNow(simclock.Epoch))
	uid := "u1"
	if err := s.SetRoutes(uid, []RouteWire{{ID: 0, Cells: []world.CellID{{MCC: 1}}, Trips: []VisitWire{{Arrive: simclock.Epoch}}}}); err != nil {
		t.Fatal(err)
	}
	r := s.Routes(uid, 0)
	r[0].Trips[0].Arrive = r[0].Trips[0].Arrive.Add(time.Hour)
	r[0].Cells[0].MCC = 999
	if got := s.Routes(uid, 0); !got[0].Trips[0].Arrive.Equal(simclock.Epoch) || got[0].Cells[0].MCC != 1 {
		t.Error("Routes result aliases store state")
	}

	if err := s.PutProfile(uid, mkProfile(uid, "2014-09-01")); err != nil {
		t.Fatal(err)
	}
	p, _ := s.Profile(uid, "2014-09-01")
	p.Places[0].PlaceID = "tampered"
	p.Date = "1999-01-01"
	if got, _ := s.Profile(uid, "2014-09-01"); got.Places[0].PlaceID != "p0" {
		t.Error("Profile result aliases store state")
	}
	rng := s.ProfileRange(uid, "", "")
	rng[0].Places[0].PlaceID = "tampered-again"
	if got, _ := s.Profile(uid, "2014-09-01"); got.Places[0].PlaceID != "p0" {
		t.Error("ProfileRange result aliases store state")
	}

	if err := s.SetPlaces(uid, []PlaceWire{{ID: 0, Cells: []world.CellID{{MCC: 5}}}}); err != nil {
		t.Fatal(err)
	}
	ps := s.Places(uid)
	ps[0].Cells[0].MCC = 777
	if got := s.Places(uid); got[0].Cells[0].MCC != 5 {
		t.Error("Places result aliases store state")
	}

	// The input side too: mutating what the caller passed in after the call
	// must not corrupt the store.
	in := []PlaceWire{{ID: 9, Cells: []world.CellID{{MCC: 3}}}}
	if err := s.SetPlaces(uid, in); err != nil {
		t.Fatal(err)
	}
	in[0].Cells[0].MCC = 444
	if got := s.Places(uid); got[0].Cells[0].MCC != 3 {
		t.Error("SetPlaces retained the caller's slice")
	}
	prof := mkProfile(uid, "2014-09-09")
	if err := s.PutProfile(uid, prof); err != nil {
		t.Fatal(err)
	}
	prof.Places[0].PlaceID = "mutated-after-put"
	if got, _ := s.Profile(uid, "2014-09-09"); got.Places[0].PlaceID != "p0" {
		t.Error("PutProfile retained the caller's profile")
	}
}

// TestSaveIsAtomic: Save must leave either the old or the new file, never a
// torn one, and no temp droppings.
func TestSaveAtomicReplacesPrevious(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.json")
	s := NewStore(fixedNow(simclock.Epoch))
	reg, _ := s.Register("imei-1", "a@b.c")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	if err := s.PutProfile(reg.UserID, mkProfile(reg.UserID, "2014-09-01")); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "store.json" {
		t.Fatalf("save left droppings: %v", ents)
	}
	s2 := NewStore(fixedNow(simclock.Epoch))
	if err := s2.Load(path); err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Profile(reg.UserID, "2014-09-01"); !ok {
		t.Error("second save not visible after load")
	}
}
