package cloud

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"

	"repro/internal/trace"
)

// ErrTraceConflict reports a delta upload whose cursor/hash claim does not
// match the server's persisted trace. The server answers 409 and the client
// falls back to a full upload.
var ErrTraceConflict = errors.New("cloud: trace cursor conflict")

// TraceStatus is the server's post-sync trace position for one user: the
// cursor acknowledgement returned to the client, plus the replace generation
// the discovery pipeline cache keys on.
type TraceStatus struct {
	Len  int64
	Hash uint64
	Gen  uint64
}

// traceShard maps a user to its trace-engine shard index.
func (s *Store) traceShard(userID string) int {
	h := fnv.New32a()
	h.Write([]byte(userID))
	return int(h.Sum32() % uint32(len(s.traces)))
}

// SyncTrace is the server side of the delta sync protocol. A full upload
// (delta false) replaces the user's persisted trace with obs; a delta upload
// claims the server holds a cursor-observation prefix hashing to prefixHash
// and appends the rest. It returns the post-sync status plus how many
// observations were actually appended (0 on deduplicated retries), and
// journals exactly what it appends — WAL-durable, replayed on boot.
//
// Retry safety: a delta whose cursor lies before the persisted length is
// checked observation-by-observation against the overlap and only the
// genuinely new tail is appended, so a client retrying a request whose
// response was lost appends nothing. A full upload identical to the stored
// trace is likewise a no-op (the replace generation is not bumped), keeping
// memoized discovery results valid across retries.
func (s *Store) SyncTrace(userID string, delta bool, cursor int64, prefixHash uint64, obs []trace.GSMObservation) (TraceStatus, int, error) {
	s.gate.RLock()
	defer s.gate.RUnlock()
	if s.refuseMoved(userID) {
		return TraceStatus{}, 0, ErrNotOwner
	}
	idx := s.traceShard(userID)
	t := s.traces[idx]
	var status TraceStatus
	appended := 0
	err := s.traceEng.Mutate(idx, func() ([]byte, error) {
		u := t.ensure(userID)
		var rec *traceRecord
		if delta {
			tail, err := deltaTail(u, cursor, prefixHash, obs)
			if err != nil {
				return nil, err
			}
			if len(tail) > 0 {
				rec = &traceRecord{Op: opTraceAppend, UserID: userID, Observations: tail}
			}
		} else if int64(len(obs)) != int64(len(u.obs)) || TraceHash(obs) != u.hash {
			rec = &traceRecord{Op: opTraceReplace, UserID: userID, Observations: obs}
		}
		if rec == nil {
			status = TraceStatus{Len: int64(len(u.obs)), Hash: u.hash, Gen: u.gen}
			return nil, nil // nothing new: nothing to journal
		}
		if err := t.apply(rec); err != nil {
			return nil, err
		}
		if rec.Op == opTraceAppend {
			appended = len(rec.Observations)
		}
		status = TraceStatus{Len: int64(len(u.obs)), Hash: u.hash, Gen: u.gen}
		return json.Marshal(rec)
	})
	if err != nil {
		return TraceStatus{}, 0, err
	}
	return status, appended, nil
}

// ErrObservationOrder reports a streamed append whose observations would
// break the trace's time order — the invariant every incremental consumer
// (discovery pipelines, event detectors) extends under.
var ErrObservationOrder = errors.New("cloud: observations out of time order")

// AppendTrace extends the user's persisted trace unconditionally — the
// streaming ingest path, where the device ships observations as they happen
// and the cursor dance of SyncTrace would add a round trip per batch. The
// append is journaled through the same opTraceAppend record the delta
// protocol uses, so the chained hash keeps extending and a later delta or
// full sync interoperates. Observations must continue the stored trace's
// time order; a violation appends nothing and returns ErrObservationOrder.
func (s *Store) AppendTrace(userID string, obs []trace.GSMObservation) (TraceStatus, error) {
	s.gate.RLock()
	defer s.gate.RUnlock()
	if s.refuseMoved(userID) {
		return TraceStatus{}, ErrNotOwner
	}
	idx := s.traceShard(userID)
	t := s.traces[idx]
	var status TraceStatus
	err := s.traceEng.Mutate(idx, func() ([]byte, error) {
		u := t.ensure(userID)
		if len(obs) == 0 {
			status = TraceStatus{Len: int64(len(u.obs)), Hash: u.hash, Gen: u.gen}
			return nil, nil
		}
		last := obs[0].At
		if len(u.obs) > 0 {
			last = u.obs[len(u.obs)-1].At
		}
		for i := range obs {
			if obs[i].At.Before(last) {
				return nil, fmt.Errorf("%w: observation %d at %s precedes %s",
					ErrObservationOrder, i, obs[i].At, last)
			}
			last = obs[i].At
		}
		rec := &traceRecord{Op: opTraceAppend, UserID: userID, Observations: obs}
		if err := t.apply(rec); err != nil {
			return nil, err
		}
		status = TraceStatus{Len: int64(len(u.obs)), Hash: u.hash, Gen: u.gen}
		return json.Marshal(rec)
	})
	if err != nil {
		return TraceStatus{}, err
	}
	return status, nil
}

// deltaTail validates a delta upload against the stored trace and returns
// the observations that genuinely extend it.
func deltaTail(u *userTrace, cursor int64, prefixHash uint64, obs []trace.GSMObservation) ([]trace.GSMObservation, error) {
	have := int64(len(u.obs))
	switch {
	case cursor < 0 || cursor > have:
		return nil, fmt.Errorf("%w: cursor %d, server holds %d observations", ErrTraceConflict, cursor, have)
	case cursor == have:
		if prefixHash != u.hash {
			return nil, fmt.Errorf("%w: prefix hash mismatch at cursor %d", ErrTraceConflict, cursor)
		}
		return obs, nil
	default:
		// Retry path: the server is already past the cursor. Verify the
		// claimed prefix, dedup the overlap, and append only the tail.
		if prefixHash != TraceHash(u.obs[:cursor]) {
			return nil, fmt.Errorf("%w: prefix hash mismatch at cursor %d", ErrTraceConflict, cursor)
		}
		overlap := have - cursor
		if overlap > int64(len(obs)) {
			overlap = int64(len(obs))
		}
		for i := int64(0); i < overlap; i++ {
			a, b := u.obs[cursor+i], obs[i]
			if !a.At.Equal(b.At) || a.Cell != b.Cell || a.SignalDBM != b.SignalDBM {
				return nil, fmt.Errorf("%w: overlap diverges at observation %d", ErrTraceConflict, cursor+i)
			}
		}
		return obs[overlap:], nil
	}
}

// viewTrace runs fn with the user's live persisted trace under the owning
// trace shard's read lock. The copy-free read path the discovery workers
// extend their pipelines from: fn must not retain or mutate the slice, and
// must not call back into the store.
func (s *Store) viewTrace(userID string, fn func(obs []trace.GSMObservation, hash uint64, gen uint64)) {
	idx := s.traceShard(userID)
	t := s.traces[idx]
	s.traceEng.View(idx, func() {
		u := t.users[userID]
		if u == nil {
			fn(nil, EmptyTraceHash(), 0)
			return
		}
		fn(u.obs, u.hash, u.gen)
	})
}

// TraceStatusFor returns the user's current trace position (len 0 and the
// empty hash when no trace is persisted).
func (s *Store) TraceStatusFor(userID string) TraceStatus {
	var st TraceStatus
	s.viewTrace(userID, func(obs []trace.GSMObservation, hash, gen uint64) {
		st = TraceStatus{Len: int64(len(obs)), Hash: hash, Gen: gen}
	})
	return st
}
