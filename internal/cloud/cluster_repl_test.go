package cloud

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/trace"
	"repro/internal/world"
)

// The WAL-shipping equivalence suite: records journaled on a primary are
// shipped verbatim and journaled on the follower, so after catch-up the two
// store directories hold byte-identical shard state — through a clean
// follower restart and a torn garbage tail on the follower's WAL.

// replFollower is the follower half of the fixture: a durable store, the
// receiver applying the stream into it, and an httptest server exposing the
// replication endpoints. The server outlives receiver restarts; while the
// receiver is down it answers 503 (exactly what a rebooting node looks like
// to its primary).
type replFollower struct {
	t       *testing.T
	dir     string
	shards  int
	dShards int
	tShards int

	mu    sync.Mutex
	store *Store
	recv  *cluster.Receiver

	ts *httptest.Server
}

func newReplFollower(t *testing.T, shards int) *replFollower {
	t.Helper()
	f := &replFollower{t: t, dir: t.TempDir(), shards: shards}
	mux := http.NewServeMux()
	route := func(path string, h func(*cluster.Receiver) http.HandlerFunc) {
		mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
			f.mu.Lock()
			recv := f.recv
			f.mu.Unlock()
			if recv == nil {
				http.Error(w, "follower down", http.StatusServiceUnavailable)
				return
			}
			h(recv)(w, r)
		})
	}
	route("POST "+cluster.PathReplBatch, func(r *cluster.Receiver) http.HandlerFunc { return r.HandleBatch })
	route("POST "+cluster.PathReplSync, func(r *cluster.Receiver) http.HandlerFunc { return r.HandleSync })
	route("GET "+cluster.PathReplCursor, func(r *cluster.Receiver) http.HandlerFunc { return r.HandleCursor })
	f.ts = httptest.NewServer(mux)
	t.Cleanup(f.ts.Close)
	f.open()
	return f
}

func (f *replFollower) storeDir() string { return filepath.Join(f.dir, "store") }
func (f *replFollower) replDir() string  { return filepath.Join(f.dir, "repl") }

func (f *replFollower) open() {
	f.t.Helper()
	store, err := newStore(f.storeDir(), StoreConfig{Shards: f.shards, StableIDs: true})
	if err != nil {
		f.t.Fatalf("open follower store: %v", err)
	}
	d, tr, err := plannedShards(f.storeDir(), StoreConfig{Shards: f.shards})
	if err != nil {
		f.t.Fatalf("follower shards: %v", err)
	}
	f.dShards, f.tShards = d, tr
	recv, err := cluster.OpenReceiver(cluster.ReceiverConfig{
		Applier:     store,
		Dir:         f.replDir(),
		DataShards:  d,
		TraceShards: tr,
		Metrics:     obs.NewRegistry(),
		Logf:        f.t.Logf,
	})
	if err != nil {
		store.Close()
		f.t.Fatalf("open receiver: %v", err)
	}
	f.mu.Lock()
	f.store, f.recv = store, recv
	f.mu.Unlock()
}

// close shuts the follower down cleanly (cursors exact).
func (f *replFollower) close() {
	f.t.Helper()
	f.mu.Lock()
	store, recv := f.store, f.recv
	f.store, f.recv = nil, nil
	f.mu.Unlock()
	if recv != nil {
		if err := recv.Close(); err != nil {
			f.t.Fatalf("close receiver: %v", err)
		}
	}
	if store != nil {
		if err := store.Close(); err != nil {
			f.t.Fatalf("close follower store: %v", err)
		}
	}
}

func (f *replFollower) cursor(from string) (uint64, uint64) {
	f.mu.Lock()
	recv := f.recv
	f.mu.Unlock()
	if recv == nil {
		return 0, 0
	}
	return recv.Cursor(from)
}

// newReplPrimary opens a durable primary whose engines ship through a
// shipper pointed at the follower. Export cuts a full wholesale snapshot
// under the write gate (every user: a single test node owns the whole ring).
func newReplPrimary(t *testing.T, shards int, follower *replFollower) (*Store, *cluster.Shipper, string) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "store")
	var (
		store *Store
		ship  *cluster.Shipper
	)
	d, tr, err := plannedShards(dir, StoreConfig{Shards: shards})
	if err != nil {
		t.Fatalf("primary shards: %v", err)
	}
	ship = cluster.NewShipper(cluster.ShipperConfig{
		Self:        "A",
		Epoch:       1,
		DataShards:  d,
		TraceShards: tr,
		Export: func() ([]cluster.ShipRecord, uint64, error) {
			store.gate.Lock()
			defer store.gate.Unlock()
			baseline := ship.Seq()
			recs, err := store.exportUsersLocked(func(string) bool { return true })
			return recs, baseline, err
		},
		Metrics: obs.NewRegistry(),
		Logf:    t.Logf,
	})
	store, err = newStore(dir, StoreConfig{
		Shards:    shards,
		StableIDs: true,
		Repl:      cluster.EngineSink{S: ship, Engine: cluster.EngineMain},
		TraceRepl: cluster.EngineSink{S: ship, Engine: cluster.EngineTrace},
	})
	if err != nil {
		ship.Close()
		t.Fatalf("open primary store: %v", err)
	}
	return store, ship, dir
}

func waitCaughtUp(t *testing.T, ship *cluster.Shipper, f *replFollower) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if _, seq := f.cursor("A"); seq == ship.Seq() && ship.Lag() == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	_, seq := f.cursor("A")
	t.Fatalf("follower never caught up: primary seq %d, follower cursor %d, lag %d", ship.Seq(), seq, ship.Lag())
}

// seqSuffix normalizes rotation-sequenced file names (snapshot-42.snap,
// wal-42.log) so directories compacted a different number of times still
// compare: the follower restarts mid-test and compacts once more than the
// primary, shifting its rotation counters without changing the state.
var seqSuffix = regexp.MustCompile(`(snapshot|wal)-[0-9]+`)

// compareStoreDirs asserts the two store directories hold byte-identical
// state: same normalized file set, same bytes per file.
func compareStoreDirs(t *testing.T, dirA, dirB string) {
	t.Helper()
	collect := func(root string) map[string]string {
		files := map[string]string{}
		err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
			if err != nil || info.IsDir() {
				return err
			}
			rel, _ := filepath.Rel(root, path)
			norm := seqSuffix.ReplaceAllString(rel, "-N")
			if prev, dup := files[norm]; dup {
				t.Fatalf("%s: %s and %s normalize to the same name", root, prev, rel)
			}
			files[norm] = rel
			return nil
		})
		if err != nil {
			t.Fatalf("walk %s: %v", root, err)
		}
		return files
	}
	a, b := collect(dirA), collect(dirB)
	var names []string
	for n := range a {
		names = append(names, n)
	}
	sort.Strings(names)
	for n := range b {
		if _, ok := a[n]; !ok {
			t.Errorf("follower has extra file %s", b[n])
		}
	}
	for _, n := range names {
		relB, ok := b[n]
		if !ok {
			t.Errorf("follower missing file %s", a[n])
			continue
		}
		ba, err := os.ReadFile(filepath.Join(dirA, a[n]))
		if err != nil {
			t.Fatal(err)
		}
		bb, err := os.ReadFile(filepath.Join(dirB, relB))
		if err != nil {
			t.Fatal(err)
		}
		if string(ba) != string(bb) {
			t.Errorf("%s differs between primary (%s, %d bytes) and follower (%s, %d bytes)",
				n, a[n], len(ba), relB, len(bb))
		}
	}
}

func testObs(n int) []trace.GSMObservation {
	base := time.Date(2014, 3, 1, 8, 0, 0, 0, time.UTC)
	out := make([]trace.GSMObservation, n)
	for i := range out {
		out[i] = trace.GSMObservation{
			At:        base.Add(time.Duration(i) * 30 * time.Second),
			Cell:      world.CellID{MCC: 262, MNC: 1, LAC: 1, CID: 100 + i%7},
			SignalDBM: -60 - float64(i%20),
		}
	}
	return out
}

func writeWorkload(t *testing.T, s *Store, users, round int) {
	t.Helper()
	for i := 0; i < users; i++ {
		imei := fmt.Sprintf("imei-%03d", i)
		email := fmt.Sprintf("u%d@example.com", i)
		reg, err := s.Register(imei, email)
		if err != nil {
			t.Fatalf("register %d: %v", i, err)
		}
		uid := reg.UserID
		if want := StableUserID(imei, email); uid != want {
			t.Fatalf("register %d: got id %s, want stable id %s", i, uid, want)
		}
		date := fmt.Sprintf("2014-03-%02d", 10+round)
		if err := s.PutProfile(uid, &profile.DayProfile{UserID: uid, Date: date}); err != nil {
			t.Fatalf("profile %d: %v", i, err)
		}
		if err := s.SetPlaces(uid, []PlaceWire{{ID: round*100 + i, Label: fmt.Sprintf("p%d", round)}}); err != nil {
			t.Fatalf("places %d: %v", i, err)
		}
		if _, _, err := s.SyncTrace(uid, false, 0, 0, testObs(5+round)); err != nil {
			t.Fatalf("trace %d: %v", i, err)
		}
		if err := s.AddContacts(uid, []profile.Encounter{{
			ContactID: fmt.Sprintf("c-%d-%d", round, i),
			Start:     time.Date(2014, 3, 10+round, 9, 0, 0, 0, time.UTC),
			End:       time.Date(2014, 3, 10+round, 10, 0, 0, 0, time.UTC),
		}}); err != nil {
			t.Fatalf("contacts %d: %v", i, err)
		}
	}
}

// TestReplShippingByteEquivalence pins the core replication claim: the
// follower's on-disk shards are byte-identical to the primary's after
// catch-up — including across a clean follower restart and a torn garbage
// tail appended to a follower WAL while it was down.
func TestReplShippingByteEquivalence(t *testing.T) {
	const shards = 2
	follower := newReplFollower(t, shards)
	primary, ship, primaryDir := newReplPrimary(t, shards, follower)

	// Arm the stream while the primary is empty: the initial resync ships
	// zero records at baseline 0, so every subsequent record reaches the
	// follower verbatim from sequence 1 — the WALs evolve identically.
	ship.SetTarget(&cluster.Node{ID: "B", URL: follower.ts.URL})
	deadline := time.Now().Add(10 * time.Second)
	for {
		if epoch, _ := follower.cursor("A"); epoch == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("initial resync never completed")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Leg 1: plain catch-up.
	writeWorkload(t, primary, 6, 0)
	waitCaughtUp(t, ship, follower)

	// Leg 2: clean follower restart, with garbage appended to one of its
	// WAL files while it is down (a torn tail from a crashed writer).
	// Recovery truncates the garbage, the persisted cursor is exact, and
	// the stream resumes contiguously.
	follower.close()
	wals, err := filepath.Glob(filepath.Join(follower.storeDir(), "*", "wal-*.log"))
	if err != nil || len(wals) == 0 {
		t.Fatalf("no follower WAL files found: %v (%d)", err, len(wals))
	}
	wf, err := os.OpenFile(wals[0], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wf.Write([]byte("\x99torn-garbage-tail\x00\x01")); err != nil {
		t.Fatal(err)
	}
	wf.Close()
	follower.open()

	// Leg 3: more writes after the restart, then final catch-up.
	writeWorkload(t, primary, 6, 1)
	waitCaughtUp(t, ship, follower)

	// Close both sides: each compacts its shards, leaving snapshots whose
	// bytes depend only on the state (encoding/json orders map keys).
	ship.Close()
	if err := primary.Close(); err != nil {
		t.Fatalf("close primary: %v", err)
	}
	follower.close()

	compareStoreDirs(t, primaryDir, follower.storeDir())
}

// TestReplEpochMismatchForcesResync pins the restart rule: a primary that
// comes back with a higher epoch cannot resume its old cursor — the
// follower demands a resync and the stream re-baselines.
func TestReplEpochMismatchForcesResync(t *testing.T) {
	const shards = 2
	follower := newReplFollower(t, shards)
	primary, ship, primaryDir := newReplPrimary(t, shards, follower)

	ship.SetTarget(&cluster.Node{ID: "B", URL: follower.ts.URL})
	writeWorkload(t, primary, 3, 0)
	waitCaughtUp(t, ship, follower)
	ship.Close()

	// "Restart" the primary's stream at epoch 2 over the same store.
	var ship2 *cluster.Shipper
	d, tr, _ := plannedShards(primaryDir, StoreConfig{Shards: shards})
	ship2 = cluster.NewShipper(cluster.ShipperConfig{
		Self:        "A",
		Epoch:       2,
		DataShards:  d,
		TraceShards: tr,
		Export: func() ([]cluster.ShipRecord, uint64, error) {
			primary.gate.Lock()
			defer primary.gate.Unlock()
			baseline := ship2.Seq()
			recs, err := primary.exportUsersLocked(func(string) bool { return true })
			return recs, baseline, err
		},
		Metrics: obs.NewRegistry(),
		Logf:    t.Logf,
	})
	defer ship2.Close()
	ship2.SetTarget(&cluster.Node{ID: "B", URL: follower.ts.URL})

	deadline := time.Now().Add(10 * time.Second)
	for {
		if epoch, _ := follower.cursor("A"); epoch == 2 {
			break
		}
		if time.Now().After(deadline) {
			epoch, seq := follower.cursor("A")
			t.Fatalf("follower never re-baselined to epoch 2 (at epoch %d seq %d)", epoch, seq)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The resynced follower must hold every user wholesale. Shipped records
	// are replayed lazily, so materialize before reading state — exactly
	// what promotion does before serving.
	fstore := follower.store
	if err := fstore.materializeReplicas(); err != nil {
		t.Fatal(err)
	}
	if got, want := fstore.UserCount(), primary.UserCount(); got != want {
		t.Fatalf("after resync follower has %d users, primary %d", got, want)
	}
	if err := primary.Close(); err != nil {
		t.Fatal(err)
	}
	follower.close()
}
