package cloud

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/profile"
	"repro/internal/simclock"
)

// flakyFront fails the first n requests per path with the given status, then
// proxies to the real cloud handler.
type flakyFront struct {
	inner    http.Handler
	mu       sync.Mutex
	failures map[string]int // path -> remaining failures
	status   int
	hits     map[string]int
}

func newFlakyFront(inner http.Handler, status int) *flakyFront {
	return &flakyFront{inner: inner, failures: map[string]int{}, status: status, hits: map[string]int{}}
}

func (f *flakyFront) failNext(path string, n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failures[path] = n
}

func (f *flakyFront) hitCount(path string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.hits[path]
}

func (f *flakyFront) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	f.hits[r.URL.Path]++
	fail := f.failures[r.URL.Path] > 0
	if fail {
		f.failures[r.URL.Path]--
	}
	status := f.status
	f.mu.Unlock()
	if fail {
		writeError(w, status, "injected failure")
		return
	}
	f.inner.ServeHTTP(w, r)
}

// resilienceRig wires a flaky front over a real cloud server plus a
// fast-retry client.
func resilienceRig(t *testing.T, status int) (*flakyFront, *Client) {
	t.Helper()
	store := NewStore(fixedNow(simclock.Epoch))
	front := newFlakyFront(NewServer(store).Handler(), status)
	srv := httptest.NewServer(front)
	t.Cleanup(srv.Close)
	c := NewClient(srv.URL, "imei-r", "r@example.com", srv.Client(), WithRetryPolicy(fastRetry()))
	if err := c.Register(); err != nil {
		t.Fatalf("register: %v", err)
	}
	return front, c
}

// TestIdempotentCallRetriesOn5xx: a GET that hits two 503s still succeeds on
// the third attempt.
func TestIdempotentCallRetriesOn5xx(t *testing.T) {
	front, c := resilienceRig(t, http.StatusServiceUnavailable)
	front.failNext(PathPlaces, 2)
	if _, err := c.Places(); err != nil {
		t.Fatalf("Places after 2 injected 503s: %v", err)
	}
	if got := front.hitCount(PathPlaces); got != 3 {
		t.Errorf("server saw %d attempts, want 3", got)
	}
}

// TestIdempotentCallRetriesOn429: rate-limit responses are retried too.
func TestIdempotentCallRetriesOn429(t *testing.T) {
	front, c := resilienceRig(t, http.StatusTooManyRequests)
	front.failNext(PathPlaces, 1)
	if _, err := c.Places(); err != nil {
		t.Fatalf("Places after injected 429: %v", err)
	}
	if got := front.hitCount(PathPlaces); got != 2 {
		t.Errorf("server saw %d attempts, want 2", got)
	}
}

// TestRetryBudgetExhausted: more consecutive faults than attempts surface
// the failure to the caller.
func TestRetryBudgetExhausted(t *testing.T) {
	front, c := resilienceRig(t, http.StatusServiceUnavailable)
	front.failNext(PathPlaces, 100)
	if _, err := c.Places(); err == nil {
		t.Fatal("expected failure once the retry budget is spent")
	}
	want := DefaultRetryPolicy().MaxAttempts
	if got := front.hitCount(PathPlaces); got != want {
		t.Errorf("server saw %d attempts, want %d", got, want)
	}
}

// TestClientErrorNotRetried: 4xx rejections are terminal.
func TestClientErrorNotRetried(t *testing.T) {
	front, c := resilienceRig(t, http.StatusBadRequest)
	front.failNext(PathPlaces, 100)
	if _, err := c.Places(); err == nil {
		t.Fatal("expected a 400 to surface")
	}
	if got := front.hitCount(PathPlaces); got != 1 {
		t.Errorf("server saw %d attempts, want 1 (no retry on 4xx)", got)
	}
}

// TestNonIdempotentCallNotRetried: contact uploads append server-side, so a
// transient failure must not be replayed automatically.
func TestNonIdempotentCallNotRetried(t *testing.T) {
	front, c := resilienceRig(t, http.StatusServiceUnavailable)
	front.failNext(PathContacts, 1)
	err := c.UploadContacts([]profile.Encounter{{ContactID: "c1", PlaceID: "p1", Start: simclock.Epoch, End: simclock.Epoch.Add(1)}})
	if err == nil {
		t.Fatal("expected the injected 503 to surface")
	}
	if got := front.hitCount(PathContacts); got != 1 {
		t.Errorf("server saw %d attempts, want 1 (append is not idempotent)", got)
	}
}

// TestErrorBodyBounded: a huge non-JSON error body is read through a limit
// and truncated into the returned error rather than buffered wholesale.
func TestErrorBodyBounded(t *testing.T) {
	huge := strings.Repeat("x", 4<<20)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(huge))
	}))
	t.Cleanup(srv.Close)
	c := NewClient(srv.URL, "imei-b", "b@example.com", srv.Client(), WithRetryPolicy(fastRetry()))
	err := c.Register()
	if err == nil {
		t.Fatal("expected the 400 to surface")
	}
	if len(err.Error()) > errorBodyLimit {
		t.Errorf("error message is %d bytes — body limit not applied", len(err.Error()))
	}
}

// TestSingleFlightTokenRecovery: N goroutines racing an invalid token must
// produce exactly one recovery round-trip (one refresh attempt, one
// re-register), not a stampede. Run under -race.
func TestSingleFlightTokenRecovery(t *testing.T) {
	store := NewStore(fixedNow(simclock.Epoch))
	inner := NewServer(store).Handler()
	var refreshes, registers atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case PathRefresh:
			refreshes.Add(1)
		case PathRegister:
			registers.Add(1)
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)

	c := NewClient(srv.URL, "imei-sf", "sf@example.com", srv.Client(), WithRetryPolicy(fastRetry()))
	if err := c.Register(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the token in place: every authed call now starts with a 401.
	c.mu.Lock()
	c.token = "corrupted-token"
	c.mu.Unlock()

	const workers = 16
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = c.Places()
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	// Exactly one goroutine performed the recovery: one refresh attempt
	// (rejected — the corrupted token is unknown) and one re-register on
	// top of the initial registration.
	if got := refreshes.Load(); got != 1 {
		t.Errorf("refresh round-trips = %d, want 1 (single-flight)", got)
	}
	if got := registers.Load(); got != 2 {
		t.Errorf("register round-trips = %d, want 2 (initial + one recovery)", got)
	}
}

// TestTimeoutMiddlewareUnwedgesSlowHandler: a handler that outlives the
// request deadline gets cut off with a JSON 503 that the retry layer
// classifies as transient — a wedged handler cannot pin the mux.
func TestTimeoutMiddlewareUnwedgesSlowHandler(t *testing.T) {
	release := make(chan struct{})
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done(): // middleware cancelled us
		case <-release:
		}
	})
	srv := httptest.NewServer(TimeoutMiddleware(slow, 30*time.Millisecond))
	t.Cleanup(func() { close(release); srv.Close() })

	c := NewClient(srv.URL, "imei-t", "t@example.com", srv.Client(),
		WithRetryPolicy(RetryPolicy{MaxAttempts: 1}))
	err := c.Register()
	if err == nil {
		t.Fatal("expected the timed-out request to fail")
	}
	var se *statusError
	if !errors.As(err, &se) || se.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want a 503 statusError", err)
	}
	if !retryable(se) {
		t.Error("a request timeout must be classified as retryable")
	}
}

// TestZeroTimeoutDisablesMiddleware: WithRequestTimeout(0) passes the mux
// through unwrapped.
func TestZeroTimeoutDisablesMiddleware(t *testing.T) {
	h := http.NewServeMux()
	if got := TimeoutMiddleware(h, 0); got != http.Handler(h) {
		t.Error("TimeoutMiddleware(h, 0) wrapped the handler")
	}
}

// TestExpiredTokenRecoveredTransparently: the simulated clock jumping past
// TokenTTL must not surface to callers — the client refreshes and retries.
func TestExpiredTokenRecoveredTransparently(t *testing.T) {
	ts := newTestServer(t)
	c := ts.client()
	if err := c.Register(); err != nil {
		t.Fatal(err)
	}
	*ts.now = ts.now.Add(TokenTTL + time.Hour)
	if _, err := c.Places(); err != nil {
		t.Fatalf("Places after token expiry: %v", err)
	}
}
