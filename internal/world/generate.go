package world

import (
	"fmt"
	"math/rand"

	"repro/internal/geo"
)

// Config controls world generation. The zero value is not useful; start from
// DefaultConfig.
type Config struct {
	// Origin is the city center; venues and infrastructure scatter around it.
	Origin geo.LatLng
	// ExtentMeters is the half-width of the square the city occupies.
	ExtentMeters float64

	// Venues per kind beyond the per-agent homes/workplaces, which the study
	// harness adds separately.
	PublicVenues int

	// Operators is the number of mobile network operators. Each operator
	// deploys a 2G layer everywhere and a 3G layer on a denser grid subset.
	Operators int
	// TowerGridMeters is the spacing of the 2G tower grid. Typical urban
	// macro-cell spacing is 500-1500 m.
	TowerGridMeters float64
	// TowerRangeMeters is the coverage radius of each tower. Must exceed the
	// grid spacing so several cells overlap everywhere (the precondition for
	// the oscillating effect).
	TowerRangeMeters float64

	// WiFiVenueFraction is the probability that a public venue has WiFi.
	// The paper contrasts ~60% observed WiFi coverage time in India with
	// ~90% in Switzerland.
	WiFiVenueFraction float64
	// StreetAPs is the number of additional APs scattered along streets.
	StreetAPs int
	// APRangeMeters is WiFi coverage radius (~indoor AP reach).
	APRangeMeters float64

	// MCC is the mobile country code stamped on all towers.
	MCC int
}

// DefaultConfig returns a city resembling the paper's deployment setting: a
// dense Indian metro area a few kilometres across, two operators, moderate
// WiFi coverage.
func DefaultConfig() Config {
	return Config{
		Origin:            geo.LatLng{Lat: 28.6139, Lng: 77.2090}, // New Delhi
		ExtentMeters:      4000,
		PublicVenues:      30,
		Operators:         2,
		TowerGridMeters:   800,
		TowerRangeMeters:  1400,
		WiFiVenueFraction: 0.60,
		StreetAPs:         40,
		APRangeMeters:     70,
		MCC:               404, // India
	}
}

var publicVenueKinds = []VenueKind{
	KindMarket, KindRestaurant, KindCafe, KindGym, KindLibrary,
	KindAcademic, KindMall, KindPark, KindCinema, KindClinic,
}

// Generate builds a world from the config using the supplied RNG. The same
// config and seed always produce the identical world.
func Generate(cfg Config, r *rand.Rand) *World {
	w := &World{}

	half := cfg.ExtentMeters
	corner := geo.Offset(geo.Offset(cfg.Origin, 180, half), 270, half) // SW corner
	w.Bounds = geo.Bounds{
		MinLat: corner.Lat,
		MinLng: corner.Lng,
	}
	ne := geo.Offset(geo.Offset(cfg.Origin, 0, half), 90, half)
	w.Bounds.MaxLat = ne.Lat
	w.Bounds.MaxLng = ne.Lng

	// Towers: jittered grid per operator. 2G everywhere, 3G on every other
	// grid point, co-located with an offset so layers have distinct ids and
	// slightly different coverage.
	cid := 10000
	lacSize := 4 // grid cells per location area edge
	n := int(2*half/cfg.TowerGridMeters) + 1
	for op := 1; op <= cfg.Operators; op++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				jx := (r.Float64() - 0.5) * cfg.TowerGridMeters * 0.4
				jy := (r.Float64() - 0.5) * cfg.TowerGridMeters * 0.4
				pos := geo.Offset(corner, 0, float64(i)*cfg.TowerGridMeters+jy)
				pos = geo.Offset(pos, 90, float64(j)*cfg.TowerGridMeters+jx)
				lac := 100*op + (i/lacSize)*10 + j/lacSize
				cid++
				w.Towers = append(w.Towers, &CellTower{
					ID:          CellID{MCC: cfg.MCC, MNC: op * 10, LAC: lac, CID: cid},
					Pos:         pos,
					RangeMeters: cfg.TowerRangeMeters * (0.85 + r.Float64()*0.3),
					Layer:       Layer2G,
				})
				if (i+j)%2 == 0 {
					cid++
					w.Towers = append(w.Towers, &CellTower{
						ID:          CellID{MCC: cfg.MCC, MNC: op * 10, LAC: lac, CID: cid},
						Pos:         geo.Offset(pos, r.Float64()*360, 30),
						RangeMeters: cfg.TowerRangeMeters * 0.7 * (0.85 + r.Float64()*0.3),
						Layer:       Layer3G,
					})
				}
			}
		}
	}

	// Public venues scattered across the extent.
	for i := 0; i < cfg.PublicVenues; i++ {
		kind := publicVenueKinds[i%len(publicVenueKinds)]
		pos := randomPointIn(cfg, r)
		v := &Venue{
			ID:           fmt.Sprintf("venue-%03d", i),
			Name:         fmt.Sprintf("%s %d", kind, i),
			Kind:         kind,
			Center:       pos,
			RadiusMeters: venueRadius(kind, r),
		}
		if kind != KindPark && r.Float64() < cfg.WiFiVenueFraction {
			v.HasWiFi = true
		}
		w.Venues = append(w.Venues, v)
	}

	// APs at WiFi venues.
	apSeq := 0
	for _, v := range w.Venues {
		if !v.HasWiFi {
			continue
		}
		installVenueAPs(w, v, cfg, r, &apSeq)
	}

	// Street APs.
	for i := 0; i < cfg.StreetAPs; i++ {
		apSeq++
		pos := randomPointIn(cfg, r)
		w.APs = append(w.APs, &AccessPoint{
			BSSID:       bssid(apSeq),
			SSID:        fmt.Sprintf("street-%d", i),
			Pos:         pos,
			RangeMeters: cfg.APRangeMeters * (0.8 + r.Float64()*0.4),
		})
	}

	w.index()
	return w
}

// AddVenue appends a venue generated at pos (used by the study harness to
// place per-participant homes and workplaces), installing APs when withWiFi
// is set, and reindexes the world.
func (w *World) AddVenue(id, name string, kind VenueKind, pos geo.LatLng, withWiFi bool, cfg Config, r *rand.Rand) *Venue {
	v := &Venue{
		ID:           id,
		Name:         name,
		Kind:         kind,
		Center:       pos,
		RadiusMeters: venueRadius(kind, r),
		HasWiFi:      withWiFi,
	}
	w.Venues = append(w.Venues, v)
	if withWiFi {
		apSeq := len(w.APs) + 1000
		installVenueAPs(w, v, cfg, r, &apSeq)
	}
	w.index()
	return v
}

// StandaloneVenue builds a venue at pos without installing APs and without
// attaching it to any world. The load harness uses it to give each lazily
// synthesized user private home/work venues: AddVenue mutates and reindexes
// the shared world, which is neither affordable nor safe when users are
// generated on demand from concurrent workers. The radius draw matches
// AddVenue's, so a standalone venue and an added venue built from the same
// RNG state have identical footprints.
func StandaloneVenue(id, name string, kind VenueKind, pos geo.LatLng, r *rand.Rand) *Venue {
	return &Venue{
		ID:           id,
		Name:         name,
		Kind:         kind,
		Center:       pos,
		RadiusMeters: venueRadius(kind, r),
	}
}

func installVenueAPs(w *World, v *Venue, cfg Config, r *rand.Rand, apSeq *int) {
	count := 1 + r.Intn(3) // 1-3 APs per venue
	if v.Kind == KindMall || v.Kind == KindAcademic || v.Kind == KindWorkplace {
		count += 2
	}
	for k := 0; k < count; k++ {
		*apSeq++
		pos := geo.Offset(v.Center, r.Float64()*360, r.Float64()*v.RadiusMeters*0.8)
		ap := &AccessPoint{
			BSSID:       bssid(*apSeq),
			SSID:        fmt.Sprintf("%s-wifi-%d", v.ID, k),
			Pos:         pos,
			RangeMeters: cfg.APRangeMeters * (0.8 + r.Float64()*0.4),
			VenueID:     v.ID,
		}
		v.APs = append(v.APs, ap.BSSID)
		w.APs = append(w.APs, ap)
	}
}

func randomPointIn(cfg Config, r *rand.Rand) geo.LatLng {
	dx := (r.Float64()*2 - 1) * cfg.ExtentMeters
	dy := (r.Float64()*2 - 1) * cfg.ExtentMeters
	p := geo.Offset(cfg.Origin, 0, dy)
	return geo.Offset(p, 90, dx)
}

func venueRadius(kind VenueKind, r *rand.Rand) float64 {
	base := map[VenueKind]float64{
		KindHome:       20,
		KindWorkplace:  60,
		KindMarket:     120,
		KindRestaurant: 25,
		KindCafe:       15,
		KindGym:        30,
		KindLibrary:    40,
		KindAcademic:   80,
		KindMall:       150,
		KindPark:       200,
		KindCinema:     60,
		KindClinic:     30,
	}[kind]
	if base == 0 {
		base = 40
	}
	return base * (0.8 + r.Float64()*0.4)
}

func bssid(seq int) string {
	return fmt.Sprintf("02:00:%02x:%02x:%02x:%02x",
		(seq>>24)&0xff, (seq>>16)&0xff, (seq>>8)&0xff, seq&0xff)
}
