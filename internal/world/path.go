package world

import (
	"hash/fnv"
	"math/rand"
	"sync"

	"repro/internal/geo"
)

// Path returns the street path an agent follows from a to b. The path is
// deterministic in the endpoints: the same trip taken on different days
// follows the same streets, which is what makes route discovery and route
// similarity meaningful (Section 2.1.2 treats routes between place pairs as
// recurring objects).
//
// The street model is Manhattan-style: travel east-west first, then
// north-south, with per-pair jitter via intermediate waypoints, resampled to
// ~25 m vertex spacing.
func (w *World) Path(a, b geo.LatLng) geo.Polyline {
	if w.paths == nil {
		w.paths = newPathCache()
	}
	return w.paths.get(a, b)
}

type pathKey struct{ a, b geo.LatLng }

type pathCache struct {
	mu sync.Mutex
	m  map[pathKey]geo.Polyline
}

func newPathCache() *pathCache {
	return &pathCache{m: make(map[pathKey]geo.Polyline)}
}

func (pc *pathCache) get(a, b geo.LatLng) geo.Polyline {
	pc.mu.Lock()
	defer pc.mu.Unlock()

	if pl, ok := pc.m[pathKey{a, b}]; ok {
		return pl
	}
	// Reverse trips follow the same streets backwards.
	if pl, ok := pc.m[pathKey{b, a}]; ok {
		rev := make(geo.Polyline, len(pl))
		for i, p := range pl {
			rev[len(pl)-1-i] = p
		}
		pc.m[pathKey{a, b}] = rev
		return rev
	}
	pl := buildPath(a, b)
	pc.m[pathKey{a, b}] = pl
	return pl
}

// buildPath constructs the deterministic Manhattan path with jitter derived
// from a hash of the endpoints.
func buildPath(a, b geo.LatLng) geo.Polyline {
	r := rand.New(rand.NewSource(pairSeed(a, b)))

	// Corner point: east-west leg then north-south leg (or the reverse,
	// chosen by the pair hash, so different pairs use different street
	// patterns).
	var corner geo.LatLng
	if r.Intn(2) == 0 {
		corner = geo.LatLng{Lat: a.Lat, Lng: b.Lng}
	} else {
		corner = geo.LatLng{Lat: b.Lat, Lng: a.Lng}
	}

	raw := geo.Polyline{a}
	for _, leg := range [][2]geo.LatLng{{a, corner}, {corner, b}} {
		legLen := geo.Distance(leg[0], leg[1])
		if legLen < 1 {
			continue
		}
		// Jittered waypoints every ~300 m simulate streets not being
		// perfectly straight.
		steps := int(legLen / 300)
		for s := 1; s <= steps; s++ {
			p := geo.Interpolate(leg[0], leg[1], float64(s)/float64(steps+1))
			p = geo.Offset(p, r.Float64()*360, r.Float64()*30)
			raw = append(raw, p)
		}
		raw = append(raw, leg[1])
	}
	return raw.Resample(25)
}

func pairSeed(a, b geo.LatLng) int64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(f float64) {
		v := int64(f * 1e6)
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		_, _ = h.Write(buf[:])
	}
	put(a.Lat)
	put(a.Lng)
	put(b.Lat)
	put(b.Lng)
	// Symmetric seed so A->B and B->A share street geometry even on a cold
	// cache: combine a second hash with endpoints swapped.
	h2 := fnv.New64a()
	put2 := func(f float64) {
		v := int64(f * 1e6)
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		_, _ = h2.Write(buf[:])
	}
	put2(b.Lat)
	put2(b.Lng)
	put2(a.Lat)
	put2(a.Lng)
	return int64(h.Sum64() ^ h2.Sum64())
}
