// Package world models the synthetic urban environment the PMWare
// reproduction runs in: venues (places of human interest), GSM cell towers,
// WiFi access points, and a deterministic path network between venues.
//
// The world stands in for the real deployments in the paper (Section 4): the
// sensor models in package trace sample it to produce the observation streams
// a phone's radios would produce. All generation is driven by an explicit
// *rand.Rand so a world is reproducible from a seed.
package world

import (
	"fmt"
	"sort"

	"repro/internal/geo"
)

// VenueKind categorizes a venue. The kind drives agent schedules (people go
// to work on weekdays), WiFi density (homes and offices have APs, parks
// rarely do), and PlaceADs targeting.
type VenueKind int

// Venue kinds, roughly the place categories named in the paper.
const (
	KindHome VenueKind = iota + 1
	KindWorkplace
	KindMarket
	KindRestaurant
	KindCafe
	KindGym
	KindLibrary
	KindAcademic
	KindMall
	KindPark
	KindCinema
	KindClinic
)

var venueKindNames = map[VenueKind]string{
	KindHome:       "home",
	KindWorkplace:  "workplace",
	KindMarket:     "market",
	KindRestaurant: "restaurant",
	KindCafe:       "cafe",
	KindGym:        "gym",
	KindLibrary:    "library",
	KindAcademic:   "academic",
	KindMall:       "mall",
	KindPark:       "park",
	KindCinema:     "cinema",
	KindClinic:     "clinic",
}

// String returns the lowercase kind name, or "unknown".
func (k VenueKind) String() string {
	if s, ok := venueKindNames[k]; ok {
		return s
	}
	return "unknown"
}

// AllVenueKinds lists every kind, in declaration order.
func AllVenueKinds() []VenueKind {
	return []VenueKind{
		KindHome, KindWorkplace, KindMarket, KindRestaurant, KindCafe, KindGym,
		KindLibrary, KindAcademic, KindMall, KindPark, KindCinema, KindClinic,
	}
}

// Venue is a physical place an agent can visit. It is the ground-truth unit
// the evaluation in Section 4 scores discovered places against.
type Venue struct {
	ID           string
	Name         string
	Kind         VenueKind
	Center       geo.LatLng
	RadiusMeters float64 // building footprint radius
	HasWiFi      bool
	APs          []string // BSSIDs of the APs installed at this venue
}

// Contains reports whether p is inside the venue footprint.
func (v *Venue) Contains(p geo.LatLng) bool {
	return geo.Distance(v.Center, p) <= v.RadiusMeters
}

// CellID identifies a GSM/UMTS cell the way a phone reports it: mobile
// country code, mobile network code, location area code, and cell id.
type CellID struct {
	MCC int `json:"mcc"`
	MNC int `json:"mnc"`
	LAC int `json:"lac"`
	CID int `json:"cid"`
}

// String renders the cell id in mcc-mnc-lac-cid form.
func (c CellID) String() string {
	return fmt.Sprintf("%d-%d-%d-%d", c.MCC, c.MNC, c.LAC, c.CID)
}

// CellTower is a base station. Towers belong to an operator (MNC) and a radio
// layer; co-located 2G/3G layers with distinct CIDs are what produce the
// inter-network handoff oscillation GCA must absorb.
type CellTower struct {
	ID          CellID
	Pos         geo.LatLng
	RangeMeters float64
	Layer       RadioLayer
}

// RadioLayer is the radio access technology of a tower.
type RadioLayer int

// Radio layers present in the simulated network.
const (
	Layer2G RadioLayer = iota + 1
	Layer3G
)

// String returns "2G" or "3G".
func (l RadioLayer) String() string {
	switch l {
	case Layer2G:
		return "2G"
	case Layer3G:
		return "3G"
	default:
		return "unknown"
	}
}

// AccessPoint is a WiFi AP with a fixed position and coverage radius.
type AccessPoint struct {
	BSSID       string
	SSID        string
	Pos         geo.LatLng
	RangeMeters float64
	VenueID     string // owning venue, or "" for a street AP
}

// World is the complete synthetic environment.
type World struct {
	Venues []*Venue
	Towers []*CellTower
	APs    []*AccessPoint
	Bounds geo.Bounds

	venueByID map[string]*Venue
	towerByID map[CellID]*CellTower
	apByBSSID map[string]*AccessPoint
	paths     *pathCache
}

// VenueByID returns the venue with the given id, or nil.
func (w *World) VenueByID(id string) *Venue { return w.venueByID[id] }

// TowerByID returns the tower with the given cell id, or nil.
func (w *World) TowerByID(id CellID) *CellTower { return w.towerByID[id] }

// APByBSSID returns the access point with the given BSSID, or nil.
func (w *World) APByBSSID(bssid string) *AccessPoint { return w.apByBSSID[bssid] }

// VenueAt returns the venue whose footprint contains p, preferring the
// closest center when footprints overlap. Returns nil when p is not inside
// any venue (i.e. the agent is in transit).
func (w *World) VenueAt(p geo.LatLng) *Venue {
	var best *Venue
	bestD := 0.0
	for _, v := range w.Venues {
		d := geo.Distance(v.Center, p)
		if d <= v.RadiusMeters && (best == nil || d < bestD) {
			best = v
			bestD = d
		}
	}
	return best
}

// TowersInRange returns towers whose coverage includes p, ordered by
// ascending distance (strongest-signal first under the path-loss model).
func (w *World) TowersInRange(p geo.LatLng) []*CellTower {
	type cand struct {
		t *CellTower
		d float64
	}
	var cands []cand
	for _, t := range w.Towers {
		if d := geo.Distance(t.Pos, p); d <= t.RangeMeters {
			cands = append(cands, cand{t, d})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d != cands[j].d {
			return cands[i].d < cands[j].d
		}
		return cands[i].t.ID.String() < cands[j].t.ID.String()
	})
	out := make([]*CellTower, len(cands))
	for i, c := range cands {
		out[i] = c.t
	}
	return out
}

// APsInRange returns access points whose coverage includes p, ordered by
// ascending distance with BSSID tie-break.
func (w *World) APsInRange(p geo.LatLng) []*AccessPoint {
	type cand struct {
		ap *AccessPoint
		d  float64
	}
	var cands []cand
	for _, ap := range w.APs {
		if d := geo.Distance(ap.Pos, p); d <= ap.RangeMeters {
			cands = append(cands, cand{ap, d})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d != cands[j].d {
			return cands[i].d < cands[j].d
		}
		return cands[i].ap.BSSID < cands[j].ap.BSSID
	})
	out := make([]*AccessPoint, len(cands))
	for i, c := range cands {
		out[i] = c.ap
	}
	return out
}

// index (re)builds the lookup maps. Called by the generator and by tests that
// assemble worlds by hand via Finalize.
func (w *World) index() {
	w.venueByID = make(map[string]*Venue, len(w.Venues))
	for _, v := range w.Venues {
		w.venueByID[v.ID] = v
	}
	w.towerByID = make(map[CellID]*CellTower, len(w.Towers))
	for _, t := range w.Towers {
		w.towerByID[t.ID] = t
	}
	w.apByBSSID = make(map[string]*AccessPoint, len(w.APs))
	for _, ap := range w.APs {
		w.apByBSSID[ap.BSSID] = ap
	}
	w.paths = newPathCache()
}

// Finalize builds internal indexes after manual construction. Worlds from
// Generate are already finalized.
func (w *World) Finalize() { w.index() }
