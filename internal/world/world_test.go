package world

import (
	"math/rand"
	"testing"

	"repro/internal/geo"
)

func testWorld(t *testing.T, seed int64) (*World, Config) {
	t.Helper()
	cfg := DefaultConfig()
	return Generate(cfg, rand.New(rand.NewSource(seed))), cfg
}

func TestGenerateDeterministic(t *testing.T) {
	w1, _ := testWorld(t, 1)
	w2, _ := testWorld(t, 1)
	if len(w1.Venues) != len(w2.Venues) || len(w1.Towers) != len(w2.Towers) || len(w1.APs) != len(w2.APs) {
		t.Fatal("same seed produced different worlds")
	}
	for i := range w1.Towers {
		if w1.Towers[i].ID != w2.Towers[i].ID || w1.Towers[i].Pos != w2.Towers[i].Pos {
			t.Fatalf("tower %d differs between identical seeds", i)
		}
	}
	for i := range w1.Venues {
		if w1.Venues[i].Center != w2.Venues[i].Center {
			t.Fatalf("venue %d differs between identical seeds", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	w1, _ := testWorld(t, 1)
	w2, _ := testWorld(t, 2)
	same := 0
	for i := range w1.Venues {
		if w1.Venues[i].Center == w2.Venues[i].Center {
			same++
		}
	}
	if same == len(w1.Venues) {
		t.Error("different seeds produced identical venue layouts")
	}
}

func TestGenerateCounts(t *testing.T) {
	w, cfg := testWorld(t, 3)
	if len(w.Venues) != cfg.PublicVenues {
		t.Errorf("venues = %d, want %d", len(w.Venues), cfg.PublicVenues)
	}
	if len(w.Towers) == 0 {
		t.Fatal("no towers generated")
	}
	// Two operators: MNC values 10 and 20 must both appear.
	mncs := map[int]int{}
	layers := map[RadioLayer]int{}
	for _, tw := range w.Towers {
		mncs[tw.ID.MNC]++
		layers[tw.Layer]++
	}
	if len(mncs) != cfg.Operators {
		t.Errorf("operators seen = %d, want %d", len(mncs), cfg.Operators)
	}
	if layers[Layer2G] == 0 || layers[Layer3G] == 0 {
		t.Errorf("expected both radio layers, got %v", layers)
	}
	if layers[Layer3G] >= layers[Layer2G] {
		t.Errorf("3G layer should be sparser than 2G: %v", layers)
	}
}

func TestTowerIDsUnique(t *testing.T) {
	w, _ := testWorld(t, 4)
	seen := map[CellID]bool{}
	for _, tw := range w.Towers {
		if seen[tw.ID] {
			t.Fatalf("duplicate cell id %v", tw.ID)
		}
		seen[tw.ID] = true
	}
}

func TestAPBSSIDsUnique(t *testing.T) {
	w, _ := testWorld(t, 5)
	seen := map[string]bool{}
	for _, ap := range w.APs {
		if seen[ap.BSSID] {
			t.Fatalf("duplicate BSSID %s", ap.BSSID)
		}
		seen[ap.BSSID] = true
	}
}

func TestFullCellCoverage(t *testing.T) {
	// Every point in the extent must be covered by at least one tower —
	// phones are "anyway connected to the cellular network" (Section 2.2.2).
	w, cfg := testWorld(t, 6)
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 200; i++ {
		p := randomPointIn(cfg, r)
		if len(w.TowersInRange(p)) == 0 {
			t.Fatalf("no cell coverage at %v", p)
		}
	}
}

func TestOverlappingCellsExist(t *testing.T) {
	// The oscillating effect requires multiple candidate cells at most
	// locations.
	w, cfg := testWorld(t, 7)
	r := rand.New(rand.NewSource(100))
	multi := 0
	const samples = 200
	for i := 0; i < samples; i++ {
		p := randomPointIn(cfg, r)
		if len(w.TowersInRange(p)) >= 3 {
			multi++
		}
	}
	if multi < samples*3/4 {
		t.Errorf("only %d/%d sample points see >=3 cells; oscillation model needs overlap", multi, samples)
	}
}

func TestTowersInRangeSortedByDistance(t *testing.T) {
	w, cfg := testWorld(t, 8)
	p := cfg.Origin
	towers := w.TowersInRange(p)
	for i := 1; i < len(towers); i++ {
		if geo.Distance(towers[i-1].Pos, p) > geo.Distance(towers[i].Pos, p)+1e-9 {
			t.Fatal("TowersInRange not sorted by distance")
		}
	}
}

func TestVenueLookupAndContains(t *testing.T) {
	w, _ := testWorld(t, 9)
	v := w.Venues[0]
	if got := w.VenueByID(v.ID); got != v {
		t.Errorf("VenueByID(%q) = %v", v.ID, got)
	}
	if w.VenueByID("nope") != nil {
		t.Error("VenueByID on unknown id should be nil")
	}
	if !v.Contains(v.Center) {
		t.Error("venue must contain its own center")
	}
	outside := geo.Offset(v.Center, 0, v.RadiusMeters+10)
	if v.Contains(outside) {
		t.Error("venue should not contain point outside radius")
	}
	if got := w.VenueAt(v.Center); got == nil {
		t.Error("VenueAt(center) returned nil")
	}
}

func TestVenueAtInTransit(t *testing.T) {
	w, cfg := testWorld(t, 10)
	// A point far outside the extent is in no venue.
	far := geo.Offset(cfg.Origin, 0, cfg.ExtentMeters*3)
	if v := w.VenueAt(far); v != nil {
		t.Errorf("VenueAt(far) = %v, want nil", v.ID)
	}
}

func TestVenueAPsBelongToVenue(t *testing.T) {
	w, _ := testWorld(t, 11)
	withWiFi := 0
	for _, v := range w.Venues {
		if !v.HasWiFi {
			if len(v.APs) != 0 {
				t.Errorf("venue %s has no WiFi but %d APs", v.ID, len(v.APs))
			}
			continue
		}
		withWiFi++
		if len(v.APs) == 0 {
			t.Errorf("WiFi venue %s has no APs", v.ID)
		}
		for _, b := range v.APs {
			ap := w.APByBSSID(b)
			if ap == nil {
				t.Fatalf("venue %s references unknown AP %s", v.ID, b)
			}
			if ap.VenueID != v.ID {
				t.Errorf("AP %s owned by %q, referenced by %q", b, ap.VenueID, v.ID)
			}
			// AP must cover the venue center so dwelling agents see it.
			if geo.Distance(ap.Pos, v.Center) > v.RadiusMeters+ap.RangeMeters {
				t.Errorf("AP %s cannot be heard from venue %s center", b, v.ID)
			}
		}
	}
	if withWiFi == 0 {
		t.Error("no WiFi venues generated at 60% fraction")
	}
}

func TestWiFiFractionRespected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PublicVenues = 200
	cfg.WiFiVenueFraction = 0.6
	w := Generate(cfg, rand.New(rand.NewSource(12)))
	wifi := 0
	eligible := 0
	for _, v := range w.Venues {
		if v.Kind == KindPark {
			continue
		}
		eligible++
		if v.HasWiFi {
			wifi++
		}
	}
	frac := float64(wifi) / float64(eligible)
	if frac < 0.45 || frac > 0.75 {
		t.Errorf("WiFi fraction = %.2f, want ~0.6", frac)
	}
}

func TestAddVenue(t *testing.T) {
	w, cfg := testWorld(t, 13)
	r := rand.New(rand.NewSource(77))
	pos := geo.Offset(cfg.Origin, 45, 500)
	before := len(w.APs)
	v := w.AddVenue("home-u1", "Home of u1", KindHome, pos, true, cfg, r)
	if w.VenueByID("home-u1") != v {
		t.Fatal("AddVenue did not index the venue")
	}
	if len(v.APs) == 0 || len(w.APs) == before {
		t.Error("AddVenue with WiFi installed no APs")
	}
	if w.VenueAt(pos) != v && !v.Contains(pos) {
		t.Error("added venue not found at its position")
	}
}

func TestPathDeterministicAndConnected(t *testing.T) {
	w, cfg := testWorld(t, 14)
	a := cfg.Origin
	b := geo.Offset(a, 60, 2500)
	p1 := w.Path(a, b)
	p2 := w.Path(a, b)
	if len(p1) != len(p2) {
		t.Fatal("same trip produced different paths")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("same trip produced different paths")
		}
	}
	if p1[0] != a || p1[len(p1)-1] != b {
		t.Error("path endpoints wrong")
	}
	// Manhattan path should be at least as long as the crow-flies distance
	// and not absurdly longer.
	direct := geo.Distance(a, b)
	if l := p1.Length(); l < direct || l > direct*2 {
		t.Errorf("path length %.0f vs direct %.0f out of expected band", l, direct)
	}
}

func TestPathReverseSharesStreets(t *testing.T) {
	w, cfg := testWorld(t, 15)
	a := cfg.Origin
	b := geo.Offset(a, 120, 1800)
	fwd := w.Path(a, b)
	rev := w.Path(b, a)
	if len(fwd) != len(rev) {
		t.Fatalf("reverse path length differs: %d vs %d", len(fwd), len(rev))
	}
	for i := range fwd {
		if fwd[i] != rev[len(rev)-1-i] {
			t.Fatal("reverse path is not the forward path reversed")
		}
	}
}

func TestVenueKindString(t *testing.T) {
	if KindHome.String() != "home" || KindAcademic.String() != "academic" {
		t.Error("kind names wrong")
	}
	if VenueKind(999).String() != "unknown" {
		t.Error("unknown kind should stringify to unknown")
	}
	if len(AllVenueKinds()) != 12 {
		t.Errorf("AllVenueKinds = %d entries", len(AllVenueKinds()))
	}
}

func TestRadioLayerString(t *testing.T) {
	if Layer2G.String() != "2G" || Layer3G.String() != "3G" || RadioLayer(0).String() != "unknown" {
		t.Error("radio layer names wrong")
	}
}

func TestCellIDString(t *testing.T) {
	id := CellID{MCC: 404, MNC: 10, LAC: 101, CID: 12345}
	if got := id.String(); got != "404-10-101-12345" {
		t.Errorf("CellID.String() = %q", got)
	}
}

func TestBoundsCoverVenues(t *testing.T) {
	w, _ := testWorld(t, 16)
	for _, v := range w.Venues {
		if !w.Bounds.Contains(v.Center) {
			t.Errorf("venue %s at %v outside world bounds", v.ID, v.Center)
		}
	}
}

func TestVenueAtPrefersClosestCenter(t *testing.T) {
	// Two overlapping venues: the one whose center is nearer wins.
	w := &World{}
	a := &Venue{ID: "a", Kind: KindMall, Center: geo.LatLng{Lat: 28.6, Lng: 77.2}, RadiusMeters: 200}
	b := &Venue{ID: "b", Kind: KindCafe, Center: geo.Offset(a.Center, 90, 150), RadiusMeters: 200}
	w.Venues = []*Venue{a, b}
	w.Finalize()

	nearA := geo.Offset(a.Center, 90, 10)
	if got := w.VenueAt(nearA); got == nil || got.ID != "a" {
		t.Errorf("VenueAt near a = %v", got)
	}
	nearB := geo.Offset(b.Center, 90, 10)
	if got := w.VenueAt(nearB); got == nil || got.ID != "b" {
		t.Errorf("VenueAt near b = %v", got)
	}
}

func TestFinalizeIndexesManualWorld(t *testing.T) {
	w := &World{
		Venues: []*Venue{{ID: "v1", Kind: KindPark, Center: geo.LatLng{Lat: 28.6, Lng: 77.2}, RadiusMeters: 50}},
		Towers: []*CellTower{{ID: CellID{MCC: 1, MNC: 2, LAC: 3, CID: 4}, Pos: geo.LatLng{Lat: 28.6, Lng: 77.2}, RangeMeters: 500, Layer: Layer2G}},
		APs:    []*AccessPoint{{BSSID: "aa", Pos: geo.LatLng{Lat: 28.6, Lng: 77.2}, RangeMeters: 50}},
	}
	w.Finalize()
	if w.VenueByID("v1") == nil || w.TowerByID(CellID{MCC: 1, MNC: 2, LAC: 3, CID: 4}) == nil || w.APByBSSID("aa") == nil {
		t.Error("Finalize did not index")
	}
	// Path works on a manual world too.
	p := w.Path(geo.LatLng{Lat: 28.6, Lng: 77.2}, geo.LatLng{Lat: 28.61, Lng: 77.21})
	if len(p) < 2 {
		t.Error("Path on manual world failed")
	}
}
