package route

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/simclock"
	"repro/internal/trace"
	"repro/internal/world"
)

func cid(c int) world.CellID { return world.CellID{MCC: 404, MNC: 10, LAC: 1, CID: c} }

func cells(ids ...int) []world.CellID {
	out := make([]world.CellID, len(ids))
	for i, c := range ids {
		out[i] = cid(c)
	}
	return out
}

func TestLCSRatio(t *testing.T) {
	tests := []struct {
		name string
		a, b []world.CellID
		want float64
	}{
		{"identical", cells(1, 2, 3), cells(1, 2, 3), 1},
		{"disjoint", cells(1, 2, 3), cells(4, 5, 6), 0},
		{"subsequence", cells(1, 2, 3, 4), cells(1, 3), 0.5},
		{"empty", nil, cells(1), 0},
		{"reordered", cells(1, 2, 3), cells(3, 2, 1), 1.0 / 3.0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := lcsRatio(tt.a, tt.b); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("lcsRatio = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestLCSSymmetric(t *testing.T) {
	a, b := cells(1, 2, 3, 4, 5, 6), cells(2, 4, 9, 6, 7)
	if lcsRatio(a, b) != lcsRatio(b, a) {
		t.Error("lcsRatio not symmetric")
	}
}

func TestCompressCells(t *testing.T) {
	obs := []trace.GSMObservation{
		{Cell: cid(1)}, {Cell: cid(1)}, {Cell: cid(2)}, {Cell: cid(2)}, {Cell: cid(1)}, {Cell: cid(3)},
	}
	got := compressCells(obs)
	want := cells(1, 2, 1, 3)
	if len(got) != len(want) {
		t.Fatalf("compress = %v", got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("compress = %v, want %v", got, want)
		}
	}
	if compressCells(nil) != nil {
		t.Error("empty compress should be nil")
	}
}

func mkVisits(times ...int) []Interval {
	// times are pairs of minutes: start0, end0, start1, end1, ...
	var out []Interval
	for i := 0; i+1 < len(times); i += 2 {
		out = append(out, Interval{
			Start: simclock.Epoch.Add(time.Duration(times[i]) * time.Minute),
			End:   simclock.Epoch.Add(time.Duration(times[i+1]) * time.Minute),
		})
	}
	return out
}

func TestGapsBand(t *testing.T) {
	p := DefaultParams()
	// Gap of 20 min (ok), gap of 1 min (too short), gap of 5 h (too long).
	visits := mkVisits(0, 60, 80, 100, 101, 200, 500, 600)
	got := gaps(visits, p)
	if len(got) != 1 {
		t.Fatalf("gaps = %d, want 1", len(got))
	}
	if got[0].Start != simclock.Epoch.Add(60*time.Minute) {
		t.Errorf("gap start = %v", got[0].Start)
	}
}

// obsOverGap lays down one observation per minute with the given cells
// across [startMin, startMin+len).
func obsOverGap(startMin int, cs []world.CellID) []trace.GSMObservation {
	out := make([]trace.GSMObservation, len(cs))
	for i, c := range cs {
		out[i] = trace.GSMObservation{At: simclock.Epoch.Add(time.Duration(startMin+i) * time.Minute), Cell: c}
	}
	return out
}

func TestExtractGSMMergesRecurringTrips(t *testing.T) {
	p := DefaultParams()
	// Two commutes over the same cells, one different errand.
	var obs []trace.GSMObservation
	obs = append(obs, obsOverGap(60, cells(1, 2, 3, 4, 5))...)      // commute A
	obs = append(obs, obsOverGap(200, cells(1, 2, 3, 4, 5))...)     // commute A again
	obs = append(obs, obsOverGap(340, cells(9, 10, 11, 12, 13))...) // errand B
	visits := mkVisits(0, 60, 65, 200, 205, 340, 345, 400)
	routes := ExtractGSM(obs, visits, p)
	if len(routes) != 2 {
		t.Fatalf("routes = %d, want 2", len(routes))
	}
	var commute *GSMRoute
	for _, r := range routes {
		if r.Frequency() == 2 {
			commute = r
		}
	}
	if commute == nil {
		t.Fatal("recurring commute not merged (no route with frequency 2)")
	}
}

func TestExtractGSMMinCells(t *testing.T) {
	p := DefaultParams()
	obs := obsOverGap(60, cells(1, 1, 1)) // compresses to 1 cell
	visits := mkVisits(0, 60, 63, 120)
	if routes := ExtractGSM(obs, visits, p); len(routes) != 0 {
		t.Errorf("degenerate transit produced %d routes", len(routes))
	}
}

func TestExtractGPSMergesByGeometry(t *testing.T) {
	p := DefaultParams()
	origin := geo.LatLng{Lat: 28.6139, Lng: 77.2090}
	dest := geo.Offset(origin, 90, 2000)
	path := geo.Polyline{origin, dest}.Resample(100)

	fixAlong := func(startMin int, pl geo.Polyline, offsetM float64) []trace.GPSFix {
		out := make([]trace.GPSFix, len(pl))
		for i, pt := range pl {
			if offsetM > 0 {
				pt = geo.Offset(pt, 0, offsetM)
			}
			out[i] = trace.GPSFix{At: simclock.Epoch.Add(time.Duration(startMin) * time.Minute).Add(time.Duration(i) * 20 * time.Second), Pos: pt, Valid: true}
		}
		return out
	}

	var fixes []trace.GPSFix
	fixes = append(fixes, fixAlong(60, path, 0)...)   // trip 1
	fixes = append(fixes, fixAlong(200, path, 30)...) // trip 2, 30 m offset: same route
	// trip 3: far parallel road, 800 m away: distinct route.
	fixes = append(fixes, fixAlong(340, path, 800)...)

	visits := mkVisits(0, 60, 68, 200, 208, 340, 348, 420)
	routes := ExtractGPS(fixes, visits, p)
	if len(routes) != 2 {
		t.Fatalf("routes = %d, want 2", len(routes))
	}
	var main *GPSRoute
	for _, r := range routes {
		if r.Frequency() == 2 {
			main = r
		}
	}
	if main == nil {
		t.Fatal("same-street trips not merged")
	}
}

func TestExtractGPSSkipsSparseTrips(t *testing.T) {
	p := DefaultParams()
	fixes := []trace.GPSFix{{At: simclock.Epoch.Add(61 * time.Minute), Pos: geo.LatLng{Lat: 28.6, Lng: 77.2}, Valid: true}}
	visits := mkVisits(0, 60, 70, 120)
	if routes := ExtractGPS(fixes, visits, p); len(routes) != 0 {
		t.Errorf("single-fix trip produced %d routes", len(routes))
	}
}

func TestSimilarityGPS(t *testing.T) {
	origin := geo.LatLng{Lat: 28.6139, Lng: 77.2090}
	a := geo.Polyline{origin, geo.Offset(origin, 90, 1000)}.Resample(50)
	b := make(geo.Polyline, len(a))
	for i, p := range a {
		b[i] = geo.Offset(p, 0, 100)
	}
	got := SimilarityGPS(a, b, 400)
	if got < 0.6 || got > 0.85 {
		t.Errorf("similarity = %v, want ~0.75 for 100 m offset at 400 m scale", got)
	}
	if SimilarityGPS(a, a, 400) != 1 {
		t.Error("self similarity != 1")
	}
	if SimilarityGPS(a, b, 0) != 0 {
		t.Error("zero scale should be 0")
	}
	if SimilarityGPS(nil, b, 400) != 0 {
		t.Error("empty polyline should be 0")
	}
	far := make(geo.Polyline, len(a))
	for i, p := range a {
		far[i] = geo.Offset(p, 0, 5000)
	}
	if SimilarityGPS(a, far, 400) != 0 {
		t.Error("far route similarity should clamp to 0")
	}
}

func TestEndToEndCommuteRoutes(t *testing.T) {
	// A week of simulated life: the home<->work commute must emerge as a
	// recurring GSM route.
	cfg := world.DefaultConfig()
	cfg.TowerGridMeters = 500
	cfg.TowerRangeMeters = 800
	r := rand.New(rand.NewSource(61))
	w := world.Generate(cfg, r)
	home := w.AddVenue("home", "Home", world.KindHome, geo.Offset(cfg.Origin, 210, 2300), true, cfg, r)
	work := w.AddVenue("work", "Office", world.KindWorkplace, geo.Offset(cfg.Origin, 30, 2400), true, cfg, r)
	a := &mobility.Agent{ID: "u1", Home: home, Work: work, SpeedMPS: 7}
	it, err := mobility.BuildItinerary(a, w, simclock.Epoch, 7, mobility.DefaultScheduleConfig(), rand.New(rand.NewSource(62)))
	if err != nil {
		t.Fatal(err)
	}
	s := trace.NewSensors(w, it, trace.DefaultConfig(), rand.New(rand.NewSource(63)))
	obs := s.CollectGSM(it.Start, it.End, time.Minute)

	// Ground-truth visits as intervals.
	var visits []Interval
	for _, v := range it.SignificantVisits(10 * time.Minute) {
		visits = append(visits, Interval{Start: v.Arrive, End: v.Depart})
	}
	routes := ExtractGSM(obs, visits, DefaultParams())
	if len(routes) == 0 {
		t.Fatal("no routes from a commuting week")
	}
	maxFreq := 0
	for _, rt := range routes {
		if rt.Frequency() > maxFreq {
			maxFreq = rt.Frequency()
		}
	}
	if maxFreq < 3 {
		t.Errorf("most frequent route traversed %d times; commute should recur >= 3 in a week", maxFreq)
	}
}

func TestTripDuration(t *testing.T) {
	tr := Trip{Start: simclock.Epoch, End: simclock.Epoch.Add(25 * time.Minute)}
	if tr.Duration() != 25*time.Minute {
		t.Errorf("duration = %v", tr.Duration())
	}
}
