// Package route implements PMWare's route discovery and similarity services
// (paper Sections 2.1.2, 2.2.2, 2.3.1). The path between two places is a
// route; in low accuracy mode it is the time-ordered Cell-ID sequence
// observed in transit (R_i = {c1..c10}), in high accuracy mode the GPS
// trajectory (R_i = {g1..g15}). Recurring trips over the same streets are
// merged into one route.
package route

import (
	"time"

	"repro/internal/geo"
	"repro/internal/trace"
	"repro/internal/world"
)

// Params tunes route extraction and matching.
type Params struct {
	// MinTripDuration / MaxTripDuration bound plausible inter-place trips;
	// gaps outside the band are ignored (tracking glitches, overnight gaps).
	MinTripDuration time.Duration
	MaxTripDuration time.Duration
	// MinCells is the minimum compressed cell-sequence length for a GSM
	// route (shorter transits are noise).
	MinCells int
	// GSMMatchRatio is the normalized LCS ratio above which two cell
	// sequences are the same route.
	GSMMatchRatio float64
	// GPSMatchDistanceM is the Hausdorff distance below which two
	// trajectories are the same route.
	GPSMatchDistanceM float64
	// ResampleM is the vertex spacing for stored GPS trajectories.
	ResampleM float64
}

// DefaultParams returns the parameters used by the deployment study.
func DefaultParams() Params {
	return Params{
		MinTripDuration:   3 * time.Minute,
		MaxTripDuration:   3 * time.Hour,
		MinCells:          3,
		GSMMatchRatio:     0.55,
		GPSMatchDistanceM: 300,
		ResampleM:         50,
	}
}

// Interval is a place-visit interval; the gaps between consecutive intervals
// are the trips routes are extracted from.
type Interval struct {
	Start time.Time
	End   time.Time
}

// Trip is one traversal of a route.
type Trip struct {
	Start time.Time
	End   time.Time
}

// Duration returns the traversal time.
func (t Trip) Duration() time.Duration { return t.End.Sub(t.Start) }

// GSMRoute is a low-accuracy route: a canonical Cell-ID sequence plus every
// traversal matched to it.
type GSMRoute struct {
	ID    int
	Cells []world.CellID
	Trips []Trip
}

// Frequency returns how many times the route was traversed.
func (r *GSMRoute) Frequency() int { return len(r.Trips) }

// GPSRoute is a high-accuracy route: a canonical trajectory plus traversals.
type GPSRoute struct {
	ID    int
	Path  geo.Polyline
	Trips []Trip
}

// Frequency returns how many times the route was traversed.
func (r *GPSRoute) Frequency() int { return len(r.Trips) }

// gaps returns the inter-visit intervals within the duration band. Visits
// must be time-ordered.
func gaps(visits []Interval, p Params) []Interval {
	var out []Interval
	for i := 1; i < len(visits); i++ {
		g := Interval{Start: visits[i-1].End, End: visits[i].Start}
		d := g.End.Sub(g.Start)
		if d >= p.MinTripDuration && d <= p.MaxTripDuration {
			out = append(out, g)
		}
	}
	return out
}

// compressCells collapses consecutive duplicate serving cells into the
// distinct transition sequence.
func compressCells(obs []trace.GSMObservation) []world.CellID {
	var out []world.CellID
	for _, o := range obs {
		if len(out) == 0 || out[len(out)-1] != o.Cell {
			out = append(out, o.Cell)
		}
	}
	return out
}

// lcsRatio returns len(LCS(a, b)) / max(len(a), len(b)).
func lcsRatio(a, b []world.CellID) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	// Classic DP, O(len(a)*len(b)); trip sequences are tens of cells.
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	lcs := prev[len(b)]
	den := len(a)
	if len(b) > den {
		den = len(b)
	}
	return float64(lcs) / float64(den)
}

// ExtractGSM extracts low-accuracy routes: for every inter-visit gap, the
// compressed serving-cell sequence becomes a traversal, merged into an
// existing route when the LCS ratio clears GSMMatchRatio.
func ExtractGSM(obs []trace.GSMObservation, visits []Interval, p Params) []*GSMRoute {
	var routes []*GSMRoute
	for _, g := range gaps(visits, p) {
		var seg []trace.GSMObservation
		for _, o := range obs {
			if !o.At.Before(g.Start) && !o.At.After(g.End) {
				seg = append(seg, o)
			}
		}
		cells := compressCells(seg)
		if len(cells) < p.MinCells {
			continue
		}
		trip := Trip{Start: g.Start, End: g.End}

		var best *GSMRoute
		bestRatio := p.GSMMatchRatio
		for _, r := range routes {
			if ratio := lcsRatio(r.Cells, cells); ratio >= bestRatio {
				best, bestRatio = r, ratio
			}
		}
		if best == nil {
			routes = append(routes, &GSMRoute{ID: len(routes), Cells: cells, Trips: []Trip{trip}})
		} else {
			best.Trips = append(best.Trips, trip)
			// Keep the longer sequence as canonical (richer signature).
			if len(cells) > len(best.Cells) {
				best.Cells = cells
			}
		}
	}
	return routes
}

// ExtractGPS extracts high-accuracy routes from GPS fixes: the trajectory in
// each inter-visit gap becomes a traversal, merged by Hausdorff distance.
// This is the paper's high accuracy mode, where WiFi detects the departure
// and GPS tracks the route.
func ExtractGPS(fixes []trace.GPSFix, visits []Interval, p Params) []*GPSRoute {
	var routes []*GPSRoute
	for _, g := range gaps(visits, p) {
		var path geo.Polyline
		for _, f := range fixes {
			if f.Valid && !f.At.Before(g.Start) && !f.At.After(g.End) {
				path = append(path, f.Pos)
			}
		}
		if len(path) < 2 {
			continue
		}
		path = path.Resample(p.ResampleM)
		trip := Trip{Start: g.Start, End: g.End}

		var best *GPSRoute
		bestD := p.GPSMatchDistanceM
		for _, r := range routes {
			if d := geo.HausdorffDistance(r.Path, path); d <= bestD {
				best, bestD = r, d
			}
		}
		if best == nil {
			routes = append(routes, &GPSRoute{ID: len(routes), Path: path, Trips: []Trip{trip}})
		} else {
			best.Trips = append(best.Trips, trip)
		}
	}
	return routes
}

// SimilarityGSM returns the normalized LCS similarity between two cell
// sequences — the cloud instance's route-similarity service for low-accuracy
// routes.
func SimilarityGSM(a, b []world.CellID) float64 { return lcsRatio(a, b) }

// SimilarityGPS returns a [0,1] similarity between two trajectories derived
// from their Hausdorff distance with scale (1 at 0 m, 0 at >= scaleM).
func SimilarityGPS(a, b geo.Polyline, scaleM float64) float64 {
	if scaleM <= 0 || len(a) == 0 || len(b) == 0 {
		return 0
	}
	d := geo.HausdorffDistance(a, b)
	if d >= scaleM {
		return 0
	}
	return 1 - d/scaleM
}
