package meetup

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/simclock"
)

func encounter(peer, place string, startMin, endMin int) core.Intent {
	return core.Intent{
		Action: core.ActionEncounter,
		Encounter: &core.EncounterInfo{
			PeerID:  peer,
			PlaceID: place,
			Start:   simclock.Epoch.Add(time.Duration(startMin) * time.Minute),
			End:     simclock.Epoch.Add(time.Duration(endMin) * time.Minute),
		},
	}
}

func TestJournalAccumulates(t *testing.T) {
	app := New()
	app.handle(encounter("u2", "work", 0, 30))
	app.handle(encounter("u2", "work", 100, 160))
	app.handle(encounter("u2", "gym", 300, 330))
	app.handle(encounter("u3", "cafe", 0, 10))

	if app.EncounterCount() != 4 {
		t.Errorf("events = %d", app.EncounterCount())
	}
	contacts := app.Contacts()
	if len(contacts) != 2 {
		t.Fatalf("contacts = %d", len(contacts))
	}
	// Most-met first.
	if contacts[0].PeerID != "u2" || contacts[0].Encounters != 3 {
		t.Errorf("top contact = %+v", contacts[0])
	}
	if contacts[0].TotalTime != 120*time.Minute {
		t.Errorf("total time = %v", contacts[0].TotalTime)
	}
	if contacts[0].Places["work"] != 2 || contacts[0].Places["gym"] != 1 {
		t.Errorf("places = %v", contacts[0].Places)
	}
}

func TestNilEncounterIgnored(t *testing.T) {
	app := New()
	app.handle(core.Intent{Action: core.ActionEncounter})
	if app.EncounterCount() != 0 {
		t.Error("nil encounter counted")
	}
}

func TestContactsReturnsCopies(t *testing.T) {
	app := New()
	app.handle(encounter("u2", "work", 0, 30))
	cs := app.Contacts()
	cs[0].Places["work"] = 99
	if app.Contacts()[0].Places["work"] != 1 {
		t.Error("Contacts leaked internal map")
	}
}

func TestTieBreakByPeerID(t *testing.T) {
	app := New()
	app.handle(encounter("zed", "work", 0, 30))
	app.handle(encounter("amy", "work", 0, 30))
	cs := app.Contacts()
	if cs[0].PeerID != "amy" {
		t.Errorf("tie break wrong: %v", cs[0].PeerID)
	}
}
