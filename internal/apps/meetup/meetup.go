// Package meetup implements a social connected application of the kind the
// paper motivates ("organizing meetups"): it asks PMWare for social-contact
// discovery, receives encounter intents whenever the user spends time near
// another PMWare user at a place, and keeps a per-peer contact journal that
// could seed meetup suggestions ("you and u07 are both at the gym on
// Tuesdays").
package meetup

import (
	"sort"
	"sync"
	"time"

	"repro/internal/core"
)

// AppID is the connected-application identifier.
const AppID = "meetup"

// Contact summarizes the history with one peer.
type Contact struct {
	PeerID     string
	Encounters int
	TotalTime  time.Duration
	// Places maps place IDs to the number of encounters there.
	Places map[string]int
}

// App is the meetup connected application.
type App struct {
	mu sync.Mutex

	// TargetPlaceIDs optionally narrows sensing to specific places
	// (PMWare's targeted social sensing, e.g. workplace only). Set before
	// Attach.
	TargetPlaceIDs []string

	contacts map[string]*Contact
	events   int
}

// New builds the app.
func New() *App {
	return &App{contacts: map[string]*Contact{}}
}

// Attach connects the app to PMWare: area-level place accuracy is enough (it
// just needs place identity for journaling), plus social discovery.
func (a *App) Attach(svc *core.Service) error {
	return svc.Connect(
		core.Requirement{
			AppID:          AppID,
			Granularity:    core.GranularityArea,
			Social:         true,
			TargetPlaceIDs: a.TargetPlaceIDs,
		},
		core.Filter{Actions: []string{core.ActionEncounter}},
		a.handle,
	)
}

func (a *App) handle(in core.Intent) {
	if in.Encounter == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.events++
	c, ok := a.contacts[in.Encounter.PeerID]
	if !ok {
		c = &Contact{PeerID: in.Encounter.PeerID, Places: map[string]int{}}
		a.contacts[in.Encounter.PeerID] = c
	}
	c.Encounters++
	c.TotalTime += in.Encounter.End.Sub(in.Encounter.Start)
	c.Places[in.Encounter.PlaceID]++
}

// Contacts returns the journal, most-met peers first.
func (a *App) Contacts() []Contact {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Contact, 0, len(a.contacts))
	for _, c := range a.contacts {
		cc := Contact{
			PeerID:     c.PeerID,
			Encounters: c.Encounters,
			TotalTime:  c.TotalTime,
			Places:     make(map[string]int, len(c.Places)),
		}
		for k, v := range c.Places {
			cc.Places[k] = v
		}
		out = append(out, cc)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Encounters != out[j].Encounters {
			return out[i].Encounters > out[j].Encounters
		}
		return out[i].PeerID < out[j].PeerID
	})
	return out
}

// EncounterCount returns the total number of encounter intents received.
func (a *App) EncounterCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.events
}
