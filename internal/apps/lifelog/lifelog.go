// Package lifelog implements the life-logging application PMWare ships with
// (paper Section 3, Figure 4): it visualizes every discovered place, lets
// the user validate and tag places with semantic labels, and renders
// fine-grained mobility history (stay time per place, visiting days) from
// the PMWare profiles.
package lifelog

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
)

// AppID is the connected-application identifier.
const AppID = "lifelog"

// App is the life-logging connected application.
type App struct {
	svc *core.Service

	newPlaces []core.PlaceInfo
}

// New builds the app.
func New() *App { return &App{} }

// Attach connects the app. Life logging wants building-level places and
// low-accuracy routes (Figure 2).
func (a *App) Attach(svc *core.Service) error {
	a.svc = svc
	return svc.Connect(
		core.Requirement{AppID: AppID, Granularity: core.GranularityBuilding, Routes: core.RouteLow},
		core.Filter{Actions: []string{core.ActionNewPlace, core.ActionPlaceLabeled}},
		a.handle,
	)
}

func (a *App) handle(in core.Intent) {
	if in.Action == core.ActionNewPlace && in.Place != nil {
		a.newPlaces = append(a.newPlaces, *in.Place)
	}
}

// NewPlaceCount returns how many new-place notifications arrived.
func (a *App) NewPlaceCount() int { return len(a.newPlaces) }

// Tag records a user-provided label for a place — the Figure 4.b tagging
// flow. It forwards to the middleware so every connected app benefits
// ("PMWare unifies the human intervention process").
func (a *App) Tag(placeID, label string) error {
	if a.svc == nil {
		return fmt.Errorf("lifelog: not attached")
	}
	return a.svc.LabelPlace(placeID, label)
}

// PlaceSummary is one row of the places list (Figure 4.b/4.c).
type PlaceSummary struct {
	ID        string
	Label     string
	Visits    int
	TotalStay time.Duration
	VisitDays []string // dates with at least one visit
}

// Summaries computes the mobility-history view from the service's places
// and profiles.
func (a *App) Summaries() []PlaceSummary {
	if a.svc == nil {
		return nil
	}
	days := map[string]map[string]bool{} // placeID -> set of dates
	for _, p := range a.svc.Profiles() {
		for _, v := range p.Places {
			if days[v.PlaceID] == nil {
				days[v.PlaceID] = map[string]bool{}
			}
			days[v.PlaceID][p.Date] = true
		}
	}
	var out []PlaceSummary
	for _, p := range a.svc.Places() {
		s := PlaceSummary{
			ID:        p.ID,
			Label:     p.Label,
			Visits:    len(p.Visits),
			TotalStay: p.TotalDwell(),
		}
		for d := range days[p.ID] {
			s.VisitDays = append(s.VisitDays, d)
		}
		sort.Strings(s.VisitDays)
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TotalStay > out[j].TotalStay })
	return out
}

// Render prints the places list as the app's text UI.
func (a *App) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-6s %-12s %7s %12s %s\n", "place", "label", "visits", "stay", "days")
	for _, s := range a.Summaries() {
		label := s.Label
		if label == "" {
			label = "(untagged)"
		}
		fmt.Fprintf(&sb, "%-6s %-12s %7d %12s %d\n",
			s.ID, label, s.Visits, s.TotalStay.Truncate(time.Minute), len(s.VisitDays))
	}
	return sb.String()
}
