package lifelog

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/simclock"
	"repro/internal/trace"
	"repro/internal/world"
)

// newServiceHarness runs a small live PMS for the app to attach to.
func newServiceHarness(t *testing.T, seed int64, days int) (*core.Service, func(time.Duration)) {
	t.Helper()
	cfg := world.DefaultConfig()
	r := rand.New(rand.NewSource(seed))
	w := world.Generate(cfg, r)
	home := w.AddVenue("home", "Home", world.KindHome, geo.Offset(cfg.Origin, 210, 2300), true, cfg, r)
	work := w.AddVenue("work", "Office", world.KindWorkplace, geo.Offset(cfg.Origin, 30, 2400), true, cfg, r)
	agent := &mobility.Agent{ID: "u1", Home: home, Work: work, SpeedMPS: 7}
	it, err := mobility.BuildItinerary(agent, w, simclock.Epoch, days, mobility.DefaultScheduleConfig(), rand.New(rand.NewSource(seed+1)))
	if err != nil {
		t.Fatal(err)
	}
	clock := simclock.New()
	sensors := trace.NewSensors(w, it, trace.DefaultConfig(), rand.New(rand.NewSource(seed+2)))
	svc := core.NewService(core.DefaultConfig("u1"), clock, sensors, energy.NewMeter(energy.DefaultModel()), nil)
	return svc, svc.Run
}

func TestLifelogCollectsAndTags(t *testing.T) {
	svc, run := newServiceHarness(t, 301, 2)
	app := New()
	if err := app.Attach(svc); err != nil {
		t.Fatal(err)
	}
	run(48 * time.Hour)

	if app.NewPlaceCount() == 0 {
		t.Error("no new-place notifications over 2 days")
	}
	places := svc.Places()
	if len(places) == 0 {
		t.Fatal("no places")
	}
	if err := app.Tag(places[0].ID, "Home"); err != nil {
		t.Fatal(err)
	}
	if svc.Label(places[0].ID) != "Home" {
		t.Error("tag did not reach the middleware")
	}

	sums := app.Summaries()
	if len(sums) == 0 {
		t.Fatal("no summaries")
	}
	// Sorted by stay descending.
	for i := 1; i < len(sums); i++ {
		if sums[i].TotalStay > sums[i-1].TotalStay {
			t.Error("summaries not sorted by stay")
		}
	}
	top := sums[0]
	if top.TotalStay < 12*time.Hour {
		t.Errorf("top place stay = %v", top.TotalStay)
	}
	if len(top.VisitDays) == 0 {
		t.Error("no visit days for top place")
	}

	out := app.Render()
	if !strings.Contains(out, "Home") {
		t.Errorf("render missing tag:\n%s", out)
	}
	if !strings.Contains(out, "place") || !strings.Contains(out, "days") {
		t.Error("render missing header")
	}
}

func TestLifelogUnattached(t *testing.T) {
	app := New()
	if err := app.Tag("p0", "X"); err == nil {
		t.Error("tag on unattached app should fail")
	}
	if app.Summaries() != nil {
		t.Error("summaries on unattached app should be nil")
	}
}
