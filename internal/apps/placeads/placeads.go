// Package placeads implements PlaceADs, the proof-of-concept connected
// application of the paper (Sections 3-4): it delegates place sensing to
// PMWare, and whenever the user arrives at (or newly discovers) a place it
// fetches contextual advertisements for nearby points of interest. Users
// swipe each ad card left (like) or right (dislike); the deployment study
// reports the like:dislike ratio (17:3 in the paper).
package placeads

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/world"
)

// AppID is the connected-application identifier PlaceADs registers under.
const AppID = "placeads"

// Ad is one advertisement card.
type Ad struct {
	ID       string
	Title    string
	Category world.VenueKind // the kind of venue the ad promotes
	Discount int             // percent off
}

// Inventory is the ad catalogue, indexed by category.
type Inventory struct {
	byCategory map[world.VenueKind][]Ad
	all        []Ad
}

// NewInventory builds an inventory from ads.
func NewInventory(ads []Ad) *Inventory {
	inv := &Inventory{byCategory: map[world.VenueKind][]Ad{}}
	for _, a := range ads {
		inv.byCategory[a.Category] = append(inv.byCategory[a.Category], a)
		inv.all = append(inv.all, a)
	}
	return inv
}

// DefaultInventory returns a catalogue covering the ad-friendly venue kinds.
func DefaultInventory() *Inventory {
	var ads []Ad
	mk := func(kind world.VenueKind, titles ...string) {
		for i, title := range titles {
			ads = append(ads, Ad{
				ID:       fmt.Sprintf("%s-%d", kind, i),
				Title:    title,
				Category: kind,
				Discount: 10 + 5*i,
			})
		}
	}
	mk(world.KindRestaurant, "Thali lunch special", "2-for-1 dinner", "Chef's tasting menu")
	mk(world.KindCafe, "Free cookie with coffee", "Monsoon chai offer")
	mk(world.KindMall, "Season-end sale", "Midnight shopping festival")
	mk(world.KindCinema, "Tuesday ticket deal", "Combo popcorn offer")
	mk(world.KindGym, "First month free", "Yoga pass discount")
	mk(world.KindMarket, "Fresh produce morning deal", "Festival bazaar coupons")
	mk(world.KindClinic, "Health check package")
	return NewInventory(ads)
}

// ForCategories returns ads in any of the given categories, in stable order.
func (inv *Inventory) ForCategories(kinds []world.VenueKind) []Ad {
	var out []Ad
	for _, k := range kinds {
		out = append(out, inv.byCategory[k]...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Size returns the catalogue size.
func (inv *Inventory) Size() int { return len(inv.all) }

// POIDirectory answers "what kinds of venues are near these coordinates?" —
// the maps/POI service a real PlaceADs would query. The reproduction backs
// it with the synthetic world's public venues.
type POIDirectory struct {
	venues []*world.Venue
}

// NewPOIDirectory indexes the world's venues.
func NewPOIDirectory(w *world.World) *POIDirectory {
	d := &POIDirectory{}
	for _, v := range w.Venues {
		// Homes and workplaces are private and not in a POI directory.
		if v.Kind == world.KindHome || v.Kind == world.KindWorkplace {
			continue
		}
		d.venues = append(d.venues, v)
	}
	return d
}

// KindsNear returns the distinct venue kinds within radius of p, nearest
// first.
func (d *POIDirectory) KindsNear(p geo.LatLng, radiusM float64) []world.VenueKind {
	type hit struct {
		kind world.VenueKind
		dist float64
	}
	var hits []hit
	seen := map[world.VenueKind]bool{}
	for _, v := range d.venues {
		dist := geo.Distance(v.Center, p)
		if dist <= radiusM && !seen[v.Kind] {
			seen[v.Kind] = true
			hits = append(hits, hit{v.Kind, dist})
		}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].dist != hits[j].dist {
			return hits[i].dist < hits[j].dist
		}
		return hits[i].kind < hits[j].kind
	})
	out := make([]world.VenueKind, len(hits))
	for i, h := range hits {
		out[i] = h.kind
	}
	return out
}

// Impression is one ad card shown to the user, with the swipe outcome.
type Impression struct {
	Ad      Ad
	PlaceID string
	At      time.Time
	Liked   bool
}

// Swiper decides whether the user likes an ad shown in a given context.
type Swiper interface {
	Swipe(ad Ad, at time.Time) (liked bool)
}

// SimSwiper is the study's user model: the participant likes an ad with
// RelevantProb when the ad's category matches a venue kind actually near
// them (context relevant), and with IrrelevantProb otherwise.
type SimSwiper struct {
	Directory      *POIDirectory
	TruePosition   func(time.Time) geo.LatLng
	RelevanceM     float64
	RelevantProb   float64
	IrrelevantProb float64
	Rand           *rand.Rand
}

// Swipe implements Swiper.
func (s *SimSwiper) Swipe(ad Ad, at time.Time) bool {
	relevant := false
	for _, k := range s.Directory.KindsNear(s.TruePosition(at), s.RelevanceM) {
		if k == ad.Category {
			relevant = true
			break
		}
	}
	p := s.IrrelevantProb
	if relevant {
		p = s.RelevantProb
	}
	return s.Rand.Float64() < p
}

// App is the PlaceADs connected application.
type App struct {
	inventory *Inventory
	directory *POIDirectory
	swiper    Swiper

	// AdsPerArrival caps how many cards are pushed per place event.
	AdsPerArrival int

	impressions []Impression
	served      map[string]map[string]bool // placeID -> adID shown already
}

// New builds the app.
func New(inventory *Inventory, directory *POIDirectory, swiper Swiper) *App {
	return &App{
		inventory:     inventory,
		directory:     directory,
		swiper:        swiper,
		AdsPerArrival: 3,
		served:        map[string]map[string]bool{},
	}
}

// Attach connects the app to a PMWare mobile service. PlaceADs needs only
// area-level granularity (Figure 2), making it the cheapest tier to serve.
func (a *App) Attach(svc *core.Service) error {
	return svc.Connect(
		core.Requirement{AppID: AppID, Granularity: core.GranularityArea},
		core.Filter{Actions: []string{core.ActionPlaceArrival, core.ActionNewPlace}},
		a.handle,
	)
}

// handle receives place intents and pushes ad cards.
func (a *App) handle(in core.Intent) {
	if in.Place == nil {
		return
	}
	pos := in.Place.Center
	if pos.IsZero() {
		return // no coordinates yet (pre-geolocation)
	}
	// Target: POI kinds near the (area-degraded) position. The search radius
	// covers the disclosure fuzz.
	kinds := a.directory.KindsNear(pos, in.Place.AccuracyMeters+300)
	candidates := a.inventory.ForCategories(kinds)

	shown := a.served[in.Place.ID]
	if shown == nil {
		shown = map[string]bool{}
		a.served[in.Place.ID] = shown
	}
	count := 0
	for _, ad := range candidates {
		if count >= a.AdsPerArrival {
			break
		}
		if shown[ad.ID] {
			continue
		}
		shown[ad.ID] = true
		count++
		liked := a.swiper.Swipe(ad, in.At)
		a.impressions = append(a.impressions, Impression{Ad: ad, PlaceID: in.Place.ID, At: in.At, Liked: liked})
	}
}

// Impressions returns every ad card shown so far.
func (a *App) Impressions() []Impression { return a.impressions }

// LikeDislike returns the total likes and dislikes.
func (a *App) LikeDislike() (likes, dislikes int) {
	for _, im := range a.impressions {
		if im.Liked {
			likes++
		} else {
			dislikes++
		}
	}
	return likes, dislikes
}
