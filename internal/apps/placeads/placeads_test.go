package placeads

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/simclock"
	"repro/internal/world"
)

func testWorld(seed int64) (*world.World, world.Config) {
	cfg := world.DefaultConfig()
	return world.Generate(cfg, rand.New(rand.NewSource(seed))), cfg
}

func TestInventory(t *testing.T) {
	inv := DefaultInventory()
	if inv.Size() == 0 {
		t.Fatal("empty inventory")
	}
	ads := inv.ForCategories([]world.VenueKind{world.KindRestaurant})
	if len(ads) == 0 {
		t.Fatal("no restaurant ads")
	}
	for _, a := range ads {
		if a.Category != world.KindRestaurant {
			t.Errorf("wrong category: %+v", a)
		}
	}
	// Stable ordering.
	again := inv.ForCategories([]world.VenueKind{world.KindRestaurant})
	for i := range ads {
		if ads[i].ID != again[i].ID {
			t.Fatal("unstable ad ordering")
		}
	}
	if got := inv.ForCategories([]world.VenueKind{world.KindHome}); len(got) != 0 {
		t.Error("ads for homes?")
	}
}

func TestPOIDirectoryExcludesPrivateVenues(t *testing.T) {
	w, cfg := testWorld(1)
	r := rand.New(rand.NewSource(2))
	home := w.AddVenue("home-x", "Home", world.KindHome, cfg.Origin, false, cfg, r)
	d := NewPOIDirectory(w)
	kinds := d.KindsNear(home.Center, 1)
	for _, k := range kinds {
		if k == world.KindHome || k == world.KindWorkplace {
			t.Errorf("private kind %v in POI directory", k)
		}
	}
}

func TestKindsNearOrderingAndRadius(t *testing.T) {
	w, cfg := testWorld(3)
	d := NewPOIDirectory(w)
	all := d.KindsNear(cfg.Origin, cfg.ExtentMeters*3)
	if len(all) == 0 {
		t.Fatal("no kinds in whole world")
	}
	// Tiny radius: at most the kinds of venues containing origin.
	near := d.KindsNear(cfg.Origin, 10)
	if len(near) > len(all) {
		t.Error("radius filter broken")
	}
	// Distinctness.
	seen := map[world.VenueKind]bool{}
	for _, k := range all {
		if seen[k] {
			t.Fatalf("duplicate kind %v", k)
		}
		seen[k] = true
	}
}

// fixedSwiper likes everything.
type fixedSwiper struct{ like bool }

func (f fixedSwiper) Swipe(Ad, time.Time) bool { return f.like }

func arrivalIntent(placeID string, pos geo.LatLng) core.Intent {
	return core.Intent{
		Action: core.ActionPlaceArrival,
		At:     simclock.Epoch,
		Place: &core.PlaceInfo{
			ID:             placeID,
			Center:         pos,
			AccuracyMeters: 750,
			Granularity:    core.GranularityArea,
		},
	}
}

func TestAppServesAdsOnArrival(t *testing.T) {
	w, _ := testWorld(4)
	d := NewPOIDirectory(w)
	app := New(DefaultInventory(), d, fixedSwiper{like: true})

	// Arrive near a market (guaranteed ad category nearby).
	var market *world.Venue
	for _, v := range w.Venues {
		if v.Kind == world.KindMarket {
			market = v
			break
		}
	}
	if market == nil {
		t.Skip("no market generated")
	}
	app.handle(arrivalIntent("p0", market.Center))
	if len(app.Impressions()) == 0 {
		t.Fatal("no impressions at a market")
	}
	if len(app.Impressions()) > app.AdsPerArrival {
		t.Errorf("served %d > cap %d", len(app.Impressions()), app.AdsPerArrival)
	}
	likes, dislikes := app.LikeDislike()
	if dislikes != 0 || likes != len(app.Impressions()) {
		t.Errorf("likes=%d dislikes=%d", likes, dislikes)
	}
}

func TestAppDoesNotRepeatAdsAtSamePlace(t *testing.T) {
	w, _ := testWorld(5)
	d := NewPOIDirectory(w)
	app := New(DefaultInventory(), d, fixedSwiper{like: true})
	var market *world.Venue
	for _, v := range w.Venues {
		if v.Kind == world.KindMarket {
			market = v
			break
		}
	}
	if market == nil {
		t.Skip("no market generated")
	}
	in := arrivalIntent("p0", market.Center)
	app.handle(in)
	first := len(app.Impressions())
	app.handle(in)
	second := len(app.Impressions()) - first
	// Second visit may show more (unshown) ads but never repeats one.
	seen := map[string]int{}
	for _, im := range app.Impressions() {
		seen[im.Ad.ID]++
		if seen[im.Ad.ID] > 1 {
			t.Fatalf("ad %s repeated at same place", im.Ad.ID)
		}
	}
	_ = second
}

func TestAppSkipsZeroCoordinates(t *testing.T) {
	w, _ := testWorld(6)
	app := New(DefaultInventory(), NewPOIDirectory(w), fixedSwiper{like: true})
	app.handle(core.Intent{
		Action: core.ActionPlaceArrival,
		Place:  &core.PlaceInfo{ID: "p0"}, // zero center: not yet geolocated
	})
	if len(app.Impressions()) != 0 {
		t.Error("served ads without coordinates")
	}
	app.handle(core.Intent{Action: core.ActionPlaceArrival}) // nil place
	if len(app.Impressions()) != 0 {
		t.Error("served ads for nil place")
	}
}

func TestSimSwiperRelevance(t *testing.T) {
	w, cfg := testWorld(7)
	d := NewPOIDirectory(w)
	var market *world.Venue
	for _, v := range w.Venues {
		if v.Kind == world.KindMarket {
			market = v
			break
		}
	}
	if market == nil {
		t.Skip("no market")
	}
	sw := &SimSwiper{
		Directory:      d,
		TruePosition:   func(time.Time) geo.LatLng { return market.Center },
		RelevanceM:     200,
		RelevantProb:   1.0,
		IrrelevantProb: 0.0,
		Rand:           rand.New(rand.NewSource(8)),
	}
	marketAd := Ad{ID: "m", Category: world.KindMarket}
	if !sw.Swipe(marketAd, simclock.Epoch) {
		t.Error("relevant ad disliked at p=1")
	}
	// A category guaranteed absent within 200 m of the market: use a kind
	// not present anywhere near.
	farAway := Ad{ID: "x", Category: world.KindCinema}
	liked := sw.Swipe(farAway, simclock.Epoch)
	// Only fails if a cinema happens to be within 200 m of this market.
	hasCinema := false
	for _, k := range d.KindsNear(market.Center, 200) {
		if k == world.KindCinema {
			hasCinema = true
		}
	}
	if !hasCinema && liked {
		t.Error("irrelevant ad liked at p=0")
	}
	_ = cfg
}

func TestAttachRegistersAreaLevel(t *testing.T) {
	// Attach is exercised end-to-end by the study; here just check the
	// requirement shape via a bare service-free registry path is not
	// possible, so validate through the public constants.
	if AppID != "placeads" {
		t.Error("unexpected app id")
	}
}
