package todo

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/simclock"
)

func intent(action, label string, at time.Time) core.Intent {
	return core.Intent{
		Action: action,
		At:     at,
		Place:  &core.PlaceInfo{ID: "p1", Label: label},
	}
}

func TestRemindersFireOnLabeledArrival(t *testing.T) {
	app := New("work")
	app.Add(Item{Text: "check standup notes", OnArrive: true})
	app.Add(Item{Text: "submit timesheet", OnArrive: false})

	at := simclock.Epoch.Add(9 * time.Hour)
	app.handle(intent(core.ActionPlaceArrival, "Work", at)) // case-insensitive
	rs := app.Reminders()
	if len(rs) != 1 || rs[0].Item.Text != "check standup notes" {
		t.Fatalf("reminders after arrival = %+v", rs)
	}
	if !rs[0].At.Equal(at) {
		t.Errorf("reminder at %v", rs[0].At)
	}

	app.handle(intent(core.ActionPlaceDeparture, "work", at.Add(9*time.Hour)))
	rs = app.Reminders()
	if len(rs) != 2 || rs[1].Item.Text != "submit timesheet" {
		t.Fatalf("reminders after departure = %+v", rs)
	}
}

func TestNonTargetPlacesIgnored(t *testing.T) {
	app := New("work")
	app.Add(Item{Text: "x", OnArrive: true})
	app.handle(intent(core.ActionPlaceArrival, "home", simclock.Epoch))
	app.handle(intent(core.ActionPlaceArrival, "", simclock.Epoch)) // unlabeled
	if len(app.Reminders()) != 0 {
		t.Error("reminders for non-target places")
	}
	if app.Events() != 2 {
		t.Errorf("events = %d", app.Events())
	}
}

func TestNilPlaceIgnored(t *testing.T) {
	app := New("work")
	app.Add(Item{Text: "x", OnArrive: true})
	app.handle(core.Intent{Action: core.ActionPlaceArrival})
	if app.Events() != 0 || len(app.Reminders()) != 0 {
		t.Error("nil place processed")
	}
}

func TestRemindersCopy(t *testing.T) {
	app := New("work")
	app.Add(Item{Text: "x", OnArrive: true})
	app.handle(intent(core.ActionPlaceArrival, "work", simclock.Epoch))
	rs := app.Reminders()
	rs[0].Item.Text = "mutated"
	if app.Reminders()[0].Item.Text != "x" {
		t.Error("Reminders returned internal slice")
	}
}
