// Package todo implements the To-Do application of the paper's use case
// (Section 2.4): it asks PMWare for building-level place alerts between 9 AM
// and 6 PM and prompts the user with reminders when they enter or leave
// their workplace.
package todo

import (
	"strings"
	"sync"
	"time"

	"repro/internal/core"
)

// AppID is the connected-application identifier.
const AppID = "todo"

// Item is one to-do entry, bound to a trigger.
type Item struct {
	Text string
	// OnArrive fires the reminder when entering the target place; otherwise
	// it fires when leaving.
	OnArrive bool
}

// Reminder is a fired alert.
type Reminder struct {
	Item    Item
	PlaceID string
	At      time.Time
}

// App is the To-Do connected application. It targets places by user label
// (e.g. "work"): reminders fire only once PMWare knows which place carries
// that label, which is exactly the human-labelling loop of Section 2.2.5.
type App struct {
	mu sync.Mutex

	targetLabel string
	items       []Item
	reminders   []Reminder
	events      int
}

// New builds the app targeting places labelled targetLabel
// (case-insensitive).
func New(targetLabel string) *App {
	return &App{targetLabel: targetLabel}
}

// Add queues a to-do item.
func (a *App) Add(item Item) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.items = append(a.items, item)
}

// Attach connects the app to PMWare with the Section 2.4 requirement:
// building-level granularity, tracked 9 AM - 6 PM.
func (a *App) Attach(svc *core.Service) error {
	return svc.Connect(
		core.Requirement{
			AppID:       AppID,
			Granularity: core.GranularityBuilding,
			FromHour:    9,
			ToHour:      18,
		},
		core.Filter{Actions: []string{core.ActionPlaceArrival, core.ActionPlaceDeparture}},
		a.handle,
	)
}

func (a *App) handle(in core.Intent) {
	if in.Place == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.events++
	if !strings.EqualFold(in.Place.Label, a.targetLabel) {
		return
	}
	arriving := in.Action == core.ActionPlaceArrival
	for _, item := range a.items {
		if item.OnArrive == arriving {
			a.reminders = append(a.reminders, Reminder{Item: item, PlaceID: in.Place.ID, At: in.At})
		}
	}
}

// Reminders returns the fired reminders.
func (a *App) Reminders() []Reminder {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Reminder, len(a.reminders))
	copy(out, a.reminders)
	return out
}

// Events returns how many place intents the app received.
func (a *App) Events() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.events
}
