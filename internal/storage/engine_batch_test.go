package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// AppendShippedBatch is the receiver's fast path: one group-commit wait for
// a whole run of shipped records instead of one (full CommitLinger each)
// per record. These tests pin that it is byte-equivalent to the serial
// AppendShipped path — same WAL, same state — because the replication
// suite's byte-identical-replica claim rests on that.

func dirBytes(t *testing.T, root string) map[string]string {
	t.Helper()
	files := map[string]string{}
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		rel, _ := filepath.Rel(root, path)
		b, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		files[rel] = string(b)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// TestAppendShippedBatchEquivalentToSerial drives the same record run
// through AppendShipped one-by-one and through one AppendShippedBatch call,
// and requires byte-identical directories and equal materialized state.
func TestAppendShippedBatchEquivalentToSerial(t *testing.T) {
	const shards = 2
	recs := make([][][]byte, shards)
	for i := 0; i < shards; i++ {
		for j := 0; j < 25; j++ {
			recs[i] = append(recs[i], kvRecord(fmt.Sprintf("k%d-%02d", i, j), fmt.Sprintf("v%d", j)))
		}
	}
	opts := Options{Sync: SyncAlways, CommitLinger: 200 * time.Microsecond}

	serialDir, batchDir := t.TempDir(), t.TempDir()
	serial, _ := openKV(t, serialDir, shards, opts)
	for i := range recs {
		for _, rec := range recs[i] {
			if err := serial.AppendShipped(i, rec); err != nil {
				t.Fatalf("serial append: %v", err)
			}
		}
	}
	if err := serial.MaterializeAll(); err != nil {
		t.Fatal(err)
	}

	batch, _ := openKV(t, batchDir, shards, opts)
	for i := range recs {
		if err := batch.AppendShippedBatch(i, recs[i]); err != nil {
			t.Fatalf("batch append: %v", err)
		}
	}
	if err := batch.MaterializeAll(); err != nil {
		t.Fatal(err)
	}

	// Close both (each compacts, snapshotting the state) and compare bytes.
	if err := serial.Close(); err != nil {
		t.Fatal(err)
	}
	if err := batch.Close(); err != nil {
		t.Fatal(err)
	}
	a, b := dirBytes(t, serialDir), dirBytes(t, batchDir)
	if len(a) != len(b) {
		t.Fatalf("file sets differ: serial %d files, batch %d", len(a), len(b))
	}
	for name, want := range a {
		got, ok := b[name]
		if !ok {
			t.Errorf("batch dir missing %s", name)
			continue
		}
		if got != want {
			t.Errorf("%s differs between serial (%d bytes) and batch (%d bytes)", name, len(want), len(got))
		}
	}

	// The batch path's records must survive recovery like any journaled write.
	re, rkvs := openKV(t, batchDir, shards, opts)
	defer re.Close()
	var v string
	re.View(1, func() { v = rkvs[1].m["k1-24"] })
	if v != "v24" {
		t.Fatalf("recovered k1-24 = %q, want v24", v)
	}
}

// TestAppendShippedBatchMemoryOnly pins the memory-only fallback: no WAL to
// defer behind, so the run is applied eagerly and visible without
// Materialize.
func TestAppendShippedBatchMemoryOnly(t *testing.T) {
	e, kvs := openKV(t, "", 1, Options{})
	defer e.Close()
	if err := e.AppendShippedBatch(0, [][]byte{kvRecord("a", "1"), kvRecord("b", "2")}); err != nil {
		t.Fatal(err)
	}
	var a, b string
	e.View(0, func() { a, b = kvs[0].m["a"], kvs[0].m["b"] })
	if a != "1" || b != "2" {
		t.Fatalf("memory batch state = %q/%q", a, b)
	}
	if err := e.AppendShippedBatch(0, nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}
