package storage

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func tmpWAL(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "wal-0000000000000000.log")
}

func appendAll(t *testing.T, path string, recs [][]byte, policy SyncPolicy) {
	t.Helper()
	w, err := createWAL(path, policy, DefaultSyncEvery, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func collectReplay(t *testing.T, path string) [][]byte {
	t.Helper()
	var got [][]byte
	n, _, err := replayWAL(path, func(rec []byte) error {
		got = append(got, bytes.Clone(rec))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(got) {
		t.Fatalf("replay reported %d records, delivered %d", n, len(got))
	}
	return got
}

func TestWALRoundTrip(t *testing.T) {
	path := tmpWAL(t)
	recs := [][]byte{[]byte("alpha"), []byte(""), []byte("gamma-gamma-gamma"), {0x00, 0xff, 0x10}}
	appendAll(t, path, recs, SyncAlways)
	got := collectReplay(t, path)
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !bytes.Equal(got[i], recs[i]) {
			t.Errorf("record %d = %q, want %q", i, got[i], recs[i])
		}
	}
}

func TestWALReplayMissingFile(t *testing.T) {
	n, torn, err := replayWAL(filepath.Join(t.TempDir(), "nope.log"), func([]byte) error { return nil })
	if err != nil || n != 0 || torn {
		t.Fatalf("missing file: n=%d torn=%v err=%v", n, torn, err)
	}
}

// TestWALTornTailProperty is the core recovery property: for EVERY byte-level
// truncation of a valid log, replay recovers exactly the records fully
// contained in the prefix, and truncates the torn remainder so a subsequent
// append produces a clean log again.
func TestWALTornTailProperty(t *testing.T) {
	dir := t.TempDir()
	master := filepath.Join(dir, "master.log")
	var recs [][]byte
	var frameEnds []int64 // cumulative offset after each record
	off := int64(0)
	for i := 0; i < 25; i++ {
		rec := []byte(fmt.Sprintf("record-%02d-%s", i, bytes.Repeat([]byte{'x'}, i*3)))
		recs = append(recs, rec)
		off += int64(frameHeaderSize + len(rec))
		frameEnds = append(frameEnds, off)
	}
	appendAll(t, master, recs, SyncNever)
	full, err := os.ReadFile(master)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(full)) != off {
		t.Fatalf("log size %d, want %d", len(full), off)
	}

	for cut := 0; cut <= len(full); cut++ {
		path := filepath.Join(dir, "cut.log")
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got := collectReplay(t, path)
		// Expected: all records whose frame ends at or before the cut.
		want := 0
		for _, end := range frameEnds {
			if end <= int64(cut) {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("cut at %d: recovered %d records, want %d", cut, len(got), want)
		}
		for i := 0; i < want; i++ {
			if !bytes.Equal(got[i], recs[i]) {
				t.Fatalf("cut at %d: record %d corrupted", cut, i)
			}
		}
		// The torn tail must be gone: the file now ends at the last intact frame.
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		wantSize := int64(0)
		if want > 0 {
			wantSize = frameEnds[want-1]
		}
		if st.Size() != wantSize {
			t.Fatalf("cut at %d: file size %d after recovery, want %d", cut, st.Size(), wantSize)
		}
	}
}

// TestWALCorruptMiddle: a bit-flip mid-log stops replay at the corrupted
// record; everything before it survives.
func TestWALCorruptMiddle(t *testing.T) {
	path := tmpWAL(t)
	recs := [][]byte{[]byte("aaaa"), []byte("bbbb"), []byte("cccc")}
	appendAll(t, path, recs, SyncNever)
	data, _ := os.ReadFile(path)
	// Flip a payload byte inside the second record.
	data[frameHeaderSize+4+frameHeaderSize+1] ^= 0x80
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got := collectReplay(t, path)
	if len(got) != 1 || !bytes.Equal(got[0], recs[0]) {
		t.Fatalf("recovered %d records after mid-log corruption, want 1 intact", len(got))
	}
}

// TestWALGarbageLength: an absurd length prefix reads as a torn tail, not an
// allocation attempt.
func TestWALGarbageLength(t *testing.T) {
	path := tmpWAL(t)
	appendAll(t, path, [][]byte{[]byte("ok")}, SyncNever)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	// length = 0xFFFFFFFF, bogus CRC, a few junk bytes
	if _, err := f.Write([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4, 9, 9}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got := collectReplay(t, path)
	if len(got) != 1 {
		t.Fatalf("recovered %d records, want 1", len(got))
	}
}

func TestWALAppendRejectsOversized(t *testing.T) {
	w, err := createWAL(tmpWAL(t), SyncNever, DefaultSyncEvery, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(make([]byte, MaxRecordSize+1)); err == nil {
		t.Fatal("oversized record accepted")
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
	}{{"always", SyncAlways}, {"interval", SyncInterval}, {"never", SyncNever}} {
		got, err := ParseSyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Errorf("String() = %q, want %q", got.String(), tc.in)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Error("bad policy accepted")
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.json")
	if err := writeFileAtomic(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := writeFileAtomic(path, []byte("v2"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "v2" {
		t.Fatalf("read %q, %v", data, err)
	}
	// No temp droppings.
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Errorf("directory has %d entries, want 1", len(ents))
	}
}
